# Tier-1 verification in one command (documented in README).
.PHONY: check build test bench clean

check: build test

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

clean:
	dune clean

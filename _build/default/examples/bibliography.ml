(* Schema-less data: a DBLP-like bibliography stored through an inferred
   DTD-style schema, exercising recursive mark-up and the paper's QD
   query set.

     dune exec examples/bibliography.exe -- [entries] *)

module Doc = Ppfx_xml.Doc
module Graph = Ppfx_schema.Graph
module Loader = Ppfx_shred.Loader
module Translate = Ppfx_translate.Translate
module Engine = Ppfx_minidb.Engine
module Sql = Ppfx_minidb.Sql
module Value = Ppfx_minidb.Value
module Dblp = Ppfx_workloads.Dblp

let () =
  let entries = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 400 in
  let doc = Doc.of_tree (Dblp.generate ~entries ()) in
  Printf.printf "bibliography with %d elements\n\n" (Doc.size doc);

  (* No schema shipped with the data: infer one from the document. *)
  let schema = Dblp.schema_of doc in
  print_endline "inferred schema vertices and their Section 4.5 marking:";
  List.iter
    (fun def ->
      let marking =
        match Graph.classification schema def with
        | Graph.Unique_path p -> "U-P " ^ p
        | Graph.Finite_paths ps -> Printf.sprintf "F-P (%d paths)" (List.length ps)
        | Graph.Infinite_paths -> "I-P (recursive)"
      in
      Printf.printf "  %-14s %s\n" def.Graph.name marking)
    (Graph.defs schema);
  print_newline ();

  let store = Loader.shred schema doc in
  let translator = Translate.create store.Loader.mapping in
  List.iter
    (fun (name, q) ->
      Printf.printf "%s: %s\n" name q;
      match Translate.translate translator (Ppfx_xpath.Parser.parse q) with
      | None -> print_endline "  (provably empty)\n"
      | Some stmt ->
        Printf.printf "  SQL: %s\n" (Sql.to_string stmt);
        let result = Engine.run store.Loader.db stmt in
        Printf.printf "  %d result nodes" (List.length result.Engine.rows);
        (match result.Engine.rows with
         | row :: _ ->
           (match row.(2) with
            | Value.Str s when String.length s > 0 ->
              Printf.printf " (first: %s)"
                (if String.length s > 50 then String.sub s 0 50 ^ "..." else s)
            | _ -> ())
         | [] -> ());
        print_newline ();
        print_newline ())
    Dblp.queries

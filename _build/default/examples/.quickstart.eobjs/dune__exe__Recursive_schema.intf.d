examples/recursive_schema.mli:

examples/quickstart.mli:

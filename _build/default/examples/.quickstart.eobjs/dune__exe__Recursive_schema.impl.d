examples/recursive_schema.ml: List Ppfx_dewey Ppfx_minidb Ppfx_schema Ppfx_shred Ppfx_translate Ppfx_xml Ppfx_xpath Printf String

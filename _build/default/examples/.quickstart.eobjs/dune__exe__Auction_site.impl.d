examples/auction_site.ml: Array List Ppfx_baselines Ppfx_minidb Ppfx_shred Ppfx_translate Ppfx_workloads Ppfx_xml Ppfx_xpath Printf Sys Unix

examples/bibliography.ml: Array List Ppfx_minidb Ppfx_schema Ppfx_shred Ppfx_translate Ppfx_workloads Ppfx_xml Ppfx_xpath Printf String Sys

examples/bibliography.mli:

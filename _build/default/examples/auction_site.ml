(* The paper's motivating workload: an XMark-like auction site queried
   through four different engines, with plans and timings.

     dune exec examples/auction_site.exe -- [items-per-region] *)

module Doc = Ppfx_xml.Doc
module Loader = Ppfx_shred.Loader
module Edge = Ppfx_shred.Edge
module Translate = Ppfx_translate.Translate
module Edge_translate = Ppfx_translate.Edge_translate
module Monet_sim = Ppfx_baselines.Monet_sim
module Engine = Ppfx_minidb.Engine
module Sql = Ppfx_minidb.Sql
module Xmark = Ppfx_workloads.Xmark

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

let () =
  let scale = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 25 in
  let doc = Doc.of_tree (Xmark.generate ~items_per_region:scale ()) in
  Printf.printf "auction site with %d elements\n\n" (Doc.size doc);
  let store = Loader.shred (Xmark.schema ()) doc in
  let edge_store = Edge.shred doc in
  let monet = Monet_sim.of_doc doc in
  let translator = Translate.create store.Loader.mapping in

  (* Show how the PPF translation collapses a deep path into two
     relations. *)
  let showcase = "/site/open_auctions/open_auction[bidder/date = interval/start]" in
  Printf.printf "query (paper Q-A): %s\n\n" showcase;
  (match Translate.translate translator (Ppfx_xpath.Parser.parse showcase) with
   | Some stmt ->
     Printf.printf "PPF SQL:\n  %s\n\n" (Sql.to_string stmt);
     Printf.printf "plan:\n%s\n" (Engine.explain store.Loader.db stmt)
   | None -> print_endline "empty");

  (* Compare engines on a few benchmark queries. *)
  Printf.printf "%-5s %8s %10s %10s %12s\n" "query" "#nodes" "PPF" "Edge-PPF" "MonetDB-sim";
  List.iter
    (fun name ->
      let q = Xmark.query name in
      let expr = Ppfx_xpath.Parser.parse q in
      let t_ppf, n =
        time (fun () ->
            match Translate.translate translator expr with
            | None -> 0
            | Some stmt ->
              List.length (Translate.result_ids (Engine.run store.Loader.db stmt)))
      in
      let t_edge, _ =
        time (fun () ->
            match Edge_translate.translate expr with
            | None -> 0
            | Some stmt ->
              List.length (Edge_translate.result_ids (Engine.run edge_store.Edge.db stmt)))
      in
      let t_monet, _ = time (fun () -> List.length (Monet_sim.run monet expr)) in
      Printf.printf "%-5s %8d %9.3fs %9.3fs %11.3fs\n" name n t_ppf t_edge t_monet)
    [ "Q1"; "Q3"; "Q6"; "Q10"; "Q13"; "QA" ]

(* The paper's Figures 1 and 2 end to end: the example schema with its
   recursive G definition, the U-P/F-P/I-P marking, and how each marking
   changes the generated SQL (Section 4.5).

     dune exec examples/recursive_schema.exe *)

module Graph = Ppfx_schema.Graph
module Doc = Ppfx_xml.Doc
module Loader = Ppfx_shred.Loader
module Translate = Ppfx_translate.Translate
module Engine = Ppfx_minidb.Engine
module Sql = Ppfx_minidb.Sql

(* Figure 1(a): A -> B; B -> C, G; C -> D, E; E -> F; G -> G. *)
let schema =
  let b = Graph.Builder.create () in
  let a = Graph.Builder.define b ~attrs:[ "x" ] "A" in
  let bb = Graph.Builder.define b "B" in
  let c = Graph.Builder.define b "C" in
  let d = Graph.Builder.define b ~text:true "D" in
  let e = Graph.Builder.define b "E" in
  let f = Graph.Builder.define b ~text:true "F" in
  let g = Graph.Builder.define b "G" in
  Graph.Builder.add_child b ~parent:a bb;
  Graph.Builder.add_child b ~parent:bb c;
  Graph.Builder.add_child b ~parent:bb g;
  Graph.Builder.add_child b ~parent:c d;
  Graph.Builder.add_child b ~parent:c e;
  Graph.Builder.add_child b ~parent:e f;
  Graph.Builder.add_child b ~parent:g g;
  Graph.Builder.finish b ~root:a

(* Figure 1(b): the example document. *)
let document =
  "<A x=\"3\"><B><C><D/></C><C><E><F>1</F><F>2</F></E></C><G/></B><B><G><G/></G></B></A>"

let () =
  print_endline "Figure 2: marking the schema graph";
  List.iter
    (fun def ->
      let marking =
        match Graph.classification schema def with
        | Graph.Unique_path p -> Printf.sprintf "U-P  (only path: %s)" p
        | Graph.Finite_paths ps ->
          Printf.sprintf "F-P  (%s)" (String.concat ", " ps)
        | Graph.Infinite_paths -> "I-P  (a cycle reaches it)"
      in
      Printf.printf "  %-3s %s\n" def.Graph.name marking)
    (Graph.defs schema);
  print_newline ();

  let doc = Doc.of_tree (Ppfx_xml.Parser.parse document) in
  Printf.printf "Figure 1(c): element descriptors\n";
  Printf.printf "  %-3s %-4s %-12s %s\n" "id" "par" "dewey" "path";
  Doc.iter
    (fun e ->
      Printf.printf "  %-3d %-4d %-12s %s\n" e.Doc.id e.Doc.parent
        (Ppfx_dewey.Dewey.to_dotted e.Doc.dewey)
        e.Doc.path)
    doc;
  print_newline ();

  let store = Loader.shred schema doc in
  let translator = Translate.create store.Loader.mapping in
  let show header query =
    Printf.printf "%s\n  %s\n" header query;
    match Translate.translate translator (Ppfx_xpath.Parser.parse query) with
    | None -> print_endline "  => provably empty\n"
    | Some stmt ->
      Printf.printf "  => %s\n" (Sql.to_string stmt);
      let ids = Translate.result_ids (Engine.run store.Loader.db stmt) in
      Printf.printf "  results: [%s]\n\n"
        (String.concat "; " (List.map string_of_int ids))
  in
  show "U-P: the path filter disappears entirely" "/A/B/C/D";
  show "I-P: recursion forces the Paths join (SQL99 recursion not needed!)" "/A/B/G//G";
  show "A recursive query over the recursive definition" "//G[ancestor::G]";
  show "F-P via the shared region vertices is exercised in the XMark example"
    "/A/*[C//F = 2]";
  show "Statically unsatisfiable paths are pruned at translation time" "/A/F/D"

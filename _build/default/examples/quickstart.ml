(* Quickstart: the full pipeline on a small library catalogue.

     dune exec examples/quickstart.exe

   1. define an XML Schema graph;
   2. parse and shred a document into the relational store;
   3. translate XPath to SQL with the PPF algorithm and execute it. *)

module Graph = Ppfx_schema.Graph
module Doc = Ppfx_xml.Doc
module Loader = Ppfx_shred.Loader
module Translate = Ppfx_translate.Translate
module Engine = Ppfx_minidb.Engine
module Sql = Ppfx_minidb.Sql
module Value = Ppfx_minidb.Value

(* A catalogue schema: catalogue -> book* -> (title, author+, price);
   books can contain nested notes (recursive). *)
let schema =
  let b = Graph.Builder.create () in
  let catalogue = Graph.Builder.define b "catalogue" in
  let book = Graph.Builder.define b ~attrs:[ "isbn"; "lang" ] "book" in
  let title = Graph.Builder.define b ~text:true "title" in
  let author = Graph.Builder.define b ~text:true "author" in
  let price = Graph.Builder.define b ~text:true "price" in
  let note = Graph.Builder.define b ~text:true "note" in
  Graph.Builder.add_child b ~parent:catalogue book;
  Graph.Builder.add_child b ~parent:book title;
  Graph.Builder.add_child b ~parent:book author;
  Graph.Builder.add_child b ~parent:book price;
  Graph.Builder.add_child b ~parent:book note;
  Graph.Builder.add_child b ~parent:note note;
  Graph.Builder.finish b ~root:catalogue

let document =
  {xml|<catalogue>
  <book isbn="0-201-53082-1" lang="en">
    <title>The Art of Computer Programming</title>
    <author>Donald Knuth</author>
    <price>199</price>
  </book>
  <book isbn="2-07-036822-X" lang="fr">
    <title>Le Petit Prince</title>
    <author>Antoine de Saint-Exupery</author>
    <price>9</price>
    <note>gift edition<note>with illustrations</note></note>
  </book>
  <book isbn="0-19-853453-1" lang="en">
    <title>A Compendium of Partial Differential Equations</title>
    <author>Erwin Kreyszig</author>
    <author>Herbert Kreyszig</author>
    <price>120</price>
  </book>
</catalogue>|xml}

let () =
  (* Parse and index. *)
  let doc = Doc.of_tree (Ppfx_xml.Parser.parse document) in
  Printf.printf "parsed %d elements, %d distinct root-to-node paths\n\n" (Doc.size doc)
    (List.length (Doc.distinct_paths doc));

  (* Shred into the schema-aware relational store. *)
  let store = Loader.shred schema doc in
  Format.printf "relational store:@.%a@." Ppfx_minidb.Database.pp_stats
    store.Loader.db;

  (* Translate and run some XPath. *)
  let translator = Translate.create store.Loader.mapping in
  let run query =
    Printf.printf "XPath: %s\n" query;
    match Translate.translate translator (Ppfx_xpath.Parser.parse query) with
    | None -> print_endline "  (provably empty)\n"
    | Some stmt ->
      Printf.printf "SQL:   %s\n" (Sql.to_string stmt);
      let result = Engine.run store.Loader.db stmt in
      List.iter
        (fun row ->
          match row.(0), row.(2) with
          | Value.Int id, value ->
            Printf.printf "  node %d: %s\n" id (Value.to_string value)
          | _ -> ())
        result.Engine.rows;
      print_newline ()
  in
  run "/catalogue/book/title";
  run "/catalogue/book[price > 100]/title";
  run "/catalogue/book[@lang = 'fr']/author";
  run "//note";
  run "/catalogue/book[note]/title";
  (* Out-of-subset constructs raise Unsupported with an explanation. *)
  (match Translate.translate translator (Ppfx_xpath.Parser.parse "//book[2]") with
   | _ -> ()
   | exception Translate.Unsupported msg ->
     Printf.printf "XPath: //book[2]\n  not translatable: %s\n" msg)

lib/shred/edge.ml: Array Buffer Char List Ppfx_dewey Ppfx_minidb Ppfx_xml String

lib/shred/loader.ml: Array Buffer Char Format Hashtbl List Mapping Ppfx_dewey Ppfx_minidb Ppfx_schema Ppfx_xml String

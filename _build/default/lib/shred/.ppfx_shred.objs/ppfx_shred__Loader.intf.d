lib/shred/loader.mli: Mapping Ppfx_minidb Ppfx_schema Ppfx_xml

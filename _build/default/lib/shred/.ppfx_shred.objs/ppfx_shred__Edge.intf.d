lib/shred/edge.mli: Ppfx_minidb Ppfx_xml

lib/shred/mapping.mli: Ppfx_minidb Ppfx_schema

lib/shred/mapping.ml: List Ppfx_minidb Ppfx_schema Printf

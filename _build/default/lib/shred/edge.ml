module Doc = Ppfx_xml.Doc
module Dewey = Ppfx_dewey.Dewey
module Table = Ppfx_minidb.Table
module Database = Ppfx_minidb.Database
module Value = Ppfx_minidb.Value

type t = {
  db : Database.t;
  docs : Doc.t list;
}

let edge_table = "edge"
let attr_table = "attr"
let paths_table = "paths"

let create () =
  let db = Database.create () in
  let edge =
    Database.create_table db ~name:edge_table
      ~columns:
        [
          { Table.name = "id"; ty = Value.Tint };
          { Table.name = "par_id"; ty = Value.Tint };
          { Table.name = "tag"; ty = Value.Tstr };
          { Table.name = "dewey_pos"; ty = Value.Tbin };
          { Table.name = "path_id"; ty = Value.Tint };
          { Table.name = "text"; ty = Value.Tstr };
          { Table.name = "dtext"; ty = Value.Tstr };
          { Table.name = "ord"; ty = Value.Tint };
          { Table.name = "sibs"; ty = Value.Tint };
        ]
  in
  Table.create_index edge [ "id" ];
  Table.create_index edge [ "par_id" ];
  Table.create_index edge [ "dewey_pos"; "path_id" ];
  Table.create_index edge [ "path_id" ];
  let attr =
    Database.create_table db ~name:attr_table
      ~columns:
        [
          { Table.name = "elem_id"; ty = Value.Tint };
          { Table.name = "name"; ty = Value.Tstr };
          { Table.name = "value"; ty = Value.Tstr };
        ]
  in
  Table.create_index attr [ "elem_id" ];
  Table.create_index attr [ "name" ];
  let paths =
    Database.create_table db ~name:paths_table
      ~columns:
        [
          { Table.name = "id"; ty = Value.Tint };
          { Table.name = "path"; ty = Value.Tstr };
        ]
  in
  Table.create_index paths [ "id" ];
  Table.create_index paths [ "path" ];
  { db; docs = [] }

let path_id t path =
  let paths = Database.table t.db paths_table in
  match Table.index_on paths [ "path" ] with
  | None -> None
  | Some tree ->
    (match Ppfx_minidb.Btree.find_equal tree [| Value.Str path |] with
     | [] -> None
     | row :: _ ->
       (match (Table.row paths row).(0) with
        | Value.Int id -> Some id
        | _ -> None))

let intern_path t path =
  match path_id t path with
  | Some id -> id
  | None ->
    let paths = Database.table t.db paths_table in
    let id = Table.row_count paths + 1 in
    ignore (Table.insert paths [| Value.Int id; Value.Str path |]);
    id

let load t doc =
  let edge = Database.table t.db edge_table in
  let attr = Database.table t.db attr_table in
  (* Globalise ids and Dewey positions exactly like the schema-aware
     loader: offset preorder ids, prefix the doc_id component. *)
  let doc_id = List.length t.docs + 1 in
  let offset = List.fold_left (fun acc d -> acc + Doc.size d) 0 t.docs in
  let global i = i + offset in
  let doc_component =
    let buf = Buffer.create 3 in
    Buffer.add_char buf (Char.chr ((doc_id lsr 16) land 0x7F));
    Buffer.add_char buf (Char.chr ((doc_id lsr 8) land 0xFF));
    Buffer.add_char buf (Char.chr (doc_id land 0xFF));
    Buffer.contents buf
  in
  Doc.iter
    (fun e ->
      let pid = intern_path t e.Doc.path in
      let ord, sibs =
        if e.Doc.parent = 0 then 1, 1
        else begin
          let siblings = (Doc.element doc e.Doc.parent).Doc.children in
          List.fold_left
            (fun (ord, sibs) s ->
              if String.equal (Doc.element doc s).Doc.tag e.Doc.tag then
                (if s < e.Doc.id then ord + 1 else ord), sibs + 1
              else ord, sibs)
            (1, 0) siblings
        end
      in
      ignore
        (Table.insert edge
           [|
             Value.Int (global e.Doc.id);
             (if e.Doc.parent = 0 then Value.Null else Value.Int (global e.Doc.parent));
             Value.Str e.Doc.tag;
             Value.Bin (doc_component ^ Dewey.to_raw e.Doc.dewey);
             Value.Int pid;
             Value.Str e.Doc.string_value;
             Value.Str e.Doc.text;
             Value.Int ord;
             Value.Int sibs;
           |]);
      List.iter
        (fun (name, value) ->
          ignore
            (Table.insert attr
               [| Value.Int (global e.Doc.id); Value.Str name; Value.Str value |]))
        e.Doc.attrs)
    doc;
  { t with docs = t.docs @ [ doc ] }

let shred doc = load (create ()) doc

(** Schema-oblivious Edge-style mapping (paper Sections 1 and 5.1).

    All elements live in one central [edge] relation; attributes live in a
    dedicated [attr] relation (the paper's footnote 3 choice), and the
    [Paths] relation is shared with the schema-aware store design:

    - [edge(id, par_id, tag, dewey_pos, path_id, text, dtext, ord,
      sibs)] with indexes on [id], [par_id], [(dewey_pos, path_id)] and
      [path_id] ([ord]/[sibs] are the same-tag sibling ordinal and count
      backing positional predicates);
    - [attr(elem_id, name, value)] with indexes on [elem_id] and [name];
    - [paths(id, path)] with indexes on [id] and [path]. *)

module Doc = Ppfx_xml.Doc

type t = {
  db : Ppfx_minidb.Database.t;
  docs : Doc.t list;
}

val edge_table : string
val attr_table : string
val paths_table : string

val create : unit -> t
(** Create the three relations with their indexes. *)

val load : t -> Doc.t -> t
(** Shred a document (no schema needed). *)

val shred : Doc.t -> t

val path_id : t -> string -> int option

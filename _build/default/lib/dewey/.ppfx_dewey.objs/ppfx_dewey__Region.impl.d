lib/dewey/region.ml: Format

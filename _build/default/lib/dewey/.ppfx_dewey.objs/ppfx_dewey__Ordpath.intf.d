lib/dewey/ordpath.mli: Format

lib/dewey/dewey.mli: Format

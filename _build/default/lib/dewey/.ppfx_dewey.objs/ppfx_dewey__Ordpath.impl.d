lib/dewey/ordpath.ml: Buffer Char Format List String

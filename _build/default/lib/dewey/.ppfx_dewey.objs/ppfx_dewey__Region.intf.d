lib/dewey/region.mli: Format

lib/dewey/dewey.ml: Buffer Char Format List String

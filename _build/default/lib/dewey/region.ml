type t = { pre : int; post : int; level : int }

let is_descendant v ~of_:c = v.pre > c.pre && v.post < c.post

let is_ancestor v ~of_:c = v.pre < c.pre && v.post > c.post

let is_following v ~of_:c = v.pre > c.pre && v.post > c.post

let is_preceding v ~of_:c = v.pre < c.pre && v.post < c.post

let is_child v ~of_:c = is_descendant v ~of_:c && v.level = c.level + 1

let is_parent v ~of_:c = is_ancestor v ~of_:c && v.level = c.level - 1

let pp ppf { pre; post; level } =
  Format.fprintf ppf "(pre=%d, post=%d, level=%d)" pre post level

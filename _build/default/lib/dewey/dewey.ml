type t = string

exception Invalid of string

let invalid fmt = Format.kasprintf (fun msg -> raise (Invalid msg)) fmt

let component_max = 0x7FFFFF

let component_bytes = 3

let encode_component buf c =
  if c < 0 || c > component_max then
    invalid "dewey component %d out of range [0, %d]" c component_max;
  Buffer.add_char buf (Char.chr ((c lsr 16) land 0x7F));
  Buffer.add_char buf (Char.chr ((c lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (c land 0xFF))

let of_components = function
  | [] -> invalid "empty dewey component vector"
  | components ->
    let buf = Buffer.create (component_bytes * List.length components) in
    List.iter (encode_component buf) components;
    Buffer.contents buf

let root = of_components [ 1 ]

let to_components t =
  let n = String.length t in
  if n = 0 || n mod component_bytes <> 0 then
    invalid "malformed dewey encoding of length %d" n;
  let component i =
    let b k = Char.code t.[(i * component_bytes) + k] in
    if b 0 land 0x80 <> 0 then invalid "dewey component with top bit set";
    (b 0 lsl 16) lor (b 1 lsl 8) lor b 2
  in
  List.init (n / component_bytes) component

let of_string_exn s =
  ignore (to_components s);
  s

let to_raw t = t

let child t i =
  let buf = Buffer.create (String.length t + component_bytes) in
  Buffer.add_string buf t;
  encode_component buf i;
  Buffer.contents buf

let level t = String.length t / component_bytes

let parent t =
  if level t <= 1 then None
  else Some (String.sub t 0 (String.length t - component_bytes))

let compare = String.compare

let equal = String.equal

let max_suffix = "\xFF"

let upper_bound t = t ^ max_suffix

let is_prefix a b =
  String.length a <= String.length b && String.equal a (String.sub b 0 (String.length a))

let is_descendant d ~of_:a = compare d a > 0 && String.compare d (upper_bound a) < 0

let is_ancestor a ~of_:d = is_descendant d ~of_:a

let is_following n2 ~of_:n1 = String.compare n2 (upper_bound n1) > 0

let is_preceding n2 ~of_:n1 = String.compare n1 (upper_bound n2) > 0

let is_sibling a b =
  (not (String.equal a b))
  &&
  match parent a, parent b with
  | None, None -> true
  | Some pa, Some pb -> String.equal pa pb
  | Some _, None | None, Some _ -> false

let to_dotted t = String.concat "." (List.map string_of_int (to_components t))

let pp ppf t = Format.pp_print_string ppf (to_dotted t)

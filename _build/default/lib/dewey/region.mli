(** Pre/post ("region") encoding used by the XPath Accelerator baseline
    (Grust et al., cited as [2] in the paper).

    Each node carries its preorder rank, postorder rank and level. The four
    major axes partition the pre/post plane into quadrants around a context
    node; the window predicates below are exactly the comparisons the
    accelerator's SQL translations emit. *)

type t = {
  pre : int;  (** preorder rank, 0-based, also used as node id *)
  post : int;  (** postorder rank, 0-based *)
  level : int;  (** depth; document root element = 1 *)
}

val is_descendant : t -> of_:t -> bool
val is_ancestor : t -> of_:t -> bool
val is_following : t -> of_:t -> bool
val is_preceding : t -> of_:t -> bool

val is_child : t -> of_:t -> bool
(** Descendant at exactly one level deeper. *)

val is_parent : t -> of_:t -> bool

val pp : Format.formatter -> t -> unit

(** Dewey position encoding as binary strings (paper Section 4.2).

    A node's Dewey position is the vector of local sibling positions on the
    path from the document root to the node. Each vector component is
    encoded as a 3-byte big-endian integer whose top bit is zero, i.e.
    components range over [0 .. 0x7FFFFF], and the encoding of a vector is
    the concatenation of its component encodings.

    With this representation, plain lexicographic byte comparison of the
    encodings realises every XPath axis test (Table 2 of the paper):
    appending the sentinel byte [0xFF] ([max_suffix]) to an encoding [d]
    yields a string strictly greater than every descendant of [d] and
    strictly smaller than everything following [d] in document order. *)

type t = private string
(** An encoded Dewey position. The representation is exposed as a string so
    the relational layer can store and compare it as a binary column, but
    values can only be constructed through this interface. *)

exception Invalid of string
(** Raised when constructing from out-of-range components or decoding a
    malformed encoding. *)

val component_max : int
(** Largest representable component value, [0x7FFFFF]. *)

val root : t
(** The Dewey position [1] of a document root element. *)

val of_components : int list -> t
(** Encode a non-empty component vector. Raises {!Invalid} if any component
    is negative or exceeds {!component_max}, or if the list is empty. *)

val to_components : t -> int list
(** Decode back to the component vector. *)

val of_string_exn : string -> t
(** Re-validate a raw binary string (e.g. read back from a database
    column). Raises {!Invalid} if not a well-formed encoding. *)

val to_raw : t -> string
(** The raw binary encoding (identity, but explicit at call sites). *)

val child : t -> int -> t
(** [child d i] is the position of the [i]-th child (1-based) of the node
    at [d]. *)

val parent : t -> t option
(** Position of the parent, or [None] for a root (single-component)
    position. *)

val level : t -> int
(** Number of components, i.e. the node's depth (root = 1). *)

val compare : t -> t -> int
(** Lexicographic byte order — identical to SQL comparison of the binary
    column, and equal to document order on well-formed positions. *)

val equal : t -> t -> bool

val max_suffix : string
(** The one-byte sentinel ['\xFF'] appended by the SQL translations
    ([dewey_pos || 'f'] in the paper's Oracle hex notation). *)

val upper_bound : t -> string
(** [upper_bound d] is [to_raw d ^ max_suffix]: strictly greater than every
    descendant of [d], strictly smaller than every following node. *)

val is_prefix : t -> t -> bool
(** [is_prefix a b] — is [a]'s component vector a proper or equal prefix of
    [b]'s? *)

(** {2 Axis predicates (Lemmas 1-2 and Table 2)}

    These are the ground-truth relational conditions; the SQL generator
    emits exactly these comparisons. *)

val is_descendant : t -> of_:t -> bool
(** Strict descendant: [d > a && d < a || 'F'] (Lemma 1). *)

val is_ancestor : t -> of_:t -> bool

val is_following : t -> of_:t -> bool
(** Document-order following, excluding descendants (Lemma 2). *)

val is_preceding : t -> of_:t -> bool

val is_sibling : t -> t -> bool
(** Same parent (and distinct positions). *)

val pp : Format.formatter -> t -> unit
(** Prints the dotted decimal form, e.g. [1.1.2]. *)

val to_dotted : t -> string

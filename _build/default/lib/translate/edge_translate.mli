(** PPF-based XPath-to-SQL translation over the schema-oblivious Edge
    mapping — the paper's Section 5.1 comparison point ("Edge-like PPF").

    The same PPF machinery as {!Translate}, retargeted at the single
    [edge] relation: every fragment joins [edge] with the [Paths] relation
    under a path regex (there is no schema, so path filters can never be
    omitted), structural joins are Dewey self-joins on [edge], child and
    parent steps use the [par_id] foreign key, and attribute predicates
    join the separate [attr] relation (paper footnote 3). Wildcards never
    cause SQL splitting here: the single central relation absorbs them. *)

module Sql = Ppfx_minidb.Sql

exception Unsupported of string

val translate : Ppfx_xpath.Ast.expr -> Sql.statement option
(** Translate for a store created by {!Ppfx_shred.Edge}. Projects
    [(id, dewey_pos, value)] in document order. *)

val result_ids : Ppfx_minidb.Engine.result -> int list

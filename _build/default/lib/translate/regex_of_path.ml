module Ast = Ppfx_xpath.Ast
module Regex = Ppfx_regex.Regex

type seg = {
  desc : bool;
  name : string option;
}

let seg_of_step (step : Ast.step) =
  let name =
    match step.Ast.test with
    | Ast.Name n -> Some (Some n)
    | Ast.Wildcard | Ast.Any_node -> Some None
    | Ast.Text -> None
  in
  match name, step.Ast.axis with
  | Some name, Ast.Child -> Some { desc = false; name }
  | Some name, Ast.Descendant -> Some { desc = true; name }
  | _, _ -> None

let name_pattern = function
  | Some n -> Regex.quote n
  | None -> "[^/]+"

let forward ~anchored segs =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (if anchored then "^" else "^.*");
  List.iteri
    (fun i seg ->
      (* The first segment of an unanchored chain is a descendant segment;
         its arbitrary-depth prefix is already covered by the ".*". *)
      if seg.desc && not ((not anchored) && i = 0) then Buffer.add_string buf "/(.+/)?"
      else Buffer.add_char buf '/';
      Buffer.add_string buf (name_pattern seg.name))
    segs;
  Buffer.add_char buf '$';
  Buffer.contents buf

let backward ~context steps =
  (* Build right-to-left: the context's own tag ends the path; each
     parent step prepends an adjacent segment, each ancestor step a
     segment followed by an arbitrary gap. *)
  let tail = "/" ^ name_pattern context ^ "$" in
  let pattern =
    List.fold_left
      (fun acc (axis, name) ->
        match axis with
        | Ast.Parent -> "/" ^ name_pattern name ^ acc
        | Ast.Ancestor -> "/" ^ name_pattern name ^ "(/.+)?" ^ acc
        | Ast.Ancestor_or_self | Ast.Child | Ast.Descendant | Ast.Descendant_or_self
        | Ast.Self | Ast.Following | Ast.Following_sibling | Ast.Preceding
        | Ast.Preceding_sibling | Ast.Attribute ->
          invalid_arg "Regex_of_path.backward: not a parent/ancestor step")
      tail steps
  in
  "^.*" ^ pattern

let ends_with name = "^(.*/)?" ^ Regex.quote name ^ "$"

let matches pattern path = Regex.search (Regex.compile pattern) path

let min_levels segs = List.length segs

let fixed_depth segs = List.for_all (fun s -> not s.desc) segs

module Ast = Ppfx_xpath.Ast
module Edge = Ppfx_shred.Edge
module Sql = Ppfx_minidb.Sql
module Value = Ppfx_minidb.Value
module Engine = Ppfx_minidb.Engine
module Rx = Regex_of_path

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun m -> raise (Unsupported m)) fmt

(* ------------------------------------------------------------------ *)
(* Branch state                                                        *)
(* ------------------------------------------------------------------ *)

type node_ctx = {
  alias : string;
  tag : string option;  (** statically-known tag (None for wildcards) *)
  chain : Rx.seg list option;  (** anchored forward chain, as in Translate *)
  paths_alias : string option;
}

type branch = {
  from_ : (string * string) list;  (** reversed *)
  conj : Sql.expr list;  (** reversed *)
  cur : node_ctx option;
}

let empty_branch = { from_ = []; conj = []; cur = None }

let add_from b table alias = { b with from_ = (table, alias) :: b.from_ }

let add_conj b e = { b with conj = e :: b.conj }

type env = { counter : (string, int) Hashtbl.t }

let fresh env base =
  let n = 1 + Option.value ~default:0 (Hashtbl.find_opt env.counter base) in
  Hashtbl.replace env.counter base n;
  if n = 1 then base else Printf.sprintf "%s%d" base n

let col alias c = Sql.Col (alias, c)

let dewey alias = col alias "dewey_pos"

let dewey_upper alias = Sql.Concat (dewey alias, Sql.Const (Value.Bin "\xFF"))

(* Every structural join here is a self-join of [edge]; the strict lower
   bound keeps a node from matching itself (Lemma 1 is strict). *)
let descendant_join ~anc ~desc =
  Sql.And
    ( Sql.Between (dewey desc.alias, dewey anc.alias, dewey_upper anc.alias),
      Sql.Cmp (Sql.Gt, dewey desc.alias, dewey anc.alias) )

let level_eq ~shallow ~deep k =
  Sql.Cmp
    ( Sql.Eq,
      Sql.Length (dewey deep),
      Sql.Arith (Sql.Add, Sql.Length (dewey shallow), Sql.Const (Value.Int (3 * k))) )

(* Minimum distance: [deep] is at least [k] levels below [shallow]. *)
let level_ge ~shallow ~deep k =
  Sql.Cmp
    ( Sql.Ge,
      Sql.Length (dewey deep),
      Sql.Arith (Sql.Add, Sql.Length (dewey shallow), Sql.Const (Value.Int (3 * k))) )

let tag_condition alias (test : Ast.node_test) =
  match test with
  | Ast.Name n -> Some (Sql.Cmp (Sql.Eq, col alias "tag", Sql.Const (Value.Str n)))
  | Ast.Wildcard | Ast.Any_node -> None
  | Ast.Text -> unsupported "text() is not an element step"

let name_of_test = function
  | Ast.Name n -> Some n
  | Ast.Wildcard | Ast.Any_node -> None
  | Ast.Text -> unsupported "text() is not an element step"

(* Join [node] with the Paths relation (lossless). *)
let ensure_paths_join b (node : node_ctx) =
  match node.paths_alias with
  | Some pa -> b, node, pa
  | None ->
    let pa = node.alias ^ "_paths" in
    let b = add_from b Edge.paths_table pa in
    let b = add_conj b (Sql.Cmp (Sql.Eq, col node.alias "path_id", col pa "id")) in
    b, { node with paths_alias = Some pa }, pa

let apply_path_filter b (node : node_ctx) pattern =
  let b, node, pa = ensure_paths_join b node in
  add_conj b (Sql.Regexp_like (col pa "path", pattern)), node

(* ------------------------------------------------------------------ *)
(* Fragments                                                           *)
(* ------------------------------------------------------------------ *)

let rec translate_steps env (b : branch) (steps : Ast.step list) : branch list =
  let ppfs = Ppf.split steps in
  List.fold_left
    (fun branches ppf -> List.concat_map (fun b -> translate_ppf env b ppf) branches)
    [ b ] ppfs

and translate_ppf env (b : branch) (ppf : Ppf.t) : branch list =
  match ppf with
  | Ppf.Forward steps -> translate_forward env b steps
  | Ppf.Backward steps -> translate_backward env b steps
  | Ppf.Order step -> translate_order env b step

and translate_forward env (b : branch) (steps : Ast.step list) : branch list =
  let segs =
    List.map
      (fun s ->
        match Rx.seg_of_step s with
        | Some seg -> seg
        | None -> unsupported "unsupported node test in forward step")
      steps
  in
  let cur_chain = match b.cur with None -> Some [] | Some c -> c.chain in
  let mode =
    match b.cur, cur_chain with
    | None, _ -> `Anchored []
    | Some _, Some prefix when Rx.fixed_depth prefix -> `Anchored prefix
    | Some _, Some prefix when Rx.fixed_depth segs -> `Child_exact prefix
    | Some _, Some prefix when List.length segs = 1 -> `Single_desc prefix
    | Some _, (Some _ | None) -> `Per_step
  in
  match mode with
  | `Per_step -> translate_per_step env b steps
  | (`Anchored prefix | `Child_exact prefix | `Single_desc prefix) as mode ->
    let full_segs = prefix @ segs in
    let pattern = Rx.forward ~anchored:true full_segs in
    let alias = fresh env "e" in
    let last_step = List.nth steps (List.length steps - 1) in
    let node =
      { alias; tag = name_of_test last_step.Ast.test; chain = Some full_segs; paths_alias = None }
    in
    let b = add_from b Edge.edge_table alias in
    let b =
      match b.cur with
      | None -> b
      | Some prev ->
        (match steps with
         | [ { Ast.axis = Ast.Child; _ } ] ->
           add_conj b (Sql.Cmp (Sql.Eq, col node.alias "par_id", col prev.alias "id"))
         | _ ->
           let b = add_conj b (descendant_join ~anc:prev ~desc:node) in
           (match mode with
            | `Child_exact _ ->
              add_conj b (level_eq ~shallow:prev.alias ~deep:node.alias (List.length segs))
            | `Anchored _ | `Single_desc _ -> b))
    in
    let b, node = apply_path_filter b node pattern in
    let b = { b with cur = Some node } in
    translate_predicates env b ~step:last_step
      (List.concat_map (fun s -> s.Ast.predicates) steps)

and translate_per_step env (b : branch) (steps : Ast.step list) : branch list =
  List.fold_left
    (fun branches (step : Ast.step) ->
      List.concat_map (fun b -> translate_single_step env b step) branches)
    [ b ] steps

and translate_single_step env (b : branch) (step : Ast.step) : branch list =
  let alias = fresh env "e" in
  let node =
    { alias; tag = name_of_test step.Ast.test; chain = None; paths_alias = None }
  in
  let b = add_from b Edge.edge_table alias in
  let b =
    match tag_condition alias step.Ast.test with Some c -> add_conj b c | None -> b
  in
  let joined =
    match b.cur, step.Ast.axis with
    | None, Ast.Child ->
      (* A child of the virtual root: the document root element. *)
      Some (add_conj b (Sql.Not (Sql.Is_not_null (col alias "par_id"))))
    | None, Ast.Descendant -> Some b
    | None, _ -> None
    | Some prev, Ast.Child ->
      Some (add_conj b (Sql.Cmp (Sql.Eq, col alias "par_id", col prev.alias "id")))
    | Some prev, Ast.Parent ->
      Some (add_conj b (Sql.Cmp (Sql.Eq, col prev.alias "par_id", col alias "id")))
    | Some prev, Ast.Descendant -> Some (add_conj b (descendant_join ~anc:prev ~desc:node))
    | Some prev, Ast.Ancestor -> Some (add_conj b (descendant_join ~anc:node ~desc:prev))
    | Some prev, (Ast.Following | Ast.Following_sibling | Ast.Preceding | Ast.Preceding_sibling)
      ->
      Some (order_join b ~prev ~node step.Ast.axis)
    | Some _, (Ast.Self | Ast.Descendant_or_self | Ast.Ancestor_or_self | Ast.Attribute) ->
      unsupported "axis %s should have been normalized away" (Ast.axis_name step.Ast.axis)
  in
  match joined with
  | None -> []
  | Some b ->
    let b = { b with cur = Some node } in
    translate_predicates env b ~step step.Ast.predicates

and translate_backward env (b : branch) (steps : Ast.step list) : branch list =
  let prev =
    match b.cur with
    | Some prev -> prev
    | None -> unsupported "backward fragment at the start of a path"
  in
  let axes = List.map (fun (s : Ast.step) -> s.Ast.axis) steps in
  (* Exact holistic shapes: parent* with an optional single trailing
     ancestor. Longer ancestor tails cannot pin which ancestor the Dewey
     join selects (see DESIGN.md), so they fall back to per-step joins
     unless the prominent definition is provably unique per root path. *)
  let rec parents_then_one_ancestor = function
    | Ast.Parent :: rest -> parents_then_one_ancestor rest
    | [ Ast.Ancestor ] -> true
    | _ -> false
  in
  let all_parents = List.for_all (fun a -> a = Ast.Parent) axes in
  let mode =
    match steps with
    | [ { Ast.axis = Ast.Parent; _ } ] -> `Fk
    | _ when all_parents -> `Dewey_exact
    | _ when parents_then_one_ancestor axes -> `Dewey
    | _ -> `Per_step
  in
  match mode with
  | `Per_step -> translate_per_step env b steps
  | (`Fk | `Dewey | `Dewey_exact) as mode ->
    let backward_steps =
      List.map (fun (s : Ast.step) -> s.Ast.axis, name_of_test s.Ast.test) steps
    in
    let pattern = Rx.backward ~context:prev.tag backward_steps in
    let alias = fresh env "e" in
    let last_step = List.nth steps (List.length steps - 1) in
    let node =
      { alias; tag = name_of_test last_step.Ast.test; chain = None; paths_alias = None }
    in
    let b = add_from b Edge.edge_table alias in
    let b =
      match tag_condition alias last_step.Ast.test with
      | Some c -> add_conj b c
      | None -> b
    in
    let b =
      match mode with
      | `Fk -> add_conj b (Sql.Cmp (Sql.Eq, col prev.alias "par_id", col alias "id"))
      | `Dewey ->
        add_conj
          (add_conj b (descendant_join ~anc:node ~desc:prev))
          (level_ge ~shallow:node.alias ~deep:prev.alias (List.length steps))
      | `Dewey_exact ->
        add_conj
          (add_conj b (descendant_join ~anc:node ~desc:prev))
          (level_eq ~shallow:node.alias ~deep:prev.alias (List.length steps))
    in
    let b, _prev_with_paths = apply_path_filter b prev pattern in
    let b = { b with cur = Some node } in
    translate_predicates env b (List.concat_map (fun s -> s.Ast.predicates) steps)

and order_join (b : branch) ~prev ~node axis =
  match axis with
  | Ast.Following -> add_conj b (Sql.Cmp (Sql.Gt, dewey node.alias, dewey_upper prev.alias))
  | Ast.Preceding -> add_conj b (Sql.Cmp (Sql.Gt, dewey prev.alias, dewey_upper node.alias))
  | Ast.Following_sibling ->
    add_conj
      (add_conj b (Sql.Cmp (Sql.Gt, dewey node.alias, dewey prev.alias)))
      (Sql.Cmp (Sql.Eq, col node.alias "par_id", col prev.alias "par_id"))
  | Ast.Preceding_sibling ->
    add_conj
      (add_conj b (Sql.Cmp (Sql.Lt, dewey node.alias, dewey prev.alias)))
      (Sql.Cmp (Sql.Eq, col node.alias "par_id", col prev.alias "par_id"))
  | Ast.Child | Ast.Descendant | Ast.Descendant_or_self | Ast.Self | Ast.Parent
  | Ast.Ancestor | Ast.Ancestor_or_self | Ast.Attribute ->
    assert false

and translate_order env (b : branch) (step : Ast.step) : branch list =
  translate_single_step env b step

(* --- Predicates ------------------------------------------------------ *)

(* Positional predicates as the FIRST predicate of a child::name step:
   position()/last() are the stored same-tag sibling ordinal and count. *)
and positional_condition (node : node_ctx) (p : Ast.expr) : Sql.expr option =
  let ord = col node.alias "ord" in
  let last = col node.alias "sibs" in
  let num f =
    if Float.is_integer f then Some (Sql.Const (Value.Int (int_of_float f))) else None
  in
  let sql_op = function
    | Ast.Eq -> Some Sql.Eq
    | Ast.Ne -> Some Sql.Ne
    | Ast.Lt -> Some Sql.Lt
    | Ast.Le -> Some Sql.Le
    | Ast.Gt -> Some Sql.Gt
    | Ast.Ge -> Some Sql.Ge
    | _ -> None
  in
  let flip = function
    | Sql.Eq -> Sql.Eq
    | Sql.Ne -> Sql.Ne
    | Sql.Lt -> Sql.Gt
    | Sql.Le -> Sql.Ge
    | Sql.Gt -> Sql.Lt
    | Sql.Ge -> Sql.Le
  in
  match p with
  | Ast.Number f ->
    (match num f with
     | Some n -> Some (Sql.Cmp (Sql.Eq, ord, n))
     | None -> Some (Sql.Bool_const false))
  | Ast.Fn_position -> Some (Sql.Bool_const true)
  | Ast.Fn_last -> Some (Sql.Cmp (Sql.Eq, ord, last))
  | Ast.Binop (op, Ast.Fn_position, Ast.Number f) ->
    (match sql_op op, num f with
     | Some op, Some n -> Some (Sql.Cmp (op, ord, n))
     | _ -> None)
  | Ast.Binop (op, Ast.Number f, Ast.Fn_position) ->
    (match sql_op op, num f with
     | Some op, Some n -> Some (Sql.Cmp (flip op, ord, n))
     | _ -> None)
  | Ast.Binop (op, Ast.Fn_position, Ast.Fn_last) ->
    (match sql_op op with Some op -> Some (Sql.Cmp (op, ord, last)) | None -> None)
  | Ast.Binop (op, Ast.Fn_last, Ast.Fn_position) ->
    (match sql_op op with Some op -> Some (Sql.Cmp (flip op, ord, last)) | None -> None)
  | _ -> None

and translate_predicates env (b : branch) ?step (predicates : Ast.expr list) :
    branch list =
  match predicates with
  | [] -> [ b ]
  | p :: rest ->
    let node =
      match b.cur with Some n -> n | None -> unsupported "predicate without context"
    in
    let positional =
      match step with
      | Some { Ast.axis = Ast.Child; test = Ast.Name _; _ } -> positional_condition node p
      | _ -> None
    in
    let b, cond =
      match positional with
      | Some cond -> b, cond
      | None -> translate_predicate env b node p
    in
    let b =
      match Sql.simplify cond with
      | Sql.Bool_const true -> b
      | cond -> add_conj b cond
    in
    translate_predicates env b rest

and translate_predicate env (b : branch) (node : node_ctx) (p : Ast.expr) :
    branch * Sql.expr =
  (* A sub-predicate may extend the branch (e.g. add the node's Paths
     join); later siblings must see the updated node context. *)
  let refresh b node =
    match b.cur with
    | Some n when String.equal n.alias node.alias -> n
    | Some _ | None -> node
  in
  match p with
  | Ast.Binop (Ast.And, x, y) ->
    let b, cx = translate_predicate env b node x in
    let b, cy = translate_predicate env b (refresh b node) y in
    b, Sql.And (cx, cy)
  | Ast.Binop (Ast.Or, x, y) | Ast.Union (x, y) ->
    let b, cx = translate_predicate env b node x in
    let b, cy = translate_predicate env b (refresh b node) y in
    b, Sql.Or (cx, cy)
  | Ast.Fn_not x ->
    let b, cx = translate_predicate env b node x in
    b, Sql.Not cx
  | Ast.Binop ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op, x, y) ->
    translate_comparison env b node op x y
  | Ast.Path path -> translate_path_predicate env b node path
  | Ast.Literal s -> b, Sql.Bool_const (String.length s > 0)
  | Ast.Number _ | Ast.Fn_position | Ast.Fn_last ->
    unsupported "positional predicates are not translatable to SQL in this scheme"
  | Ast.Fn_count _ -> unsupported "count() in predicates is not supported"
  | Ast.Fn_contains (x, y) | Ast.Fn_starts_with (x, y) ->
    (* contains()/starts-with() over a single-valued operand and a
       constant pattern become REGEXP_LIKE filters. *)
    let anchored = match p with Ast.Fn_starts_with _ -> true | _ -> false in
    let empty_literal = match y with Ast.Literal "" -> true | _ -> false in
    let pattern =
      match y with
      | Ast.Literal s ->
        (if anchored then "^" else "") ^ Ppfx_regex.Regex.quote s
      | _ -> unsupported "the second argument of contains()/starts-with() must be a literal"
    in
    (* XPath: contains(x, '') is always true (string conversion), even when
       x converts from an empty node-set; a NULL SQL column would wrongly
       reject it. *)
    if empty_literal then (b, Sql.Bool_const true)
    else
    (match as_value node x with
     | Some v -> b, Sql.Regexp_like (v, pattern)
     | None ->
       unsupported
         "contains()/starts-with() needs a single-valued operand (., @attr or text()); \
          rewrite path operands as nested predicates, e.g. p[contains(., 's')]")
  | Ast.Fn_string_length _ ->
    unsupported "string-length() is only supported inside comparisons"
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod), _, _) | Ast.Neg _ ->
    unsupported "bare arithmetic used as a predicate"

and attr_exists env (node : node_ctx) (name_test : Ast.node_test) extra =
  let alias = fresh env "a" in
  let conds =
    [ Sql.Cmp (Sql.Eq, col alias "elem_id", col node.alias "id") ]
    @ (match name_test with
       | Ast.Name n -> [ Sql.Cmp (Sql.Eq, col alias "name", Sql.Const (Value.Str n)) ]
       | Ast.Wildcard | Ast.Any_node -> []
       | Ast.Text -> assert false)
    @ List.map (fun f -> f (col alias "value")) extra
  in
  Sql.Exists
    {
      Sql.distinct = false;
      projections = [ Sql.Const Value.Null, "x" ];
      from = [ Edge.attr_table, alias ];
      where = Some (List.fold_left (fun a c -> Sql.And (a, c)) (List.hd conds) (List.tl conds));
      order_by = [];
    }

and translate_path_predicate env (b : branch) (node : node_ctx) (path : Ast.path) :
    branch * Sql.expr =
  if path.Ast.absolute then translate_exists env b node path []
  else begin
    let variants = Ppf.normalize_steps path.Ast.steps in
    if variants = [] then b, Sql.Bool_const false
    else begin
      let refresh b node =
        match b.cur with
        | Some n when String.equal n.alias node.alias -> n
        | Some _ | None -> node
      in
      let b, conds =
        List.fold_left
          (fun (b, conds) steps ->
            let b, c = translate_path_variant env b (refresh b node) steps in
            b, c :: conds)
          (b, []) variants
      in
      match List.rev conds with
      | [] -> b, Sql.Bool_const false
      | c :: cs -> b, List.fold_left (fun acc x -> Sql.Or (acc, x)) c cs
    end
  end

and translate_path_variant env (b : branch) (node : node_ctx) (steps : Ast.step list) :
    branch * Sql.expr =
  match steps with
  | [] -> b, Sql.Bool_const true
  | [ { Ast.axis = Ast.Attribute; test; predicates = [] } ] ->
    b, attr_exists env node test []
  | [ { Ast.axis = Ast.Child; test = Ast.Text; predicates = [] } ] ->
    b, Sql.Cmp (Sql.Ne, col node.alias "dtext", Sql.Const (Value.Str ""))
  | _ when Ppf.backward_simple steps ->
    let backward_steps =
      List.map (fun (s : Ast.step) -> s.Ast.axis, name_of_test s.Ast.test) steps
    in
    let pattern = Rx.backward ~context:node.tag backward_steps in
    let b, node', pa = ensure_paths_join b node in
    let b = if b.cur = Some node then { b with cur = Some node' } else b in
    b, Sql.Regexp_like (col pa "path", pattern)
  | _ -> translate_exists env b node { Ast.absolute = false; steps } []

(* Trailing value steps become value expressions on the final node. *)
and strip_final_value_step (steps : Ast.step list) =
  match List.rev steps with
  | { Ast.axis = Ast.Attribute; test; predicates = [] } :: rev_rest ->
    List.rev rev_rest, `Attr test
  | { Ast.axis = Ast.Child; test = Ast.Text; predicates = [] } :: rev_rest ->
    List.rev rev_rest, `Text
  | _ -> steps, `Element

and translate_exists env (b : branch) (node : node_ctx) (path : Ast.path)
    (extra : (Sql.expr -> Sql.expr) list) : branch * Sql.expr =
  let start : branch =
    if path.Ast.absolute then empty_branch
    else { empty_branch with cur = Some { node with paths_alias = None } }
  in
  let variants = Ppf.normalize_steps path.Ast.steps in
  let sub_branches =
    List.concat_map
      (fun steps ->
        let steps, final_kind = strip_final_value_step steps in
        if steps = [] then [ (start, final_kind) ]
        else List.map (fun br -> br, final_kind) (translate_steps env start steps))
      variants
  in
  let conds =
    List.filter_map
      (fun ((sub : branch), final_kind) ->
        match sub.cur with
        | None -> None
        | Some final ->
          if sub.from_ = [] then begin
            (* Collapsed onto the predicated node itself. *)
            match final_kind with
            | `Element ->
              let conds = List.map (fun f -> f (col final.alias "text")) extra in
              (match conds with
               | [] -> Some (Sql.Bool_const true)
               | c :: cs -> Some (List.fold_left (fun a x -> Sql.And (a, x)) c cs))
            | `Text ->
              let guard =
                Sql.Cmp (Sql.Ne, col final.alias "dtext", Sql.Const (Value.Str ""))
              in
              let conds = List.map (fun f -> f (col final.alias "dtext")) extra in
              Some (List.fold_left (fun a x -> Sql.And (a, x)) guard conds)
            | `Attr test -> Some (attr_exists env final test extra)
          end
          else begin
            let where = List.rev sub.conj in
            let value_conds =
              match final_kind with
              | `Element -> List.map (fun f -> f (col final.alias "text")) extra
              | `Text ->
                Sql.Cmp (Sql.Ne, col final.alias "dtext", Sql.Const (Value.Str ""))
                :: List.map (fun f -> f (col final.alias "dtext")) extra
              | `Attr test -> [ attr_exists env final test extra ]
            in
            let all = where @ value_conds in
            let where_expr =
              match all with
              | [] -> None
              | c :: cs -> Some (List.fold_left (fun a x -> Sql.And (a, x)) c cs)
            in
            Some
              (Sql.Exists
                 {
                   Sql.distinct = false;
                   projections = [ Sql.Const Value.Null, "x" ];
                   from = List.rev sub.from_;
                   where = where_expr;
                   order_by = [];
                 })
          end)
      sub_branches
  in
  match conds with
  | [] -> b, Sql.Bool_const false
  | c :: cs -> b, List.fold_left (fun acc x -> Sql.Or (acc, x)) c cs

and as_value (node : node_ctx) (e : Ast.expr) : Sql.expr option =
  match e with
  | Ast.Literal s -> Some (Sql.Const (Value.Str s))
  | Ast.Number f -> Some (Sql.Const (Value.Float f))
  | Ast.Neg a ->
    Option.map (fun v -> Sql.Arith (Sql.Sub, Sql.Const (Value.Int 0), v)) (as_value node a)
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod) as op, a, b) ->
    (match as_value node a, as_value node b with
     | Some va, Some vb ->
       let sop =
         match op with
         | Ast.Add -> Sql.Add
         | Ast.Sub -> Sql.Sub
         | Ast.Mul -> Sql.Mul
         | Ast.Div -> Sql.Div
         | Ast.Mod -> Sql.Mod
         | _ -> assert false
       in
       Some (Sql.Arith (sop, va, vb))
     | _ -> None)
  | Ast.Path { Ast.absolute = false; steps } ->
    (match Ppf.normalize_steps steps with
     | [ [] ] -> Some (col node.alias "text")
     | [ [ { Ast.axis = Ast.Child; test = Ast.Text; predicates = [] } ] ] ->
       Some (col node.alias "dtext")
     | _ -> None)
  | Ast.Fn_string_length a -> Option.map (fun v -> Sql.Length v) (as_value node a)
  | Ast.Path _ | Ast.Union _ | Ast.Binop _ | Ast.Fn_not _ | Ast.Fn_count _
  | Ast.Fn_position | Ast.Fn_last | Ast.Fn_contains _ | Ast.Fn_starts_with _ ->
    None

and translate_comparison env (b : branch) (node : node_ctx) (op : Ast.binop) (x : Ast.expr)
    (y : Ast.expr) : branch * Sql.expr =
  let sql_op =
    match op with
    | Ast.Eq -> Sql.Eq
    | Ast.Ne -> Sql.Ne
    | Ast.Lt -> Sql.Lt
    | Ast.Le -> Sql.Le
    | Ast.Gt -> Sql.Gt
    | Ast.Ge -> Sql.Ge
    | _ -> assert false
  in
  let flip = function
    | Sql.Eq -> Sql.Eq
    | Sql.Ne -> Sql.Ne
    | Sql.Lt -> Sql.Gt
    | Sql.Le -> Sql.Ge
    | Sql.Gt -> Sql.Lt
    | Sql.Ge -> Sql.Le
  in
  let vx = as_value node x and vy = as_value node y in
  match vx, vy with
  | Some ex, Some ey -> b, Sql.Cmp (sql_op, ex, ey)
  | Some ex, None ->
    (match y with
     | Ast.Path p ->
       translate_exists env b node p [ (fun v -> Sql.Cmp (flip sql_op, v, ex)) ]
     | _ -> unsupported "unsupported comparison operand: %s" (Ast.to_string y))
  | None, Some ey ->
    (match x with
     | Ast.Path p -> translate_exists env b node p [ (fun v -> Sql.Cmp (sql_op, v, ey)) ]
     | _ -> unsupported "unsupported comparison operand: %s" (Ast.to_string x))
  | None, None ->
    (match x, y with
     | Ast.Path px, Ast.Path py ->
       translate_exists env b node px
         [
           (fun vx ->
             let _, cond =
               translate_exists env b node py
                 [
                   (fun vy ->
                     match sql_op with
                     | Sql.Eq | Sql.Ne -> Sql.Cmp (sql_op, vx, vy)
                     | Sql.Lt | Sql.Le | Sql.Gt | Sql.Ge ->
                       Sql.Cmp (sql_op, Sql.To_number vx, Sql.To_number vy));
                 ]
             in
             cond);
         ]
     | _ ->
       unsupported "unsupported comparison: %s vs %s" (Ast.to_string x) (Ast.to_string y))

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let finalize (branches : (branch * [ `Element | `Text | `Attr of Ast.node_test ]) list) :
    Sql.statement option =
  let selects =
    List.filter_map
      (fun ((b : branch), kind) ->
        match b.cur with
        | None -> None
        | Some node ->
          let value, guards =
            match kind with
            | `Element -> col node.alias "text", []
            | `Text ->
              ( col node.alias "dtext",
                [ Sql.Cmp (Sql.Ne, col node.alias "dtext", Sql.Const (Value.Str "")) ] )
            | `Attr _ -> unsupported "attribute-final backbones are not supported"
          in
          let conjs = List.rev b.conj @ guards in
          if List.mem (Sql.Bool_const false) conjs then None else
          let where =
            match conjs with
            | [] -> None
            | c :: cs -> Some (List.fold_left (fun a x -> Sql.And (a, x)) c cs)
          in
          Some
            {
              Sql.distinct = true;
              projections =
                [ col node.alias "id", "id"; dewey node.alias, "dewey_pos"; value, "value" ];
              from = List.rev b.from_;
              where;
              order_by = [ dewey node.alias ];
            })
      branches
  in
  match selects with
  | [] -> None
  | [ s ] -> Some (Sql.Select s)
  | ss -> Some (Sql.Union (List.map (fun s -> { s with Sql.order_by = [] }) ss, [ 1 ]))

let translate_path env (path : Ast.path) =
  let variants = Ppf.normalize_steps path.Ast.steps in
  List.concat_map
    (fun steps ->
      let steps, kind = strip_final_value_step steps in
      let kind =
        match kind with
        | `Element -> `Element
        | `Text -> `Text
        | `Attr t -> `Attr t
      in
      if steps = [] then []
      else List.map (fun b -> b, kind) (translate_steps env empty_branch steps))
    variants

let rec collect_paths (e : Ast.expr) : Ast.path list =
  match e with
  | Ast.Path p -> [ p ]
  | Ast.Union (a, b) -> collect_paths a @ collect_paths b
  | Ast.Binop _ | Ast.Neg _ | Ast.Literal _ | Ast.Number _ | Ast.Fn_not _ | Ast.Fn_count _
  | Ast.Fn_position | Ast.Fn_last | Ast.Fn_contains _ | Ast.Fn_starts_with _
  | Ast.Fn_string_length _ ->
    unsupported "top-level expression must be a path or a union of paths"

let translate (e : Ast.expr) : Sql.statement option =
  let env = { counter = Hashtbl.create 16 } in
  let branches = List.concat_map (translate_path env) (collect_paths e) in
  finalize branches

let result_ids (r : Engine.result) =
  List.sort_uniq Int.compare
    (List.filter_map
       (fun row -> match row.(0) with Value.Int id -> Some id | _ -> None)
       r.Engine.rows)

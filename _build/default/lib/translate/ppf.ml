module Ast = Ppfx_xpath.Ast

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun m -> raise (Unsupported m)) fmt

(* Expand descendant-or-self / ancestor-or-self into descendant/ancestor
   or a merge into the previous step, and drop plain self steps. Returns
   the list of step-list variants (the "or-self" alternatives). *)
let normalize_steps steps =
  let merge_self_into_prev rev_prev test predicates =
    (* self::T constrains the previous step's node test and inherits the
       predicates. Returns None when the combination is impossible. *)
    match rev_prev with
    | [] -> None (* self of the virtual root never matches a test *)
    | prev :: rest ->
      let combined_test =
        match prev.Ast.test, test with
        | t, (Ast.Any_node | Ast.Wildcard) -> Some t
        | (Ast.Any_node | Ast.Wildcard), t -> Some t
        | Ast.Name a, Ast.Name b -> if String.equal a b then Some (Ast.Name a) else None
        | Ast.Text, Ast.Text -> Some Ast.Text
        | Ast.Name _, Ast.Text | Ast.Text, Ast.Name _ -> None
      in
      Option.map
        (fun test ->
          { prev with Ast.test; predicates = prev.Ast.predicates @ predicates } :: rest)
        combined_test
  in
  let rec go rev_acc = function
    | [] -> [ List.rev rev_acc ]
    | (step : Ast.step) :: rest ->
      (match step.Ast.axis with
       | Ast.Self ->
         (match merge_self_into_prev rev_acc step.Ast.test step.Ast.predicates with
          | Some rev_acc' -> go rev_acc' rest
          | None ->
            if rev_acc = [] && step.Ast.test = Ast.Any_node && step.Ast.predicates = []
            then go rev_acc rest
            else [])
       | Ast.Descendant_or_self ->
         let as_descendant = go ({ step with Ast.axis = Ast.Descendant } :: rev_acc) rest in
         let as_self =
           match merge_self_into_prev rev_acc step.Ast.test step.Ast.predicates with
           | Some rev_acc' -> go rev_acc' rest
           | None -> []
         in
         as_descendant @ as_self
       | Ast.Ancestor_or_self ->
         let as_ancestor = go ({ step with Ast.axis = Ast.Ancestor } :: rev_acc) rest in
         let as_self =
           match merge_self_into_prev rev_acc step.Ast.test step.Ast.predicates with
           | Some rev_acc' -> go rev_acc' rest
           | None -> []
         in
         as_ancestor @ as_self
       | Ast.Child | Ast.Descendant | Ast.Parent | Ast.Ancestor | Ast.Following
       | Ast.Following_sibling | Ast.Preceding | Ast.Preceding_sibling | Ast.Attribute ->
         go (step :: rev_acc) rest)
  in
  go [] steps


type t =
  | Forward of Ast.step list
  | Backward of Ast.step list
  | Order of Ast.step

(* Split a normalized backbone into PPFs: maximal forward or backward
   runs (a predicate ends its run), order-axis steps standalone. *)
let split steps =
  let kind (s : Ast.step) =
    match s.Ast.axis with
    | Ast.Child | Ast.Descendant -> `F
    | Ast.Parent | Ast.Ancestor -> `B
    | Ast.Following | Ast.Following_sibling | Ast.Preceding | Ast.Preceding_sibling -> `O
    | Ast.Attribute -> `A
    | Ast.Self | Ast.Descendant_or_self | Ast.Ancestor_or_self ->
      unsupported "axis %s should have been normalized away" (Ast.axis_name s.Ast.axis)
  in
  let rec go acc run run_kind = function
    | [] ->
      let acc = if run = [] then acc else close acc run run_kind in
      List.rev acc
    | s :: rest ->
      (match kind s with
       | `A -> unsupported "attribute steps are only allowed as the final step"
       | `O ->
         let acc = if run = [] then acc else close acc run run_kind in
         go (Order s :: acc) [] `F rest
       | (`F | `B) as k ->
         let acc, run = if run <> [] && k <> run_kind then close acc run run_kind, [] else acc, run in
         let run = run @ [ s ] in
         if s.Ast.predicates <> [] then go (close acc run k) [] k rest
         else go acc run k rest)
  and close acc run = function
    | `F -> Forward run :: acc
    | `B -> Backward run :: acc
  in
  go [] [] `F steps


let backward_simple (steps : Ast.step list) =
  List.for_all
    (fun (s : Ast.step) ->
      (match s.Ast.axis with
       | Ast.Parent | Ast.Ancestor -> true
       | _ -> false)
      && s.Ast.predicates = []
      && match s.Ast.test with Ast.Name _ | Ast.Wildcard | Ast.Any_node -> true | Ast.Text -> false)
    steps


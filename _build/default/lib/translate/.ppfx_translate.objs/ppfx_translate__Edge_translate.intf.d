lib/translate/edge_translate.mli: Ppfx_minidb Ppfx_xpath

lib/translate/translate.mli: Ppfx_minidb Ppfx_schema Ppfx_shred Ppfx_xpath

lib/translate/translate.ml: Array Float Format Hashtbl Int List Option Ppf Ppfx_minidb Ppfx_regex Ppfx_schema Ppfx_shred Ppfx_xpath Printf Regex_of_path String

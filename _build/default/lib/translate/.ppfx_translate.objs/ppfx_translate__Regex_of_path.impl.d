lib/translate/regex_of_path.ml: Buffer List Ppfx_regex Ppfx_xpath

lib/translate/ppf.mli: Ppfx_xpath

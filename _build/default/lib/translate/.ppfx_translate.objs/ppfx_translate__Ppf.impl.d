lib/translate/ppf.ml: Format List Option Ppfx_xpath String

lib/translate/regex_of_path.mli: Ppfx_xpath

(** Construction of the POSIX-ERE patterns that realise path-id filtering
    (paper Section 4.1, Table 1).

    A forward chain is represented as a list of {!seg}: each segment is
    reached from its predecessor by a [child] step (exactly one level) or
    a [descendant] step (one or more levels), and carries a name or a
    wildcard. *)

type seg = {
  desc : bool;  (** reached via the descendant axis *)
  name : string option;  (** [None] for a wildcard *)
}

val seg_of_step : Ppfx_xpath.Ast.step -> seg option
(** [Some seg] for child/descendant steps with element node tests;
    [None] for anything else. *)

val forward : anchored:bool -> seg list -> string
(** Pattern for a forward chain. [anchored] chains start at the document
    root (pattern [^/A/B/...$], Table 1 rows 1–3); unanchored chains get a
    [^.*] prefix and are only sound when the first segment is a
    descendant segment (the translator guarantees this). *)

val backward :
  context:string option ->
  (Ppfx_xpath.Ast.axis * string option) list ->
  string
(** Pattern for a backward chain applied to the {e context} node's own
    root-to-node path (Table 1 row 4, Table 5 (2)). [context] is the
    context node's tag ([None] for a wildcard); the steps are
    parent/ancestor steps in syntactic order with their name tests. *)

val ends_with : string -> string
(** Pattern [^(.*/)?name$] used for order-axis steps (Algorithm 1 lines
    6–7). *)

val matches : string -> string -> bool
(** [matches pattern path] — compile-and-search convenience used by the
    Section 4.5 static checks. *)

val min_levels : seg list -> int
(** Minimum number of levels a chain descends: child segments contribute
    exactly one, descendant segments at least one. *)

val fixed_depth : seg list -> bool
(** True when the chain contains no descendant segment, i.e. it descends
    by exactly [min_levels]. *)

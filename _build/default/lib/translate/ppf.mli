(** Primitive Path Fragment identification (paper Section 4.1).

    Shared by the schema-aware translator ({!Translate}) and the
    schema-oblivious Edge variant ({!Edge_translate}): step normalization
    (or-self expansion, self merging), splitting a backbone into PPFs, and
    the backward-simple-path test that enables the Table 5 (2) predicate
    optimization. *)

module Ast = Ppfx_xpath.Ast

val normalize_steps : Ast.step list -> Ast.step list list
(** Expand [descendant-or-self]/[ancestor-or-self] steps into their
    descendant/ancestor and self readings (self merges its node test and
    predicates into the previous step), and drop plain [.] steps. Each
    returned variant contains only child, descendant, parent, ancestor,
    order-axis and attribute steps. An empty list means the path is
    statically unsatisfiable; a variant that is an empty step list denotes
    the context node itself. *)

type t =
  | Forward of Ast.step list
      (** consecutive child/descendant steps; predicates only on the last *)
  | Backward of Ast.step list  (** consecutive parent/ancestor steps *)
  | Order of Ast.step  (** a single order-axis step *)

val split : Ast.step list -> t list
(** Split a normalized backbone into PPFs: maximal forward or backward
    runs — a predicated step always ends its run (Section 4.1) — with
    order-axis steps standing alone. Raises [Translate.Unsupported]-style
    [Failure] via the shared [unsupported] on attribute steps in
    mid-path. *)

exception Unsupported of string

val backward_simple : Ast.step list -> bool
(** True when every step is a predicate-free parent/ancestor step with an
    element node test — the Table 5 (2) case. *)

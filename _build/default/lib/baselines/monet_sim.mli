(** MonetDB/XQuery simulator (paper reference [18]): a main-memory
    column-store evaluator over pre/post arrays with {e staircase joins}
    for the hierarchy axes.

    This is the documented substitution for the closed MonetDB/XQuery
    binary (see DESIGN.md): step-at-a-time set-oriented evaluation over
    integer columns, per-tag posting lists sorted by preorder rank,
    staircase pruning-and-skipping for the descendant axis, and O(1)
    boundary computation for the following/preceding axes — the
    optimizations the paper credits for MonetDB's wins on Q6 and QD2. *)

module Doc = Ppfx_xml.Doc

exception Unsupported of string

type t

val of_doc : Doc.t -> t
(** Build the column representation (pre/post/level/parent columns, tag
    posting lists, attribute lookups). *)

val run : t -> Ppfx_xpath.Ast.expr -> int list
(** Evaluate; returns element ids in document order. Supports the same
    subset as the SQL translators (no positional predicates). *)

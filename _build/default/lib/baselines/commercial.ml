module Ast = Ppfx_xpath.Ast
module Sql = Ppfx_minidb.Sql
module Translate = Ppfx_translate.Translate

exception Not_supported of string

let not_supported fmt = Format.kasprintf (fun m -> raise (Not_supported m)) fmt

(* The built-in processor's subset: child-only steps with name tests,
   predicates combining and/or/not over child-only relative paths,
   attributes, and comparisons of those with literals, numbers or each
   other. *)
let rec supported_expr (e : Ast.expr) =
  match e with
  | Ast.Path p -> supported_backbone p
  | Ast.Union _ | Ast.Binop _ | Ast.Neg _ | Ast.Literal _ | Ast.Number _ | Ast.Fn_not _
  | Ast.Fn_count _ | Ast.Fn_position | Ast.Fn_last | Ast.Fn_contains _
  | Ast.Fn_starts_with _ | Ast.Fn_string_length _ ->
    false

and supported_backbone (p : Ast.path) =
  p.Ast.absolute && List.for_all supported_step p.Ast.steps

and supported_step (s : Ast.step) =
  (match s.Ast.axis, s.Ast.test with
   | Ast.Child, Ast.Name _ -> true
   | _, _ -> false)
  && List.for_all supported_predicate s.Ast.predicates

and supported_predicate (e : Ast.expr) =
  match e with
  | Ast.Binop ((Ast.And | Ast.Or), a, b) -> supported_predicate a && supported_predicate b
  | Ast.Fn_not a -> supported_predicate a
  | Ast.Binop ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), a, b) ->
    supported_operand a && supported_operand b
  | Ast.Path p -> supported_relative p
  | Ast.Union _ | Ast.Binop _ | Ast.Neg _ | Ast.Literal _ | Ast.Number _ | Ast.Fn_count _
  | Ast.Fn_position | Ast.Fn_last | Ast.Fn_contains _ | Ast.Fn_starts_with _
  | Ast.Fn_string_length _ ->
    false

and supported_operand (e : Ast.expr) =
  match e with
  | Ast.Literal _ | Ast.Number _ -> true
  | Ast.Path p -> supported_relative p
  | Ast.Union _ | Ast.Binop _ | Ast.Neg _ | Ast.Fn_not _ | Ast.Fn_count _
  | Ast.Fn_position | Ast.Fn_last | Ast.Fn_contains _ | Ast.Fn_starts_with _
  | Ast.Fn_string_length _ ->
    false

and supported_relative (p : Ast.path) =
  (not p.Ast.absolute)
  && List.for_all
       (fun (s : Ast.step) ->
         match s.Ast.axis, s.Ast.test with
         | Ast.Child, Ast.Name _ -> s.Ast.predicates = []
         | Ast.Attribute, Ast.Name _ -> s.Ast.predicates = []
         | _, _ -> false)
       p.Ast.steps

let supports = supported_expr

let options =
  {
    Translate.omit_path_filters = true;
    merge_forward = false;
    fk_child_joins = true;
    force_per_step = true;
  }

let translate mapping (e : Ast.expr) =
  if not (supports e) then
    not_supported "the built-in XPath processor does not support: %s" (Ast.to_string e);
  Translate.translate (Translate.create ~options mapping) e

let result_ids = Translate.result_ids

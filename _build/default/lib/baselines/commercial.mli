(** Stand-in for the major commercial RDBMS's built-in XML
    shredding/XPath processor from the paper's Section 5 evaluation.

    The paper reports that the built-in mechanism supports only three of
    the XPathMark queries (Q23, Q24 and Q-A). This stand-in reproduces
    both the feature restriction — child-axis-only backbones with
    logical/value predicates over child-only relative paths and
    attributes — and the conventional per-step foreign-key-join
    translation profile over the schema-aware store. *)

module Sql = Ppfx_minidb.Sql

exception Not_supported of string
(** The query uses a feature outside the built-in processor's subset. *)

val supports : Ppfx_xpath.Ast.expr -> bool

val translate : Ppfx_shred.Mapping.t -> Ppfx_xpath.Ast.expr -> Sql.statement option
(** Conventional per-step translation. Raises {!Not_supported} when
    {!supports} is false. *)

val result_ids : Ppfx_minidb.Engine.result -> int list

module Ast = Ppfx_xpath.Ast
module Doc = Ppfx_xml.Doc
module Ppf = Ppfx_translate.Ppf

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun m -> raise (Unsupported m)) fmt

type t = {
  n : int;
  subtree_end : int array;  (** by pre rank: last pre in the subtree *)
  parent : int array;  (** by pre rank; -1 for the root *)
  tags : (string, int array) Hashtbl.t;  (** sorted pre streams *)
  all : int array;
}

let of_doc doc =
  let n = Doc.size doc in
  let subtree_end = Array.make n 0 in
  let parent = Array.make n (-1) in
  let children = Array.make n [||] in
  let tag_acc : (string, int list ref) Hashtbl.t = Hashtbl.create 64 in
  Doc.iter
    (fun e ->
      let pre = e.Doc.id - 1 in
      parent.(pre) <- e.Doc.parent - 1;
      children.(pre) <- Array.of_list (List.map (fun c -> c - 1) e.Doc.children);
      let cell =
        match Hashtbl.find_opt tag_acc e.Doc.tag with
        | Some r -> r
        | None ->
          let r = ref [] in
          Hashtbl.add tag_acc e.Doc.tag r;
          r
      in
      cell := pre :: !cell)
    doc;
  for pre = n - 1 downto 0 do
    subtree_end.(pre) <-
      (match children.(pre) with
       | [||] -> pre
       | cs -> subtree_end.(cs.(Array.length cs - 1)))
  done;
  let tags = Hashtbl.create (Hashtbl.length tag_acc) in
  Hashtbl.iter
    (fun tag cell -> Hashtbl.replace tags tag (Array.of_list (List.rev !cell)))
    tag_acc;
  { n; subtree_end; parent; tags; all = Array.init n Fun.id }

(* ------------------------------------------------------------------ *)
(* Pattern extraction                                                  *)
(* ------------------------------------------------------------------ *)

type edge = Child | Desc

type pattern = {
  edge : edge;
  test : string option;  (** [None] = wildcard *)
  branches : pattern list;  (** existence predicates *)
  next : pattern option;  (** continuation of the backbone/branch spine *)
}

let rec pattern_of_steps (steps : Ast.step list) : pattern =
  match steps with
  | [] -> unsupported "empty step list"
  | step :: rest ->
    let edge =
      match step.Ast.axis with
      | Ast.Child -> Child
      | Ast.Descendant -> Desc
      | axis -> unsupported "axis %s is outside the twig subset" (Ast.axis_name axis)
    in
    let test =
      match step.Ast.test with
      | Ast.Name n -> Some n
      | Ast.Wildcard | Ast.Any_node -> None
      | Ast.Text -> unsupported "text() is outside the twig subset"
    in
    let branches = List.concat_map branch_of_predicate step.Ast.predicates in
    {
      edge;
      test;
      branches;
      next = (match rest with [] -> None | rest -> Some (pattern_of_steps rest));
    }

and branch_of_predicate (p : Ast.expr) : pattern list =
  match p with
  | Ast.Binop (Ast.And, a, b) -> branch_of_predicate a @ branch_of_predicate b
  | Ast.Path { Ast.absolute = false; steps } ->
    (match Ppf.normalize_steps steps with
     | [ steps ] when steps <> [] -> [ pattern_of_steps steps ]
     | _ -> unsupported "predicate is outside the twig subset")
  | _ -> unsupported "only existence predicates combined with 'and' form twigs"

let pattern_of_expr (e : Ast.expr) : pattern =
  match e with
  | Ast.Path { Ast.absolute = true; steps } ->
    (match Ppf.normalize_steps steps with
     | [ steps ] when steps <> [] -> pattern_of_steps steps
     | _ -> unsupported "backbone is outside the twig subset")
  | _ -> unsupported "only absolute paths form twigs"

let supports e =
  match pattern_of_expr e with
  | _ -> true
  | exception Unsupported _ -> false

(* ------------------------------------------------------------------ *)
(* Structural semi-joins over sorted streams                           *)
(* ------------------------------------------------------------------ *)

let stream t = function
  | Some tag -> Option.value ~default:[||] (Hashtbl.find_opt t.tags tag)
  | None -> t.all

let lower_bound (a : int array) x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let mem_sorted a x =
  let i = lower_bound a x in
  i < Array.length a && a.(i) = x

(* Descendant semi-join (PathStack merge kernel): members of [descs]
   having an ancestor in [ancs]. Both inputs and the output are sorted by
   preorder rank; ancestors on the current root-to-node chain form the
   stack, pruned by subtree extents. *)
let desc_semijoin t (ancs : int array) (descs : int array) : int array =
  let out = ref [] in
  let stack = ref [] in
  let na = Array.length ancs in
  let ai = ref 0 in
  Array.iter
    (fun d ->
      (* push ancestors that start before d *)
      while !ai < na && ancs.(!ai) < d do
        let a = ancs.(!ai) in
        (* pop finished ancestors first *)
        while (match !stack with top :: _ -> t.subtree_end.(top) < a | [] -> false) do
          stack := List.tl !stack
        done;
        stack := a :: !stack;
        incr ai
      done;
      while (match !stack with top :: _ -> t.subtree_end.(top) < d | [] -> false) do
        stack := List.tl !stack
      done;
      match !stack with
      | top :: _ when d > top && d <= t.subtree_end.(top) -> out := d :: !out
      | _ -> ())
    descs;
  Array.of_list (List.rev !out)

(* Child semi-join: members of [childs] whose parent is in [parents]. *)
let child_semijoin t (parents : int array) (childs : int array) : int array =
  let out = ref [] in
  Array.iter
    (fun c ->
      let p = t.parent.(c) in
      if p >= 0 && mem_sorted parents p then out := c :: !out)
    childs;
  Array.of_list (List.rev !out)

(* Reverse semi-joins for predicates: candidates having a matching
   descendant / child. *)
let has_desc_semijoin t (cands : int array) (descs : int array) : int array =
  let out = ref [] in
  Array.iter
    (fun a ->
      let i = lower_bound descs (a + 1) in
      if i < Array.length descs && descs.(i) <= t.subtree_end.(a) then out := a :: !out)
    cands;
  Array.of_list (List.rev !out)

let has_child_semijoin t (cands : int array) (childs : int array) : int array =
  (* sorted set of parents of the child stream *)
  let parents =
    Array.to_list childs
    |> List.filter_map (fun c -> if t.parent.(c) >= 0 then Some t.parent.(c) else None)
    |> List.sort_uniq Int.compare
    |> Array.of_list
  in
  let out = ref [] in
  Array.iter (fun a -> if mem_sorted parents a then out := a :: !out) cands;
  Array.of_list (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

(* Bottom-up pruning: nodes of [p]'s stream (relative to an unconstrained
   context) that root a match of the sub-twig below [p]. *)
let rec satisfying t (p : pattern) : int array =
  let base = stream t p.test in
  let base =
    List.fold_left
      (fun acc branch -> prune_by_branch t acc branch)
      base p.branches
  in
  match p.next with
  | None -> base
  | Some next ->
    let below = satisfying t next in
    (match next.edge with
     | Desc -> has_desc_semijoin t base below
     | Child -> has_child_semijoin t base below)

and prune_by_branch t (cands : int array) (branch : pattern) : int array =
  let below = satisfying t branch in
  match branch.edge with
  | Desc -> has_desc_semijoin t cands below
  | Child -> has_child_semijoin t cands below

(* Top-down evaluation along the backbone spine: each spine node's
   candidates (branch-pruned) are filtered against the incoming context,
   then passed down. The final spine node's survivors are the answer. *)
let run t (e : Ast.expr) : int list =
  let pattern = pattern_of_expr e in
  let candidates (p : pattern) =
    List.fold_left (fun acc b -> prune_by_branch t acc b) (stream t p.test) p.branches
  in
  let rec walk (p : pattern) (context : int array option) : int array =
    let sat = candidates p in
    let filtered =
      match context, p.edge with
      | None, Child ->
        (* child of the virtual root: the document root element *)
        Array.of_list (List.filter (fun v -> t.parent.(v) < 0) (Array.to_list sat))
      | None, Desc -> sat
      | Some ctx, Desc -> desc_semijoin t ctx sat
      | Some ctx, Child -> child_semijoin t ctx sat
    in
    match p.next with
    | None -> filtered
    | Some next -> walk next (Some filtered)
  in
  Array.to_list (walk pattern None) |> List.map (fun pre -> pre + 1)

lib/baselines/twig.mli: Ppfx_xml Ppfx_xpath

lib/baselines/monet_sim.mli: Ppfx_xml Ppfx_xpath

lib/baselines/commercial.ml: Format List Ppfx_minidb Ppfx_translate Ppfx_xpath

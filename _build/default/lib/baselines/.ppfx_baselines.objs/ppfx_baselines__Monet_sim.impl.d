lib/baselines/monet_sim.ml: Array Float Format Fun Hashtbl Int List Option Ppfx_dewey Ppfx_translate Ppfx_xml Ppfx_xpath String

lib/baselines/accelerator.mli: Ppfx_minidb Ppfx_xml Ppfx_xpath

lib/baselines/accelerator.ml: Array Format Int List Option Ppfx_dewey Ppfx_minidb Ppfx_regex Ppfx_translate Ppfx_xml Ppfx_xpath Printf String

lib/baselines/twig.ml: Array Format Fun Hashtbl Int List Option Ppfx_translate Ppfx_xml Ppfx_xpath

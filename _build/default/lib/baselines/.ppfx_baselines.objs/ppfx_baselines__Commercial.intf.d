lib/baselines/commercial.mli: Ppfx_minidb Ppfx_shred Ppfx_xpath

(** XPath Accelerator baseline (Grust et al., reference [2] of the paper):
    schema-oblivious pre/post-plane encoding with window-based SQL
    translations ("staked out query window sizes", paper Section 5.2).

    The store is a single [accel] relation:
    [accel(id, pre, post, par, level, tag, text, dtext)] plus the shared
    [attr(elem_id, name, value)] relation. Every XPath step becomes a
    self-join whose window condition follows the pre/post-plane quadrants;
    descendant windows are staked out as
    [pre BETWEEN pre(c)+1 AND post(c)+level(c)], which the planner turns
    into a B+tree range scan on [pre]. *)

module Sql = Ppfx_minidb.Sql
module Doc = Ppfx_xml.Doc

exception Unsupported of string

type t = {
  db : Ppfx_minidb.Database.t;
  docs : Doc.t list;
}

val accel_table : string
val attr_table : string

val create : unit -> t
val load : t -> Doc.t -> t
val shred : Doc.t -> t

val translate : Ppfx_xpath.Ast.expr -> Sql.statement option
(** Per-step window-join translation. Projects [(id, pre, value)] in
    document order. *)

val result_ids : Ppfx_minidb.Engine.result -> int list

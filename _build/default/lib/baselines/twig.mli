(** Twig-pattern evaluation with stack-based structural joins — the
    paper's Section 7 future-work direction ("PPF-based processing ...
    can be combined with native XML join techniques such as twig join
    [28]", Bruno/Koudas/Srivastava's holistic twig joins).

    A twig pattern is the tree shape of an XPath backbone whose steps use
    only the child and descendant axes, with existence-only branch
    predicates. Evaluation works on per-tag node streams sorted by
    preorder rank:

    - descendant edges: a single-pass stack-based structural semi-join
      (the merge kernel of PathStack/TwigStack), O(|ancestors| +
      |descendants|);
    - child edges: parent-rank membership probes on the sorted stream;
    - branch predicates: reverse semi-joins pruning candidates bottom-up.

    Since XPath results are node {e sets} (not match tuples), semi-joins
    compute exactly the answer; the full TwigStack tuple enumeration is
    unnecessary. The module rejects anything outside the twig subset with
    {!Unsupported} — value predicates and the other axes remain the SQL
    translators' business. *)

exception Unsupported of string

type t

val of_doc : Ppfx_xml.Doc.t -> t
(** Build the per-tag streams. *)

val supports : Ppfx_xpath.Ast.expr -> bool
(** True when the expression is within the twig subset: an absolute
    child/descendant backbone with name or wildcard tests and
    existence-only relative child/descendant predicates (combined with
    [and]). *)

val run : t -> Ppfx_xpath.Ast.expr -> int list
(** Element ids in document order. Raises {!Unsupported} outside the
    subset. *)

module Ast = Ppfx_xpath.Ast
module Doc = Ppfx_xml.Doc
module Table = Ppfx_minidb.Table
module Database = Ppfx_minidb.Database
module Value = Ppfx_minidb.Value
module Sql = Ppfx_minidb.Sql
module Engine = Ppfx_minidb.Engine
module Ppf = Ppfx_translate.Ppf

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun m -> raise (Unsupported m)) fmt

type t = {
  db : Database.t;
  docs : Doc.t list;
}

let accel_table = "accel"
let attr_table = "attr"

let create () =
  let db = Database.create () in
  let accel =
    Database.create_table db ~name:accel_table
      ~columns:
        [
          { Table.name = "id"; ty = Value.Tint };
          { Table.name = "pre"; ty = Value.Tint };
          { Table.name = "post"; ty = Value.Tint };
          { Table.name = "par"; ty = Value.Tint };
          { Table.name = "level"; ty = Value.Tint };
          { Table.name = "tag"; ty = Value.Tstr };
          { Table.name = "text"; ty = Value.Tstr };
          { Table.name = "dtext"; ty = Value.Tstr };
        ]
  in
  Table.create_index accel [ "id" ];
  Table.create_index accel [ "pre" ];
  Table.create_index accel [ "post" ];
  Table.create_index accel [ "par" ];
  Table.create_index accel [ "tag"; "pre" ];
  let attr =
    Database.create_table db ~name:attr_table
      ~columns:
        [
          { Table.name = "elem_id"; ty = Value.Tint };
          { Table.name = "name"; ty = Value.Tstr };
          { Table.name = "value"; ty = Value.Tstr };
        ]
  in
  Table.create_index attr [ "elem_id" ];
  { db; docs = [] }

let load t doc =
  let accel = Database.table t.db accel_table in
  let attr = Database.table t.db attr_table in
  (* Globalise preorder/postorder ranks across documents so windows never
     span two documents. *)
  let offset = List.fold_left (fun acc d -> acc + Doc.size d) 0 t.docs in
  Doc.iter
    (fun e ->
      let r = e.Doc.region in
      ignore
        (Table.insert accel
           [|
             Value.Int (e.Doc.id + offset);
             Value.Int (r.Ppfx_dewey.Region.pre + offset);
             Value.Int (r.Ppfx_dewey.Region.post + offset);
             (if e.Doc.parent = 0 then Value.Null else Value.Int (e.Doc.parent + offset));
             Value.Int r.Ppfx_dewey.Region.level;
             Value.Str e.Doc.tag;
             Value.Str e.Doc.string_value;
             Value.Str e.Doc.text;
           |]);
      List.iter
        (fun (name, value) ->
          ignore
            (Table.insert attr
               [| Value.Int (e.Doc.id + offset); Value.Str name; Value.Str value |]))
        e.Doc.attrs)
    doc;
  { t with docs = t.docs @ [ doc ] }

let shred doc = load (create ()) doc

(* ------------------------------------------------------------------ *)
(* Translation: one self-join per step, window conditions per axis      *)
(* ------------------------------------------------------------------ *)

type node_ctx = { alias : string }

type branch = {
  from_ : (string * string) list;
  conj : Sql.expr list;
  cur : node_ctx option;
}

let empty_branch = { from_ = []; conj = []; cur = None }

type env = { counter : int ref }

let fresh env =
  incr env.counter;
  Printf.sprintf "v%d" !(env.counter)

let col alias c = Sql.Col (alias, c)

let add_from b table alias = { b with from_ = (table, alias) :: b.from_ }

let add_conj b e = { b with conj = e :: b.conj }

let tag_condition alias (test : Ast.node_test) =
  match test with
  | Ast.Name n -> Some (Sql.Cmp (Sql.Eq, col alias "tag", Sql.Const (Value.Str n)))
  | Ast.Wildcard | Ast.Any_node -> None
  | Ast.Text -> unsupported "text() is not an element step"

(* Axis windows in the pre/post plane. *)
let axis_window ~(prev : node_ctx) ~(node : node_ctx) (axis : Ast.axis) : Sql.expr list =
  let p c = col prev.alias c and v c = col node.alias c in
  match axis with
  | Ast.Child -> [ Sql.Cmp (Sql.Eq, v "par", p "id") ]
  | Ast.Parent -> [ Sql.Cmp (Sql.Eq, p "par", v "id") ]
  | Ast.Descendant ->
    (* Staked-out window: descendants lie in
       pre(c)+1 <= pre(v) <= post(c)+level(c), post(v) < post(c). *)
    [
      Sql.Between
        ( v "pre",
          Sql.Arith (Sql.Add, p "pre", Sql.Const (Value.Int 1)),
          Sql.Arith (Sql.Add, p "post", p "level") );
      Sql.Cmp (Sql.Lt, v "post", p "post");
    ]
  | Ast.Ancestor ->
    [ Sql.Cmp (Sql.Lt, v "pre", p "pre"); Sql.Cmp (Sql.Gt, v "post", p "post") ]
  | Ast.Following ->
    [ Sql.Cmp (Sql.Gt, v "pre", p "pre"); Sql.Cmp (Sql.Gt, v "post", p "post") ]
  | Ast.Preceding ->
    [ Sql.Cmp (Sql.Lt, v "pre", p "pre"); Sql.Cmp (Sql.Lt, v "post", p "post") ]
  | Ast.Following_sibling ->
    [ Sql.Cmp (Sql.Gt, v "pre", p "pre"); Sql.Cmp (Sql.Eq, v "par", p "par") ]
  | Ast.Preceding_sibling ->
    [ Sql.Cmp (Sql.Lt, v "pre", p "pre"); Sql.Cmp (Sql.Eq, v "par", p "par") ]
  | Ast.Self | Ast.Descendant_or_self | Ast.Ancestor_or_self | Ast.Attribute ->
    unsupported "axis %s should have been normalized away" (Ast.axis_name axis)

let rec translate_steps env (b : branch) (steps : Ast.step list) : branch list =
  List.fold_left
    (fun branches step -> List.concat_map (fun b -> translate_step env b step) branches)
    [ b ] steps

and translate_step env (b : branch) (step : Ast.step) : branch list =
  let alias = fresh env in
  let node = { alias } in
  let b = add_from b accel_table alias in
  let b =
    match tag_condition alias step.Ast.test with Some c -> add_conj b c | None -> b
  in
  let joined =
    match b.cur, step.Ast.axis with
    | None, Ast.Child -> Some (add_conj b (Sql.Not (Sql.Is_not_null (col alias "par"))))
    | None, Ast.Descendant -> Some b
    | None, _ -> None
    | Some prev, axis ->
      Some (List.fold_left add_conj b (axis_window ~prev ~node axis))
  in
  match joined with
  | None -> []
  | Some b ->
    let b = { b with cur = Some node } in
    translate_predicates env b step.Ast.predicates

and translate_predicates env (b : branch) (predicates : Ast.expr list) : branch list =
  match predicates with
  | [] -> [ b ]
  | p :: rest ->
    let node =
      match b.cur with Some n -> n | None -> unsupported "predicate without context"
    in
    let cond = Sql.simplify (translate_predicate env node p) in
    let b = match cond with Sql.Bool_const true -> b | cond -> add_conj b cond in
    translate_predicates env b rest

and translate_predicate env (node : node_ctx) (p : Ast.expr) : Sql.expr =
  match p with
  | Ast.Binop (Ast.And, x, y) ->
    Sql.And (translate_predicate env node x, translate_predicate env node y)
  | Ast.Binop (Ast.Or, x, y) | Ast.Union (x, y) ->
    Sql.Or (translate_predicate env node x, translate_predicate env node y)
  | Ast.Fn_not x -> Sql.Not (translate_predicate env node x)
  | Ast.Binop ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op, x, y) ->
    translate_comparison env node op x y
  | Ast.Path path -> translate_path_predicate env node path
  | Ast.Literal s -> Sql.Bool_const (String.length s > 0)
  | Ast.Number _ | Ast.Fn_position | Ast.Fn_last ->
    unsupported "positional predicates are not supported"
  | Ast.Fn_count _ -> unsupported "count() in predicates is not supported"
  | Ast.Fn_contains (x, y) | Ast.Fn_starts_with (x, y) ->
    (* contains()/starts-with() over a single-valued operand and a
       constant pattern become REGEXP_LIKE filters. *)
    let anchored = match p with Ast.Fn_starts_with _ -> true | _ -> false in
    let empty_literal = match y with Ast.Literal "" -> true | _ -> false in
    let pattern =
      match y with
      | Ast.Literal s ->
        (if anchored then "^" else "") ^ Ppfx_regex.Regex.quote s
      | _ -> unsupported "the second argument of contains()/starts-with() must be a literal"
    in
    (* XPath: contains(x, '') is always true (string conversion), even when
       x converts from an empty node-set; a NULL SQL column would wrongly
       reject it. *)
    if empty_literal then (Sql.Bool_const true)
    else
    (match as_value node x with
     | Some v -> Sql.Regexp_like (v, pattern)
     | None ->
       unsupported
         "contains()/starts-with() needs a single-valued operand (., @attr or text()); \
          rewrite path operands as nested predicates, e.g. p[contains(., 's')]")
  | Ast.Fn_string_length _ ->
    unsupported "string-length() is only supported inside comparisons"
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod), _, _) | Ast.Neg _ ->
    unsupported "bare arithmetic used as a predicate"

and attr_exists env (node : node_ctx) (test : Ast.node_test) extra =
  let alias = fresh env in
  let conds =
    [ Sql.Cmp (Sql.Eq, col alias "elem_id", col node.alias "id") ]
    @ (match test with
       | Ast.Name n -> [ Sql.Cmp (Sql.Eq, col alias "name", Sql.Const (Value.Str n)) ]
       | Ast.Wildcard | Ast.Any_node -> []
       | Ast.Text -> assert false)
    @ List.map (fun f -> f (col alias "value")) extra
  in
  Sql.Exists
    {
      Sql.distinct = false;
      projections = [ Sql.Const Value.Null, "x" ];
      from = [ attr_table, alias ];
      where = Some (List.fold_left (fun a c -> Sql.And (a, c)) (List.hd conds) (List.tl conds));
      order_by = [];
    }

and translate_path_predicate env (node : node_ctx) (path : Ast.path) : Sql.expr =
  if path.Ast.absolute then translate_exists env node path []
  else begin
    let variants = Ppf.normalize_steps path.Ast.steps in
    let conds = List.map (translate_path_variant env node) variants in
    match conds with
    | [] -> Sql.Bool_const false
    | c :: cs -> List.fold_left (fun acc x -> Sql.Or (acc, x)) c cs
  end

and translate_path_variant env (node : node_ctx) (steps : Ast.step list) : Sql.expr =
  match steps with
  | [] -> Sql.Bool_const true
  | [ { Ast.axis = Ast.Attribute; test; predicates = [] } ] -> attr_exists env node test []
  | [ { Ast.axis = Ast.Child; test = Ast.Text; predicates = [] } ] ->
    Sql.Cmp (Sql.Ne, col node.alias "dtext", Sql.Const (Value.Str ""))
  | _ -> translate_exists env node { Ast.absolute = false; steps } []

and strip_final_value_step (steps : Ast.step list) =
  match List.rev steps with
  | { Ast.axis = Ast.Attribute; test; predicates = [] } :: rev_rest ->
    List.rev rev_rest, `Attr test
  | { Ast.axis = Ast.Child; test = Ast.Text; predicates = [] } :: rev_rest ->
    List.rev rev_rest, `Text
  | _ -> steps, `Element

and translate_exists env (node : node_ctx) (path : Ast.path)
    (extra : (Sql.expr -> Sql.expr) list) : Sql.expr =
  let start : branch =
    if path.Ast.absolute then empty_branch else { empty_branch with cur = Some node }
  in
  let variants = Ppf.normalize_steps path.Ast.steps in
  let sub_branches =
    List.concat_map
      (fun steps ->
        let steps, final_kind = strip_final_value_step steps in
        if steps = [] then [ (start, final_kind) ]
        else List.map (fun br -> br, final_kind) (translate_steps env start steps))
      variants
  in
  let conds =
    List.filter_map
      (fun ((sub : branch), final_kind) ->
        match sub.cur with
        | None -> None
        | Some final ->
          if sub.from_ = [] then begin
            match final_kind with
            | `Element ->
              let conds = List.map (fun f -> f (col final.alias "text")) extra in
              (match conds with
               | [] -> Some (Sql.Bool_const true)
               | c :: cs -> Some (List.fold_left (fun a x -> Sql.And (a, x)) c cs))
            | `Text ->
              let guard =
                Sql.Cmp (Sql.Ne, col final.alias "dtext", Sql.Const (Value.Str ""))
              in
              let conds = List.map (fun f -> f (col final.alias "dtext")) extra in
              Some (List.fold_left (fun a x -> Sql.And (a, x)) guard conds)
            | `Attr test -> Some (attr_exists env final test extra)
          end
          else begin
            let value_conds =
              match final_kind with
              | `Element -> List.map (fun f -> f (col final.alias "text")) extra
              | `Text ->
                Sql.Cmp (Sql.Ne, col final.alias "dtext", Sql.Const (Value.Str ""))
                :: List.map (fun f -> f (col final.alias "dtext")) extra
              | `Attr test -> [ attr_exists env final test extra ]
            in
            let all = List.rev sub.conj @ value_conds in
            Some
              (Sql.Exists
                 {
                   Sql.distinct = false;
                   projections = [ Sql.Const Value.Null, "x" ];
                   from = List.rev sub.from_;
                   where =
                     (match all with
                      | [] -> None
                      | c :: cs -> Some (List.fold_left (fun a x -> Sql.And (a, x)) c cs));
                   order_by = [];
                 })
          end)
      sub_branches
  in
  match conds with
  | [] -> Sql.Bool_const false
  | c :: cs -> List.fold_left (fun acc x -> Sql.Or (acc, x)) c cs

and as_value (node : node_ctx) (e : Ast.expr) : Sql.expr option =
  match e with
  | Ast.Literal s -> Some (Sql.Const (Value.Str s))
  | Ast.Number f -> Some (Sql.Const (Value.Float f))
  | Ast.Neg a ->
    Option.map (fun v -> Sql.Arith (Sql.Sub, Sql.Const (Value.Int 0), v)) (as_value node a)
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod) as op, a, b) ->
    (match as_value node a, as_value node b with
     | Some va, Some vb ->
       let sop =
         match op with
         | Ast.Add -> Sql.Add
         | Ast.Sub -> Sql.Sub
         | Ast.Mul -> Sql.Mul
         | Ast.Div -> Sql.Div
         | Ast.Mod -> Sql.Mod
         | _ -> assert false
       in
       Some (Sql.Arith (sop, va, vb))
     | _ -> None)
  | Ast.Path { Ast.absolute = false; steps } ->
    (match Ppf.normalize_steps steps with
     | [ [] ] -> Some (col node.alias "text")
     | [ [ { Ast.axis = Ast.Child; test = Ast.Text; predicates = [] } ] ] ->
       Some (col node.alias "dtext")
     | _ -> None)
  | Ast.Fn_string_length a -> Option.map (fun v -> Sql.Length v) (as_value node a)
  | Ast.Path _ | Ast.Union _ | Ast.Binop _ | Ast.Fn_not _ | Ast.Fn_count _
  | Ast.Fn_position | Ast.Fn_last | Ast.Fn_contains _ | Ast.Fn_starts_with _ ->
    None

and translate_comparison env (node : node_ctx) (op : Ast.binop) (x : Ast.expr)
    (y : Ast.expr) : Sql.expr =
  let sql_op =
    match op with
    | Ast.Eq -> Sql.Eq
    | Ast.Ne -> Sql.Ne
    | Ast.Lt -> Sql.Lt
    | Ast.Le -> Sql.Le
    | Ast.Gt -> Sql.Gt
    | Ast.Ge -> Sql.Ge
    | _ -> assert false
  in
  let flip = function
    | Sql.Eq -> Sql.Eq
    | Sql.Ne -> Sql.Ne
    | Sql.Lt -> Sql.Gt
    | Sql.Le -> Sql.Ge
    | Sql.Gt -> Sql.Lt
    | Sql.Ge -> Sql.Le
  in
  match as_value node x, as_value node y with
  | Some ex, Some ey -> Sql.Cmp (sql_op, ex, ey)
  | Some ex, None ->
    (match y with
     | Ast.Path p -> translate_exists env node p [ (fun v -> Sql.Cmp (flip sql_op, v, ex)) ]
     | _ -> unsupported "unsupported comparison operand: %s" (Ast.to_string y))
  | None, Some ey ->
    (match x with
     | Ast.Path p -> translate_exists env node p [ (fun v -> Sql.Cmp (sql_op, v, ey)) ]
     | _ -> unsupported "unsupported comparison operand: %s" (Ast.to_string x))
  | None, None ->
    (match x, y with
     | Ast.Path px, Ast.Path py ->
       translate_exists env node px
         [
           (fun vx ->
             translate_exists env node py
               [
                 (fun vy ->
                   match sql_op with
                   | Sql.Eq | Sql.Ne -> Sql.Cmp (sql_op, vx, vy)
                   | Sql.Lt | Sql.Le | Sql.Gt | Sql.Ge ->
                     Sql.Cmp (sql_op, Sql.To_number vx, Sql.To_number vy));
               ]);
         ]
     | _ ->
       unsupported "unsupported comparison: %s vs %s" (Ast.to_string x) (Ast.to_string y))

let finalize branches =
  let selects =
    List.filter_map
      (fun ((b : branch), kind) ->
        match b.cur with
        | None -> None
        | Some node ->
          let value, guards =
            match kind with
            | `Element -> col node.alias "text", []
            | `Text ->
              ( col node.alias "dtext",
                [ Sql.Cmp (Sql.Ne, col node.alias "dtext", Sql.Const (Value.Str "")) ] )
            | `Attr _ -> unsupported "attribute-final backbones are not supported"
          in
          let conjs = List.rev b.conj @ guards in
          if List.mem (Sql.Bool_const false) conjs then None else
          Some
            {
              Sql.distinct = true;
              projections =
                [ col node.alias "id", "id"; col node.alias "pre", "pre"; value, "value" ];
              from = List.rev b.from_;
              where =
                (match conjs with
                 | [] -> None
                 | c :: cs -> Some (List.fold_left (fun a x -> Sql.And (a, x)) c cs));
              order_by = [ col node.alias "pre" ];
            })
      branches
  in
  match selects with
  | [] -> None
  | [ s ] -> Some (Sql.Select s)
  | ss -> Some (Sql.Union (List.map (fun s -> { s with Sql.order_by = [] }) ss, [ 1 ]))

let rec collect_paths (e : Ast.expr) : Ast.path list =
  match e with
  | Ast.Path p -> [ p ]
  | Ast.Union (a, b) -> collect_paths a @ collect_paths b
  | Ast.Binop _ | Ast.Neg _ | Ast.Literal _ | Ast.Number _ | Ast.Fn_not _ | Ast.Fn_count _
  | Ast.Fn_position | Ast.Fn_last | Ast.Fn_contains _ | Ast.Fn_starts_with _
  | Ast.Fn_string_length _ ->
    unsupported "top-level expression must be a path or a union of paths"

let translate (e : Ast.expr) : Sql.statement option =
  let env = { counter = ref 0 } in
  let branches =
    List.concat_map
      (fun (path : Ast.path) ->
        List.concat_map
          (fun steps ->
            let steps, kind = strip_final_value_step steps in
            if steps = [] then []
            else
              List.map (fun b -> b, kind) (translate_steps env empty_branch steps))
          (Ppf.normalize_steps path.Ast.steps))
      (collect_paths e)
  in
  finalize branches

let result_ids (r : Engine.result) =
  List.sort_uniq Int.compare
    (List.filter_map
       (fun row -> match row.(0) with Value.Int id -> Some id | _ -> None)
       r.Engine.rows)

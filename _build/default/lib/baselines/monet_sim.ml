module Ast = Ppfx_xpath.Ast
module Doc = Ppfx_xml.Doc
module Ppf = Ppfx_translate.Ppf

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun m -> raise (Unsupported m)) fmt

type t = {
  n : int;
  post : int array;  (** by pre rank *)
  parent : int array;  (** by pre rank; -1 for the root *)
  subtree_end : int array;  (** largest pre rank inside the subtree *)
  children : int array array;
  tags : (string, int array) Hashtbl.t;  (** posting lists, sorted by pre *)
  all : int array;
  text : string array;
  dtext : string array;
  attrs : (string * string) list array;
  absolute_cache : (string, string list) Hashtbl.t;
      (** memoized string values of absolute predicate paths *)
}

let of_doc doc =
  let n = Doc.size doc in
  let post = Array.make n 0 in
  let parent = Array.make n (-1) in
  let subtree_end = Array.make n 0 in
  let children = Array.make n [||] in
  let text = Array.make n "" in
  let dtext = Array.make n "" in
  let attrs = Array.make n [] in
  let tag_acc : (string, int list ref) Hashtbl.t = Hashtbl.create 64 in
  Doc.iter
    (fun e ->
      let pre = e.Doc.id - 1 in
      post.(pre) <- e.Doc.region.Ppfx_dewey.Region.post;
      parent.(pre) <- e.Doc.parent - 1;
      children.(pre) <- Array.of_list (List.map (fun c -> c - 1) e.Doc.children);
      text.(pre) <- e.Doc.string_value;
      dtext.(pre) <- e.Doc.text;
      attrs.(pre) <- e.Doc.attrs;
      let cell =
        match Hashtbl.find_opt tag_acc e.Doc.tag with
        | Some r -> r
        | None ->
          let r = ref [] in
          Hashtbl.add tag_acc e.Doc.tag r;
          r
      in
      cell := pre :: !cell)
    doc;
  (* subtree_end: iterate in reverse preorder. *)
  for pre = n - 1 downto 0 do
    subtree_end.(pre) <-
      (match children.(pre) with
       | [||] -> pre
       | cs -> subtree_end.(cs.(Array.length cs - 1)))
  done;
  let tags = Hashtbl.create (Hashtbl.length tag_acc) in
  Hashtbl.iter
    (fun tag cell -> Hashtbl.replace tags tag (Array.of_list (List.rev !cell)))
    tag_acc;
  {
    n;
    post;
    parent;
    subtree_end;
    children;
    tags;
    all = Array.init n Fun.id;
    text;
    dtext;
    attrs;
    absolute_cache = Hashtbl.create 8;
  }

(* ------------------------------------------------------------------ *)
(* Sorted-array set helpers                                            *)
(* ------------------------------------------------------------------ *)

(* Index of first element >= x. *)
let lower_bound (a : int array) x =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let mem_sorted (a : int array) x =
  let i = lower_bound a x in
  i < Array.length a && a.(i) = x

let posting t (test : Ast.node_test) =
  match test with
  | Ast.Name n -> Option.value ~default:[||] (Hashtbl.find_opt t.tags n)
  | Ast.Wildcard | Ast.Any_node -> t.all
  | Ast.Text -> unsupported "text() is not an element step"

let sort_dedupe l = List.sort_uniq Int.compare l |> Array.of_list

(* ------------------------------------------------------------------ *)
(* Axes, set-at-a-time                                                 *)
(* ------------------------------------------------------------------ *)

(* Context [None] is the virtual document root. *)
let axis_step t (ctx : int array option) (axis : Ast.axis) (test : Ast.node_test) :
    int array =
  match ctx, axis with
  | None, Ast.Child ->
    let tag_ok =
      match test with
      | Ast.Name n -> Hashtbl.mem t.tags n && mem_sorted (posting t test) 0
      | Ast.Wildcard | Ast.Any_node -> true
      | Ast.Text -> false
    in
    if tag_ok then [| 0 |] else [||]
  | None, Ast.Descendant -> posting t test
  | None, _ -> [||]
  | Some ctx, Ast.Child ->
    let list = posting t test in
    if 16 * Array.length ctx < Array.length list then begin
      (* Small context: enumerate children directly. *)
      let match_test v =
        match test with
        | Ast.Name n ->
          Hashtbl.find_opt t.tags n
          |> Option.fold ~none:false ~some:(fun l -> mem_sorted l v)
        | Ast.Wildcard | Ast.Any_node -> true
        | Ast.Text -> false
      in
      let out = ref [] in
      Array.iter
        (fun c -> Array.iter (fun v -> if match_test v then out := v :: !out) t.children.(c))
        ctx;
      sort_dedupe !out
    end
    else begin
      (* Scan the posting list, keep nodes whose parent is in context. *)
      let out = ref [] in
      Array.iter
        (fun v ->
          let p = t.parent.(v) in
          if p >= 0 && mem_sorted ctx p then out := v :: !out)
        list;
      Array.of_list (List.rev !out)
    end
  | Some ctx, Ast.Descendant ->
    (* Staircase join: prune nested context nodes, then take disjoint
       posting-list slices per remaining context range. *)
    let list = posting t test in
    let out = ref [] in
    let current_end = ref (-1) in
    Array.iter
      (fun c ->
        if c > !current_end then begin
          current_end := t.subtree_end.(c);
          let lo = lower_bound list (c + 1) in
          let hi = lower_bound list (!current_end + 1) in
          for i = lo to hi - 1 do
            out := list.(i) :: !out
          done
        end)
      ctx;
    Array.of_list (List.rev !out)
  | Some ctx, Ast.Parent ->
    let match_test v =
      match test with
      | Ast.Name n -> Hashtbl.find_opt t.tags n |> Option.fold ~none:false ~some:(fun l -> mem_sorted l v)
      | Ast.Wildcard | Ast.Any_node -> true
      | Ast.Text -> false
    in
    sort_dedupe
      (Array.to_list ctx
      |> List.filter_map (fun c ->
             let p = t.parent.(c) in
             if p >= 0 && match_test p then Some p else None))
  | Some ctx, Ast.Ancestor ->
    let match_test v =
      match test with
      | Ast.Name n -> Hashtbl.find_opt t.tags n |> Option.fold ~none:false ~some:(fun l -> mem_sorted l v)
      | Ast.Wildcard | Ast.Any_node -> true
      | Ast.Text -> false
    in
    if Array.length ctx <= 8 then begin
      (* Small contexts (predicate evaluation): plain parent-chain walk
         without the O(n) visited array. *)
      let out = ref [] in
      Array.iter
        (fun c ->
          let rec up v =
            let p = t.parent.(v) in
            if p >= 0 then begin
              if match_test p then out := p :: !out;
              up p
            end
          in
          up c)
        ctx;
      sort_dedupe !out
    end
    else begin
      let visited = Array.make t.n false in
      let out = ref [] in
      Array.iter
        (fun c ->
          let rec up v =
            let p = t.parent.(v) in
            if p >= 0 && not visited.(p) then begin
              visited.(p) <- true;
              if match_test p then out := p :: !out;
              up p
            end
          in
          up c)
        ctx;
      sort_dedupe !out
    end
  | Some ctx, Ast.Following ->
    if Array.length ctx = 0 then [||]
    else begin
      (* v follows some c iff pre(v) > min over ctx of subtree_end(c). *)
      let boundary = Array.fold_left (fun acc c -> min acc t.subtree_end.(c)) max_int ctx in
      let list = posting t test in
      let lo = lower_bound list (boundary + 1) in
      Array.sub list lo (Array.length list - lo)
    end
  | Some ctx, Ast.Preceding ->
    if Array.length ctx = 0 then [||]
    else begin
      (* v precedes some c iff subtree_end(v) < max over ctx of pre(c). *)
      let boundary = ctx.(Array.length ctx - 1) in
      let list = posting t test in
      let out = ref [] in
      Array.iter (fun v -> if t.subtree_end.(v) < boundary then out := v :: !out) list;
      Array.of_list (List.rev !out)
    end
  | Some ctx, Ast.Following_sibling ->
    let match_test v =
      match test with
      | Ast.Name n -> Hashtbl.find_opt t.tags n |> Option.fold ~none:false ~some:(fun l -> mem_sorted l v)
      | Ast.Wildcard | Ast.Any_node -> true
      | Ast.Text -> false
    in
    let out = ref [] in
    Array.iter
      (fun c ->
        let p = t.parent.(c) in
        if p >= 0 then
          Array.iter
            (fun s -> if s > c && match_test s then out := s :: !out)
            t.children.(p))
      ctx;
    sort_dedupe !out
  | Some ctx, Ast.Preceding_sibling ->
    let match_test v =
      match test with
      | Ast.Name n -> Hashtbl.find_opt t.tags n |> Option.fold ~none:false ~some:(fun l -> mem_sorted l v)
      | Ast.Wildcard | Ast.Any_node -> true
      | Ast.Text -> false
    in
    let out = ref [] in
    Array.iter
      (fun c ->
        let p = t.parent.(c) in
        if p >= 0 then
          Array.iter
            (fun s -> if s < c && match_test s then out := s :: !out)
            t.children.(p))
      ctx;
    sort_dedupe !out
  | Some _, (Ast.Self | Ast.Descendant_or_self | Ast.Ancestor_or_self | Ast.Attribute) ->
    unsupported "axis %s should have been normalized away" (Ast.axis_name axis)

(* ------------------------------------------------------------------ *)
(* Predicates (node-at-a-time over the columns)                        *)
(* ------------------------------------------------------------------ *)

type pvalue =
  | Vals of string list  (** string values of a node-set result *)
  | Vstr of string
  | Vnum of float
  | Vbool of bool

let num_of_string s =
  match float_of_string_opt (String.trim s) with Some f -> f | None -> Float.nan

let rec eval_steps t (ctx : int array option) (steps : Ast.step list) : int array =
  List.fold_left
    (fun ctx (step : Ast.step) ->
      let candidates = axis_step t ctx step.Ast.axis step.Ast.test in
      let filtered =
        List.fold_left
          (fun cands pred ->
            Array.of_list
              (List.filter (fun v -> eval_predicate t v pred) (Array.to_list cands)))
          candidates step.Ast.predicates
      in
      Some filtered)
    ctx steps
  |> function
  | Some out -> out
  | None -> [||]

and eval_predicate t (v : int) (p : Ast.expr) : bool =
  match eval_pexpr t v p with
  | Vbool b -> b
  | Vnum _ ->
    (* Numeric predicates are positional in XPath 1.0. *)
    unsupported "positional predicates are not supported"
  | Vstr s -> String.length s > 0
  | Vals l -> l <> []

and eval_pexpr t (v : int) (p : Ast.expr) : pvalue =
  match p with
  | Ast.Literal s -> Vstr s
  | Ast.Number f -> Vnum f
  | Ast.Fn_not x -> Vbool (not (eval_predicate t v x))
  | Ast.Fn_count (Ast.Path path) ->
    Vnum (float_of_int (List.length (path_values t v path)))
  | Ast.Fn_count _ -> unsupported "count() requires a path argument"
  | Ast.Fn_position | Ast.Fn_last ->
    unsupported "positional predicates are not supported"
  | Ast.Neg x ->
    (match eval_pexpr t v x with
     | Vnum f -> Vnum (-.f)
     | Vstr s -> Vnum (-.num_of_string s)
     | Vbool _ | Vals _ -> unsupported "negation of a non-number")
  | Ast.Binop (Ast.And, x, y) -> Vbool (eval_predicate t v x && eval_predicate t v y)
  | Ast.Binop (Ast.Or, x, y) -> Vbool (eval_predicate t v x || eval_predicate t v y)
  | Ast.Union (x, y) -> Vbool (eval_predicate t v x || eval_predicate t v y)
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod) as op, x, y) ->
    let to_num = function
      | Vnum f -> f
      | Vstr s -> num_of_string s
      | Vbool b -> if b then 1.0 else 0.0
      | Vals [] -> Float.nan
      | Vals (s :: _) -> num_of_string s
    in
    let a = to_num (eval_pexpr t v x) and b = to_num (eval_pexpr t v y) in
    Vnum
      (match op with
       | Ast.Add -> a +. b
       | Ast.Sub -> a -. b
       | Ast.Mul -> a *. b
       | Ast.Div -> a /. b
       | Ast.Mod -> Float.rem a b
       | _ -> assert false)
  | Ast.Binop ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op, x, y) ->
    Vbool (compare_pvalues op (eval_pexpr t v x) (eval_pexpr t v y))
  | Ast.Fn_contains (x, y) ->
    let sx = pvalue_to_string (eval_pexpr t v x)
    and sy = pvalue_to_string (eval_pexpr t v y) in
    let nx = String.length sx and ny = String.length sy in
    let rec go i = i + ny <= nx && (String.sub sx i ny = sy || go (i + 1)) in
    Vbool (go 0)
  | Ast.Fn_starts_with (x, y) ->
    let sx = pvalue_to_string (eval_pexpr t v x)
    and sy = pvalue_to_string (eval_pexpr t v y) in
    Vbool
      (String.length sy <= String.length sx
      && String.equal (String.sub sx 0 (String.length sy)) sy)
  | Ast.Fn_string_length x ->
    Vnum (float_of_int (String.length (pvalue_to_string (eval_pexpr t v x))))
  | Ast.Path path -> Vals (path_values t v path)

and pvalue_to_string = function
  | Vstr s -> s
  | Vnum f ->
    if Float.is_nan f then "NaN"
    else if Float.is_integer f && Float.abs f < 1e15 then string_of_int (int_of_float f)
    else string_of_float f
  | Vbool b -> if b then "true" else "false"
  | Vals [] -> ""
  | Vals (s :: _) -> s

and compare_pvalues op a b =
  let is_eq = match op with Ast.Eq | Ast.Ne -> true | _ -> false in
  let test_num x y =
    match op with
    | Ast.Eq -> Float.equal x y
    | Ast.Ne -> not (Float.equal x y)
    | Ast.Lt -> x < y
    | Ast.Le -> x <= y
    | Ast.Gt -> x > y
    | Ast.Ge -> x >= y
    | _ -> assert false
  in
  let test_str x y =
    if is_eq then
      match op with
      | Ast.Eq -> String.equal x y
      | Ast.Ne -> not (String.equal x y)
      | _ -> assert false
    else test_num (num_of_string x) (num_of_string y)
  in
  match a, b with
  | Vals l1, Vals l2 -> List.exists (fun x -> List.exists (test_str x) l2) l1
  | Vals l, Vnum f -> List.exists (fun s -> test_num (num_of_string s) f) l
  | Vnum f, Vals l -> List.exists (fun s -> test_num f (num_of_string s)) l
  | Vals l, Vstr s -> List.exists (fun x -> test_str x s) l
  | Vstr s, Vals l -> List.exists (fun x -> test_str s x) l
  | Vals l, Vbool b | Vbool b, Vals l ->
    test_num (if l <> [] then 1.0 else 0.0) (if b then 1.0 else 0.0)
  | Vnum x, Vnum y -> test_num x y
  | Vstr x, Vstr y -> test_str x y
  | Vnum x, Vstr s -> test_num x (num_of_string s)
  | Vstr s, Vnum y -> test_num (num_of_string s) y
  | Vbool x, (Vbool _ | Vnum _ | Vstr _) ->
    test_num (if x then 1.0 else 0.0)
      (match b with
       | Vbool y -> if y then 1.0 else 0.0
       | Vnum y -> y
       | Vstr s -> num_of_string s
       | Vals _ -> assert false)
  | (Vnum _ | Vstr _), Vbool y ->
    test_num
      (match a with
       | Vnum x -> x
       | Vstr s -> num_of_string s
       | Vbool _ | Vals _ -> assert false)
      (if y then 1.0 else 0.0)

(* String values of the nodes a predicate path selects from [v]. Absolute
   paths are context-independent and memoized per store. *)
and path_values t (v : int) (path : Ast.path) : string list =
  if path.Ast.absolute then begin
    let key = Ast.to_string (Ast.Path path) in
    match Hashtbl.find_opt t.absolute_cache key with
    | Some vals -> vals
    | None ->
      let vals = path_values_uncached t v path in
      Hashtbl.add t.absolute_cache key vals;
      vals
  end
  else path_values_uncached t v path

and path_values_uncached t (v : int) (path : Ast.path) : string list =
  let start = if path.Ast.absolute then None else Some [| v |] in
  List.concat_map
    (fun steps ->
      match List.rev steps with
      | { Ast.axis = Ast.Attribute; test; predicates = [] } :: rev_rest ->
        let owners =
          if rev_rest = [] then
            match start with None -> [||] | Some ctx -> ctx
          else eval_steps t start (List.rev rev_rest)
        in
        Array.to_list owners
        |> List.concat_map (fun o ->
               match test with
               | Ast.Name n ->
                 (match List.assoc_opt n t.attrs.(o) with Some v -> [ v ] | None -> [])
               | Ast.Wildcard | Ast.Any_node -> List.map snd t.attrs.(o)
               | Ast.Text -> [])
      | { Ast.axis = Ast.Child; test = Ast.Text; predicates = [] } :: rev_rest ->
        let owners =
          if rev_rest = [] then
            match start with None -> [||] | Some ctx -> ctx
          else eval_steps t start (List.rev rev_rest)
        in
        Array.to_list owners
        |> List.filter_map (fun o ->
               if String.length t.dtext.(o) > 0 then Some t.dtext.(o) else None)
      | _ ->
        (match steps, start with
         | [], Some ctx -> Array.to_list ctx |> List.map (fun o -> t.text.(o))
         | [], None -> []
         | steps, start ->
           Array.to_list (eval_steps t start steps) |> List.map (fun o -> t.text.(o))))
    (Ppf.normalize_steps path.Ast.steps)

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let rec collect_paths (e : Ast.expr) : Ast.path list =
  match e with
  | Ast.Path p -> [ p ]
  | Ast.Union (a, b) -> collect_paths a @ collect_paths b
  | Ast.Binop _ | Ast.Neg _ | Ast.Literal _ | Ast.Number _ | Ast.Fn_not _ | Ast.Fn_count _
  | Ast.Fn_position | Ast.Fn_last | Ast.Fn_contains _ | Ast.Fn_starts_with _
  | Ast.Fn_string_length _ ->
    unsupported "top-level expression must be a path or a union of paths"

let run t (e : Ast.expr) : int list =
  let results =
    List.concat_map
      (fun (path : Ast.path) ->
        List.concat_map
          (fun steps ->
            match List.rev steps with
            | { Ast.axis = Ast.Child; test = Ast.Text; predicates = [] } :: rev_rest ->
              let owners = eval_steps t None (List.rev rev_rest) in
              Array.to_list owners |> List.filter (fun o -> String.length t.dtext.(o) > 0)
            | { Ast.axis = Ast.Attribute; _ } :: _ ->
              unsupported "attribute-final backbones are not supported"
            | _ -> Array.to_list (eval_steps t None steps))
          (Ppf.normalize_steps path.Ast.steps))
      (collect_paths e)
  in
  List.sort_uniq Int.compare results |> List.map (fun pre -> pre + 1)

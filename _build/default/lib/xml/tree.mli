(** The XML data model: rooted, ordered, labeled trees (paper Section 2.1).

    Only the constructs the paper's system stores are modelled: elements
    with attributes, and text. Comments and processing instructions are
    discarded at parse time. *)

type node =
  | Element of element
  | Text of string

and element = {
  tag : string;
  attrs : (string * string) list;  (** in document order, names unique *)
  children : node list;
}

val element : ?attrs:(string * string) list -> ?children:node list -> string -> node
(** Convenience constructor. *)

val text : string -> node

val attr : element -> string -> string option
(** Attribute lookup by name. *)

val string_value : node -> string
(** XPath string-value: the concatenation of all descendant text, in
    document order. *)

val count_elements : node -> int
(** Number of element nodes in the subtree (including the node itself if it
    is an element). *)

val equal : node -> node -> bool

val pp : Format.formatter -> node -> unit
(** Debug printer (compact, single line). For serialization use
    {!Printer}. *)

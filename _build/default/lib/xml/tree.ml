type node =
  | Element of element
  | Text of string

and element = {
  tag : string;
  attrs : (string * string) list;
  children : node list;
}

let element ?(attrs = []) ?(children = []) tag = Element { tag; attrs; children }

let text s = Text s

let attr e name = List.assoc_opt name e.attrs

let string_value node =
  let buf = Buffer.create 64 in
  let rec collect = function
    | Text s -> Buffer.add_string buf s
    | Element e -> List.iter collect e.children
  in
  collect node;
  Buffer.contents buf

let rec count_elements = function
  | Text _ -> 0
  | Element e -> 1 + List.fold_left (fun acc c -> acc + count_elements c) 0 e.children

let rec equal a b =
  match a, b with
  | Text s1, Text s2 -> String.equal s1 s2
  | Element e1, Element e2 ->
    String.equal e1.tag e2.tag
    && e1.attrs = e2.attrs
    && List.length e1.children = List.length e2.children
    && List.for_all2 equal e1.children e2.children
  | (Text _ | Element _), _ -> false

let rec pp ppf = function
  | Text s -> Format.fprintf ppf "%S" s
  | Element e ->
    let pp_attr ppf (k, v) = Format.fprintf ppf " %s=%S" k v in
    Format.fprintf ppf "<%s%a>%a</%s>" e.tag
      (Format.pp_print_list ~pp_sep:(fun _ () -> ()) pp_attr)
      e.attrs
      (Format.pp_print_list ~pp_sep:(fun _ () -> ()) pp)
      e.children e.tag

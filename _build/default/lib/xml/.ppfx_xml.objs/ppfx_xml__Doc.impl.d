lib/xml/doc.ml: Array Buffer Hashtbl List Ppfx_dewey Printf Tree

lib/xml/doc.mli: Ppfx_dewey Tree

(** Indexed documents: the element descriptors of paper Figure 1(c).

    Flattens a parsed tree into arrays of per-element descriptors: preorder
    id, parent id, tag, Dewey position, pre/post/level region encoding, the
    root-to-node path string and the element's attributes and direct text.
    Every storage engine and the reference XPath evaluator work from this
    structure, so node identity (the preorder [id]) is comparable across
    engines. *)

type element = {
  id : int;  (** preorder rank over elements, 1-based *)
  parent : int;  (** parent element id, or 0 for the root *)
  tag : string;
  attrs : (string * string) list;
  text : string;
      (** concatenation of the direct text children, in order (the value
          stored in the relational [text] column) *)
  string_value : string;
      (** XPath string-value: all descendant text concatenated *)
  dewey : Ppfx_dewey.Dewey.t;
  region : Ppfx_dewey.Region.t;
  path : string;  (** root-to-node tag path, e.g. ["/A/B/C"] *)
  children : int list;  (** ids of element children, in document order *)
}

type t

val of_tree : Tree.node -> t
(** Index a document. The root must be an element.

    Cost: linear in the document size for bounded-depth documents. Dewey
    positions and root-to-node paths are depth-linear per element by
    design (paper Section 4.2), so pathologically deep documents cost
    O(size x depth) space and time. *)

val root : t -> element
val size : t -> int
(** Number of elements. *)

val element : t -> int -> element
(** Lookup by id (1-based). Raises [Invalid_argument] when out of range. *)

val elements : t -> element array
(** All elements in document (preorder) order. Do not mutate. *)

val parent : t -> element -> element option

val children : t -> element -> element list

val descendants : t -> element -> element list
(** Strict descendants in document order. *)

val iter : (element -> unit) -> t -> unit

val fold : ('a -> element -> 'a) -> 'a -> t -> 'a

val distinct_paths : t -> string list
(** All distinct root-to-node paths, in first-appearance order — the
    contents of the [Paths] relation (paper Section 3.1). *)

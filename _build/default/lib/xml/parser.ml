exception Error of { line : int; column : int; message : string }

type state = { src : string; mutable pos : int; mutable line : int; mutable bol : int }

let fail st fmt =
  Format.kasprintf
    (fun message ->
      raise (Error { line = st.line; column = st.pos - st.bol + 1; message }))
    fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st =
  (match peek st with
   | Some '\n' ->
     st.line <- st.line + 1;
     st.bol <- st.pos + 1
   | Some _ | None -> ());
  st.pos <- st.pos + 1

let looking_at st prefix =
  let n = String.length prefix in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = prefix

let skip st n =
  for _ = 1 to n do
    advance st
  done

let skip_until st stop =
  let n = String.length stop in
  let rec loop () =
    if st.pos + n > String.length st.src then fail st "unterminated construct (expected %S)" stop
    else if looking_at st stop then skip st n
    else begin
      advance st;
      loop ()
    end
  in
  loop ()

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space st =
  let rec loop () =
    match peek st with
    | Some c when is_space c -> advance st; loop ()
    | Some _ | None -> ()
  in
  loop ()

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  let start = st.pos in
  (match peek st with
   | Some c when is_name_start c -> advance st
   | Some c -> fail st "expected a name, found %C" c
   | None -> fail st "expected a name, found end of input");
  let rec loop () =
    match peek st with
    | Some c when is_name_char c -> advance st; loop ()
    | Some _ | None -> ()
  in
  loop ();
  String.sub st.src start (st.pos - start)

(* Decode a reference after '&' has been consumed. *)
let parse_reference st =
  let name_start = st.pos in
  let rec to_semi () =
    match peek st with
    | Some ';' ->
      let body = String.sub st.src name_start (st.pos - name_start) in
      advance st;
      body
    | Some _ -> advance st; to_semi ()
    | None -> fail st "unterminated entity reference"
  in
  let body = to_semi () in
  match body with
  | "lt" -> "<"
  | "gt" -> ">"
  | "amp" -> "&"
  | "apos" -> "'"
  | "quot" -> "\""
  | _ ->
    if String.length body > 1 && body.[0] = '#' then begin
      let code =
        try
          if body.[1] = 'x' || body.[1] = 'X' then
            int_of_string ("0x" ^ String.sub body 2 (String.length body - 2))
          else int_of_string (String.sub body 1 (String.length body - 1))
        with Failure _ -> fail st "malformed character reference &%s;" body
      in
      if code < 0 || code > 0x10FFFF then fail st "character reference out of range";
      if code < 0x80 then String.make 1 (Char.chr code)
      else begin
        (* Encode as UTF-8. *)
        let buf = Buffer.create 4 in
        if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else if code < 0x10000 then begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end;
        Buffer.contents buf
      end
    end
    else fail st "unknown entity &%s;" body

let parse_attr_value st =
  let quote =
    match peek st with
    | Some (('"' | '\'') as q) -> advance st; q
    | Some c -> fail st "expected attribute value, found %C" c
    | None -> fail st "expected attribute value, found end of input"
  in
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated attribute value"
    | Some c when Char.equal c quote -> advance st
    | Some '&' ->
      advance st;
      Buffer.add_string buf (parse_reference st);
      loop ()
    | Some '<' -> fail st "'<' is not allowed in attribute values"
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_attributes st =
  let rec loop acc =
    skip_space st;
    match peek st with
    | Some c when is_name_start c ->
      let name = parse_name st in
      skip_space st;
      (match peek st with
       | Some '=' -> advance st
       | _ -> fail st "expected '=' after attribute name %s" name);
      skip_space st;
      let value = parse_attr_value st in
      if List.mem_assoc name acc then fail st "duplicate attribute %s" name;
      loop ((name, value) :: acc)
    | Some _ | None -> List.rev acc
  in
  loop []

(* Text content until the next '<'. Returns None for whitespace-only runs. *)
let parse_text st =
  let buf = Buffer.create 32 in
  let rec loop () =
    match peek st with
    | None | Some '<' -> ()
    | Some '&' ->
      advance st;
      Buffer.add_string buf (parse_reference st);
      loop ()
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  let s = Buffer.contents buf in
  if String.for_all is_space s then None else Some s

let rec parse_element st =
  (* Caller consumed nothing: we are looking at '<'. *)
  advance st (* '<' *);
  let tag = parse_name st in
  let attrs = parse_attributes st in
  skip_space st;
  match peek st with
  | Some '/' ->
    advance st;
    (match peek st with
     | Some '>' -> advance st
     | _ -> fail st "expected '>' after '/' in empty-element tag");
    Tree.Element { tag; attrs; children = [] }
  | Some '>' ->
    advance st;
    let children = parse_content st tag in
    Tree.Element { tag; attrs; children }
  | Some c -> fail st "unexpected %C in start tag <%s ...>" c tag
  | None -> fail st "unterminated start tag <%s" tag

and parse_content st tag =
  let rec loop acc =
    match peek st with
    | None -> fail st "missing closing tag </%s>" tag
    | Some '<' ->
      if looking_at st "</" then begin
        skip st 2;
        let close = parse_name st in
        if not (String.equal close tag) then
          fail st "mismatched closing tag </%s> (expected </%s>)" close tag;
        skip_space st;
        (match peek st with
         | Some '>' -> advance st
         | _ -> fail st "expected '>' in closing tag </%s>" close);
        List.rev acc
      end
      else if looking_at st "<!--" then begin
        skip st 4;
        skip_until st "-->";
        loop acc
      end
      else if looking_at st "<![CDATA[" then begin
        skip st 9;
        let start = st.pos in
        let rec find () =
          if looking_at st "]]>" then begin
            let s = String.sub st.src start (st.pos - start) in
            skip st 3;
            s
          end
          else if st.pos >= String.length st.src then fail st "unterminated CDATA section"
          else begin
            advance st;
            find ()
          end
        in
        let s = find () in
        loop (if String.length s = 0 then acc else Tree.Text s :: acc)
      end
      else if looking_at st "<?" then begin
        skip st 2;
        skip_until st "?>";
        loop acc
      end
      else loop (parse_element st :: acc)
    | Some _ ->
      (match parse_text st with
       | Some s -> loop (Tree.Text s :: acc)
       | None -> loop acc)
  in
  loop []

let skip_prolog st =
  let rec loop () =
    skip_space st;
    if looking_at st "<?" then begin
      skip st 2;
      skip_until st "?>";
      loop ()
    end
    else if looking_at st "<!--" then begin
      skip st 4;
      skip_until st "-->";
      loop ()
    end
    else if looking_at st "<!DOCTYPE" then begin
      (* Skip to the matching '>'; internal subsets in brackets are skipped
         without nesting (sufficient for data-centric documents). *)
      let rec to_gt depth =
        match peek st with
        | None -> fail st "unterminated DOCTYPE declaration"
        | Some '[' -> advance st; to_gt (depth + 1)
        | Some ']' -> advance st; to_gt (depth - 1)
        | Some '>' when depth = 0 -> advance st
        | Some _ -> advance st; to_gt depth
      in
      skip st 9;
      to_gt 0;
      loop ()
    end
  in
  loop ()

let parse src =
  let st = { src; pos = 0; line = 1; bol = 0 } in
  skip_prolog st;
  skip_space st;
  match peek st with
  | Some '<' ->
    let root = parse_element st in
    skip_space st;
    (match peek st with
     | None -> root
     | Some c -> fail st "unexpected content %C after document root" c)
  | Some c -> fail st "expected document root element, found %C" c
  | None -> fail st "empty document"

let parse_fragment src =
  let st = { src; pos = 0; line = 1; bol = 0 } in
  skip_prolog st;
  let rec loop acc =
    skip_space st;
    match peek st with
    | None -> List.rev acc
    | Some '<' -> loop (parse_element st :: acc)
    | Some _ ->
      (match parse_text st with
       | Some s -> loop (Tree.Text s :: acc)
       | None -> loop acc)
  in
  loop []

(** XML serialization. Escapes the five predefined entities; attribute
    values are double-quoted. *)

val escape_text : string -> string
val escape_attr : string -> string

val to_string : ?indent:int -> Tree.node -> string
(** Serialize. [indent = 0] (default) produces a compact single-line form
    that round-trips exactly through {!Parser.parse}; a positive [indent]
    pretty-prints element-only content with that many spaces per level
    (mixed content is never reformatted). *)

val to_channel : ?indent:int -> out_channel -> Tree.node -> unit
(** Like {!to_string} but streams to a channel without building the whole
    document in memory. *)

(** A small, strict XML parser for the data-centric subset the system
    stores.

    Supported: the XML prolog, elements, attributes (single or double
    quoted), character data, the five predefined entities plus numeric
    character references, CDATA sections, comments and processing
    instructions (both discarded).

    Whitespace-only text between elements is dropped — the shredders store
    data-centric documents where such whitespace is not meaningful. *)

exception Error of { line : int; column : int; message : string }

val parse : string -> Tree.node
(** Parse a complete document; the result is the root {!Tree.Element}.
    Raises {!Error} on malformed input. *)

val parse_fragment : string -> Tree.node list
(** Parse a sequence of top-level nodes (no single-root requirement);
    useful in tests. *)

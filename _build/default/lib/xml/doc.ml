module Dewey = Ppfx_dewey.Dewey
module Region = Ppfx_dewey.Region

type element = {
  id : int;
  parent : int;
  tag : string;
  attrs : (string * string) list;
  text : string;
  string_value : string;
  dewey : Dewey.t;
  region : Region.t;
  path : string;
  children : int list;
}

type t = { elements : element array }

let of_tree root_node =
  let root_elem =
    match root_node with
    | Tree.Element e -> e
    | Tree.Text _ -> invalid_arg "Doc.of_tree: root must be an element"
  in
  let count = Tree.count_elements root_node in
  let elements = Array.make count None in
  let next_post = ref 0 in
  (* Preorder numbering doubles as both the element id (1-based) and the
     region encoding's [pre] (0-based). String values are assembled
     bottom-up in this same pass — recomputing them per element through
     [Tree.string_value] would be quadratic on deep documents. *)
  let rec visit (e : Tree.element) ~parent_id ~pre ~dewey ~path ~level =
    let id = pre + 1 in
    let direct_text = Buffer.create 16 in
    let sv = Buffer.create 16 in
    let child_seq = ref 0 in
    let next = ref (pre + 1) in
    let child_ids = ref [] in
    List.iter
      (fun node ->
        match node with
        | Tree.Text s ->
          Buffer.add_string direct_text s;
          Buffer.add_string sv s
        | Tree.Element c ->
          incr child_seq;
          let child_pre = !next in
          let consumed, child_sv =
            visit c ~parent_id:id ~pre:child_pre
              ~dewey:(Dewey.child dewey !child_seq)
              ~path:(path ^ "/" ^ c.tag)
              ~level:(level + 1)
          in
          next := !next + consumed;
          Buffer.add_string sv child_sv;
          child_ids := (child_pre + 1) :: !child_ids)
      e.children;
    let post = !next_post in
    incr next_post;
    let string_value = Buffer.contents sv in
    elements.(pre) <-
      Some
        {
          id;
          parent = parent_id;
          tag = e.tag;
          attrs = e.attrs;
          text = Buffer.contents direct_text;
          string_value;
          dewey;
          region = { Region.pre; post; level };
          path;
          children = List.rev !child_ids;
        };
    !next - pre, string_value
  in
  let consumed, _sv =
    visit root_elem ~parent_id:0 ~pre:0 ~dewey:Dewey.root
      ~path:("/" ^ root_elem.tag) ~level:1
  in
  assert (consumed = count);
  let elements =
    Array.map
      (function Some e -> e | None -> assert false)
      elements
  in
  { elements }

let root t = t.elements.(0)

let size t = Array.length t.elements

let element t id =
  if id < 1 || id > Array.length t.elements then
    invalid_arg (Printf.sprintf "Doc.element: id %d out of range" id);
  t.elements.(id - 1)

let elements t = t.elements

let parent t e = if e.parent = 0 then None else Some (element t e.parent)

let children t e = List.map (element t) e.children

let descendants t e =
  (* Preorder ids of a subtree are contiguous: [id+1 .. id+subtree_size-1].
     The subtree size is recoverable from the region encoding. *)
  let rec last_descendant e =
    match List.rev e.children with
    | [] -> e.id
    | last :: _ -> last_descendant (element t last)
  in
  let stop = last_descendant e in
  let rec collect i acc = if i > stop then List.rev acc else collect (i + 1) (element t i :: acc) in
  collect (e.id + 1) []

let iter f t = Array.iter f t.elements

let fold f init t = Array.fold_left f init t.elements

let distinct_paths t =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  Array.iter
    (fun e ->
      if not (Hashtbl.mem seen e.path) then begin
        Hashtbl.add seen e.path ();
        acc := e.path :: !acc
      end)
    t.elements;
  List.rev !acc

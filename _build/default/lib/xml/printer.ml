let escape buf ~attr s =
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' when attr -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s

let escape_text s =
  let buf = Buffer.create (String.length s) in
  escape buf ~attr:false s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s) in
  escape buf ~attr:true s;
  Buffer.contents buf

let has_text_child children =
  List.exists (function Tree.Text _ -> true | Tree.Element _ -> false) children

let write ~indent emit node =
  let pad level = if indent > 0 then emit (String.make (level * indent) ' ') in
  let newline () = if indent > 0 then emit "\n" in
  let buf = Buffer.create 256 in
  let flush () =
    emit (Buffer.contents buf);
    Buffer.clear buf
  in
  let rec go level node =
    match node with
    | Tree.Text s ->
      escape buf ~attr:false s;
      flush ()
    | Tree.Element e ->
      pad level;
      Buffer.add_char buf '<';
      Buffer.add_string buf e.tag;
      List.iter
        (fun (k, v) ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          escape buf ~attr:true v;
          Buffer.add_char buf '"')
        e.attrs;
      (match e.children with
       | [] ->
         Buffer.add_string buf "/>";
         flush ();
         newline ()
       | children when has_text_child children ->
         (* Mixed content: never introduce whitespace. *)
         Buffer.add_char buf '>';
         flush ();
         List.iter (go_compact) children;
         Buffer.add_string buf "</";
         Buffer.add_string buf e.tag;
         Buffer.add_char buf '>';
         flush ();
         newline ()
       | children ->
         Buffer.add_char buf '>';
         flush ();
         newline ();
         List.iter (go (level + 1)) children;
         pad level;
         Buffer.add_string buf "</";
         Buffer.add_string buf e.tag;
         Buffer.add_char buf '>';
         flush ();
         newline ())
  and go_compact node =
    match node with
    | Tree.Text s ->
      escape buf ~attr:false s;
      flush ()
    | Tree.Element e ->
      Buffer.add_char buf '<';
      Buffer.add_string buf e.tag;
      List.iter
        (fun (k, v) ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          escape buf ~attr:true v;
          Buffer.add_char buf '"')
        e.attrs;
      (match e.children with
       | [] -> Buffer.add_string buf "/>"; flush ()
       | children ->
         Buffer.add_char buf '>';
         flush ();
         List.iter go_compact children;
         Buffer.add_string buf "</";
         Buffer.add_string buf e.tag;
         Buffer.add_char buf '>';
         flush ())
  in
  if indent > 0 then go 0 node else go_compact node

let to_string ?(indent = 0) node =
  let out = Buffer.create 1024 in
  write ~indent (Buffer.add_string out) node;
  Buffer.contents out

let to_channel ?(indent = 0) oc node = write ~indent (output_string oc) node

(** B+trees over composite value keys.

    The relational substrate's index structure: every index the shredders
    create (on [id], on each parent foreign key, and the concatenated
    [(dewey_pos, path_id)] index of paper Section 3.1) is one of these.

    Keys are composite ([Value.t array]); each entry maps a key to a row
    id. Duplicate keys are allowed. Range scans accept {e prefix} bounds:
    a bound shorter than the key width constrains only the leading
    components, which is how a scan over the [(dewey_pos, path_id)] index
    serves pure [dewey_pos] range predicates. *)

type t

val create : ?order:int -> width:int -> unit -> t
(** [width] is the number of key components; [order] the maximum number of
    entries per node (default 32). *)

val width : t -> int

val length : t -> int
(** Number of entries. *)

val insert : t -> Value.t array -> int -> unit
(** [insert t key row] adds an entry. [key] must have exactly [width]
    components. *)

val delete : t -> Value.t array -> int -> bool
(** [delete t key row] removes the entry for exactly that (key, row)
    pair; returns false when absent. Nodes are rebalanced by borrowing
    from or merging with siblings, so the half-full invariant holds
    afterwards (checked by {!check_invariants}). *)

type bound = { key : Value.t array; inclusive : bool }
(** A prefix bound: only the first [Array.length key] components
    constrain the scan. *)

val range : t -> lo:bound option -> hi:bound option -> int list
(** Row ids of all entries between the bounds, in key order. [None] means
    unbounded on that side. *)

val find_equal : t -> Value.t array -> int list
(** Row ids of entries whose leading components equal the given (possibly
    partial) key. *)

val iter : (Value.t array -> int -> unit) -> t -> unit
(** In key order. *)

val depth : t -> int
(** Height of the tree (a leaf-only tree has depth 1). Exposed for tests. *)

val check_invariants : t -> (unit, string) result
(** Validate ordering, node fill and linked-leaf consistency (test hook). *)

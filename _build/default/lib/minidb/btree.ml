(* Entries are stored with the row id appended as a final key component, so
   every stored key is unique and duplicate user keys order by row id. *)

type entry = Value.t array

type node =
  | Leaf of leaf
  | Internal of internal

and leaf = {
  mutable entries : entry array;
  mutable next : leaf option;
}

and internal = {
  mutable seps : entry array;  (** separator keys; child [i] < seps.(i) <= child [i+1] *)
  mutable children : node array;
}

type t = {
  mutable root : node;
  mutable count : int;
  order : int;
  key_width : int;  (** user key width, excluding the row-id component *)
}

let create ?(order = 32) ~width () =
  if order < 4 then invalid_arg "Btree.create: order must be >= 4";
  if width < 1 then invalid_arg "Btree.create: width must be >= 1";
  { root = Leaf { entries = [||]; next = None }; count = 0; order; key_width = width }

let width t = t.key_width

let length t = t.count

(* Compare two full stored entries (equal length: width + 1). *)
let compare_entries (a : entry) (b : entry) =
  let n = Array.length a in
  let rec go i =
    if i >= n then 0
    else
      match Value.compare_total a.(i) b.(i) with
      | 0 -> go (i + 1)
      | c -> c
  in
  go 0

(* Compare a stored entry against a (possibly shorter) prefix bound. *)
let compare_to_prefix (e : entry) (prefix : Value.t array) =
  let n = Array.length prefix in
  let rec go i =
    if i >= n then 0
    else
      match Value.compare_total e.(i) prefix.(i) with
      | 0 -> go (i + 1)
      | c -> c
  in
  go 0

let row_of (e : entry) =
  match e.(Array.length e - 1) with
  | Value.Int r -> r
  | Value.Null | Value.Float _ | Value.Str _ | Value.Bin _ -> assert false

(* Index of the first entry in [arr] that is >= [e]; length if none. *)
let lower_bound arr cmp e =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp arr.(mid) e < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let array_insert arr i x =
  let n = Array.length arr in
  let out = Array.make (n + 1) x in
  Array.blit arr 0 out 0 i;
  Array.blit arr i out (i + 1) (n - i);
  out

(* Route within an internal node: the child whose range contains [e]. *)
let child_index node e =
  let i = lower_bound node.seps compare_entries e in
  (* seps.(i) <= e goes right of separator i. *)
  if i < Array.length node.seps && compare_entries node.seps.(i) e <= 0 then i + 1 else i

let rec insert_node t node entry =
  match node with
  | Leaf leaf ->
    let i = lower_bound leaf.entries compare_entries entry in
    leaf.entries <- array_insert leaf.entries i entry;
    if Array.length leaf.entries > t.order then begin
      let n = Array.length leaf.entries in
      let mid = n / 2 in
      let right_entries = Array.sub leaf.entries mid (n - mid) in
      leaf.entries <- Array.sub leaf.entries 0 mid;
      let right = { entries = right_entries; next = leaf.next } in
      leaf.next <- Some right;
      Some (right_entries.(0), Leaf right)
    end
    else None
  | Internal inode ->
    let ci = child_index inode entry in
    (match insert_node t inode.children.(ci) entry with
     | None -> None
     | Some (sep, right) ->
       inode.seps <- array_insert inode.seps ci sep;
       inode.children <- array_insert inode.children (ci + 1) right;
       if Array.length inode.children > t.order then begin
         let n = Array.length inode.seps in
         let mid = n / 2 in
         let up = inode.seps.(mid) in
         let right_node =
           {
             seps = Array.sub inode.seps (mid + 1) (n - mid - 1);
             children = Array.sub inode.children (mid + 1) (n - mid);
           }
         in
         inode.seps <- Array.sub inode.seps 0 mid;
         inode.children <- Array.sub inode.children 0 (mid + 1);
         Some (up, Internal right_node)
       end
       else None)

let insert t key row =
  if Array.length key <> t.key_width then
    invalid_arg
      (Printf.sprintf "Btree.insert: key width %d, expected %d" (Array.length key)
         t.key_width);
  let entry = Array.append key [| Value.Int row |] in
  (match insert_node t t.root entry with
   | None -> ()
   | Some (sep, right) ->
     t.root <- Internal { seps = [| sep |]; children = [| t.root; right |] });
  t.count <- t.count + 1

let array_remove arr i =
  let n = Array.length arr in
  let out = Array.make (n - 1) arr.(0) in
  Array.blit arr 0 out 0 i;
  Array.blit arr (i + 1) out i (n - i - 1);
  out

(* Deletion with borrow/merge rebalancing. The minimum occupancy matches
   check_invariants: order/2 entries for leaves, order/2 children for
   internal nodes (root excepted). *)
let delete t key row =
  if Array.length key <> t.key_width then
    invalid_arg
      (Printf.sprintf "Btree.delete: key width %d, expected %d" (Array.length key)
         t.key_width);
  let entry = Array.append key [| Value.Int row |] in
  let min_leaf = t.order / 2 and min_children = t.order / 2 in
  let leaf_underfull leaf = Array.length leaf.entries < min_leaf in
  let node_underfull = function
    | Leaf leaf -> leaf_underfull leaf
    | Internal inode -> Array.length inode.children < min_children
  in
  (* Rebalance the underfull child at index [ci] of [inode] by borrowing
     from or merging with an adjacent sibling. *)
  let fix_child (inode : internal) ci =
    let merge_at li =
      (* merge children li and li+1 *)
      let sep = inode.seps.(li) in
      (match inode.children.(li), inode.children.(li + 1) with
       | Leaf left, Leaf right ->
         left.entries <- Array.append left.entries right.entries;
         left.next <- right.next
       | Internal left, Internal right ->
         left.seps <- Array.concat [ left.seps; [| sep |]; right.seps ];
         left.children <- Array.append left.children right.children
       | Leaf _, Internal _ | Internal _, Leaf _ -> assert false);
      inode.seps <- array_remove inode.seps li;
      inode.children <- array_remove inode.children (li + 1)
    in
    let borrow_from_left li =
      (* move the tail of children.(li) to the head of children.(li+1) *)
      match inode.children.(li), inode.children.(li + 1) with
      | Leaf left, Leaf right ->
        let n = Array.length left.entries in
        let moved = left.entries.(n - 1) in
        left.entries <- Array.sub left.entries 0 (n - 1);
        right.entries <- Array.append [| moved |] right.entries;
        inode.seps.(li) <- moved
      | Internal left, Internal right ->
        let nc = Array.length left.children in
        let moved_child = left.children.(nc - 1) in
        let moved_sep = left.seps.(Array.length left.seps - 1) in
        left.children <- Array.sub left.children 0 (nc - 1);
        left.seps <- Array.sub left.seps 0 (Array.length left.seps - 1);
        right.children <- Array.append [| moved_child |] right.children;
        right.seps <- Array.append [| inode.seps.(li) |] right.seps;
        inode.seps.(li) <- moved_sep
      | Leaf _, Internal _ | Internal _, Leaf _ -> assert false
    in
    let borrow_from_right li =
      (* move the head of children.(li+1) to the tail of children.(li) *)
      match inode.children.(li), inode.children.(li + 1) with
      | Leaf left, Leaf right ->
        let moved = right.entries.(0) in
        right.entries <- array_remove right.entries 0;
        left.entries <- Array.append left.entries [| moved |];
        inode.seps.(li) <- right.entries.(0)
      | Internal left, Internal right ->
        let moved_child = right.children.(0) in
        let moved_sep = right.seps.(0) in
        right.children <- array_remove right.children 0;
        right.seps <- array_remove right.seps 0;
        left.children <- Array.append left.children [| moved_child |];
        left.seps <- Array.append left.seps [| inode.seps.(li) |];
        inode.seps.(li) <- moved_sep
      | Leaf _, Internal _ | Internal _, Leaf _ -> assert false
    in
    let spare = function
      | Leaf leaf -> Array.length leaf.entries > min_leaf
      | Internal i -> Array.length i.children > min_children
    in
    if ci > 0 && spare inode.children.(ci - 1) then borrow_from_left (ci - 1)
    else if ci < Array.length inode.children - 1 && spare inode.children.(ci + 1) then
      borrow_from_right ci
    else if ci > 0 then merge_at (ci - 1)
    else merge_at ci
  in
  let rec del node =
    match node with
    | Leaf leaf ->
      let i = lower_bound leaf.entries compare_entries entry in
      if i < Array.length leaf.entries && compare_entries leaf.entries.(i) entry = 0
      then begin
        leaf.entries <- array_remove leaf.entries i;
        true
      end
      else false
    | Internal inode ->
      let ci = child_index inode entry in
      let removed = del inode.children.(ci) in
      if removed && node_underfull inode.children.(ci) then fix_child inode ci;
      removed
  in
  let removed = del t.root in
  if removed then begin
    t.count <- t.count - 1;
    (* Collapse a root with a single child. *)
    match t.root with
    | Internal inode when Array.length inode.children = 1 ->
      t.root <- inode.children.(0)
    | Internal _ | Leaf _ -> ()
  end;
  removed

type bound = { key : Value.t array; inclusive : bool }

(* Leftmost leaf whose range may contain entries >= the prefix bound. *)
let rec descend_lo node prefix =
  match node with
  | Leaf leaf -> leaf
  | Internal inode ->
    (* First child that can contain an entry >= prefix: route like a search
       for the smallest entry with this prefix. *)
    let i = lower_bound inode.seps (fun sep p -> compare_to_prefix sep p) prefix in
    descend_lo inode.children.(i) prefix

let rec leftmost_leaf = function
  | Leaf leaf -> leaf
  | Internal inode -> leftmost_leaf inode.children.(0)

let range t ~lo ~hi =
  let start_leaf =
    match lo with
    | None -> leftmost_leaf t.root
    | Some b -> descend_lo t.root b.key
  in
  let keep_lo e =
    match lo with
    | None -> true
    | Some b ->
      let c = compare_to_prefix e b.key in
      if b.inclusive then c >= 0 else c > 0
  in
  let within_hi e =
    match hi with
    | None -> true
    | Some b ->
      let c = compare_to_prefix e b.key in
      if b.inclusive then c <= 0 else c < 0
  in
  let acc = ref [] in
  let rec walk leaf =
    let stop = ref false in
    Array.iter
      (fun e ->
        if not !stop then
          if not (within_hi e) then stop := true
          else if keep_lo e then acc := row_of e :: !acc)
      leaf.entries;
    if (not !stop) then
      match leaf.next with
      | Some next -> walk next
      | None -> ()
  in
  walk start_leaf;
  List.rev !acc

let find_equal t key = range t ~lo:(Some { key; inclusive = true }) ~hi:(Some { key; inclusive = true })

let iter f t =
  let rec walk leaf =
    Array.iter
      (fun e -> f (Array.sub e 0 (Array.length e - 1)) (row_of e))
      leaf.entries;
    match leaf.next with Some next -> walk next | None -> ()
  in
  walk (leftmost_leaf t.root)

let depth t =
  let rec go = function
    | Leaf _ -> 1
    | Internal inode -> 1 + go inode.children.(0)
  in
  go t.root

let check_invariants t =
  let exception Bad of string in
  let fail fmt = Format.kasprintf (fun m -> raise (Bad m)) fmt in
  (* Every node except the root must be at least half full; entries sorted;
     children ranges respect separators; all leaves at equal depth and
     linked left-to-right. *)
  let leaves = ref [] in
  let rec check node ~is_root ~depth_ =
    (match node with
     | Leaf leaf ->
       if (not is_root) && Array.length leaf.entries < t.order / 2 then
         fail "underfull leaf (%d entries)" (Array.length leaf.entries);
       Array.iteri
         (fun i e ->
           if i > 0 && compare_entries leaf.entries.(i - 1) e >= 0 then
             fail "leaf entries out of order")
         leaf.entries;
       leaves := (leaf, depth_) :: !leaves
     | Internal inode ->
       if Array.length inode.children <> Array.length inode.seps + 1 then
         fail "internal arity mismatch";
       if (not is_root) && Array.length inode.children < t.order / 2 then
         fail "underfull internal node";
       Array.iteri
         (fun i sep ->
           if i > 0 && compare_entries inode.seps.(i - 1) sep >= 0 then
             fail "separators out of order";
           ignore sep)
         inode.seps;
       Array.iter (fun c -> check c ~is_root:false ~depth_:(depth_ + 1)) inode.children)
  in
  (try
     check t.root ~is_root:true ~depth_:1;
     (match !leaves with
      | [] -> ()
      | (_, d0) :: rest ->
        List.iter (fun (_, d) -> if d <> d0 then fail "leaves at unequal depth") rest);
     (* The linked list must visit every entry in global order. *)
     let total = ref 0 in
     let prev = ref None in
     let rec walk leaf =
       Array.iter
         (fun e ->
           (match !prev with
            | Some p when compare_entries p e >= 0 -> fail "linked leaves out of order"
            | Some _ | None -> ());
           prev := Some e;
           incr total)
         leaf.entries;
       match leaf.next with Some next -> walk next | None -> ()
     in
     walk (leftmost_leaf t.root);
     if !total <> t.count then fail "linked leaves visit %d entries, expected %d" !total t.count;
     Ok ()
   with Bad msg -> Error msg)

(** Binary persistence for databases.

    A compact, self-describing format (magic ["PPFXDB1"], then per table:
    name, typed column list, row count, length-prefixed values, index
    column lists). Indexes are rebuilt on load rather than serialized —
    they are derived data. Tombstoned rows are compacted away, so row ids
    are {e not} stable across a save/load cycle unless no deletions
    happened. *)

exception Corrupt of string
(** Raised on malformed input. *)

val write_database : out_channel -> Database.t -> unit

val read_database : in_channel -> Database.t
(** Raises {!Corrupt}. *)

val save : string -> Database.t -> unit
(** Write to a file path. *)

val load : string -> Database.t

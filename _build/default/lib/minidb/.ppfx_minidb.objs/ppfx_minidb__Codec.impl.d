lib/minidb/codec.ml: Array Database Format Fun Int64 List String Sys Table Value

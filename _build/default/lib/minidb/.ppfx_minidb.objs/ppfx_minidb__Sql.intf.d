lib/minidb/sql.mli: Format Value

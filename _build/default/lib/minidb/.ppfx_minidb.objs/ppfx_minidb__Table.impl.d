lib/minidb/table.ml: Array Btree Format Hashtbl List Option Printf String Value

lib/minidb/database.ml: Format Hashtbl List Printf String Table

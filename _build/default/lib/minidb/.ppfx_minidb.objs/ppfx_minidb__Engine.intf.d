lib/minidb/engine.mli: Database Sql Value

lib/minidb/value.ml: Char Float Format Int String

lib/minidb/sql_parser.ml: Array Buffer Char Format List Option Printf Sql String Value

lib/minidb/value.mli: Format

lib/minidb/btree.ml: Array Format List Printf Value

lib/minidb/codec.mli: Database

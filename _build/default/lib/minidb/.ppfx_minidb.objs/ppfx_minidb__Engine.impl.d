lib/minidb/engine.ml: Array Btree Buffer Database Float Format Fun Hashtbl Int List Option Ppfx_regex Printf Set Sql String Table Value

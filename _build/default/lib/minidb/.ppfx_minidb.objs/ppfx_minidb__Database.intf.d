lib/minidb/database.mli: Format Table

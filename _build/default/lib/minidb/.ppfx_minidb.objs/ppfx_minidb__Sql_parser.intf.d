lib/minidb/sql_parser.mli: Sql

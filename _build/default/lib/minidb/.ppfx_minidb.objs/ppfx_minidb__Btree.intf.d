lib/minidb/btree.mli: Value

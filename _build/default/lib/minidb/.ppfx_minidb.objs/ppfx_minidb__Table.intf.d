lib/minidb/table.mli: Btree Value

lib/minidb/sql.ml: Format List Option Set String Value

(** SQL abstract syntax: the fragment the XPath translations target.

    This covers everything the paper's translation algorithm emits
    (Tables 3–6): select-project-join with table aliases, [DISTINCT],
    [WHERE] trees over comparisons, [BETWEEN], string/binary concatenation
    ([||]), [REGEXP_LIKE], correlated [EXISTS] sub-selects, [ORDER BY], and
    [UNION] of selects (SQL splitting, Section 4.4) — plus arithmetic for
    XPath arithmetic predicates. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type arith = Add | Sub | Mul | Div | Mod

type expr =
  | Col of string * string  (** [Col (alias, column)] *)
  | Const of Value.t
  | Cmp of cmp * expr * expr
  | Between of expr * expr * expr  (** [Between (e, lo, hi)], inclusive *)
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Concat of expr * expr  (** SQL [||] *)
  | Regexp_like of expr * string  (** POSIX-ERE match, Oracle semantics *)
  | Exists of select
  | Arith of arith * expr * expr
  | To_number of expr  (** Oracle [TO_NUMBER]; NULL when unparsable *)
  | Length of expr  (** byte length of a string or binary value *)
  | Is_not_null of expr
  | Bool_const of bool  (** rendered as [1=1] / [1=0] *)
  | Count_subquery of select
      (** a scalar [SELECT COUNT ( * ) FROM ...] sub-query, possibly
          correlated *)

and select = {
  distinct : bool;
  projections : (expr * string) list;  (** (expression, output name) *)
  from : (string * string) list;  (** (table, alias); aliases unique *)
  where : expr option;
  order_by : expr list;
}

type statement =
  | Select of select
  | Select_count of select
      (** [SELECT COUNT ( * ) FROM ... WHERE ...]: the select's
          projections and ordering are ignored; the result is one row
          with one integer column. *)
  | Union of select list * int list
      (** [Union (branches, order_cols)]: distinct union of the branches
          (which must project the same arity), ordered by the given
          0-based output columns. *)

val and_opt : expr option -> expr -> expr option
(** Conjoin a condition onto an optional WHERE clause. *)

val conjuncts : expr -> expr list
(** Flatten a tree of [And] into its conjuncts. *)

val simplify : expr -> expr
(** Boolean constant folding: [x AND 1=1 -> x], [x OR 1=0 -> x],
    [NOT 1=0 -> 1=1], and so on, recursively (also inside [EXISTS]). *)

val free_aliases : expr -> string list
(** Aliases referenced by the expression, exluding those bound by inner
    [Exists] sub-selects. Sorted, distinct. *)

val pp_expr : Format.formatter -> expr -> unit
val pp_select : Format.formatter -> select -> unit
val pp_statement : Format.formatter -> statement -> unit

val to_string : statement -> string
(** Render as SQL text (Oracle-flavoured: [REGEXP_LIKE], [||]). *)

exception Error of { position : int; message : string }

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Bin_lit of string
  | Sym of string  (** one of ( ) , . || = <> != < <= > >= + - * / *)
  | Eof

type lexed = { token : token; pos : int }

let keywordize s = String.uppercase_ascii s

let lex src =
  let n = String.length src in
  let out = ref [] in
  let i = ref 0 in
  let fail pos fmt =
    Format.kasprintf (fun message -> raise (Error { position = pos; message })) fmt
  in
  let is_ident_start c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  in
  let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') in
  while !i < n do
    let c = src.[!i] in
    let pos = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if (c = 'x' || c = 'X') && !i + 1 < n && src.[!i + 1] = '\'' then begin
      (* hex binary literal x'AB01' *)
      i := !i + 2;
      let buf = Buffer.create 8 in
      let hex_val ch =
        match ch with
        | '0' .. '9' -> Char.code ch - Char.code '0'
        | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
        | _ -> fail pos "invalid hex digit %C" ch
      in
      let rec loop () =
        if !i >= n then fail pos "unterminated binary literal"
        else if src.[!i] = '\'' then incr i
        else begin
          if !i + 1 >= n then fail pos "odd-length binary literal";
          Buffer.add_char buf (Char.chr ((hex_val src.[!i] * 16) + hex_val src.[!i + 1]));
          i := !i + 2;
          loop ()
        end
      in
      loop ();
      out := { token = Bin_lit (Buffer.contents buf); pos } :: !out
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      out := { token = Ident (String.sub src start (!i - start)); pos } :: !out
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do
        incr i
      done;
      if !i < n && src.[!i] = '.' && !i + 1 < n && src.[!i + 1] >= '0' && src.[!i + 1] <= '9'
      then begin
        incr i;
        while !i < n && src.[!i] >= '0' && src.[!i] <= '9' do
          incr i
        done;
        out :=
          { token = Float_lit (float_of_string (String.sub src start (!i - start))); pos }
          :: !out
      end
      else
        out :=
          { token = Int_lit (int_of_string (String.sub src start (!i - start))); pos }
          :: !out
    end
    else if c = '\'' then begin
      incr i;
      let buf = Buffer.create 16 in
      let rec loop () =
        if !i >= n then fail pos "unterminated string literal"
        else if src.[!i] = '\'' then
          if !i + 1 < n && src.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2;
            loop ()
          end
          else incr i
        else begin
          Buffer.add_char buf src.[!i];
          incr i;
          loop ()
        end
      in
      loop ();
      out := { token = Str_lit (Buffer.contents buf); pos } :: !out
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "||" | "<>" | "!=" | "<=" | ">=" ->
        i := !i + 2;
        out := { token = Sym two; pos } :: !out
      | _ ->
        (match c with
         | '(' | ')' | ',' | '.' | '=' | '<' | '>' | '+' | '-' | '*' | '/' ->
           incr i;
           out := { token = Sym (String.make 1 c); pos } :: !out
         | c -> fail pos "unexpected character %C" c)
    end
  done;
  Array.of_list (List.rev ({ token = Eof; pos = n } :: !out))

(* ------------------------------------------------------------------ *)
(* Parser state                                                        *)
(* ------------------------------------------------------------------ *)

type state = { tokens : lexed array; mutable cursor : int }

let fail st fmt =
  let pos = st.tokens.(st.cursor).pos in
  Format.kasprintf (fun message -> raise (Error { position = pos; message })) fmt

let peek st = st.tokens.(st.cursor).token

let advance st = st.cursor <- st.cursor + 1

let keyword st kw =
  match peek st with
  | Ident id when String.equal (keywordize id) kw -> true
  | _ -> false

let eat_keyword st kw =
  if keyword st kw then advance st else fail st "expected %s" kw

let try_keyword st kw =
  if keyword st kw then begin
    advance st;
    true
  end
  else false

let try_sym st sym =
  match peek st with
  | Sym s when String.equal s sym ->
    advance st;
    true
  | _ -> false

let eat_sym st sym = if not (try_sym st sym) then fail st "expected '%s'" sym

let parse_ident st =
  match peek st with
  | Ident id -> advance st; id
  | _ -> fail st "expected an identifier"

(* Bare (unqualified) columns are parsed with a "" alias and resolved once
   the FROM clause is known. *)
let rec resolve_cols aliases (e : Sql.expr) : Sql.expr =
  let r = resolve_cols aliases in
  match e with
  | Sql.Col ("", col) ->
    (match aliases with
     | [ (_, alias) ] -> Sql.Col (alias, col)
     | _ ->
       raise
         (Error
            {
              position = 0;
              message =
                Printf.sprintf
                  "unqualified column %s needs a single-table FROM clause" col;
            }))
  | Sql.Col _ | Sql.Const _ | Sql.Bool_const _ -> e
  | Sql.Cmp (op, a, b) -> Sql.Cmp (op, r a, r b)
  | Sql.Between (a, b, c) -> Sql.Between (r a, r b, r c)
  | Sql.And (a, b) -> Sql.And (r a, r b)
  | Sql.Or (a, b) -> Sql.Or (r a, r b)
  | Sql.Not a -> Sql.Not (r a)
  | Sql.Concat (a, b) -> Sql.Concat (r a, r b)
  | Sql.Regexp_like (a, p) -> Sql.Regexp_like (r a, p)
  | Sql.Exists sel -> Sql.Exists sel (* inner select resolved on its own FROM *)
  | Sql.Count_subquery sel -> Sql.Count_subquery sel
  | Sql.Arith (op, a, b) -> Sql.Arith (op, r a, r b)
  | Sql.To_number a -> Sql.To_number (r a)
  | Sql.Length a -> Sql.Length (r a)
  | Sql.Is_not_null a -> Sql.Is_not_null (r a)

let rec parse_or st =
  let left = parse_and st in
  if try_keyword st "OR" then Sql.Or (left, parse_or st) else left

and parse_and st =
  let left = parse_not st in
  if try_keyword st "AND" then Sql.And (left, parse_and st) else left

and parse_not st =
  if try_keyword st "NOT" then Sql.Not (parse_not st) else parse_comparison st

and parse_comparison st =
  let left = parse_additive st in
  if try_keyword st "BETWEEN" then begin
    let lo = parse_additive st in
    eat_keyword st "AND";
    let hi = parse_additive st in
    Sql.Between (left, lo, hi)
  end
  else if keyword st "IS" then begin
    advance st;
    eat_keyword st "NOT";
    eat_keyword st "NULL";
    Sql.Is_not_null left
  end
  else begin
    let op =
      if try_sym st "=" then Some Sql.Eq
      else if try_sym st "<>" || try_sym st "!=" then Some Sql.Ne
      else if try_sym st "<=" then Some Sql.Le
      else if try_sym st ">=" then Some Sql.Ge
      else if try_sym st "<" then Some Sql.Lt
      else if try_sym st ">" then Some Sql.Gt
      else None
    in
    match op with
    | None -> left
    | Some op ->
      let right = parse_additive st in
      (* Recognise the Bool_const rendering 1=1 / 1=0. *)
      (match op, left, right with
       | Sql.Eq, Sql.Const (Value.Int 1), Sql.Const (Value.Int 1) -> Sql.Bool_const true
       | Sql.Eq, Sql.Const (Value.Int 1), Sql.Const (Value.Int 0) -> Sql.Bool_const false
       | _ -> Sql.Cmp (op, left, right))
  end

and parse_additive st =
  let left = parse_multiplicative st in
  let rec loop left =
    if try_sym st "+" then loop (Sql.Arith (Sql.Add, left, parse_multiplicative st))
    else if try_sym st "-" then loop (Sql.Arith (Sql.Sub, left, parse_multiplicative st))
    else left
  in
  loop left

and parse_multiplicative st =
  let left = parse_concat st in
  let rec loop left =
    if try_sym st "*" then loop (Sql.Arith (Sql.Mul, left, parse_concat st))
    else if try_sym st "/" then loop (Sql.Arith (Sql.Div, left, parse_concat st))
    else left
  in
  loop left

and parse_concat st =
  let left = parse_atom st in
  let rec loop left =
    if try_sym st "||" then loop (Sql.Concat (left, parse_atom st)) else left
  in
  loop left

and parse_atom st =
  match peek st with
  | Int_lit v ->
    advance st;
    Sql.Const (Value.Int v)
  | Float_lit v ->
    advance st;
    Sql.Const (Value.Float v)
  | Str_lit s ->
    advance st;
    Sql.Const (Value.Str s)
  | Bin_lit b ->
    advance st;
    Sql.Const (Value.Bin b)
  | Sym "(" ->
    advance st;
    if keyword st "SELECT" then begin
      (* scalar sub-query: ( SELECT COUNT ( * ) FROM ... [WHERE ...] ) *)
      advance st;
      eat_keyword st "COUNT";
      eat_sym st "(";
      eat_sym st "*";
      eat_sym st ")";
      eat_keyword st "FROM";
      let rec sources acc =
        let table = parse_ident st in
        let alias =
          match peek st with
          | Ident id when not (List.mem (keywordize id) [ "WHERE"; "AS" ]) ->
            advance st;
            id
          | Ident id when String.equal (keywordize id) "AS" ->
            advance st;
            parse_ident st
          | _ -> table
        in
        let acc = (table, alias) :: acc in
        if try_sym st "," then sources acc else List.rev acc
      in
      let from = sources [] in
      let where = if try_keyword st "WHERE" then Some (parse_or st) else None in
      eat_sym st ")";
      Sql.Count_subquery
        {
          Sql.distinct = false;
          projections = [ Sql.Const Value.Null, "count" ];
          from;
          where = Option.map (resolve_cols from) where;
          order_by = [];
        }
    end
    else begin
      let e = parse_or st in
      eat_sym st ")";
      e
    end
  | Sym "-" ->
    advance st;
    (match parse_atom st with
     | Sql.Const (Value.Int v) -> Sql.Const (Value.Int (-v))
     | Sql.Const (Value.Float v) -> Sql.Const (Value.Float (-.v))
     | e -> Sql.Arith (Sql.Sub, Sql.Const (Value.Int 0), e))
  | Ident id ->
    (match keywordize id with
     | "NULL" ->
       advance st;
       Sql.Const Value.Null
     | "EXISTS" ->
       advance st;
       eat_sym st "(";
       let sel, raw_order = parse_select st in
       let sel = { sel with Sql.order_by = List.map (resolve_cols sel.Sql.from) raw_order } in
       eat_sym st ")";
       Sql.Exists sel
     | "REGEXP_LIKE" ->
       advance st;
       eat_sym st "(";
       let e = parse_or st in
       eat_sym st ",";
       let pat =
         match peek st with
         | Str_lit s -> advance st; s
         | _ -> fail st "REGEXP_LIKE needs a string pattern"
       in
       eat_sym st ")";
       Sql.Regexp_like (e, pat)
     | "TO_NUMBER" ->
       advance st;
       eat_sym st "(";
       let e = parse_or st in
       eat_sym st ")";
       Sql.To_number e
     | "LENGTH" ->
       advance st;
       eat_sym st "(";
       let e = parse_or st in
       eat_sym st ")";
       Sql.Length e
     | "MOD" ->
       advance st;
       eat_sym st "(";
       let a = parse_or st in
       eat_sym st ",";
       let b = parse_or st in
       eat_sym st ")";
       Sql.Arith (Sql.Mod, a, b)
     | _ ->
       advance st;
       if try_sym st "." then
         let col = parse_ident st in
         Sql.Col (id, col)
       else Sql.Col ("", id))
  | Sym s -> fail st "unexpected '%s'" s
  | Eof -> fail st "unexpected end of input"

(* ------------------------------------------------------------------ *)
(* SELECT                                                              *)
(* ------------------------------------------------------------------ *)

and parse_select st : Sql.select * Sql.expr list =
  eat_keyword st "SELECT";
  let distinct = try_keyword st "DISTINCT" in
  let rec projections acc idx =
    let e = parse_or st in
    let name =
      if try_keyword st "AS" then parse_ident st
      else
        match e with
        | Sql.Col (_, col) -> col
        | Sql.Const Value.Null -> Printf.sprintf "col%d" idx
        | _ -> Printf.sprintf "col%d" idx
    in
    let acc = (e, name) :: acc in
    if try_sym st "," then projections acc (idx + 1) else List.rev acc
  in
  let projections = projections [] 0 in
  eat_keyword st "FROM";
  let rec sources acc =
    let table = parse_ident st in
    let alias =
      match peek st with
      | Ident id when not (List.mem (keywordize id) [ "WHERE"; "ORDER"; "UNION"; "AS" ]) ->
        advance st;
        id
      | Ident id when String.equal (keywordize id) "AS" ->
        advance st;
        parse_ident st
      | _ -> table
    in
    let acc = (table, alias) :: acc in
    if try_sym st "," then sources acc else List.rev acc
  in
  let from = sources [] in
  let where = if try_keyword st "WHERE" then Some (parse_or st) else None in
  let order_by =
    if keyword st "ORDER" then begin
      advance st;
      eat_keyword st "BY";
      let rec exprs acc =
        let e = parse_or st in
        let acc = e :: acc in
        if try_sym st "," then exprs acc else List.rev acc
      in
      exprs []
    end
    else []
  in
  let resolve = resolve_cols from in
  (* order_by resolution is deferred: after UNION the trailing ORDER BY
     names output columns, not table columns. *)
  ( {
      Sql.distinct;
      projections = List.map (fun (e, name) -> resolve e, name) projections;
      from;
      where = Option.map resolve where;
      order_by = [];
    },
    order_by )

(* Is this a top-level SELECT COUNT statement? *)
let is_count_select st =
  match st.tokens.(st.cursor).token, st.tokens.(st.cursor + 1).token with
  | Ident s, Ident c ->
    String.equal (keywordize s) "SELECT" && String.equal (keywordize c) "COUNT"
  | _ -> false

let parse src =
  let st = { tokens = lex src; cursor = 0 } in
  if is_count_select st then begin
    (* Reuse the scalar sub-query grammar by wrapping in parens. *)
    match parse_atom { tokens = lex ("(" ^ src ^ ")"); cursor = 0 } with
    | Sql.Count_subquery sel -> Sql.Select_count sel
    | _ -> fail st "malformed SELECT COUNT statement"
  end
  else
  let first, first_order = parse_select st in
  if not (keyword st "UNION") then begin
    (match peek st with
     | Eof -> ()
     | _ -> fail st "unexpected trailing input");
    Sql.Select
      { first with Sql.order_by = List.map (resolve_cols first.Sql.from) first_order }
  end
  else begin
    if first_order <> [] then fail st "ORDER BY is only allowed after the last UNION branch";
    let rec more acc =
      if try_keyword st "UNION" then begin
        let sel, raw_order = parse_select st in
        if keyword st "UNION" && raw_order <> [] then
          fail st "ORDER BY is only allowed after the last UNION branch";
        more ((sel, raw_order) :: acc)
      end
      else List.rev acc
    in
    let rest = more [] in
    let branches = first :: List.map fst rest in
    let order_exprs =
      match List.rev rest with
      | (_, raw_order) :: _ -> raw_order
      | [] -> []
    in
    let order_cols =
      List.map
        (fun e ->
          match e with
          | Sql.Col ("", name) ->
            (match
               List.find_index
                 (fun (_, out_name) -> String.equal out_name name)
                 first.Sql.projections
             with
             | Some i -> i
             | None -> fail st "ORDER BY column %s is not an output column" name)
          | _ -> fail st "UNION ORDER BY must reference output columns")
        order_exprs
    in
    (match peek st with
     | Eof -> ()
     | _ -> fail st "unexpected trailing input");
    Sql.Union (branches, order_cols)
  end

let parse_expr ~aliases src =
  let st = { tokens = lex src; cursor = 0 } in
  let e = parse_or st in
  (match peek st with
   | Eof -> ()
   | _ -> fail st "unexpected trailing input");
  resolve_cols aliases e

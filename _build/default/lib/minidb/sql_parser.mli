(** SQL text parser for the engine's dialect — the inverse of
    {!Sql.to_string}.

    Grammar (case-insensitive keywords):
    {v
      statement  ::= select [UNION select ...] [ORDER BY column, ...]
      select     ::= SELECT [DISTINCT] projection, ...
                     FROM source, ... [WHERE expr] [ORDER BY expr, ...]
      projection ::= expr [AS ident] | NULL
      source     ::= ident [ident]            -- table, optional alias
      expr       ::= OR-tree over AND / NOT / comparisons / BETWEEN /
                     IS NOT NULL / REGEXP_LIKE / EXISTS / concatenation,
                     arithmetic, TO_NUMBER, LENGTH, literals
                     and column references alias.col or col
    v}

    Unqualified column references are resolved against the select's FROM
    clause when it has exactly one source; otherwise they are an error.

    For a [Union] statement, the trailing ORDER BY columns must name
    output columns of the first branch. *)

exception Error of { position : int; message : string }

val parse : string -> Sql.statement
(** Raises {!Error} on malformed input. *)

val parse_expr : aliases:(string * string) list -> string -> Sql.expr
(** Parse a bare expression; [aliases] is the (table, alias) environment
    used to resolve unqualified columns (single-source only). *)

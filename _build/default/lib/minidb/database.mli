(** The database catalog: a set of named tables. *)

type t

val create : unit -> t

val create_table : t -> name:string -> columns:Table.column list -> Table.t
(** Raises [Invalid_argument] if the name is taken. *)

val table : t -> string -> Table.t
(** Raises [Not_found]. *)

val table_opt : t -> string -> Table.t option

val tables : t -> Table.t list
(** In creation order. *)

val total_rows : t -> int

val pp_stats : Format.formatter -> t -> unit
(** Per-table row counts and indexes — a [\d+]-style catalog dump. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type arith = Add | Sub | Mul | Div | Mod

type expr =
  | Col of string * string
  | Const of Value.t
  | Cmp of cmp * expr * expr
  | Between of expr * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Concat of expr * expr
  | Regexp_like of expr * string
  | Exists of select
  | Arith of arith * expr * expr
  | To_number of expr
  | Length of expr
  | Is_not_null of expr
  | Bool_const of bool
  | Count_subquery of select

and select = {
  distinct : bool;
  projections : (expr * string) list;
  from : (string * string) list;
  where : expr option;
  order_by : expr list;
}

type statement =
  | Select of select
  | Select_count of select
  | Union of select list * int list

let and_opt where cond =
  match where with
  | None -> Some cond
  | Some w -> Some (And (w, cond))

let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let rec simplify = function
  | And (a, b) ->
    (match simplify a, simplify b with
     | Bool_const true, x | x, Bool_const true -> x
     | Bool_const false, _ | _, Bool_const false -> Bool_const false
     | a, b -> And (a, b))
  | Or (a, b) ->
    (match simplify a, simplify b with
     | Bool_const false, x | x, Bool_const false -> x
     | Bool_const true, _ | _, Bool_const true -> Bool_const true
     | a, b -> Or (a, b))
  | Not a ->
    (match simplify a with
     | Bool_const b -> Bool_const (not b)
     | a -> Not a)
  | Exists sel -> Exists { sel with where = Option.map simplify sel.where }
  | Count_subquery sel -> Count_subquery { sel with where = Option.map simplify sel.where }
  | ( Col _ | Const _ | Cmp _ | Between _ | Concat _ | Regexp_like _ | Arith _
    | To_number _ | Length _ | Is_not_null _ | Bool_const _ ) as e ->
    e

module Sset = Set.Make (String)

let rec free_set bound = function
  | Col (alias, _) -> if Sset.mem alias bound then Sset.empty else Sset.singleton alias
  | Const _ -> Sset.empty
  | Cmp (_, a, b) | Arith (_, a, b) | Concat (a, b) | And (a, b) | Or (a, b) ->
    Sset.union (free_set bound a) (free_set bound b)
  | Between (a, b, c) ->
    Sset.union (free_set bound a) (Sset.union (free_set bound b) (free_set bound c))
  | Not a | To_number a | Length a | Is_not_null a -> free_set bound a
  | Regexp_like (a, _) -> free_set bound a
  | Bool_const _ -> Sset.empty
  | Exists sel | Count_subquery sel -> free_set_select bound sel

and free_set_select bound sel =
  let bound = List.fold_left (fun acc (_, alias) -> Sset.add alias acc) bound sel.from in
  let of_opt = function None -> Sset.empty | Some e -> free_set bound e in
  List.fold_left
    (fun acc (e, _) -> Sset.union acc (free_set bound e))
    (Sset.union (of_opt sel.where)
       (List.fold_left (fun acc e -> Sset.union acc (free_set bound e)) Sset.empty
          sel.order_by))
    sel.projections

let free_aliases e = Sset.elements (free_set Sset.empty e)

let cmp_symbol = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let arith_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "MOD"

(* Precedences for parenthesisation: Or=1, And=2, Not=3, comparisons=4,
   additive=5, multiplicative=6, concat=7, atoms=8. *)
let rec pp_prec prec ppf e =
  let open Format in
  let paren p body = if prec > p then fprintf ppf "(%t)" body else body ppf in
  match e with
  | Col (alias, col) -> fprintf ppf "%s.%s" alias col
  | Const v -> Value.pp ppf v
  | Cmp (op, a, b) ->
    paren 4 (fun ppf ->
        fprintf ppf "%a %s %a" (pp_prec 5) a (cmp_symbol op) (pp_prec 5) b)
  | Between (e, lo, hi) ->
    paren 4 (fun ppf ->
        fprintf ppf "%a BETWEEN %a AND %a" (pp_prec 5) e (pp_prec 5) lo (pp_prec 5) hi)
  | And (a, b) ->
    paren 2 (fun ppf -> fprintf ppf "%a AND %a" (pp_prec 2) a (pp_prec 2) b)
  | Or (a, b) -> paren 1 (fun ppf -> fprintf ppf "%a OR %a" (pp_prec 1) a (pp_prec 1) b)
  | Not a -> paren 3 (fun ppf -> fprintf ppf "NOT %a" (pp_prec 4) a)
  | Concat (a, b) ->
    paren 7 (fun ppf -> fprintf ppf "%a || %a" (pp_prec 7) a (pp_prec 8) b)
  | Regexp_like (e, pat) ->
    fprintf ppf "REGEXP_LIKE(%a, '%s')" (pp_prec 0) e
      (String.concat "''" (String.split_on_char '\'' pat))
  | Exists sel -> fprintf ppf "EXISTS (%a)" pp_select sel
  | Count_subquery sel ->
    fprintf ppf "(SELECT COUNT(*) FROM %a"
      (pp_print_list
         ~pp_sep:(fun ppf () -> pp_print_string ppf ", ")
         (fun ppf (table, alias) ->
           if String.equal table alias then pp_print_string ppf table
           else fprintf ppf "%s %s" table alias))
      sel.from;
    (match sel.where with
     | None -> ()
     | Some w -> fprintf ppf " WHERE %a" (pp_prec 0) w);
    pp_print_string ppf ")"
  | Arith ((Mod as op), a, b) ->
    fprintf ppf "%s(%a, %a)" (arith_symbol op) (pp_prec 0) a (pp_prec 0) b
  | Arith ((Add | Sub) as op, a, b) ->
    paren 5 (fun ppf ->
        fprintf ppf "%a %s %a" (pp_prec 5) a (arith_symbol op) (pp_prec 6) b)
  | Arith ((Mul | Div) as op, a, b) ->
    paren 6 (fun ppf ->
        fprintf ppf "%a %s %a" (pp_prec 6) a (arith_symbol op) (pp_prec 7) b)
  | To_number a -> fprintf ppf "TO_NUMBER(%a)" (pp_prec 0) a
  | Length a -> fprintf ppf "LENGTH(%a)" (pp_prec 0) a
  | Is_not_null a -> paren 4 (fun ppf -> fprintf ppf "%a IS NOT NULL" (pp_prec 5) a)
  | Bool_const b -> pp_print_string ppf (if b then "1=1" else "1=0")

and pp_select ppf sel =
  let open Format in
  fprintf ppf "SELECT %s%a FROM %a"
    (if sel.distinct then "DISTINCT " else "")
    (pp_print_list
       ~pp_sep:(fun ppf () -> pp_print_string ppf ", ")
       (fun ppf (e, name) ->
         match e with
         | Col (_, col) when String.equal col name -> pp_prec 0 ppf e
         | Const Value.Null -> pp_print_string ppf "NULL"
         | e -> fprintf ppf "%a AS %s" (pp_prec 0) e name))
    sel.projections
    (pp_print_list
       ~pp_sep:(fun ppf () -> pp_print_string ppf ", ")
       (fun ppf (table, alias) ->
         if String.equal table alias then pp_print_string ppf table
         else fprintf ppf "%s %s" table alias))
    sel.from;
  (match sel.where with
   | None -> ()
   | Some w -> fprintf ppf " WHERE %a" (pp_prec 0) w);
  match sel.order_by with
  | [] -> ()
  | order ->
    fprintf ppf " ORDER BY %a"
      (pp_print_list ~pp_sep:(fun ppf () -> pp_print_string ppf ", ") (pp_prec 0))
      order

let pp_expr ppf e = pp_prec 0 ppf e

let pp_statement ppf = function
  | Select sel -> pp_select ppf sel
  | Select_count sel ->
    Format.fprintf ppf "SELECT COUNT(*) FROM %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         (fun ppf (table, alias) ->
           if String.equal table alias then Format.pp_print_string ppf table
           else Format.fprintf ppf "%s %s" table alias))
      sel.from;
    (match sel.where with
     | None -> ()
     | Some w -> Format.fprintf ppf " WHERE %a" (pp_prec 0) w)
  | Union (branches, order_cols) ->
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " UNION ")
      pp_select ppf branches;
    (match order_cols, branches with
     | [], _ | _, [] -> ()
     | cols, first :: _ ->
       Format.fprintf ppf " ORDER BY %s"
         (String.concat ", "
            (List.map (fun i -> snd (List.nth first.projections i)) cols)))

let to_string stmt = Format.asprintf "%a" pp_statement stmt

(** A parser for the XML Schema (XSD) subset the relational mapping needs,
    producing the {!Graph} representation of paper Section 2.1.

    Supported constructs:
    - [xs:schema] with one or more global [xs:element] declarations (the
      first one is the document root unless [root] is given);
    - [xs:element] with [name] + inline [xs:complexType], [name] + [type]
      referencing a global complex type, [name] + a simple [type]
      (becomes a text-carrying leaf), or [ref] to a global element;
    - [xs:complexType] (global or inline) containing [xs:sequence],
      [xs:choice] or [xs:all] groups (arbitrarily nested — occurrence
      structure is flattened, since the graph only captures nesting
      edges), [xs:attribute] declarations, [xs:simpleContent]/[mixed]
      for text content;
    - recursion through global element or type references.

    The namespace prefix is recognised by the [xmlns:*] binding to
    ["http://www.w3.org/2001/XMLSchema"], defaulting to accepting both
    ["xs"] and ["xsd"] prefixes when no binding is present.

    Shared global declarations become shared graph vertices, which is
    exactly the paper's rule "each complex type is mapped into a separate
    relation" (one relation per vertex; see {!Graph}). *)

exception Error of string

val parse : ?root:string -> string -> Graph.t
(** Parse an XSD document (as a string). [root] selects the global element
    used as the document root; defaults to the first global element.
    Raises {!Error} on malformed or out-of-subset schemas. *)

lib/schema/xsd.ml: Format Graph Hashtbl List Ppfx_xml Printf String

lib/schema/xsd.mli: Graph

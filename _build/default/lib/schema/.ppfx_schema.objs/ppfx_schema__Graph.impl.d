lib/schema/graph.ml: Array Format Hashtbl List Option Ppfx_xml Printf String

lib/schema/graph.mli: Format Ppfx_xml

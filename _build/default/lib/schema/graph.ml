module Doc = Ppfx_xml.Doc

type def = {
  id : int;
  name : string;
  relation : string;
  attrs : string list;
  has_text : bool;
}

type classification =
  | Unique_path of string
  | Finite_paths of string list
  | Infinite_paths

type t = {
  root : def;
  defs : def array;  (** indexed by [def.id] *)
  children : int list array;
  parents : int list array;
  class_ : classification array;
  by_name : (string, int list) Hashtbl.t;
  by_relation : (string, int) Hashtbl.t;
}

(* Beyond this many distinct root paths a vertex is treated as
   Infinite_paths: the always-join-Paths fallback is safe, only slightly
   pessimistic. *)
let finite_paths_cap = 256

module Builder = struct
  type schema = t

  type b = {
    mutable count : int;
    mutable rev_defs : def list;
    mutable edges : (int * int) list;
    name_counts : (string, int) Hashtbl.t;
  }

  let create () =
    { count = 0; rev_defs = []; edges = []; name_counts = Hashtbl.create 16 }

  let define b ?(attrs = []) ?(text = false) name =
    let seq =
      match Hashtbl.find_opt b.name_counts name with
      | None -> 1
      | Some n -> n + 1
    in
    Hashtbl.replace b.name_counts name seq;
    let relation = if seq = 1 then name else Printf.sprintf "%s_%d" name seq in
    let def = { id = b.count; name; relation; attrs; has_text = text } in
    b.count <- b.count + 1;
    b.rev_defs <- def :: b.rev_defs;
    def

  let add_child b ~parent child =
    if not (List.mem (parent.id, child.id) b.edges) then
      b.edges <- (parent.id, child.id) :: b.edges

  (* Tarjan strongly-connected components; returns the set of vertices that
     lie on some cycle (SCC of size > 1, or self-loop). *)
  let cyclic_vertices n children =
    let index = Array.make n (-1) in
    let lowlink = Array.make n 0 in
    let on_stack = Array.make n false in
    let stack = ref [] in
    let next_index = ref 0 in
    let cyclic = Array.make n false in
    let rec strongconnect v =
      index.(v) <- !next_index;
      lowlink.(v) <- !next_index;
      incr next_index;
      stack := v :: !stack;
      on_stack.(v) <- true;
      List.iter
        (fun w ->
          if index.(w) = -1 then begin
            strongconnect w;
            lowlink.(v) <- min lowlink.(v) lowlink.(w)
          end
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
        children.(v);
      if lowlink.(v) = index.(v) then begin
        (* Pop the SCC rooted at v. *)
        let rec pop acc =
          match !stack with
          | [] -> acc
          | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
        in
        let scc = pop [] in
        (match scc with
         | [ w ] -> if List.mem w children.(w) then cyclic.(w) <- true
         | scc -> List.iter (fun w -> cyclic.(w) <- true) scc)
      end
    in
    for v = 0 to n - 1 do
      if index.(v) = -1 then strongconnect v
    done;
    cyclic

  let finish b ~root =
    let n = b.count in
    let defs = Array.make n root in
    List.iter (fun d -> defs.(d.id) <- d) b.rev_defs;
    let children = Array.make n [] in
    let parents = Array.make n [] in
    List.iter
      (fun (p, c) ->
        children.(p) <- c :: children.(p);
        parents.(c) <- p :: parents.(c))
      (List.rev b.edges);
    (* Restore declaration order of edges. *)
    Array.iteri (fun i l -> children.(i) <- List.rev l) children;
    Array.iteri (fun i l -> parents.(i) <- List.rev l) parents;
    (* Reject sibling vertices with the same tag under one parent: element
       instances could not be assigned a unique storage relation. *)
    Array.iteri
      (fun p cs ->
        let seen = Hashtbl.create 8 in
        List.iter
          (fun c ->
            let tag = defs.(c).name in
            if Hashtbl.mem seen tag then
              invalid_arg
                (Printf.sprintf
                   "Schema.Builder.finish: vertex %s has two child definitions named %s"
                   defs.(p).name tag);
            Hashtbl.add seen tag ())
          cs)
      children;
    (* Reachability from root. *)
    let reachable = Array.make n false in
    let rec reach v =
      if not reachable.(v) then begin
        reachable.(v) <- true;
        List.iter reach children.(v)
      end
    in
    reach root.id;
    Array.iteri
      (fun v r ->
        if not r then
          invalid_arg
            (Printf.sprintf "Schema.Builder.finish: vertex %s unreachable from root"
               defs.(v).name))
      reachable;
    (* Infinite-path vertices: reachable from a cyclic vertex. *)
    let cyclic = cyclic_vertices n children in
    let infinite = Array.make n false in
    let rec mark v =
      if not infinite.(v) then begin
        infinite.(v) <- true;
        List.iter mark children.(v)
      end
    in
    Array.iteri (fun v c -> if c then mark v) cyclic;
    (* Enumerate root paths for the finite vertices (memoized DFS over the
       acyclic restriction of the graph). *)
    let memo : string list option array = Array.make n None in
    let rec paths_to v =
      match memo.(v) with
      | Some ps -> ps
      | None ->
        let ps =
          if v = root.id then [ "/" ^ defs.(v).name ]
          else
            List.concat_map
              (fun p ->
                if infinite.(p) then []
                else List.map (fun pp -> pp ^ "/" ^ defs.(v).name) (paths_to p))
              parents.(v)
        in
        memo.(v) <- Some ps;
        ps
    in
    let class_ =
      Array.init n (fun v ->
          if infinite.(v) then Infinite_paths
          else
            match paths_to v with
            | [ p ] -> Unique_path p
            | ps when List.length ps <= finite_paths_cap -> Finite_paths ps
            | _ -> Infinite_paths)
    in
    let by_name = Hashtbl.create n in
    let by_relation = Hashtbl.create n in
    Array.iter
      (fun d ->
        let existing = Option.value ~default:[] (Hashtbl.find_opt by_name d.name) in
        Hashtbl.replace by_name d.name (existing @ [ d.id ]);
        Hashtbl.replace by_relation d.relation d.id)
      defs;
    { root; defs; children; parents; class_; by_name; by_relation }
end

let infer doc =
  let b = Builder.create () in
  let by_tag : (string, def) Hashtbl.t = Hashtbl.create 64 in
  let attrs_of : (string, string list ref) Hashtbl.t = Hashtbl.create 64 in
  let text_of : (string, bool ref) Hashtbl.t = Hashtbl.create 64 in
  let edges : (string * string, unit) Hashtbl.t = Hashtbl.create 64 in
  Doc.iter
    (fun e ->
      let attrs =
        match Hashtbl.find_opt attrs_of e.Doc.tag with
        | Some r -> r
        | None ->
          let r = ref [] in
          Hashtbl.add attrs_of e.Doc.tag r;
          r
      in
      List.iter
        (fun (a, _) -> if not (List.mem a !attrs) then attrs := !attrs @ [ a ])
        e.Doc.attrs;
      let text =
        match Hashtbl.find_opt text_of e.Doc.tag with
        | Some r -> r
        | None ->
          let r = ref false in
          Hashtbl.add text_of e.Doc.tag r;
          r
      in
      if String.length (String.trim e.Doc.text) > 0 then text := true)
    doc;
  Doc.iter
    (fun e ->
      List.map (Doc.element doc) e.Doc.children
      |> List.iter (fun c -> Hashtbl.replace edges (e.Doc.tag, c.Doc.tag) ()))
    doc;
  let define tag =
    match Hashtbl.find_opt by_tag tag with
    | Some d -> d
    | None ->
      let attrs =
        match Hashtbl.find_opt attrs_of tag with Some r -> !r | None -> []
      in
      let text = match Hashtbl.find_opt text_of tag with Some r -> !r | None -> false in
      let d = Builder.define b ~attrs ~text tag in
      Hashtbl.add by_tag tag d;
      d
  in
  Doc.iter (fun e -> ignore (define e.Doc.tag)) doc;
  Hashtbl.iter
    (fun (p, c) () -> Builder.add_child b ~parent:(define p) (define c))
    edges;
  Builder.finish b ~root:(define (Doc.root doc).Doc.tag)

let root t = t.root

let defs t = Array.to_list t.defs

let find t name =
  match Hashtbl.find_opt t.by_name name with
  | None -> []
  | Some ids -> List.map (fun i -> t.defs.(i)) ids

let def_of_relation t rel =
  Option.map (fun i -> t.defs.(i)) (Hashtbl.find_opt t.by_relation rel)

let children t d = List.map (fun i -> t.defs.(i)) t.children.(d.id)

let parents t d = List.map (fun i -> t.defs.(i)) t.parents.(d.id)

let reach_from t adjacency d =
  let n = Array.length t.defs in
  let seen = Array.make n false in
  let order = ref [] in
  let rec go v =
    if not seen.(v) then begin
      seen.(v) <- true;
      order := v :: !order;
      List.iter go adjacency.(v)
    end
  in
  List.iter go adjacency.(d.id);
  List.rev_map (fun i -> t.defs.(i)) !order

let descendants t d = List.rev (reach_from t t.children d)

let ancestors t d = List.rev (reach_from t t.parents d)

let classification t d = t.class_.(d.id)

let root_paths t d =
  match t.class_.(d.id) with
  | Unique_path p -> Some [ p ]
  | Finite_paths ps -> Some ps
  | Infinite_paths -> None

let matches_doc t doc =
  let assign = Array.make (Doc.size doc + 1) (-1) in
  let rec check (e : Doc.element) =
    let vertex =
      if e.Doc.parent = 0 then
        if String.equal e.Doc.tag t.root.name then Some t.root
        else None
      else
        let parent_vertex = t.defs.(assign.(e.Doc.parent)) in
        List.find_opt (fun c -> String.equal c.name e.Doc.tag) (children t parent_vertex)
    in
    match vertex with
    | None ->
      Error
        (Printf.sprintf "element %s at %s does not match the schema" e.Doc.tag
           e.Doc.path)
    | Some v ->
      assign.(e.Doc.id) <- v.id;
      let rec all = function
        | [] -> Ok ()
        | c :: rest ->
          (match check (Doc.element doc c) with
           | Ok () -> all rest
           | Error _ as err -> err)
      in
      all e.Doc.children
  in
  check (Doc.root doc)

let pp_def ppf d = Format.fprintf ppf "%s(#%d -> %s)" d.name d.id d.relation

let pp ppf t =
  Array.iter
    (fun d ->
      let class_str =
        match t.class_.(d.id) with
        | Unique_path p -> "U-P " ^ p
        | Finite_paths ps -> Printf.sprintf "F-P (%d paths)" (List.length ps)
        | Infinite_paths -> "I-P"
      in
      Format.fprintf ppf "%a [%s] -> {%s}@." pp_def d class_str
        (String.concat ", " (List.map (fun c -> c.name) (children t d))))
    t.defs

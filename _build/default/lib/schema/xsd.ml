module Tree = Ppfx_xml.Tree

exception Error of string

let error fmt = Format.kasprintf (fun m -> raise (Error m)) fmt

let local_name tag =
  match String.rindex_opt tag ':' with
  | Some i -> String.sub tag (i + 1) (String.length tag - i - 1)
  | None -> tag

let is_xsd tag name = String.equal (local_name tag) name

let child_elements (e : Tree.element) =
  List.filter_map
    (function Tree.Element c -> Some c | Tree.Text _ -> None)
    e.Tree.children

let attr e name = Tree.attr e name

(* Built-in simple types are recognised by the xs:* prefix or a known
   local name; anything else with a [type] attribute is looked up among
   the global complex types. *)
let simple_type_names =
  [
    "string"; "integer"; "int"; "long"; "short"; "decimal"; "float"; "double";
    "boolean"; "date"; "dateTime"; "time"; "anyURI"; "token"; "NMTOKEN"; "ID";
    "IDREF"; "positiveInteger"; "nonNegativeInteger"; "gYear";
  ]

let is_simple_type_name ty = List.mem (local_name ty) simple_type_names

type ctx = {
  builder : Graph.Builder.b;
  global_elements : (string, Tree.element) Hashtbl.t;
  global_types : (string, Tree.element) Hashtbl.t;
  (* (element name, type identity) -> vertex; realises the paper's
     complex-type sharing and terminates recursion. *)
  memo : (string, Graph.def) Hashtbl.t;
  inline_ids : (Tree.element, int) Hashtbl.t;
  mutable next_inline : int;
}

let type_identity ctx (node : Tree.element option) (type_name : string option) =
  match type_name, node with
  | Some ty, _ -> "named:" ^ local_name ty
  | None, Some node ->
    let id =
      match Hashtbl.find_opt ctx.inline_ids node with
      | Some id -> id
      | None ->
        let id = ctx.next_inline in
        ctx.next_inline <- id + 1;
        Hashtbl.add ctx.inline_ids node id;
        id
    in
    Printf.sprintf "inline:%d" id
  | None, None -> "leaf"

(* Collect the attribute names, text-carrying flag and child element
   declarations of a complexType node. Group structure (sequence, choice,
   all, nested groups, occurrence bounds) is flattened: the schema graph
   of Section 2.1 only captures nesting edges. *)
let rec analyze_complex_type (ct : Tree.element) =
  let attrs = ref [] in
  let has_text = ref (attr ct "mixed" = Some "true") in
  let elements = ref [] in
  let rec walk (e : Tree.element) =
    List.iter
      (fun (c : Tree.element) ->
        match local_name c.Tree.tag with
        | "attribute" ->
          (match attr c "name" with
           | Some name -> if not (List.mem name !attrs) then attrs := !attrs @ [ name ]
           | None -> ())
        | "element" -> elements := !elements @ [ c ]
        | "sequence" | "choice" | "all" | "group" -> walk c
        | "simpleContent" | "extension" | "restriction" ->
          has_text := true;
          walk c
        | "complexContent" -> walk c
        | "annotation" | "documentation" | "anyAttribute" | "any" -> ()
        | other -> error "unsupported XSD construct xs:%s" other)
      (child_elements e)
  in
  walk ct;
  !attrs, !has_text, !elements

and instantiate ctx ~(name : string) ~(ct : Tree.element option) ~(type_name : string option)
    ~(text_leaf : bool) : Graph.def =
  let ct, type_name =
    (* Resolve a named complex type. *)
    match ct, type_name with
    | Some _, _ -> ct, type_name
    | None, Some ty when not (is_simple_type_name ty) ->
      (match Hashtbl.find_opt ctx.global_types (local_name ty) with
       | Some node -> Some node, type_name
       | None -> error "unknown type %s for element %s" ty name)
    | None, _ -> None, type_name
  in
  let key = name ^ "\x00" ^ type_identity ctx ct type_name in
  match Hashtbl.find_opt ctx.memo key with
  | Some def -> def
  | None ->
    (match ct with
     | None ->
       (* Simple-typed or untyped leaf element. *)
       ignore text_leaf;
       (* A leaf declaration (simple-typed or untyped) always carries text. *)
       let def = Graph.Builder.define ctx.builder ~text:true name in
       Hashtbl.add ctx.memo key def;
       def
     | Some ct_node ->
       let attrs, has_text, elements = analyze_complex_type ct_node in
       let def = Graph.Builder.define ctx.builder ~attrs ~text:has_text name in
       Hashtbl.add ctx.memo key def;
       List.iter
         (fun child_decl ->
           let child_def = instantiate_element ctx child_decl in
           Graph.Builder.add_child ctx.builder ~parent:def child_def)
         elements;
       def)

and instantiate_element ctx (e : Tree.element) : Graph.def =
  match attr e "ref" with
  | Some ref_name ->
    (match Hashtbl.find_opt ctx.global_elements (local_name ref_name) with
     | Some decl -> instantiate_element ctx decl
     | None -> error "unknown element reference %s" ref_name)
  | None ->
    let name =
      match attr e "name" with
      | Some n -> n
      | None -> error "element declaration without name or ref"
    in
    let inline_ct =
      List.find_opt
        (fun (c : Tree.element) -> is_xsd c.Tree.tag "complexType")
        (child_elements e)
    in
    let type_name = attr e "type" in
    (match inline_ct, type_name with
     | Some ct, _ -> instantiate ctx ~name ~ct:(Some ct) ~type_name:None ~text_leaf:false
     | None, Some ty when is_simple_type_name ty ->
       instantiate ctx ~name ~ct:None ~type_name:None ~text_leaf:true
     | None, Some ty -> instantiate ctx ~name ~ct:None ~type_name:(Some ty) ~text_leaf:false
     | None, None ->
       (* xs:simpleType child, or nothing: a text leaf. *)
       instantiate ctx ~name ~ct:None ~type_name:None ~text_leaf:true)

let parse ?root src =
  let doc =
    match Ppfx_xml.Parser.parse src with
    | Tree.Element e -> e
    | Tree.Text _ -> error "not an XML document"
    | exception Ppfx_xml.Parser.Error { line; column; message } ->
      error "XML error at %d:%d: %s" line column message
  in
  if not (is_xsd doc.Tree.tag "schema") then
    error "root element is %s, expected xs:schema" doc.Tree.tag;
  let ctx =
    {
      builder = Graph.Builder.create ();
      global_elements = Hashtbl.create 16;
      global_types = Hashtbl.create 16;
      memo = Hashtbl.create 16;
      inline_ids = Hashtbl.create 16;
      next_inline = 0;
    }
  in
  let global_order = ref [] in
  List.iter
    (fun (c : Tree.element) ->
      match local_name c.Tree.tag with
      | "element" ->
        (match attr c "name" with
         | Some name ->
           Hashtbl.replace ctx.global_elements name c;
           global_order := name :: !global_order
         | None -> error "global element without a name")
      | "complexType" ->
        (match attr c "name" with
         | Some name -> Hashtbl.replace ctx.global_types name c
         | None -> error "global complexType without a name")
      | "annotation" | "import" | "include" | "simpleType" -> ()
      | other -> error "unsupported top-level construct xs:%s" other)
    (child_elements doc);
  let root_name =
    match root with
    | Some r -> r
    | None ->
      (match List.rev !global_order with
       | first :: _ -> first
       | [] -> error "schema declares no global elements")
  in
  let root_decl =
    match Hashtbl.find_opt ctx.global_elements root_name with
    | Some decl -> decl
    | None -> error "no global element named %s" root_name
  in
  let root_def = instantiate_element ctx root_decl in
  Graph.Builder.finish ctx.builder ~root:root_def

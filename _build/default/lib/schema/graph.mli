(** Graph representation of an XML Schema (paper Sections 2.1 and 4.5).

    Vertices are element definitions; edges are element–subelement nesting
    relationships. Shared structures (globally-defined complex types, or
    DTD-style global element declarations) are shared vertices, so the
    graph is a general directed graph: a vertex may have several parents
    (e.g. XMark's [item] under each region) and cycles model recursive
    schemata (e.g. [G] containing [G] in the paper's Figure 1).

    The relational mapping assigns one relation per vertex, which realises
    both of the paper's mapping rules at once (a separate relation per
    complex type, shared by every element definition of that type).

    Each vertex is classified for the Section 4.5 optimization:
    - [Unique_path]: exactly one root-to-node path — the Paths join can
      always be omitted;
    - [Finite_paths]: finitely many root paths, listed — the Paths join is
      needed only if some path fails the query's regular expression;
    - [Infinite_paths]: a cycle lies on some root path — always join. *)

type def = {
  id : int;  (** vertex id, unique within the schema *)
  name : string;  (** element tag *)
  relation : string;  (** name of the mapping relation for this vertex *)
  attrs : string list;  (** attribute names, in declaration order *)
  has_text : bool;  (** whether the element can carry text content *)
}

type classification =
  | Unique_path of string  (** the single root-to-node path *)
  | Finite_paths of string list  (** all root-to-node paths, > 1 of them *)
  | Infinite_paths

type t

(** {2 Construction} *)

module Builder : sig
  type schema = t

  type b

  val create : unit -> b

  val define : b -> ?attrs:string list -> ?text:bool -> string -> def
  (** Add a vertex. Vertices sharing a tag get distinct relation names
      ([tag], [tag_2], ...). *)

  val add_child : b -> parent:def -> def -> unit
  (** Add a nesting edge. Idempotent. *)

  val finish : b -> root:def -> schema
  (** Seal the graph, compute classifications. Raises [Invalid_argument]
      if some vertex is unreachable from [root]. *)
end

val infer : Ppfx_xml.Doc.t -> t
(** Infer a DTD-style schema from a document: one vertex per distinct tag,
    edges from observed parent–child pairs, attributes and text-presence
    from observed elements. Used for schema-less datasets such as DBLP. *)

(** {2 Queries} *)

val root : t -> def
val defs : t -> def list
(** All vertices, in definition order. *)

val find : t -> string -> def list
(** Vertices with the given tag name. *)

val def_of_relation : t -> string -> def option

val children : t -> def -> def list
val parents : t -> def -> def list

val descendants : t -> def -> def list
(** Vertices strictly reachable below [def] (may include [def] itself when
    the schema is recursive through it). *)

val ancestors : t -> def -> def list

val classification : t -> def -> classification

val root_paths : t -> def -> string list option
(** All root-to-node paths as ["/A/B/C"] strings; [None] when infinite. *)

val matches_doc : t -> Ppfx_xml.Doc.t -> (unit, string) result
(** Validate that every element of the document instantiates a schema
    vertex reachable by its actual path (structure only; content models
    are not checked). *)

val pp_def : Format.formatter -> def -> unit
val pp : Format.formatter -> t -> unit

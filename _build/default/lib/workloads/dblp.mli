(** DBLP-like bibliography documents and the paper's QD1–QD5 query set
    (Section 5, Table 7).

    The generator reproduces the structural features those queries
    exercise: [inproceedings], [article] and [book] entries with authors
    drawn from a shared pool (so the QD5 join between inproceedings and
    book authors is non-empty), years spanning 1985–2005 (QD2's range
    predicate), and recursive [sub]/[sup]/[i] mark-up inside titles —
    including article titles with [sub]-anchored depth-3 chains so that
    QD4's backward path matches. The exact author
    "Harold G. Longbotham" of QD1 is planted on a few entries. *)

val generate : ?seed:int -> entries:int -> unit -> Ppfx_xml.Tree.node
(** [entries] is the number of [inproceedings]; articles and books scale
    along ([entries/3] and [entries/8]). *)

val schema_of : Ppfx_xml.Doc.t -> Ppfx_schema.Graph.t
(** The paper's DBLP dataset ships without an XML Schema: the relational
    mapping uses a DTD-style schema inferred from the document
    ({!Ppfx_schema.Graph.infer}). *)

val queries : (string * string) list
(** QD1–QD5 (name, XPath). *)

val query : string -> string

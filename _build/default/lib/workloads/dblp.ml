module Tree = Ppfx_xml.Tree

let el ?(attrs = []) tag children = Tree.Element { tag; attrs; children }

let txt s = Tree.Text s

let first_names =
  [| "Alice"; "Bruno"; "Chen"; "Dana"; "Elif"; "Farid"; "Grace"; "Hiro"; "Ines"; "Jonas" |]

let last_names =
  [| "Meyer"; "Tanaka"; "Garcia"; "Novak"; "Okafor"; "Silva"; "Kumar"; "Berg"; "Rossi" |]

let title_words =
  [|
    "Efficient"; "Scalable"; "Adaptive"; "Query"; "Processing"; "XML"; "Relational";
    "Storage"; "Indexing"; "Path"; "Evaluation"; "Optimization"; "Databases"; "Systems";
    "Streams"; "Joins"; "Views"; "Integration"; "Schemas"; "Algebra";
  |]

let venues = [| "VLDB"; "SIGMOD"; "ICDE"; "EDBT"; "CIKM"; "WWW" |]

let special_author = "Harold G. Longbotham"

let author_pool rng n =
  Array.init n (fun _ -> Prng.pick rng first_names ^ " " ^ Prng.pick rng last_names)

(* Title mark-up: some titles carry nested sub/sup/i chains. QD4 needs
   article titles with an i two levels under a sub. *)
let rec markup rng depth tag =
  let inner =
    if depth <= 0 then [ txt "x" ]
    else begin
      let next =
        match tag with
        | "sub" -> [| "sup"; "i" |]
        | "sup" -> [| "sub"; "i" |]
        | _ -> [| "sub"; "sup" |]
      in
      if Prng.chance rng 0.6 then [ txt "n"; markup rng (depth - 1) (Prng.pick rng next) ]
      else [ txt "y" ]
    end
  in
  el tag inner

let title rng ~markup_depth ~forced_chain =
  let base = List.init (2 + Prng.int rng 4) (fun _ -> Prng.pick rng title_words) in
  let parts = [ txt (String.concat " " base) ] in
  let parts =
    if forced_chain then
      (* Guarantee a sub > sup > i chain (QD4). *)
      parts @ [ el "sub" [ txt "2"; el "sup" [ txt "3"; el "i" [ txt "4" ] ] ] ]
    else if markup_depth > 0 && Prng.chance rng 0.3 then
      parts @ [ markup rng markup_depth (Prng.pick rng [| "sub"; "sup"; "i" |]) ]
    else parts
  in
  el "title" parts

let entry rng ~tag ~authors ~pool ~year ~forced_chain ~special =
  let author_elems =
    List.init authors (fun k ->
        let name = if special && k = 0 then special_author else Prng.pick rng pool in
        el "author" [ txt name ])
  in
  let venue = Prng.pick rng venues in
  el tag
    (author_elems
    @ [
        title rng ~markup_depth:3 ~forced_chain;
        el "year" [ txt (string_of_int year) ];
      ]
    @ (match tag with
       | "inproceedings" -> [ el "booktitle" [ txt venue ]; el "pages" [ txt "1-12" ] ]
       | "article" -> [ el "journal" [ txt (venue ^ " Journal") ]; el "volume" [ txt (string_of_int (1 + Prng.int rng 30)) ] ]
       | _ -> [ el "publisher" [ txt "ACM Press" ] ]))

let generate ?(seed = 7) ~entries () =
  let rng = Prng.create seed in
  let n = max 3 entries in
  let pool = author_pool rng (max 8 (n / 2)) in
  (* Plant shared authors between books and inproceedings for QD5. *)
  let inproceedings =
    List.init n (fun i ->
        entry rng ~tag:"inproceedings"
          ~authors:(1 + Prng.int rng 3)
          ~pool
          ~year:(1985 + Prng.int rng 21)
          ~forced_chain:false
          ~special:(i mod (max 10 (n / 2)) = 0))
  in
  let articles =
    List.init
      (max 1 (n / 3))
      (fun i ->
        entry rng ~tag:"article"
          ~authors:(1 + Prng.int rng 2)
          ~pool
          ~year:(1985 + Prng.int rng 21)
          ~forced_chain:(i = 0 || Prng.chance rng 0.15)
          ~special:false)
  in
  let books =
    List.init
      (max 1 (n / 8))
      (fun _ ->
        entry rng ~tag:"book" ~authors:(1 + Prng.int rng 2) ~pool
          ~year:(1985 + Prng.int rng 21)
          ~forced_chain:false ~special:false)
  in
  el "dblp" (inproceedings @ articles @ books)

let schema_of doc = Ppfx_schema.Graph.infer doc

let queries =
  [
    "QD1", "//inproceedings/title[preceding-sibling::author = 'Harold G. Longbotham']";
    "QD2", "/dblp/inproceedings[year >= 1994]//sup";
    "QD3", "/dblp/inproceedings/title/sup";
    "QD4", "//i[parent::*/parent::sub/ancestor::article]";
    "QD5", "/dblp/inproceedings[author = /dblp/book/author]/title";
  ]

let query name = List.assoc name queries

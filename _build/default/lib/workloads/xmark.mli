(** XMark-like synthetic auction documents and the XPathMark query set
    (paper Section 5, references [20] and [21]).

    The generator reproduces the XMark vocabulary the paper's 17
    benchmark queries touch: six continent regions with items (featured
    flags, nested description mark-up with recursive
    [parlist]/[listitem]/[text] structure and [keyword]s, mailboxes),
    people (optional address/phone/homepage), open auctions (bidders with
    personrefs, intervals) and closed auctions (annotations). Documents
    are deterministic per seed and sized by [items_per_region].

    Guaranteed features the queries rely on: [item0] exists, has a
    keyword-bearing description and a featured flag; [open_auction0]
    exists with at least three bidders including [person0] and [person1]
    (in that order); some bidder dates equal interval starts (Q-A). *)

val generate : ?seed:int -> items_per_region:int -> unit -> Ppfx_xml.Tree.node
(** Build a document. Total element count is roughly
    [65 * items_per_region]. *)

val schema : unit -> Ppfx_schema.Graph.t
(** The schema graph all generated documents conform to. *)

val queries : (string * string) list
(** The 17 benchmark queries: Q1–Q7, Q9–Q13, Q21–Q24 and Q-A (name,
    XPath). *)

val query : string -> string
(** Lookup by name. Raises [Not_found]. *)

val extension_queries : (string * string) list
(** Queries beyond the paper's benchmark subset, exercising the
    translator extensions: [contains()], [starts-with()],
    [string-length()] and [count()] comparisons (XE1–XE6). *)

val twig_queries : (string * string) list
(** The benchmark queries that fall inside the twig-join subset
    (child/descendant backbones with existence predicates), used by the
    future-work twig comparison (paper Section 7). *)

lib/workloads/dblp.mli: Ppfx_schema Ppfx_xml

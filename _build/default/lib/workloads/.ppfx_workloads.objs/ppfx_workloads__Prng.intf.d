lib/workloads/prng.mli:

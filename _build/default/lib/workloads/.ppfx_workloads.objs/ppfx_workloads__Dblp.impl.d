lib/workloads/dblp.ml: Array List Ppfx_schema Ppfx_xml Prng String

lib/workloads/xmark.mli: Ppfx_schema Ppfx_xml

lib/workloads/xmark.ml: Array List Ppfx_schema Ppfx_xml Printf Prng String

(** Deterministic pseudo-random numbers (splitmix64) for reproducible
    workload generation: the same seed always yields the same document,
    so benchmark numbers and test expectations are stable. *)

type t

val create : int -> t

val int : t -> int -> int
(** [int t bound] — uniform in [0, bound). [bound > 0]. *)

val pick : t -> 'a array -> 'a

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

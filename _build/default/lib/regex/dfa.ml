(* Lazy DFA (subset construction with memoized transitions) over the
   Thompson NFA. Matching through the DFA costs one table lookup per
   input byte once a transition is warm, which is what makes path-filter
   regexes cheap enough to run over the whole Paths relation.

   Anchors: begin-of-line edges are only traversable in the closure taken
   at position 0, so the automaton distinguishes the initial closure from
   later ones; end-of-line edges contribute to a per-state
   [accept_at_eol] flag checked when input is exhausted.

   [reseed] builds the search variant: the start state's closure is
   re-injected before every transition, giving unanchored-substring
   semantics without restarting the scan. *)

type state = {
  id : int;
  nfa_states : int list;  (** sorted *)
  trans : int array;  (** by byte; -1 = not yet computed *)
  accept_now : bool;
  accept_at_eol : bool;
}

type t = {
  nfa : Nfa.t;
  reseed : bool;
  mutable states : state array;  (** grow-doubling *)
  mutable count : int;
  index : (int list, int) Hashtbl.t;
  start_mid : int list;  (** start closure without BOL edges, for reseeding *)
  start_id : int;
}

(* Epsilon-closure over a sorted work list; [at_bol] gates Eps_bol edges.
   Eps_eol edges are never taken here — they only matter for acceptance,
   handled by [eol_accepts]. *)
let closure nfa ~at_bol seed =
  let n = Array.length nfa.Nfa.transitions in
  let mark = Array.make n false in
  let rec visit s =
    if not mark.(s) then begin
      mark.(s) <- true;
      List.iter
        (fun (edge, dst) ->
          match edge with
          | Nfa.Eps -> visit dst
          | Nfa.Eps_bol -> if at_bol then visit dst
          | Nfa.Eps_eol | Nfa.Sym _ -> ())
        nfa.Nfa.transitions.(s)
    end
  in
  List.iter visit seed;
  let out = ref [] in
  for s = n - 1 downto 0 do
    if mark.(s) then out := s :: !out
  done;
  !out

(* Can the accept state be reached from [set] using only epsilon and
   end-of-line edges? *)
let eol_accepts nfa set =
  let n = Array.length nfa.Nfa.transitions in
  let mark = Array.make n false in
  let rec visit s =
    if not mark.(s) then begin
      mark.(s) <- true;
      List.iter
        (fun (edge, dst) ->
          match edge with
          | Nfa.Eps | Nfa.Eps_eol -> visit dst
          | Nfa.Eps_bol | Nfa.Sym _ -> ())
        nfa.Nfa.transitions.(s)
    end
  in
  List.iter visit set;
  mark.(nfa.Nfa.accept)

let intern t nfa_states =
  match Hashtbl.find_opt t.index nfa_states with
  | Some id -> id
  | None ->
    let id = t.count in
    let state =
      {
        id;
        nfa_states;
        trans = Array.make 256 (-1);
        accept_now = List.mem t.nfa.Nfa.accept nfa_states;
        accept_at_eol = eol_accepts t.nfa nfa_states;
      }
    in
    if t.count = Array.length t.states then begin
      let bigger = Array.make (max 16 (2 * t.count)) state in
      Array.blit t.states 0 bigger 0 t.count;
      t.states <- bigger
    end;
    t.states.(t.count) <- state;
    t.count <- t.count + 1;
    Hashtbl.add t.index nfa_states id;
    id

let create nfa ~reseed =
  let start_mid = closure nfa ~at_bol:false [ nfa.Nfa.start ] in
  let t =
    {
      nfa;
      reseed;
      states = [||];
      count = 0;
      index = Hashtbl.create 64;
      start_mid;
      start_id = 0;
    }
  in
  let start_set = closure nfa ~at_bol:true [ nfa.Nfa.start ] in
  let start_set =
    if reseed then List.sort_uniq Int.compare (start_set @ start_mid) else start_set
  in
  let id = intern t start_set in
  { t with start_id = id }

let step t state_id c =
  let state = t.states.(state_id) in
  let cached = state.trans.(Char.code c) in
  if cached >= 0 then cached
  else begin
    let moved = ref [] in
    List.iter
      (fun s ->
        List.iter
          (fun (edge, dst) ->
            match edge with
            | Nfa.Sym pred -> if pred c then moved := dst :: !moved
            | Nfa.Eps | Nfa.Eps_bol | Nfa.Eps_eol -> ())
          t.nfa.Nfa.transitions.(s))
      state.nfa_states;
    let next = closure t.nfa ~at_bol:false !moved in
    let next =
      if t.reseed then List.sort_uniq Int.compare (next @ t.start_mid) else next
    in
    let id = intern t next in
    state.trans.(Char.code c) <- id;
    id
  end

(* Search semantics ([reseed = true]): accept as soon as any prefix of the
   remaining scan completes a match. *)
let search t subject =
  let n = String.length subject in
  let rec go state i =
    if t.states.(state).accept_now then true
    else if i >= n then t.states.(state).accept_at_eol
    else go (step t state subject.[i]) (i + 1)
  in
  go t.start_id 0

(* Whole-subject match ([reseed = false]). *)
let matches t subject =
  let n = String.length subject in
  let rec go state i =
    if i >= n then t.states.(state).accept_at_eol
    else go (step t state subject.[i]) (i + 1)
  in
  go t.start_id 0

(** Recursive-descent parser for POSIX Extended Regular Expressions.

    Grammar (standard ERE):
    {v
      alternation ::= sequence ('|' sequence)*
      sequence    ::= repetition*
      repetition  ::= atom ('*' | '+' | '?' | '{' bounds '}')*
      atom        ::= char | '.' | '[' class ']' | '(' alternation ')'
                    | '^' | '$' | '\' escaped
    v} *)

exception Error of string

let error fmt = Format.kasprintf (fun msg -> raise (Error msg)) fmt

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let eat st c =
  match peek st with
  | Some c' when Char.equal c c' -> advance st
  | Some c' -> error "expected '%c' but found '%c' at offset %d" c c' st.pos
  | None -> error "expected '%c' but found end of pattern" c

let parse_escaped st =
  match peek st with
  | None -> error "dangling backslash at end of pattern"
  | Some c ->
    advance st;
    (* POSIX ERE: a backslash makes the following special character
       literal. We also accept the common escapes for convenience. *)
    (match c with
     | 'n' -> Syntax.Char '\n'
     | 't' -> Syntax.Char '\t'
     | 'r' -> Syntax.Char '\r'
     | c -> Syntax.Char c)

(* Parse the body of a bracket expression, after the opening '['. *)
let parse_class st =
  let negated =
    match peek st with
    | Some '^' -> advance st; true
    | _ -> false
  in
  let items = ref [] in
  (* A ']' immediately after '[' or '[^' is a literal member. *)
  (match peek st with
   | Some ']' -> advance st; items := [ Syntax.Single ']' ]
   | _ -> ());
  let rec loop () =
    match peek st with
    | None -> error "unterminated bracket expression"
    | Some ']' -> advance st
    | Some c ->
      advance st;
      (match peek st with
       | Some '-' when (st.pos + 1 < String.length st.src && st.src.[st.pos + 1] <> ']') ->
         advance st;
         (match peek st with
          | Some hi ->
            advance st;
            if Char.compare c hi > 0 then
              error "invalid range %c-%c in bracket expression" c hi;
            items := Syntax.Range (c, hi) :: !items
          | None -> error "unterminated bracket expression")
       | _ -> items := Syntax.Single c :: !items);
      loop ()
  in
  loop ();
  Syntax.Class (negated, List.rev !items)

let parse_int st =
  let start = st.pos in
  let rec loop () =
    match peek st with
    | Some c when c >= '0' && c <= '9' -> advance st; loop ()
    | _ -> ()
  in
  loop ();
  if st.pos = start then error "expected integer in repetition bounds at offset %d" start;
  int_of_string (String.sub st.src start (st.pos - start))

(* Parse '{m}', '{m,}' or '{m,n}' after the opening '{'. *)
let parse_bounds st =
  let lo = parse_int st in
  let hi =
    match peek st with
    | Some ',' ->
      advance st;
      (match peek st with
       | Some '}' -> None
       | _ -> Some (parse_int st))
    | _ -> Some lo
  in
  eat st '}';
  (match hi with
   | Some hi when hi < lo -> error "repetition bounds {%d,%d} out of order" lo hi
   | _ -> ());
  lo, hi

let rec parse_alternation st =
  let left = parse_sequence st in
  match peek st with
  | Some '|' ->
    advance st;
    Syntax.Alt (left, parse_alternation st)
  | _ -> left

and parse_sequence st =
  let rec loop acc =
    match peek st with
    | None | Some ('|' | ')') -> acc
    | Some _ ->
      let r = parse_repetition st in
      loop (if acc = Syntax.Empty then r else Syntax.Seq (acc, r))
  in
  loop Syntax.Empty

and parse_repetition st =
  let atom = parse_atom st in
  let rec postfix r =
    match peek st with
    | Some '*' -> advance st; postfix (Syntax.Star r)
    | Some '+' -> advance st; postfix (Syntax.Plus r)
    | Some '?' -> advance st; postfix (Syntax.Opt r)
    | Some '{' ->
      advance st;
      let lo, hi = parse_bounds st in
      postfix (Syntax.Repeat (r, lo, hi))
    | _ -> r
  in
  postfix atom

and parse_atom st =
  match peek st with
  | None -> error "expected an atom but found end of pattern"
  | Some c ->
    (match c with
     | '(' ->
       advance st;
       let inner = parse_alternation st in
       eat st ')';
       inner
     | '[' -> advance st; parse_class st
     | '.' -> advance st; Syntax.Any
     | '^' -> advance st; Syntax.Bol
     | '$' -> advance st; Syntax.Eol
     | '\\' -> advance st; parse_escaped st
     | '*' | '+' | '?' -> error "repetition operator '%c' with nothing to repeat" c
     | ')' -> error "unbalanced ')' at offset %d" st.pos
     | c -> advance st; Syntax.Char c)

(** Parse a full ERE pattern. Raises {!Error} on malformed input. *)
let parse src =
  let st = { src; pos = 0 } in
  let r = parse_alternation st in
  if st.pos < String.length src then
    error "unexpected '%c' at offset %d" src.[st.pos] st.pos;
  r

lib/regex/syntax.ml: Char Format List Printf String

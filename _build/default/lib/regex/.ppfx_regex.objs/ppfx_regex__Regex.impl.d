lib/regex/regex.ml: Dfa Nfa Parse Syntax

lib/regex/parse.ml: Char Format List String Syntax

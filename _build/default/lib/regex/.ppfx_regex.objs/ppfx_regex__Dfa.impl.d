lib/regex/dfa.ml: Array Char Hashtbl Int List Nfa String

lib/regex/regex.mli: Syntax

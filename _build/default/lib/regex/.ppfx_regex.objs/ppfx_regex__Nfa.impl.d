lib/regex/nfa.ml: Array Char List String Syntax

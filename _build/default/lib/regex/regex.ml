exception Parse_error = Parse.Error

type t = {
  source : string;
  ast : Syntax.t;
  nfa : Nfa.t;
  mutable search_dfa : Dfa.t option;
  mutable match_dfa : Dfa.t option;
}

let compile source =
  let ast = Parse.parse source in
  { source; ast; nfa = Nfa.build ast; search_dfa = None; match_dfa = None }

let search t subject =
  let dfa =
    match t.search_dfa with
    | Some d -> d
    | None ->
      let d = Dfa.create t.nfa ~reseed:true in
      t.search_dfa <- Some d;
      d
  in
  Dfa.search dfa subject

let matches t subject =
  let dfa =
    match t.match_dfa with
    | Some d -> d
    | None ->
      let d = Dfa.create t.nfa ~reseed:false in
      t.match_dfa <- Some d;
      d
  in
  Dfa.matches dfa subject

let pattern t = t.source

let quote = Syntax.quote

let ast t = t.ast

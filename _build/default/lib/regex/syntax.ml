(** Abstract syntax for POSIX Extended Regular Expressions (ERE).

    This is the pattern language accepted by the [REGEXP_LIKE] function of
    the relational substrate ([Ppfx_minidb]); the translator of the paper
    (Section 4.1, Table 1) emits patterns in exactly this dialect. *)

(** A single bracket-expression item: either a literal character or an
    inclusive character range such as [a-z]. *)
type class_item =
  | Single of char
  | Range of char * char

(** Regular-expression abstract syntax tree. *)
type t =
  | Empty  (** matches the empty string *)
  | Char of char
  | Any  (** [.] — any character *)
  | Class of bool * class_item list
      (** [Class (negated, items)] — a bracket expression [[...]]. *)
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t
  | Repeat of t * int * int option
      (** [Repeat (r, lo, hi)] — bounded repetition [{lo,hi}]; [hi = None]
          means unbounded. *)
  | Bol  (** [^] — anchors at beginning of subject *)
  | Eol  (** [$] — anchors at end of subject *)

let rec equal a b =
  match a, b with
  | Empty, Empty | Any, Any | Bol, Bol | Eol, Eol -> true
  | Char c1, Char c2 -> Char.equal c1 c2
  | Class (n1, i1), Class (n2, i2) -> n1 = n2 && i1 = i2
  | Seq (a1, a2), Seq (b1, b2) | Alt (a1, a2), Alt (b1, b2) ->
    equal a1 b1 && equal a2 b2
  | Star a, Star b | Plus a, Plus b | Opt a, Opt b -> equal a b
  | Repeat (a, l1, h1), Repeat (b, l2, h2) -> equal a b && l1 = l2 && h1 = h2
  | ( ( Empty | Char _ | Any | Class _ | Seq _ | Alt _ | Star _ | Plus _
      | Opt _ | Repeat _ | Bol | Eol )
    , _ ) ->
    false

let metachars = ".[]()*+?{}|^$\\"

let is_meta c = String.contains metachars c

(* Escape [c] so that it denotes itself in a pattern. *)
let escape_char c =
  if is_meta c then Printf.sprintf "\\%c" c else String.make 1 c

(** Escape an arbitrary string so that it matches itself literally. *)
let quote s = String.concat "" (List.map escape_char (List.init (String.length s) (String.get s)))

(* Precedence levels for printing: 0 = alternation, 1 = sequence,
   2 = repetition, 3 = atom. *)
let rec pp_prec prec ppf r =
  let open Format in
  let paren p body =
    if prec > p then fprintf ppf "(%t)" body else body ppf
  in
  match r with
  | Empty ->
    (* '()' so that Empty survives under repetition operators. *)
    pp_print_string ppf "()"
  | Char c -> pp_print_string ppf (escape_char c)
  | Any -> pp_print_char ppf '.'
  | Class (neg, items) ->
    let item ppf = function
      | Single c -> pp_print_char ppf c
      | Range (a, b) -> fprintf ppf "%c-%c" a b
    in
    fprintf ppf "[%s%a]"
      (if neg then "^" else "")
      (pp_print_list ~pp_sep:(fun _ () -> ()) item)
      items
  | Seq (a, b) ->
    paren 1 (fun ppf -> fprintf ppf "%a%a" (pp_prec 1) a (pp_prec 1) b)
  | Alt (a, b) ->
    paren 0 (fun ppf -> fprintf ppf "%a|%a" (pp_prec 0) a (pp_prec 0) b)
  | Star a -> paren 2 (fun ppf -> fprintf ppf "%a*" (pp_prec 3) a)
  | Plus a -> paren 2 (fun ppf -> fprintf ppf "%a+" (pp_prec 3) a)
  | Opt a -> paren 2 (fun ppf -> fprintf ppf "%a?" (pp_prec 3) a)
  | Repeat (a, lo, hi) ->
    let bounds =
      match hi with
      | Some hi when hi = lo -> Printf.sprintf "{%d}" lo
      | Some hi -> Printf.sprintf "{%d,%d}" lo hi
      | None -> Printf.sprintf "{%d,}" lo
    in
    paren 2 (fun ppf -> fprintf ppf "%a%s" (pp_prec 3) a bounds)
  | Bol -> pp_print_char ppf '^'
  | Eol -> pp_print_char ppf '$'

let pp ppf r = pp_prec 0 ppf r

let to_string r = Format.asprintf "%a" pp r

(** Thompson NFA construction and simulation.

    Matching is linear in the subject: the simulation carries a set of live
    states across the input, re-seeding the start state at every position to
    obtain unanchored-search semantics (the behaviour of [REGEXP_LIKE]).
    Anchors ([^] and [$]) are modelled as conditional epsilon edges that can
    only be crossed at the corresponding subject positions. *)

type edge =
  | Eps
  | Eps_bol  (** traversable only at the beginning of the subject *)
  | Eps_eol  (** traversable only at the end of the subject *)
  | Sym of (char -> bool)

type t = {
  transitions : (edge * int) list array;  (** adjacency, indexed by state *)
  start : int;
  accept : int;
}

(* Compilation context: a growable list of states. *)
type builder = { mutable edges : (edge * int) list list; mutable count : int }

let new_state b =
  let s = b.count in
  b.count <- s + 1;
  b.edges <- [] :: b.edges;
  s

(* [edges] is kept reversed; patch after the fact through an array. *)
let build root =
  let b = { edges = []; count = 0 } in
  let arr = ref [||] in
  let add_edge src edge dst =
    !arr.(src) <- (edge, dst) :: !arr.(src)
  in
  (* Pre-allocate generously: each AST node adds at most 2 states, bounded
     repetition expands first. *)
  let rec count_states = function
    | Syntax.Empty | Syntax.Char _ | Syntax.Any | Syntax.Class _
    | Syntax.Bol | Syntax.Eol ->
      2
    | Syntax.Seq (a, b2) | Syntax.Alt (a, b2) -> 2 + count_states a + count_states b2
    | Syntax.Star a | Syntax.Plus a | Syntax.Opt a -> 2 + count_states a
    | Syntax.Repeat (a, lo, hi) ->
      let reps = match hi with None -> lo + 1 | Some hi -> max hi 1 in
      2 + (reps * (2 + count_states a))
  in
  ignore (count_states root);
  let class_pred negated items c =
    let member = function
      | Syntax.Single x -> Char.equal x c
      | Syntax.Range (a, z) -> Char.compare a c <= 0 && Char.compare c z <= 0
    in
    let hit = List.exists member items in
    if negated then not hit else hit
  in
  (* Expand bounded repetition structurally before compiling. *)
  let rec expand r =
    match r with
    | Syntax.Repeat (a, lo, hi) ->
      let a = expand a in
      let rec mandatory n = if n <= 0 then Syntax.Empty else Syntax.Seq (a, mandatory (n - 1)) in
      let tail =
        match hi with
        | None -> Syntax.Star a
        | Some hi ->
          let rec optional n =
            if n <= 0 then Syntax.Empty else Syntax.Opt (Syntax.Seq (a, optional (n - 1)))
          in
          optional (hi - lo)
      in
      Syntax.Seq (mandatory lo, tail)
    | Syntax.Seq (a, b2) -> Syntax.Seq (expand a, expand b2)
    | Syntax.Alt (a, b2) -> Syntax.Alt (expand a, expand b2)
    | Syntax.Star a -> Syntax.Star (expand a)
    | Syntax.Plus a -> Syntax.Plus (expand a)
    | Syntax.Opt a -> Syntax.Opt (expand a)
    | (Syntax.Empty | Syntax.Char _ | Syntax.Any | Syntax.Class _ | Syntax.Bol | Syntax.Eol) as r
      ->
      r
  in
  let root = expand root in
  (* First pass: allocate all states so the array can be sized. Compile by
     returning (entry, exit) state pairs and queuing edges. *)
  let pending : (int * edge * int) list ref = ref [] in
  let queue src edge dst = pending := (src, edge, dst) :: !pending in
  let rec compile r =
    let entry = new_state b and exit_ = new_state b in
    (match r with
     | Syntax.Empty -> queue entry Eps exit_
     | Syntax.Char c -> queue entry (Sym (Char.equal c)) exit_
     | Syntax.Any -> queue entry (Sym (fun _ -> true)) exit_
     | Syntax.Class (neg, items) -> queue entry (Sym (class_pred neg items)) exit_
     | Syntax.Bol -> queue entry Eps_bol exit_
     | Syntax.Eol -> queue entry Eps_eol exit_
     | Syntax.Seq (a, b2) ->
       let ea, xa = compile a in
       let eb, xb = compile b2 in
       queue entry Eps ea;
       queue xa Eps eb;
       queue xb Eps exit_
     | Syntax.Alt (a, b2) ->
       let ea, xa = compile a in
       let eb, xb = compile b2 in
       queue entry Eps ea;
       queue entry Eps eb;
       queue xa Eps exit_;
       queue xb Eps exit_
     | Syntax.Star a ->
       let ea, xa = compile a in
       queue entry Eps ea;
       queue entry Eps exit_;
       queue xa Eps ea;
       queue xa Eps exit_
     | Syntax.Plus a ->
       let ea, xa = compile a in
       queue entry Eps ea;
       queue xa Eps ea;
       queue xa Eps exit_
     | Syntax.Opt a ->
       let ea, xa = compile a in
       queue entry Eps ea;
       queue entry Eps exit_;
       queue xa Eps exit_
     | Syntax.Repeat _ -> assert false (* removed by [expand] *));
    entry, exit_
  in
  let start, accept = compile root in
  arr := Array.make b.count [];
  List.iter (fun (src, edge, dst) -> add_edge src edge dst) !pending;
  { transitions = !arr; start; accept }

(* Position flags used to gate anchor edges. *)
type pos = { at_bol : bool; at_eol : bool }

(* Epsilon-closure of [seed] into boolean set [set], respecting anchors. *)
let closure nfa pos set seed =
  let stack = ref seed in
  let push s =
    if not set.(s) then begin
      set.(s) <- true;
      stack := s :: !stack
    end
  in
  List.iter (fun s -> if not set.(s) then (set.(s) <- true)) seed;
  let rec drain () =
    match !stack with
    | [] -> ()
    | s :: rest ->
      stack := rest;
      List.iter
        (fun (edge, dst) ->
          match edge with
          | Eps -> push dst
          | Eps_bol -> if pos.at_bol then push dst
          | Eps_eol -> if pos.at_eol then push dst
          | Sym _ -> ())
        nfa.transitions.(s);
      drain ()
  in
  drain ()

(** [search nfa subject] tests whether any substring of [subject] matches. *)
let search nfa subject =
  let n = String.length subject in
  let current = Array.make (Array.length nfa.transitions) false in
  let next = Array.make (Array.length nfa.transitions) false in
  let pos_flags i = { at_bol = i = 0; at_eol = i = n } in
  (* Seed the start state (unanchored search) and take closure. *)
  closure nfa (pos_flags 0) current [ nfa.start ];
  if current.(nfa.accept) then true
  else begin
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i < n do
      let c = subject.[!i] in
      Array.fill next 0 (Array.length next) false;
      let moved = ref [] in
      Array.iteri
        (fun s live ->
          if live then
            List.iter
              (fun (edge, dst) ->
                match edge with
                | Sym pred -> if pred c then moved := dst :: !moved
                | Eps | Eps_bol | Eps_eol -> ())
              nfa.transitions.(s))
        current;
      let flags = pos_flags (!i + 1) in
      closure nfa flags next !moved;
      (* Re-seed for unanchored search at the next position. *)
      closure nfa flags next [ nfa.start ];
      if next.(nfa.accept) then found := true;
      Array.blit next 0 current 0 (Array.length next);
      incr i
    done;
    !found
  end

(** [matches nfa subject] tests whether the whole subject matches
    (anchored at both ends). *)
let matches nfa subject =
  let n = String.length subject in
  let current = Array.make (Array.length nfa.transitions) false in
  let next = Array.make (Array.length nfa.transitions) false in
  let pos_flags i = { at_bol = i = 0; at_eol = i = n } in
  closure nfa (pos_flags 0) current [ nfa.start ];
  for i = 0 to n - 1 do
    let c = subject.[i] in
    Array.fill next 0 (Array.length next) false;
    let moved = ref [] in
    Array.iteri
      (fun s live ->
        if live then
          List.iter
            (fun (edge, dst) ->
              match edge with
              | Sym pred -> if pred c then moved := dst :: !moved
              | Eps | Eps_bol | Eps_eol -> ())
            nfa.transitions.(s))
      current;
    closure nfa (pos_flags (i + 1)) next !moved;
    Array.blit next 0 current 0 (Array.length next)
  done;
  current.(nfa.accept)

lib/xpath/eval.mli: Ast Ppfx_xml

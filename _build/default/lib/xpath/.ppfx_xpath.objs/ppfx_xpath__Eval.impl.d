lib/xpath/eval.ml: Array Ast Float Int List Option Ppfx_dewey Ppfx_xml String

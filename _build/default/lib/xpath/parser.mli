(** XPath parser (recursive descent over the abbreviated and unabbreviated
    syntax).

    Supports: absolute and relative location paths, every axis (explicit
    [axis::test] and the abbreviations [@], [.], [..], [//]), the node
    tests [name], [*], [text()], [node()], predicates, path union [|],
    parenthesised expressions, the operators [or and = != < <= > >= + -
    * div mod], unary minus, string literals, numbers, and the functions
    [not()], [count()], [position()], [last()]. *)

exception Error of { position : int; message : string }

val parse : string -> Ast.expr
(** Raises {!Error} on malformed input. *)

val parse_path : string -> Ast.path
(** Like {!parse} but requires the expression to be a plain location path. *)

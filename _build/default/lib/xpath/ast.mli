(** XPath abstract syntax for the subset the paper handles (Section 1):
    all axes, wildcards, path union, nested path expressions, and logical,
    arithmetic and position predicates. *)

type axis =
  | Child
  | Descendant
  | Descendant_or_self
  | Self
  | Parent
  | Ancestor
  | Ancestor_or_self
  | Following
  | Following_sibling
  | Preceding
  | Preceding_sibling
  | Attribute

type node_test =
  | Name of string
  | Wildcard  (** [*] *)
  | Text  (** [text()] *)
  | Any_node  (** [node()] *)

type binop =
  | Or
  | And
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Add
  | Sub
  | Mul
  | Div
  | Mod

type step = {
  axis : axis;
  test : node_test;
  predicates : expr list;
}

and path = {
  absolute : bool;  (** starts at the document root *)
  steps : step list;
}

and expr =
  | Path of path
  | Union of expr * expr
  | Binop of binop * expr * expr
  | Neg of expr
  | Literal of string
  | Number of float
  | Fn_not of expr
  | Fn_count of expr
  | Fn_position
  | Fn_last
  | Fn_contains of expr * expr
  | Fn_starts_with of expr * expr
  | Fn_string_length of expr

val is_forward_axis : axis -> bool
(** Child, Descendant(_or_self), Self, Attribute. Order axes (following,
    preceding and siblings) are neither forward nor backward for PPF
    purposes. *)

val is_backward_axis : axis -> bool
(** Parent, Ancestor(_or_self). *)

val is_order_axis : axis -> bool
(** Following, Following_sibling, Preceding, Preceding_sibling. *)

val axis_name : axis -> string
(** The XPath surface name, e.g. ["descendant-or-self"]. *)

val pp_expr : Format.formatter -> expr -> unit
val pp_path : Format.formatter -> path -> unit
val pp_step : Format.formatter -> step -> unit

val to_string : expr -> string
(** Serialize back to XPath surface syntax (parseable by {!Parser}). *)

val equal_expr : expr -> expr -> bool

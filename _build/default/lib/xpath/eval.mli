(** Reference XPath evaluator: a direct tree-walking implementation over
    {!Ppfx_xml.Doc}, used as the ground-truth oracle every relational
    engine is checked against.

    Semantics follow XPath 1.0 (existential node-set comparisons, string
    values, positional predicates) with two documented storage-model
    alignments shared by every engine in this repository: adjacent text
    runs of an element are merged into a single text node, and ['//step']
    reads as [descendant::step] (see {!Parser}). *)

type item =
  | Element of int  (** element id in the document *)
  | Attr of int * string  (** owning element id, attribute name *)
  | Text_node of int  (** owning element id (merged text runs) *)

type value =
  | Nodes of item list  (** in document order, distinct *)
  | Bool of bool
  | Num of float
  | Str of string

val eval : Ppfx_xml.Doc.t -> Ast.expr -> value
(** Evaluate with the document root as context. *)

val select : Ppfx_xml.Doc.t -> Ast.expr -> item list
(** Like {!eval} but requires a node-set result; raises [Invalid_argument]
    otherwise. *)

val select_elements : Ppfx_xml.Doc.t -> Ast.expr -> int list
(** Element ids of the node-set result, document order. Text nodes map to
    their owning element; attribute results raise [Invalid_argument].
    This is the comparison key used in cross-engine tests. *)

val string_value : Ppfx_xml.Doc.t -> item -> string

val to_str : Ppfx_xml.Doc.t -> value -> string
(** XPath [string()] conversion of any value. *)

val compare_items : item -> item -> int
(** Document order; attributes sort directly after their element, text
    after attributes. *)

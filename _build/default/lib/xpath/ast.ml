type axis =
  | Child
  | Descendant
  | Descendant_or_self
  | Self
  | Parent
  | Ancestor
  | Ancestor_or_self
  | Following
  | Following_sibling
  | Preceding
  | Preceding_sibling
  | Attribute

type node_test =
  | Name of string
  | Wildcard
  | Text
  | Any_node

type binop =
  | Or
  | And
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Add
  | Sub
  | Mul
  | Div
  | Mod

type step = {
  axis : axis;
  test : node_test;
  predicates : expr list;
}

and path = {
  absolute : bool;
  steps : step list;
}

and expr =
  | Path of path
  | Union of expr * expr
  | Binop of binop * expr * expr
  | Neg of expr
  | Literal of string
  | Number of float
  | Fn_not of expr
  | Fn_count of expr
  | Fn_position
  | Fn_last
  | Fn_contains of expr * expr
  | Fn_starts_with of expr * expr
  | Fn_string_length of expr

let is_forward_axis = function
  | Child | Descendant | Descendant_or_self | Self | Attribute -> true
  | Parent | Ancestor | Ancestor_or_self | Following | Following_sibling | Preceding
  | Preceding_sibling ->
    false

let is_backward_axis = function
  | Parent | Ancestor | Ancestor_or_self -> true
  | Child | Descendant | Descendant_or_self | Self | Attribute | Following
  | Following_sibling | Preceding | Preceding_sibling ->
    false

let is_order_axis = function
  | Following | Following_sibling | Preceding | Preceding_sibling -> true
  | Child | Descendant | Descendant_or_self | Self | Attribute | Parent | Ancestor
  | Ancestor_or_self ->
    false

let axis_name = function
  | Child -> "child"
  | Descendant -> "descendant"
  | Descendant_or_self -> "descendant-or-self"
  | Self -> "self"
  | Parent -> "parent"
  | Ancestor -> "ancestor"
  | Ancestor_or_self -> "ancestor-or-self"
  | Following -> "following"
  | Following_sibling -> "following-sibling"
  | Preceding -> "preceding"
  | Preceding_sibling -> "preceding-sibling"
  | Attribute -> "attribute"

let binop_name = function
  | Or -> "or"
  | And -> "and"
  | Eq -> "="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "div"
  | Mod -> "mod"

(* Precedence: or=1, and=2, comparison=3, additive=4, multiplicative=5,
   unary=6, union=7, path=8. *)
let binop_prec = function
  | Or -> 1
  | And -> 2
  | Eq | Ne | Lt | Le | Gt | Ge -> 3
  | Add | Sub -> 4
  | Mul | Div | Mod -> 5

let pp_test ppf = function
  | Name n -> Format.pp_print_string ppf n
  | Wildcard -> Format.pp_print_char ppf '*'
  | Text -> Format.pp_print_string ppf "text()"
  | Any_node -> Format.pp_print_string ppf "node()"

let rec pp_prec prec ppf e =
  let open Format in
  let paren p body = if prec > p then fprintf ppf "(%t)" body else body ppf in
  match e with
  | Path p -> pp_path ppf p
  | Union (a, b) ->
    paren 7 (fun ppf -> fprintf ppf "%a | %a" (pp_prec 7) a (pp_prec 8) b)
  | Binop (op, a, b) ->
    let p = binop_prec op in
    paren p (fun ppf ->
        fprintf ppf "%a %s %a" (pp_prec p) a (binop_name op) (pp_prec (p + 1)) b)
  | Neg a -> paren 6 (fun ppf -> fprintf ppf "-%a" (pp_prec 6) a)
  | Literal s -> fprintf ppf "'%s'" s
  | Number f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      pp_print_string ppf (string_of_int (int_of_float f))
    else fprintf ppf "%g" f
  | Fn_not a -> fprintf ppf "not(%a)" (pp_prec 0) a
  | Fn_count a -> fprintf ppf "count(%a)" (pp_prec 0) a
  | Fn_position -> pp_print_string ppf "position()"
  | Fn_last -> pp_print_string ppf "last()"
  | Fn_contains (a, b) -> fprintf ppf "contains(%a, %a)" (pp_prec 0) a (pp_prec 0) b
  | Fn_starts_with (a, b) ->
    fprintf ppf "starts-with(%a, %a)" (pp_prec 0) a (pp_prec 0) b
  | Fn_string_length a -> fprintf ppf "string-length(%a)" (pp_prec 0) a

and pp_step ppf (s : step) =
  let abbreviated =
    match s.axis, s.test with
    | Child, _ ->
      pp_test ppf s.test;
      true
    | Attribute, Name n ->
      Format.fprintf ppf "@%s" n;
      true
    | Attribute, Wildcard ->
      Format.pp_print_string ppf "@*";
      true
    | Self, Any_node ->
      Format.pp_print_string ppf ".";
      true
    | Parent, Any_node ->
      Format.pp_print_string ppf "..";
      true
    | _ -> false
  in
  if not abbreviated then Format.fprintf ppf "%s::%a" (axis_name s.axis) pp_test s.test;
  List.iter (fun p -> Format.fprintf ppf "[%a]" (pp_prec 0) p) s.predicates

and pp_path ppf (p : path) =
  let open Format in
  if p.absolute then pp_print_char ppf '/';
  pp_print_list
    ~pp_sep:(fun ppf () -> pp_print_char ppf '/')
    pp_step ppf p.steps

let pp_expr ppf e = pp_prec 0 ppf e

let to_string e = Format.asprintf "%a" pp_expr e

let rec equal_expr a b =
  match a, b with
  | Path p1, Path p2 -> equal_path p1 p2
  | Union (a1, a2), Union (b1, b2) -> equal_expr a1 b1 && equal_expr a2 b2
  | Binop (o1, a1, a2), Binop (o2, b1, b2) ->
    o1 = o2 && equal_expr a1 b1 && equal_expr a2 b2
  | Neg a, Neg b | Fn_not a, Fn_not b | Fn_count a, Fn_count b -> equal_expr a b
  | Literal s1, Literal s2 -> String.equal s1 s2
  | Number f1, Number f2 -> Float.equal f1 f2
  | Fn_position, Fn_position | Fn_last, Fn_last -> true
  | Fn_contains (a1, a2), Fn_contains (b1, b2)
  | Fn_starts_with (a1, a2), Fn_starts_with (b1, b2) ->
    equal_expr a1 b1 && equal_expr a2 b2
  | Fn_string_length a, Fn_string_length b -> equal_expr a b
  | ( ( Path _ | Union _ | Binop _ | Neg _ | Literal _ | Number _ | Fn_not _
      | Fn_count _ | Fn_position | Fn_last | Fn_contains _ | Fn_starts_with _
      | Fn_string_length _ )
    , _ ) ->
    false

and equal_path p1 p2 =
  p1.absolute = p2.absolute
  && List.length p1.steps = List.length p2.steps
  && List.for_all2 equal_step p1.steps p2.steps

and equal_step s1 s2 =
  s1.axis = s2.axis && s1.test = s2.test
  && List.length s1.predicates = List.length s2.predicates
  && List.for_all2 equal_expr s1.predicates s2.predicates

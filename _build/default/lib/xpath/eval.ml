module Doc = Ppfx_xml.Doc
module Region = Ppfx_dewey.Region

type item =
  | Element of int
  | Attr of int * string
  | Text_node of int

type value =
  | Nodes of item list
  | Bool of bool
  | Num of float
  | Str of string

(* The virtual document root is [Element 0]: it can be a context item but
   never appears in results (no node test matches it). *)

let owner_id = function Element i -> i | Attr (i, _) -> i | Text_node i -> i

let kind_rank = function Element _ -> 0 | Attr _ -> 1 | Text_node _ -> 2

let compare_items a b =
  match Int.compare (owner_id a) (owner_id b) with
  | 0 ->
    (match Int.compare (kind_rank a) (kind_rank b) with
     | 0 ->
       (match a, b with
        | Attr (_, n1), Attr (_, n2) -> String.compare n1 n2
        | (Element _ | Attr _ | Text_node _), _ -> 0)
     | c -> c)
  | c -> c

let string_value doc = function
  | Element 0 -> (Doc.root doc).Doc.string_value
  | Element i -> (Doc.element doc i).Doc.string_value
  | Attr (i, name) ->
    Option.value ~default:"" (List.assoc_opt name (Doc.element doc i).Doc.attrs)
  | Text_node i -> (Doc.element doc i).Doc.text

(* ------------------------------------------------------------------ *)
(* Axes                                                                *)
(* ------------------------------------------------------------------ *)

(* Candidates of an axis step, in axis order (reverse axes yield reverse
   document order, as position() requires), already filtered by the node
   test. *)
let axis_candidates doc item (axis : Ast.axis) (test : Ast.node_test) : item list =
  let elem i = Doc.element doc i in
  let match_element i =
    match test with
    | Ast.Name n -> String.equal (elem i).Doc.tag n
    | Ast.Wildcard | Ast.Any_node -> true
    | Ast.Text -> false
  in
  let want_text =
    match test with Ast.Text | Ast.Any_node -> true | Ast.Name _ | Ast.Wildcard -> false
  in
  let want_element =
    match test with Ast.Name _ | Ast.Wildcard | Ast.Any_node -> true | Ast.Text -> false
  in
  let element_and_text i =
    let es = if want_element && match_element i then [ Element i ] else [] in
    let ts =
      if want_text && String.length (elem i).Doc.text > 0 then [ Text_node i ] else []
    in
    es @ ts
  in
  let children_of i =
    if i = 0 then
      let root = Doc.root doc in
      if want_element && match_element root.Doc.id then [ Element root.Doc.id ] else []
    else
      let e = elem i in
      let elems =
        List.concat_map
          (fun c -> if want_element && match_element c then [ Element c ] else [])
          e.Doc.children
      in
      let ts = if want_text && String.length e.Doc.text > 0 then [ Text_node i ] else [] in
      elems @ ts
  in
  let descendants_of i ~or_self =
    let base =
      if i = 0 then Array.to_list (Array.map (fun e -> e.Doc.id) (Doc.elements doc))
      else List.map (fun e -> e.Doc.id) (Doc.descendants doc (elem i))
    in
    let base = if or_self && i <> 0 then i :: base else base in
    List.concat_map element_and_text base
  in
  let ancestors_of i ~or_self =
    (* reverse document order: nearest ancestor first *)
    let rec chain j = if j = 0 then [] else j :: chain (elem j).Doc.parent in
    let anc = match chain i with [] -> [] | _self :: rest -> rest in
    let ids = if or_self then i :: anc else anc in
    List.filter_map (fun j -> if j <> 0 && want_element && match_element j then Some (Element j) else None) ids
  in
  match item with
  | Attr (o, _) ->
    (match axis with
     | Ast.Self ->
       (match test with
        | Ast.Any_node -> [ item ]
        | Ast.Name _ | Ast.Wildcard | Ast.Text -> [])
     | Ast.Parent -> if match_element o && want_element then [ Element o ] else []
     | Ast.Ancestor -> ancestors_of o ~or_self:true
     | Ast.Ancestor_or_self -> ancestors_of o ~or_self:true
     | Ast.Child | Ast.Descendant | Ast.Descendant_or_self | Ast.Following
     | Ast.Following_sibling | Ast.Preceding | Ast.Preceding_sibling | Ast.Attribute ->
       [])
  | Text_node o ->
    (match axis with
     | Ast.Self ->
       (match test with
        | Ast.Text | Ast.Any_node -> [ item ]
        | Ast.Name _ | Ast.Wildcard -> [])
     | Ast.Parent -> if match_element o && want_element then [ Element o ] else []
     | Ast.Ancestor -> ancestors_of o ~or_self:true
     | Ast.Ancestor_or_self -> ancestors_of o ~or_self:true
     | Ast.Child | Ast.Descendant | Ast.Descendant_or_self | Ast.Following
     | Ast.Following_sibling | Ast.Preceding | Ast.Preceding_sibling | Ast.Attribute ->
       [])
  | Element i ->
    (match axis with
     | Ast.Child -> children_of i
     | Ast.Descendant -> descendants_of i ~or_self:false
     | Ast.Descendant_or_self -> descendants_of i ~or_self:true
     | Ast.Self ->
       if i = 0 then []
       else begin
         let es = if want_element && match_element i then [ Element i ] else [] in
         es
       end
     | Ast.Parent ->
       if i = 0 then []
       else
         let p = (elem i).Doc.parent in
         if p = 0 then [] else if want_element && match_element p then [ Element p ] else []
     | Ast.Ancestor -> if i = 0 then [] else ancestors_of i ~or_self:false
     | Ast.Ancestor_or_self -> if i = 0 then [] else ancestors_of i ~or_self:true
     | Ast.Following ->
       if i = 0 then []
       else begin
         let me = (elem i).Doc.region in
         Doc.fold
           (fun acc e ->
             if Region.is_following e.Doc.region ~of_:me then
               acc @ element_and_text e.Doc.id
             else acc)
           [] doc
       end
     | Ast.Preceding ->
       if i = 0 then []
       else begin
         let me = (elem i).Doc.region in
         (* reverse document order *)
         Doc.fold
           (fun acc e ->
             if Region.is_preceding e.Doc.region ~of_:me then
               element_and_text e.Doc.id @ acc
             else acc)
           [] doc
       end
     | Ast.Following_sibling ->
       if i = 0 then []
       else begin
         let p = (elem i).Doc.parent in
         if p = 0 then []
         else
           let sibs = (elem p).Doc.children in
           let after = List.filter (fun s -> s > i) sibs in
           List.concat_map
             (fun s -> if want_element && match_element s then [ Element s ] else [])
             after
       end
     | Ast.Preceding_sibling ->
       if i = 0 then []
       else begin
         let p = (elem i).Doc.parent in
         if p = 0 then []
         else
           let sibs = (elem p).Doc.children in
           let before = List.filter (fun s -> s < i) sibs in
           (* reverse document order *)
           List.concat_map
             (fun s -> if want_element && match_element s then [ Element s ] else [])
             (List.rev before)
       end
     | Ast.Attribute ->
       if i = 0 then []
       else
         List.filter_map
           (fun (name, _) ->
             match test with
             | Ast.Name n when String.equal n name -> Some (Attr (i, name))
             | Ast.Wildcard -> Some (Attr (i, name))
             | Ast.Name _ | Ast.Text | Ast.Any_node -> None)
           (elem i).Doc.attrs)

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

type context = { item : item; position : int; size : int }

let to_bool = function
  | Bool b -> b
  | Num f -> (not (Float.is_nan f)) && not (Float.equal f 0.0)
  | Str s -> String.length s > 0
  | Nodes l -> l <> []

let num_of_string s =
  match float_of_string_opt (String.trim s) with Some f -> f | None -> Float.nan

let to_num doc = function
  | Num f -> f
  | Bool true -> 1.0
  | Bool false -> 0.0
  | Str s -> num_of_string s
  | Nodes [] -> Float.nan
  | Nodes (first :: _) -> num_of_string (string_value doc first)

let num_to_str f =
  if Float.is_nan f then "NaN"
  else if Float.is_integer f && Float.abs f < 1e15 then string_of_int (int_of_float f)
  else string_of_float f

let to_str doc = function
  | Str s -> s
  | Num f -> num_to_str f
  | Bool b -> if b then "true" else "false"
  | Nodes [] -> ""
  | Nodes (first :: _) -> string_value doc first

let sort_dedupe items =
  let sorted = List.sort_uniq compare_items items in
  sorted

let rec eval_expr doc ctx (e : Ast.expr) : value =
  match e with
  | Ast.Literal s -> Str s
  | Ast.Number f -> Num f
  | Ast.Fn_position -> Num (float_of_int ctx.position)
  | Ast.Fn_last -> Num (float_of_int ctx.size)
  | Ast.Fn_not a -> Bool (not (to_bool (eval_expr doc ctx a)))
  | Ast.Fn_count a ->
    (match eval_expr doc ctx a with
     | Nodes l -> Num (float_of_int (List.length l))
     | Bool _ | Num _ | Str _ -> invalid_arg "count() requires a node-set")
  | Ast.Fn_contains (a, b) ->
    let sa = to_str doc (eval_expr doc ctx a) and sb = to_str doc (eval_expr doc ctx b) in
    let na = String.length sa and nb = String.length sb in
    let rec go i = i + nb <= na && (String.sub sa i nb = sb || go (i + 1)) in
    Bool (go 0)
  | Ast.Fn_starts_with (a, b) ->
    let sa = to_str doc (eval_expr doc ctx a) and sb = to_str doc (eval_expr doc ctx b) in
    Bool
      (String.length sb <= String.length sa
      && String.equal (String.sub sa 0 (String.length sb)) sb)
  | Ast.Fn_string_length a ->
    Num (float_of_int (String.length (to_str doc (eval_expr doc ctx a))))
  | Ast.Neg a -> Num (-.to_num doc (eval_expr doc ctx a))
  | Ast.Union (a, b) ->
    (match eval_expr doc ctx a, eval_expr doc ctx b with
     | Nodes l1, Nodes l2 -> Nodes (sort_dedupe (l1 @ l2))
     | _ -> invalid_arg "union requires node-sets")
  | Ast.Binop (op, a, b) -> eval_binop doc ctx op a b
  | Ast.Path p -> Nodes (eval_path doc ctx p)

and eval_binop doc ctx op a b =
  match op with
  | Ast.Or ->
    Bool (to_bool (eval_expr doc ctx a) || to_bool (eval_expr doc ctx b))
  | Ast.And ->
    Bool (to_bool (eval_expr doc ctx a) && to_bool (eval_expr doc ctx b))
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
    let x = to_num doc (eval_expr doc ctx a) and y = to_num doc (eval_expr doc ctx b) in
    Num
      (match op with
       | Ast.Add -> x +. y
       | Ast.Sub -> x -. y
       | Ast.Mul -> x *. y
       | Ast.Div -> x /. y
       | Ast.Mod -> Float.rem x y
       | _ -> assert false)
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
    Bool (compare_values doc ctx op (eval_expr doc ctx a) (eval_expr doc ctx b))

(* XPath 1.0 comparison semantics: existential over node-sets. *)
and compare_values doc _ctx op va vb =
  let is_equality = match op with Ast.Eq | Ast.Ne -> true | _ -> false in
  let test_num x y =
    match op with
    | Ast.Eq -> Float.equal x y
    | Ast.Ne -> not (Float.equal x y)
    | Ast.Lt -> x < y
    | Ast.Le -> x <= y
    | Ast.Gt -> x > y
    | Ast.Ge -> x >= y
    | _ -> assert false
  in
  let test_str x y =
    if is_equality then
      match op with
      | Ast.Eq -> String.equal x y
      | Ast.Ne -> not (String.equal x y)
      | _ -> assert false
    else test_num (num_of_string x) (num_of_string y)
  in
  match va, vb with
  | Nodes l1, Nodes l2 ->
    List.exists
      (fun n1 ->
        let s1 = string_value doc n1 in
        List.exists (fun n2 -> test_str s1 (string_value doc n2)) l2)
      l1
  | Nodes l, Num f -> List.exists (fun n -> test_num (num_of_string (string_value doc n)) f) l
  | Num f, Nodes l -> List.exists (fun n -> test_num f (num_of_string (string_value doc n))) l
  | Nodes l, Str s -> List.exists (fun n -> test_str (string_value doc n) s) l
  | Str s, Nodes l -> List.exists (fun n -> test_str s (string_value doc n)) l
  | Nodes l, Bool b -> test_num (if l <> [] then 1.0 else 0.0) (if b then 1.0 else 0.0)
  | Bool b, Nodes l -> test_num (if b then 1.0 else 0.0) (if l <> [] then 1.0 else 0.0)
  | (Bool _ as x), y | y, (Bool _ as x) when is_equality ->
    test_num (if to_bool x then 1.0 else 0.0) (if to_bool y then 1.0 else 0.0)
  | x, y ->
    if is_equality then
      match x, y with
      | Str s1, Str s2 -> test_str s1 s2
      | _ -> test_num (to_num doc x) (to_num doc y)
    else test_num (to_num doc x) (to_num doc y)

and eval_path doc ctx (p : Ast.path) : item list =
  let start = if p.Ast.absolute then [ Element 0 ] else [ ctx.item ] in
  List.fold_left (fun current step -> eval_step doc current step) start p.Ast.steps

and eval_step doc current (step : Ast.step) : item list =
  let per_context item =
    let candidates = axis_candidates doc item step.Ast.axis step.Ast.test in
    List.fold_left
      (fun cands pred ->
        let size = List.length cands in
        List.filteri
          (fun i cand ->
            let ctx = { item = cand; position = i + 1; size } in
            match eval_expr doc ctx pred with
            | Num f -> Float.equal f (float_of_int ctx.position)
            | v -> to_bool v)
          cands)
      candidates step.Ast.predicates
  in
  sort_dedupe (List.concat_map per_context current)

let eval doc e =
  let ctx = { item = Element 0; position = 1; size = 1 } in
  eval_expr doc ctx e

let select doc e =
  match eval doc e with
  | Nodes l -> l
  | Bool _ | Num _ | Str _ -> invalid_arg "Eval.select: expression is not a node-set"

let select_elements doc e =
  List.map
    (function
      | Element i -> i
      | Text_node i -> i
      | Attr _ -> invalid_arg "Eval.select_elements: attribute result")
    (select doc e)
  |> List.sort_uniq Int.compare

(* Hand-rolled recursive-descent parser. The classic XPath lexical
   ambiguities ('*' as wildcard vs. multiplication, 'and'/'or'/'div'/'mod'
   as names vs. operators) are resolved by parse position, as the spec
   prescribes: operator readings are only attempted where an operand has
   already been parsed.

   One deliberate deviation from strict XPath 1.0: '//step' is desugared
   to 'descendant::step' rather than 'descendant-or-self::node()/child::
   step'. The two differ only for positional predicates directly on the
   abbreviated step ('//B[1]'); the reference evaluator and every
   translator in this repository share the descendant-axis reading, and no
   benchmark query depends on the distinction. *)

exception Error of { position : int; message : string }

type state = { src : string; mutable pos : int }

let fail st fmt =
  Format.kasprintf (fun message -> raise (Error { position = st.pos; message })) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek_at st k =
  if st.pos + k < String.length st.src then Some st.src.[st.pos + k] else None

let advance st = st.pos <- st.pos + 1

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space st =
  let rec loop () =
    match peek st with
    | Some c when is_space c -> advance st; loop ()
    | Some _ | None -> ()
  in
  loop ()

let looking_at st prefix =
  skip_space st;
  let n = String.length prefix in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = prefix

let eat st prefix =
  if looking_at st prefix then st.pos <- st.pos + String.length prefix
  else fail st "expected %S" prefix

let try_eat st prefix =
  if looking_at st prefix then begin
    st.pos <- st.pos + String.length prefix;
    true
  end
  else false

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  skip_space st;
  let start = st.pos in
  (match peek st with
   | Some c when is_name_start c -> advance st
   | Some c -> fail st "expected a name, found %C" c
   | None -> fail st "expected a name, found end of input");
  let rec loop () =
    match peek st with
    | Some c when is_name_char c -> advance st; loop ()
    | Some _ | None -> ()
  in
  loop ();
  String.sub st.src start (st.pos - start)

(* A word operator like 'and' must be a complete name. *)
let try_eat_word st word =
  skip_space st;
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
    && (match peek_at st n with
        | Some c -> not (is_name_char c)
        | None -> true)
  then begin
    st.pos <- st.pos + n;
    true
  end
  else false

let axis_of_name st = function
  | "child" -> Ast.Child
  | "descendant" -> Ast.Descendant
  | "descendant-or-self" -> Ast.Descendant_or_self
  | "self" -> Ast.Self
  | "parent" -> Ast.Parent
  | "ancestor" -> Ast.Ancestor
  | "ancestor-or-self" -> Ast.Ancestor_or_self
  | "following" -> Ast.Following
  | "following-sibling" -> Ast.Following_sibling
  | "preceding" -> Ast.Preceding
  | "preceding-sibling" -> Ast.Preceding_sibling
  | "attribute" -> Ast.Attribute
  | name -> fail st "unknown axis %s" name

let parse_number st =
  skip_space st;
  let start = st.pos in
  let rec digits () =
    match peek st with
    | Some c when c >= '0' && c <= '9' -> advance st; digits ()
    | Some _ | None -> ()
  in
  digits ();
  if peek st = Some '.' && (match peek_at st 1 with Some c -> c >= '0' && c <= '9' | None -> false)
  then begin
    advance st;
    digits ()
  end;
  if st.pos = start then fail st "expected a number";
  float_of_string (String.sub st.src start (st.pos - start))

let parse_literal st =
  skip_space st;
  let quote =
    match peek st with
    | Some (('\'' | '"') as q) -> advance st; q
    | Some c -> fail st "expected a string literal, found %C" c
    | None -> fail st "expected a string literal, found end of input"
  in
  let start = st.pos in
  let rec loop () =
    match peek st with
    | Some c when Char.equal c quote ->
      let s = String.sub st.src start (st.pos - start) in
      advance st;
      s
    | Some _ -> advance st; loop ()
    | None -> fail st "unterminated string literal"
  in
  loop ()

let rec parse_expr st = parse_or st

(* 'or', 'and' and '|' are left-associative (XPath 1.0 section 3.5). *)
and parse_or st =
  let rec loop left =
    if try_eat_word st "or" then loop (Ast.Binop (Ast.Or, left, parse_and st)) else left
  in
  loop (parse_and st)

and parse_and st =
  let rec loop left =
    if try_eat_word st "and" then loop (Ast.Binop (Ast.And, left, parse_cmp st)) else left
  in
  loop (parse_cmp st)

and parse_cmp st =
  let left = parse_additive st in
  let rec loop left =
    skip_space st;
    let op =
      if try_eat st "!=" then Some Ast.Ne
      else if try_eat st "<=" then Some Ast.Le
      else if try_eat st ">=" then Some Ast.Ge
      else if try_eat st "=" then Some Ast.Eq
      else if try_eat st "<" then Some Ast.Lt
      else if try_eat st ">" then Some Ast.Gt
      else None
    in
    match op with
    | None -> left
    | Some op -> loop (Ast.Binop (op, left, parse_additive st))
  in
  loop left

and parse_additive st =
  let left = parse_multiplicative st in
  let rec loop left =
    skip_space st;
    if try_eat st "+" then loop (Ast.Binop (Ast.Add, left, parse_multiplicative st))
    else if
      (* '-' must not swallow the start of a following name ('x - y' vs the
         name 'x-y'): the lexer has already consumed the full name, so a
         standalone '-' here is always the operator. *)
      try_eat st "-"
    then loop (Ast.Binop (Ast.Sub, left, parse_multiplicative st))
    else left
  in
  loop left

and parse_multiplicative st =
  let left = parse_unary st in
  let rec loop left =
    skip_space st;
    if try_eat st "*" then loop (Ast.Binop (Ast.Mul, left, parse_unary st))
    else if try_eat_word st "div" then loop (Ast.Binop (Ast.Div, left, parse_unary st))
    else if try_eat_word st "mod" then loop (Ast.Binop (Ast.Mod, left, parse_unary st))
    else left
  in
  loop left

and parse_unary st =
  skip_space st;
  if try_eat st "-" then Ast.Neg (parse_unary st) else parse_union st

and parse_union st =
  let rec loop left =
    if looking_at st "|" && not (looking_at st "||") then begin
      eat st "|";
      loop (Ast.Union (left, parse_path_expr st))
    end
    else left
  in
  loop (parse_path_expr st)

and parse_path_expr st =
  skip_space st;
  match peek st with
  | Some ('\'' | '"') -> Ast.Literal (parse_literal st)
  | Some c when c >= '0' && c <= '9' -> Ast.Number (parse_number st)
  | Some '(' ->
    advance st;
    let e = parse_expr st in
    skip_space st;
    eat st ")";
    (* A parenthesised expression can be followed by further steps only in
       full XPath 2.0; the paper's subset does not need it. *)
    e
  | Some _ ->
    (* Function call or location path. A word is a function call only when
       immediately followed by '(' — otherwise it starts a step (so an
       element named 'not' still parses). *)
    let function_word word =
      skip_space st;
      let n = String.length word in
      if
        st.pos + n <= String.length st.src
        && String.sub st.src st.pos n = word
        && (let rest = { st with pos = st.pos + n } in
            (match peek rest with
             | Some c when is_name_char c -> false
             | Some _ | None -> true)
            && looking_at rest "(")
      then begin
        st.pos <- st.pos + n;
        eat st "(";
        true
      end
      else false
    in
    let two_args () =
      let a = parse_expr st in
      skip_space st;
      eat st ",";
      let b = parse_expr st in
      skip_space st;
      eat st ")";
      a, b
    in
    if function_word "not" then begin
      let e = parse_expr st in
      skip_space st;
      eat st ")";
      Ast.Fn_not e
    end
    else if function_word "count" then begin
      let e = parse_expr st in
      skip_space st;
      eat st ")";
      Ast.Fn_count e
    end
    else if function_word "position" then begin
      skip_space st;
      eat st ")";
      Ast.Fn_position
    end
    else if function_word "last" then begin
      skip_space st;
      eat st ")";
      Ast.Fn_last
    end
    else if function_word "contains" then begin
      let a, b = two_args () in
      Ast.Fn_contains (a, b)
    end
    else if function_word "starts-with" then begin
      let a, b = two_args () in
      Ast.Fn_starts_with (a, b)
    end
    else if function_word "string-length" then begin
      let a = parse_expr st in
      skip_space st;
      eat st ")";
      Ast.Fn_string_length a
    end
    else Ast.Path (parse_location_path st)
  | None -> fail st "expected an expression, found end of input"

and parse_location_path st =
  skip_space st;
  if looking_at st "//" then begin
    eat st "//";
    let first = parse_step st ~implicit_descendant:true in
    let steps = parse_more_steps st [ first ] in
    { Ast.absolute = true; steps }
  end
  else if looking_at st "/" then begin
    eat st "/";
    skip_space st;
    (* A bare '/' (document root) is valid XPath; the paper's subset always
       has at least one step. *)
    let first = parse_step st ~implicit_descendant:false in
    let steps = parse_more_steps st [ first ] in
    { Ast.absolute = true; steps }
  end
  else begin
    let first = parse_step st ~implicit_descendant:false in
    let steps = parse_more_steps st [ first ] in
    { Ast.absolute = false; steps }
  end

and parse_more_steps st acc =
  if looking_at st "//" then begin
    eat st "//";
    let s = parse_step st ~implicit_descendant:true in
    parse_more_steps st (s :: acc)
  end
  else if looking_at st "/" then begin
    eat st "/";
    let s = parse_step st ~implicit_descendant:false in
    parse_more_steps st (s :: acc)
  end
  else List.rev acc

(* [implicit_descendant] is set when the step was introduced by '//'. *)
and parse_step st ~implicit_descendant =
  skip_space st;
  let make axis test =
    let axis =
      if implicit_descendant then
        match axis with
        | Ast.Child -> Ast.Descendant
        | Ast.Attribute | Ast.Descendant | Ast.Descendant_or_self | Ast.Self
        | Ast.Parent | Ast.Ancestor | Ast.Ancestor_or_self | Ast.Following
        | Ast.Following_sibling | Ast.Preceding | Ast.Preceding_sibling ->
          fail st "'//' abbreviation must be followed by a child step in this subset"
      else axis
    in
    let predicates = parse_predicates st in
    { Ast.axis; test; predicates }
  in
  match peek st with
  | Some '.' when peek_at st 1 = Some '.' ->
    advance st;
    advance st;
    make Ast.Parent Ast.Any_node
  | Some '.' ->
    advance st;
    make Ast.Self Ast.Any_node
  | Some '@' ->
    advance st;
    skip_space st;
    if try_eat st "*" then make Ast.Attribute Ast.Wildcard
    else make Ast.Attribute (Ast.Name (parse_name st))
  | Some '*' ->
    advance st;
    make Ast.Child Ast.Wildcard
  | Some c when is_name_start c ->
    let name = parse_name st in
    if looking_at st "::" then begin
      eat st "::";
      let axis = axis_of_name st name in
      skip_space st;
      if try_eat st "*" then make axis Ast.Wildcard
      else begin
        let test_name = parse_name st in
        if looking_at st "(" && (String.equal test_name "text" || String.equal test_name "node")
        then begin
          eat st "(";
          skip_space st;
          eat st ")";
          make axis (if String.equal test_name "text" then Ast.Text else Ast.Any_node)
        end
        else make axis (Ast.Name test_name)
      end
    end
    else if
      looking_at st "(" && (String.equal name "text" || String.equal name "node")
    then begin
      eat st "(";
      skip_space st;
      eat st ")";
      make Ast.Child (if String.equal name "text" then Ast.Text else Ast.Any_node)
    end
    else make Ast.Child (Ast.Name name)
  | Some c -> fail st "expected a step, found %C" c
  | None -> fail st "expected a step, found end of input"

and parse_predicates st =
  if looking_at st "[" then begin
    eat st "[";
    let e = parse_expr st in
    skip_space st;
    eat st "]";
    e :: parse_predicates st
  end
  else []

let parse src =
  let st = { src; pos = 0 } in
  let e = parse_expr st in
  skip_space st;
  if st.pos < String.length src then fail st "unexpected trailing input";
  e

let parse_path src =
  let st = { src; pos = 0 } in
  match parse src with
  | Ast.Path p -> p
  | _ -> fail { st with pos = 0 } "expected a plain location path"

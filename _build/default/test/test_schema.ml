(* Tests for the XML Schema graph: construction, U-P/F-P/I-P marking
   (paper Section 4.5, Figure 2), path enumeration, inference, and
   document validation. *)

module Graph = Ppfx_schema.Graph
module Doc = Ppfx_xml.Doc
module Parser = Ppfx_xml.Parser

(* The paper's Figure 1(a)/Figure 2 schema:
   A -> B; B -> C, G; C -> D, E; E -> F; G -> G (recursive). *)
let fig1_schema () =
  let b = Graph.Builder.create () in
  let a = Graph.Builder.define b ~attrs:[ "x" ] "A" in
  let bb = Graph.Builder.define b "B" in
  let c = Graph.Builder.define b "C" in
  let d = Graph.Builder.define b ~text:true "D" in
  let e = Graph.Builder.define b "E" in
  let f = Graph.Builder.define b ~text:true "F" in
  let g = Graph.Builder.define b "G" in
  Graph.Builder.add_child b ~parent:a bb;
  Graph.Builder.add_child b ~parent:bb c;
  Graph.Builder.add_child b ~parent:bb g;
  Graph.Builder.add_child b ~parent:c d;
  Graph.Builder.add_child b ~parent:c e;
  Graph.Builder.add_child b ~parent:e f;
  Graph.Builder.add_child b ~parent:g g;
  Graph.Builder.finish b ~root:a

(* A DAG schema where one definition is shared by two parents, giving it
   two finite root paths. *)
let dag_schema () =
  let b = Graph.Builder.create () in
  let r = Graph.Builder.define b "r" in
  let x = Graph.Builder.define b "x" in
  let y = Graph.Builder.define b "y" in
  let shared = Graph.Builder.define b "item" in
  Graph.Builder.add_child b ~parent:r x;
  Graph.Builder.add_child b ~parent:r y;
  Graph.Builder.add_child b ~parent:x shared;
  Graph.Builder.add_child b ~parent:y shared;
  Graph.Builder.finish b ~root:r

let find1 schema name =
  match Graph.find schema name with
  | [ d ] -> d
  | l -> Alcotest.failf "expected one def for %s, got %d" name (List.length l)

let classification_tests =
  [
    ( "U-P for unique paths (fig 2)",
      fun () ->
        let s = fig1_schema () in
        List.iter
          (fun (name, expected_path) ->
            match Graph.classification s (find1 s name) with
            | Graph.Unique_path p -> Alcotest.(check string) name expected_path p
            | Graph.Finite_paths _ -> Alcotest.failf "%s classified F-P" name
            | Graph.Infinite_paths -> Alcotest.failf "%s classified I-P" name)
          [
            "A", "/A"; "B", "/A/B"; "C", "/A/B/C"; "D", "/A/B/C/D"; "E", "/A/B/C/E";
            "F", "/A/B/C/E/F";
          ] );
    ( "I-P for recursive G (fig 2)",
      fun () ->
        let s = fig1_schema () in
        match Graph.classification s (find1 s "G") with
        | Graph.Infinite_paths -> ()
        | Graph.Unique_path _ | Graph.Finite_paths _ ->
          Alcotest.fail "G should be I-P" );
    ( "F-P for shared definition",
      fun () ->
        let s = dag_schema () in
        match Graph.classification s (find1 s "item") with
        | Graph.Finite_paths ps ->
          Alcotest.(check (list string)) "paths" [ "/r/x/item"; "/r/y/item" ]
            (List.sort compare ps)
        | Graph.Unique_path _ | Graph.Infinite_paths ->
          Alcotest.fail "item should be F-P" );
    ( "root_paths for I-P is None",
      fun () ->
        let s = fig1_schema () in
        Alcotest.(check bool) "None" true (Graph.root_paths s (find1 s "G") = None) );
  ]

let navigation_tests =
  [
    ( "children and parents",
      fun () ->
        let s = fig1_schema () in
        Alcotest.(check (list string)) "children of B" [ "C"; "G" ]
          (List.map (fun d -> d.Graph.name) (Graph.children s (find1 s "B")));
        Alcotest.(check (list string)) "parents of G" [ "B"; "G" ]
          (List.sort compare
             (List.map (fun d -> d.Graph.name) (Graph.parents s (find1 s "G")))) );
    ( "descendants follow cycles without looping",
      fun () ->
        let s = fig1_schema () in
        let below_b =
          List.sort compare (List.map (fun d -> d.Graph.name) (Graph.descendants s (find1 s "B")))
        in
        Alcotest.(check (list string)) "descendants of B" [ "C"; "D"; "E"; "F"; "G" ]
          below_b;
        (* G reaches itself through its self-loop. *)
        let below_g = List.map (fun d -> d.Graph.name) (Graph.descendants s (find1 s "G")) in
        Alcotest.(check (list string)) "descendants of G" [ "G" ] below_g );
    ( "ancestors",
      fun () ->
        let s = fig1_schema () in
        let above_f =
          List.sort compare (List.map (fun d -> d.Graph.name) (Graph.ancestors s (find1 s "F")))
        in
        Alcotest.(check (list string)) "ancestors of F" [ "A"; "B"; "C"; "E" ] above_f );
    ( "relation names disambiguate duplicate tags",
      fun () ->
        let b = Graph.Builder.create () in
        let r = Graph.Builder.define b "r" in
        let t1 = Graph.Builder.define b "t" in
        let mid = Graph.Builder.define b "mid" in
        let t2 = Graph.Builder.define b "t" in
        Graph.Builder.add_child b ~parent:r t1;
        Graph.Builder.add_child b ~parent:r mid;
        Graph.Builder.add_child b ~parent:mid t2;
        let s = Graph.Builder.finish b ~root:r in
        let rels = List.sort compare (List.map (fun d -> d.Graph.relation) (Graph.find s "t")) in
        Alcotest.(check (list string)) "relations" [ "t"; "t_2" ] rels );
    ( "ambiguous sibling tags rejected",
      fun () ->
        let b = Graph.Builder.create () in
        let r = Graph.Builder.define b "r" in
        let t1 = Graph.Builder.define b "t" in
        let t2 = Graph.Builder.define b "t" in
        Graph.Builder.add_child b ~parent:r t1;
        Graph.Builder.add_child b ~parent:r t2;
        (match Graph.Builder.finish b ~root:r with
         | _ -> Alcotest.fail "expected Invalid_argument"
         | exception Invalid_argument _ -> ()) );
    ( "unreachable vertex rejected",
      fun () ->
        let b = Graph.Builder.create () in
        let r = Graph.Builder.define b "r" in
        let _orphan = Graph.Builder.define b "orphan" in
        (match Graph.Builder.finish b ~root:r with
         | _ -> Alcotest.fail "expected Invalid_argument"
         | exception Invalid_argument _ -> ()) );
  ]

let fig1_doc () =
  Doc.of_tree
    (Parser.parse
       "<A><B><C><D/></C><C><E><F>1</F><F>2</F></E></C><G/></B><B><G><G/></G></B></A>")

let validation_tests =
  [
    ( "figure 1 document validates",
      fun () ->
        let s = fig1_schema () in
        match Graph.matches_doc s (fig1_doc ()) with
        | Ok () -> ()
        | Error msg -> Alcotest.fail msg );
    ( "wrong nesting rejected",
      fun () ->
        let s = fig1_schema () in
        let bad = Doc.of_tree (Parser.parse "<A><C/></A>") in
        match Graph.matches_doc s bad with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "expected validation failure" );
    ( "wrong root rejected",
      fun () ->
        let s = fig1_schema () in
        let bad = Doc.of_tree (Parser.parse "<B/>") in
        match Graph.matches_doc s bad with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "expected validation failure" );
  ]

let inference_tests =
  [
    ( "inferred schema validates its document",
      fun () ->
        let doc = fig1_doc () in
        let s = Graph.infer doc in
        match Graph.matches_doc s doc with
        | Ok () -> ()
        | Error msg -> Alcotest.fail msg );
    ( "inference detects recursion",
      fun () ->
        let doc = fig1_doc () in
        let s = Graph.infer doc in
        match Graph.classification s (find1 s "G") with
        | Graph.Infinite_paths -> ()
        | Graph.Unique_path _ | Graph.Finite_paths _ ->
          Alcotest.fail "inferred G should be I-P (observed G under G)" );
    ( "inference collects attributes and text",
      fun () ->
        let doc =
          Doc.of_tree (Parser.parse "<r><e a='1'>text</e><e b='2'/></r>")
        in
        let s = Graph.infer doc in
        let e = find1 s "e" in
        Alcotest.(check (list string)) "attrs" [ "a"; "b" ] (List.sort compare e.Graph.attrs);
        Alcotest.(check bool) "text" true e.Graph.has_text );
  ]

(* Property: on random documents, the inferred schema always validates the
   document it came from, and every element's path is consistent with the
   classification of its vertex. *)
let gen_doc =
  let open QCheck.Gen in
  let tag = oneofl [ "a"; "b"; "c" ] in
  let rec gen n =
    map2
      (fun t children -> Ppfx_xml.Tree.Element { tag = t; attrs = []; children })
      tag
      (if n <= 0 then return [] else list_size (int_bound 3) (gen (n / 2)))
  in
  map (fun t -> Doc.of_tree t) (gen 4)

(* Rebuild a tree for printing counter-examples. *)
let tree_of doc =
  let rec build id =
    let e = Doc.element doc id in
    Ppfx_xml.Tree.Element
      { tag = e.Doc.tag; attrs = e.Doc.attrs; children = List.map build e.Doc.children }
  in
  build 1

let prop_infer_validates =
  QCheck.Test.make ~count:300 ~name:"inferred schema validates source document"
    (QCheck.make ~print:(fun d -> Ppfx_xml.Printer.to_string (tree_of d)) gen_doc)
    (fun doc -> Graph.matches_doc (Graph.infer doc) doc = Ok ())

let prop_paths_match_classification =
  QCheck.Test.make ~count:300 ~name:"document paths appear in vertex classifications"
    (QCheck.make ~print:(fun d -> Ppfx_xml.Printer.to_string (tree_of d)) gen_doc)
    (fun doc ->
      let s = Graph.infer doc in
      Doc.fold
        (fun ok e ->
          ok
          &&
          match Graph.find s e.Doc.tag with
          | [ def ] ->
            (match Graph.root_paths s def with
             | None -> true (* I-P: any path allowed *)
             | Some paths -> List.mem e.Doc.path paths)
          | _ -> false)
        true doc)

(* ------------------------------------------------------------------ *)
(* XSD parser                                                          *)
(* ------------------------------------------------------------------ *)

module Xsd = Ppfx_schema.Xsd

(* The paper's Figure 1 schema expressed as an XSD, with the recursive G
   definition via a global element reference. *)
let fig1_xsd =
  {xml|<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="A">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="B">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="C">
                <xs:complexType>
                  <xs:choice>
                    <xs:element name="D" type="xs:string"/>
                    <xs:element name="E">
                      <xs:complexType>
                        <xs:sequence>
                          <xs:element name="F" type="xs:integer" maxOccurs="unbounded"/>
                        </xs:sequence>
                      </xs:complexType>
                    </xs:element>
                  </xs:choice>
                </xs:complexType>
              </xs:element>
              <xs:element ref="G"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
      <xs:attribute name="x"/>
    </xs:complexType>
  </xs:element>
  <xs:element name="G">
    <xs:complexType>
      <xs:sequence>
        <xs:element ref="G" minOccurs="0"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>|xml}

(* A catalogue where two elements share one global complex type. *)
let shared_type_xsd =
  {xml|<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:complexType name="personType">
    <xs:sequence>
      <xs:element name="name" type="xs:string"/>
      <xs:element name="email" type="xs:string"/>
    </xs:sequence>
    <xs:attribute name="id"/>
  </xs:complexType>
  <xs:element name="org">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="employee" type="personType" maxOccurs="unbounded"/>
        <xs:element name="group">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="employee" type="personType" maxOccurs="unbounded"/>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>|xml}

let xsd_tests =
  [
    ( "figure 1 schema parses with the right marking",
      fun () ->
        let s = Xsd.parse fig1_xsd in
        Alcotest.(check string) "root" "A" (Graph.root s).Graph.name;
        (match Graph.classification s (find1 s "D") with
         | Graph.Unique_path p -> Alcotest.(check string) "D path" "/A/B/C/D" p
         | _ -> Alcotest.fail "D should be U-P");
        (match Graph.classification s (find1 s "G") with
         | Graph.Infinite_paths -> ()
         | _ -> Alcotest.fail "G should be I-P");
        Alcotest.(check (list string)) "A attrs" [ "x" ] (find1 s "A").Graph.attrs;
        Alcotest.(check bool) "D has text" true (find1 s "D").Graph.has_text );
    ( "figure 1 XSD validates the figure 1 document",
      fun () ->
        let s = Xsd.parse fig1_xsd in
        match Graph.matches_doc s (fig1_doc ()) with
        | Ok () -> ()
        | Error m -> Alcotest.fail m );
    ( "shared global complex type becomes one vertex",
      fun () ->
        let s = Xsd.parse shared_type_xsd in
        (* Both employee declarations have the same (name, type): one
           vertex, two parents, hence F-P with two root paths. *)
        (match Graph.find s "employee" with
         | [ emp ] ->
           (match Graph.classification s emp with
            | Graph.Finite_paths ps ->
              Alcotest.(check (list string)) "paths"
                [ "/org/employee"; "/org/group/employee" ]
                (List.sort compare ps)
            | _ -> Alcotest.fail "employee should be F-P")
         | l -> Alcotest.failf "expected one employee vertex, got %d" (List.length l));
        Alcotest.(check int) "one name vertex" 1 (List.length (Graph.find s "name")) );
    ( "root selection",
      fun () ->
        let s = Xsd.parse ~root:"G" fig1_xsd in
        Alcotest.(check string) "root" "G" (Graph.root s).Graph.name );
    ( "errors",
      fun () ->
        let expect_error src =
          match Xsd.parse src with
          | _ -> Alcotest.fail "expected Xsd.Error"
          | exception Xsd.Error _ -> ()
        in
        expect_error "<not-a-schema/>";
        expect_error "<xs:schema xmlns:xs='x'/>";
        expect_error
          "<xs:schema xmlns:xs='x'><xs:element name='a'><xs:complexType><xs:element            ref='missing'/></xs:complexType></xs:element></xs:schema>";
        expect_error
          "<xs:schema xmlns:xs='x'><xs:element name='a' type='nosuch'/></xs:schema>" );
    ( "end to end: XSD -> shred -> translate -> run",
      fun () ->
        let s = Xsd.parse fig1_xsd in
        let doc = fig1_doc () in
        let store = Ppfx_shred.Loader.shred s doc in
        let tr = Ppfx_translate.Translate.create store.Ppfx_shred.Loader.mapping in
        List.iter
          (fun q ->
            let expr = Ppfx_xpath.Parser.parse q in
            let expected = Ppfx_xpath.Eval.select_elements doc expr in
            let got =
              match Ppfx_translate.Translate.translate tr expr with
              | None -> []
              | Some stmt ->
                Ppfx_translate.Translate.result_ids
                  (Ppfx_minidb.Engine.run store.Ppfx_shred.Loader.db stmt)
            in
            Alcotest.(check (list int)) q expected got)
          [ "/A/B/C/D"; "//F"; "//G//G"; "/A/B/C[E/F = 2]"; "/A/*" ] );
  ]

let () =
  let tc (name, f) = Alcotest.test_case name `Quick f in
  Alcotest.run "schema"
    [
      "classification", List.map tc classification_tests;
      "navigation", List.map tc navigation_tests;
      "validation", List.map tc validation_tests;
      "inference", List.map tc inference_tests;
      "xsd", List.map tc xsd_tests;
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_infer_validates; prop_paths_match_classification ] );
    ]

(* Tests for the XML data model, parser, printer and indexed documents. *)

module Tree = Ppfx_xml.Tree
module Parser = Ppfx_xml.Parser
module Printer = Ppfx_xml.Printer
module Doc = Ppfx_xml.Doc
module Dewey = Ppfx_dewey.Dewey

let parse = Parser.parse

let parser_tests =
  [
    ( "simple element",
      fun () ->
        match parse "<a/>" with
        | Tree.Element { tag = "a"; attrs = []; children = [] } -> ()
        | n -> Alcotest.failf "unexpected %s" (Format.asprintf "%a" Tree.pp n) );
    ( "attributes both quote styles",
      fun () ->
        match parse "<a x=\"1\" y='two'/>" with
        | Tree.Element { attrs = [ ("x", "1"); ("y", "two") ]; _ } -> ()
        | n -> Alcotest.failf "unexpected %s" (Format.asprintf "%a" Tree.pp n) );
    ( "text content",
      fun () ->
        match parse "<a>hello</a>" with
        | Tree.Element { children = [ Tree.Text "hello" ]; _ } -> ()
        | n -> Alcotest.failf "unexpected %s" (Format.asprintf "%a" Tree.pp n) );
    ( "nested elements",
      fun () ->
        let n = parse "<a><b><c/></b><b/></a>" in
        Alcotest.(check int) "elements" 4 (Tree.count_elements n) );
    ( "whitespace-only text dropped",
      fun () ->
        match parse "<a>\n  <b/>\n</a>" with
        | Tree.Element { children = [ Tree.Element { tag = "b"; _ } ]; _ } -> ()
        | n -> Alcotest.failf "unexpected %s" (Format.asprintf "%a" Tree.pp n) );
    ( "mixed content preserved",
      fun () ->
        match parse "<a>x<b/>y</a>" with
        | Tree.Element { children = [ Tree.Text "x"; Tree.Element _; Tree.Text "y" ]; _ }
          ->
          ()
        | n -> Alcotest.failf "unexpected %s" (Format.asprintf "%a" Tree.pp n) );
    ( "entities decoded",
      fun () ->
        match parse "<a>&lt;&amp;&gt;&quot;&apos;</a>" with
        | Tree.Element { children = [ Tree.Text "<&>\"'" ]; _ } -> ()
        | n -> Alcotest.failf "unexpected %s" (Format.asprintf "%a" Tree.pp n) );
    ( "numeric character references",
      fun () ->
        match parse "<a>&#65;&#x42;</a>" with
        | Tree.Element { children = [ Tree.Text "AB" ]; _ } -> ()
        | n -> Alcotest.failf "unexpected %s" (Format.asprintf "%a" Tree.pp n) );
    ( "cdata",
      fun () ->
        match parse "<a><![CDATA[<not-a-tag/>]]></a>" with
        | Tree.Element { children = [ Tree.Text "<not-a-tag/>" ]; _ } -> ()
        | n -> Alcotest.failf "unexpected %s" (Format.asprintf "%a" Tree.pp n) );
    ( "comments discarded",
      fun () ->
        match parse "<a><!-- hi --><b/></a>" with
        | Tree.Element { children = [ Tree.Element { tag = "b"; _ } ]; _ } -> ()
        | n -> Alcotest.failf "unexpected %s" (Format.asprintf "%a" Tree.pp n) );
    ( "prolog and doctype skipped",
      fun () ->
        match parse "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a ANY>]><a/>" with
        | Tree.Element { tag = "a"; _ } -> ()
        | n -> Alcotest.failf "unexpected %s" (Format.asprintf "%a" Tree.pp n) );
    ( "attribute entity",
      fun () ->
        match parse "<a t='x&amp;y'/>" with
        | Tree.Element { attrs = [ ("t", "x&y") ]; _ } -> ()
        | n -> Alcotest.failf "unexpected %s" (Format.asprintf "%a" Tree.pp n) );
  ]

let parser_error_tests =
  let expect_error src () =
    match parse src with
    | _ -> Alcotest.failf "expected parse error for %S" src
    | exception Parser.Error _ -> ()
  in
  [
    "mismatched close", expect_error "<a></b>";
    "unterminated", expect_error "<a><b></b>";
    "duplicate attribute", expect_error "<a x='1' x='2'/>";
    "junk after root", expect_error "<a/><b/>";
    "lt in attribute", expect_error "<a x='<'/>";
    "empty input", expect_error "";
    "bad entity", expect_error "<a>&nope;</a>";
  ]

let roundtrip_tests =
  let rt src () =
    let n = parse src in
    let printed = Printer.to_string n in
    let reparsed = parse printed in
    Alcotest.(check bool)
      (Printf.sprintf "round-trip %s" src)
      true (Tree.equal n reparsed)
  in
  [
    "simple", rt "<a/>";
    "attrs and text", rt "<a x=\"1\"><b>t</b></a>";
    "special chars in text", rt "<a>&lt;tag&gt; &amp; co</a>";
    "special chars in attr", rt "<a x=\"say &quot;hi&quot; &amp; bye\"/>";
    "mixed", rt "<p>one <b>two</b> three</p>";
    "deep", rt "<a><b><c><d><e>x</e></d></c></b></a>";
  ]

let indent_test () =
  let n = parse "<a><b><c/></b></a>" in
  let pretty = Printer.to_string ~indent:2 n in
  Alcotest.(check bool) "pretty parses back" true (Tree.equal n (parse pretty));
  Alcotest.(check bool) "contains newlines" true (String.contains pretty '\n')

(* The paper's Figure 1 document. *)
let fig1_doc () =
  Doc.of_tree
    (parse
       "<A><B><C><D/></C><C><E><F>1</F><F>2</F></E></C><G/></B><B><G><G/></G></B></A>")

let doc_tests =
  [
    ( "ids are preorder",
      fun () ->
        let doc = fig1_doc () in
        let tags = Array.to_list (Array.map (fun e -> e.Doc.tag) (Doc.elements doc)) in
        Alcotest.(check (list string)) "preorder tags"
          [ "A"; "B"; "C"; "D"; "C"; "E"; "F"; "F"; "G"; "B"; "G"; "G" ]
          tags );
    ( "dewey positions match figure 1(c)",
      fun () ->
        let doc = fig1_doc () in
        let dotted =
          Array.to_list (Array.map (fun e -> Dewey.to_dotted e.Doc.dewey) (Doc.elements doc))
        in
        Alcotest.(check (list string)) "dewey"
          [
            "1"; "1.1"; "1.1.1"; "1.1.1.1"; "1.1.2"; "1.1.2.1"; "1.1.2.1.1";
            "1.1.2.1.2"; "1.1.3"; "1.2"; "1.2.1"; "1.2.1.1";
          ]
          dotted );
    ( "parents match figure 1(c)",
      fun () ->
        let doc = fig1_doc () in
        let parents =
          Array.to_list (Array.map (fun e -> e.Doc.parent) (Doc.elements doc))
        in
        Alcotest.(check (list int)) "parents" [ 0; 1; 2; 3; 2; 5; 6; 6; 2; 1; 10; 11 ]
          parents );
    ( "paths",
      fun () ->
        let doc = fig1_doc () in
        Alcotest.(check string) "path of D" "/A/B/C/D" (Doc.element doc 4).Doc.path;
        Alcotest.(check string) "path of deep G" "/A/B/G/G" (Doc.element doc 12).Doc.path );
    ( "distinct paths in first-appearance order",
      fun () ->
        let doc = fig1_doc () in
        Alcotest.(check (list string)) "paths"
          [ "/A"; "/A/B"; "/A/B/C"; "/A/B/C/D"; "/A/B/C/E"; "/A/B/C/E/F"; "/A/B/G";
            "/A/B/G/G" ]
          (Doc.distinct_paths doc) );
    ( "region encoding consistent with dewey",
      fun () ->
        let doc = fig1_doc () in
        Doc.iter
          (fun a ->
            Doc.iter
              (fun b ->
                let via_dewey = Dewey.is_descendant b.Doc.dewey ~of_:a.Doc.dewey in
                let via_region =
                  Ppfx_dewey.Region.is_descendant b.Doc.region ~of_:a.Doc.region
                in
                if via_dewey <> via_region then
                  Alcotest.failf "region/dewey disagree on (%d, %d)" a.Doc.id b.Doc.id)
              doc)
          doc );
    ( "string value concatenates descendants",
      fun () ->
        let doc = Doc.of_tree (parse "<a>x<b>y<c>z</c></b>w</a>") in
        Alcotest.(check string) "string value" "xyzw" (Doc.root doc).Doc.string_value;
        Alcotest.(check string) "direct text" "xw" (Doc.root doc).Doc.text );
    ( "children and descendants",
      fun () ->
        let doc = fig1_doc () in
        let b1 = Doc.element doc 2 in
        Alcotest.(check (list int)) "children of B1" [ 3; 5; 9 ]
          (List.map (fun e -> e.Doc.id) (Doc.children doc b1));
        Alcotest.(check (list int)) "descendants of B1" [ 3; 4; 5; 6; 7; 8; 9 ]
          (List.map (fun e -> e.Doc.id) (Doc.descendants doc b1)) );
  ]

let deep_document_test () =
  (* Indexing must not be quadratic in depth (string values are built
     bottom-up in one pass). *)
  let depth = 5000 in
  let buf = Buffer.create (depth * 7) in
  for _ = 1 to depth do
    Buffer.add_string buf "<a>"
  done;
  Buffer.add_string buf "x";
  for _ = 1 to depth do
    Buffer.add_string buf "</a>"
  done;
  let t0 = Unix.gettimeofday () in
  let doc = Doc.of_tree (parse (Buffer.contents buf)) in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check int) "size" depth (Doc.size doc);
  Alcotest.(check string) "leaf string value" "x" (Doc.element doc depth).Doc.string_value;
  Alcotest.(check string) "root string value" "x" (Doc.root doc).Doc.string_value;
  if elapsed > 5.0 then Alcotest.failf "indexing took %.1fs" elapsed

(* Random trees: serialization round-trips through the parser. *)
let gen_tree =
  let open QCheck.Gen in
  let tag = oneofl [ "a"; "b"; "c"; "data" ] in
  let attr = oneofl [ "x"; "y" ] in
  let text = oneofl [ "hello"; "a < b"; "x & y"; "caf\xc3\xa9"; "1" ] in
  sized_size (int_bound 6) @@ fix (fun self n ->
      let leaf =
        map2
          (fun t attrs -> Tree.Element { tag = t; attrs; children = [] })
          tag
          (oneof [ return []; map (fun a -> [ a, "v" ]) attr ])
      in
      if n <= 0 then leaf
      else
        map3
          (fun t txt children ->
            let children =
              match txt with None -> children | Some s -> Tree.Text s :: children
            in
            Tree.Element { tag = t; attrs = []; children })
          tag
          (oneof [ return None; map (fun t -> Some t) text ])
          (list_size (int_bound 3) (self (n / 2))))

let prop_roundtrip =
  QCheck.Test.make ~count:500 ~name:"print/parse round-trip on random trees"
    (QCheck.make ~print:(fun t -> Printer.to_string t) gen_tree)
    (fun t -> Tree.equal t (parse (Printer.to_string t)))

let () =
  let tc (name, f) = Alcotest.test_case name `Quick f in
  Alcotest.run "xml"
    [
      "parser", List.map tc parser_tests;
      "parser-errors", List.map tc parser_error_tests;
      "roundtrip", List.map tc roundtrip_tests;
      "printer", [ Alcotest.test_case "indentation" `Quick indent_test ];
      "doc", List.map tc doc_tests;
      "doc-deep", [ Alcotest.test_case "deep chain" `Quick deep_document_test ];
      "properties", [ QCheck_alcotest.to_alcotest prop_roundtrip ];
    ]

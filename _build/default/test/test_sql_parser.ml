(* Tests for the SQL text parser: unit cases, error cases, and a
   round-trip law — every statement the XPath translators emit must
   survive print -> parse -> execute with identical results. *)

module Sql = Ppfx_minidb.Sql
module Sql_parser = Ppfx_minidb.Sql_parser
module Engine = Ppfx_minidb.Engine
module Value = Ppfx_minidb.Value
module Table = Ppfx_minidb.Table
module Database = Ppfx_minidb.Database
module Graph = Ppfx_schema.Graph
module Loader = Ppfx_shred.Loader
module Doc = Ppfx_xml.Doc
module Translate = Ppfx_translate.Translate

let unit_db () =
  let db = Database.create () in
  let t =
    Database.create_table db ~name:"t"
      ~columns:
        [
          { Table.name = "id"; ty = Value.Tint };
          { Table.name = "name"; ty = Value.Tstr };
          { Table.name = "bin"; ty = Value.Tbin };
        ]
  in
  List.iter
    (fun (id, name, b) ->
      ignore (Table.insert t [| Value.Int id; Value.Str name; Value.Bin b |]))
    [ 1, "alpha", "\x00\x01"; 2, "beta", "\x00\x02"; 3, "o'brien", "\x7F\xFF" ];
  Table.create_index t [ "id" ];
  db

let run_sql db src = (Engine.run db (Sql_parser.parse src)).Engine.rows

let unit_tests =
  [
    ( "simple select",
      fun () ->
        let db = unit_db () in
        Alcotest.(check int) "rows" 3 (List.length (run_sql db "SELECT id FROM t")) );
    ( "where with unqualified columns",
      fun () ->
        let db = unit_db () in
        Alcotest.(check int) "rows" 1
          (List.length (run_sql db "SELECT name FROM t WHERE id = 2")) );
    ( "string literal with quote escape",
      fun () ->
        let db = unit_db () in
        match run_sql db "SELECT id FROM t WHERE name = 'o''brien'" with
        | [ [| Value.Int 3 |] ] -> ()
        | _ -> Alcotest.fail "expected row 3" );
    ( "hex binary literal and concat",
      fun () ->
        let db = unit_db () in
        Alcotest.(check int) "rows" 2
          (List.length
             (run_sql db
                "SELECT id FROM t WHERE bin BETWEEN x'0000' AND x'0002' || x'FF'")) );
    ( "order by and alias",
      fun () ->
        let db = unit_db () in
        match run_sql db "SELECT t.name AS n FROM t tt, t WHERE tt.id = t.id AND t.id < 3 ORDER BY t.id" with
        | [ [| Value.Str "alpha" |]; [| Value.Str "beta" |] ] -> ()
        | rows -> Alcotest.failf "unexpected rows (%d)" (List.length rows) );
    ( "exists and regexp_like",
      fun () ->
        let db = unit_db () in
        Alcotest.(check int) "rows" 1
          (List.length
             (run_sql db
                "SELECT id FROM t WHERE EXISTS (SELECT NULL FROM t u WHERE u.id = t.id \
                 AND REGEXP_LIKE(u.name, '^al'))")) );
    ( "union with order by output column",
      fun () ->
        let db = unit_db () in
        let rows =
          run_sql db
            "SELECT id FROM t WHERE id = 2 UNION SELECT id FROM t WHERE id = 1 ORDER BY id"
        in
        (match rows with
         | [ [| Value.Int 1 |]; [| Value.Int 2 |] ] -> ()
         | _ -> Alcotest.fail "expected sorted union") );
    ( "arithmetic, length, to_number, is not null",
      fun () ->
        let db = unit_db () in
        Alcotest.(check int) "rows" 3
          (List.length
             (run_sql db
                "SELECT id FROM t WHERE LENGTH(name) + 1 > TO_NUMBER('2') AND name IS \
                 NOT NULL")) );
    ( "top-level SELECT COUNT",
      fun () ->
        let db = unit_db () in
        (match run_sql db "SELECT COUNT(*) FROM t WHERE id > 1" with
         | [ [| Value.Int 2 |] ] -> ()
         | _ -> Alcotest.fail "expected count 2");
        match run_sql db "select count(*) from t" with
        | [ [| Value.Int 3 |] ] -> ()
        | _ -> Alcotest.fail "expected count 3" );
    ( "correlated scalar count sub-query",
      fun () ->
        let db = unit_db () in
        (* rows whose id equals the number of rows with id <= theirs *)
        match
          run_sql db
            "SELECT t.id FROM t WHERE (SELECT COUNT(*) FROM t u WHERE u.id <= t.id) = t.id"
        with
        | rows -> Alcotest.(check int) "all rows qualify" 3 (List.length rows) );
    ( "case-insensitive keywords",
      fun () ->
        let db = unit_db () in
        Alcotest.(check int) "rows" 3
          (List.length (run_sql db "select id from t where not (id > 100)")) );
    ( "distinct",
      fun () ->
        let db = unit_db () in
        Alcotest.(check int) "rows" 1
          (List.length (run_sql db "SELECT DISTINCT LENGTH(bin) AS l FROM t")) );
  ]

let error_tests =
  let expect_error src () =
    match Sql_parser.parse src with
    | _ -> Alcotest.failf "expected parse error for %s" src
    | exception Sql_parser.Error _ -> ()
  in
  [
    "missing from", expect_error "SELECT id";
    "trailing junk", expect_error "SELECT id FROM t garbage extra tokens (";
    "bad string", expect_error "SELECT id FROM t WHERE name = 'oops";
    "ambiguous bare column", expect_error "SELECT id FROM a, b";
    "order by after middle union branch",
      expect_error "SELECT id FROM t ORDER BY id UNION SELECT id FROM t";
    "union order by non-output column",
      expect_error "SELECT id FROM t UNION SELECT id FROM t ORDER BY nope";
    "odd hex literal", expect_error "SELECT id FROM t WHERE bin = x'ABC'";
  ]

(* Round-trip law over the translator corpus: to_string -> parse -> run
   gives the same rows as running the original statement. *)
let fig1_schema () =
  let b = Graph.Builder.create () in
  let a = Graph.Builder.define b ~attrs:[ "x" ] "A" in
  let bb = Graph.Builder.define b "B" in
  let c = Graph.Builder.define b "C" in
  let d = Graph.Builder.define b ~text:true "D" in
  let e = Graph.Builder.define b "E" in
  let f = Graph.Builder.define b ~text:true "F" in
  let g = Graph.Builder.define b "G" in
  Graph.Builder.add_child b ~parent:a bb;
  Graph.Builder.add_child b ~parent:bb c;
  Graph.Builder.add_child b ~parent:bb g;
  Graph.Builder.add_child b ~parent:c d;
  Graph.Builder.add_child b ~parent:c e;
  Graph.Builder.add_child b ~parent:e f;
  Graph.Builder.add_child b ~parent:g g;
  Graph.Builder.finish b ~root:a

let roundtrip_corpus =
  [
    "/A/B/C/E/F"; "//F"; "/A[@x = 3]/B/C//F"; "/A[@x = 3]/B"; "//F/ancestor::B";
    "/A/B/C[E/F = 2]"; "//G/ancestor::G"; "/A/B/*"; "//D/following::F";
    "/A/*[C//F = 2]"; "//F[parent::E or ancestor::G]"; "/A/B[C/*]";
    "/A/B[C/E/F = C/E/F]"; "//F/text()"; "//*[@x]"; "//F[. + 1 = 3]";
    "//D[contains(., 'd')]"; "/A/B/C/following-sibling::G"; "//E[count(F) = 2]";
    "//C[count(E/F) + 1 = 3]";
  ]

let roundtrip_test () =
  let doc =
    Doc.of_tree
      (Ppfx_xml.Parser.parse
         "<A x=\"3\"><B><C><D>d1</D></C><C><E><F>1</F><F>2</F></E></C><G/></B><B><G><G/></G></B></A>")
  in
  let instance = Loader.shred (fig1_schema ()) doc in
  let translator = Translate.create instance.Loader.mapping in
  List.iter
    (fun query ->
      match Translate.translate translator (Ppfx_xpath.Parser.parse query) with
      | None -> ()
      | Some stmt ->
        let text = Sql.to_string stmt in
        (match Sql_parser.parse text with
         | exception Sql_parser.Error { message; _ } ->
           Alcotest.failf "%s: reparse failed on %s: %s" query text message
         | reparsed ->
           let original = (Engine.run instance.Loader.db stmt).Engine.rows in
           let again = (Engine.run instance.Loader.db reparsed).Engine.rows in
           if original <> again then
             Alcotest.failf "%s: round-trip changed results (%d vs %d rows)" query
               (List.length original) (List.length again)))
    roundtrip_corpus

let () =
  let tc (name, f) = Alcotest.test_case name `Quick f in
  Alcotest.run "sql_parser"
    [
      "unit", List.map tc unit_tests;
      "errors", List.map tc error_tests;
      "roundtrip", [ Alcotest.test_case "translator corpus" `Quick roundtrip_test ];
    ]

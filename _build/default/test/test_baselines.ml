(* Differential tests for the three baselines of the paper's evaluation:
   XPath Accelerator (window-join SQL), the MonetDB/XQuery simulator
   (staircase columns), and the commercial built-in stand-in. *)

module Xparser = Ppfx_xpath.Parser
module Eval = Ppfx_xpath.Eval
module Doc = Ppfx_xml.Doc
module Xml_parser = Ppfx_xml.Parser
module Graph = Ppfx_schema.Graph
module Loader = Ppfx_shred.Loader
module Accelerator = Ppfx_baselines.Accelerator
module Monet_sim = Ppfx_baselines.Monet_sim
module Commercial = Ppfx_baselines.Commercial
module Twig = Ppfx_baselines.Twig
module Engine = Ppfx_minidb.Engine

let fig1_doc_src =
  "<A x=\"3\"><B><C><D>d1</D></C><C><E><F>1</F><F>2</F></E></C><G/></B><B><G><G/></G></B></A>"

let fig1 = lazy (Doc.of_tree (Xml_parser.parse fig1_doc_src))

let accel = lazy (Accelerator.shred (Lazy.force fig1))

let monet = lazy (Monet_sim.of_doc (Lazy.force fig1))

let queries =
  [
    "/A"; "/A/B"; "/A/B/C"; "/A/B/C/D"; "/A/B/C/E/F"; "//F"; "//C"; "//G"; "/A//F";
    "/A/B//F"; "/A/*"; "/A/B/*"; "/A/B/C/*/F"; "/A/*/C"; "//*";
    "/A[@x = 3]/B/C//F"; "/A[@x = 3]/B"; "/A[@x = 4]//C"; "/A/*[C//F = 2]";
    "//F/parent::E"; "//F/parent::E/parent::C"; "//F/ancestor::B"; "//F/ancestor::C";
    "//F/parent::E/ancestor::B"; "//G/ancestor::G"; "//G/parent::G"; "//G/ancestor::B";
    "//D/..";
    "/descendant-or-self::G"; "//G/ancestor-or-self::G"; "//F/ancestor-or-self::B";
    "/A/B/C/following-sibling::G"; "/A/B/C/following-sibling::C";
    "//C/preceding-sibling::C"; "//D/following::F"; "//G/preceding::D";
    "//D/following::G"; "//F/following-sibling::F";
    "/A/B/C[E]"; "/A/B/C[D]"; "/A/B[C]"; "/A/B[G]"; "/A/B/C[E/F = 2]";
    "/A/B/C[E/F = 3]"; "//F[. = 1]"; "//C[D = 'd1']"; "//B[C and G]"; "//B[C or G]";
    "//B[not(C)]"; "//C[not(D)]"; "//F[parent::E]"; "//F[ancestor::B]";
    "//G[parent::B or ancestor::G]"; "//G[parent::G]"; "//*[@x]"; "/A[@x]";
    "/A[@x = 3]"; "/A[@x = '3']"; "/A[@x = 4]"; "//C[E/F]"; "/A/B[C/E/F = 2]";
    "/A/B[C/D]"; "//B[.//F]";
    "/A/B[C[E]]"; "/A/B[C[E/F = 1]]"; "//B[C[not(D)] and G]";
    "/A/B[C/E/F = C/E/F]"; "/A/B/C[E/F = E/F]";
    "/A/B/C/D | //F"; "//G | //F"; "/A/B | /A/B/C";
    "//F/text()"; "/A/B/C/E/F/text()"; "//D/text()";
    "/A/B/*[//F]"; "/A/B/C/*[F]";
    "//F[. + 1 = 3]";
    "/A/B/C[E/F = /A/B/C/E/F]"; "//C[D = /A/B/C/D]";
    "/A/B/G//G"; "//G//G"; "/A/B[G/G]";
    "//D[contains(., 'd')]"; "//D[contains(., 'z')]"; "//F[starts-with(., '1')]";
    "//D[string-length(.) = 2]"; "//C[D[contains(., 'd1')]]";
  ]

let accel_query query () =
  let doc = Lazy.force fig1 in
  let store = Lazy.force accel in
  let expr = Xparser.parse query in
  let expected = Eval.select_elements doc expr in
  let got =
    match Accelerator.translate expr with
    | None -> []
    | Some stmt -> Accelerator.result_ids (Engine.run store.Accelerator.db stmt)
  in
  Alcotest.(check (list int)) query expected got

let monet_query query () =
  let doc = Lazy.force fig1 in
  let store = Lazy.force monet in
  let expr = Xparser.parse query in
  let expected = Eval.select_elements doc expr in
  Alcotest.(check (list int)) query expected (Monet_sim.run store expr)

let commercial_tests =
  [
    ( "supports the Q23/Q24/QA feature profile",
      fun () ->
        List.iter
          (fun q ->
            Alcotest.(check bool) q true (Commercial.supports (Xparser.parse q)))
          [
            "/site/people/person[address and (phone or homepage)]";
            "/site/people/person[not(homepage)]";
            "/site/open_auctions/open_auction[bidder/date = interval/start]";
            "/A/B[C/E/F = 2]";
          ] );
    ( "rejects everything else",
      fun () ->
        List.iter
          (fun q ->
            Alcotest.(check bool) q false (Commercial.supports (Xparser.parse q)))
          [
            "//keyword";
            "/site/regions/*/item";
            "/A/B/C/following-sibling::G";
            "//F/ancestor::B";
            "/A/B | /A/C";
            "/A/B[.//F]";
            "/A/B[2]";
          ] );
    ( "translation is correct on its subset",
      fun () ->
        let doc = Lazy.force fig1 in
        let schema = Graph.infer doc in
        let instance = Loader.shred schema doc in
        List.iter
          (fun q ->
            let expr = Xparser.parse q in
            let expected = Eval.select_elements doc expr in
            let got =
              match Commercial.translate instance.Loader.mapping expr with
              | None -> []
              | Some stmt -> Commercial.result_ids (Engine.run instance.Loader.db stmt)
            in
            Alcotest.(check (list int)) q expected got)
          [
            "/A/B";
            "/A/B/C";
            "/A/B/C[E and D]";
            "/A/B/C[E or D]";
            "/A/B/C[not(D)]";
            "/A/B/C[E/F = 2]";
            "/A/B/C[E/F = E/F]";
            "/A[@x = 3]/B";
          ] );
    ( "raises on unsupported queries",
      fun () ->
        let doc = Lazy.force fig1 in
        let schema = Graph.infer doc in
        let instance = Loader.shred schema doc in
        match Commercial.translate instance.Loader.mapping (Xparser.parse "//F") with
        | _ -> Alcotest.fail "expected Not_supported"
        | exception Commercial.Not_supported _ -> () );
  ]

let twig = lazy (Twig.of_doc (Lazy.force fig1))

let twig_tests =
  [
    ( "supports the twig subset",
      fun () ->
        List.iter
          (fun (q, expected) ->
            Alcotest.(check bool) q expected (Twig.supports (Xparser.parse q)))
          [
            "/A/B/C", true;
            "//F", true;
            "/A//C[E]", true;
            "/A/B[C/E and G]//F", true;
          ] );
    ( "twig subset membership",
      fun () ->
        List.iter
          (fun (q, expected) ->
            Alcotest.(check bool) q expected (Twig.supports (Xparser.parse q)))
          [
            "/A/B[C][G]", true;
            "/A/*[C//F]", true;
            "//F/parent::E", false;
            "/A/B[C = 2]", false;
            "/A/B[not(C)]", false;
            "//F/following::G", false;
            "/A/B | /A/C", false;
          ] );
    ( "differential against the reference evaluator",
      fun () ->
        let doc = Lazy.force fig1 in
        let store = Lazy.force twig in
        List.iter
          (fun q ->
            let expr = Xparser.parse q in
            let expected = Eval.select_elements doc expr in
            Alcotest.(check (list int)) q expected (Twig.run store expr))
          [
            "/A"; "/A/B"; "/A/B/C"; "/A/B/C/D"; "//F"; "//G"; "/A//F"; "/A/B/*";
            "/A/B/C/*/F"; "//*"; "/A/B[C]"; "/A/B[G]"; "/A/B[C][G]"; "/A/B/C[E]";
            "/A/B/C[E/F]"; "/A/B[C/E/F]"; "//B[.//F]"; "/A/*[C//F]"; "//G//G";
            "/A/B[G/G]"; "//C[E and D]"; "/A/B[C/D and C/E]";
          ] );
    ( "rejects out-of-subset queries at run time",
      fun () ->
        let store = Lazy.force twig in
        match Twig.run store (Xparser.parse "//F/parent::E") with
        | _ -> Alcotest.fail "expected Unsupported"
        | exception Twig.Unsupported _ -> () );
  ]

(* Random cross-engine property: accelerator and monet simulator agree
   with the reference evaluator on random queries. *)
let gen_query =
  let open QCheck.Gen in
  let name = oneofl [ "A"; "B"; "C"; "D"; "E"; "F"; "G" ] in
  let test = oneof [ name; return "*" ] in
  let step =
    oneof
      [
        map (fun t -> "/" ^ t) test;
        map (fun t -> "//" ^ t) test;
        map (fun t -> "/parent::" ^ t) test;
        map (fun t -> "/ancestor::" ^ t) test;
        map (fun t -> "/following-sibling::" ^ t) test;
        map (fun t -> "/preceding-sibling::" ^ t) test;
        map (fun t -> "/following::" ^ t) test;
        map (fun t -> "/preceding::" ^ t) test;
      ]
  in
  let predicate =
    oneof
      [
        map (fun n -> "[" ^ n ^ "]") name;
        map (fun n -> "[not(" ^ n ^ ")]") name;
        map (fun n -> "[.//" ^ n ^ "]") name;
        map2 (fun n v -> "[" ^ n ^ " = " ^ string_of_int v ^ "]") name (int_bound 3);
        map (fun n -> "[parent::" ^ n ^ "]") name;
        map (fun n -> "[ancestor::" ^ n ^ "]") name;
        return "[@x]";
        return "[@x = 3]";
      ]
  in
  map2
    (fun steps first_name ->
      let body = String.concat "" (List.map (fun (s, p) -> s ^ p) steps) in
      "/" ^ first_name ^ body)
    (list_size (int_range 0 3) (pair step (oneof [ return ""; predicate ])))
    name

let gen_twig_query =
  let open QCheck.Gen in
  let name = oneofl [ "A"; "B"; "C"; "D"; "E"; "F"; "G" ] in
  let test = oneof [ name; return "*" ] in
  let step = oneof [ map (fun t -> "/" ^ t) test; map (fun t -> "//" ^ t) test ] in
  let predicate =
    oneof
      [
        map (fun n -> "[" ^ n ^ "]") name;
        map (fun n -> "[.//" ^ n ^ "]") name;
        map2 (fun a b -> "[" ^ a ^ " and .//" ^ b ^ "]") name name;
        map2 (fun a b -> "[" ^ a ^ "/" ^ b ^ "]") name name;
      ]
  in
  map2
    (fun first steps ->
      "/" ^ first ^ String.concat "" (List.map (fun (s, p) -> s ^ p) steps))
    name
    (list_size (int_range 0 4) (pair step (oneof [ return ""; predicate ])))

let prop_twig_vs_eval =
  QCheck.Test.make ~count:600 ~name:"twig joins agree with the evaluator"
    (QCheck.make ~print:(fun q -> q) gen_twig_query)
    (fun query ->
      let doc = Lazy.force fig1 in
      match Xparser.parse query with
      | exception Xparser.Error _ -> QCheck.assume_fail ()
      | expr ->
        if not (Twig.supports expr) then QCheck.assume_fail ()
        else begin
          let expected = Eval.select_elements doc expr in
          let got = Twig.run (Lazy.force twig) expr in
          if got <> expected then
            QCheck.Test.fail_reportf "twig on %s: expected [%s], got [%s]" query
              (String.concat ";" (List.map string_of_int expected))
              (String.concat ";" (List.map string_of_int got))
          else true
        end)

let prop_baselines_vs_eval =
  QCheck.Test.make ~count:600 ~name:"accelerator and monet agree with the evaluator"
    (QCheck.make ~print:(fun q -> q) gen_query)
    (fun query ->
      let doc = Lazy.force fig1 in
      match Xparser.parse query with
      | exception Xparser.Error _ -> QCheck.assume_fail ()
      | expr ->
        let expected = Eval.select_elements doc expr in
        let via_accel =
          let store = Lazy.force accel in
          match Accelerator.translate expr with
          | None -> []
          | Some stmt -> Accelerator.result_ids (Engine.run store.Accelerator.db stmt)
        in
        let via_monet = Monet_sim.run (Lazy.force monet) expr in
        if via_accel <> expected then
          QCheck.Test.fail_reportf "accelerator on %s: expected [%s], got [%s]" query
            (String.concat ";" (List.map string_of_int expected))
            (String.concat ";" (List.map string_of_int via_accel))
        else if via_monet <> expected then
          QCheck.Test.fail_reportf "monet on %s: expected [%s], got [%s]" query
            (String.concat ";" (List.map string_of_int expected))
            (String.concat ";" (List.map string_of_int via_monet))
        else true)

let () =
  let tc (name, f) = Alcotest.test_case name `Quick f in
  Alcotest.run "baselines"
    [
      ( "accelerator",
        List.map (fun q -> Alcotest.test_case q `Quick (accel_query q)) queries );
      ( "monet-sim",
        List.map (fun q -> Alcotest.test_case q `Quick (monet_query q)) queries );
      "commercial", List.map tc commercial_tests;
      "twig", List.map tc twig_tests;
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_baselines_vs_eval; prop_twig_vs_eval ] );
    ]

(* Differential tests for the schema-oblivious Edge-mapping PPF variant
   (paper Section 5.1) against the reference evaluator. *)

module Xparser = Ppfx_xpath.Parser
module Eval = Ppfx_xpath.Eval
module Doc = Ppfx_xml.Doc
module Xml_parser = Ppfx_xml.Parser
module Edge = Ppfx_shred.Edge
module Edge_translate = Ppfx_translate.Edge_translate
module Engine = Ppfx_minidb.Engine
module Sql = Ppfx_minidb.Sql

let fig1_doc_src =
  "<A x=\"3\"><B><C><D>d1</D></C><C><E><F>1</F><F>2</F></E></C><G/></B><B><G><G/></G></B></A>"

let fig1 =
  lazy
    (let doc = Doc.of_tree (Xml_parser.parse fig1_doc_src) in
     doc, Edge.shred doc)

let check_query doc (store : Edge.t) query =
  let expr = Xparser.parse query in
  let expected = Eval.select_elements doc expr in
  let got =
    match Edge_translate.translate expr with
    | None -> []
    | Some stmt -> Edge_translate.result_ids (Engine.run store.Edge.db stmt)
  in
  Alcotest.(check (list int)) query expected got

let fig1_query query () =
  let doc, store = Lazy.force fig1 in
  check_query doc store query

(* The same corpus as the schema-aware translator tests: both variants
   must agree with the evaluator (and hence with each other). *)
let fig1_queries =
  [
    "/A"; "/A/B"; "/A/B/C"; "/A/B/C/D"; "/A/B/C/E/F"; "//F"; "//C"; "//G"; "/A//F";
    "/A/B//F"; "/A/*"; "/A/B/*"; "/A/B/C/*/F"; "/A/*/C"; "//*";
    "/A[@x = 3]/B/C//F"; "/A[@x = 3]/B"; "/A[@x = 4]//C"; "/A/*[C//F = 2]";
    "//F/parent::E"; "//F/parent::E/parent::C"; "//F/ancestor::B"; "//F/ancestor::C";
    "//F/parent::E/ancestor::B"; "//G/ancestor::G"; "//G/parent::G"; "//G/ancestor::B";
    "//D/..";
    "/descendant-or-self::G"; "//G/ancestor-or-self::G"; "//F/ancestor-or-self::B";
    "/A/B/C/following-sibling::G"; "/A/B/C/following-sibling::C";
    "//C/preceding-sibling::C"; "//D/following::F"; "//G/preceding::D";
    "//D/following::G"; "//F/following-sibling::F";
    "/A/B/C[E]"; "/A/B/C[D]"; "/A/B[C]"; "/A/B[G]"; "/A/B/C[E/F = 2]";
    "/A/B/C[E/F = 3]"; "//F[. = 1]"; "//C[D = 'd1']"; "//B[C and G]"; "//B[C or G]";
    "//B[not(C)]"; "//C[not(D)]"; "//F[parent::E]"; "//F[ancestor::B]";
    "//G[parent::B or ancestor::G]"; "//G[parent::G]"; "//*[@x]"; "/A[@x]";
    "/A[@x = 3]"; "/A[@x = '3']"; "/A[@x = 4]"; "//C[E/F]"; "/A/B[C/E/F = 2]";
    "/A/B[C/D]"; "//B[.//F]";
    "/A/B[C[E]]"; "/A/B[C[E/F = 1]]"; "//B[C[not(D)] and G]";
    "/A/B[C/E/F = C/E/F]"; "/A/B/C[E/F = E/F]";
    "/A/B/C/D | //F"; "//G | //F"; "/A/B | /A/B/C";
    "//F/text()"; "/A/B/C/E/F/text()"; "//D/text()";
    "/A/B/*[//F]"; "/A/B/C/*[F]";
    "//F[. + 1 = 3]"; "//F[. * 2 = 2]";
    "/A/B/C[E/F = /A/B/C/E/F]"; "//C[D = /A/B/C/D]";
    "/A/B/G//G"; "//G//G"; "/A/B[G/G]";
    "//D[contains(., 'd')]"; "//D[contains(., 'z')]"; "//F[starts-with(., '1')]";
    "//D[string-length(.) = 2]"; "//C[D[contains(., 'd1')]]";
    "/A/B[1]"; "/A/B[2]"; "/A/B/C[2]"; "/A/B/C[position() = 1]"; "/A/B/C[last()]";
    "/A/B/C[position() < last()]"; "/A/B[2]/G"; "/A/B[C[1]]";
    (* wildcards are free on the Edge mapping: no SQL splitting *)
    "//*[@x]/B"; "/*/*";
  ]

let golden_tests =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  [
    ( "wildcard prominent step does not split the statement",
      fun () ->
        match Edge_translate.translate (Xparser.parse "/A/B/*") with
        | Some stmt ->
          Alcotest.(check bool) "no union" false (contains (Sql.to_string stmt) "UNION")
        | None -> Alcotest.fail "expected a statement" );
    ( "every fragment filters the Paths relation",
      fun () ->
        match Edge_translate.translate (Xparser.parse "/A/B/C") with
        | Some stmt ->
          Alcotest.(check bool) "regexp" true
            (contains (Sql.to_string stmt) "REGEXP_LIKE")
        | None -> Alcotest.fail "expected a statement" );
    ( "attribute predicates join the attr relation",
      fun () ->
        match Edge_translate.translate (Xparser.parse "/A[@x = 3]") with
        | Some stmt ->
          Alcotest.(check bool) "attr" true (contains (Sql.to_string stmt) "attr")
        | None -> Alcotest.fail "expected a statement" );
  ]

(* Random differential property, same query generator family as the
   schema-aware suite. *)
let gen_query =
  let open QCheck.Gen in
  let name = oneofl [ "A"; "B"; "C"; "D"; "E"; "F"; "G" ] in
  let test = oneof [ name; return "*" ] in
  let step =
    oneof
      [
        map (fun t -> "/" ^ t) test;
        map (fun t -> "//" ^ t) test;
        map (fun t -> "/parent::" ^ t) test;
        map (fun t -> "/ancestor::" ^ t) test;
        map (fun t -> "/following-sibling::" ^ t) test;
        map (fun t -> "/preceding-sibling::" ^ t) test;
        map (fun t -> "/following::" ^ t) test;
        map (fun t -> "/preceding::" ^ t) test;
      ]
  in
  let predicate =
    oneof
      [
        map (fun n -> "[" ^ n ^ "]") name;
        map (fun n -> "[not(" ^ n ^ ")]") name;
        map (fun n -> "[.//" ^ n ^ "]") name;
        map2 (fun n v -> "[" ^ n ^ " = " ^ string_of_int v ^ "]") name (int_bound 3);
        map (fun n -> "[parent::" ^ n ^ "]") name;
        map (fun n -> "[ancestor::" ^ n ^ "]") name;
        return "[@x]";
        return "[@x = 3]";
        map2 (fun a b -> "[" ^ a ^ " or " ^ b ^ "]") name name;
        map2 (fun a b -> "[" ^ a ^ " and " ^ b ^ "]") name name;
      ]
  in
  map2
    (fun steps first_name ->
      let body = String.concat "" (List.map (fun (s, p) -> s ^ p) steps) in
      "/" ^ first_name ^ body)
    (list_size (int_range 0 3) (pair step (oneof [ return ""; predicate ])))
    name

let prop_edge_vs_eval =
  QCheck.Test.make ~count:800 ~name:"Edge PPF SQL agrees with reference evaluator"
    (QCheck.make ~print:(fun q -> q) gen_query)
    (fun query ->
      let doc, store = Lazy.force fig1 in
      match Xparser.parse query with
      | exception Xparser.Error _ -> QCheck.assume_fail ()
      | expr ->
        let expected = Eval.select_elements doc expr in
        let got =
          match Edge_translate.translate expr with
          | None -> []
          | Some stmt -> Edge_translate.result_ids (Engine.run store.Edge.db stmt)
        in
        if got <> expected then
          QCheck.Test.fail_reportf "query %s: expected [%s], got [%s]" query
            (String.concat ";" (List.map string_of_int expected))
            (String.concat ";" (List.map string_of_int got))
        else true)

let () =
  let tc (name, f) = Alcotest.test_case name `Quick f in
  Alcotest.run "edge_translate"
    [
      ( "differential",
        List.map (fun q -> Alcotest.test_case q `Quick (fig1_query q)) fig1_queries );
      "golden", List.map tc golden_tests;
      "properties", [ QCheck_alcotest.to_alcotest prop_edge_vs_eval ];
    ]

(* Tests for the PPF-based XPath-to-SQL translator: golden translation
   shapes (paper Tables 1 and 3-6), differential correctness against the
   reference evaluator, option ablations, and a qcheck property over
   random schema-valid queries. *)

module Ast = Ppfx_xpath.Ast
module Xparser = Ppfx_xpath.Parser
module Eval = Ppfx_xpath.Eval
module Doc = Ppfx_xml.Doc
module Xml_parser = Ppfx_xml.Parser
module Graph = Ppfx_schema.Graph
module Mapping = Ppfx_shred.Mapping
module Loader = Ppfx_shred.Loader
module Translate = Ppfx_translate.Translate
module Rx = Ppfx_translate.Regex_of_path
module Engine = Ppfx_minidb.Engine
module Sql = Ppfx_minidb.Sql

(* ------------------------------------------------------------------ *)
(* Fixtures: the paper's Figure 1 schema and document                   *)
(* ------------------------------------------------------------------ *)

let fig1_schema () =
  let b = Graph.Builder.create () in
  let a = Graph.Builder.define b ~attrs:[ "x" ] "A" in
  let bb = Graph.Builder.define b "B" in
  let c = Graph.Builder.define b "C" in
  let d = Graph.Builder.define b ~text:true "D" in
  let e = Graph.Builder.define b "E" in
  let f = Graph.Builder.define b ~text:true "F" in
  let g = Graph.Builder.define b "G" in
  Graph.Builder.add_child b ~parent:a bb;
  Graph.Builder.add_child b ~parent:bb c;
  Graph.Builder.add_child b ~parent:bb g;
  Graph.Builder.add_child b ~parent:c d;
  Graph.Builder.add_child b ~parent:c e;
  Graph.Builder.add_child b ~parent:e f;
  Graph.Builder.add_child b ~parent:g g;
  Graph.Builder.finish b ~root:a

let fig1_doc_src =
  "<A x=\"3\"><B><C><D>d1</D></C><C><E><F>1</F><F>2</F></E></C><G/></B><B><G><G/></G></B></A>"

let fig1 =
  lazy
    (let doc = Doc.of_tree (Xml_parser.parse fig1_doc_src) in
     let schema = fig1_schema () in
     let instance = Loader.shred schema doc in
     doc, instance)

(* Differential check: translated SQL against the reference evaluator. *)
let check_query ?options doc (instance : Loader.t) query =
  let expr = Xparser.parse query in
  let expected = Eval.select_elements doc expr in
  let translator = Translate.create ?options instance.Loader.mapping in
  let got =
    match Translate.translate translator expr with
    | None -> []
    | Some stmt -> Translate.result_ids (Engine.run instance.Loader.db stmt)
  in
  Alcotest.(check (list int)) query expected got

let fig1_query query () =
  let doc, instance = Lazy.force fig1 in
  check_query doc instance query

let fig1_queries =
  [
    (* forward paths *)
    "/A";
    "/A/B";
    "/A/B/C";
    "/A/B/C/D";
    "/A/B/C/E/F";
    "//F";
    "//C";
    "//G";
    "/A//F";
    "/A/B//F";
    "/A/*";
    "/A/B/*";
    "/A/B/C/*/F";
    "/A/*/C";
    "//*";
    (* paper running examples *)
    "/A[@x = 3]/B/C//F";
    "/A[@x = 3]/B";
    "/A[@x = 4]//C";
    "/A/*[C//F = 2]";
    (* backward *)
    "//F/parent::E";
    "//F/parent::E/parent::C";
    "//F/ancestor::B";
    "//F/ancestor::C";
    "//F/parent::E/ancestor::B";
    "//G/ancestor::G";
    "//G/parent::G";
    "//G/ancestor::B";
    "//D/..";
    (* or-self axes *)
    "/descendant-or-self::G";
    "//G/ancestor-or-self::G";
    "//F/ancestor-or-self::B";
    (* order axes *)
    "/A/B/C/following-sibling::G";
    "/A/B/C/following-sibling::C";
    "//C/preceding-sibling::C";
    "//D/following::F";
    "//G/preceding::D";
    "//D/following::G";
    "//F/following-sibling::F";
    (* predicates *)
    "/A/B/C[E]";
    "/A/B/C[D]";
    "/A/B[C]";
    "/A/B[G]";
    "/A/B/C[E/F = 2]";
    "/A/B/C[E/F = 3]";
    "//F[. = 1]";
    "//F[. = 1.0]";
    "//C[D = 'd1']";
    "//B[C and G]";
    "//B[C or G]";
    "//B[not(C)]";
    "//C[not(D)]";
    "//F[parent::E]";
    "//F[ancestor::B]";
    "//G[parent::B or ancestor::G]";
    "//G[parent::G]";
    "//*[@x]";
    "/A[@x]";
    "/A[@x = 3]";
    "/A[@x = '3']";
    "/A[@x = 4]";
    "//C[E/F]";
    "/A/B[C/E/F = 2]";
    "/A/B[C/D]";
    "//B[.//F]";
    (* nested predicates *)
    "/A/B[C[E]]";
    "/A/B[C[E/F = 1]]";
    "//B[C[not(D)] and G]";
    (* join predicate (paper Q-A style) *)
    "/A/B[C/E/F = C/E/F]";
    "/A/B/C[E/F = E/F]";
    (* union *)
    "/A/B/C/D | //F";
    "//G | //F";
    "/A/B | /A/B/C";
    (* text() *)
    "//F/text()";
    "/A/B/C/E/F/text()";
    "//D/text()";
    (* wildcard backbone with predicate (SQL splitting, Table 6) *)
    "/A/B/*[//F]";
    "/A/B/C/*[F]";
    "/A/B/*";
    (* arithmetic predicate *)
    "//F[. + 1 = 3]";
    "//F[. * 2 = 2]";
    (* absolute path inside predicate (QD5 style) *)
    "/A/B/C[E/F = /A/B/C/E/F]";
    "//C[D = /A/B/C/D]";
    (* descendant into recursion *)
    "/A/B/G//G";
    "//G//G";
    "/A/B[G/G]";
    (* string functions (extension beyond the paper's subset) *)
    "//D[contains(., 'd')]";
    "//D[contains(., 'z')]";
    "//D[contains(., '')]";
    "//F[starts-with(., '1')]";
    "/A[contains(@x, '3')]";
    "/A[starts-with(@x, '9')]";
    "//D[string-length(.) = 2]";
    "//F[string-length(.) > 0]";
    "//C[D[contains(., 'd1')]]";
    (* positional predicates on child steps, via the ord column *)
    "/A/B[1]";
    "/A/B[2]";
    "/A/B[3]";
    "/A/B/C[2]";
    "/A/B/C[position() = 1]";
    "/A/B/C[position() > 1]";
    "/A/B/C[position() <= 2]";
    "/A/B/C[2][E]";
    "/A/B/C[last()]";
    "/A/B/C[position() = last()]";
    "/A/B/C[position() < last()]";
    "/A/B[last()]/G";
    "//E/F[last()]";
    "/A/B/C[last() = 2]";
    "//B/C[2]";
    "/A/B[2]/G";
    "/A/B[C[1]]";
    "/A/B/C[2]/E/F";
    (* count() via scalar sub-queries *)
    "//C[count(D) = 1]";
    "//E[count(F) = 2]";
    "//E[count(F) > 2]";
    "/A/B[count(C) = 2]";
    "/A/B[count(*) = 3]";
    "//B[count(.//F) = 2]";
    "//B[count(G) >= 1]";
    "//E[count(F) = count(F)]";
    "//C[count(E/F) + 1 = 3]";
  ]

(* ------------------------------------------------------------------ *)
(* Option ablations: all option combinations must stay correct          *)
(* ------------------------------------------------------------------ *)

let ablation_queries =
  [
    "/A/B/C/E/F"; "//F"; "/A[@x = 3]/B/C//F"; "//F/ancestor::B"; "/A/B/C[E/F = 2]";
    "//G/ancestor::G"; "/A/B/*"; "//D/following::F"; "/A/*[C//F = 2]";
  ]

let ablation_tests =
  List.concat_map
    (fun (name, options) ->
      [
        ( name,
          fun () ->
            let doc, instance = Lazy.force fig1 in
            List.iter (fun q -> check_query ~options doc instance q) ablation_queries );
      ])
    [
      ( "no path-filter omission",
        { Translate.default_options with omit_path_filters = false } );
      ("no forward merging", { Translate.default_options with merge_forward = false });
      ("no fk child joins", { Translate.default_options with fk_child_joins = false });
      ( "fully conventional per-step",
        { Translate.default_options with force_per_step = true } );
      ( "everything off",
        {
          Translate.omit_path_filters = false;
          merge_forward = false;
          fk_child_joins = false;
          force_per_step = true;
        } );
    ]

(* ------------------------------------------------------------------ *)
(* Golden translation shapes                                            *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let translate_to_sql ?options query =
  let _, instance = Lazy.force fig1 in
  let translator = Translate.create ?options instance.Loader.mapping in
  match Translate.translate translator (Xparser.parse query) with
  | Some stmt -> Sql.to_string stmt
  | None -> "<empty>"

let golden_tests =
  [
    ( "U-P path filter omitted (4.5)",
      fun () ->
        (* /A/B/C/D: D has a unique root path; no Paths join at all. *)
        let sql = translate_to_sql "/A/B/C/D" in
        Alcotest.(check bool) "no REGEXP_LIKE" false (contains sql "REGEXP_LIKE");
        Alcotest.(check bool) "no paths join" false (contains sql "paths") );
    ( "I-P relation always joins Paths",
      fun () ->
        let sql = translate_to_sql "/A/B/G/G" in
        Alcotest.(check bool) "has REGEXP_LIKE" true (contains sql "REGEXP_LIKE") );
    ( "table 3 (1): wildcard handled by regex, no extra relations",
      fun () ->
        let sql =
          translate_to_sql
            ~options:{ Translate.default_options with omit_path_filters = false }
            "/A[@x = 3]/B/C/*/F"
        in
        (* Only A and F relations (plus Paths) appear: B, C and the
           wildcard are folded into the regex. *)
        Alcotest.(check bool) "no B relation" false (contains sql "FROM B");
        Alcotest.(check bool) "no C relation" false (contains sql ", C,");
        Alcotest.(check bool) "regex with wildcard" true (contains sql "[^/]+");
        Alcotest.(check bool) "attribute condition" true (contains sql "A.attr_x = 3");
        (* With the 4.5 omission enabled, F is U-P and the filter drops
           entirely. *)
        let optimized = translate_to_sql "/A[@x = 3]/B/C/*/F" in
        Alcotest.(check bool) "omitted filter" false (contains optimized "REGEXP_LIKE") );
    ( "table 3 (2): single child step uses FK equijoin",
      fun () ->
        let sql = translate_to_sql "/A[@x = 3]/B" in
        Alcotest.(check bool) "fk join" true (contains sql "B.A_id = A.id");
        Alcotest.(check bool) "no dewey join" false (contains sql "BETWEEN") );
    ( "table 5 (2): backward-only predicate is pure path filtering",
      fun () ->
        let sql = translate_to_sql "//F[parent::E or ancestor::G]" in
        (* parent::E is implied by the schema (F-P/U-P check): the whole
           disjunct collapses; no EXISTS is needed either way. *)
        Alcotest.(check bool) "no exists" false (contains sql "EXISTS") );
    ( "table 6: predicate splitting uses OR of EXISTS, not UNION",
      fun () ->
        let sql = translate_to_sql "/A/B[C/*]" in
        Alcotest.(check bool) "no union" false (contains sql "UNION");
        Alcotest.(check bool) "or of exists" true (contains sql "OR EXISTS") );
    ( "4.4: wildcard prominent step splits the statement",
      fun () ->
        let sql = translate_to_sql "/A/B/*" in
        Alcotest.(check bool) "union" true (contains sql "UNION") );
    ( "dewey structural join shape (table 2 row 1)",
      fun () ->
        let sql = translate_to_sql "/A[@x = 4]//C" in
        Alcotest.(check bool) "between join" true
          (contains sql "C.dewey_pos BETWEEN A.dewey_pos AND A.dewey_pos || x'FF'") );
    ( "following-sibling uses dewey order plus shared parent fk",
      fun () ->
        let sql = translate_to_sql "/A/B/C/following-sibling::G" in
        Alcotest.(check bool) "dewey gt" true (contains sql "G.dewey_pos > C.dewey_pos");
        Alcotest.(check bool) "fk equality" true (contains sql "G.B_id = C.B_id") );
    ( "order by document order",
      fun () ->
        let sql = translate_to_sql "/A/B/C" in
        Alcotest.(check bool) "order by dewey" true (contains sql "ORDER BY C.dewey_pos") );
  ]

(* Table 1 regex generation. *)
let regex_gen_tests =
  [
    ( "anchored child chain",
      fun () ->
        let segs = [ { Rx.desc = false; name = Some "A" }; { Rx.desc = false; name = Some "B" } ] in
        Alcotest.(check string) "pattern" "^/A/B$" (Rx.forward ~anchored:true segs) );
    ( "descendant segment",
      fun () ->
        let segs =
          [
            { Rx.desc = false; name = Some "A" };
            { Rx.desc = false; name = Some "B" };
            { Rx.desc = true; name = Some "F" };
          ]
        in
        Alcotest.(check string) "pattern" "^/A/B/(.+/)?F$" (Rx.forward ~anchored:true segs) );
    ( "wildcard segment",
      fun () ->
        let segs =
          [
            { Rx.desc = true; name = Some "C" };
            { Rx.desc = false; name = None };
            { Rx.desc = false; name = Some "F" };
          ]
        in
        Alcotest.(check string) "pattern" "^.*/C/[^/]+/F$" (Rx.forward ~anchored:false segs) );
    ( "backward chain (table 1 row 4)",
      fun () ->
        let pattern =
          Rx.backward ~context:(Some "F")
            [ Ast.Parent, Some "D"; Ast.Ancestor, Some "B" ]
        in
        Alcotest.(check string) "pattern" "^.*/B(/.+)?/D/F$" pattern;
        Alcotest.(check bool) "matches" true (Rx.matches pattern "/A/B/X/D/F");
        Alcotest.(check bool) "direct" true (Rx.matches pattern "/A/B/D/F");
        Alcotest.(check bool) "wrong parent" false (Rx.matches pattern "/A/B/D/X/F") );
    ( "ends-with pattern",
      fun () ->
        let p = Rx.ends_with "F" in
        Alcotest.(check bool) "tail" true (Rx.matches p "/A/B/F");
        Alcotest.(check bool) "root" true (Rx.matches p "F");
        Alcotest.(check bool) "infix" false (Rx.matches p "/A/F/B") );
  ]

(* ------------------------------------------------------------------ *)
(* Unsupported constructs                                               *)
(* ------------------------------------------------------------------ *)

let unsupported_tests =
  let expect_unsupported query () =
    let _, instance = Lazy.force fig1 in
    let translator = Translate.create instance.Loader.mapping in
    match Translate.translate translator (Xparser.parse query) with
    | _ -> Alcotest.failf "expected Unsupported for %s" query
    | exception Translate.Unsupported _ -> ()
  in
  [
    "positional on descendant axis", expect_unsupported "//B[2]";
    "positional after another predicate", expect_unsupported "/A/B/C[E][1]";
    "last() after another predicate", expect_unsupported "/A/B/C[E][last()]";
    "count of non-path", expect_unsupported "/A/B[count(1) > 1]";
    "bare count is positional", expect_unsupported "//B[count(C)]";
    "top-level function", expect_unsupported "count(//F)";
  ]

(* ------------------------------------------------------------------ *)
(* Random differential property                                         *)
(* ------------------------------------------------------------------ *)

(* Random schema-valid-ish XPath queries over the fig-1 vocabulary.
   Unsupported constructs are excluded by construction. *)
let gen_query =
  let open QCheck.Gen in
  let name = oneofl [ "A"; "B"; "C"; "D"; "E"; "F"; "G" ] in
  let test = oneof [ map (fun n -> n) name; return "*" ] in
  let fwd_axis = oneofl [ ""; "" ] in
  ignore fwd_axis;
  let step depth =
    if depth <= 0 then map (fun t -> "/" ^ t) test
    else
      oneof
        [
          map (fun t -> "/" ^ t) test;
          map (fun t -> "//" ^ t) test;
          map (fun t -> "/parent::" ^ t) test;
          map (fun t -> "/ancestor::" ^ t) test;
          map (fun t -> "/following-sibling::" ^ t) test;
          map (fun t -> "/preceding-sibling::" ^ t) test;
          map (fun t -> "/following::" ^ t) test;
          map (fun t -> "/preceding::" ^ t) test;
        ]
  in
  let predicate =
    oneof
      [
        map (fun n -> "[" ^ n ^ "]") name;
        map (fun n -> "[not(" ^ n ^ ")]") name;
        map (fun n -> "[.//" ^ n ^ "]") name;
        map2 (fun n v -> "[" ^ n ^ " = " ^ string_of_int v ^ "]") name (int_bound 3);
        map (fun n -> "[parent::" ^ n ^ "]") name;
        map (fun n -> "[ancestor::" ^ n ^ "]") name;
        return "[@x]";
        return "[@x = 3]";
        map2 (fun a b -> "[" ^ a ^ " or " ^ b ^ "]") name name;
        map2 (fun a b -> "[" ^ a ^ " and " ^ b ^ "]") name name;
        (* extensions: positional and count predicates; combinations the
           translator rejects are skipped via assume below *)
        map (fun v -> "[" ^ string_of_int (1 + v) ^ "]") (int_bound 2);
        map2
          (fun n v -> "[count(" ^ n ^ ") = " ^ string_of_int v ^ "]")
          name (int_bound 2);
      ]
  in
  let gen =
    list_size (int_range 1 4) (pair (step 1) (oneof [ return ""; predicate ]))
    >|= fun steps ->
    let body =
      String.concat "" (List.map (fun (s, p) -> s ^ p) steps)
    in
    (* First step must not be an order/backward axis from the root. *)
    body
  in
  gen
  |> QCheck.Gen.map (fun q ->
         (* Ensure the first step is forward. *)
         if
           String.length q >= 2
           && (contains (String.sub q 0 (min 12 (String.length q))) "parent"
               || contains (String.sub q 0 (min 20 (String.length q))) "ancestor"
               || contains (String.sub q 0 (min 20 (String.length q))) "following"
               || contains (String.sub q 0 (min 20 (String.length q))) "preceding")
         then "/A" ^ q
         else q)

let prop_translator_vs_eval =
  QCheck.Test.make ~count:800 ~name:"translated SQL agrees with reference evaluator"
    (QCheck.make ~print:(fun q -> q) gen_query)
    (fun query ->
      let doc, instance = Lazy.force fig1 in
      match Xparser.parse query with
      | exception Xparser.Error _ -> QCheck.assume_fail ()
      | expr ->
        let expected = Eval.select_elements doc expr in
        let translator = Translate.create instance.Loader.mapping in
        (match Translate.translate translator expr with
         | exception Translate.Unsupported _ ->
           (* out-of-subset combination (e.g. positional on //) *)
           QCheck.assume_fail ()
         | stmt ->
           let got =
             match stmt with
             | None -> []
             | Some stmt -> Translate.result_ids (Engine.run instance.Loader.db stmt)
           in
           if got <> expected then
             QCheck.Test.fail_reportf "query %s: expected [%s], got [%s]" query
               (String.concat ";" (List.map string_of_int expected))
               (String.concat ";" (List.map string_of_int got))
           else true))

(* Random documents under the fig-1 schema: the differential property
   above uses one fixed document; this one varies the data too, catching
   data-dependent planner or join bugs. Each case shreds a fresh random
   document and compares a fixed panel of queries. *)
let gen_fig1_doc =
  let open QCheck.Gen in
  let rec g_tree depth =
    if depth <= 0 then return (Ppfx_xml.Tree.element "G")
    else
      map
        (fun sub -> Ppfx_xml.Tree.element ~children:sub "G")
        (list_size (int_bound 2) (g_tree (depth - 1)))
  in
  let f_elem = map (fun v -> Ppfx_xml.Tree.element ~children:[ Ppfx_xml.Tree.text (string_of_int v) ] "F") (int_bound 3) in
  let e_elem = map (fun fs -> Ppfx_xml.Tree.element ~children:fs "E") (list_size (int_bound 3) f_elem) in
  let d_elem = map (fun v -> Ppfx_xml.Tree.element ~children:[ Ppfx_xml.Tree.text ("d" ^ string_of_int v) ] "D") (int_bound 2) in
  let c_elem =
    map
      (fun kids -> Ppfx_xml.Tree.element ~children:kids "C")
      (oneof
         [ map (fun d -> [ d ]) d_elem; map (fun e -> [ e ]) e_elem; return [] ])
  in
  let b_elem =
    map2
      (fun cs gs -> Ppfx_xml.Tree.element ~children:(cs @ gs) "B")
      (list_size (int_bound 3) c_elem)
      (list_size (int_bound 2) (g_tree 2))
  in
  map2
    (fun x bs ->
      Ppfx_xml.Tree.Element
        { tag = "A"; attrs = [ "x", string_of_int x ]; children = bs })
    (int_bound 5)
    (list_size (int_range 1 3) b_elem)

let random_doc_query_panel =
  [
    "/A/B/C"; "//F"; "//G"; "/A[@x = 3]/B"; "/A/B/C[E/F = 2]"; "//G//G";
    "//F/ancestor::B"; "//C[not(D)]"; "/A/B/*"; "//G[parent::G]";
    "//C/preceding-sibling::C"; "/A/B[C/E/F = C/E/F]"; "//E[count(F) = 2]";
    "//B[.//F]"; "//D/following::F";
  ]

let prop_random_documents =
  QCheck.Test.make ~count:150 ~name:"translated SQL agrees with eval on random documents"
    (QCheck.make
       ~print:(fun tree -> Ppfx_xml.Printer.to_string tree)
       gen_fig1_doc)
    (fun tree ->
      let doc = Doc.of_tree tree in
      let instance = Loader.shred (fig1_schema ()) doc in
      let translator = Translate.create instance.Loader.mapping in
      List.for_all
        (fun query ->
          let expr = Xparser.parse query in
          let expected = Eval.select_elements doc expr in
          let got =
            match Translate.translate translator expr with
            | None -> []
            | Some stmt -> Translate.result_ids (Engine.run instance.Loader.db stmt)
          in
          if got <> expected then
            QCheck.Test.fail_reportf "query %s on %s: expected [%s], got [%s]" query
              (Ppfx_xml.Printer.to_string tree)
              (String.concat ";" (List.map string_of_int expected))
              (String.concat ";" (List.map string_of_int got))
          else true)
        random_doc_query_panel)

let () =
  let tc (name, f) = Alcotest.test_case name `Quick f in
  Alcotest.run "translate"
    [
      "regex-generation", List.map tc regex_gen_tests;
      ( "differential",
        List.map (fun q -> Alcotest.test_case q `Quick (fig1_query q)) fig1_queries );
      "ablations", List.map tc ablation_tests;
      "golden", List.map tc golden_tests;
      "unsupported", List.map tc unsupported_tests;
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_translator_vs_eval; prop_random_documents ] );
    ]

test/test_workloads.ml: Alcotest Lazy List Ppfx_schema Ppfx_workloads Ppfx_xml Ppfx_xpath Printexc

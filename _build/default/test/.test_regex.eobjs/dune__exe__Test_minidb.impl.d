test/test_minidb.ml: Alcotest Array Filename Fun Hashtbl List Option Ppfx_minidb Printf QCheck QCheck_alcotest String Sys

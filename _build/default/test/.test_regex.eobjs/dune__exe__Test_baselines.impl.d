test/test_baselines.ml: Alcotest Lazy List Ppfx_baselines Ppfx_minidb Ppfx_schema Ppfx_shred Ppfx_xml Ppfx_xpath QCheck QCheck_alcotest String

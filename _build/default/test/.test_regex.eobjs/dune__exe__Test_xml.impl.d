test/test_xml.ml: Alcotest Array Buffer Format List Ppfx_dewey Ppfx_xml Printf QCheck QCheck_alcotest String Unix

test/test_dewey.ml: Alcotest Array Gen List Ppfx_dewey Printf QCheck QCheck_alcotest String

test/test_sql_parser.ml: Alcotest List Ppfx_minidb Ppfx_schema Ppfx_shred Ppfx_translate Ppfx_xml Ppfx_xpath

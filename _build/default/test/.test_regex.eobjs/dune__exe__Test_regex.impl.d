test/test_regex.ml: Alcotest Char List Ppfx_regex Printf QCheck QCheck_alcotest String

test/test_edge_translate.mli:

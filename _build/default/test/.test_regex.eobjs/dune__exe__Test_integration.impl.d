test/test_integration.ml: Alcotest Int Lazy List Ppfx_baselines Ppfx_minidb Ppfx_schema Ppfx_shred Ppfx_translate Ppfx_workloads Ppfx_xml Ppfx_xpath QCheck QCheck_alcotest String

test/test_translate.ml: Alcotest Lazy List Ppfx_minidb Ppfx_schema Ppfx_shred Ppfx_translate Ppfx_xml Ppfx_xpath QCheck QCheck_alcotest String

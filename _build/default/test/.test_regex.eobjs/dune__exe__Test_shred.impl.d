test/test_shred.ml: Alcotest Array List Ppfx_dewey Ppfx_minidb Ppfx_schema Ppfx_shred Ppfx_xml QCheck QCheck_alcotest

test/test_xpath.ml: Alcotest Lazy List Ppfx_xml Ppfx_xpath Printf QCheck QCheck_alcotest

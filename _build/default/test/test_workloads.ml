(* Tests for the workload generators: determinism, schema conformance,
   and the structural guarantees the benchmark queries rely on. *)

module Doc = Ppfx_xml.Doc
module Graph = Ppfx_schema.Graph
module Eval = Ppfx_xpath.Eval
module Xparser = Ppfx_xpath.Parser
module Xmark = Ppfx_workloads.Xmark
module Dblp = Ppfx_workloads.Dblp
module Prng = Ppfx_workloads.Prng

let xmark_doc = lazy (Doc.of_tree (Xmark.generate ~items_per_region:4 ()))

let dblp_doc = lazy (Doc.of_tree (Dblp.generate ~entries:60 ()))

let count doc q = List.length (Eval.select_elements doc (Xparser.parse q))

let prng_tests =
  [
    ( "deterministic",
      fun () ->
        let a = Prng.create 1 and b = Prng.create 1 in
        for _ = 1 to 100 do
          Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
        done );
    ( "bounds respected",
      fun () ->
        let r = Prng.create 99 in
        for _ = 1 to 1000 do
          let v = Prng.int r 7 in
          if v < 0 || v >= 7 then Alcotest.failf "out of bounds: %d" v
        done );
    ( "different seeds differ",
      fun () ->
        let a = Prng.create 1 and b = Prng.create 2 in
        let va = List.init 10 (fun _ -> Prng.int a 1000000) in
        let vb = List.init 10 (fun _ -> Prng.int b 1000000) in
        Alcotest.(check bool) "streams differ" true (va <> vb) );
  ]

let xmark_tests =
  [
    ( "generation is deterministic",
      fun () ->
        let a = Xmark.generate ~items_per_region:3 () in
        let b = Xmark.generate ~items_per_region:3 () in
        Alcotest.(check bool) "equal trees" true (Ppfx_xml.Tree.equal a b) );
    ( "document conforms to the schema",
      fun () ->
        let doc = Lazy.force xmark_doc in
        match Graph.matches_doc (Xmark.schema ()) doc with
        | Ok () -> ()
        | Error m -> Alcotest.fail m );
    ( "expected item count",
      fun () ->
        let doc = Lazy.force xmark_doc in
        Alcotest.(check int) "Q1 counts items" 24 (count doc "/site/regions/*/item") );
    ( "guarantees for the benchmark queries",
      fun () ->
        let doc = Lazy.force xmark_doc in
        (* item0 exists, is featured, and its description has keywords. *)
        Alcotest.(check int) "item0" 1 (count doc "//item[@id='item0']");
        Alcotest.(check bool) "item0 keywords" true
          (count doc "/site/regions/*/item[@id='item0']/description//keyword" > 0);
        (* open_auction0 has bidders; person0 precedes person1. *)
        Alcotest.(check bool) "Q9 nonempty" true
          (count doc (Xmark.query "Q9") > 0);
        Alcotest.(check bool) "Q11 nonempty" true (count doc (Xmark.query "Q11") > 0);
        (* Q-A join predicate matches some auction. *)
        Alcotest.(check bool) "QA nonempty" true (count doc (Xmark.query "QA") > 0);
        (* Recursive mark-up exists (listitem under listitem somewhere, or
           at least keywords under listitems for Q4/Q6). *)
        Alcotest.(check bool) "keywords under listitems" true
          (count doc "//listitem//keyword" > 0) );
    ( "all benchmark queries parse and run",
      fun () ->
        let doc = Lazy.force xmark_doc in
        List.iter
          (fun (name, q) ->
            match Eval.select_elements doc (Xparser.parse q) with
            | _ -> ()
            | exception e ->
              Alcotest.failf "%s failed: %s" name (Printexc.to_string e))
          Xmark.queries );
    ( "scaling grows the document",
      fun () ->
        let small = Doc.size (Doc.of_tree (Xmark.generate ~items_per_region:2 ())) in
        let large = Doc.size (Doc.of_tree (Xmark.generate ~items_per_region:8 ())) in
        Alcotest.(check bool) "monotone" true (large > 3 * small) );
  ]

let dblp_tests =
  [
    ( "generation is deterministic",
      fun () ->
        let a = Dblp.generate ~entries:20 () in
        let b = Dblp.generate ~entries:20 () in
        Alcotest.(check bool) "equal trees" true (Ppfx_xml.Tree.equal a b) );
    ( "inferred schema validates",
      fun () ->
        let doc = Lazy.force dblp_doc in
        match Graph.matches_doc (Dblp.schema_of doc) doc with
        | Ok () -> ()
        | Error m -> Alcotest.fail m );
    ( "markup is recursive (I-P vertices exist)",
      fun () ->
        let doc = Lazy.force dblp_doc in
        let schema = Dblp.schema_of doc in
        let recursive =
          List.exists
            (fun d -> Graph.classification schema d = Graph.Infinite_paths)
            (Graph.defs schema)
        in
        Alcotest.(check bool) "has I-P" true recursive );
    ( "QD guarantees",
      fun () ->
        let doc = Lazy.force dblp_doc in
        Alcotest.(check bool) "QD1 nonempty" true (count doc (Dblp.query "QD1") > 0);
        Alcotest.(check bool) "QD2 nonempty" true (count doc (Dblp.query "QD2") > 0);
        Alcotest.(check bool) "QD4 nonempty" true (count doc (Dblp.query "QD4") > 0);
        Alcotest.(check bool) "QD5 nonempty" true (count doc (Dblp.query "QD5") > 0) );
    ( "all QD queries parse and run",
      fun () ->
        let doc = Lazy.force dblp_doc in
        List.iter
          (fun (name, q) ->
            match Eval.select_elements doc (Xparser.parse q) with
            | _ -> ()
            | exception e ->
              Alcotest.failf "%s failed: %s" name (Printexc.to_string e))
          Dblp.queries );
  ]

let () =
  let tc (name, f) = Alcotest.test_case name `Quick f in
  Alcotest.run "workloads"
    [
      "prng", List.map tc prng_tests;
      "xmark", List.map tc xmark_tests;
      "dblp", List.map tc dblp_tests;
    ]

(* Tests for the XPath parser, printer and the reference evaluator. *)

module Ast = Ppfx_xpath.Ast
module Parser = Ppfx_xpath.Parser
module Eval = Ppfx_xpath.Eval
module Doc = Ppfx_xml.Doc
module Xml_parser = Ppfx_xml.Parser

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let parses_to src expected () =
  let e = Parser.parse src in
  let printed = Ast.to_string e in
  Alcotest.(check string) (Printf.sprintf "parse %s" src) expected printed

let roundtrips src () =
  let e = Parser.parse src in
  let printed = Ast.to_string e in
  let e2 = Parser.parse printed in
  if not (Ast.equal_expr e e2) then
    Alcotest.failf "round-trip changed %s -> %s" src printed

let parser_tests =
  [
    "absolute child path", parses_to "/a/b/c" "/a/b/c";
    "descendant abbreviation", parses_to "//b" "/descendant::b";
    "inner descendant", parses_to "/a//b" "/a/descendant::b";
    "wildcard", parses_to "/a/*/c" "/a/*/c";
    "attribute", parses_to "/a/@id" "/a/@id";
    "attribute wildcard", parses_to "/a/@*" "/a/@*";
    "explicit axes", roundtrips "/descendant-or-self::listitem/descendant-or-self::keyword";
    "parent abbreviation", parses_to "/a/.." "/a/..";
    "self abbreviation", parses_to "/a/." "/a/.";
    "text test", parses_to "/a/text()" "/a/text()";
    "node test", parses_to "/a/node()" "/a/node()";
    "predicate existence", parses_to "/a[b]" "/a[b]";
    "predicate comparison", parses_to "/a[b = 2]" "/a[b = 2]";
    "predicate attr string", parses_to "/a[@id = 'x1']" "/a[@id = 'x1']";
    "nested predicates", roundtrips "/a[b[c]]";
    "and or precedence", parses_to "/a[b and c or d]" "/a[b and c or d]";
    "not function", parses_to "/a[not(b)]" "/a[not(b)]";
    "count function", parses_to "/a[count(b) > 2]" "/a[count(b) > 2]";
    "position predicate", parses_to "/a[position() = 2]" "/a[position() = 2]";
    "numeric predicate", parses_to "/a[2]" "/a[2]";
    "union", parses_to "/a/b | /a/c" "/a/b | /a/c";
    "arithmetic", parses_to "/a[b + 1 < 5]" "/a[b + 1 < 5]";
    "multiplication vs wildcard", parses_to "/a[b * 2 = 4]" "/a[b * 2 = 4]";
    "div and mod words", roundtrips "/a[b div 2 = 1 and c mod 2 = 0]";
    "element named not", parses_to "/not/x" "/not/x";
    "order axes", roundtrips "/a/following-sibling::b/preceding::c";
    "relative path", parses_to "b/c" "b/c";
    "ne operator", parses_to "/a[b != 'x']" "/a[b != 'x']";
    "paper example", parses_to "/A/*[C//F = 2]" "/A/*[C/descendant::F = 2]";
    "comparison of two paths", roundtrips "/site/open_auctions/open_auction[bidder/date = interval/start]";
    "contains function", parses_to "/a[contains(., 'x')]" "/a[contains(., 'x')]";
    "starts-with function", roundtrips "/a[starts-with(@id, 'item')]";
    "string-length function", roundtrips "/a[string-length(.) > 3]";
  ]

let parser_error_tests =
  let expect_error src () =
    match Parser.parse src with
    | _ -> Alcotest.failf "expected parse error for %S" src
    | exception Parser.Error _ -> ()
  in
  [
    "empty", expect_error "";
    "trailing junk", expect_error "/a/b)";
    "unterminated predicate", expect_error "/a[b";
    "unterminated literal", expect_error "/a[b = 'x]";
    "bad axis", expect_error "/a/sideways::b";
    "missing step", expect_error "/a/";
    "double colon without axis", expect_error "/::b";
  ]

(* ------------------------------------------------------------------ *)
(* Evaluator                                                           *)
(* ------------------------------------------------------------------ *)

(* The paper's Figure 1 document, with attribute x on A and values in F. *)
let fig1 =
  lazy
    (Doc.of_tree
       (Xml_parser.parse
          "<A x=\"3\"><B><C><D/></C><C><E><F>1</F><F>2</F></E></C><G/></B><B><G><G/></G></B></A>"))

let ids src expected () =
  let doc = Lazy.force fig1 in
  let got = Eval.select_elements doc (Parser.parse src) in
  Alcotest.(check (list int)) src expected got

let eval_tests =
  [
    "root", ids "/A" [ 1 ];
    "child chain", ids "/A/B/C" [ 3; 5 ];
    "child chain deep", ids "/A/B/C/D" [ 4 ];
    "descendant", ids "//F" [ 7; 8 ];
    "descendant from inner", ids "/A/B//G" [ 9; 11; 12 ];
    "wildcard", ids "/A/B/*" [ 3; 5; 9; 11 ];
    "wildcard then named", ids "/A/B/C/*/F" [ 7; 8 ];
    "self axis", ids "/A/." [ 1 ];
    "parent", ids "/A/B/C/.." [ 2 ];
    "parent named", ids "//F/parent::E" [ 6 ];
    "ancestor", ids "//F/ancestor::B" [ 2 ];
    "ancestor-or-self", ids "//G/ancestor-or-self::G" [ 9; 11; 12 ];
    "following", ids "/A/B/C/D/following::F" [ 7; 8 ];
    "following-sibling", ids "/A/B/C/following-sibling::G" [ 9 ];
    "preceding", ids "//G/preceding::D" [ 4 ];
    "preceding-sibling", ids "/A/B/C[2]/preceding-sibling::C" [ 3 ];
    "descendant-or-self explicit", ids "/descendant-or-self::G" [ 9; 11; 12 ];
    "predicate exists", ids "/A/B/C[E]" [ 5 ];
    "predicate value", ids "/A/B/C[E/F = 2]" [ 5 ];
    "predicate value num vs text", ids "//F[. = 1]" [ 7 ];
    "attribute predicate", ids "/A[@x = 3]" [ 1 ];
    "attribute predicate string", ids "/A[@x = '3']" [ 1 ];
    "attribute missing", ids "/A[@y]" [];
    "attribute exists", ids "//*[@x]" [ 1 ];
    "numeric position", ids "/A/B/C[2]" [ 5 ];
    "position function", ids "/A/B/C[position() = 1]" [ 3 ];
    "last function", ids "/A/B/*[position() = last()]" [ 9; 11 ];
    "not function", ids "/A/B/C[not(D)]" [ 5 ];
    "count function", ids "/A/B/C[count(E/F) = 2]" [ 5 ];
    "union", ids "/A/B/C/D | //F" [ 4; 7; 8 ];
    "union dedupe", ids "//G | /A/B/G" [ 9; 11; 12 ];
    "nested predicate", ids "/A/B[C[E]]" [ 2 ];
    "or predicate", ids "/A/B/C[D or E]" [ 3; 5 ];
    "and predicate", ids "/A/B/C[D and E]" [];
    "backward predicate", ids "//F[parent::E]" [ 7; 8 ];
    "backward predicate ancestor", ids "//G[ancestor::G]" [ 12 ];
    "path comparison join", ids "/A/B[C/E/F = C/E/F]" [ 2 ];
    "arithmetic predicate", ids "//F[. + 1 = 3]" [ 8 ];
    "text step", ids "/A/B/C/E/F/text()" [ 7; 8 ];
    "relative from root context", ids "A/B/G" [ 9; 11 ];
    "contains on text", ids "//F[contains(., '1')]" [ 7 ];
    "contains miss", ids "//F[contains(., 'z')]" [];
    "contains empty pattern", ids "//F[contains(., '')]" [ 7; 8 ];
    "contains on missing attr is empty-string", ids "/A[contains(@nope, '')]" [ 1 ];
    "starts-with", ids "//F[starts-with(., '2')]" [ 8 ];
    "starts-with miss", ids "//F[starts-with(., 'x')]" [];
    "string-length", ids "//F[string-length(.) = 1]" [ 7; 8 ];
    "string-length attr", ids "/A[string-length(@x) = 1]" [ 1 ];
    (* positional predicates on reverse axes count in reverse document
       order (nearest first) *)
    "nearest ancestor", ids "//F/ancestor::*[1]" [ 6 ];
    "second ancestor", ids "//F/ancestor::*[2]" [ 5 ];
    "nearest preceding sibling", ids "/A/B/G/preceding-sibling::*[1]" [ 5 ];
    "farthest preceding sibling", ids "/A/B/G/preceding-sibling::*[2]" [ 3 ];
    "positional on forward axis", ids "/A/B[1]/C[1]/D" [ 4 ];
    "position and value predicate combined", ids "//C[1][D]" [ 3 ];
    "predicate sequencing", ids "/A/B/C[D][1]" [ 3 ];
    "predicate sequencing other order", ids "/A/B/C[1][D]" [ 3 ];
    "last on reverse axis", ids "//F/ancestor::*[last()]" [ 1 ];
  ]

let value_tests =
  [
    ( "count at top level",
      fun () ->
        let doc = Lazy.force fig1 in
        match Eval.eval doc (Parser.parse "count(//F)") with
        | Eval.Num f -> Alcotest.(check (float 0.0)) "count" 2.0 f
        | _ -> Alcotest.fail "expected number" );
    ( "boolean result",
      fun () ->
        let doc = Lazy.force fig1 in
        match Eval.eval doc (Parser.parse "not(//Z)") with
        | Eval.Bool true -> ()
        | _ -> Alcotest.fail "expected true" );
    ( "string value of text node",
      fun () ->
        let doc = Lazy.force fig1 in
        match Eval.select doc (Parser.parse "//F[1]/text()") with
        | [ item ] -> Alcotest.(check string) "text" "1" (Eval.string_value doc item)
        | l -> Alcotest.failf "expected one item, got %d" (List.length l) );
    ( "attribute node string value",
      fun () ->
        let doc = Lazy.force fig1 in
        match Eval.select doc (Parser.parse "/A/@x") with
        | [ item ] -> Alcotest.(check string) "attr" "3" (Eval.string_value doc item)
        | l -> Alcotest.failf "expected one item, got %d" (List.length l) );
    ( "existential comparison over node sets",
      fun () ->
        let doc = Lazy.force fig1 in
        (* some F equals some F (trivially true), and no F equals 3 *)
        (match Eval.eval doc (Parser.parse "//F = //F") with
         | Eval.Bool true -> ()
         | _ -> Alcotest.fail "expected true");
        match Eval.eval doc (Parser.parse "//F = 3") with
        | Eval.Bool false -> ()
        | _ -> Alcotest.fail "expected false" );
    ( "document order of mixed results",
      fun () ->
        let doc = Lazy.force fig1 in
        let items = Eval.select doc (Parser.parse "//E | //F") in
        let sorted = List.sort Eval.compare_items items in
        Alcotest.(check bool) "sorted" true (items = sorted) );
  ]

(* ------------------------------------------------------------------ *)
(* Random AST print/parse round-trip                                   *)
(* ------------------------------------------------------------------ *)

(* A generator over the full AST (all axes, node tests, nested
   predicates, operators, functions). The property pins the printer and
   parser to each other: parse (to_string e) must be structurally equal
   to e, which exercises precedence/parenthesisation and every
   abbreviation rule. *)
let gen_ast : Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let name = oneofl [ "a"; "b"; "cd"; "x-y"; "n2" ] in
  let axis =
    oneofl
      [
        Ast.Child; Ast.Descendant; Ast.Descendant_or_self; Ast.Self; Ast.Parent;
        Ast.Ancestor; Ast.Ancestor_or_self; Ast.Following; Ast.Following_sibling;
        Ast.Preceding; Ast.Preceding_sibling;
      ]
  in
  let test =
    oneof
      [
        map (fun n -> Ast.Name n) name;
        return Ast.Wildcard;
        return Ast.Text;
        return Ast.Any_node;
      ]
  in
  let literal = map (fun n -> Ast.Literal n) (oneofl [ "x"; "hello world"; "" ]) in
  let number = map (fun i -> Ast.Number (float_of_int i)) (int_bound 99) in
  let cmp = oneofl [ Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ] in
  let arith = oneofl [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod ] in
  let rec expr n =
    if n <= 0 then oneof [ literal; number; map (fun p -> Ast.Path p) (path 0) ]
    else
      frequency
        [
          3, map (fun p -> Ast.Path p) (path (n - 1));
          1, map2 (fun a b -> Ast.Union (a, b)) (path_expr (n / 2)) (path_expr (n / 2));
          2, map3 (fun o a b -> Ast.Binop (o, a, b)) cmp (expr (n / 2)) (expr (n / 2));
          1, map3 (fun o a b -> Ast.Binop (o, a, b)) arith (expr (n / 2)) (expr (n / 2));
          1, map2 (fun a b -> Ast.Binop (Ast.And, a, b)) (expr (n / 2)) (expr (n / 2));
          1, map2 (fun a b -> Ast.Binop (Ast.Or, a, b)) (expr (n / 2)) (expr (n / 2));
          1, map (fun a -> Ast.Fn_not a) (expr (n - 1));
          1, map (fun a -> Ast.Fn_count a) (expr (n - 1));
          1, return Ast.Fn_position;
          1, return Ast.Fn_last;
          1, map2 (fun a b -> Ast.Fn_contains (a, b)) (expr (n / 2)) literal;
          1, map2 (fun a b -> Ast.Fn_starts_with (a, b)) (expr (n / 2)) literal;
          1, map (fun a -> Ast.Fn_string_length a) (expr (n - 1));
        ]
  and path_expr n = map (fun p -> Ast.Path p) (path n)
  and path n =
    map2
      (fun absolute steps -> { Ast.absolute; steps })
      bool
      (list_size (int_range 1 4) (step n))
  and step n =
    map3
      (fun axis test predicates -> { Ast.axis; test; predicates })
      axis test
      (if n <= 0 then return [] else list_size (int_bound 2) (expr (n / 2)))
  in
  expr 3

(* The printer abbreviates some steps; the parser reads the abbreviation
   back into the same AST except for two canonical rewrites it applies:
   it never produces Self/Descendant_or_self etc. from abbreviations
   (those only come from explicit syntax, which the printer emits for
   them), so plain structural equality should hold. *)
let prop_ast_roundtrip =
  QCheck.Test.make ~count:2000 ~name:"AST print/parse round-trip"
    (QCheck.make ~print:Ast.to_string gen_ast)
    (fun e ->
      let printed = Ast.to_string e in
      match Parser.parse printed with
      | exception Parser.Error { position; message } ->
        QCheck.Test.fail_reportf "printed %S does not reparse (%d: %s)" printed position
          message
      | e2 ->
        if Ast.equal_expr e e2 then true
        else
          QCheck.Test.fail_reportf "round-trip changed %S -> %S" printed (Ast.to_string e2))

let () =
  let tc (name, f) = Alcotest.test_case name `Quick f in
  Alcotest.run "xpath"
    [
      "parser", List.map tc parser_tests;
      "parser-errors", List.map tc parser_error_tests;
      "eval", List.map tc eval_tests;
      "eval-values", List.map tc value_tests;
      "properties", [ QCheck_alcotest.to_alcotest prop_ast_roundtrip ];
    ]

module Value = Ppfx_minidb.Value

type t = { columns : string array; values : Value.t array }

exception No_column of string

exception Conversion of { column : string; expected : string; actual : string }

let create ~columns values = { columns = Array.of_list columns; values }

let columns t = Array.to_list t.columns

let width t = Array.length t.values

let value_at t i = t.values.(i)

let index t name =
  let n = Array.length t.columns in
  let rec go i = if i >= n then raise (No_column name) else if t.columns.(i) = name then i else go (i + 1) in
  go 0

let value t name = t.values.(index t name)

let actual_of = function
  | Value.Null -> "null"
  | Value.Int _ -> "int"
  | Value.Float _ -> "float"
  | Value.Str _ -> "text"
  | Value.Bin _ -> "bin"

let conv column expected v = raise (Conversion { column; expected; actual = actual_of v })

let opt ~expected ~of_value t name =
  match value t name with
  | Value.Null -> None
  | v ->
    (match of_value v with
     | Some x -> Some x
     | None -> conv name expected v)

let exn ~expected ~of_value t name =
  match value t name with
  | Value.Null as v -> conv name expected v
  | v ->
    (match of_value v with
     | Some x -> x
     | None -> conv name expected v)

let int_of = function Value.Int n -> Some n | _ -> None

let float_of = function
  | Value.Int n -> Some (float_of_int n)
  | Value.Float f -> Some f
  | _ -> None

let bin_of = function Value.Bin s | Value.Str s -> Some s | _ -> None

let int t name = opt ~expected:"int" ~of_value:int_of t name
let int_exn t name = exn ~expected:"int" ~of_value:int_of t name
let float t name = opt ~expected:"float" ~of_value:float_of t name
let float_exn t name = exn ~expected:"float" ~of_value:float_of t name
let text t name = opt ~expected:"text" ~of_value:Value.text t name
let text_exn t name = exn ~expected:"text" ~of_value:Value.text t name
let bin t name = opt ~expected:"bin" ~of_value:bin_of t name
let bin_exn t name = exn ~expected:"bin" ~of_value:bin_of t name

let to_alist t =
  List.init (Array.length t.values) (fun i ->
      let name = if i < Array.length t.columns then t.columns.(i) else string_of_int i in
      (name, Value.to_string t.values.(i)))

(** A bounded pool of {!Client} connections with retrying connects.

    Connections are opened lazily up to [size]; {!with_conn} checks one
    out (blocking while all are busy) and returns it afterwards. A
    connection that fails with a transport error ([Protocol_error],
    [Unix_error], [Codec]) is discarded — the pool reopens a fresh one
    on a later checkout — while {!Client.Server_error} (a query-level
    failure on a healthy connection) returns it to the pool. Safe to
    share across threads and domains.

    {b Retries.} Transient failures — connection refused/reset, timeouts,
    unreachable hosts, server admission rejections and shutdowns — are
    retried up to [retries] attempts with capped exponential backoff and
    multiplicative jitter; each attempt is bounded by [timeout]. When
    the attempts run out the pool raises the typed
    {!Retries_exhausted} carrying the count and the last underlying
    failure, instead of leaking whichever exception the final attempt
    happened to die with. Non-transient failures (protocol version
    mismatch, query errors, unresolvable names) are never retried. *)

exception Retries_exhausted of { attempts : int; last : exn }

type t

val create :
  ?size:int ->
  ?host:string ->
  ?client_name:string ->
  ?retries:int ->
  ?backoff:float ->
  ?max_backoff:float ->
  ?timeout:float ->
  port:int ->
  unit ->
  t
(** [size] defaults to 4; no connection is opened until first use.
    [retries] (default 3) is the total attempt budget per operation;
    [backoff] (default 0.05 s) the base delay, doubled per attempt and
    capped at [max_backoff] (default 1 s), each delay jittered into
    [0.5×, 1×); [timeout] bounds each connect and arms the socket
    send/receive timeouts ({!Client.connect}). *)

val size : t -> int

val with_conn : t -> (Client.t -> 'a) -> 'a
(** Run [f] on a checked-out connection. Opening the connection retries
    per the pool's policy ({!Retries_exhausted} when it runs out); [f]
    itself is {e not} retried — use {!with_retry} for idempotent work. *)

val with_retry : t -> (Client.t -> 'a) -> 'a
(** {!with_conn}, additionally retrying [f] itself on transient
    transport failures (each retry runs on a fresh connection — the
    broken one was discarded). Only safe for idempotent operations:
    queries yes, mutations no. *)

val run_ids : t -> string -> int list
(** {!Client.run_ids} on a pooled connection, retried per the policy
    (queries are idempotent). *)

val close : t -> unit
(** Close every idle connection and refuse further checkouts; safe to
    call while checkouts are outstanding (their connections close on
    return). *)

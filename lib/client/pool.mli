(** A bounded pool of {!Client} connections.

    Connections are opened lazily up to [size]; {!with_conn} checks one
    out (blocking while all are busy) and returns it afterwards. A
    connection that fails with a transport error ([Protocol_error],
    [Unix_error], [Codec]) is discarded — the pool reopens a fresh one
    on a later checkout — while {!Client.Server_error} (a query-level
    failure on a healthy connection) returns it to the pool. Safe to
    share across threads and domains. *)

type t

val create : ?size:int -> ?host:string -> ?client_name:string -> port:int -> unit -> t
(** [size] defaults to 4. No connection is opened until first use. *)

val size : t -> int

val with_conn : t -> (Client.t -> 'a) -> 'a

val run_ids : t -> string -> int list
(** {!Client.run_ids} on a pooled connection. *)

val close : t -> unit
(** Close every idle connection and refuse further checkouts; safe to
    call while checkouts are outstanding (their connections close on
    return). *)

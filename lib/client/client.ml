module Wire = Ppfx_net.Wire
module Engine = Ppfx_minidb.Engine
module Translate = Ppfx_translate.Translate

exception Server_error of { code : Wire.error_code; message : string }
exception Protocol_error of string

type t = {
  fd : Unix.file_descr;
  max_frame : int;
  mutable server_name : string;
  mutable server_shards : int;
  mutable closed : bool;
}

type stmt = {
  id : int;
  cols : Wire.column list;
  empty : bool;
  sql_text : string option;
}

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> raise (Protocol_error ("cannot resolve host " ^ host)))

let recv t =
  match Wire.recv_response ~max_frame:t.max_frame t.fd with
  | None -> raise (Protocol_error "connection closed by server")
  | Some resp -> resp
  | exception Wire.Codec e -> raise (Protocol_error (Wire.codec_error_to_string e))

let request t req =
  if t.closed then raise (Protocol_error "connection is closed");
  ignore (Wire.send_request t.fd req);
  match recv t with
  | Wire.Error { code; message } -> raise (Server_error { code; message })
  | Wire.Bye ->
    t.closed <- true;
    raise (Protocol_error "server closed the connection")
  | resp -> resp

let unexpected what = raise (Protocol_error ("unexpected response to " ^ what))

let connect ?(host = "127.0.0.1") ?(client_name = "ppfx-client")
    ?(max_frame = Wire.default_max_frame) ?timeout ~port () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     let addr = Unix.ADDR_INET (resolve host, port) in
     (match timeout with
      | None -> Unix.connect fd addr
      | Some dt ->
        (* Bounded connect: nonblocking connect + select, then the socket
           timeouts bound every later send/recv (a stalled server surfaces
           as EAGAIN, a transport error for the caller's retry policy). *)
        Unix.set_nonblock fd;
        (try Unix.connect fd addr with
         | Unix.Unix_error ((EINPROGRESS | EWOULDBLOCK | EAGAIN), _, _) ->
           (match Unix.select [] [ fd ] [] dt with
            | _, [], _ ->
              raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", host))
            | _ ->
              (match Unix.getsockopt_error fd with
               | Some err -> raise (Unix.Unix_error (err, "connect", host))
               | None -> ())));
        Unix.clear_nonblock fd;
        (try
           Unix.setsockopt_float fd Unix.SO_RCVTIMEO dt;
           Unix.setsockopt_float fd Unix.SO_SNDTIMEO dt
         with Unix.Unix_error _ -> ()));
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let t = { fd; max_frame; server_name = ""; server_shards = 1; closed = false } in
  (try
     match
       request t (Wire.Hello { version = Wire.protocol_version; client = client_name })
     with
     | Wire.Welcome { version = _; server; shards } ->
       t.server_name <- server;
       t.server_shards <- shards
     | _ -> unexpected "Hello"
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  t

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try ignore (Wire.send_request t.fd Wire.Quit) with _ -> ());
    (* Read until Bye/EOF so the server sees an orderly shutdown. *)
    (try
       let rec drain () =
         match Wire.recv_response ~max_frame:t.max_frame t.fd with
         | Some Wire.Bye | None -> ()
         | Some _ -> drain ()
       in
       drain ()
     with _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let ping t = match request t Wire.Ping with Wire.Pong -> () | _ -> unexpected "Ping"

let server_name t = t.server_name
let server_shards t = t.server_shards

let prepare t query =
  match request t (Wire.Prepare { query }) with
  | Wire.Prepared { stmt; columns; empty; sql } ->
    { id = stmt; cols = columns; empty; sql_text = sql }
  | _ -> unexpected "Prepare"

let stmt_id s = s.id
let columns s = s.cols
let is_empty s = s.empty
let sql s = s.sql_text

let fetch_rows t ~first acc0 =
  let rec go req acc =
    match request t req with
    | Wire.Rows { stmt = _; rows; more } ->
      let acc = List.rev_append rows acc in
      if more then go (next_fetch req) acc else List.rev acc
    | _ -> unexpected "Execute/Fetch"
  and next_fetch = function
    | Wire.Execute { stmt; window } | Wire.Fetch { stmt; window } ->
      Wire.Fetch { stmt; window }
    | _ -> assert false
  in
  go first acc0

let execute_result ?(window = 0) t s =
  let columns = List.map (fun c -> c.Wire.name) s.cols in
  if s.empty then { Engine.columns = []; rows = [] }
  else
    let rows = fetch_rows t ~first:(Wire.Execute { stmt = s.id; window }) [] in
    { Engine.columns; rows }

let execute ?window t s =
  let r = execute_result ?window t s in
  let names = List.map (fun c -> c.Wire.name) s.cols in
  List.map (Row.create ~columns:names) r.Engine.rows

let close_stmt t s =
  match request t (Wire.Close_stmt { stmt = s.id }) with
  | Wire.Closed _ -> ()
  | _ -> unexpected "Close_stmt"

let run ?window t query =
  let s = prepare t query in
  Fun.protect
    ~finally:(fun () -> try close_stmt t s with _ -> ())
    (fun () -> execute ?window t s)

let run_result ?window t query =
  let s = prepare t query in
  Fun.protect
    ~finally:(fun () -> try close_stmt t s with _ -> ())
    (fun () -> execute_result ?window t s)

let run_ids t query = Translate.result_ids (run_result t query)

type update_outcome = {
  inserted : int;
  updated : int;
  deleted : int;
  new_paths : int;
  dead_paths : int;
}

let update t op =
  match request t (Wire.Update { op }) with
  | Wire.Updated { inserted; updated; deleted; new_paths; dead_paths } ->
    { inserted; updated; deleted; new_paths; dead_paths }
  | _ -> unexpected "Update"

let insert t ~parent ?before fragment =
  update t (Wire.Op_insert { parent; before; fragment })

let delete t ~target = update t (Wire.Op_delete { target })

let replace t ~target fragment = update t (Wire.Op_replace { target; fragment })

let set_attribute t ~target ~name value =
  update t (Wire.Op_set_attr { target; name; value })

let set_text t ~target text = update t (Wire.Op_set_text { target; text })

(** Blocking typed client for the ppfx wire protocol.

    One connection, one in-flight request: every call sends a frame and
    waits for the response. [execute]/[fetch_all] transparently walk the
    server's bounded fetch windows, so arbitrarily large results arrive
    in backpressured batches. Query-level failures ([Parse_error],
    [Unsupported], [Runtime], [Bad_statement], [Admission]) raise
    {!Server_error} and leave the connection usable; transport and
    framing failures raise {!Protocol_error} (or [Unix_error]) and mean
    the connection is dead. *)

module Wire = Ppfx_net.Wire
module Engine = Ppfx_minidb.Engine

exception Server_error of { code : Wire.error_code; message : string }
exception Protocol_error of string

type t

val connect :
  ?host:string ->
  ?client_name:string ->
  ?max_frame:int ->
  ?timeout:float ->
  port:int ->
  unit ->
  t
(** TCP connect plus [Hello]/[Welcome] handshake. Raises {!Server_error}
    when the server refuses admission or the protocol versions differ.
    [timeout] (seconds) bounds the connect itself (nonblocking +
    select; [ETIMEDOUT] on expiry) and arms the socket send/receive
    timeouts, so a stalled server surfaces as a [Unix_error] ([EAGAIN])
    instead of blocking forever. *)

val close : t -> unit
(** Best-effort [Quit]/[Bye], then close the socket. Idempotent. *)

val ping : t -> unit

val server_name : t -> string
val server_shards : t -> int
(** From the [Welcome] frame. *)

(** {2 Statements} *)

type stmt

val prepare : t -> string -> stmt
(** Compile an XPath query server-side; the statement handle carries the
    typed column metadata from the [Prepared] frame. *)

val stmt_id : stmt -> int
val columns : stmt -> Wire.column list
val is_empty : stmt -> bool
(** The schema proved the translation empty: [execute] returns no rows
    without touching the engine. *)

val sql : stmt -> string option
(** The translated SQL text, as reported by the server. *)

val execute : ?window:int -> t -> stmt -> Row.t list
(** Run the statement and fetch the whole result, [window] rows per
    round trip (0 = server default). *)

val execute_result : ?window:int -> t -> stmt -> Engine.result
(** Like {!execute} but as a raw {!Engine.result} (column names from the
    statement metadata) — the shape the in-process API returns, for
    byte-identical comparison. *)

val close_stmt : t -> stmt -> unit

(** {2 One-shot conveniences} *)

val run : ?window:int -> t -> string -> Row.t list
(** [prepare] + [execute] + [close_stmt]. *)

val run_result : ?window:int -> t -> string -> Engine.result

val run_ids : t -> string -> int list
(** [run] projected to sorted distinct element ids — the wire-protocol
    equivalent of {!Ppfx_service.Session.run_ids}. *)

(** {2 Mutations}

    The wire [Update] request: one subtree mutation per round trip.
    Invalid operations (unknown ids, non-conforming fragments) raise
    {!Server_error} with code [Runtime]; malformed fragment XML raises
    {!Server_error} with code [Parse_error]. The connection stays
    usable after either. *)

type update_outcome = {
  inserted : int;
  updated : int;
  deleted : int;
  new_paths : int;
  dead_paths : int;
}

val update : t -> Wire.update_op -> update_outcome

val insert : t -> parent:int -> ?before:int -> string -> update_outcome
(** Insert fragment XML under [parent], before child [before] (element
    id) or as the last child. *)

val delete : t -> target:int -> update_outcome

val replace : t -> target:int -> string -> update_outcome

val set_attribute : t -> target:int -> name:string -> string option -> update_outcome
(** [None] removes the attribute. *)

val set_text : t -> target:int -> string -> update_outcome

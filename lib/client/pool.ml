module Wire = Ppfx_net.Wire

exception Retries_exhausted of { attempts : int; last : exn }

let () =
  Printexc.register_printer (function
    | Retries_exhausted { attempts; last } ->
      Some
        (Printf.sprintf "Pool.Retries_exhausted (%d attempts, last: %s)"
           attempts (Printexc.to_string last))
    | _ -> None)

type t = {
  host : string;
  port : int;
  client_name : string;
  cap : int;
  retries : int;
  backoff : float;
  max_backoff : float;
  timeout : float option;
  rng : Random.State.t;  (* jitter; guarded by [lock] *)
  lock : Mutex.t;
  cond : Condition.t;
  mutable idle : Client.t list;
  mutable live : int;  (* connections existing (idle + checked out) *)
  mutable closed : bool;
}

let create ?(size = 4) ?(host = "127.0.0.1") ?(client_name = "ppfx-pool")
    ?(retries = 3) ?(backoff = 0.05) ?(max_backoff = 1.0) ?timeout ~port () =
  if size < 1 then invalid_arg "Pool.create: size must be >= 1";
  if retries < 1 then invalid_arg "Pool.create: retries must be >= 1";
  {
    host;
    port;
    client_name;
    cap = size;
    retries;
    backoff;
    max_backoff;
    timeout;
    rng = Random.State.make_self_init ();
    lock = Mutex.create ();
    cond = Condition.create ();
    idle = [];
    live = 0;
    closed = false;
  }

let size t = t.cap

(* A connection is fatally broken when the failure is at the transport
   level; server-reported query errors leave it reusable. *)
let broken = function
  | Client.Protocol_error _ | Unix.Unix_error _ | Ppfx_net.Wire.Codec _ -> true
  | _ -> false

(* Worth another attempt: the peer may come (back) up, the overload may
   clear. Anything else — version mismatch, query errors, resolver
   failure on a bad name — repeats identically, so it is not retried. *)
let transient = function
  | Unix.Unix_error
      ( ( ECONNREFUSED | ECONNRESET | ECONNABORTED | ETIMEDOUT | EHOSTUNREACH
        | ENETUNREACH | ENETDOWN | EPIPE | EAGAIN | EWOULDBLOCK | EINTR ),
        _,
        _ ) ->
    true
  | Client.Protocol_error _ -> true
  | Client.Server_error { code = Wire.Admission | Wire.Shutting_down; _ } ->
    true
  | _ -> false

(* Exponential backoff, capped, with multiplicative jitter in
   [0.5, 1.0) so simultaneous retriers spread out. *)
let backoff_delay t attempt =
  let d = Float.min t.max_backoff (t.backoff *. (2. ** float_of_int attempt)) in
  let jitter =
    Mutex.lock t.lock;
    let j = 0.5 +. Random.State.float t.rng 0.5 in
    Mutex.unlock t.lock;
    j
  in
  d *. jitter

let retrying t f =
  let rec attempt k =
    match f () with
    | v -> v
    | exception e when transient e ->
      if k + 1 >= t.retries then
        raise (Retries_exhausted { attempts = k + 1; last = e })
      else begin
        Unix.sleepf (backoff_delay t k);
        attempt (k + 1)
      end
  in
  attempt 0

let connect_fresh t =
  retrying t (fun () ->
      Client.connect ~host:t.host ~client_name:t.client_name ?timeout:t.timeout
        ~port:t.port ())

let checkout t =
  Mutex.lock t.lock;
  let rec go () =
    if t.closed then begin
      Mutex.unlock t.lock;
      invalid_arg "Pool.with_conn: pool is closed"
    end
    else
      match t.idle with
      | c :: rest ->
        t.idle <- rest;
        Mutex.unlock t.lock;
        c
      | [] ->
        if t.live < t.cap then begin
          t.live <- t.live + 1;
          Mutex.unlock t.lock;
          match connect_fresh t with
          | c -> c
          | exception e ->
            Mutex.lock t.lock;
            t.live <- t.live - 1;
            Condition.broadcast t.cond;
            Mutex.unlock t.lock;
            raise e
        end
        else begin
          Condition.wait t.cond t.lock;
          go ()
        end
  in
  go ()

let checkin t c ~discard =
  Mutex.lock t.lock;
  if discard || t.closed then begin
    t.live <- t.live - 1;
    Mutex.unlock t.lock;
    Client.close c;
    Mutex.lock t.lock
  end
  else t.idle <- c :: t.idle;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock

let with_conn t f =
  let c = checkout t in
  match f c with
  | v ->
    checkin t c ~discard:false;
    v
  | exception e ->
    checkin t c ~discard:(broken e);
    raise e

(* Retry the whole checkout + operation: a connection that died mid-use
   was discarded by [with_conn], so the next attempt runs on a fresh
   one. Only for idempotent operations. *)
let with_retry t f = retrying t (fun () -> with_conn t f)
(* connect-level exhaustion inside an attempt raises Retries_exhausted,
   which is not transient: it propagates immediately rather than
   multiplying the two retry loops. *)

let run_ids t query = with_retry t (fun c -> Client.run_ids c query)

let close t =
  Mutex.lock t.lock;
  t.closed <- true;
  let idle = t.idle in
  t.idle <- [];
  t.live <- t.live - List.length idle;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock;
  List.iter Client.close idle

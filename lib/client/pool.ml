type t = {
  host : string;
  port : int;
  client_name : string;
  cap : int;
  lock : Mutex.t;
  cond : Condition.t;
  mutable idle : Client.t list;
  mutable live : int;  (* connections existing (idle + checked out) *)
  mutable closed : bool;
}

let create ?(size = 4) ?(host = "127.0.0.1") ?(client_name = "ppfx-pool") ~port () =
  if size < 1 then invalid_arg "Pool.create: size must be >= 1";
  {
    host;
    port;
    client_name;
    cap = size;
    lock = Mutex.create ();
    cond = Condition.create ();
    idle = [];
    live = 0;
    closed = false;
  }

let size t = t.cap

(* A connection is fatally broken when the failure is at the transport
   level; server-reported query errors leave it reusable. *)
let broken = function
  | Client.Protocol_error _ | Unix.Unix_error _ | Ppfx_net.Wire.Codec _ -> true
  | _ -> false

let checkout t =
  Mutex.lock t.lock;
  let rec go () =
    if t.closed then begin
      Mutex.unlock t.lock;
      invalid_arg "Pool.with_conn: pool is closed"
    end
    else
      match t.idle with
      | c :: rest ->
        t.idle <- rest;
        Mutex.unlock t.lock;
        c
      | [] ->
        if t.live < t.cap then begin
          t.live <- t.live + 1;
          Mutex.unlock t.lock;
          match Client.connect ~host:t.host ~client_name:t.client_name ~port:t.port () with
          | c -> c
          | exception e ->
            Mutex.lock t.lock;
            t.live <- t.live - 1;
            Condition.broadcast t.cond;
            Mutex.unlock t.lock;
            raise e
        end
        else begin
          Condition.wait t.cond t.lock;
          go ()
        end
  in
  go ()

let checkin t c ~discard =
  Mutex.lock t.lock;
  if discard || t.closed then begin
    t.live <- t.live - 1;
    Mutex.unlock t.lock;
    Client.close c;
    Mutex.lock t.lock
  end
  else t.idle <- c :: t.idle;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock

let with_conn t f =
  let c = checkout t in
  match f c with
  | v ->
    checkin t c ~discard:false;
    v
  | exception e ->
    checkin t c ~discard:(broken e);
    raise e

let run_ids t query = with_conn t (fun c -> Client.run_ids c query)

let close t =
  Mutex.lock t.lock;
  t.closed <- true;
  let idle = t.idle in
  t.idle <- [];
  t.live <- t.live - List.length idle;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock;
  List.iter Client.close idle

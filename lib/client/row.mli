(** A result row accessible by column name, with typed conversion
    helpers (the [Row.int_exn] / [Row.text] idiom of native database
    client libraries). *)

module Value = Ppfx_minidb.Value

type t

exception No_column of string
(** The named column is not in the result. *)

exception Conversion of { column : string; expected : string; actual : string }
(** The column's value cannot be converted to the requested type (or,
    for the [_exn] accessors, is NULL). *)

val create : columns:string list -> Value.t array -> t
(** Pair a row of values with its column names. The column list is
    typically shared across all rows of a result. *)

val columns : t -> string list
val width : t -> int

val value : t -> string -> Value.t
(** Raw value by column name; raises {!No_column}. *)

val value_at : t -> int -> Value.t
(** Raw value by position. *)

(** {2 Typed accessors}

    The option-returning accessor yields [None] for NULL and raises
    {!Conversion} on a type mismatch; the [_exn] variant additionally
    raises {!Conversion} on NULL. *)

val int : t -> string -> int option
val int_exn : t -> string -> int

val float : t -> string -> float option
(** Accepts [Int] and [Float] values. *)

val float_exn : t -> string -> float

val text : t -> string -> string option
(** Any non-null value rendered as text: strings and binaries verbatim,
    numbers canonically (via {!Value.text}). *)

val text_exn : t -> string -> string

val bin : t -> string -> string option
(** Binary columns (e.g. [dewey_pos]); accepts [Bin] and [Str]. *)

val bin_exn : t -> string -> string

val to_alist : t -> (string * string) list
(** [(column, rendered value)] pairs, NULLs as ["NULL"]. *)

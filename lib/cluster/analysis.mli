(** Shard-safety analysis of translated statements.

    Under subtree partitioning ({!Partition}) all PPF forward/backward
    join shapes the translator emits — Dewey containment windows,
    parent/child foreign keys, sibling joins below the spine, path
    regexes, level pins — are shard-local, so a query can run on every
    shard independently and be k-way merged by Dewey position. Shapes
    that relate rows across subtree boundaries cannot: document-order
    comparisons ([following]/[preceding]), sibling joins on a boundary
    foreign key (children of a replicated spine element may be split
    across shards), uncorrelated EXISTS, and any counting ([count(...)]
    results or COUNT sub-queries, which would count per shard). For
    those, the verdict is {!Fallback} and the cluster runs the query on
    the unsharded store — answers stay exactly equal to single-store
    execution either way.

    One boundary-crossing family gets a middle road: a SELECT that fails
    only because two locally-joined alias groups are related by
    order-axis dewey comparisons or boundary sibling joins decomposes
    into two per-shard side selects plus a coordinator join over their
    merged streams ({!Order_partitionable}); see {!order_plan}. *)

module Sql = Ppfx_minidb.Sql

type order_side = {
  os_select : Sql.select;
      (** per-shard select for this alias group: DISTINCT, exports every
          column the coordinator needs under mangled names [c0..cn], and
          orders by the full export list (merge key first) so the k-way
          shard merge has a total key *)
  os_key : int;  (** projection index of the dewey merge key (always 0) *)
  os_cols : (string * string * string) list;
      (** per projection: (mangled name, source table, source column) —
          enough to resolve the coordinator temp-table schema *)
}

type order_plan = {
  op_left : order_side;
  op_right : order_side;
  op_coord : Sql.select;
      (** final select over [FROM lhs L, rhs R]: the boundary-crossing
          conjuncts plus the original projections/ORDER BY, rewritten to
          the mangled side columns *)
}

type verdict =
  | Partitionable
  | Order_partitionable of order_plan
      (** run each side per shard, merge per side, join at the coordinator *)
  | Fallback of string  (** human-readable reason, surfaced in metrics *)

val analyze : boundary_fks:string list -> Sql.statement -> verdict
(** [analyze ~boundary_fks stmt] walks the full boolean tree of every
    SELECT (including under OR/NOT and inside correlated EXISTS) and
    checks the statement projects a statement-wide Dewey ordering the
    merge can key on. [boundary_fks] are the foreign-key column names
    referencing spine relations ([<relation>_id] for every relation with
    a replicated instance — the cluster computes this from
    {!Partition.replicated}); equality on them is a sibling join whose
    siblings may straddle shards. *)

val merge_key : Sql.statement -> int option
(** 0-based projection index of the Dewey merge key: the single ORDER BY
    column of a SELECT, or the single order ordinal of a UNION. [None]
    when the statement has no such statement-wide ordering. *)

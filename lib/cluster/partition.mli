(** Subtree partitioning of one document across N shards.

    The unit of distribution is a frontier subtree: descending from the
    document root, any subtree larger than [size / (shards * 8)] is
    split — its root becomes a {e spine} element, replicated into every
    shard like the [Paths] relation — and the frontier continues into
    its children. Frontier subtrees are grouped in Dewey (document)
    order into contiguous, size-balanced ranges; the greedy boundary
    rule closes shard [s] once the cumulative element count crosses
    [total * (s+1) / shards].

    Because a shard holds whole frontier subtrees plus every spine
    ancestor, the PPF forward/backward joins of the translation — Dewey
    containment windows, parent/child foreign keys, path-regex filters —
    relate rows available in one shard and are therefore shard-local.
    Sibling joins {e under a spine element} are not (its children may be
    split across shards): {!replicated} feeds the analysis' boundary
    set. See DESIGN.md, "Subtree partitioning". *)

module Doc = Ppfx_xml.Doc

type t

val compute : ?current:int array -> shards:int -> Doc.t -> t
(** Partition a document. [shards >= 1] or [Invalid_argument]. Shards
    may end up empty when the document is too small to split.

    [current] (default all zeros, length [shards]) is the element count
    each shard already holds from earlier loads: the greedy grouping then
    balances the {e cumulative} totals, steering this document's frontier
    subtrees toward the lightest shards, so repeated loads do not drift.
    Without it every load splits proportionally in isolation, and any
    per-document rounding bias compounds. *)

val shards : t -> int

val counts : t -> int array
(** Stored elements per shard (excluding the replicated spine). *)

val replicated : t -> int list
(** Ids of the spine elements replicated into every shard (ascending;
    includes the document root whenever the document was split at
    all). *)

val keep : t -> shard:int -> Doc.element -> bool
(** The element filter for {!Ppfx_shred.Loader.load}'s [?keep]: true for
    spine elements (replicated) and for elements owned by [shard]. *)

module Engine = Ppfx_minidb.Engine
module Value = Ppfx_minidb.Value

(* K-way merge of per-shard results by the projected Dewey key.

   Every shard result is already Dewey-ordered (Analysis.merge_key
   guarantees the statement orders on a projected column), and Dewey
   positions are unique per element, so for translated statements the
   only key ties — and the only cross-shard duplicates — are rows of the
   replicated document root: byte-identical in every shard (top-level
   selects are DISTINCT, so each shard emits such a row at most once per
   distinct value). Key ties break on the whole row, which changes
   nothing there but makes the merge a total order for the order-axis
   side streams (Analysis.order_plan), where one alias's dewey can head
   several distinct rows: each side orders by its full projection list,
   so full-row tie-breaking keeps the merged stream sorted the same way
   and byte-identical duplicates adjacent. Dropping rows equal to the
   last emitted one then restores exactly the single-store output. *)

let compare_rows (a : Value.t array) (b : Value.t array) =
  let la = Array.length a and lb = Array.length b in
  let n = min la lb in
  let rec go i =
    if i = n then compare la lb
    else
      match Value.compare_total a.(i) b.(i) with
      | 0 -> go (i + 1)
      | c -> c
  in
  go 0

let merge ~key (results : Engine.result list) : Engine.result =
  match results with
  | [] -> invalid_arg "Merge.merge: no results"
  | first :: _ ->
    let heads = Array.of_list (List.map (fun r -> r.Engine.rows) results) in
    let n = Array.length heads in
    let out = ref [] in
    let last : Value.t array option ref = ref None in
    let exception Done in
    (try
       while true do
         (* Linear scan for the smallest head key: shard counts are small
            (<= 8 in practice), so a heap would not pay for itself. *)
         let best = ref (-1) in
         for i = n - 1 downto 0 do
           match heads.(i) with
           | [] -> ()
           | row :: _ ->
             if
               !best = -1
               ||
               let cur = List.hd heads.(!best) in
               (match Value.compare_total row.(key) cur.(key) with
                | 0 -> compare_rows row cur < 0
                | c -> c < 0)
             then best := i
         done;
         if !best = -1 then raise Done;
         let row, rest =
           match heads.(!best) with
           | row :: rest -> row, rest
           | [] -> assert false
         in
         heads.(!best) <- rest;
         (match !last with
          | Some prev when compare_rows prev row = 0 -> ()
          | _ ->
            out := row :: !out;
            last := Some row)
       done
     with Done -> ());
    { Engine.columns = first.Engine.columns; rows = List.rev !out }

module Sql = Ppfx_minidb.Sql

(* Static shard-safety analysis of a translated statement.

   The store is partitioned into frontier subtrees with the spine —
   every split element, root included — and the [Paths] relation
   replicated into every shard, so a join is shard-local exactly when
   every binding it accepts relates rows available in one shard. The
   translation emits a closed set of join shapes (translate.ml):

   - Dewey containment  [d BETWEEN a AND a || 0xFF]   — shard-local: the
     ancestor is in the same frontier subtree or a replicated spine row;
   - foreign-key joins  [child.fk = parent.id]        — the parent row is
     in the same subtree or replicated (spine, Paths);
   - sibling joins      [a.fk = b.fk, a.dewey > b.dewey] — local unless
     the common parent can be a spine element, whose children may be
     split across shards: those fk columns form the boundary set;
   - order joins        [d > a || 0xFF] (and mirrored) — compare Dewey
     positions of nodes in unrelated subtrees: never shard-local;
   - level pins, path regexes, value/ord comparisons  — row-local or
     riding on an already-local join.

   The analysis walks the full boolean tree (order conditions also occur
   under OR from predicate splitting), recurses into EXISTS, and treats
   any cross-alias comparison outside the known-local shapes as a
   fallback. Aggregation is also unsound per shard: COUNT sub-queries
   and top-level counts fall back, as does uncorrelated EXISTS (a global
   gate a shard cannot decide alone). A bare cross-alias Dewey
   comparison without the 0xFF sentinel is accepted: the translator only
   emits it alongside a sibling fk join or a recursive containment
   BETWEEN, either of which already pins both aliases to one subtree. *)

type order_side = {
  os_select : Sql.select;
  os_key : int;
  os_cols : (string * string * string) list;
}

type order_plan = {
  op_left : order_side;
  op_right : order_side;
  op_coord : Sql.select;
}

type verdict =
  | Partitionable
  | Order_partitionable of order_plan
  | Fallback of string

let dewey_column = "dewey_pos"

let is_dewey_col = function
  | Sql.Col (_, c) -> String.equal c dewey_column
  | _ -> false

let rec mentions_dewey = function
  | Sql.Col (_, c) -> String.equal c dewey_column
  | Sql.Const _ | Sql.Bool_const _ -> false
  | Sql.Concat (a, b) | Sql.Arith (_, a, b) -> mentions_dewey a || mentions_dewey b
  | Sql.To_number a | Sql.Length a | Sql.Not a | Sql.Is_not_null a -> mentions_dewey a
  | Sql.Cmp (_, a, b) | Sql.And (a, b) | Sql.Or (a, b) -> mentions_dewey a || mentions_dewey b
  | Sql.Between (a, b, c) -> mentions_dewey a || mentions_dewey b || mentions_dewey c
  | Sql.Regexp_like (a, _) -> mentions_dewey a
  | Sql.Exists _ | Sql.Count_subquery _ -> false

(* Whether the expression contains [dewey || _] — the sentinel upper end
   of a document-order comparison. *)
let rec has_dewey_concat = function
  | Sql.Concat (a, b) -> is_dewey_col a || has_dewey_concat a || has_dewey_concat b
  | Sql.Arith (_, a, b) -> has_dewey_concat a || has_dewey_concat b
  | Sql.To_number a | Sql.Length a -> has_dewey_concat a
  | Sql.Col _ | Sql.Const _ | Sql.Bool_const _ -> false
  | Sql.Cmp _ | Sql.Between _ | Sql.And _ | Sql.Or _ | Sql.Not _
  | Sql.Regexp_like _ | Sql.Exists _ | Sql.Count_subquery _ | Sql.Is_not_null _ ->
    false

let rec dewey_aliases acc = function
  | Sql.Col (a, c) -> if String.equal c dewey_column then a :: acc else acc
  | Sql.Const _ | Sql.Bool_const _ -> acc
  | Sql.Concat (a, b) | Sql.Arith (_, a, b) -> dewey_aliases (dewey_aliases acc a) b
  | Sql.To_number a | Sql.Length a -> dewey_aliases acc a
  | Sql.Cmp _ | Sql.Between _ | Sql.And _ | Sql.Or _ | Sql.Not _
  | Sql.Regexp_like _ | Sql.Exists _ | Sql.Count_subquery _ | Sql.Is_not_null _ ->
    acc

let is_fk_column c =
  let n = String.length c in
  n > 3 && String.equal (String.sub c (n - 3) 3) "_id"

exception Stop of string

let fail reason = raise (Stop reason)

let containment_between e lo hi =
  match lo, hi with
  | Sql.Col (x, c1), Sql.Concat (Sql.Col (y, c2), _) ->
    String.equal c1 dewey_column && String.equal c2 dewey_column && String.equal x y
    && is_dewey_col e
  | _ -> false

(* [neg] tracks boolean polarity: inside an odd number of NOTs. A
   positive fk join to a replicated spine parent is shard-local — the
   child row lives on exactly one shard next to one of the parent's
   replicas, and the Dewey merge dedups the replicas a spine projection
   emits. Under negation the same join is NOT shard-local: every shard
   missing the child sees the (replicated) outer row as unmatched, so a
   per-shard anti-join invents rows the single store rejects. *)
let rec check_expr ~bfks ~neg (e : Sql.expr) =
  match e with
  | Sql.Cmp (op, a, b) -> check_cmp ~bfks ~neg op a b
  | Sql.Between (e1, lo, hi) ->
    if containment_between e1 lo hi then ()
    else if mentions_dewey e1 || mentions_dewey lo || mentions_dewey hi then
      fail "non-containment dewey BETWEEN"
    else begin
      check_value ~bfks ~neg e1;
      check_value ~bfks ~neg lo;
      check_value ~bfks ~neg hi
    end
  | Sql.And (a, b) | Sql.Or (a, b) ->
    check_expr ~bfks ~neg a;
    check_expr ~bfks ~neg b
  | Sql.Not a -> check_expr ~bfks ~neg:(not neg) a
  | Sql.Exists sel ->
    if Sql.free_aliases (Sql.Exists sel) = [] then
      fail "uncorrelated EXISTS (checks a global property per shard)"
    else check_select ~bfks ~neg sel
  | Sql.Count_subquery _ -> fail "COUNT sub-query (counts rows per shard)"
  | Sql.Regexp_like (a, _) | Sql.Is_not_null a -> check_value ~bfks ~neg a
  | Sql.Bool_const _ -> ()
  | Sql.Col _ | Sql.Const _ | Sql.Concat _ | Sql.Arith _ | Sql.To_number _
  | Sql.Length _ ->
    check_value ~bfks ~neg e

and check_cmp ~bfks ~neg op a b =
  match a, b with
  | Sql.Col (x, ca), Sql.Col (y, cb) when not (String.equal x y) ->
    if String.equal ca dewey_column && String.equal cb dewey_column then
      (* Bare dewey comparison: the order refinement of a sibling or
         recursive-containment join; those joins pin both aliases. *)
      ()
    else if op <> Sql.Eq then fail "cross-alias non-equality comparison"
    else if String.equal ca "id" || String.equal cb "id" then begin
      (* Foreign-key join: the parent side is in the same frontier
         subtree or replicated (spine / Paths). Under negation a join to
         a replicated parent stops being shard-local — the anti-joined
         child exists on one shard while the parent's replicas on every
         other shard count as unmatched. *)
      let fk = if String.equal ca "id" then cb else ca in
      if neg && List.mem fk bfks then
        fail "negated join through a replicated spine parent (per-shard anti-join is unsound)"
    end
    else if List.mem ca bfks || List.mem cb bfks then
      fail "sibling join at a partition boundary (children of a spine element)"
    else if is_fk_column ca && is_fk_column cb then ()
    else fail "cross-alias comparison outside known shard-local shapes"
  | _ ->
    ignore op;
    if has_dewey_concat a || has_dewey_concat b then begin
      (* [d cmp a || 0xFF]: a document-order comparison. Local only when
         a single alias is involved. *)
      match List.sort_uniq compare (dewey_aliases (dewey_aliases [] a) b) with
      | [] | [ _ ] -> ()
      | _ :: _ :: _ -> fail "order-axis dewey comparison (following/preceding)"
    end
    else begin
      check_value ~bfks ~neg a;
      check_value ~bfks ~neg b
    end

and check_value ~bfks ~neg (e : Sql.expr) =
  match e with
  | Sql.Col _ | Sql.Const _ | Sql.Bool_const _ -> ()
  | Sql.Concat (a, b) | Sql.Arith (_, a, b) ->
    check_value ~bfks ~neg a;
    check_value ~bfks ~neg b
  | Sql.To_number a | Sql.Length a -> check_value ~bfks ~neg a
  | Sql.Count_subquery _ -> fail "COUNT sub-query (counts rows per shard)"
  | Sql.Cmp _ | Sql.Between _ | Sql.And _ | Sql.Or _ | Sql.Not _
  | Sql.Regexp_like _ | Sql.Exists _ | Sql.Is_not_null _ ->
    check_expr ~bfks ~neg e

and check_select ~bfks ~neg (sel : Sql.select) =
  (match sel.Sql.where with None -> () | Some w -> check_expr ~bfks ~neg w);
  List.iter (fun (e, _) -> check_value ~bfks ~neg e) sel.Sql.projections;
  List.iter (fun e -> check_value ~bfks ~neg e) sel.Sql.order_by

(* ---- Order-axis decomposition ------------------------------------

   A statement that fails the shard-locality check only because it
   relates two node sets across subtree boundaries — an order-axis dewey
   comparison, or a sibling join on a boundary fk — can still avoid the
   full single-store fallback: split the FROM aliases into the two
   locally-joined groups, run each group's select per shard (these pass
   the ordinary check), k-way merge each side on the coordinator, and
   evaluate only the boundary-crossing conjuncts there with a final
   two-table select over the merged streams.

   The split is a union-find over aliases: conjuncts that are themselves
   shard-local join shapes (containment BETWEEN, fk equality off the
   boundary set) or that contain sub-queries glue their aliases into one
   side. Exactly two components must remain; every remaining conjunct
   either falls wholly inside one side (side WHERE) or spans both
   (coordinator WHERE — must be sub-query-free). Each side exports, with
   mangled names [c0..cn], every column the cross conjuncts and the
   final projections/ORDER BY touch, leading with a dewey merge key, and
   orders by the full export list so the per-side shard merge has a
   total key even when one alias's dewey repeats across side rows.

   Soundness: sides are DISTINCT projections, so under the statement's
   own DISTINCT, filtering the product of the two side sets by the cross
   conjuncts and projecting yields exactly the single-store answer. *)

exception Give_up

let rec has_subquery = function
  | Sql.Exists _ | Sql.Count_subquery _ -> true
  | Sql.Col _ | Sql.Const _ | Sql.Bool_const _ -> false
  | Sql.Concat (a, b)
  | Sql.Arith (_, a, b)
  | Sql.Cmp (_, a, b)
  | Sql.And (a, b)
  | Sql.Or (a, b) ->
    has_subquery a || has_subquery b
  | Sql.To_number a | Sql.Length a | Sql.Not a | Sql.Is_not_null a ->
    has_subquery a
  | Sql.Between (a, b, c) -> has_subquery a || has_subquery b || has_subquery c
  | Sql.Regexp_like (a, _) -> has_subquery a

let rec cols_of acc = function
  | Sql.Col (a, c) -> (a, c) :: acc
  | Sql.Const _ | Sql.Bool_const _ -> acc
  | Sql.Concat (a, b)
  | Sql.Arith (_, a, b)
  | Sql.Cmp (_, a, b)
  | Sql.And (a, b)
  | Sql.Or (a, b) ->
    cols_of (cols_of acc a) b
  | Sql.To_number a | Sql.Length a | Sql.Not a | Sql.Is_not_null a ->
    cols_of acc a
  | Sql.Between (a, b, c) -> cols_of (cols_of (cols_of acc a) b) c
  | Sql.Regexp_like (a, _) -> cols_of acc a
  | Sql.Exists _ | Sql.Count_subquery _ -> raise Give_up

(* The conjunct shapes that pin their aliases to one frontier subtree
   (mirroring the acceptances in [check_cmp]); these force their aliases
   onto the same side. *)
let localizing_join ~bfks = function
  | Sql.Between (e, lo, hi) -> containment_between e lo hi
  | Sql.Cmp (Sql.Eq, Sql.Col (x, ca), Sql.Col (y, cb))
    when not (String.equal x y) ->
    if String.equal ca "id" || String.equal cb "id" then true
    else if List.mem ca bfks || List.mem cb bfks then false
    else is_fk_column ca && is_fk_column cb
  | _ -> false

let decompose ~bfks (sel : Sql.select) =
  try
    if not sel.Sql.distinct then raise Give_up;
    let aliases = List.map snd sel.Sql.from in
    if List.length aliases < 2 then raise Give_up;
    let final_key_alias =
      match sel.Sql.order_by with
      | [ Sql.Col (a, c) ] when String.equal c dewey_column && List.mem a aliases
        ->
        a
      | _ -> raise Give_up
    in
    (* union-find over FROM aliases *)
    let parent = Hashtbl.create 16 in
    List.iter (fun a -> Hashtbl.replace parent a a) aliases;
    let rec find a =
      match Hashtbl.find_opt parent a with
      | None -> raise Give_up
      | Some p ->
        if String.equal p a then a
        else begin
          let r = find p in
          Hashtbl.replace parent a r;
          r
        end
    in
    let union a b =
      let ra = find a and rb = find b in
      if not (String.equal ra rb) then Hashtbl.replace parent ra rb
    in
    let conjs =
      match sel.Sql.where with None -> [] | Some w -> Sql.conjuncts w
    in
    List.iter
      (fun c ->
        if has_subquery c || localizing_join ~bfks c then
          match Sql.free_aliases c with
          | [] -> ()
          | a :: rest -> List.iter (union a) rest)
      conjs;
    let roots = List.sort_uniq compare (List.map find aliases) in
    let left_root = find (List.hd aliases) in
    (match roots with
     | [ r1; r2 ] -> ignore r1; ignore r2
     | _ -> raise Give_up);
    let on_left a = String.equal (find a) left_root in
    (* conjunct assignment *)
    let lconjs = ref [] and rconjs = ref [] and cross = ref [] in
    List.iter
      (fun c ->
        match Sql.free_aliases c with
        | [] -> lconjs := c :: !lconjs
        | fa ->
          if List.for_all on_left fa then lconjs := c :: !lconjs
          else if List.for_all (fun a -> not (on_left a)) fa then
            rconjs := c :: !rconjs
          else if has_subquery c then raise Give_up
          else cross := c :: !cross)
      conjs;
    let cross = List.rev !cross in
    (* columns each side must export *)
    let exported =
      let acc = List.fold_left cols_of [] cross in
      let acc =
        List.fold_left (fun acc (e, _) -> cols_of acc e) acc sel.Sql.projections
      in
      let acc = List.fold_left cols_of acc sel.Sql.order_by in
      List.sort_uniq compare acc
    in
    List.iter
      (fun (a, _) -> if not (List.mem a aliases) then raise Give_up)
      exported;
    let table_of a =
      match List.find_opt (fun (_, al) -> String.equal al a) sel.Sql.from with
      | Some (tbl, _) -> tbl
      | None -> raise Give_up
    in
    let build_side ~mine conjs_side =
      let side_aliases = List.filter mine aliases in
      let key_alias =
        if mine final_key_alias then final_key_alias
        else
          match
            List.find_opt
              (fun (a, c) -> mine a && String.equal c dewey_column)
              exported
          with
          | Some (a, _) -> a
          | None -> (
            match side_aliases with a :: _ -> a | [] -> raise Give_up)
      in
      let cols =
        (key_alias, dewey_column)
        :: List.filter
             (fun (a, c) ->
               mine a
               && not
                    (String.equal a key_alias && String.equal c dewey_column))
             exported
      in
      let mangled i = Printf.sprintf "c%d" i in
      let side_sel =
        {
          Sql.distinct = true;
          projections = List.mapi (fun i (a, c) -> (Sql.Col (a, c), mangled i)) cols;
          from = List.filter (fun (_, a) -> mine a) sel.Sql.from;
          where = List.fold_left Sql.and_opt None conjs_side;
          order_by = List.map (fun (a, c) -> Sql.Col (a, c)) cols;
        }
      in
      check_select ~bfks ~neg:false side_sel;
      ( {
          os_select = side_sel;
          os_key = 0;
          os_cols = List.mapi (fun i (a, c) -> (mangled i, table_of a, c)) cols;
        },
        List.mapi (fun i (a, c) -> ((a, c), mangled i)) cols )
    in
    let left, lmap = build_side ~mine:on_left (List.rev !lconjs) in
    let right, rmap =
      build_side ~mine:(fun a -> not (on_left a)) (List.rev !rconjs)
    in
    let lookup key =
      match List.assoc_opt key lmap with
      | Some m -> Some (Sql.Col ("L", m))
      | None -> (
        match List.assoc_opt key rmap with
        | Some m -> Some (Sql.Col ("R", m))
        | None -> None)
    in
    let rec rewrite e =
      match e with
      | Sql.Col (a, c) -> (
        match lookup (a, c) with Some e' -> e' | None -> raise Give_up)
      | Sql.Const _ | Sql.Bool_const _ -> e
      | Sql.Cmp (op, x, y) -> Sql.Cmp (op, rewrite x, rewrite y)
      | Sql.Between (x, y, z) -> Sql.Between (rewrite x, rewrite y, rewrite z)
      | Sql.And (x, y) -> Sql.And (rewrite x, rewrite y)
      | Sql.Or (x, y) -> Sql.Or (rewrite x, rewrite y)
      | Sql.Not x -> Sql.Not (rewrite x)
      | Sql.Concat (x, y) -> Sql.Concat (rewrite x, rewrite y)
      | Sql.Regexp_like (x, p) -> Sql.Regexp_like (rewrite x, p)
      | Sql.Arith (op, x, y) -> Sql.Arith (op, rewrite x, rewrite y)
      | Sql.To_number x -> Sql.To_number (rewrite x)
      | Sql.Length x -> Sql.Length (rewrite x)
      | Sql.Is_not_null x -> Sql.Is_not_null (rewrite x)
      | Sql.Exists _ | Sql.Count_subquery _ -> raise Give_up
    in
    let coord =
      {
        Sql.distinct = true;
        projections =
          List.map (fun (e, n) -> (rewrite e, n)) sel.Sql.projections;
        from = [ ("lhs", "L"); ("rhs", "R") ];
        where = List.fold_left Sql.and_opt None (List.map rewrite cross);
        order_by = List.map rewrite sel.Sql.order_by;
      }
    in
    Some { op_left = left; op_right = right; op_coord = coord }
  with Give_up | Stop _ -> None

(* The merge needs a projected, statement-wide Dewey ordering: for a
   single SELECT an ORDER BY equal to one projection, for a UNION one
   output-column ordinal. Returns the 0-based projection index. *)
let merge_key (stmt : Sql.statement) =
  let key_of_select (sel : Sql.select) =
    match sel.Sql.order_by with
    | [ e ] ->
      let rec find i = function
        | [] -> None
        | (p, _) :: rest -> if p = e then Some i else find (i + 1) rest
      in
      find 0 sel.Sql.projections
    | _ -> None
  in
  match stmt with
  | Sql.Select sel -> key_of_select sel
  | Sql.Union (branches, [ i ]) ->
    if List.for_all (fun (b : Sql.select) -> List.length b.Sql.projections > i) branches
    then Some i
    else None
  | Sql.Union _ | Sql.Select_count _ -> None

let analyze ~boundary_fks (stmt : Sql.statement) =
  let bfks = boundary_fks in
  let check () =
    match stmt with
    | Sql.Select_count _ -> fail "top-level COUNT aggregates across shards"
    | Sql.Select sel -> check_select ~bfks ~neg:false sel
    | Sql.Union (branches, _) -> List.iter (check_select ~bfks ~neg:false) branches
  in
  match check () with
  | () ->
    (match merge_key stmt with
     | Some _ -> Partitionable
     | None -> Fallback "no statement-wide dewey ordering to merge on")
  | exception Stop reason ->
    (match stmt with
     | Sql.Select sel ->
       (match decompose ~bfks sel with
        | Some plan -> Order_partitionable plan
        | None -> Fallback reason)
     | Sql.Union _ | Sql.Select_count _ -> Fallback reason)

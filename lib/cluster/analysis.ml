module Sql = Ppfx_minidb.Sql

(* Static shard-safety analysis of a translated statement.

   The store is partitioned into frontier subtrees with the spine —
   every split element, root included — and the [Paths] relation
   replicated into every shard, so a join is shard-local exactly when
   every binding it accepts relates rows available in one shard. The
   translation emits a closed set of join shapes (translate.ml):

   - Dewey containment  [d BETWEEN a AND a || 0xFF]   — shard-local: the
     ancestor is in the same frontier subtree or a replicated spine row;
   - foreign-key joins  [child.fk = parent.id]        — the parent row is
     in the same subtree or replicated (spine, Paths);
   - sibling joins      [a.fk = b.fk, a.dewey > b.dewey] — local unless
     the common parent can be a spine element, whose children may be
     split across shards: those fk columns form the boundary set;
   - order joins        [d > a || 0xFF] (and mirrored) — compare Dewey
     positions of nodes in unrelated subtrees: never shard-local;
   - level pins, path regexes, value/ord comparisons  — row-local or
     riding on an already-local join.

   The analysis walks the full boolean tree (order conditions also occur
   under OR from predicate splitting), recurses into EXISTS, and treats
   any cross-alias comparison outside the known-local shapes as a
   fallback. Aggregation is also unsound per shard: COUNT sub-queries
   and top-level counts fall back, as does uncorrelated EXISTS (a global
   gate a shard cannot decide alone). A bare cross-alias Dewey
   comparison without the 0xFF sentinel is accepted: the translator only
   emits it alongside a sibling fk join or a recursive containment
   BETWEEN, either of which already pins both aliases to one subtree. *)

type verdict = Partitionable | Fallback of string

let dewey_column = "dewey_pos"

let is_dewey_col = function
  | Sql.Col (_, c) -> String.equal c dewey_column
  | _ -> false

let rec mentions_dewey = function
  | Sql.Col (_, c) -> String.equal c dewey_column
  | Sql.Const _ | Sql.Bool_const _ -> false
  | Sql.Concat (a, b) | Sql.Arith (_, a, b) -> mentions_dewey a || mentions_dewey b
  | Sql.To_number a | Sql.Length a | Sql.Not a | Sql.Is_not_null a -> mentions_dewey a
  | Sql.Cmp (_, a, b) | Sql.And (a, b) | Sql.Or (a, b) -> mentions_dewey a || mentions_dewey b
  | Sql.Between (a, b, c) -> mentions_dewey a || mentions_dewey b || mentions_dewey c
  | Sql.Regexp_like (a, _) -> mentions_dewey a
  | Sql.Exists _ | Sql.Count_subquery _ -> false

(* Whether the expression contains [dewey || _] — the sentinel upper end
   of a document-order comparison. *)
let rec has_dewey_concat = function
  | Sql.Concat (a, b) -> is_dewey_col a || has_dewey_concat a || has_dewey_concat b
  | Sql.Arith (_, a, b) -> has_dewey_concat a || has_dewey_concat b
  | Sql.To_number a | Sql.Length a -> has_dewey_concat a
  | Sql.Col _ | Sql.Const _ | Sql.Bool_const _ -> false
  | Sql.Cmp _ | Sql.Between _ | Sql.And _ | Sql.Or _ | Sql.Not _
  | Sql.Regexp_like _ | Sql.Exists _ | Sql.Count_subquery _ | Sql.Is_not_null _ ->
    false

let rec dewey_aliases acc = function
  | Sql.Col (a, c) -> if String.equal c dewey_column then a :: acc else acc
  | Sql.Const _ | Sql.Bool_const _ -> acc
  | Sql.Concat (a, b) | Sql.Arith (_, a, b) -> dewey_aliases (dewey_aliases acc a) b
  | Sql.To_number a | Sql.Length a -> dewey_aliases acc a
  | Sql.Cmp _ | Sql.Between _ | Sql.And _ | Sql.Or _ | Sql.Not _
  | Sql.Regexp_like _ | Sql.Exists _ | Sql.Count_subquery _ | Sql.Is_not_null _ ->
    acc

let is_fk_column c =
  let n = String.length c in
  n > 3 && String.equal (String.sub c (n - 3) 3) "_id"

exception Stop of string

let fail reason = raise (Stop reason)

let containment_between e lo hi =
  match lo, hi with
  | Sql.Col (x, c1), Sql.Concat (Sql.Col (y, c2), _) ->
    String.equal c1 dewey_column && String.equal c2 dewey_column && String.equal x y
    && is_dewey_col e
  | _ -> false

let rec check_expr ~bfks (e : Sql.expr) =
  match e with
  | Sql.Cmp (op, a, b) -> check_cmp ~bfks op a b
  | Sql.Between (e1, lo, hi) ->
    if containment_between e1 lo hi then ()
    else if mentions_dewey e1 || mentions_dewey lo || mentions_dewey hi then
      fail "non-containment dewey BETWEEN"
    else begin
      check_value ~bfks e1;
      check_value ~bfks lo;
      check_value ~bfks hi
    end
  | Sql.And (a, b) | Sql.Or (a, b) ->
    check_expr ~bfks a;
    check_expr ~bfks b
  | Sql.Not a -> check_expr ~bfks a
  | Sql.Exists sel ->
    if Sql.free_aliases (Sql.Exists sel) = [] then
      fail "uncorrelated EXISTS (checks a global property per shard)"
    else check_select ~bfks sel
  | Sql.Count_subquery _ -> fail "COUNT sub-query (counts rows per shard)"
  | Sql.Regexp_like (a, _) | Sql.Is_not_null a -> check_value ~bfks a
  | Sql.Bool_const _ -> ()
  | Sql.Col _ | Sql.Const _ | Sql.Concat _ | Sql.Arith _ | Sql.To_number _
  | Sql.Length _ ->
    check_value ~bfks e

and check_cmp ~bfks op a b =
  match a, b with
  | Sql.Col (x, ca), Sql.Col (y, cb) when not (String.equal x y) ->
    if String.equal ca dewey_column && String.equal cb dewey_column then
      (* Bare dewey comparison: the order refinement of a sibling or
         recursive-containment join; those joins pin both aliases. *)
      ()
    else if op <> Sql.Eq then fail "cross-alias non-equality comparison"
    else if String.equal ca "id" || String.equal cb "id" then
      (* Foreign-key join: the parent side is in the same frontier
         subtree or replicated (spine / Paths). *)
      ()
    else if List.mem ca bfks || List.mem cb bfks then
      fail "sibling join at a partition boundary (children of a spine element)"
    else if is_fk_column ca && is_fk_column cb then ()
    else fail "cross-alias comparison outside known shard-local shapes"
  | _ ->
    ignore op;
    if has_dewey_concat a || has_dewey_concat b then begin
      (* [d cmp a || 0xFF]: a document-order comparison. Local only when
         a single alias is involved. *)
      match List.sort_uniq compare (dewey_aliases (dewey_aliases [] a) b) with
      | [] | [ _ ] -> ()
      | _ :: _ :: _ -> fail "order-axis dewey comparison (following/preceding)"
    end
    else begin
      check_value ~bfks a;
      check_value ~bfks b
    end

and check_value ~bfks (e : Sql.expr) =
  match e with
  | Sql.Col _ | Sql.Const _ | Sql.Bool_const _ -> ()
  | Sql.Concat (a, b) | Sql.Arith (_, a, b) ->
    check_value ~bfks a;
    check_value ~bfks b
  | Sql.To_number a | Sql.Length a -> check_value ~bfks a
  | Sql.Count_subquery _ -> fail "COUNT sub-query (counts rows per shard)"
  | Sql.Cmp _ | Sql.Between _ | Sql.And _ | Sql.Or _ | Sql.Not _
  | Sql.Regexp_like _ | Sql.Exists _ | Sql.Is_not_null _ ->
    check_expr ~bfks e

and check_select ~bfks (sel : Sql.select) =
  (match sel.Sql.where with None -> () | Some w -> check_expr ~bfks w);
  List.iter (fun (e, _) -> check_value ~bfks e) sel.Sql.projections;
  List.iter (fun e -> check_value ~bfks e) sel.Sql.order_by

(* The merge needs a projected, statement-wide Dewey ordering: for a
   single SELECT an ORDER BY equal to one projection, for a UNION one
   output-column ordinal. Returns the 0-based projection index. *)
let merge_key (stmt : Sql.statement) =
  let key_of_select (sel : Sql.select) =
    match sel.Sql.order_by with
    | [ e ] ->
      let rec find i = function
        | [] -> None
        | (p, _) :: rest -> if p = e then Some i else find (i + 1) rest
      in
      find 0 sel.Sql.projections
    | _ -> None
  in
  match stmt with
  | Sql.Select sel -> key_of_select sel
  | Sql.Union (branches, [ i ]) ->
    if List.for_all (fun (b : Sql.select) -> List.length b.Sql.projections > i) branches
    then Some i
    else None
  | Sql.Union _ | Sql.Select_count _ -> None

let analyze ~boundary_fks (stmt : Sql.statement) =
  let bfks = boundary_fks in
  let check () =
    match stmt with
    | Sql.Select_count _ -> fail "top-level COUNT aggregates across shards"
    | Sql.Select sel -> check_select ~bfks sel
    | Sql.Union (branches, _) -> List.iter (check_select ~bfks) branches
  in
  match check () with
  | () ->
    (match merge_key stmt with
     | Some _ -> Partitionable
     | None -> Fallback "no statement-wide dewey ordering to merge on")
  | exception Stop reason -> Fallback reason

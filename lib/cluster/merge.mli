(** Dewey-ordered k-way merge of per-shard results.

    Inputs must each be sorted ascending on column [key] (the projection
    index from {!Analysis.merge_key}) under {!Ppfx_minidb.Value.compare_total}.
    The merge is stable, preserves that order globally, and drops
    adjacent byte-identical rows — which under subtree partitioning are
    exactly the replicated document-root rows each shard re-emits — so
    the merged result equals single-store execution. *)

val merge : key:int -> Ppfx_minidb.Engine.result list -> Ppfx_minidb.Engine.result
(** Raises [Invalid_argument] on an empty list. Column names are taken
    from the first result. *)

val compare_rows : Ppfx_minidb.Value.t array -> Ppfx_minidb.Value.t array -> int
(** Total lexicographic row order (componentwise [Value.compare_total],
    shorter rows first on a shared prefix). Exposed for tests. *)

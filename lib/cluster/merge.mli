(** Dewey-ordered k-way merge of per-shard results.

    Inputs must each be sorted ascending on column [key] (the projection
    index from {!Analysis.merge_key}) under {!Ppfx_minidb.Value.compare_total};
    key ties within one input must be sorted by {!compare_rows} (engine
    ORDER BY over the full projection list guarantees this, and inputs
    with a unique key satisfy it vacuously). The merge preserves that
    order globally — key first, then whole-row — and drops adjacent
    byte-identical rows: under subtree partitioning exactly the
    replicated spine rows each shard re-emits. The merged result equals
    single-store execution. *)

val merge : key:int -> Ppfx_minidb.Engine.result list -> Ppfx_minidb.Engine.result
(** Raises [Invalid_argument] on an empty list. Column names are taken
    from the first result. *)

val compare_rows : Ppfx_minidb.Value.t array -> Ppfx_minidb.Value.t array -> int
(** Total lexicographic row order (componentwise [Value.compare_total],
    shorter rows first on a shared prefix). Exposed for tests. *)

module Doc = Ppfx_xml.Doc

(* Subtree partitioning (after Arion et al.'s path/subtree partitioning).

   The distribution unit is a frontier subtree: walking down from the
   document root, any subtree larger than [total / (shards * 8)] is
   split — its root becomes a *spine* element, replicated into every
   shard exactly like the [Paths] relation — and its children are
   considered in turn. What remains is a Dewey-ordered frontier of
   disjoint subtrees covering every non-spine element; greedy contiguous
   grouping then closes shard [s] once the cumulative unit size crosses
   [total * (s+1) / shards].

   Splitting deeper than the root matters in practice: XMark's root has
   six children and the regions subtree alone is over half the document,
   so root-child granularity would leave shards empty. The price is that
   sibling relationships *under a spine element* may cross shards — the
   shard-safety analysis receives the spine relations as its boundary
   set and falls back for exactly those joins. *)

type t = {
  shards : int;
  shard_of : int array;
      (* element id (1-based) -> owning shard, or -1 for replicated spine *)
  counts : int array;  (* stored elements per shard, spine excluded *)
  replicated : int list;  (* spine element ids, ascending *)
}

let shards t = t.shards

let counts t = Array.copy t.counts

let replicated t = t.replicated

let split_factor = 8

let compute ?current ~shards doc =
  if shards < 1 then invalid_arg "Partition.compute: shards must be >= 1";
  let current =
    match current with
    | None -> Array.make shards 0
    | Some c ->
      if Array.length c <> shards then
        invalid_arg "Partition.compute: current has the wrong length";
      c
  in
  let n = Doc.size doc in
  (* Subtree sizes: preorder ids, so every child id exceeds its parent's
     and a reverse sweep accumulates bottom-up. *)
  let size = Array.make (n + 1) 1 in
  for id = n downto 1 do
    let e = Doc.element doc id in
    if e.Doc.parent <> 0 then size.(e.Doc.parent) <- size.(e.Doc.parent) + size.(id)
  done;
  let limit = max 1 (n / (shards * split_factor)) in
  (* Frontier selection, in document order. *)
  let spine = ref [] in
  let units = ref [] in
  let rec visit id =
    let e = Doc.element doc id in
    if size.(id) > limit && e.Doc.children <> [] then begin
      spine := id :: !spine;
      List.iter visit e.Doc.children
    end
    else units := id :: !units
  in
  visit (Doc.root doc).Doc.id;
  let spine = List.rev !spine in
  let units = Array.of_list (List.rev !units) in
  let nunits = Array.length units in
  let total = Array.fold_left (fun acc u -> acc + size.(u)) 0 units in
  (* Greedy contiguous size-balanced grouping of the frontier, deficit
     aware: with [current] pre-existing elements per shard, shard [s]
     closes once the grand cumulative total (existing + newly assigned)
     crosses [grand * (s+1) / shards]. An already-heavy shard therefore
     receives less of this document — possibly nothing — so repeated
     loads converge toward balance instead of drifting. With an all-zero
     [current] this is exactly the classic proportional rule. *)
  let grand = total + Array.fold_left ( + ) 0 current in
  let cum_existing = Array.make shards 0 in
  Array.iteri
    (fun s c -> cum_existing.(s) <- (if s = 0 then 0 else cum_existing.(s - 1)) + c)
    current;
  let unit_shard = Array.make nunits 0 in
  let s = ref 0 in
  let seen = ref 0 in
  for u = 0 to nunits - 1 do
    (* Skip shards whose existing load already exceeds their target. *)
    while
      !s < shards - 1 && (cum_existing.(!s) + !seen) * shards >= grand * (!s + 1)
    do
      incr s
    done;
    unit_shard.(u) <- !s;
    seen := !seen + size.(units.(u))
  done;
  (* Propagate: spine -> -1, unit roots -> their shard, everything else
     inherits its parent (preorder: parents first). *)
  let shard_of = Array.make (n + 1) (-1) in
  let is_spine = Array.make (n + 1) false in
  List.iter (fun id -> is_spine.(id) <- true) spine;
  Array.iteri (fun u id -> shard_of.(id) <- unit_shard.(u)) units;
  let counts = Array.make shards 0 in
  Doc.iter
    (fun e ->
      if (not is_spine.(e.Doc.id)) && shard_of.(e.Doc.id) = -1 && e.Doc.parent <> 0
      then shard_of.(e.Doc.id) <- shard_of.(e.Doc.parent);
      let s = shard_of.(e.Doc.id) in
      if s >= 0 then counts.(s) <- counts.(s) + 1)
    doc;
  { shards; shard_of; counts; replicated = spine }

let keep t ~shard (e : Doc.element) =
  let s = t.shard_of.(e.Doc.id) in
  s = -1 || s = shard

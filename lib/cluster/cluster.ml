module Doc = Ppfx_xml.Doc
module Tree = Ppfx_xml.Tree
module Graph = Ppfx_schema.Graph
module Mapping = Ppfx_shred.Mapping
module Loader = Ppfx_shred.Loader
module Update = Ppfx_update.Update
module Btree = Ppfx_minidb.Btree
module Value = Ppfx_minidb.Value
module Engine = Ppfx_minidb.Engine
module Sql = Ppfx_minidb.Sql
module Database = Ppfx_minidb.Database
module Table = Ppfx_minidb.Table
module Translate = Ppfx_translate.Translate
module Session = Ppfx_service.Session
module Metrics = Ppfx_service.Metrics
module Lru = Ppfx_service.Lru
module Wstore = Ppfx_wal.Store
module Wrecord = Ppfx_wal.Record

(* The scatter-gather coordinator.

   One full (unsharded) store lives inside a {!Session} and keeps three
   jobs: parse/translate/cache queries (the translation is shard-agnostic
   — it depends only on the schema mapping), execute fallback queries,
   and carry the overall serving metrics. Next to it sit [shards] shard
   stores, each loaded through {!Partition} so it holds the replicated
   root + Paths rows and an interval of root-child subtrees.

   Per query (keyed by canonical text, like the session cache) the
   cluster caches a routing mode: scatter with one prepared plan per
   shard, or single-store fallback with the analysis reason. Shard plans
   are validated against their shard's epoch and re-prepared on the
   coordinator before the scatter — [Engine.prepare] touches planner-side
   caches ([Table.distinct_estimate]) and must not race a concurrent
   [run_plan] on the same shard database. The scattered tasks themselves
   share no mutable state: each runs a distinct plan against a distinct
   database. *)

type order_exec = {
  oplan : Analysis.order_plan;
  lplans : Engine.plan option array;
  rplans : Engine.plan option array;
  lcols : Table.column list;  (* resolved coordinator temp-table schemas *)
  rcols : Table.column list;
}

type mode =
  | Scatter of { key : int; plans : Engine.plan option array }
  | Order_scatter of order_exec
      (* two side selects scattered per shard, merged per side, joined by
         a coordinator select over two temp tables *)
  | Single of string
  | Empty  (** schema proved the result empty; no SQL at all *)

type scatter_stats = {
  critical_path : float;
  queue_waits : float array;
  shard_rows : int array;
}

type t = {
  session : Session.t;
  update : Update.t;  (* the full store's write path (shadow forest) *)
  mutable shard_stores : Loader.t array;
  shard_metrics : Metrics.t array;
  partition_counts : int array;
  pool : Pool.t;
  cache : mode Lru.t;
  mutable boundary_fks : string list;
      (* fk columns referencing relations with replicated (spine)
         instances; sibling joins on them cross shard boundaries *)
  nshards : int;
  mutable last : scatter_stats option;
  mutable wal : Wstore.t option;  (* the full store's durability log *)
  mutable shard_wals : Wstore.t array;  (* one per shard; [||] when volatile *)
}

type prepared = Session.prepared

let partition_into ~counts stores doc =
  let nshards = Array.length stores in
  (* Deficit-aware: steer this document's frontier subtrees toward the
     shards that are currently lightest, so repeated loads converge to
     balance instead of compounding per-document rounding drift. *)
  let p = Partition.compute ~current:counts ~shards:nshards doc in
  Array.iteri (fun s c -> counts.(s) <- counts.(s) + c) (Partition.counts p);
  ( Array.mapi
      (fun s store -> Loader.load ~keep:(Partition.keep p ~shard:s) store doc)
      stores,
    p )

(* Live element rows per shard (Paths excluded): the balance gauge
   surfaced through the session metrics after every load and routed
   mutation. *)
let shard_row_counts t =
  Array.to_list
    (Array.map
       (fun (st : Loader.t) ->
         List.fold_left
           (fun acc tbl ->
             if String.equal (Table.name tbl) Mapping.paths_table then acc
             else acc + Table.live_count tbl)
           0
           (Database.tables st.Loader.db))
       t.shard_stores)

let refresh_shard_gauge t =
  Metrics.set_shard_rows (Session.metrics t.session) (shard_row_counts t)

(* The boundary set of one partitioned document: [<relation>_id] for
   every relation instantiated by a spine element. The root relation's
   fk is included unconditionally: almost every split document has a
   spine root anyway, and keeping it in the set for the rare unsplit
   (single-shard) document only costs a conservative fallback. *)
let boundary_fks_of full doc p =
  let spine_fks =
    List.filter_map
      (fun id ->
        match Loader.def_of_element full ~doc id with
        | def -> Some (Mapping.relation full.Loader.mapping def ^ "_id")
        | exception Not_found -> None)
      (Partition.replicated p)
  in
  let root_def = Graph.root (Mapping.schema full.Loader.mapping) in
  List.sort_uniq compare
    ((Mapping.relation full.Loader.mapping root_def ^ "_id") :: spine_fks)

let create ?pool_size ?(cache_capacity = 256) ?options ~shards:nshards schema trees =
  if nshards < 1 then invalid_arg "Cluster.create: shards must be >= 1";
  let pool_size = match pool_size with Some n -> n | None -> nshards in
  let docs = List.map Doc.of_tree trees in
  let mapping = Mapping.of_schema schema in
  let full = ref (Loader.create mapping) in
  let stores = ref (Array.init nshards (fun _ -> Loader.create mapping)) in
  let counts = Array.make nshards 0 in
  let bfks = ref [] in
  List.iter
    (fun doc ->
      full := Loader.load !full doc;
      let stores', p = partition_into ~counts !stores doc in
      stores := stores';
      bfks := List.sort_uniq compare (boundary_fks_of !full doc p @ !bfks))
    docs;
  let t =
    {
      session = Session.create ~cache_capacity ?options !full;
      update = Update.of_store !full trees;
      shard_stores = !stores;
      shard_metrics = Array.init nshards (fun _ -> Metrics.create ());
      partition_counts = counts;
      pool = Pool.create pool_size;
      cache = Lru.create ~capacity:cache_capacity;
      boundary_fks = !bfks;
      nshards;
      last = None;
      wal = None;
      shard_wals = [||];
    }
  in
  refresh_shard_gauge t;
  t

(* ------------------------------------------------------------------ *)
(* Durability                                                          *)
(* ------------------------------------------------------------------ *)

(* A durable cluster's data directory holds one WAL store per physical
   store: [full/] for the coordinator (its checkpoints carry the shadow
   forest and the routing extras) and [shard-<k>/] for each shard
   (db-only: shard replay needs just the changesets and their routed
   [inserts] flags). *)
let full_dir data_dir = Filename.concat data_dir "full"
let shard_dir data_dir s = Filename.concat data_dir (Printf.sprintf "shard-%d" s)

let current_extras t =
  {
    Wrecord.partition_counts = Array.to_list t.partition_counts;
    boundary_fks = t.boundary_fks;
  }

let full_meta t =
  {
    Wrecord.m_schema = Mapping.schema (Session.store t.session).Loader.mapping;
    m_partitioned = true;
    m_shadow = Some (Update.shadow t.update);
    m_extras = Some (current_extras t);
  }

let shard_meta t =
  {
    Wrecord.m_schema = Mapping.schema (Session.store t.session).Loader.mapping;
    m_partitioned = true;
    m_shadow = None;
    m_extras = None;
  }

let durable t = Option.is_some t.wal
let wal_next_seq t = Option.map Wstore.next_seq t.wal

let make_durable ?io ?durability ?checkpoint_bytes ?checkpoint_records
    ~data_dir t =
  if durable t then invalid_arg "Cluster.make_durable: cluster is already durable";
  let w =
    Wstore.init ?io ?durability ?checkpoint_bytes ?checkpoint_records
      ~dir:(full_dir data_dir) ~db:(Update.db t.update) ~meta:(full_meta t) ()
  in
  Wstore.set_metrics w (Session.metrics t.session);
  let sws =
    Array.init t.nshards (fun s ->
        let sw =
          Wstore.init ?io ?durability ?checkpoint_bytes ?checkpoint_records
            ~dir:(shard_dir data_dir s)
            ~db:t.shard_stores.(s).Loader.db
            ~meta:(shard_meta t) ()
        in
        Wstore.set_metrics sw t.shard_metrics.(s);
        sw)
  in
  t.wal <- Some w;
  t.shard_wals <- sws

let flush_wal t =
  Option.iter Wstore.flush t.wal;
  Array.iter Wstore.flush t.shard_wals

let dispose_wal t =
  Option.iter Wstore.dispose t.wal;
  t.wal <- None;
  Array.iter Wstore.dispose t.shard_wals;
  t.shard_wals <- [||]

let maybe_checkpoint t =
  (match t.wal with
  | Some w when Wstore.should_checkpoint w ->
    Wstore.checkpoint w ~db:(Update.db t.update) ~meta:(full_meta t)
  | Some _ | None -> ());
  Array.iteri
    (fun s sw ->
      if Wstore.should_checkpoint sw then
        Wstore.checkpoint sw ~db:t.shard_stores.(s).Loader.db ~meta:(shard_meta t))
    t.shard_wals

let load t tree =
  if durable t then
    invalid_arg
      "Cluster.load: bulk document loads are not WAL-logged; load documents \
       before make_durable";
  let doc = Doc.of_tree tree in
  Session.load t.session doc;
  Update.extend t.update (Session.store t.session) tree;
  let stores, p = partition_into ~counts:t.partition_counts t.shard_stores doc in
  t.shard_stores <- stores;
  let bfks =
    List.sort_uniq compare
      (boundary_fks_of (Session.store t.session) doc p @ t.boundary_fks)
  in
  (* A grown boundary set can flip earlier Partitionable verdicts, so the
     routing cache must be rebuilt (plans are invalid anyway: the load
     moved every shard's epoch). *)
  if bfks <> t.boundary_fks then begin
    t.boundary_fks <- bfks;
    Lru.clear t.cache
  end;
  refresh_shard_gauge t

(* ------------------------------------------------------------------ *)
(* Mutations                                                           *)
(* ------------------------------------------------------------------ *)

(* Does this shard hold element [id]'s row in relation [rel]? Probes the
   relation's id index (iter fallback for index-less tables). *)
let shard_holds (st : Loader.t) rel id =
  match Database.table_opt st.Loader.db rel with
  | None -> false
  | Some tbl -> (
    match Table.index_on tbl [ "id" ] with
    | Some tree -> Btree.find_equal tree [| Value.Int id |] <> []
    | None ->
      let found = ref false in
      Table.iter_rows
        (fun _ row -> if row.(0) = Value.Int id then found := true)
        tbl;
      !found)

let holders t id =
  match Update.node_relation t.update id with
  | rel ->
    let hs = ref [] in
    Array.iteri
      (fun s st -> if shard_holds st rel id then hs := s :: !hs)
      t.shard_stores;
    List.rev !hs
  | exception Ppfx_update.Update.Update_error _ -> []

let lightest t =
  let counts = Array.of_list (shard_row_counts t) in
  let best = ref 0 in
  Array.iteri (fun s c -> if c < counts.(!best) then best := s) counts;
  !best

let add_boundary_fk t fk =
  let bfks = List.sort_uniq compare (fk :: t.boundary_fks) in
  if bfks <> t.boundary_fks then begin
    t.boundary_fks <- bfks;
    (* A grown boundary set can flip cached Partitionable verdicts. *)
    Lru.clear t.cache
  end

(* Which shard owns a changeset's new rows? Probe the splice point's
   element-sibling anchors first (a non-replicated anchor pins the
   subtree to its shard), then the parent. A parent replicated into
   several shards is a spine element: the insert starts a fresh frontier
   subtree, routed to the lightest shard — and its parent fk joins the
   boundary set, because sibling joins under that spine now cross
   shards. *)
let owner_shard t (rt : Update.routing) =
  let anchor_owner =
    List.fold_left
      (fun acc anchor ->
        match acc with
        | Some _ -> acc
        | None -> (
          match holders t anchor with [ s ] -> Some s | _ -> None))
      None
      (List.filter_map Fun.id [ rt.Update.rt_left; rt.Update.rt_right ])
  in
  match anchor_owner with
  | Some s -> s
  | None -> (
    match holders t rt.Update.rt_parent with
    | [ s ] -> s
    | [] -> lightest t
    | _ :: _ :: _ ->
      Option.iter (fun (_, fkcol) -> add_boundary_fk t fkcol) rt.Update.rt_fk;
      lightest t)

let update t op =
  let cs = Update.stage t.update op in
  let owner =
    let has_inserts =
      List.exists
        (function Update.Row_insert _ -> true | _ -> false)
        cs.Update.cs_ops
    in
    match cs.Update.cs_routing with
    | Some rt when has_inserts -> Some (owner_shard t rt)
    | Some _ | None -> None
  in
  (* Durable clusters log before they apply: the full record carries the
     staged op (shadow replay) plus the routing state as it will stand
     after this commit; each shard record carries its routed [inserts]
     flag. An ack only ever follows the append (and its policy fsync), so
     recovery can never miss an acked commit. *)
  (match t.wal with
  | None -> ()
  | Some w ->
    let extras =
      let counts = Array.copy t.partition_counts in
      (match owner with
      | Some s ->
        counts.(s) <- counts.(s) + (Update.outcome_of cs).Update.inserted
      | None -> ());
      {
        Wrecord.partition_counts = Array.to_list counts;
        boundary_fks = t.boundary_fks;
      }
    in
    ignore (Wstore.append w ~op ~inserts:true ~extras cs : int);
    Array.iteri
      (fun s sw ->
        let inserts = match owner with None -> true | Some o -> s = o in
        ignore (Wstore.append sw ~inserts cs : int))
      t.shard_wals);
  (* Coordinator first (it owns every row), then the shard replicas:
     updates/deletes apply where the row lives, inserts only on the
     owning shard. Each commit is logged fine-grained, so every store's
     prepared plans revalidate by footprint intersection. *)
  Update.commit (Update.db t.update) cs;
  Array.iteri
    (fun s (st : Loader.t) ->
      let inserts = match owner with None -> true | Some o -> s = o in
      Update.commit ~inserts st.Loader.db cs)
    t.shard_stores;
  let outcome = Update.outcome_of cs in
  (match owner with
   | Some s ->
     t.partition_counts.(s) <-
       t.partition_counts.(s) + outcome.Update.inserted
   | None -> ());
  refresh_shard_gauge t;
  maybe_checkpoint t;
  outcome

let prepare t text = Session.prepare t.session text

(* Resolve the coordinator temp-table schema of one side from the source
   catalog: every exported column keeps its source column's type. *)
let side_columns t (side : Analysis.order_side) =
  let db = (Session.store t.session).Loader.db in
  let rec go = function
    | [] -> Some []
    | (mangled, src_table, src_col) :: rest ->
      (match Database.table_opt db src_table with
       | None -> None
       | Some tbl ->
         (match Table.column_ty tbl src_col with
          | None -> None
          | Some ty ->
            (match go rest with
             | None -> None
             | Some cols -> Some ({ Table.name = mangled; ty } :: cols))))
  in
  go side.Analysis.os_cols

let mode_for t p =
  let canonical = Session.canonical p in
  match Lru.find t.cache canonical with
  | Some m -> m
  | None ->
    let m =
      match Session.sql p with
      | None -> Empty
      | Some stmt ->
        (match Analysis.analyze ~boundary_fks:t.boundary_fks stmt with
         | Analysis.Fallback reason -> Single reason
         | Analysis.Order_partitionable oplan ->
           (match side_columns t oplan.Analysis.op_left,
                  side_columns t oplan.Analysis.op_right with
            | Some lcols, Some rcols ->
              Order_scatter
                {
                  oplan;
                  lplans = Array.make t.nshards None;
                  rplans = Array.make t.nshards None;
                  lcols;
                  rcols;
                }
            | _ -> Single "order decomposition: unresolvable side column")
         | Analysis.Partitionable ->
           (match Analysis.merge_key stmt with
            | Some key -> Scatter { key; plans = Array.make t.nshards None }
            | None -> Single "no statement-wide dewey ordering to merge on"))
    in
    ignore (Lru.add t.cache canonical m);
    m

let revalidate_plans t stmt plans =
  Array.iteri
    (fun s store ->
      let stale =
        match plans.(s) with
        | None -> true
        | Some plan when Engine.plan_valid plan -> false
        | Some plan when Engine.plan_compatible plan ->
          (* The shard's epoch moved, but every commit since this plan was
             prepared is footprint-disjoint from it (fine-grained write
             path): keep the plan. *)
          Metrics.incr_retained t.shard_metrics.(s);
          false
        | Some _ ->
          Metrics.incr_invalidations t.shard_metrics.(s);
          true
      in
      if stale then begin
        let t0 = Unix.gettimeofday () in
        let plan = Engine.prepare store.Loader.db stmt in
        Metrics.record t.shard_metrics.(s) Metrics.Plan (Unix.gettimeofday () -. t0);
        (* Plan-time engine work (the semi-join reduction's regex sweep)
           is attributed to the shard the plan belongs to. *)
        Metrics.add_engine t.shard_metrics.(s) (Engine.plan_stats plan);
        plans.(s) <- Some plan
      end)
    t.shard_stores

(* One pool task per shard plan. The worker owns its plan for the whole
   task, so snapshotting its counters around the run is race-free;
   [Pool.await] gives the coordinator a happens-before edge to read the
   delta. *)
let submit_shard_runs t plans =
  Array.map
    (fun plan ->
      let plan = Option.get plan in
      Pool.submit t.pool (fun () ->
          let before = Engine.plan_stats plan in
          let s0 = Unix.gettimeofday () in
          let r = Engine.run_plan plan in
          let dt = Unix.gettimeofday () -. s0 in
          r, dt, Engine.stats_diff (Engine.plan_stats plan) before))
    plans

let scatter t ~key ~plans stmt =
  let m = Session.metrics t.session in
  Metrics.incr_queries m;
  revalidate_plans t stmt plans;
  let t0 = Unix.gettimeofday () in
  let futures = submit_shard_runs t plans in
  let outcomes = Array.map Pool.await futures in
  Metrics.record m Metrics.Execute (Unix.gettimeofday () -. t0);
  let queue_waits = Array.map Pool.queue_wait futures in
  let shard_rows = Array.make t.nshards 0 in
  let critical = ref 0.0 in
  Array.iteri
    (fun s (r, dt, stats) ->
      let sm = t.shard_metrics.(s) in
      Metrics.incr_queries sm;
      Metrics.record sm Metrics.Execute dt;
      Metrics.record sm Metrics.Queue queue_waits.(s);
      Metrics.add_engine sm stats;
      let rows = List.length r.Engine.rows in
      Metrics.add_rows sm rows;
      shard_rows.(s) <- rows;
      if dt > !critical then critical := dt)
    outcomes;
  let merged =
    Metrics.time m Metrics.Merge (fun () ->
        Merge.merge ~key (Array.to_list (Array.map (fun (r, _, _) -> r) outcomes)))
  in
  Metrics.add_rows m (List.length merged.Engine.rows);
  t.last <- Some { critical_path = !critical; queue_waits; shard_rows };
  merged

(* Cross-shard order-axis execution: scatter both side selects over the
   shards, k-way merge each side, then load the two merged streams into
   a throwaway coordinator database — temp tables [lhs]/[rhs], indexed
   on the merge key so the engine can pick ordered access paths and the
   Dewey merge join — and run the coordinator select there. *)
let order_scatter t (oe : order_exec) =
  let left = oe.oplan.Analysis.op_left and right = oe.oplan.Analysis.op_right in
  let m = Session.metrics t.session in
  Metrics.incr_queries m;
  revalidate_plans t (Sql.Select left.Analysis.os_select) oe.lplans;
  revalidate_plans t (Sql.Select right.Analysis.os_select) oe.rplans;
  let t0 = Unix.gettimeofday () in
  let lf = submit_shard_runs t oe.lplans in
  let rf = submit_shard_runs t oe.rplans in
  let louts = Array.map Pool.await lf in
  let routs = Array.map Pool.await rf in
  let lwaits = Array.map Pool.queue_wait lf in
  let rwaits = Array.map Pool.queue_wait rf in
  let shard_rows = Array.make t.nshards 0 in
  let critical = ref 0.0 in
  let account outs waits =
    Array.iteri
      (fun s (r, dt, stats) ->
        let sm = t.shard_metrics.(s) in
        Metrics.incr_queries sm;
        Metrics.record sm Metrics.Execute dt;
        Metrics.record sm Metrics.Queue waits.(s);
        Metrics.add_engine sm stats;
        let rows = List.length r.Engine.rows in
        Metrics.add_rows sm rows;
        shard_rows.(s) <- shard_rows.(s) + rows;
        if dt > !critical then critical := dt)
      outs
  in
  account louts lwaits;
  account routs rwaits;
  let results outs = Array.to_list (Array.map (fun (r, _, _) -> r) outs) in
  let lmerged, rmerged =
    Metrics.time m Metrics.Merge (fun () ->
        ( Merge.merge ~key:left.Analysis.os_key (results louts),
          Merge.merge ~key:right.Analysis.os_key (results routs) ))
  in
  let db = Database.create () in
  let fill name cols (side : Analysis.order_side) merged =
    let tbl = Database.create_table db ~name ~columns:cols in
    List.iter (fun row -> ignore (Table.insert tbl row)) merged.Engine.rows;
    match List.nth_opt side.Analysis.os_cols side.Analysis.os_key with
    | Some (key_col, _, _) -> Table.create_index tbl [ key_col ]
    | None -> ()
  in
  fill "lhs" oe.lcols left lmerged;
  fill "rhs" oe.rcols right rmerged;
  let p0 = Unix.gettimeofday () in
  let plan = Engine.prepare db (Sql.Select oe.oplan.Analysis.op_coord) in
  Metrics.record m Metrics.Plan (Unix.gettimeofday () -. p0);
  Metrics.add_engine m (Engine.plan_stats plan);
  let before = Engine.plan_stats plan in
  let r = Engine.run_plan plan in
  Metrics.add_engine m (Engine.stats_diff (Engine.plan_stats plan) before);
  Metrics.record m Metrics.Execute (Unix.gettimeofday () -. t0);
  Metrics.add_rows m (List.length r.Engine.rows);
  let queue_waits = Array.init t.nshards (fun s -> lwaits.(s) +. rwaits.(s)) in
  t.last <- Some { critical_path = !critical; queue_waits; shard_rows };
  r

let execute t p =
  match mode_for t p with
  | Empty -> Session.execute t.session p
  | Single _ ->
    Metrics.incr_fallbacks (Session.metrics t.session);
    Session.execute t.session p
  | Scatter { key; plans } ->
    let stmt = match Session.sql p with Some s -> s | None -> assert false in
    scatter t ~key ~plans stmt
  | Order_scatter oe -> order_scatter t oe

let execute_ids t p =
  match Session.sql p with
  | None -> Session.execute_ids t.session p
  | Some _ -> Translate.result_ids (execute t p)

let run t text = execute t (prepare t text)

let run_ids t text = execute_ids t (prepare t text)

let verdict t text =
  match mode_for t (prepare t text) with
  | Empty -> None
  | Single reason -> Some (Analysis.Fallback reason)
  | Scatter _ -> Some Analysis.Partitionable
  | Order_scatter oe -> Some (Analysis.Order_partitionable oe.oplan)

let close t =
  (* Drained shutdown for durable clusters: a final checkpoint per store
     rotates each log to empty, then the clean-manifest marker lets the
     next open skip the replay scan. *)
  (match t.wal with
  | Some w ->
    Wstore.close_clean w ~db:(Update.db t.update) ~meta:(full_meta t);
    t.wal <- None
  | None -> ());
  Array.iteri
    (fun s sw ->
      Wstore.close_clean sw ~db:t.shard_stores.(s).Loader.db ~meta:(shard_meta t))
    t.shard_wals;
  t.shard_wals <- [||];
  Pool.shutdown t.pool

let open_durable ?io ?durability ?checkpoint_bytes ?checkpoint_records
    ?pool_size ?(cache_capacity = 256) ?options ~data_dir () =
  let ( let* ) = Result.bind in
  let* full_rec =
    Wstore.recover ?io ?durability ?checkpoint_bytes ?checkpoint_records
      ~dir:(full_dir data_dir) ()
  in
  let fail_full msg =
    Wstore.dispose full_rec.Wstore.store;
    Error msg
  in
  match
    Wstore.rebuild_full ~db:full_rec.Wstore.db ~meta:full_rec.Wstore.meta
      full_rec.Wstore.records
  with
  | Error e -> fail_full (Printf.sprintf "full store: %s" e)
  | Ok u -> (
    match Wstore.final_extras full_rec.Wstore.meta full_rec.Wstore.records with
    | None ->
      fail_full
        "full store carries no routing extras: not a cluster data directory"
    | Some extras ->
      let nshards = List.length extras.Wrecord.partition_counts in
      let rec recover_shards s acc =
        if s = nshards then Ok (Array.of_list (List.rev acc))
        else
          match
            Wstore.recover ?io ?durability ?checkpoint_bytes
              ?checkpoint_records ~dir:(shard_dir data_dir s) ()
          with
          | Ok r -> recover_shards (s + 1) (r :: acc)
          | Error e ->
            List.iter (fun r -> Wstore.dispose r.Wstore.store) acc;
            Error (Printf.sprintf "shard %d: %s" s e)
      in
      (match recover_shards 0 [] with
      | Error e -> fail_full e
      | Ok shard_recs -> (
        match
          Array.map
            (fun (r : Wstore.recovered) ->
              Wstore.rebuild_db ~db:r.Wstore.db ~meta:r.Wstore.meta
                r.Wstore.records)
            shard_recs
        with
        | stores ->
          (* Reconcile shard lag. The coordinator's log is appended first
             on every commit, so a crash mid-fan-out can leave a shard
             one record behind (or with a torn frame for it). The
             coordinator's records are authoritative: re-apply each
             missing changeset to the lagging shard — deriving the
             record's insert owner from the partition-count delta in its
             extras — and re-append it so the shard's log and sequence
             chain catch back up. *)
          let fstore = full_rec.Wstore.store in
          let swals =
            Array.map (fun (r : Wstore.recovered) -> r.Wstore.store) shard_recs
          in
          let full_last = Wstore.next_seq fstore - 1 in
          let prev_extras seq =
            List.fold_left
              (fun acc (r : Wrecord.t) ->
                if r.Wrecord.r_seq < seq then
                  match r.Wrecord.r_extras with Some e -> Some e | None -> acc
                else acc)
              full_rec.Wstore.meta.Wrecord.m_extras full_rec.Wstore.records
          in
          let owner_of (r : Wrecord.t) =
            match (prev_extras r.Wrecord.r_seq, r.Wrecord.r_extras) with
            | Some p, Some c ->
              let pa = Array.of_list p.Wrecord.partition_counts in
              let o = ref None in
              List.iteri
                (fun i v -> if i < Array.length pa && v > pa.(i) then o := Some i)
                c.Wrecord.partition_counts;
              !o
            | _ -> None
          in
          Array.iteri
            (fun s sw ->
              let last = Wstore.next_seq sw - 1 in
              List.iter
                (fun (r : Wrecord.t) ->
                  if r.Wrecord.r_seq > last && r.Wrecord.r_seq <= full_last
                  then begin
                    let inserts =
                      match owner_of r with None -> true | Some o -> s = o
                    in
                    Update.commit ~inserts stores.(s).Loader.db r.Wrecord.r_cs;
                    ignore (Wstore.append sw ~inserts r.Wrecord.r_cs : int)
                  end)
                full_rec.Wstore.records)
            swals;
          let pool_size =
            match pool_size with Some n -> n | None -> nshards
          in
          let t =
            {
              session = Session.create ~cache_capacity ?options (Update.store u);
              update = u;
              shard_stores = stores;
              shard_metrics = Array.init nshards (fun _ -> Metrics.create ());
              partition_counts = Array.of_list extras.Wrecord.partition_counts;
              pool = Pool.create pool_size;
              cache = Lru.create ~capacity:cache_capacity;
              boundary_fks = extras.Wrecord.boundary_fks;
              nshards;
              last = None;
              wal = Some fstore;
              shard_wals = swals;
            }
          in
          Wstore.set_metrics fstore (Session.metrics t.session);
          Array.iteri
            (fun s sw -> Wstore.set_metrics sw t.shard_metrics.(s))
            t.shard_wals;
          refresh_shard_gauge t;
          Ok t
        | exception Update.Update_error msg ->
          Array.iter (fun (r : Wstore.recovered) -> Wstore.dispose r.Wstore.store) shard_recs;
          fail_full (Printf.sprintf "shard replay: %s" msg))))

let with_cluster ?pool_size ?cache_capacity ?options ~shards schema trees f =
  let t = create ?pool_size ?cache_capacity ?options ~shards schema trees in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let session t = t.session

let metrics t = Session.metrics t.session

let shards t = t.nshards

let pool_size t = Pool.size t.pool

let shard_metrics t = Array.copy t.shard_metrics

let shard_stores t = Array.copy t.shard_stores

let partition_counts t = Array.copy t.partition_counts

let last_stats t = t.last

let full_update t = t.update

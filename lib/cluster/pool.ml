(* A fixed pool of OCaml 5 [Domain] workers draining one FIFO task
   queue. Tasks are closures; results travel through per-task futures
   guarded by their own mutex/condition, so [await] blocks only the
   caller. The pool also timestamps submission and start, giving the
   scheduler queue-wait the cluster records per shard. *)

type task = { run : unit -> unit }

type t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : task Queue.t;
  mutable closed : bool;
  mutable domains : unit Domain.t list;
  size : int;
}

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  fmutex : Mutex.t;
  fdone : Condition.t;
  mutable state : 'a state;
  submitted_at : float;
  mutable started_at : float;  (** = submitted_at until a worker picks it up *)
}

let rec worker_loop pool =
  let task =
    Mutex.lock pool.mutex;
    let rec wait () =
      if not (Queue.is_empty pool.queue) then Some (Queue.pop pool.queue)
      else if pool.closed then None
      else begin
        Condition.wait pool.nonempty pool.mutex;
        wait ()
      end
    in
    let t = wait () in
    Mutex.unlock pool.mutex;
    t
  in
  match task with
  | None -> ()
  | Some task ->
    task.run ();
    worker_loop pool

let create n =
  if n < 0 then invalid_arg "Pool.create: negative size";
  let pool =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      closed = false;
      domains = [];
      size = n;
    }
  in
  pool.domains <- List.init n (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size t = t.size

let resolve fut state =
  Mutex.lock fut.fmutex;
  fut.state <- state;
  Condition.broadcast fut.fdone;
  Mutex.unlock fut.fmutex

let submit pool f =
  let now = Unix.gettimeofday () in
  let fut =
    {
      fmutex = Mutex.create ();
      fdone = Condition.create ();
      state = Pending;
      submitted_at = now;
      started_at = now;
    }
  in
  let run () =
    fut.started_at <- Unix.gettimeofday ();
    match f () with
    | v -> resolve fut (Done v)
    | exception e -> resolve fut (Failed (e, Printexc.get_raw_backtrace ()))
  in
  if pool.size = 0 then run ()
  else begin
    Mutex.lock pool.mutex;
    if pool.closed then begin
      Mutex.unlock pool.mutex;
      invalid_arg "Pool.submit: pool is shut down"
    end;
    Queue.push { run } pool.queue;
    Condition.signal pool.nonempty;
    Mutex.unlock pool.mutex
  end;
  fut

let is_pending = function Pending -> true | Done _ | Failed _ -> false

let await fut =
  Mutex.lock fut.fmutex;
  while is_pending fut.state do
    Condition.wait fut.fdone fut.fmutex
  done;
  let state = fut.state in
  Mutex.unlock fut.fmutex;
  match state with
  | Pending -> assert false
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt

let queue_wait fut = fut.started_at -. fut.submitted_at

let shutdown pool =
  Mutex.lock pool.mutex;
  if not pool.closed then begin
    pool.closed <- true;
    Condition.broadcast pool.nonempty
  end;
  let domains = pool.domains in
  pool.domains <- [];
  Mutex.unlock pool.mutex;
  List.iter Domain.join domains

let with_pool n f =
  let pool = create n in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(** The sharded store: domain-parallel scatter-gather execution.

    A cluster partitions a document collection into [shards] shard
    stores by root-child subtree ({!Partition}) and keeps one unsharded
    store inside a {!Ppfx_service.Session} for translation/plan caching,
    overall metrics, and fallback execution. Per distinct query the
    translated SQL is analyzed once ({!Analysis}): partitionable
    statements are prepared per shard (plans revalidated against each
    shard's epoch), fanned out over a {!Pool} of domains, and k-way
    merged by Dewey position ({!Merge}). Order-axis statements — two
    locally-joined alias groups related only by document-order dewey
    comparisons or boundary sibling joins — decompose instead of falling
    back ({!Analysis.Order_partitionable}): both side selects scatter
    over the shards, each side is k-way merged, and a coordinator select
    joins the merged streams in a throwaway two-table database (indexed
    on the merge key, so the engine's Dewey merge join applies).
    Everything else — counting queries, uncorrelated EXISTS — runs on
    the unsharded store. Either way the answer is exactly equal to
    single-store execution. *)

module Tree = Ppfx_xml.Tree
module Graph = Ppfx_schema.Graph
module Loader = Ppfx_shred.Loader
module Translate = Ppfx_translate.Translate
module Engine = Ppfx_minidb.Engine
module Session = Ppfx_service.Session
module Metrics = Ppfx_service.Metrics
module Update = Ppfx_update.Update
module Wstore = Ppfx_wal.Store

type t

val create :
  ?pool_size:int ->
  ?cache_capacity:int ->
  ?options:Translate.options ->
  shards:int ->
  Graph.t ->
  Tree.node list ->
  t
(** Build the full store and [shards] shard stores from the documents
    (source trees — the cluster keeps the full store's write path, whose
    shadow forest needs them). [pool_size] defaults to [shards] worker
    domains; [0] executes tasks inline on the caller (deterministic, for
    tests). [cache_capacity] bounds both the session's translation cache
    and the cluster's per-query routing cache (default 256). Raises
    [Invalid_argument] when [shards < 1]. *)

val load : t -> Tree.node -> unit
(** Shred one more document into the full store and, partitioned, into
    every shard store. Bulk loads are conservative: every store's epoch
    bumps and all cached plans re-prepare on next use (mutations through
    {!update} commit fine-grained instead). Same id-space restriction as
    {!Update.load}: raises [Update_error] after a caret insert. *)

val update : t -> Update.op -> Update.outcome
(** Execute one subtree mutation cluster-wide. The changeset is staged
    once against the full store's shadow, committed to the full store,
    and replayed on every shard: updates and deletes apply wherever the
    row lives (spine replicas included), inserts only on the {e owning}
    shard — the shard holding the splice point's sibling anchors or
    non-replicated parent, or the lightest shard when the parent is a
    replicated spine element (the new frontier subtree's parent fk then
    joins the boundary set). Every commit is logged fine-grained, so
    prepared plans on all stores revalidate by footprint intersection
    ([retained] vs [invalidations] in the metrics). Raises
    {!Update.Update_error} on invalid operations. *)

val shard_row_counts : t -> int list
(** Live element rows per shard, [Paths] excluded — the balance gauge
    (also pushed into {!metrics} as [shard_rows] after every load and
    mutation). *)

val close : t -> unit
(** Shut the worker pool down (idempotent via {!Pool.shutdown}). On a
    durable cluster this is the drained clean shutdown: every store takes
    a final checkpoint (rotating its log to empty) and marks its manifest
    clean, so the next {!open_durable} skips the replay scans. *)

(** {2 Durability}

    A durable cluster keeps one {!Ppfx_wal.Store} per physical store
    under a data directory: [full/] for the coordinator — whose
    checkpoints carry the shadow forest and the routing extras
    (partition counts + boundary fks) — and [shard-<k>/] per shard.
    {!update} appends the commit record to every log ({e before}
    applying and acking, fsynced per the durability policy), so at any
    crash point recovery rebuilds exactly the acked prefix. *)

val make_durable :
  ?io:Ppfx_wal.Io.t ->
  ?durability:Wstore.durability ->
  ?checkpoint_bytes:int ->
  ?checkpoint_records:int ->
  data_dir:string ->
  t ->
  unit
(** Attach write-ahead logging to a freshly built cluster: initializes
    [data_dir/full] and [data_dir/shard-<k>] with generation-0 checkpoints
    of the current stores. After this, {!load} refuses (bulk loads are
    not WAL-logged — load documents first) and every {!update} is logged
    before it commits. Raises [Invalid_argument] if already durable. *)

val open_durable :
  ?io:Ppfx_wal.Io.t ->
  ?durability:Wstore.durability ->
  ?checkpoint_bytes:int ->
  ?checkpoint_records:int ->
  ?pool_size:int ->
  ?cache_capacity:int ->
  ?options:Translate.options ->
  data_dir:string ->
  unit ->
  (t, string) result
(** Cold-start a cluster from its data directory, skipping shredding
    entirely: recover the full store (checkpoint snapshot + WAL replay
    through {!Wstore.rebuild_full}, re-validating the shadow against the
    recovered relations), recover every shard named by the routing
    extras, and reopen all logs for append. The shard count, partition
    counts and boundary-fk set come from the last acked commit's extras.
    Recovery statistics flow into {!metrics} / {!shard_metrics}. *)

val durable : t -> bool

val wal_next_seq : t -> int option
(** The full store's next WAL sequence number ([None] when volatile) —
    [n] means [n - 1] commits are acked-and-persisted. Test
    introspection for the crash-recovery differential. *)

val flush_wal : t -> unit
(** Fsync unsynced group-commit appends on every store (no-op when
    volatile or already synced). *)

val dispose_wal : t -> unit
(** Drop the WAL handles without flushing or checkpointing — the
    post-crash path in fault-injection harnesses. The cluster reverts to
    volatile; on-disk state is whatever the crash left. *)

val with_cluster :
  ?pool_size:int ->
  ?cache_capacity:int ->
  ?options:Translate.options ->
  shards:int ->
  Graph.t ->
  Tree.node list ->
  (t -> 'a) ->
  'a
(** [create] / run / [close], exception-safe. *)

(** {2 Executing queries} *)

type prepared = Session.prepared

val prepare : t -> string -> prepared
(** {!Session.prepare} on the embedded session: parse + translate + plan
    cached across calls. *)

val execute : t -> prepared -> Engine.result
(** Scatter-gather when the query's SQL is partitionable, single-store
    execution otherwise (counted in [fallbacks] of {!metrics}). *)

val execute_ids : t -> prepared -> int list
val run : t -> string -> Engine.result
val run_ids : t -> string -> int list

val verdict : t -> string -> Analysis.verdict option
(** How the cluster routes this query; [None] when the schema proves the
    result empty (no SQL is produced at all). *)

(** {2 Introspection} *)

type scatter_stats = {
  critical_path : float;
      (** max per-shard execute seconds of the last scatter — the gather
          latency an idle multi-core host would observe *)
  queue_waits : float array;  (** per-shard pool queue wait, seconds *)
  shard_rows : int array;  (** per-shard result rows before the merge *)
}

val last_stats : t -> scatter_stats option
(** Stats of the most recent scatter-gather {!execute}; [None] before the
    first one (fallback executions do not update it). *)

val session : t -> Session.t
val metrics : t -> Metrics.t
(** Overall serving metrics (the embedded session's): Execute is the
    scatter-gather wall clock, Merge the k-way merge, [fallbacks] and
    [rows] the routing counters. *)

val shards : t -> int
val pool_size : t -> int
val shard_metrics : t -> Metrics.t array
(** Per-shard metrics: Plan/Queue/Execute latencies, queries, rows,
    invalidations. *)

val shard_stores : t -> Loader.t array
val partition_counts : t -> int array
(** Stored elements per shard (roots excluded), summed over documents. *)

val full_update : t -> Update.t
(** The full store's write path — exposes the shadow forest's
    introspection ({!Update.ranks}, {!Update.current_trees}) for the
    incremental-vs-reshred differential. *)

(** A fixed-size pool of OCaml 5 [Domain] workers.

    Workers drain one shared FIFO queue; {!submit} enqueues a thunk and
    returns a future, {!await} blocks until that future resolves and
    re-raises the thunk's exception (with its backtrace) if it failed.
    Each future records its submission and start timestamps, exposing the
    scheduler {!queue_wait} the cluster layer reports per shard.

    A pool of size 0 degenerates to inline execution on the caller's
    thread — useful for tests and for single-shard configurations. *)

type t

val create : int -> t
(** Spawn [n] worker domains. Raises [Invalid_argument] when [n < 0]. *)

val size : t -> int
(** Number of worker domains (0 = inline execution). *)

type 'a future

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task. Raises [Invalid_argument] after {!shutdown}. *)

val await : 'a future -> 'a
(** Block until the task completes; re-raises its exception on failure. *)

val queue_wait : 'a future -> float
(** Seconds the task spent queued before a worker started it (0 until a
    worker picks it up, and for inline pools). *)

val shutdown : t -> unit
(** Stop accepting tasks, let queued tasks finish, join the workers.
    Idempotent. *)

val with_pool : int -> (t -> 'a) -> 'a
(** [create] / run / [shutdown], exception-safe. *)

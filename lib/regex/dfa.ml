(* Lazy DFA (subset construction with memoized transitions) over the
   Thompson NFA. Matching through the DFA costs one table lookup per
   input byte once a transition is warm, which is what makes path-filter
   regexes cheap enough to run over the whole Paths relation.

   Anchors: begin-of-line edges are only traversable in the closure taken
   at position 0, so the automaton distinguishes the initial closure from
   later ones; end-of-line edges contribute to a per-state
   [accept_at_eol] flag checked when input is exhausted.

   [reseed] builds the search variant: the start state's closure is
   re-injected before every transition, giving unanchored-substring
   semantics without restarting the scan. *)

type state = {
  id : int;
  nfa_states : int list;  (** sorted *)
  trans : int array;  (** by byte; -1 = not yet computed *)
  accept_now : bool;
  accept_at_eol : bool;
}

type t = {
  nfa : Nfa.t;
  reseed : bool;
  mutable states : state array;  (** grow-doubling *)
  mutable count : int;
  index : (int list, int) Hashtbl.t;
  start_mid : int list;  (** start closure without BOL edges, for reseeding *)
  start_id : int;
}

(* Epsilon-closure over a sorted work list; [at_bol] gates Eps_bol edges.
   Eps_eol edges are never taken here — they only matter for acceptance,
   handled by [eol_accepts]. *)
let closure nfa ~at_bol seed =
  let n = Array.length nfa.Nfa.transitions in
  let mark = Array.make n false in
  let rec visit s =
    if not mark.(s) then begin
      mark.(s) <- true;
      List.iter
        (fun (edge, dst) ->
          match edge with
          | Nfa.Eps -> visit dst
          | Nfa.Eps_bol -> if at_bol then visit dst
          | Nfa.Eps_eol | Nfa.Sym _ -> ())
        nfa.Nfa.transitions.(s)
    end
  in
  List.iter visit seed;
  let out = ref [] in
  for s = n - 1 downto 0 do
    if mark.(s) then out := s :: !out
  done;
  !out

(* Can the accept state be reached from [set] using only epsilon and
   end-of-line edges? *)
let eol_accepts nfa set =
  let n = Array.length nfa.Nfa.transitions in
  let mark = Array.make n false in
  let rec visit s =
    if not mark.(s) then begin
      mark.(s) <- true;
      List.iter
        (fun (edge, dst) ->
          match edge with
          | Nfa.Eps | Nfa.Eps_eol -> visit dst
          | Nfa.Eps_bol | Nfa.Sym _ -> ())
        nfa.Nfa.transitions.(s)
    end
  in
  List.iter visit set;
  mark.(nfa.Nfa.accept)

let intern t nfa_states =
  match Hashtbl.find_opt t.index nfa_states with
  | Some id -> id
  | None ->
    let id = t.count in
    let state =
      {
        id;
        nfa_states;
        trans = Array.make 256 (-1);
        accept_now = List.mem t.nfa.Nfa.accept nfa_states;
        accept_at_eol = eol_accepts t.nfa nfa_states;
      }
    in
    if t.count = Array.length t.states then begin
      let bigger = Array.make (max 16 (2 * t.count)) state in
      Array.blit t.states 0 bigger 0 t.count;
      t.states <- bigger
    end;
    t.states.(t.count) <- state;
    t.count <- t.count + 1;
    Hashtbl.add t.index nfa_states id;
    id

let create nfa ~reseed =
  let start_mid = closure nfa ~at_bol:false [ nfa.Nfa.start ] in
  let t =
    {
      nfa;
      reseed;
      states = [||];
      count = 0;
      index = Hashtbl.create 64;
      start_mid;
      start_id = 0;
    }
  in
  let start_set = closure nfa ~at_bol:true [ nfa.Nfa.start ] in
  let start_set =
    if reseed then List.sort_uniq Int.compare (start_set @ start_mid) else start_set
  in
  let id = intern t start_set in
  { t with start_id = id }

let step t state_id c =
  let state = t.states.(state_id) in
  let cached = state.trans.(Char.code c) in
  if cached >= 0 then cached
  else begin
    let moved = ref [] in
    List.iter
      (fun s ->
        List.iter
          (fun (edge, dst) ->
            match edge with
            | Nfa.Sym pred -> if pred c then moved := dst :: !moved
            | Nfa.Eps | Nfa.Eps_bol | Nfa.Eps_eol -> ())
          t.nfa.Nfa.transitions.(s))
      state.nfa_states;
    let next = closure t.nfa ~at_bol:false !moved in
    let next =
      if t.reseed then List.sort_uniq Int.compare (next @ t.start_mid) else next
    in
    let id = intern t next in
    state.trans.(Char.code c) <- id;
    id
  end

(* Frozen DFA: the lazy machine with every transition forced, copied into
   dense immutable arrays. No mutation on the match path, so one frozen
   automaton is domain-shareable and can live in the process-wide compile
   cache. [freeze] walks states breadth-first forcing all 256 transitions
   per state; patterns whose subset construction blows past [max_states]
   (pathological alternation/counting) return [None] and keep the
   per-handle lazy path. *)

type frozen = {
  f_trans : int array;  (** [(state lsl 8) lor byte] -> next state *)
  f_accept_now : bool array;
  f_accept_at_eol : bool array;
  f_start : int;
}

let freeze nfa ~reseed ~max_states =
  let t = create nfa ~reseed in
  let exception Too_big in
  try
    (* [t.count] grows as [step] interns new states; the loop chases it. *)
    let i = ref 0 in
    while !i < t.count do
      if t.count > max_states then raise Too_big;
      for c = 0 to 255 do
        ignore (step t !i (Char.chr c))
      done;
      incr i
    done;
    if t.count > max_states then raise Too_big;
    let n = t.count in
    let f_trans = Array.make (n * 256) 0 in
    let f_accept_now = Array.make n false in
    let f_accept_at_eol = Array.make n false in
    for s = 0 to n - 1 do
      let st = t.states.(s) in
      Array.blit st.trans 0 f_trans (s lsl 8) 256;
      f_accept_now.(s) <- st.accept_now;
      f_accept_at_eol.(s) <- st.accept_at_eol
    done;
    Some { f_trans; f_accept_now; f_accept_at_eol; f_start = t.start_id }
  with Too_big -> None

let frozen_search f subject =
  let n = String.length subject in
  let trans = f.f_trans in
  let rec go state i =
    if Array.unsafe_get f.f_accept_now state then true
    else if i >= n then Array.unsafe_get f.f_accept_at_eol state
    else
      go
        (Array.unsafe_get trans ((state lsl 8) lor Char.code (String.unsafe_get subject i)))
        (i + 1)
  in
  go f.f_start 0

let frozen_matches f subject =
  let n = String.length subject in
  let trans = f.f_trans in
  let rec go state i =
    if i >= n then Array.unsafe_get f.f_accept_at_eol state
    else
      go
        (Array.unsafe_get trans ((state lsl 8) lor Char.code (String.unsafe_get subject i)))
        (i + 1)
  in
  go f.f_start 0

(* Search semantics ([reseed = true]): accept as soon as any prefix of the
   remaining scan completes a match. *)
let search t subject =
  let n = String.length subject in
  let rec go state i =
    if t.states.(state).accept_now then true
    else if i >= n then t.states.(state).accept_at_eol
    else go (step t state subject.[i]) (i + 1)
  in
  go t.start_id 0

(* Whole-subject match ([reseed = false]). *)
let matches t subject =
  let n = String.length subject in
  let rec go state i =
    if i >= n then t.states.(state).accept_at_eol
    else go (step t state subject.[i]) (i + 1)
  in
  go t.start_id 0

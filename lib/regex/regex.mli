(** POSIX-ERE regular expressions: the pattern language of the relational
    substrate's [REGEXP_LIKE] (Section 4.1 of the paper).

    Patterns follow the POSIX Extended Regular Expression syntax used by
    Oracle 10g's [REGEXP_LIKE]: literals, [.], bracket expressions,
    [* + ? {m,n}] repetition, alternation, grouping and the [^]/[$]
    anchors. Matching uses a Thompson NFA, linear in the subject length. *)

type t
(** A compiled pattern. *)

exception Parse_error of string
(** Raised by {!compile} on a malformed pattern. *)

val compile : string -> t
(** Compile a pattern. Raises {!Parse_error} on syntax errors. *)

val compile_cached : string -> t
(** Like {!compile}, but serves the parsed AST, Thompson NFA {e and
    frozen DFAs} from a process-wide, mutex-protected cache keyed on the
    pattern text — safe to call from any domain. The frozen DFAs (dense,
    immutable subset constructions) are built once on first miss and
    shared by every handle and every domain thereafter; executing through
    them touches no mutable state. Patterns whose subset construction
    exceeds an internal state cap skip freezing and fall back to a
    per-handle lazy DFA. Raises {!Parse_error} on syntax errors (failures
    are not cached). *)

val has_frozen : t -> bool
(** Whether this handle executes through a shared frozen DFA (true for
    {!compile_cached} handles below the state cap; false for {!compile}
    handles, which keep the lazy NFA-simulation path). *)

val required_literals : t -> string list list
(** A CNF of required substrings: each returned group is a list of
    alternatives, at least one of which must occur as a substring of any
    subject accepted by {!search}. Content indexes intersect posting
    lists across groups (union within a group) to get candidate rows
    before verifying with the DFA. Groups whose alternatives are shorter
    than 3 bytes are dropped; an empty result means the pattern forces no
    usable literal and callers must fall back to scanning. Conservative:
    dropping any group is always sound. *)

val cache_hits : unit -> int
(** Number of {!compile_cached} calls served from the shared cache. *)

val cache_misses : unit -> int
(** Number of {!compile_cached} calls that had to parse and build. *)

val cache_size : unit -> int
(** Number of distinct patterns currently cached. *)

val cache_clear : unit -> unit
(** Drop every cached pattern and reset the hit/miss counters (tests and
    benchmarks). *)

val search : t -> string -> bool
(** [search re subject] is [true] iff some substring of [subject] matches —
    the semantics of SQL [REGEXP_LIKE(subject, pattern)]. Anchors restrict
    matches to the subject's ends. *)

val matches : t -> string -> bool
(** [matches re subject] is [true] iff the entire subject matches. *)

val pattern : t -> string
(** The source pattern the value was compiled from. *)

val quote : string -> string
(** Escape a string so that it matches itself literally inside a pattern. *)

val ast : t -> Syntax.t
(** The parsed abstract syntax tree (exposed for tests and tooling). *)

exception Parse_error = Parse.Error

type t = {
  source : string;
  ast : Syntax.t;
  nfa : Nfa.t;
  mutable search_dfa : Dfa.t option;
  mutable match_dfa : Dfa.t option;
}

let compile source =
  let ast = Parse.parse source in
  { source; ast; nfa = Nfa.build ast; search_dfa = None; match_dfa = None }

(* Process-wide compile cache: pattern -> (ast, nfa). Both components are
   immutable once built, so one copy can be read concurrently by every
   domain (service sessions, the cluster worker pool). The lazy DFAs are
   NOT shared — [Dfa.step] memoizes transitions by mutating the holder —
   so each [compile_cached] call returns a fresh handle whose DFA grows
   privately; what the cache saves is the parse and the Thompson
   construction, the per-pattern cost. The handle itself amortizes DFA
   construction across executions of the plan that holds it. *)
let cache_lock = Mutex.create ()

let cache : (string, Syntax.t * Nfa.t) Hashtbl.t = Hashtbl.create 64

let cache_hit_count = Atomic.make 0

let cache_miss_count = Atomic.make 0

let compile_cached source =
  let found =
    Mutex.protect cache_lock (fun () -> Hashtbl.find_opt cache source)
  in
  match found with
  | Some (ast, nfa) ->
    Atomic.incr cache_hit_count;
    { source; ast; nfa; search_dfa = None; match_dfa = None }
  | None ->
    (* Parse outside the lock; a racing duplicate insert is harmless. *)
    let ast = Parse.parse source in
    let nfa = Nfa.build ast in
    Mutex.protect cache_lock (fun () ->
        if not (Hashtbl.mem cache source) then Hashtbl.add cache source (ast, nfa));
    Atomic.incr cache_miss_count;
    { source; ast; nfa; search_dfa = None; match_dfa = None }

let cache_hits () = Atomic.get cache_hit_count

let cache_misses () = Atomic.get cache_miss_count

let cache_size () = Mutex.protect cache_lock (fun () -> Hashtbl.length cache)

let cache_clear () =
  Mutex.protect cache_lock (fun () -> Hashtbl.reset cache);
  Atomic.set cache_hit_count 0;
  Atomic.set cache_miss_count 0

let search t subject =
  let dfa =
    match t.search_dfa with
    | Some d -> d
    | None ->
      let d = Dfa.create t.nfa ~reseed:true in
      t.search_dfa <- Some d;
      d
  in
  Dfa.search dfa subject

let matches t subject =
  let dfa =
    match t.match_dfa with
    | Some d -> d
    | None ->
      let d = Dfa.create t.nfa ~reseed:false in
      t.match_dfa <- Some d;
      d
  in
  Dfa.matches dfa subject

let pattern t = t.source

let quote = Syntax.quote

let ast t = t.ast

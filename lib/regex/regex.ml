exception Parse_error = Parse.Error

type t = {
  source : string;
  ast : Syntax.t;
  nfa : Nfa.t;
  frozen_search : Dfa.frozen option;
  frozen_match : Dfa.frozen option;
  mutable search_dfa : Dfa.t option;
  mutable match_dfa : Dfa.t option;
}

(* Subset-construction cap for freezing. Path and value patterns stay in
   the tens of states; anything past this is pathological and keeps the
   per-handle lazy DFA instead of paying a huge dense table. *)
let max_frozen_states = 4096

let compile source =
  let ast = Parse.parse source in
  {
    source;
    ast;
    nfa = Nfa.build ast;
    frozen_search = None;
    frozen_match = None;
    search_dfa = None;
    match_dfa = None;
  }

(* Process-wide compile cache: pattern -> (ast, nfa, frozen DFAs). All
   four components are immutable once built, so one copy can be read
   concurrently by every domain (service sessions, the cluster worker
   pool). The frozen DFAs are built once, on first miss, by forcing the
   lazy subset construction and copying it into dense arrays — every
   handle returned afterwards shares them, so N domains no longer each
   re-derive a private mutable DFA for the same pattern. Patterns whose
   construction blows past [max_frozen_states] cache [None] and fall back
   to the per-handle lazy DFA. *)
let cache_lock = Mutex.create ()

let cache :
    (string, Syntax.t * Nfa.t * Dfa.frozen option * Dfa.frozen option)
    Hashtbl.t =
  Hashtbl.create 64

let cache_hit_count = Atomic.make 0

let cache_miss_count = Atomic.make 0

let compile_cached source =
  let found =
    Mutex.protect cache_lock (fun () -> Hashtbl.find_opt cache source)
  in
  match found with
  | Some (ast, nfa, fs, fm) ->
    Atomic.incr cache_hit_count;
    {
      source;
      ast;
      nfa;
      frozen_search = fs;
      frozen_match = fm;
      search_dfa = None;
      match_dfa = None;
    }
  | None ->
    (* Build under the lock with a double-check: freezing is the once-
       per-pattern expensive step, and doing it inside the critical
       section guarantees exactly one miss (and one construction) per
       pattern even when N domains race on a cold cache. Parse errors
       propagate without caching anything. *)
    let ast, nfa, fs, fm =
      Mutex.protect cache_lock (fun () ->
          match Hashtbl.find_opt cache source with
          | Some entry ->
            Atomic.incr cache_hit_count;
            entry
          | None ->
            let ast = Parse.parse source in
            let nfa = Nfa.build ast in
            let fs =
              Dfa.freeze nfa ~reseed:true ~max_states:max_frozen_states
            in
            let fm =
              Dfa.freeze nfa ~reseed:false ~max_states:max_frozen_states
            in
            Hashtbl.add cache source (ast, nfa, fs, fm);
            Atomic.incr cache_miss_count;
            (ast, nfa, fs, fm))
    in
    {
      source;
      ast;
      nfa;
      frozen_search = fs;
      frozen_match = fm;
      search_dfa = None;
      match_dfa = None;
    }

let cache_hits () = Atomic.get cache_hit_count

let cache_misses () = Atomic.get cache_miss_count

let cache_size () = Mutex.protect cache_lock (fun () -> Hashtbl.length cache)

let cache_clear () =
  Mutex.protect cache_lock (fun () -> Hashtbl.reset cache);
  Atomic.set cache_hit_count 0;
  Atomic.set cache_miss_count 0

let has_frozen t = Option.is_some t.frozen_search

let search t subject =
  match t.frozen_search with
  | Some f -> Dfa.frozen_search f subject
  | None ->
    let dfa =
      match t.search_dfa with
      | Some d -> d
      | None ->
        let d = Dfa.create t.nfa ~reseed:true in
        t.search_dfa <- Some d;
        d
    in
    Dfa.search dfa subject

let matches t subject =
  match t.frozen_match with
  | Some f -> Dfa.frozen_matches f subject
  | None ->
    let dfa =
      match t.match_dfa with
      | Some d -> d
      | None ->
        let d = Dfa.create t.nfa ~reseed:false in
        t.match_dfa <- Some d;
        d
    in
    Dfa.matches dfa subject

let pattern t = t.source

let quote = Syntax.quote

let ast t = t.ast

(* Required-literal extraction: a CNF of substring alternatives. Each
   returned group [g] is a set of strings of which at least one MUST
   appear somewhere in any subject matched by [search] — so a content
   index can intersect posting lists across groups (union within a
   group) to get a candidate superset before verifying with the DFA.

   Per node we track [exact] — [Some xs] iff the node's language is
   exactly the finite set [xs] — and [req], the substring groups already
   forced. Sequences are flattened first and folded left-to-right,
   accumulating maximal exact runs by cross-product concatenation;
   an inexact item (a [.*], a class, an oversized product) demotes the
   run so far to a required group and starts a new run. Flattening
   matters: the parser right-nests [Seq], and a naive recursion would
   fragment "listitem" into single-character groups. *)

let cross_cap = 16

let group_of = function
  | Some xs when xs <> [] && not (List.mem "" xs) -> [ List.sort_uniq compare xs ]
  | _ -> []

(* Groups implied by a node: its exact language if usable, else what its
   structure already forces. *)
let groups_of_info (exact, req) =
  match group_of exact with [] -> req | g -> g

let rec lit_info (ast : Syntax.t) : string list option * string list list =
  match ast with
  | Syntax.Empty | Syntax.Bol | Syntax.Eol -> (Some [ "" ], [])
  | Syntax.Char c -> (Some [ String.make 1 c ], [])
  | Syntax.Any | Syntax.Class _ -> (None, [])
  | Syntax.Seq _ as s ->
    let rec flatten = function
      | Syntax.Seq (a, b) -> flatten a @ flatten b
      | x -> [ x ]
    in
    let acc = ref (Some [ "" ]) in
    let req = ref [] in
    let pure = ref true in
    let flush () =
      req := !req @ group_of !acc;
      acc := Some [ "" ]
    in
    List.iter
      (fun item ->
        let exact, ireq = lit_info item in
        match (exact, !acc) with
        | Some xs, Some a when List.length xs * List.length a <= cross_cap ->
          acc :=
            Some
              (List.concat_map (fun p -> List.map (fun s -> p ^ s) xs) a);
          req := !req @ ireq
        | Some xs, _ ->
          (* Run too big to extend: break it, start a fresh run at [xs]. *)
          flush ();
          pure := false;
          req := !req @ ireq;
          acc := Some xs
        | None, _ ->
          flush ();
          pure := false;
          req := !req @ ireq)
      (flatten s);
    if !pure then (!acc, !req)
    else begin
      flush ();
      (None, !req)
    end
  | Syntax.Alt (a, b) ->
    let (ea, _) as ia = lit_info a in
    let (eb, _) as ib = lit_info b in
    let exact =
      match (ea, eb) with
      | Some xa, Some xb when List.length xa + List.length xb <= cross_cap ->
        Some (xa @ xb)
      | _ -> None
    in
    (* A requirement of the alternation must hold on both branches: the
       pairwise union of one group per side is required. Cap the product
       to keep pathological alternations cheap. *)
    let ga = groups_of_info ia and gb = groups_of_info ib in
    let req =
      if ga = [] || gb = [] || List.length ga * List.length gb > 8 then []
      else
        List.concat_map
          (fun g1 -> List.map (fun g2 -> List.sort_uniq compare (g1 @ g2)) gb)
          ga
    in
    (exact, req)
  | Syntax.Star _ | Syntax.Opt _ -> (None, [])
  | Syntax.Plus a -> (None, groups_of_info (lit_info a))
  | Syntax.Repeat (a, lo, _) ->
    if lo >= 1 then (None, groups_of_info (lit_info a)) else (None, [])

(* Groups whose every alternative is shorter than 3 bytes can't drive a
   trigram probe and barely narrow a token probe; drop them here so
   planners see only usable groups. *)
let min_literal_len = 3

let required_literals t =
  let groups = groups_of_info (lit_info t.ast) in
  let usable =
    List.filter
      (fun g -> List.for_all (fun s -> String.length s >= min_literal_len) g)
      groups
  in
  List.sort_uniq compare usable

module Tree = Ppfx_xml.Tree
module Graph = Ppfx_schema.Graph

let el ?(attrs = []) tag children = Tree.Element { tag; attrs; children }

let txt s = Tree.Text s

let words =
  [|
    "gold"; "silver"; "vintage"; "rare"; "mint"; "classic"; "signed"; "original";
    "antique"; "modern"; "large"; "small"; "blue"; "red"; "green"; "heavy"; "light";
    "fast"; "slow"; "deep"; "bright"; "quiet"; "loud"; "smooth"; "rough"; "sharp";
    "round"; "square"; "open"; "closed"; "early"; "late"; "first"; "second"; "third";
    "prime"; "select"; "choice"; "grade"; "special";
  |]

let cities = [| "athens"; "paris"; "tokyo"; "lima"; "cairo"; "oslo"; "dublin"; "quito" |]

let countries = [| "greece"; "france"; "japan"; "peru"; "egypt"; "norway"; "ireland" |]

let dates = [| "01/01/2000"; "02/14/2000"; "03/30/2000"; "07/04/2000"; "12/25/2000" |]

let regions = [| "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" |]

let sentence rng n =
  String.concat " " (List.init n (fun _ -> Prng.pick rng words))

(* A 'text' element: mixed content with keyword children. *)
let text_element rng ~keywords =
  let rec parts k acc =
    if k = 0 then List.rev (txt (sentence rng (1 + Prng.int rng 4)) :: acc)
    else
      parts (k - 1)
        (txt (sentence rng (1 + Prng.int rng 3))
         :: el "keyword" [ txt (sentence rng (1 + Prng.int rng 2)) ]
         :: acc)
  in
  el "text" (parts keywords [])

(* description: text or a parlist of listitems, recursively. *)
let rec description rng ~depth ~force_keyword =
  let kw () = if force_keyword then 1 + Prng.int rng 2 else Prng.int rng 3 in
  if depth <= 0 || Prng.chance rng 0.6 then
    el "description" [ text_element rng ~keywords:(kw ()) ]
  else el "description" [ parlist rng ~depth ~force_keyword ]

and parlist rng ~depth ~force_keyword =
  let items = 1 + Prng.int rng 2 in
  el "parlist"
    (List.init items (fun i ->
         let force = force_keyword && i = 0 in
         if depth > 1 && Prng.chance rng 0.3 then
           el "listitem" [ parlist rng ~depth:(depth - 1) ~force_keyword:force ]
         else
           el "listitem"
             [ text_element rng ~keywords:(if force then 1 + Prng.int rng 2 else Prng.int rng 3) ]))

let mail rng =
  el "mail"
    [
      el "from" [ txt (sentence rng 2) ];
      el "to" [ txt (sentence rng 2) ];
      el "date" [ txt (Prng.pick rng dates) ];
      text_element rng ~keywords:(Prng.int rng 2);
    ]

let item rng ~id ~ncats =
  let attrs =
    ("id", Printf.sprintf "item%d" id)
    :: (if id = 0 || Prng.chance rng 0.1 then [ "featured", "yes" ] else [])
  in
  let incategories =
    List.init
      (1 + Prng.int rng 2)
      (fun _ ->
        el ~attrs:[ "category", Printf.sprintf "category%d" (Prng.int rng ncats) ]
          "incategory" [])
  in
  let mails = List.init (Prng.int rng 2) (fun _ -> mail rng) in
  el ~attrs "item"
    ([
       el "location" [ txt (Prng.pick rng countries) ];
       el "quantity" [ txt (string_of_int (1 + Prng.int rng 5)) ];
       el "name" [ txt (sentence rng 2) ];
       el "payment" [ txt "Cash Check" ];
       description rng ~depth:3 ~force_keyword:(id = 0);
       el "shipping" [ txt "Will ship internationally" ];
     ]
    @ incategories
    @ [ el "mailbox" mails ])

let person rng ~id =
  let name = sentence rng 2 in
  let optional p node = if Prng.chance rng p then [ node ] else [] in
  el
    ~attrs:[ "id", Printf.sprintf "person%d" id ]
    "person"
    ([
       el "name" [ txt name ];
       el "emailaddress" [ txt (Printf.sprintf "mailto:%d@example.org" id) ];
     ]
    @ optional 0.6 (el "phone" [ txt (Printf.sprintf "+%d" (1000 + Prng.int rng 9000)) ])
    @ optional 0.7
        (el "address"
           [
             el "street" [ txt (Printf.sprintf "%d main st" (1 + Prng.int rng 99)) ];
             el "city" [ txt (Prng.pick rng cities) ];
             el "country" [ txt (Prng.pick rng countries) ];
             el "zipcode" [ txt (string_of_int (10000 + Prng.int rng 89999)) ];
           ])
    @ optional 0.45 (el "homepage" [ txt (Printf.sprintf "http://example.org/~p%d" id) ])
    @ optional 0.5 (el "creditcard" [ txt "1234 5678 9012 3456" ])
    @ [
        el
          ~attrs:[ "income", string_of_int (20000 + Prng.int rng 80000) ]
          "profile"
          ([
             el
               ~attrs:[ "category", Printf.sprintf "category%d" (Prng.int rng 3) ]
               "interest" [];
           ]
          @ optional 0.5 (el "education" [ txt "Graduate School" ])
          @ optional 0.5 (el "gender" [ txt (if Prng.chance rng 0.5 then "male" else "female") ])
          @ [ el "business" [ txt (if Prng.chance rng 0.5 then "Yes" else "No") ] ]
          @ optional 0.5 (el "age" [ txt (string_of_int (18 + Prng.int rng 60)) ]));
        el "watches"
          (List.init (Prng.int rng 2) (fun _ ->
               el
                 ~attrs:[ "open_auction", Printf.sprintf "open_auction%d" (Prng.int rng 5) ]
                 "watch" []));
      ])

let bidder rng ~person_id ~date =
  el "bidder"
    [
      el "date" [ txt date ];
      el "time" [ txt (Printf.sprintf "%02d:%02d:00" (Prng.int rng 24) (Prng.int rng 60)) ];
      el ~attrs:[ "person", Printf.sprintf "person%d" person_id ] "personref" [];
      el "increase" [ txt (string_of_int (1 + (3 * Prng.int rng 10))) ];
    ]

let open_auction rng ~id ~nitems ~npeople =
  let interval_start = Prng.pick rng dates in
  (* Q-A needs bidder/date = interval/start on some auctions. *)
  let nbidders = if id = 0 then 3 else Prng.int rng 4 in
  let bidders =
    List.init nbidders (fun k ->
        let person_id = if id = 0 && k = 0 then 0 else if id = 0 && k = 1 then 1 else Prng.int rng npeople in
        let date = if Prng.chance rng 0.25 then interval_start else Prng.pick rng dates in
        bidder rng ~person_id ~date)
  in
  let optional p node = if Prng.chance rng p then [ node ] else [] in
  el
    ~attrs:[ "id", Printf.sprintf "open_auction%d" id ]
    "open_auction"
    ([ el "initial" [ txt (string_of_int (10 + Prng.int rng 200)) ] ]
    @ optional 0.5 (el "reserve" [ txt (string_of_int (50 + Prng.int rng 400)) ])
    @ bidders
    @ [
        el "current" [ txt (string_of_int (20 + Prng.int rng 500)) ];
      ]
    @ optional 0.4 (el "privacy" [ txt "Yes" ])
    @ [
        el ~attrs:[ "item", Printf.sprintf "item%d" (Prng.int rng nitems) ] "itemref" [];
        el ~attrs:[ "person", Printf.sprintf "person%d" (Prng.int rng npeople) ] "seller" [];
        el "annotation"
          [
            el ~attrs:[ "person", Printf.sprintf "person%d" (Prng.int rng npeople) ] "author" [];
            description rng ~depth:2 ~force_keyword:false;
            el "happiness" [ txt (string_of_int (1 + Prng.int rng 10)) ];
          ];
        el "quantity" [ txt (string_of_int (1 + Prng.int rng 3)) ];
        el "type" [ txt (if Prng.chance rng 0.5 then "Regular" else "Featured") ];
        el "interval"
          [ el "start" [ txt interval_start ]; el "end" [ txt (Prng.pick rng dates) ] ];
      ])

let closed_auction rng ~nitems ~npeople =
  el "closed_auction"
    [
      el ~attrs:[ "person", Printf.sprintf "person%d" (Prng.int rng npeople) ] "seller" [];
      el ~attrs:[ "person", Printf.sprintf "person%d" (Prng.int rng npeople) ] "buyer" [];
      el ~attrs:[ "item", Printf.sprintf "item%d" (Prng.int rng nitems) ] "itemref" [];
      el "price" [ txt (string_of_int (10 + Prng.int rng 990)) ];
      el "date" [ txt (Prng.pick rng dates) ];
      el "quantity" [ txt (string_of_int (1 + Prng.int rng 3)) ];
      el "type" [ txt (if Prng.chance rng 0.5 then "Regular" else "Featured") ];
      el "annotation"
        [
          el ~attrs:[ "person", Printf.sprintf "person%d" (Prng.int rng npeople) ] "author" [];
          description rng ~depth:2 ~force_keyword:false;
          el "happiness" [ txt (string_of_int (1 + Prng.int rng 10)) ];
        ];
    ]

let generate ?(seed = 42) ~items_per_region () =
  let rng = Prng.create seed in
  let n = max 1 items_per_region in
  let nitems = 6 * n in
  let npeople = 2 * nitems in
  let nopen = max 5 nitems in
  let nclosed = max 2 (nitems / 2) in
  let ncats = max 2 (nitems / 5) in
  let next_item = ref 0 in
  let region name =
    el name
      (List.init n (fun _ ->
           let id = !next_item in
           incr next_item;
           item rng ~id ~ncats))
  in
  el "site"
    [
      el "regions" (Array.to_list (Array.map region regions));
      el "categories"
        (List.init ncats (fun i ->
             el
               ~attrs:[ "id", Printf.sprintf "category%d" i ]
               "category"
               [ el "name" [ txt (sentence rng 2) ]; description rng ~depth:1 ~force_keyword:false ]));
      el "catgraph"
        (List.init ncats (fun i ->
             el
               ~attrs:
                 [
                   "from", Printf.sprintf "category%d" i;
                   "to", Printf.sprintf "category%d" (Prng.int rng ncats);
                 ]
               "edge" []));
      el "people" (List.init npeople (fun i -> person rng ~id:i));
      el "open_auctions"
        (List.init nopen (fun i -> open_auction rng ~id:i ~nitems ~npeople));
      el "closed_auctions"
        (List.init nclosed (fun _ -> closed_auction rng ~nitems ~npeople));
    ]

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)
(* ------------------------------------------------------------------ *)

let schema () =
  let b = Graph.Builder.create () in
  let def = Graph.Builder.define b in
  let site = def "site" in
  let regions_d = def "regions" in
  let region_defs = Array.map (fun r -> def r) regions in
  let item = def ~attrs:[ "id"; "featured" ] "item" in
  let location = def ~text:true "location" in
  let quantity = def ~text:true "quantity" in
  let name = def ~text:true "name" in
  let payment = def ~text:true "payment" in
  let description = def "description" in
  let shipping = def ~text:true "shipping" in
  let incategory = def ~attrs:[ "category" ] "incategory" in
  let mailbox = def "mailbox" in
  let mail = def "mail" in
  let from = def ~text:true "from" in
  let to_ = def ~text:true "to" in
  let date = def ~text:true "date" in
  let text = def ~text:true "text" in
  let keyword = def ~text:true "keyword" in
  let parlist = def "parlist" in
  let listitem = def "listitem" in
  let categories = def "categories" in
  let category = def ~attrs:[ "id" ] "category" in
  let catgraph = def "catgraph" in
  let edge = def ~attrs:[ "from"; "to" ] "edge" in
  let people = def "people" in
  let person = def ~attrs:[ "id" ] "person" in
  let emailaddress = def ~text:true "emailaddress" in
  let phone = def ~text:true "phone" in
  let address = def "address" in
  let street = def ~text:true "street" in
  let city = def ~text:true "city" in
  let country = def ~text:true "country" in
  let zipcode = def ~text:true "zipcode" in
  let homepage = def ~text:true "homepage" in
  let creditcard = def ~text:true "creditcard" in
  let profile = def ~attrs:[ "income" ] "profile" in
  let interest = def ~attrs:[ "category" ] "interest" in
  let education = def ~text:true "education" in
  let gender = def ~text:true "gender" in
  let business = def ~text:true "business" in
  let age = def ~text:true "age" in
  let watches = def "watches" in
  let watch = def ~attrs:[ "open_auction" ] "watch" in
  let open_auctions = def "open_auctions" in
  let open_auction = def ~attrs:[ "id" ] "open_auction" in
  let initial = def ~text:true "initial" in
  let reserve = def ~text:true "reserve" in
  let bidder = def "bidder" in
  let time = def ~text:true "time" in
  let personref = def ~attrs:[ "person" ] "personref" in
  let increase = def ~text:true "increase" in
  let current = def ~text:true "current" in
  let privacy = def ~text:true "privacy" in
  let itemref = def ~attrs:[ "item" ] "itemref" in
  let seller = def ~attrs:[ "person" ] "seller" in
  let annotation = def "annotation" in
  let author = def ~attrs:[ "person" ] "author" in
  let happiness = def ~text:true "happiness" in
  let type_ = def ~text:true "type" in
  let interval = def "interval" in
  let start = def ~text:true "start" in
  let end_ = def ~text:true "end" in
  let closed_auctions = def "closed_auctions" in
  let closed_auction = def "closed_auction" in
  let buyer = def ~attrs:[ "person" ] "buyer" in
  let price = def ~text:true "price" in
  let child parent c = Graph.Builder.add_child b ~parent c in
  let children parent cs = List.iter (child parent) cs in
  children site [ regions_d; categories; catgraph; people; open_auctions; closed_auctions ];
  Array.iter (fun r -> child regions_d r) region_defs;
  Array.iter (fun r -> child r item) region_defs;
  children item
    [ location; quantity; name; payment; description; shipping; incategory; mailbox ];
  children description [ text; parlist ];
  children parlist [ listitem ];
  children listitem [ text; parlist ];
  children text [ keyword ];
  children mailbox [ mail ];
  children mail [ from; to_; date; text ];
  children categories [ category ];
  children category [ name; description ];
  children catgraph [ edge ];
  children people [ person ];
  children person
    [ name; emailaddress; phone; address; homepage; creditcard; profile; watches ];
  children address [ street; city; country; zipcode ];
  children profile [ interest; education; gender; business; age ];
  children watches [ watch ];
  children open_auctions [ open_auction ];
  children open_auction
    [
      initial; reserve; bidder; current; privacy; itemref; seller; annotation; quantity;
      type_; interval;
    ];
  children bidder [ date; time; personref; increase ];
  children annotation [ author; description; happiness ];
  children interval [ start; end_ ];
  children closed_auctions [ closed_auction ];
  children closed_auction
    [ seller; buyer; itemref; price; date; quantity; type_; annotation ];
  Graph.Builder.finish b ~root:site

(* ------------------------------------------------------------------ *)
(* The XPathMark query set (paper Appendix B)                           *)
(* ------------------------------------------------------------------ *)

let queries =
  [
    "Q1", "/site/regions/*/item";
    ( "Q2",
      "/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/text/keyword"
    );
    "Q3", "//keyword";
    "Q4", "/descendant-or-self::listitem/descendant-or-self::keyword";
    "Q5", "/site/regions/*/item[parent::namerica or parent::samerica]";
    "Q6", "//keyword/ancestor::listitem";
    "Q7", "//keyword/ancestor-or-self::mail";
    ( "Q9",
      "/site/open_auctions/open_auction[@id='open_auction0']/bidder/preceding-sibling::bidder"
    );
    "Q10", "/site/regions/*/item[@id='item0']/following::item";
    ( "Q11",
      "/site/open_auctions/open_auction/bidder[personref/@person='person1']/preceding::bidder[personref/@person='person0']"
    );
    "Q12", "//item[@featured='yes']";
    "Q13", "//*[@id]";
    "Q21", "/site/regions/*/item[@id='item0']/description//keyword/text()";
    "Q22", "/site/regions/namerica/item | /site/regions/samerica/item";
    "Q23", "/site/people/person[address and (phone or homepage)]";
    "Q24", "/site/people/person[not(homepage)]";
    "QA", "/site/open_auctions/open_auction[bidder/date = interval/start]";
  ]

(* Extensions beyond the paper's subset (README "Supported XPath
   subset"): string functions and count() comparisons. *)
let extension_queries =
  [
    "XE1", "//item[location[contains(., 'france')]]";
    "XE2", "//person[emailaddress[starts-with(., 'mailto:1')]]";
    "XE3", "/site/open_auctions/open_auction[count(bidder) > 2]";
    "XE4", "//item[count(incategory) = 2]";
    "XE5", "//keyword[string-length(.) > 10]";
    "XE6", "//parlist[count(listitem) >= 2]";
  ]

(* Lookup across both sets, so benches can mix paper and extension
   queries in one list. *)
let query name =
  match List.assoc_opt name queries with
  | Some q -> q
  | None -> List.assoc name extension_queries

(* The benchmark queries inside the twig subset. *)
let twig_queries =
  [
    "Q1", List.assoc "Q1" queries;
    "Q2", List.assoc "Q2" queries;
    "Q3", List.assoc "Q3" queries;
    "Q4", List.assoc "Q4" queries;
  ]

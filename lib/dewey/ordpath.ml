type t = string

exception Invalid of string

let invalid fmt = Format.kasprintf (fun msg -> raise (Invalid msg)) fmt

let component_bytes = 3

let component_min = -0x3FFFFF

let component_max = 0x3FFFFF

(* Components are stored with a +0x400000 offset so that the encoded
   bytes compare in component order and the top bit stays clear. *)
let offset = 0x400000

let encode_component buf c =
  if c < component_min || c > component_max then
    invalid "ordpath component %d out of range" c;
  let v = c + offset in
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0x7F));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let of_components = function
  | [] -> invalid "empty ordpath component vector"
  | components ->
    (match List.rev components with
     | last :: _ when last land 1 = 0 -> invalid "ordpath labels must end with an odd component"
     | _ -> ());
    let buf = Buffer.create (component_bytes * List.length components) in
    List.iter (encode_component buf) components;
    Buffer.contents buf

let root = of_components [ 1 ]

let to_components t =
  let n = String.length t in
  if n = 0 || n mod component_bytes <> 0 then invalid "malformed ordpath encoding";
  List.init (n / component_bytes) (fun i ->
      let b k = Char.code t.[(i * component_bytes) + k] in
      if b 0 land 0x80 <> 0 then invalid "ordpath component with top bit set";
      ((b 0 lsl 16) lor (b 1 lsl 8) lor b 2) - offset)

let child t i =
  if i < 1 then invalid "child ordinal must be >= 1";
  let buf = Buffer.create (String.length t + component_bytes) in
  Buffer.add_string buf t;
  encode_component buf ((2 * i) - 1);
  Buffer.contents buf

let is_odd c = c land 1 = 1 || c land 1 = -1

let level t = List.length (List.filter is_odd (to_components t))

let compare = String.compare

let max_suffix = "\xFF"

let upper_bound t = t ^ max_suffix

let is_descendant d ~of_:a = String.compare d a > 0 && String.compare d (upper_bound a) < 0

let is_following n2 ~of_:n1 = String.compare n2 (upper_bound n1) > 0

let is_preceding n2 ~of_:n1 = String.compare n1 (upper_bound n2) > 0

let parent t =
  match List.rev (to_components t) with
  | [] -> None
  | _odd :: rest ->
    (* strip the careting (even) components that preceded the final odd *)
    let rec strip = function
      | c :: more when not (is_odd c) -> strip more
      | remaining -> remaining
    in
    (match strip rest with
     | [] -> None
     | remaining -> Some (of_components (List.rev remaining)))

(* The position part of a label relative to its parent: the final odd
   component plus the careting components before it. *)
let split_tail t =
  let rec take_tail acc = function
    | c :: rest when not (is_odd c) -> take_tail (c :: acc) rest
    | rest -> List.rev rest, acc
  in
  match List.rev (to_components t) with
  | [] -> invalid "empty label"
  | last :: before -> take_tail [ last ] before

(* A fresh odd component strictly after the tail [x :: _]. *)
let rec after_tail = function
  | [] -> [ 1 ]
  | x :: _ -> [ (if is_odd x then x + 2 else x + 1) ]

(* A fresh odd component strictly before the tail [y :: _]. *)
and before_tail = function
  | [] -> invalid "before an empty tail"
  | y :: _ -> [ (if is_odd y then y - 2 else y - 1) ]

(* A tail strictly between [ta] and [tb] (ta < tb component-wise). *)
and between_tails ta tb =
  match ta, tb with
  | [], tb -> before_tail tb
  | ta, [] -> after_tail ta
  | x :: ra, y :: rb ->
    if x = y then x :: between_tails ra rb
    else begin
      (* x < y *)
      let odd_between =
        let o1 = x + 1 and o2 = x + 2 in
        if is_odd o1 && o1 < y then Some o1
        else if is_odd o2 && o2 < y then Some o2
        else None
      in
      match odd_between with
      | Some o -> [ o ]
      | None ->
        let even_between =
          let e1 = x + 1 and e2 = x + 2 in
          if (not (is_odd e1)) && e1 < y then Some e1
          else if (not (is_odd e2)) && e2 < y then Some e2
          else None
        in
        (match even_between with
         | Some e -> [ e; 1 ]
         | None ->
           (* y = x + 1 *)
           if not (is_odd x) then x :: after_tail ra
           else y :: before_tail rb)
    end

let insert_between a b =
  match a, b with
  | None, None -> invalid "insert_between: no reference siblings"
  | Some a, None ->
    let prefix, tail = split_tail a in
    of_components (prefix @ after_tail tail)
  | None, Some b ->
    let prefix, tail = split_tail b in
    of_components (prefix @ before_tail tail)
  | Some a, Some b ->
    if String.compare a b >= 0 then invalid "insert_between: left label must precede right";
    let pa, ta = split_tail a in
    let pb, tb = split_tail b in
    if pa <> pb then invalid "insert_between: labels are not siblings";
    of_components (pa @ between_tails ta tb)

let to_raw t = t

let of_raw s =
  (* Validate by decoding: raises {!Invalid} on malformed bytes. A raw
     label may legitimately end in a careting run only as an internal
     prefix of stored bytes, so enforce the odd-last invariant too. *)
  (match List.rev (to_components s) with
   | last :: _ when not (is_odd last) ->
     invalid "ordpath labels must end with an odd component"
   | _ -> ());
  s

let to_dotted t = String.concat "." (List.map string_of_int (to_components t))

let pp ppf t = Format.pp_print_string ppf (to_dotted t)

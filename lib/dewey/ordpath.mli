(** ORDPATH: the insert-friendly Dewey variant of O'Neil et al.
    (SIGMOD 2004), cited as reference [19] of the paper and used by the
    related system [16] it compares against.

    Plain Dewey positions ({!Dewey}) must renumber siblings to insert a
    node between two existing ones. ORDPATH reserves {e even and negative}
    component values as "careting" components that do not contribute a
    level: only odd components count as levels, so a node can always be
    placed between two siblings by extending one of them with a caret
    followed by a fresh odd component — no existing label ever changes.

    This implementation keeps the paper's 3-byte component encoding with
    an offset so that lexicographic byte comparison still equals document
    order, and all of Table 2's axis predicates keep working unchanged:
    descendants of [d] are exactly the labels strictly between [d] and
    [d || 0xFF]. *)

type t = private string

exception Invalid of string

val root : t
(** The label [1] of a document root element. *)

val of_components : int list -> t
(** Encode a component vector (components in
    [-0x3FFFFF .. 0x3FFFFF]). *)

val to_components : t -> int list

val child : t -> int -> t
(** [child t i] appends the [i]-th odd child component [2i - 1]
    (1-based), matching an initial bulk load. *)

val insert_between : t option -> t option -> t
(** [insert_between (Some a) (Some b)] is a fresh label strictly between
    sibling labels [a] and [b] ([a < b], same parent); [insert_between
    None (Some b)] is before [b]; [insert_between (Some a) None] after
    [a]; [insert_between None None] raises {!Invalid}. No existing label
    is ever modified. *)

val level : t -> int
(** Number of {e odd} components — careting components do not add a
    level. *)

val compare : t -> t -> int
(** Lexicographic byte order = document order. *)

val is_descendant : t -> of_:t -> bool
val is_following : t -> of_:t -> bool
val is_preceding : t -> of_:t -> bool

val parent : t -> t option
(** Strips the trailing odd component and any careting components before
    it. *)

val to_raw : t -> string
(** The encoded bytes as stored in a BINARY column. Lexicographic byte
    order over these equals document order. *)

val of_raw : string -> t
(** Re-adopt bytes previously produced by {!to_raw} (e.g. read back from
    a table's label column). Validates the encoding; raises {!Invalid}
    on malformed bytes. *)

val to_dotted : t -> string
val pp : Format.formatter -> t -> unit

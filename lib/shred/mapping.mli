(** The schema-aware XML-to-relational mapping (paper Section 3).

    One relation per schema vertex (element definition / complex type),
    with columns:
    - [id] — element id, primary key;
    - one foreign-key column per possible parent relation, named
      [<parent_relation>_id] (a recursive vertex references itself);
    - [doc_id] on the root relation, distinguishing documents;
    - [dewey_pos] — the Dewey position as a binary string (Section 4.2);
    - [path_id] — foreign key into the [Paths] relation (Section 3.1);
    - [text] — the element's XPath string value (all descendant text) and
      [dtext] — its direct text, backing [text()] steps;
    - [ord] and [sibs] — the element's 1-based position among its
      same-tag siblings and their total count, backing positional
      predicates ([n], [position()], [last()]) on child steps;
    - one [attr_<name>] column per declared attribute (prefixed to avoid
      collisions with the descriptor columns).

    Indexes per Section 3.1: [id], each parent foreign key, and the
    concatenated [(dewey_pos, path_id)] index. The [Paths] relation is
    indexed on [id] and on [path]. *)

module Graph = Ppfx_schema.Graph

type t

val of_schema : Graph.t -> t
(** Derive the mapping (does not create any tables yet). *)

val schema : t -> Graph.t

val paths_table : string
(** Name of the [Paths] relation ("paths"). *)

val relation : t -> Graph.def -> string
(** Relation name storing instances of the definition. *)

val parent_fk : t -> child:Graph.def -> parent:Graph.def -> string
(** Name of the foreign-key column in [child]'s relation referencing
    [parent]'s relation. Raises [Invalid_argument] if the edge does not
    exist in the schema. *)

val attr_column : string -> string
(** Column name for an attribute ("attr_" ^ name). *)

val text_column : string
(** ["text"] — the string-value column used by value comparisons. *)

val dtext_column : string
(** ["dtext"] — the direct-text column backing [text()] steps. *)

val has_text_column : t -> Graph.def -> bool

val columns_of_def : t -> Graph.def -> Ppfx_minidb.Table.column list
(** The full column list of the definition's relation, in order. *)

val create_tables : ?partitioned:bool -> t -> Ppfx_minidb.Database.t -> unit
(** Create all mapping relations (including [Paths]) with their indexes.
    By default ([partitioned = true]) every element fact table is
    declared partitioned by [path_id] with per-partition [dewey_pos]
    order (see {!Ppfx_minidb.Table.partition_spec}), which the engine
    exploits for partition pruning; pass [~partitioned:false] for a
    plain heap layout (bench comparisons). [Paths] itself is never
    partitioned. *)

(** Shredding XML documents into the schema-aware relational store. *)

module Graph = Ppfx_schema.Graph
module Doc = Ppfx_xml.Doc

type t = {
  mapping : Mapping.t;
  db : Ppfx_minidb.Database.t;
  docs : Doc.t list;  (** loaded documents, in [doc_id] order starting at 1 *)
}
(** A loaded store instance. *)

exception Rejected of string
(** Raised when a document does not conform to the mapping's schema. *)

val create : ?partitioned:bool -> Mapping.t -> t
(** Create the store: all mapping relations and indexes, no data.
    [?partitioned] is forwarded to {!Mapping.create_tables} (default:
    path-partitioned fact tables). *)

val label : doc_id:int -> Ppfx_dewey.Dewey.t -> string
(** The stored label bytes of an element: the ORDPATH encoding of
    [doc_id :: dewey components], every component mapped to its odd form
    [2c - 1]. Byte order equals document order, and the write path can
    caret fresh labels between existing ones without relabeling. *)

val load : ?keep:(Doc.element -> bool) -> t -> Doc.t -> t
(** Shred one document into the store; assigns the next [doc_id]. The
    [Paths] relation grows with any paths not seen before (Section 3.1).

    Element ids are made globally unique by offsetting each document's
    preorder ids past the previous documents', and stored labels are
    ORDPATH encodings prefixed with a [doc_id] component (every document
    root becomes a child of a virtual collection root) — see {!label}.
    Structural joins therefore never cross documents; the order axes see
    the store as one forest ordered by [doc_id]. Raises {!Rejected} on
    schema mismatch.

    [keep] (default: keep everything) selects the subset of elements whose
    rows are stored — the cluster layer's partitioned loading. Dropped
    elements still advance the global id/Dewey numbering, are still
    validated against the schema, and still intern their root-to-node
    paths, so: (a) a kept element's stored columns are byte-identical to
    what a full load would store (ids, Dewey, [ord]/[sibs] and string
    values are computed from the whole document), and (b) every partition
    of the same document sequence builds the identical [Paths] relation. *)

val locate : t -> int -> int * int
(** [locate t global_id] is [(doc_index, local_id)]: which loaded
    document (0-based) a global element id belongs to, and its preorder
    id within that document. Raises [Invalid_argument] when out of
    range. *)

val shred : Graph.t -> Doc.t -> t
(** Convenience: mapping + create + load of a single document. *)

val path_id : t -> string -> int option
(** Look up a root-to-node path in the [Paths] relation. *)

val def_of_element : t -> doc:Doc.t -> int -> Graph.def
(** The schema vertex an element instantiates (computed from its path).
    Raises [Not_found] for unknown paths. *)

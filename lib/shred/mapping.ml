module Graph = Ppfx_schema.Graph
module Table = Ppfx_minidb.Table
module Database = Ppfx_minidb.Database
module Value = Ppfx_minidb.Value

type t = { schema : Graph.t }

let of_schema schema = { schema }

let schema t = t.schema

let paths_table = "paths"

let relation _t (def : Graph.def) = def.Graph.relation

let parent_fk t ~child ~parent =
  if not (List.exists (fun p -> p.Graph.id = parent.Graph.id) (Graph.parents t.schema child))
  then
    invalid_arg
      (Printf.sprintf "Mapping.parent_fk: %s is not a parent of %s" parent.Graph.name
         child.Graph.name);
  parent.Graph.relation ^ "_id"

let attr_column name = "attr_" ^ name

let text_column = "text"

let dtext_column = "dtext"

(* Every relation carries a text column: the element's string value.
   Mixed-content and nested values then compare identically in SQL and in
   the reference evaluator. *)
let has_text_column _t _def = true

let columns_of_def t (def : Graph.def) =
  let parents = Graph.parents t.schema def in
  let fk_cols =
    List.map
      (fun p -> { Table.name = p.Graph.relation ^ "_id"; ty = Value.Tint })
      parents
  in
  let doc_col =
    if def.Graph.id = (Graph.root t.schema).Graph.id then
      [ { Table.name = "doc_id"; ty = Value.Tint } ]
    else []
  in
  let attr_cols =
    List.map (fun a -> { Table.name = attr_column a; ty = Value.Tstr }) def.Graph.attrs
  in
  [ { Table.name = "id"; ty = Value.Tint } ]
  @ doc_col @ fk_cols
  @ [
      { Table.name = "dewey_pos"; ty = Value.Tbin };
      { Table.name = "path_id"; ty = Value.Tint };
      { Table.name = text_column; ty = Value.Tstr };
      { Table.name = "dtext"; ty = Value.Tstr };
      { Table.name = "ord"; ty = Value.Tint };
      { Table.name = "sibs"; ty = Value.Tint };
    ]
  @ attr_cols

let create_tables ?(partitioned = true) t db =
  let paths =
    Database.create_table db ~name:paths_table
      ~columns:
        [
          { Table.name = "id"; ty = Value.Tint };
          { Table.name = "path"; ty = Value.Tstr };
        ]
  in
  Table.create_index paths [ "id" ];
  Table.create_index paths [ "path" ];
  (* Path strings are probed with substring literals extracted from the
     translator's PPF regexes ("/listitem", "/keyword"): a trigram index
     answers any literal of length >= 3. *)
  Table.add_content_index paths ~col:"path" ~kind:Table.Trigram;
  List.iter
    (fun def ->
      let partition =
        if partitioned then
          Some { Table.part_col = "path_id"; part_sort = "dewey_pos" }
        else None
      in
      let table =
        Database.create_table ?partition db ~name:(relation t def)
          ~columns:(columns_of_def t def)
      in
      Table.create_index table [ "id" ];
      List.iter
        (fun p -> Table.create_index table [ p.Graph.relation ^ "_id" ])
        (Graph.parents t.schema def);
      Table.create_index table [ "dewey_pos"; "path_id" ];
      (* Element string values take contains()/starts-with() predicates;
         a token index keeps per-row cost low on prose-sized text. *)
      Table.add_content_index table ~col:text_column ~kind:Table.Token)
    (Graph.defs t.schema)

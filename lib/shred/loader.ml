module Graph = Ppfx_schema.Graph
module Doc = Ppfx_xml.Doc
module Dewey = Ppfx_dewey.Dewey
module Ordpath = Ppfx_dewey.Ordpath
module Table = Ppfx_minidb.Table
module Database = Ppfx_minidb.Database
module Value = Ppfx_minidb.Value

type t = {
  mapping : Mapping.t;
  db : Database.t;
  docs : Doc.t list;
}

exception Rejected of string

let reject fmt = Format.kasprintf (fun m -> raise (Rejected m)) fmt

let create ?partitioned mapping =
  let db = Database.create () in
  Mapping.create_tables ?partitioned mapping db;
  { mapping; db; docs = [] }

(* Path ids are 1-based row positions in the Paths table plus one lookup
   structure kept implicit: we re-find through the table's [path] index. *)
let path_id t path =
  let paths = Database.table t.db Mapping.paths_table in
  match Table.index_on paths [ "path" ] with
  | None -> None
  | Some tree ->
    (match Ppfx_minidb.Btree.find_equal tree [| Value.Str path |] with
     | [] -> None
     | row :: _ ->
       (match (Table.row paths row).(0) with
        | Value.Int id -> Some id
        | _ -> None))

let intern_path t path =
  match path_id t path with
  | Some id -> id
  | None ->
    let paths = Database.table t.db Mapping.paths_table in
    let id = Table.row_count paths + 1 in
    ignore (Table.insert paths [| Value.Int id; Value.Str path |]);
    id

(* The stored label of an element: the ORDPATH encoding of the document
   id followed by the element's Dewey vector, every component mapped to
   its odd form [2c - 1]. Odd-mapping preserves per-component order, so
   byte comparison still equals document order, and the write path
   ({!Ppfx_update}) can later caret new labels between existing ones
   ([Ordpath.insert_between]) without relabeling any stored row. *)
let label ~doc_id dewey =
  Ordpath.to_raw
    (Ordpath.of_components
       (List.map (fun c -> (2 * c) - 1) (doc_id :: Dewey.to_components dewey)))

let load ?keep t doc =
  let keep = match keep with None -> fun _ -> true | Some f -> f in
  let schema = Mapping.schema t.mapping in
  let doc_id = List.length t.docs + 1 in
  (* Global ids: offset this document's preorder ids past all previously
     loaded elements; global label: prefix the doc_id component. *)
  let offset = List.fold_left (fun acc d -> acc + Doc.size d) 0 t.docs in
  let global i = if i = 0 then 0 else i + offset in
  (* Assign schema vertices top-down. *)
  let assignment = Array.make (Doc.size doc + 1) (-1) in
  let def_by_id = Hashtbl.create 16 in
  List.iter (fun d -> Hashtbl.replace def_by_id d.Graph.id d) (Graph.defs schema);
  let vertex_of id = Hashtbl.find def_by_id id in
  let assign (e : Doc.element) =
    let def =
      if e.Doc.parent = 0 then begin
        let root = Graph.root schema in
        if String.equal root.Graph.name e.Doc.tag then Some root else None
      end
      else
        let parent_def = vertex_of assignment.(e.Doc.parent) in
        List.find_opt
          (fun c -> String.equal c.Graph.name e.Doc.tag)
          (Graph.children schema parent_def)
    in
    match def with
    | None -> reject "element %s at %s does not match the schema" e.Doc.tag e.Doc.path
    | Some def ->
      assignment.(e.Doc.id) <- def.Graph.id;
      def
  in
  (* Insert in document order so parents precede children. Elements are
     always assigned to schema vertices and their paths always interned —
     even when [keep] drops the row — so every partition of one document
     builds the identical [Paths] relation and rejects the same
     non-conforming documents as a full load. *)
  Doc.iter
    (fun e ->
      let def = assign e in
      let pid = intern_path t e.Doc.path in
      if keep e then begin
      let table = Database.table t.db (Mapping.relation t.mapping def) in
      let parents = Graph.parents schema def in
      let fk_values =
        List.map
          (fun p ->
            if e.Doc.parent <> 0 && assignment.(e.Doc.parent) = p.Graph.id then
              Value.Int (global e.Doc.parent)
            else Value.Null)
          parents
      in
      let doc_col = if e.Doc.parent = 0 then [ Value.Int doc_id ] else [] in
      let attr_values =
        List.map
          (fun a ->
            match List.assoc_opt a e.Doc.attrs with
            | Some v -> Value.Str v
            | None -> Value.Null)
          def.Graph.attrs
      in
      (* 1-based position among same-tag siblings, and their total count
         (document order). *)
      let ord, sibs =
        if e.Doc.parent = 0 then 1, 1
        else begin
          let siblings = (Doc.element doc e.Doc.parent).Doc.children in
          List.fold_left
            (fun (ord, sibs) s ->
              if String.equal (Doc.element doc s).Doc.tag e.Doc.tag then
                (if s < e.Doc.id then ord + 1 else ord), sibs + 1
              else ord, sibs)
            (1, 0) siblings
        end
      in
      let row =
        Array.of_list
          ([ Value.Int (global e.Doc.id) ]
          @ doc_col @ fk_values
          @ [
              Value.Bin (label ~doc_id e.Doc.dewey);
              Value.Int pid;
              Value.Str e.Doc.string_value;
              Value.Str e.Doc.text;
              Value.Int ord;
              Value.Int sibs;
            ]
          @ attr_values)
      in
      ignore (Table.insert table row)
      end)
    doc;
  { t with docs = t.docs @ [ doc ] }

let shred schema doc = load (create (Mapping.of_schema schema)) doc

let locate t global_id =
  if global_id < 1 then invalid_arg "Loader.locate: id out of range";
  let rec go idx offset = function
    | [] -> invalid_arg "Loader.locate: id out of range"
    | doc :: rest ->
      let n = Doc.size doc in
      if global_id <= offset + n then idx, global_id - offset
      else go (idx + 1) (offset + n) rest
  in
  go 0 0 t.docs

let def_of_element t ~doc id =
  let schema = Mapping.schema t.mapping in
  let e = Doc.element doc id in
  (* Recompute the assignment by walking the path from the root. *)
  let segments =
    match String.split_on_char '/' e.Doc.path with
    | "" :: rest -> rest
    | rest -> rest
  in
  let rec walk def = function
    | [] -> def
    | seg :: rest ->
      (match
         List.find_opt (fun c -> String.equal c.Graph.name seg) (Graph.children schema def)
       with
       | Some c -> walk c rest
       | None -> raise Not_found)
  in
  match segments with
  | root_seg :: rest when String.equal root_seg (Graph.root schema).Graph.name ->
    walk (Graph.root schema) rest
  | _ -> raise Not_found

module Value = Ppfx_minidb.Value

let protocol_version = 1

let default_max_frame = 16 * 1024 * 1024

type codec_error =
  | Truncated
  | Oversized of int
  | Bad_tag of int
  | Trailing of int

exception Codec of codec_error

let codec_error_to_string = function
  | Truncated -> "truncated frame"
  | Oversized n -> Printf.sprintf "oversized frame (%d bytes)" n
  | Bad_tag t -> Printf.sprintf "unknown tag 0x%02x" t
  | Trailing n -> Printf.sprintf "%d trailing bytes after message" n

type error_code =
  | Protocol
  | Parse_error
  | Unsupported
  | Runtime
  | Admission
  | Bad_statement
  | Version_mismatch
  | Shutting_down

let error_code_to_string = function
  | Protocol -> "protocol"
  | Parse_error -> "parse"
  | Unsupported -> "unsupported"
  | Runtime -> "runtime"
  | Admission -> "admission"
  | Bad_statement -> "bad-statement"
  | Version_mismatch -> "version-mismatch"
  | Shutting_down -> "shutting-down"

let error_code_to_int = function
  | Protocol -> 1
  | Parse_error -> 2
  | Unsupported -> 3
  | Runtime -> 4
  | Admission -> 5
  | Bad_statement -> 6
  | Version_mismatch -> 7
  | Shutting_down -> 8

let error_code_of_int = function
  | 1 -> Protocol
  | 2 -> Parse_error
  | 3 -> Unsupported
  | 4 -> Runtime
  | 5 -> Admission
  | 6 -> Bad_statement
  | 7 -> Version_mismatch
  | 8 -> Shutting_down
  | t -> raise (Codec (Bad_tag t))

type col_ty = Tany | Tint | Tfloat | Ttext | Tbin

type column = { name : string; ty : col_ty }

let col_ty_of_value_ty = function
  | Value.Tint -> Tint
  | Value.Tfloat -> Tfloat
  | Value.Tstr -> Ttext
  | Value.Tbin -> Tbin

let col_ty_to_string = function
  | Tany -> "any"
  | Tint -> "int"
  | Tfloat -> "float"
  | Ttext -> "text"
  | Tbin -> "bin"

let col_ty_to_int = function Tany -> 0 | Tint -> 1 | Tfloat -> 2 | Ttext -> 3 | Tbin -> 4

let col_ty_of_int = function
  | 0 -> Tany
  | 1 -> Tint
  | 2 -> Tfloat
  | 3 -> Ttext
  | 4 -> Tbin
  | t -> raise (Codec (Bad_tag t))

type update_op =
  | Op_insert of { parent : int; before : int option; fragment : string }
  | Op_delete of { target : int }
  | Op_replace of { target : int; fragment : string }
  | Op_set_attr of { target : int; name : string; value : string option }
  | Op_set_text of { target : int; text : string }

type request =
  | Hello of { version : int; client : string }
  | Prepare of { query : string }
  | Execute of { stmt : int; window : int }
  | Fetch of { stmt : int; window : int }
  | Close_stmt of { stmt : int }
  | Ping
  | Quit
  | Update of { op : update_op }

type response =
  | Welcome of { version : int; server : string; shards : int }
  | Prepared of {
      stmt : int;
      columns : column list;
      empty : bool;
      sql : string option;
    }
  | Rows of { stmt : int; rows : Value.t array list; more : bool }
  | Closed of { stmt : int }
  | Pong
  | Error of { code : error_code; message : string }
  | Bye
  | Updated of {
      inserted : int;
      updated : int;
      deleted : int;
      new_paths : int;
      dead_paths : int;
    }

(* ------------------------------------------------------------------ *)
(* Primitive writers                                                   *)
(* ------------------------------------------------------------------ *)

let put_u8 buf v = Buffer.add_uint8 buf (v land 0xff)
let put_u16 buf v = Buffer.add_uint16_be buf (v land 0xffff)
let put_u32 buf v = Buffer.add_int32_be buf (Int32.of_int v)
let put_i64 buf v = Buffer.add_int64_be buf (Int64.of_int v)
let put_f64 buf v = Buffer.add_int64_be buf (Int64.bits_of_float v)

let put_str buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

let put_value buf = function
  | Value.Null -> put_u8 buf 0
  | Value.Int n ->
    put_u8 buf 1;
    put_i64 buf n
  | Value.Float f ->
    put_u8 buf 2;
    put_f64 buf f
  | Value.Str s ->
    put_u8 buf 3;
    put_str buf s
  | Value.Bin s ->
    put_u8 buf 4;
    put_str buf s

(* ------------------------------------------------------------------ *)
(* Primitive readers: every access is bounds-checked against the        *)
(* payload, so a lying length field inside the payload surfaces as      *)
(* [Truncated] instead of a read past the frame.                        *)
(* ------------------------------------------------------------------ *)

type reader = { s : string; mutable pos : int }

let need r n = if r.pos + n > String.length r.s then raise (Codec Truncated)

let get_u8 r =
  need r 1;
  let v = Char.code r.s.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_u16 r =
  need r 2;
  let v = String.get_uint16_be r.s r.pos in
  r.pos <- r.pos + 2;
  v

let get_u32 r =
  need r 4;
  let v = Int32.to_int (String.get_int32_be r.s r.pos) land 0xffffffff in
  r.pos <- r.pos + 4;
  v

let get_i64 r =
  need r 8;
  let v = Int64.to_int (String.get_int64_be r.s r.pos) in
  r.pos <- r.pos + 8;
  v

let get_f64 r =
  need r 8;
  let v = Int64.float_of_bits (String.get_int64_be r.s r.pos) in
  r.pos <- r.pos + 8;
  v

let get_str r =
  let n = get_u32 r in
  need r n;
  let v = String.sub r.s r.pos n in
  r.pos <- r.pos + n;
  v

let get_value r =
  match get_u8 r with
  | 0 -> Value.Null
  | 1 -> Value.Int (get_i64 r)
  | 2 -> Value.Float (get_f64 r)
  | 3 -> Value.Str (get_str r)
  | 4 -> Value.Bin (get_str r)
  | t -> raise (Codec (Bad_tag t))

let finish r v =
  let left = String.length r.s - r.pos in
  if left <> 0 then raise (Codec (Trailing left));
  v

(* ------------------------------------------------------------------ *)
(* Message codec                                                       *)
(* ------------------------------------------------------------------ *)

let request_payload req =
  let buf = Buffer.create 64 in
  (match req with
   | Hello { version; client } ->
     put_u8 buf 0x01;
     put_u16 buf version;
     put_str buf client
   | Prepare { query } ->
     put_u8 buf 0x02;
     put_str buf query
   | Execute { stmt; window } ->
     put_u8 buf 0x03;
     put_u32 buf stmt;
     put_u32 buf window
   | Fetch { stmt; window } ->
     put_u8 buf 0x04;
     put_u32 buf stmt;
     put_u32 buf window
   | Close_stmt { stmt } ->
     put_u8 buf 0x05;
     put_u32 buf stmt
   | Ping -> put_u8 buf 0x06
   | Quit -> put_u8 buf 0x07
   | Update { op } ->
     put_u8 buf 0x08;
     (* Element ids ride as i64; fragments travel as XML text and are
        parsed (and schema-validated) server-side. *)
     (match op with
      | Op_insert { parent; before; fragment } ->
        put_u8 buf 1;
        put_i64 buf parent;
        (match before with
         | None -> put_u8 buf 0
         | Some b ->
           put_u8 buf 1;
           put_i64 buf b);
        put_str buf fragment
      | Op_delete { target } ->
        put_u8 buf 2;
        put_i64 buf target
      | Op_replace { target; fragment } ->
        put_u8 buf 3;
        put_i64 buf target;
        put_str buf fragment
      | Op_set_attr { target; name; value } ->
        put_u8 buf 4;
        put_i64 buf target;
        put_str buf name;
        (match value with
         | None -> put_u8 buf 0
         | Some v ->
           put_u8 buf 1;
           put_str buf v)
      | Op_set_text { target; text } ->
        put_u8 buf 5;
        put_i64 buf target;
        put_str buf text));
  Buffer.contents buf

let response_payload resp =
  let buf = Buffer.create 256 in
  (match resp with
   | Welcome { version; server; shards } ->
     put_u8 buf 0x81;
     put_u16 buf version;
     put_str buf server;
     put_u16 buf shards
   | Prepared { stmt; columns; empty; sql } ->
     put_u8 buf 0x82;
     put_u32 buf stmt;
     put_u8 buf (if empty then 1 else 0);
     put_u32 buf (List.length columns);
     List.iter
       (fun { name; ty } ->
         put_str buf name;
         put_u8 buf (col_ty_to_int ty))
       columns;
     (match sql with
      | None -> put_u8 buf 0
      | Some s ->
        put_u8 buf 1;
        put_str buf s)
   | Rows { stmt; rows; more } ->
     put_u8 buf 0x83;
     put_u32 buf stmt;
     put_u8 buf (if more then 1 else 0);
     put_u32 buf (List.length rows);
     List.iter
       (fun row ->
         put_u16 buf (Array.length row);
         Array.iter (put_value buf) row)
       rows
   | Closed { stmt } ->
     put_u8 buf 0x84;
     put_u32 buf stmt
   | Pong -> put_u8 buf 0x85
   | Error { code; message } ->
     put_u8 buf 0x86;
     put_u8 buf (error_code_to_int code);
     put_str buf message
   | Bye -> put_u8 buf 0x87
   | Updated { inserted; updated; deleted; new_paths; dead_paths } ->
     put_u8 buf 0x88;
     put_u32 buf inserted;
     put_u32 buf updated;
     put_u32 buf deleted;
     put_u32 buf new_paths;
     put_u32 buf dead_paths);
  Buffer.contents buf

let request_of_payload s =
  let r = { s; pos = 0 } in
  let req =
    match get_u8 r with
    | 0x01 ->
      let version = get_u16 r in
      let client = get_str r in
      Hello { version; client }
    | 0x02 -> Prepare { query = get_str r }
    | 0x03 ->
      let stmt = get_u32 r in
      let window = get_u32 r in
      Execute { stmt; window }
    | 0x04 ->
      let stmt = get_u32 r in
      let window = get_u32 r in
      Fetch { stmt; window }
    | 0x05 -> Close_stmt { stmt = get_u32 r }
    | 0x06 -> Ping
    | 0x07 -> Quit
    | 0x08 ->
      let op =
        match get_u8 r with
        | 1 ->
          let parent = get_i64 r in
          let before = match get_u8 r with 0 -> None | _ -> Some (get_i64 r) in
          let fragment = get_str r in
          Op_insert { parent; before; fragment }
        | 2 -> Op_delete { target = get_i64 r }
        | 3 ->
          let target = get_i64 r in
          let fragment = get_str r in
          Op_replace { target; fragment }
        | 4 ->
          let target = get_i64 r in
          let name = get_str r in
          let value = match get_u8 r with 0 -> None | _ -> Some (get_str r) in
          Op_set_attr { target; name; value }
        | 5 ->
          let target = get_i64 r in
          let text = get_str r in
          Op_set_text { target; text }
        | t -> raise (Codec (Bad_tag t))
      in
      Update { op }
    | t -> raise (Codec (Bad_tag t))
  in
  finish r req

let response_of_payload s =
  let r = { s; pos = 0 } in
  let resp =
    match get_u8 r with
    | 0x81 ->
      let version = get_u16 r in
      let server = get_str r in
      let shards = get_u16 r in
      Welcome { version; server; shards }
    | 0x82 ->
      let stmt = get_u32 r in
      let empty = get_u8 r = 1 in
      let ncols = get_u32 r in
      let columns =
        List.init ncols (fun _ ->
            let name = get_str r in
            let ty = col_ty_of_int (get_u8 r) in
            { name; ty })
      in
      let sql = match get_u8 r with 0 -> None | _ -> Some (get_str r) in
      Prepared { stmt; columns; empty; sql }
    | 0x83 ->
      let stmt = get_u32 r in
      let more = get_u8 r = 1 in
      let nrows = get_u32 r in
      let rows =
        List.init nrows (fun _ ->
            let ncols = get_u16 r in
            Array.init ncols (fun _ -> get_value r))
      in
      Rows { stmt; rows; more }
    | 0x84 -> Closed { stmt = get_u32 r }
    | 0x85 -> Pong
    | 0x86 ->
      let code = error_code_of_int (get_u8 r) in
      let message = get_str r in
      Error { code; message }
    | 0x87 -> Bye
    | 0x88 ->
      let inserted = get_u32 r in
      let updated = get_u32 r in
      let deleted = get_u32 r in
      let new_paths = get_u32 r in
      let dead_paths = get_u32 r in
      Updated { inserted; updated; deleted; new_paths; dead_paths }
    | t -> raise (Codec (Bad_tag t))
  in
  finish r resp

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let frame_of_payload payload =
  let buf = Buffer.create (String.length payload + 4) in
  put_u32 buf (String.length payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

let extract_frame ?(max_frame = default_max_frame) buf ~off ~len =
  if len < 4 then None
  else begin
    let n = Int32.to_int (Bytes.get_int32_be buf off) land 0xffffffff in
    if n > max_frame then raise (Codec (Oversized n));
    if len < 4 + n then None
    else Some (Bytes.sub_string buf (off + 4) n, 4 + n)
  end

(* ------------------------------------------------------------------ *)
(* Blocking transport                                                  *)
(* ------------------------------------------------------------------ *)

let rec restart_write fd bytes off len =
  if len = 0 then ()
  else
    match Unix.write fd bytes off len with
    | n -> restart_write fd bytes (off + n) (len - n)
    | exception Unix.Unix_error ((EINTR | EAGAIN | EWOULDBLOCK), _, _) ->
      ignore (Unix.select [] [ fd ] [] 1.0);
      restart_write fd bytes off len

let write_frame fd payload =
  let frame = frame_of_payload payload in
  restart_write fd (Bytes.of_string frame) 0 (String.length frame);
  String.length frame

(* Read exactly [n] bytes; [`Eof] on a clean close before the first
   byte, [Codec Truncated] on a close in the middle. *)
let read_exactly fd n ~at_start =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then Bytes.unsafe_to_string buf
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> if off = 0 && at_start then raise Exit else raise (Codec Truncated)
      | k -> go (off + k)
      | exception Unix.Unix_error ((EINTR | EAGAIN | EWOULDBLOCK), _, _) ->
        ignore (Unix.select [ fd ] [] [] 1.0);
        go off
  in
  go 0

let read_payload ?(max_frame = default_max_frame) fd =
  match read_exactly fd 4 ~at_start:true with
  | exception Exit -> None
  | prefix ->
    let n = Int32.to_int (String.get_int32_be prefix 0) land 0xffffffff in
    if n > max_frame then raise (Codec (Oversized n));
    Some (read_exactly fd n ~at_start:false)

let send_request fd req = write_frame fd (request_payload req)
let send_response fd resp = write_frame fd (response_payload resp)

let recv_request ?max_frame fd =
  Option.map request_of_payload (read_payload ?max_frame fd)

let recv_response ?max_frame fd =
  Option.map response_of_payload (read_payload ?max_frame fd)

(** Concurrent TCP server for the {!Wire} protocol.

    One event-loop domain owns the listening socket and every connection
    socket: it accepts, assembles length-prefixed frames incrementally
    (nonblocking reads, per-connection reassembly buffers), and feeds
    decoded requests into a bounded dispatch queue drained by a pool of
    worker domains. A connection has at most one request in flight —
    later frames queue on the connection — so per-connection statement
    state (prepared statements, open cursors) is only ever touched by
    one worker at a time and needs no locking.

    {b Admission control.} Connections beyond [max_connections] are
    refused at accept with an [Admission] error frame; requests arriving
    while the dispatch queue holds [queue_depth] entries are answered
    with an [Admission] error instead of being queued (the connection
    survives). Overload therefore rejects rather than degrades.

    {b Backpressure.} Results stream in bounded windows: an [Execute]
    response carries at most the fetch window of rows, the rest stays in
    a server-side cursor until the client [Fetch]es — the server never
    buffers an unbounded response into a socket.

    {b Error containment.} Malformed frames and client disconnects are
    per-connection events: the connection gets a [Protocol] error frame
    (when writable) and is closed; every other connection keeps serving.
    Query-level failures (parse, unsupported, runtime) are answered with
    typed error frames on a connection that stays open.

    {b Shutdown.} {!stop} stops accepting and reading, drains queued and
    in-flight requests (their responses are written), then closes every
    connection with [Bye] and joins the domains. *)

module Session = Ppfx_service.Session
module Cluster = Ppfx_cluster.Cluster
module Metrics = Ppfx_service.Metrics
module Engine = Ppfx_minidb.Engine
module Database = Ppfx_minidb.Database
module Sql = Ppfx_minidb.Sql

type config = {
  host : string;  (** bind address, default 127.0.0.1 *)
  port : int;  (** 0 picks an ephemeral port (see {!port}) *)
  workers : int;  (** executor domains, >= 1 *)
  max_connections : int;  (** admission bound on concurrent connections *)
  queue_depth : int;  (** admission bound on queued requests *)
  max_frame : int;  (** frames above this are protocol errors *)
  fetch_window : int;  (** server-side cap on rows per [Rows] frame *)
  server_name : string;  (** advertised in [Welcome] *)
  shards : int;  (** advertised in [Welcome] *)
}

val default_config : config
(** 127.0.0.1:0, 2 workers, 64 connections, 64 queued requests, 16 MiB
    frames, 512-row fetch windows. *)

(** {2 Executors}

    The bridge between a connection and the serving stack. Each worker
    domain gets its own executor from the factory passed to {!start}, so
    a session-backed executor needs no synchronization: every worker
    owns a private {!Session.t} (plan cache included) over the shared
    store. A cluster-backed executor is shared and serialized by a
    mutex — the cluster parallelizes internally across its shard pool. *)

type executor = {
  exec_prepare : string -> string * Sql.statement option;
      (** canonical text and translated SQL; raises the usual parse /
          unsupported exceptions *)
  exec_run : string -> Engine.result;
  exec_update : Wire.update_op -> Ppfx_update.Update.outcome;
      (** apply one mutation; raises {!Ppfx_update.Update.Update_error}
          on invalid operations (answered with a [Runtime] error frame)
          and {!Ppfx_xml.Parser.Error} on malformed fragment XML *)
  exec_db : Database.t option;
      (** catalog used to type the prepared-statement column metadata *)
}

val store_meta : Ppfx_update.Update.t -> Ppfx_wal.Record.meta
(** The checkpoint sidecar of a single updatable store: current schema +
    shadow forest, no cluster extras. What {!session_executor}'s WAL
    checkpoints write, and what a clean shutdown should pass to
    {!Ppfx_wal.Store.close_clean}. *)

val session_executor :
  ?update:Mutex.t * Ppfx_update.Update.t ->
  ?wal:Ppfx_wal.Store.t ->
  Session.t ->
  executor
(** Without [update] the server is read-only: [Update] requests are
    answered with a [Runtime] error. With [update], mutations stage
    through the shared updatable store, serialized by the mutex (worker
    domains each hold a private session but share one shadow forest;
    readers are serialized against commits by the store's own snapshot
    lock, not this mutex). With [wal] too, every mutation is appended to
    the log — and fsynced per the store's durability policy — {e before}
    it commits in memory and the [Updated] ack is written; the mutex
    also serializes the log, and checkpoints rotate it per the store's
    size/record policy. *)

val cluster_executor : Mutex.t -> Cluster.t -> executor
(** Mutations route through {!Cluster.update} under the same mutex as
    queries. *)

val columns_of_statement : Database.t option -> Sql.statement -> Wire.column list
(** Static column metadata for a translated statement: output names from
    the projection list, types resolved through the catalog where a
    projection is a plain column reference (else inferred from the
    expression shape, [Tany] when unknown). *)

(** {2 Lifecycle} *)

type t

val start : ?config:config -> (unit -> executor) -> t
(** Bind, listen, spawn the event-loop domain and [workers] executor
    domains (the factory runs once in each worker domain). SIGPIPE is
    ignored process-wide so peer resets surface as [EPIPE]. *)

val port : t -> int
(** The bound port (useful with [port = 0]). *)

val config : t -> config

val metrics : t -> Metrics.t
(** Server-level serving metrics: accepted / rejected / active
    connections, bytes in and out, dispatch-queue depth high-water mark,
    request latencies (Queue = dispatch wait, Execute = request service
    time). *)

val stop : t -> unit
(** Drain and shut down; idempotent, safe from any thread. *)

(** The ppfx wire protocol: length-prefixed binary frames.

    Every frame on the wire is a 4-byte big-endian payload length
    followed by exactly that many payload bytes; the first payload byte
    is the message tag. Requests (client to server) use tags [0x01-0x08],
    responses (server to client) [0x81-0x88]. All integers are
    big-endian; strings are a [u32] byte length followed by the bytes;
    cells are self-describing (a one-byte type tag before the value), so
    a result stream can be decoded without out-of-band schema knowledge,
    while the {!column} metadata sent with {!response.Prepared} gives the
    client static names and type hints.

    The codec never reads past the declared payload: every field decode
    is bounds-checked against the length prefix, a payload with leftover
    bytes is rejected ([Trailing]), and a length prefix above the
    [max_frame] bound is rejected before any payload is read
    ([Oversized]) — the typed {!Codec} errors the satellite tests pin
    down. Protocol evolution is carried by the versioned handshake:
    [Hello]/[Welcome] exchange {!protocol_version} and a server refuses
    mismatches with [Version_mismatch]. *)

module Value = Ppfx_minidb.Value

val protocol_version : int
(** Version 1. Sent in [Hello], echoed in [Welcome]. *)

val default_max_frame : int
(** 16 MiB: the largest frame either side accepts by default. *)

(** {2 Typed errors} *)

type codec_error =
  | Truncated  (** a field extends past the frame's declared length *)
  | Oversized of int  (** declared payload length exceeds [max_frame] *)
  | Bad_tag of int  (** unknown message or cell tag *)
  | Trailing of int  (** decoded message left this many unread bytes *)

exception Codec of codec_error

val codec_error_to_string : codec_error -> string

type error_code =
  | Protocol  (** malformed frame or message out of sequence *)
  | Parse_error  (** XPath parse failure *)
  | Unsupported  (** out-of-subset XPath construct *)
  | Runtime  (** engine runtime error *)
  | Admission  (** connection or request rejected by admission control *)
  | Bad_statement  (** unknown statement id *)
  | Version_mismatch
  | Shutting_down

val error_code_to_string : error_code -> string

(** {2 Column metadata} *)

type col_ty = Tany | Tint | Tfloat | Ttext | Tbin

type column = { name : string; ty : col_ty }

val col_ty_of_value_ty : Value.ty -> col_ty
val col_ty_to_string : col_ty -> string

(** {2 Messages} *)

(** A mutation request, mirroring {!Ppfx_update.Update.op}. Fragments
    travel as XML text and are parsed and schema-validated on the server;
    element ids are the globally unique ids query results project. *)
type update_op =
  | Op_insert of { parent : int; before : int option; fragment : string }
  | Op_delete of { target : int }
  | Op_replace of { target : int; fragment : string }
  | Op_set_attr of { target : int; name : string; value : string option }
  | Op_set_text of { target : int; text : string }

type request =
  | Hello of { version : int; client : string }
  | Prepare of { query : string }
  | Execute of { stmt : int; window : int }
      (** run the prepared statement; stream at most [window] rows back
          (0 means the server's default fetch window) *)
  | Fetch of { stmt : int; window : int }
      (** next [window] rows of the statement's open cursor *)
  | Close_stmt of { stmt : int }
  | Ping
  | Quit
  | Update of { op : update_op }
      (** apply one subtree mutation; answered with [Updated] (or
          [Error] with [Runtime] on invalid targets/fragments) *)

type response =
  | Welcome of { version : int; server : string; shards : int }
  | Prepared of {
      stmt : int;
      columns : column list;
      empty : bool;  (** the translation proved the result empty *)
      sql : string option;  (** translated SQL text, when any *)
    }
  | Rows of { stmt : int; rows : Value.t array list; more : bool }
      (** [more] is the backpressure signal: the cursor holds further
          rows and the client must [Fetch] to receive them *)
  | Closed of { stmt : int }
  | Pong
  | Error of { code : error_code; message : string }
  | Bye
  | Updated of {
      inserted : int;  (** rows inserted *)
      updated : int;  (** rows rewritten (sibling/ancestor descriptors) *)
      deleted : int;  (** rows tombstoned *)
      new_paths : int;  (** paths interned into the Paths relation *)
      dead_paths : int;  (** paths whose last instance died *)
    }

(** {2 Encoding} *)

val request_payload : request -> string
val response_payload : response -> string
(** Payload bytes (no length prefix). *)

val frame_of_payload : string -> string
(** Prefix a payload with its 4-byte length. *)

(** {2 Decoding} *)

val request_of_payload : string -> request
val response_of_payload : string -> response
(** Raise {!Codec} on malformed payloads; total (every byte of the
    payload is consumed or the decode fails). *)

val extract_frame :
  ?max_frame:int -> Bytes.t -> off:int -> len:int -> (string * int) option
(** [extract_frame buf ~off ~len] inspects the byte window for one
    complete frame: [Some (payload, consumed)] when the window starts
    with a whole frame, [None] when more bytes are needed. Raises
    [Codec (Oversized _)] as soon as the prefix declares a payload
    larger than [max_frame], without waiting for the bytes. *)

(** {2 Blocking transport helpers}

    Convenience wrappers used by the client and the tests; the server's
    event loop assembles frames incrementally with {!extract_frame}
    instead. Each returns the byte count moved, for traffic metrics. *)

val write_frame : Unix.file_descr -> string -> int
(** Write one frame (length prefix + payload); loops over partial
    writes. *)

val read_payload : ?max_frame:int -> Unix.file_descr -> string option
(** Read exactly one frame; [None] on a clean EOF at a frame boundary.
    Raises [Codec Truncated] when the peer closes mid-frame. *)

val send_request : Unix.file_descr -> request -> int
val send_response : Unix.file_descr -> response -> int
val recv_request : ?max_frame:int -> Unix.file_descr -> request option
val recv_response : ?max_frame:int -> Unix.file_descr -> response option

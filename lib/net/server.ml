module Session = Ppfx_service.Session
module Cluster = Ppfx_cluster.Cluster
module Metrics = Ppfx_service.Metrics
module Engine = Ppfx_minidb.Engine
module Database = Ppfx_minidb.Database
module Table = Ppfx_minidb.Table
module Sql = Ppfx_minidb.Sql
module Value = Ppfx_minidb.Value
module Loader = Ppfx_shred.Loader
module Mapping = Ppfx_shred.Mapping
module Translate = Ppfx_translate.Translate
module Update = Ppfx_update.Update
module Xparser = Ppfx_xpath.Parser
module Xmlparser = Ppfx_xml.Parser
module Wstore = Ppfx_wal.Store
module Wrecord = Ppfx_wal.Record

type config = {
  host : string;
  port : int;
  workers : int;
  max_connections : int;
  queue_depth : int;
  max_frame : int;
  fetch_window : int;
  server_name : string;
  shards : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    workers = 2;
    max_connections = 64;
    queue_depth = 64;
    max_frame = Wire.default_max_frame;
    fetch_window = 512;
    server_name = "ppfx";
    shards = 1;
  }

(* ------------------------------------------------------------------ *)
(* Executors                                                           *)
(* ------------------------------------------------------------------ *)

type executor = {
  exec_prepare : string -> string * Sql.statement option;
  exec_run : string -> Engine.result;
  exec_update : Wire.update_op -> Update.outcome;
  exec_db : Database.t option;
}

(* Parse the wire form into the typed mutation; fragment XML parses
   here so a malformed fragment surfaces as [Parse_error]. *)
let op_of_wire (op : Wire.update_op) : Update.op =
  match op with
  | Wire.Op_insert { parent; before; fragment } ->
    Update.Insert_subtree { parent; before; fragment = Xmlparser.parse fragment }
  | Wire.Op_delete { target } -> Update.Delete_subtree { target }
  | Wire.Op_replace { target; fragment } ->
    Update.Replace_subtree { target; fragment = Xmlparser.parse fragment }
  | Wire.Op_set_attr { target; name; value } ->
    Update.Set_attribute { target; name; value }
  | Wire.Op_set_text { target; text } -> Update.Set_text { target; text }

let no_write_path _ =
  raise (Update.Update_error "server has no write path (read-only store)")

(* The checkpoint sidecar of a single updatable store: the schema, the
   shadow forest (so recovery can re-validate and keep mutating), no
   cluster extras. *)
let store_meta u =
  {
    Wrecord.m_schema = Mapping.schema (Update.store u).Loader.mapping;
    m_partitioned = true;
    m_shadow = Some (Update.shadow u);
    m_extras = None;
  }

let session_executor ?update ?wal s =
  {
    exec_prepare =
      (fun q ->
        let p = Session.prepare s q in
        (Session.canonical p, Session.sql p));
    exec_run = (fun q -> Session.run s q);
    exec_update =
      (match update with
       | None -> no_write_path
       | Some (lock, u) ->
         fun op ->
           (* Staging mutates the shared shadow forest; one writer at a
              time. Readers keep running — the store-level snapshot lock
              serializes only the commit against plan execution. *)
           Mutex.protect lock (fun () ->
               match wal with
               | None -> Update.exec u (op_of_wire op)
               | Some w ->
                 (* Log before apply: the ack (the [Updated] frame) only
                    ever follows the append and its policy fsync. *)
                 let op = op_of_wire op in
                 let cs = Update.stage u op in
                 ignore (Wstore.append w ~op ~inserts:true cs : int);
                 Update.commit (Update.db u) cs;
                 if Wstore.should_checkpoint w then
                   Wstore.checkpoint w ~db:(Update.db u) ~meta:(store_meta u);
                 Update.outcome_of cs));
    exec_db = Some (Session.store s).Loader.db;
  }

let cluster_executor lock c =
  {
    exec_prepare =
      (fun q ->
        Mutex.protect lock (fun () ->
            let p = Cluster.prepare c q in
            (Session.canonical p, Session.sql p)));
    exec_run = (fun q -> Mutex.protect lock (fun () -> Cluster.run c q));
    exec_update =
      (fun op -> Mutex.protect lock (fun () -> Cluster.update c (op_of_wire op)));
    exec_db = Some (Session.store (Cluster.session c)).Loader.db;
  }

(* ------------------------------------------------------------------ *)
(* Typed column metadata                                               *)
(* ------------------------------------------------------------------ *)

let rec ty_of_expr db (from : (string * string) list) expr : Wire.col_ty =
  match expr with
  | Sql.Col (alias, col) ->
    (match db with
     | None -> Wire.Tany
     | Some db ->
       (match List.find_opt (fun (_, a) -> a = alias) from with
        | None -> Wire.Tany
        | Some (table, _) ->
          (match
             (try Table.column_ty (Database.table db table) col
              with _ -> None)
           with
           | Some ty -> Wire.col_ty_of_value_ty ty
           | None -> Wire.Tany)))
  | Sql.Const v ->
    (match Value.type_of v with
     | Some ty -> Wire.col_ty_of_value_ty ty
     | None -> Wire.Tany)
  | Sql.Concat (a, b) ->
    (match (ty_of_expr db from a, ty_of_expr db from b) with
     | Wire.Tbin, _ | _, Wire.Tbin -> Wire.Tbin
     | _ -> Wire.Ttext)
  | Sql.Arith (_, a, b) ->
    (match (ty_of_expr db from a, ty_of_expr db from b) with
     | Wire.Tint, Wire.Tint -> Wire.Tint
     | _ -> Wire.Tfloat)
  | Sql.To_number _ -> Wire.Tfloat
  | Sql.Length _ | Sql.Count_subquery _ -> Wire.Tint
  | Sql.Cmp _ | Sql.Between _ | Sql.And _ | Sql.Or _ | Sql.Not _
  | Sql.Regexp_like _ | Sql.Exists _ | Sql.Is_not_null _ | Sql.Bool_const _ ->
    Wire.Tint

let columns_of_select db (sel : Sql.select) =
  List.map
    (fun (expr, name) -> { Wire.name; ty = ty_of_expr db sel.Sql.from expr })
    sel.Sql.projections

let columns_of_statement db = function
  | Sql.Select sel -> columns_of_select db sel
  | Sql.Select_count _ -> [ { Wire.name = "count"; ty = Wire.Tint } ]
  | Sql.Union (branches, _) ->
    (match branches with [] -> [] | b :: _ -> columns_of_select db b)

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

type stmt = { text : string; mutable cursor : Value.t array list }

type conn = {
  cid : int;
  fd : Unix.file_descr;
  rbuf : Buffer.t;  (* frame reassembly; event loop only *)
  wlock : Mutex.t;  (* serializes frame writes to [fd] *)
  stmts : (int, stmt) Hashtbl.t;  (* worker only (one in-flight request) *)
  mutable next_stmt : int;
  mutable hello_done : bool;
  (* under the server lock: *)
  pending : Wire.request Queue.t;
  mutable busy : bool;  (* one of this connection's requests is queued or running *)
  mutable draining : bool;  (* no more reads; close once idle *)
  mutable dead : bool;  (* fd closed, removed from the table *)
}

type t = {
  cfg : config;
  listener : Unix.file_descr;
  bound_port : int;
  metrics : Metrics.t;
  lock : Mutex.t;
  cond : Condition.t;
  queue : (conn * Wire.request * float) Queue.t;
  conns : (int, conn) Hashtbl.t;
  mutable next_cid : int;
  mutable busy_count : int;
  mutable stopping : bool;
  (* set by the event loop once its final stop-time read sweep is done;
     workers must not exit before it, or late-swept requests would
     never be served *)
  mutable reads_done : bool;
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  mutable io_domain : unit Domain.t option;
  mutable worker_domains : unit Domain.t list;
}

let port t = t.bound_port
let config t = t.cfg
let metrics t = t.metrics

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Best-effort frame write. Any transport failure marks the connection
   draining: the event loop stops reading it and it is destroyed once
   idle. Never raises. *)
let respond t c resp =
  try
    Mutex.lock c.wlock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock c.wlock)
      (fun () -> Metrics.add_bytes_out t.metrics (Wire.send_response c.fd resp))
  with Unix.Unix_error _ | Wire.Codec _ ->
    locked t (fun () -> c.draining <- true)

(* Server lock held. *)
let destroy_conn t c =
  if not c.dead then begin
    c.dead <- true;
    c.draining <- true;
    Hashtbl.remove t.conns c.cid;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    Metrics.connection_closed t.metrics
  end

(* ------------------------------------------------------------------ *)
(* Request processing (worker side)                                    *)
(* ------------------------------------------------------------------ *)

let take_rows n rows =
  let rec go n acc rows =
    match rows with
    | [] -> (List.rev acc, [])
    | _ when n = 0 -> (List.rev acc, rows)
    | r :: rest -> go (n - 1) (r :: acc) rest
  in
  go (max 0 n) [] rows

let send_window t c id st window =
  let cap = t.cfg.fetch_window in
  let w = if window <= 0 then cap else min window cap in
  let batch, rest = take_rows w st.cursor in
  st.cursor <- rest;
  Metrics.add_rows t.metrics (List.length batch);
  respond t c (Wire.Rows { stmt = id; rows = batch; more = rest <> [] })

(* Returns [true] when the connection must drain (quit, fatal error). *)
let process t exec c (req : Wire.request) =
  let fail ?(close = false) code message =
    respond t c (Wire.Error { code; message });
    close
  in
  if not c.hello_done then
    match req with
    | Wire.Hello { version; client = _ } ->
      if version <> Wire.protocol_version then
        fail ~close:true Wire.Version_mismatch
          (Printf.sprintf "server speaks version %d, client sent %d"
             Wire.protocol_version version)
      else begin
        c.hello_done <- true;
        respond t c
          (Wire.Welcome
             {
               version = Wire.protocol_version;
               server = t.cfg.server_name;
               shards = t.cfg.shards;
             });
        false
      end
    | _ -> fail ~close:true Wire.Protocol "expected Hello before any other request"
  else
    match req with
    | Wire.Hello _ -> fail ~close:true Wire.Protocol "duplicate Hello"
    | Wire.Ping ->
      respond t c Wire.Pong;
      false
    | Wire.Quit ->
      respond t c Wire.Bye;
      true
    | Wire.Prepare { query } ->
      (try
         let canonical, sql = exec.exec_prepare query in
         let id = c.next_stmt in
         c.next_stmt <- c.next_stmt + 1;
         Hashtbl.replace c.stmts id { text = canonical; cursor = [] };
         respond t c
           (Wire.Prepared
              {
                stmt = id;
                columns =
                  (match sql with
                   | None -> []
                   | Some s -> columns_of_statement exec.exec_db s);
                empty = sql = None;
                sql = Option.map Sql.to_string sql;
              });
         false
       with
       | Xparser.Error { position; message } ->
         fail Wire.Parse_error
           (Printf.sprintf "XPath parse error at offset %d: %s" position message)
       | Translate.Unsupported msg -> fail Wire.Unsupported msg)
    | Wire.Execute { stmt; window } ->
      (match Hashtbl.find_opt c.stmts stmt with
       | None -> fail Wire.Bad_statement (Printf.sprintf "unknown statement %d" stmt)
       | Some st ->
         (try
            let result = exec.exec_run st.text in
            st.cursor <- result.Engine.rows;
            send_window t c stmt st window;
            false
          with
          | Engine.Runtime_error msg -> fail Wire.Runtime msg
          | Xparser.Error { message; _ } -> fail Wire.Parse_error message
          | Translate.Unsupported msg -> fail Wire.Unsupported msg
          | e -> fail ~close:true Wire.Runtime (Printexc.to_string e)))
    | Wire.Fetch { stmt; window } ->
      (match Hashtbl.find_opt c.stmts stmt with
       | None -> fail Wire.Bad_statement (Printf.sprintf "unknown statement %d" stmt)
       | Some st ->
         send_window t c stmt st window;
         false)
    | Wire.Close_stmt { stmt } ->
      Hashtbl.remove c.stmts stmt;
      respond t c (Wire.Closed { stmt });
      false
    | Wire.Update { op } ->
      (try
         let o = exec.exec_update op in
         respond t c
           (Wire.Updated
              {
                inserted = o.Update.inserted;
                updated = o.Update.updated;
                deleted = o.Update.deleted;
                new_paths = o.Update.new_paths;
                dead_paths = o.Update.dead_paths;
              });
         false
       with
       | Update.Update_error msg -> fail Wire.Runtime msg
       | Xmlparser.Error { line; column; message } ->
         fail Wire.Parse_error
           (Printf.sprintf "fragment XML parse error at %d:%d: %s" line column
              message)
       | Engine.Runtime_error msg -> fail Wire.Runtime msg)

let worker_loop t factory () =
  let exec = factory () in
  let rec take () =
    Mutex.lock t.lock;
    let rec wait () =
      if not (Queue.is_empty t.queue) then begin
        let c, req, t_enq = Queue.pop t.queue in
        t.busy_count <- t.busy_count + 1;
        Mutex.unlock t.lock;
        Some (c, req, t_enq)
      end
      else if t.stopping && t.reads_done && t.busy_count = 0 then begin
        Condition.broadcast t.cond;
        Mutex.unlock t.lock;
        None
      end
      else begin
        Condition.wait t.cond t.lock;
        wait ()
      end
    in
    match wait () with
    | None -> ()
    | Some (c, req, t_enq) ->
      let t0 = Unix.gettimeofday () in
      Metrics.record t.metrics Metrics.Queue (t0 -. t_enq);
      Metrics.incr_queries t.metrics;
      let close =
        try process t exec c req
        with e ->
          respond t c (Wire.Error { code = Wire.Runtime; message = Printexc.to_string e });
          true
      in
      Metrics.record t.metrics Metrics.Execute (Unix.gettimeofday () -. t0);
      locked t (fun () ->
          if close then c.draining <- true;
          if c.draining then begin
            Queue.clear c.pending;
            c.busy <- false;
            destroy_conn t c
          end
          else if not (Queue.is_empty c.pending) then
            (* keep [busy] set: the connection's next request goes straight
               back on the dispatch queue, preserving per-connection order *)
            Queue.push (c, Queue.pop c.pending, Unix.gettimeofday ()) t.queue
          else c.busy <- false;
          t.busy_count <- t.busy_count - 1;
          Condition.broadcast t.cond);
      take ()
  in
  take ()

(* ------------------------------------------------------------------ *)
(* Event loop                                                          *)
(* ------------------------------------------------------------------ *)

(* Admission and dispatch for freshly decoded requests. Runs under the
   server lock; admission rejections are returned for writing after the
   lock is released. *)
let enqueue_requests t c reqs =
  let rejects = ref [] in
  locked t (fun () ->
      if not c.draining then
        List.iter
          (fun req ->
            if Queue.length c.pending >= t.cfg.queue_depth then begin
              Metrics.incr_rejected t.metrics;
              rejects :=
                Wire.Error
                  {
                    code = Wire.Admission;
                    message = "request queue full, try again later";
                  }
                :: !rejects
            end
            else begin
              Queue.push req c.pending;
              if not c.busy then begin
                if Queue.length t.queue >= t.cfg.queue_depth then begin
                  ignore (Queue.pop c.pending);
                  Metrics.incr_rejected t.metrics;
                  rejects :=
                    Wire.Error
                      {
                        code = Wire.Admission;
                        message = "server overloaded, try again later";
                      }
                    :: !rejects
                end
                else begin
                  c.busy <- true;
                  Queue.push (c, Queue.pop c.pending, Unix.gettimeofday ()) t.queue;
                  Metrics.note_queue_depth t.metrics (Queue.length t.queue);
                  Condition.broadcast t.cond
                end
              end
            end)
          reqs);
  List.iter (fun resp -> respond t c resp) (List.rev !rejects)

(* Event-loop side protocol failure: answer with a typed error frame and
   drain the connection; in-flight work still completes. *)
let protocol_fail t c msg =
  respond t c (Wire.Error { code = Wire.Protocol; message = msg });
  locked t (fun () ->
      if c.busy then c.draining <- true
      else begin
        c.draining <- true;
        destroy_conn t c
      end)

let handle_readable t c =
  let scratch = Bytes.create 8192 in
  let rec read_chunks eof =
    match Unix.read c.fd scratch 0 (Bytes.length scratch) with
    | 0 -> true
    | n ->
      Metrics.add_bytes_in t.metrics n;
      Buffer.add_subbytes c.rbuf scratch 0 n;
      read_chunks eof
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> eof
    | exception Unix.Unix_error _ -> true
  in
  let eof = read_chunks false in
  (* Extract every complete frame from the reassembly buffer. *)
  let data = Buffer.to_bytes c.rbuf in
  let len = Bytes.length data in
  let off = ref 0 in
  let reqs = ref [] in
  let failed = ref None in
  (try
     let continue = ref true in
     while !continue do
       match
         Wire.extract_frame ~max_frame:t.cfg.max_frame data ~off:!off
           ~len:(len - !off)
       with
       | None -> continue := false
       | Some (payload, consumed) ->
         off := !off + consumed;
         reqs := Wire.request_of_payload payload :: !reqs
     done
   with Wire.Codec e -> failed := Some (Wire.codec_error_to_string e));
  Buffer.clear c.rbuf;
  Buffer.add_subbytes c.rbuf data !off (len - !off);
  if !reqs <> [] then enqueue_requests t c (List.rev !reqs);
  match !failed with
  | Some msg -> protocol_fail t c msg
  | None ->
    if eof then
      locked t (fun () ->
          c.draining <- true;
          if not c.busy then destroy_conn t c)

let handle_accept t =
  let rec go () =
    match Unix.accept t.listener with
    | fd, _addr ->
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      let admitted =
        locked t (fun () ->
            if t.stopping || Hashtbl.length t.conns >= t.cfg.max_connections then None
            else begin
              let cid = t.next_cid in
              t.next_cid <- t.next_cid + 1;
              let c =
                {
                  cid;
                  fd;
                  rbuf = Buffer.create 256;
                  wlock = Mutex.create ();
                  stmts = Hashtbl.create 8;
                  next_stmt = 1;
                  hello_done = false;
                  pending = Queue.create ();
                  busy = false;
                  draining = false;
                  dead = false;
                }
              in
              Hashtbl.replace t.conns cid c;
              Metrics.incr_accepted t.metrics;
              Metrics.connection_opened t.metrics;
              Some c
            end)
      in
      (match admitted with
       | Some _ -> ()
       | None ->
         Metrics.incr_rejected t.metrics;
         (try
            ignore
              (Wire.send_response fd
                 (Wire.Error
                    {
                      code =
                        (if t.stopping then Wire.Shutting_down else Wire.Admission);
                      message =
                        (if t.stopping then "server shutting down"
                         else "connection limit reached");
                    }))
          with Unix.Unix_error _ | Wire.Codec _ -> ());
         (try Unix.close fd with Unix.Unix_error _ -> ()));
      go ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let io_loop t () =
  let rec loop () =
    let stopping = locked t (fun () -> t.stopping) in
    if stopping then drain_and_exit ()
    else begin
      let conn_fds =
        locked t (fun () ->
            Hashtbl.fold
              (fun _ c acc -> if c.draining || c.dead then acc else (c.fd, c) :: acc)
              t.conns [])
      in
      let read_set = t.listener :: t.pipe_r :: List.map fst conn_fds in
      match Unix.select read_set [] [] 0.5 with
      | exception Unix.Unix_error ((EINTR | EBADF), _, _) -> loop ()
      | readable, _, _ ->
        if List.mem t.pipe_r readable then begin
          let scratch = Bytes.create 64 in
          try ignore (Unix.read t.pipe_r scratch 0 64)
          with Unix.Unix_error _ -> ()
        end;
        if List.mem t.listener readable then handle_accept t;
        List.iter
          (fun (fd, c) ->
            (* A worker may have destroyed [c] (closing its fd) while we
               were blocked in select, and [handle_accept] above may have
               already reused that fd number for a fresh connection.
               Reading through the stale snapshot entry would steal the
               new connection's bytes into a dead conn's buffer, so
               re-check liveness under the lock: destruction marks [dead]
               before the fd can be reused. *)
            if
              List.mem fd readable
              && locked t (fun () -> not (c.dead || c.draining))
            then
              try handle_readable t c
              with e -> protocol_fail t c (Printexc.to_string e))
          conn_fds;
        loop ()
    end
  and drain_and_exit () =
    (* Final read sweep: the drain contract covers every request the
       kernel had received when stop landed, not just frames this loop
       had already decoded. One non-blocking select picks up bytes that
       arrived while we were noticing [stopping]. *)
    let conn_fds =
      locked t (fun () ->
          Hashtbl.fold
            (fun _ c acc -> if c.draining || c.dead then acc else (c.fd, c) :: acc)
            t.conns [])
    in
    (match Unix.select (List.map fst conn_fds) [] [] 0.0 with
     | exception Unix.Unix_error _ -> ()
     | readable, _, _ ->
       List.iter
         (fun (fd, c) ->
           if
             List.mem fd readable
             && locked t (fun () -> not (c.dead || c.draining))
           then
             try handle_readable t c
             with e -> protocol_fail t c (Printexc.to_string e))
         conn_fds);
    locked t (fun () ->
        t.reads_done <- true;
        Condition.broadcast t.cond);
    (* Drain: every queued and in-flight request finishes and its
       response is written before any connection is torn down. *)
    Mutex.lock t.lock;
    while not (Queue.is_empty t.queue && t.busy_count = 0) do
      Condition.wait t.cond t.lock
    done;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock;
    List.iter Domain.join t.worker_domains;
    locked t (fun () ->
        let cs = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
        List.iter
          (fun c ->
            (try ignore (Wire.send_response c.fd Wire.Bye)
             with Unix.Unix_error _ | Wire.Codec _ -> ());
            destroy_conn t c)
          cs);
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
    try Unix.close t.pipe_w with Unix.Unix_error _ -> ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let start ?(config = default_config) factory =
  if config.workers < 1 then invalid_arg "Server.start: workers must be >= 1";
  (* Peer resets must surface as EPIPE on write, not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  (try
     Unix.bind listener
       (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port))
   with e ->
     (try Unix.close listener with Unix.Unix_error _ -> ());
     raise e);
  Unix.listen listener 128;
  Unix.set_nonblock listener;
  let bound_port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let pipe_r, pipe_w = Unix.pipe () in
  Unix.set_nonblock pipe_r;
  let t =
    {
      cfg = config;
      listener;
      bound_port;
      metrics = Metrics.create ();
      lock = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      conns = Hashtbl.create 64;
      next_cid = 1;
      busy_count = 0;
      stopping = false;
      reads_done = false;
      pipe_r;
      pipe_w;
      io_domain = None;
      worker_domains = [];
    }
  in
  t.worker_domains <-
    List.init config.workers (fun _ -> Domain.spawn (worker_loop t factory));
  t.io_domain <- Some (Domain.spawn (io_loop t));
  t

let stop t =
  let io =
    locked t (fun () ->
        t.stopping <- true;
        Condition.broadcast t.cond;
        let io = t.io_domain in
        t.io_domain <- None;
        io)
  in
  (try ignore (Unix.write t.pipe_w (Bytes.of_string "x") 0 1)
   with Unix.Unix_error _ -> ());
  match io with None -> () | Some d -> Domain.join d

(** The write path: typed subtree mutations over a shredded store.

    The reader side shreds documents once ({!Ppfx_shred.Loader}) and
    queries the resulting relations; this module makes those relations
    {e mutable} without ever re-shredding:

    - New subtrees are labeled with ORDPATH caret labels
      ({!Ppfx_dewey.Ordpath.insert_between} / [child]) strictly between
      their new siblings, so no existing label is ever rewritten and
      every axis predicate of paper Table 2 keeps holding on the mix of
      bulk-loaded and inserted labels.
    - The Paths relation is maintained incrementally: fresh paths are
      interned, and a path whose last instance is deleted is removed.
    - Each mutation is staged as an explicit {!changeset} — ordered row
      deletes/updates/inserts plus the set of pathids it touches — and
      committed under the store's write lock with a
      {!Ppfx_minidb.Database.record_commit} entry, so prepared plans with
      disjoint footprints revalidate without re-planning
      ({!Ppfx_minidb.Engine.plan_compatible}).

    An {!t} pairs the store with a {e shadow forest}: the live tree shape
    (parent/child adjacency, text/element interleaving, labels) that the
    flat relations cannot answer from. The shadow is the single source of
    truth for staging; the relations follow it exactly. *)

module Tree = Ppfx_xml.Tree
module Graph = Ppfx_schema.Graph
module Database = Ppfx_minidb.Database
module Value = Ppfx_minidb.Value
module Loader = Ppfx_shred.Loader

exception Update_error of string
(** Raised on invalid operations: unknown element ids, fragments that do
    not conform to the schema, deleting a document root, setting an
    undeclared attribute. A raised stage leaves the shadow untouched. *)

type t
(** An updatable store: a {!Loader.t} plus its shadow forest. *)

(** {1 Construction} *)

val create : Graph.t -> Tree.node list -> t
(** Shred the documents through {!Loader.load} and build the shadow. *)

val of_store : Loader.t -> Tree.node list -> t
(** Adopt an existing loaded store. [trees] must be the source trees of
    the store's documents, in load order — the relational image does not
    retain text/element interleaving, so the originals are needed to seed
    the shadow. Raises {!Update_error} on a count or size mismatch. *)

val load : t -> Tree.node -> unit
(** Bulk-load one more document through {!Loader.load} (under the write
    lock) and extend the shadow. The loader's raw inserts are not
    commit-logged, so this conservatively invalidates all prepared
    plans; use {!exec} [Insert_subtree] for incremental growth.

    Bulk loading is only possible while no caret insert has allocated
    element ids (the loader's id offsetting would collide with them);
    after an [Insert_subtree]/[Replace_subtree], {!load} raises
    {!Update_error}. *)

val extend : t -> Loader.t -> Tree.node -> unit
(** Adopt [store] — this store's value after an {e external}
    {!Loader.load} of [tree] (e.g. through a session that owns the
    loader reference) — and extend the shadow. Same id-space restriction
    as {!load}. *)

val store : t -> Loader.t
val db : t -> Database.t
val size : t -> int
(** Number of live elements. *)

(** {1 Operations} *)

type op =
  | Insert_subtree of { parent : int; before : int option; fragment : Tree.node }
      (** Splice [fragment] (an element conforming to the schema under
          [parent]'s definition) as a new child of [parent], immediately
          before child element [before], or as the last child. *)
  | Delete_subtree of { target : int }  (** Document roots cannot be deleted. *)
  | Replace_subtree of { target : int; fragment : Tree.node }
      (** Delete [target]'s subtree and insert [fragment] at its position. *)
  | Set_attribute of { target : int; name : string; value : string option }
      (** [None] removes the attribute. [name] must be declared. *)
  | Set_text of { target : int; text : string }
      (** Replace [target]'s direct text with [text] (element children are
          kept, moved after the text). *)

(** {1 Changesets} *)

type row_op =
  | Row_insert of { table : string; values : Value.t array }
  | Row_update of { table : string; elem : int; values : Value.t array }
      (** [elem] is the element id; each store resolves it to its own row
          position through the relation's [id] index, so one changeset
          applies to the coordinator store and to every shard replica. *)
  | Row_delete of { table : string; elem : int }

type routing = {
  rt_parent : int;  (** element id the mutation attaches under *)
  rt_left : int option;  (** adjacent element siblings of the new subtree *)
  rt_right : int option;
  rt_fk : (string * string) option;
      (** the fragment root's (relation, parent-fk column) — lets the
          cluster layer notice a newly appearing boundary foreign key *)
}

type changeset = {
  cs_ops : row_op list;  (** deletes first, then updates, then inserts *)
  cs_new_paths : (int * string) list;  (** rows to append to [Paths] *)
  cs_dead_paths : int list;  (** pathids whose last instance died *)
  cs_pathids : int list;
      (** every pathid whose rows or descriptor values this mutation
          changes — the commit-log entry prepared plans intersect their
          footprints with *)
  cs_routing : routing option;  (** present for inserts and replaces *)
}

type outcome = {
  inserted : int;
  updated : int;
  deleted : int;
  new_paths : int;
  dead_paths : int;
}

val stage : t -> op -> changeset
(** Validate the operation, mutate the shadow, and derive the row
    changeset. No database writes happen here. Raises {!Update_error}
    (before any shadow mutation) on invalid operations. *)

val commit : ?inserts:bool -> Database.t -> changeset -> unit
(** Apply a staged changeset to one database under its write lock and
    record the commit (touched table versions + changed pathids) in its
    log. [Row_update]/[Row_delete] targets absent from this database are
    skipped and [Paths] maintenance always applies, so the same changeset
    replays against shard replicas that hold only part of the store;
    [~inserts:false] additionally skips [Row_insert]s (for shards that do
    not own the new subtree). *)

val exec : t -> op -> outcome
(** [stage] + [commit] against the store's own database. *)

val outcome_of : changeset -> outcome

(** {1 Introspection} *)

val node_exists : t -> int -> bool
val node_path : t -> int -> string
val node_tag : t -> int -> string
val node_relation : t -> int -> string
(** Name of the relation storing the element's row. *)

val node_parent : t -> int -> int option
val node_children : t -> int -> int list
val node_label : t -> int -> string
(** The stored ORDPATH label bytes. *)

val max_label_len : t -> int
(** Longest stored label over all live elements, in bytes — the metric
    the adversarial-insert bench tracks for caret growth. *)

val current_trees : t -> Tree.node list
(** Reconstruct the current documents from the shadow — feeding these to
    a fresh {!create} must produce a store whose query results match this
    one's (the incremental-vs-reshred differential). *)

val ranks : t -> (int, int) Hashtbl.t
(** Element id -> 1-based document-order rank over all live elements
    (label byte order). Incremental stores keep original ids while a
    re-shred renumbers; ranks are the id-independent comparison key. *)

(** {1 Snapshots}

    The store-independent image of the shadow forest, for durability:
    ids, labels, attributes, and the text/element interleaving that the
    relations do not retain. Schema definitions and path strings are
    deliberately absent — {!of_shadow} re-resolves both against the
    adopted store and raises on any disagreement. *)

type shadow_item = Sh_text of string | Sh_node of shadow_node

and shadow_node = {
  sn_id : int;
  sn_doc : int;
  sn_tag : string;
  sn_label : string;  (** raw ORDPATH bytes ({!node_label}) *)
  sn_path_id : int;
  sn_attrs : (string * string) list;
  sn_items : shadow_item list;
}

type shadow = {
  sh_roots : shadow_node list;  (** document order *)
  sh_next_id : int;
  sh_next_path_id : int;
}

val shadow : t -> shadow
(** A deep, immutable copy of the current forest. *)

val of_shadow : Loader.t -> shadow -> t
(** Adopt [store] (typically a {!Ppfx_minidb.Codec} snapshot read back
    from disk) and rebuild the shadow from its persisted image. Every
    node's tag is re-checked against the schema, every path id against
    the store's Paths relation, and every label re-validated; any
    mismatch raises {!Update_error}. The adopted store's [docs] are
    re-derived from the recovered forest, so {!load}'s id-offset guard
    reflects the recovered state. *)

module Tree = Ppfx_xml.Tree
module Doc = Ppfx_xml.Doc
module Graph = Ppfx_schema.Graph
module Ordpath = Ppfx_dewey.Ordpath
module Mapping = Ppfx_shred.Mapping
module Loader = Ppfx_shred.Loader
module Database = Ppfx_minidb.Database
module Table = Ppfx_minidb.Table
module Btree = Ppfx_minidb.Btree
module Value = Ppfx_minidb.Value

exception Update_error of string

let error fmt = Format.kasprintf (fun m -> raise (Update_error m)) fmt

(* ------------------------------------------------------------------ *)
(* Shadow forest                                                       *)
(*                                                                     *)
(* The store's tables are flat rows; maintaining them incrementally    *)
(* needs the tree the rows came from — parent/child adjacency, the     *)
(* interleaving of text and element children (lost by the relational   *)
(* [text]/[dtext] columns), and each element's label. The shadow       *)
(* forest is that tree, kept exactly in sync with the committed store: *)
(* every mutation first rewrites the shadow, then derives the row      *)
(* changeset from it.                                                  *)
(* ------------------------------------------------------------------ *)

type node = {
  n_id : int;  (** global element id, never reused *)
  n_doc : int;  (** owning document id *)
  n_def : Graph.def;
  n_label : Ordpath.t;  (** full stored label, document component included *)
  n_path : string;
  n_path_id : int;
  mutable n_attrs : (string * string) list;
  mutable n_items : item list;  (** interleaved text and element children *)
  mutable n_parent : node option;
}

and item = I_text of string | I_node of node

let elem_children n =
  List.filter_map (function I_node c -> Some c | I_text _ -> None) n.n_items

let direct_text n =
  String.concat "" (List.filter_map (function I_text s -> Some s | I_node _ -> None) n.n_items)

let rec string_value n =
  String.concat ""
    (List.map (function I_text s -> s | I_node c -> string_value c) n.n_items)

let tag n = n.n_def.Graph.name

(* 1-based position among same-tag element siblings, and their count. *)
let ord_sibs n =
  match n.n_parent with
  | None -> 1, 1
  | Some p ->
    let same = List.filter (fun c -> String.equal (tag c) (tag n)) (elem_children p) in
    let rec pos i = function
      | [] -> error "shadow corruption: node %d not among its parent's children" n.n_id
      | c :: rest -> if c == n then i else pos (i + 1) rest
    in
    pos 1 same, List.length same

let rec iter_subtree f n =
  f n;
  List.iter (function I_node c -> iter_subtree f c | I_text _ -> ()) n.n_items

type t = {
  mutable store : Loader.t;
  mutable roots : node list;  (** document order *)
  by_id : (int, node) Hashtbl.t;
  path_ids : (string, int) Hashtbl.t;  (** live paths -> pathid *)
  path_refs : (int, int) Hashtbl.t;  (** pathid -> live element count *)
  mutable next_id : int;
  mutable next_path_id : int;
}

let store u = u.store
let db u = u.store.Loader.db
let size u = Hashtbl.length u.by_id

let find u id =
  match Hashtbl.find_opt u.by_id id with
  | Some n -> n
  | None -> error "no element with id %d" id

let node_exists u id = Hashtbl.mem u.by_id id
let node_path u id = (find u id).n_path
let node_tag u id = tag (find u id)
let node_label u id = Ordpath.to_raw (find u id).n_label
let node_relation u id =
  let n = find u id in
  Mapping.relation u.store.Loader.mapping n.n_def
let node_parent u id = Option.map (fun p -> p.n_id) (find u id).n_parent
let node_children u id = List.map (fun c -> c.n_id) (elem_children (find u id))

let max_label_len u =
  Hashtbl.fold
    (fun _ n acc -> max acc (String.length (Ordpath.to_raw n.n_label)))
    u.by_id 0

(* Document-order ranks: id -> 1-based rank over all live elements,
   derived from label byte order. The differential tests compare query
   results across stores whose ids diverge (incremental keeps original
   ids, a re-shred renumbers) by mapping each id to its rank. *)
let ranks u =
  let all = Hashtbl.fold (fun id n acc -> (Ordpath.to_raw n.n_label, id) :: acc) u.by_id [] in
  let arr = Array.of_list all in
  Array.sort compare arr;
  let tbl = Hashtbl.create (Array.length arr) in
  Array.iteri (fun i (_, id) -> Hashtbl.replace tbl id (i + 1)) arr;
  tbl

let rec tree_of_node n =
  Tree.Element
    {
      Tree.tag = tag n;
      attrs = n.n_attrs;
      children =
        List.map
          (function I_text s -> Tree.Text s | I_node c -> tree_of_node c)
          n.n_items;
    }

let current_trees u = List.map tree_of_node u.roots

(* ------------------------------------------------------------------ *)
(* Shadow construction                                                 *)
(* ------------------------------------------------------------------ *)

let child_def schema parent_def t =
  List.find_opt (fun c -> String.equal c.Graph.name t) (Graph.children schema parent_def)

(* Build the shadow of [tree] with [def] at [root_label], assigning
   fresh preorder ids and interning paths through [intern]. Does not
   attach the result anywhere. *)
let build_subtree u ~doc ~def ~path ~root_label ~intern tree =
  let schema = Mapping.schema u.store.Loader.mapping in
  let rec build def path label parent (e : Tree.element) =
    let id = u.next_id in
    u.next_id <- id + 1;
    let pid = intern path in
    let n =
      {
        n_id = id;
        n_doc = doc;
        n_def = def;
        n_label = label;
        n_path = path;
        n_path_id = pid;
        n_attrs = List.filter (fun (a, _) -> List.mem a def.Graph.attrs) e.Tree.attrs;
        n_items = [];
        n_parent = parent;
      }
    in
    let seq = ref 0 in
    n.n_items <-
      List.map
        (function
          | Tree.Text s -> I_text s
          | Tree.Element c ->
            incr seq;
            let cdef =
              match child_def schema def c.Tree.tag with
              | Some d -> d
              | None ->
                error "element %s at %s does not match the schema" c.Tree.tag path
            in
            I_node
              (build cdef
                 (path ^ "/" ^ c.Tree.tag)
                 (Ordpath.child label !seq) (Some n) c))
        e.Tree.children;
    Hashtbl.replace u.by_id id n;
    Hashtbl.replace u.path_refs pid
      (1 + Option.value ~default:0 (Hashtbl.find_opt u.path_refs pid));
    n
  in
  match tree with
  | Tree.Text _ -> error "fragment must be an element"
  | Tree.Element e ->
    (match def with
     | Some d when not (String.equal d.Graph.name e.Tree.tag) ->
       error "fragment root %s does not match expected element %s" e.Tree.tag
         d.Graph.name
     | _ -> ());
    let d =
      match def with
      | Some d -> d
      | None -> error "build_subtree: no definition"
    in
    build d path root_label None e

(* Pre-validate a fragment against the schema without touching any
   state, so a rejected fragment leaves the shadow untouched. *)
let validate_fragment u ~parent_def tree =
  let schema = Mapping.schema u.store.Loader.mapping in
  let rec walk def = function
    | Tree.Text _ -> ()
    | Tree.Element e ->
      List.iter
        (function
          | Tree.Text _ -> ()
          | Tree.Element c as child ->
            (match child_def schema def c.Tree.tag with
             | Some d -> walk d child
             | None ->
               error "element %s under %s does not match the schema" c.Tree.tag
                 def.Graph.name))
        e.Tree.children
  in
  match tree with
  | Tree.Text _ -> error "fragment must be an element"
  | Tree.Element e ->
    (match child_def schema parent_def e.Tree.tag with
     | Some d -> walk d tree; d
     | None ->
       error "element %s is not a valid child of %s" e.Tree.tag parent_def.Graph.name)

(* ------------------------------------------------------------------ *)
(* Row derivation                                                      *)
(* ------------------------------------------------------------------ *)

let build_row u n =
  let mapping = u.store.Loader.mapping in
  let schema = Mapping.schema mapping in
  let def = n.n_def in
  let fk_cols =
    List.map
      (fun p -> Mapping.parent_fk mapping ~child:def ~parent:p, p)
      (Graph.parents schema def)
  in
  let attr_cols = List.map (fun a -> Mapping.attr_column a, a) def.Graph.attrs in
  let ord, sibs = ord_sibs n in
  let value_of (c : Table.column) =
    let name = c.Table.name in
    if String.equal name "id" then Value.Int n.n_id
    else if String.equal name "doc_id" then
      match n.n_parent with None -> Value.Int n.n_doc | Some _ -> Value.Null
    else if String.equal name "dewey_pos" then Value.Bin (Ordpath.to_raw n.n_label)
    else if String.equal name "path_id" then Value.Int n.n_path_id
    else if String.equal name Mapping.text_column then Value.Str (string_value n)
    else if String.equal name Mapping.dtext_column then Value.Str (direct_text n)
    else if String.equal name "ord" then Value.Int ord
    else if String.equal name "sibs" then Value.Int sibs
    else
      match List.assoc_opt name fk_cols with
      | Some p -> (
        match n.n_parent with
        | Some par when par.n_def.Graph.id = p.Graph.id -> Value.Int par.n_id
        | Some _ | None -> Value.Null)
      | None -> (
        match List.assoc_opt name attr_cols with
        | Some a -> (
          match List.assoc_opt a n.n_attrs with
          | Some v -> Value.Str v
          | None -> Value.Null)
        | None -> error "unmapped column %s in relation %s" name def.Graph.relation)
  in
  Array.of_list (List.map value_of (Mapping.columns_of_def mapping def))

let relation_of u n = Mapping.relation u.store.Loader.mapping n.n_def

(* ------------------------------------------------------------------ *)
(* Changesets                                                          *)
(* ------------------------------------------------------------------ *)

type row_op =
  | Row_insert of { table : string; values : Value.t array }
  | Row_update of { table : string; elem : int; values : Value.t array }
  | Row_delete of { table : string; elem : int }

type routing = {
  rt_parent : int;  (** element id of the mutation site's parent *)
  rt_left : int option;  (** adjacent element sibling ids of the new subtree *)
  rt_right : int option;
  rt_fk : (string * string) option;
      (** the fragment root's (relation, parent-fk column) — lets the
          cluster detect a newly appearing boundary foreign key *)
}

type changeset = {
  cs_ops : row_op list;  (** deletes, then updates, then inserts *)
  cs_new_paths : (int * string) list;
  cs_dead_paths : int list;
  cs_pathids : int list;  (** the commit's changed-pathid set *)
  cs_routing : routing option;
}

type outcome = {
  inserted : int;
  updated : int;
  deleted : int;
  new_paths : int;
  dead_paths : int;
}

let outcome_of cs =
  List.fold_left
    (fun o op ->
      match op with
      | Row_insert _ -> { o with inserted = o.inserted + 1 }
      | Row_update _ -> { o with updated = o.updated + 1 }
      | Row_delete _ -> { o with deleted = o.deleted + 1 })
    {
      inserted = 0;
      updated = 0;
      deleted = 0;
      new_paths = List.length cs.cs_new_paths;
      dead_paths = List.length cs.cs_dead_paths;
    }
    cs.cs_ops

(* ------------------------------------------------------------------ *)
(* Operations (staging: shadow mutation + changeset derivation)        *)
(* ------------------------------------------------------------------ *)

type op =
  | Insert_subtree of { parent : int; before : int option; fragment : Tree.node }
  | Delete_subtree of { target : int }
  | Replace_subtree of { target : int; fragment : Tree.node }
  | Set_attribute of { target : int; name : string; value : string option }
  | Set_text of { target : int; text : string }

(* A staged mutation accumulates deletes/updates/inserts plus the pathid
   set; updates are deduplicated by element id (last write wins, but all
   rebuilds read the final shadow so every version is identical). *)
type acc = {
  mutable a_deletes : (string * int) list;  (* reverse order *)
  mutable a_updates : (int, string) Hashtbl.t;  (* elem -> table *)
  mutable a_inserts : node list;  (* reverse preorder *)
  mutable a_new_paths : (int * string) list;  (* reverse intern order *)
  mutable a_dead_paths : int list;
  a_pathids : (int, unit) Hashtbl.t;
}

let acc_create () =
  {
    a_deletes = [];
    a_updates = Hashtbl.create 8;
    a_inserts = [];
    a_new_paths = [];
    a_dead_paths = [];
    a_pathids = Hashtbl.create 8;
  }

let touch_path acc pid = Hashtbl.replace acc.a_pathids pid ()

let mark_update u acc n =
  Hashtbl.replace acc.a_updates n.n_id (relation_of u n);
  touch_path acc n.n_path_id

(* Update every same-tag element child of [p]: their [ord]/[sibs]
   positional descriptors moved. *)
let refresh_siblings u acc p t ~except =
  List.iter
    (fun c ->
      if String.equal (tag c) t && not (List.memq c except) then mark_update u acc c)
    (elem_children p)

(* Update the ancestor chain starting at [p]: their string values
   ([text] column) changed. *)
let rec refresh_ancestors u acc p =
  mark_update u acc p;
  match p.n_parent with None -> () | Some q -> refresh_ancestors u acc q

let intern_for acc u path =
  match Hashtbl.find_opt u.path_ids path with
  | Some id -> id
  | None ->
    let id = u.next_path_id in
    u.next_path_id <- id + 1;
    Hashtbl.replace u.path_ids path id;
    acc.a_new_paths <- (id, path) :: acc.a_new_paths;
    id

let detach_subtree u acc n =
  iter_subtree
    (fun c ->
      acc.a_deletes <- (relation_of u c, c.n_id) :: acc.a_deletes;
      touch_path acc c.n_path_id;
      Hashtbl.remove u.by_id c.n_id;
      let refs = Option.value ~default:1 (Hashtbl.find_opt u.path_refs c.n_path_id) in
      if refs <= 1 then begin
        Hashtbl.remove u.path_refs c.n_path_id;
        Hashtbl.remove u.path_ids c.n_path;
        acc.a_dead_paths <- c.n_path_id :: acc.a_dead_paths
      end
      else Hashtbl.replace u.path_refs c.n_path_id (refs - 1))
    n

let finish u acc ~routing =
  let ops =
    List.rev_map (fun (table, elem) -> Row_delete { table; elem }) acc.a_deletes
    @ (Hashtbl.fold (fun elem table l -> (elem, table) :: l) acc.a_updates []
      |> List.sort compare
      |> List.filter_map (fun (elem, table) ->
             if Hashtbl.mem u.by_id elem then
               Some (Row_update { table; elem; values = build_row u (find u elem) })
             else None))
    @ List.rev_map
        (fun n -> Row_insert { table = relation_of u n; values = build_row u n })
        acc.a_inserts
  in
  {
    cs_ops = ops;
    cs_new_paths = List.rev acc.a_new_paths;
    cs_dead_paths = List.rev acc.a_dead_paths;
    cs_pathids = Hashtbl.fold (fun k () l -> k :: l) acc.a_pathids [];
    cs_routing = routing;
  }

(* Splice [fragment] under [p] immediately before the child element
   [before] (or at the end). Returns the new subtree root. *)
let stage_insert u acc p ~before ~left ~right fragment =
  let fdef = validate_fragment u ~parent_def:p.n_def fragment in
  let root_label =
    match left, right with
    | None, None -> Ordpath.child p.n_label 1
    | l, r ->
      Ordpath.insert_between
        (Option.map (fun n -> n.n_label) l)
        (Option.map (fun n -> n.n_label) r)
  in
  let froot =
    build_subtree u ~doc:p.n_doc ~def:(Some fdef)
      ~path:(p.n_path ^ "/" ^ fdef.Graph.name)
      ~root_label ~intern:(intern_for acc u) fragment
  in
  froot.n_parent <- Some p;
  let rec splice = function
    | [] -> [ I_node froot ]
    | I_node c :: rest when (match before with Some b -> c == b | None -> false) ->
      I_node froot :: I_node c :: rest
    | it :: rest -> it :: splice rest
  in
  p.n_items <- splice p.n_items;
  iter_subtree
    (fun c ->
      acc.a_inserts <- c :: acc.a_inserts;
      touch_path acc c.n_path_id)
    froot;
  froot

let insert_neighbors p ~before =
  (* nearest element siblings on each side of the insertion point *)
  match before with
  | None ->
    let rec last acc = function
      | [] -> acc
      | I_node c :: rest -> last (Some c) rest
      | I_text _ :: rest -> last acc rest
    in
    last None p.n_items, None
  | Some b ->
    let rec go left = function
      | [] -> error "before-element %d is not a child of element %d" b.n_id p.n_id
      | I_node c :: _ when c == b -> left, Some c
      | I_node c :: rest -> go (Some c) rest
      | I_text _ :: rest -> go left rest
    in
    go None p.n_items

let routing_for ~parent ~left ~right ~fk =
  Some
    {
      rt_parent = parent.n_id;
      rt_left = Option.map (fun n -> n.n_id) left;
      rt_right = Option.map (fun n -> n.n_id) right;
      rt_fk = fk;
    }

let stage u op =
  let mapping = u.store.Loader.mapping in
  match op with
  | Insert_subtree { parent; before; fragment } ->
    let p = find u parent in
    let before_node =
      Option.map
        (fun b ->
          let bn = find u b in
          (match bn.n_parent with
           | Some q when q == p -> ()
           | _ -> error "before-element %d is not a child of element %d" b parent);
          bn)
        before
    in
    let left, right = insert_neighbors p ~before:before_node in
    let acc = acc_create () in
    let froot = stage_insert u acc p ~before:before_node ~left ~right fragment in
    refresh_siblings u acc p (tag froot) ~except:[ froot ];
    if not (String.equal (string_value froot) "") then refresh_ancestors u acc p;
    let fk =
      Some
        ( relation_of u froot,
          Mapping.parent_fk mapping ~child:froot.n_def ~parent:p.n_def )
    in
    finish u acc ~routing:(routing_for ~parent:p ~left ~right ~fk)
  | Delete_subtree { target } ->
    let n = find u target in
    let p =
      match n.n_parent with
      | Some p -> p
      | None -> error "cannot delete a document root (element %d)" target
    in
    let acc = acc_create () in
    let had_text = not (String.equal (string_value n) "") in
    detach_subtree u acc n;
    p.n_items <- List.filter (function I_node c -> not (c == n) | I_text _ -> true) p.n_items;
    refresh_siblings u acc p (tag n) ~except:[];
    if had_text then refresh_ancestors u acc p;
    finish u acc ~routing:None
  | Replace_subtree { target; fragment } ->
    let n = find u target in
    let p =
      match n.n_parent with
      | Some p -> p
      | None -> error "cannot replace a document root (element %d)" target
    in
    (* Validate before mutating, so a bad fragment leaves the shadow
       untouched. *)
    let _ = validate_fragment u ~parent_def:p.n_def fragment in
    let acc = acc_create () in
    let old_tag = tag n in
    let old_text = string_value n in
    (* Neighbors around the target, excluding it. *)
    let rec around left = function
      | [] -> error "shadow corruption: node %d not among its parent's items" n.n_id
      | I_node c :: rest when c == n ->
        let rec first = function
          | [] -> None
          | I_node r :: _ -> Some r
          | I_text _ :: more -> first more
        in
        left, first rest
      | I_node c :: rest -> around (Some c) rest
      | I_text _ :: rest -> around left rest
    in
    let left, right = around None p.n_items in
    detach_subtree u acc n;
    (* Keep the target's item position: splice the fragment right where
       the old subtree sat, then drop the old subtree. *)
    let froot = stage_insert u acc p ~before:(Some n) ~left ~right fragment in
    p.n_items <- List.filter (function I_node c -> not (c == n) | I_text _ -> true) p.n_items;
    refresh_siblings u acc p old_tag ~except:[ froot ];
    refresh_siblings u acc p (tag froot) ~except:[ froot ];
    if not (String.equal old_text (string_value froot)) then refresh_ancestors u acc p;
    let fk =
      Some
        ( relation_of u froot,
          Mapping.parent_fk mapping ~child:froot.n_def ~parent:p.n_def )
    in
    finish u acc ~routing:(routing_for ~parent:p ~left ~right ~fk)
  | Set_attribute { target; name; value } ->
    let n = find u target in
    if not (List.mem name n.n_def.Graph.attrs) then
      error "element %s declares no attribute %s" (tag n) name;
    let acc = acc_create () in
    n.n_attrs <-
      (let without = List.remove_assoc name n.n_attrs in
       match value with None -> without | Some v -> without @ [ (name, v) ]);
    mark_update u acc n;
    finish u acc ~routing:None
  | Set_text { target; text } ->
    let n = find u target in
    let old = string_value n in
    let acc = acc_create () in
    let elems = List.filter (function I_node _ -> true | I_text _ -> false) n.n_items in
    n.n_items <- (if String.equal text "" then elems else I_text text :: elems);
    mark_update u acc n;
    if not (String.equal old (string_value n)) then
      Option.iter (fun p -> refresh_ancestors u acc p) n.n_parent;
    finish u acc ~routing:None

(* ------------------------------------------------------------------ *)
(* Commit                                                              *)
(* ------------------------------------------------------------------ *)

let find_row db table elem =
  match Database.table_opt db table with
  | None -> None
  | Some tbl -> (
    match Table.index_on tbl [ "id" ] with
    | Some tree -> (
      match Btree.find_equal tree [| Value.Int elem |] with
      | r :: _ -> Some (tbl, r)
      | [] -> None)
    | None ->
      let found = ref None in
      Table.iter_rows
        (fun r row -> if row.(0) = Value.Int elem then found := Some (tbl, r))
        tbl;
      !found)

let commit ?(inserts = true) database cs =
  Database.with_write database (fun () ->
      let before = Hashtbl.create 8 in
      let note name =
        if not (Hashtbl.mem before name) then
          match Database.table_opt database name with
          | Some tbl -> Hashtbl.add before name (Table.version tbl)
          | None -> ()
      in
      if cs.cs_new_paths <> [] || cs.cs_dead_paths <> [] then note Mapping.paths_table;
      List.iter
        (function
          | Row_insert { table; _ } | Row_update { table; _ } | Row_delete { table; _ }
            ->
            note table)
        cs.cs_ops;
      (* Paths rows are replicated on every store. *)
      List.iter
        (fun (id, path) ->
          match Database.table_opt database Mapping.paths_table with
          | Some paths -> ignore (Table.insert paths [| Value.Int id; Value.Str path |])
          | None -> ())
        cs.cs_new_paths;
      List.iter
        (fun op ->
          match op with
          | Row_insert { table; values } ->
            if inserts then
              Option.iter
                (fun tbl -> ignore (Table.insert tbl values))
                (Database.table_opt database table)
          | Row_update { table; elem; values } ->
            Option.iter
              (fun (tbl, r) -> ignore (Table.update tbl r values))
              (find_row database table elem)
          | Row_delete { table; elem } ->
            Option.iter
              (fun (tbl, r) -> ignore (Table.delete tbl r))
              (find_row database table elem))
        cs.cs_ops;
      List.iter
        (fun pid ->
          Option.iter
            (fun (tbl, r) -> ignore (Table.delete tbl r))
            (find_row database Mapping.paths_table pid))
        cs.cs_dead_paths;
      let touched =
        Hashtbl.fold
          (fun name v0 acc ->
            match Database.table_opt database name with
            | Some tbl when Table.version tbl <> v0 -> (name, v0, Table.version tbl) :: acc
            | Some _ | None -> acc)
          before []
      in
      ignore (Database.record_commit database ~touched ~pathids:cs.cs_pathids))

let exec u op =
  let cs = stage u op in
  commit (db u) cs;
  outcome_of cs

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let add_document u ~doc_id ~offset tree =
  let schema = Mapping.schema u.store.Loader.mapping in
  let root_def = Graph.root schema in
  u.next_id <- offset + 1;
  let intern path =
    match Hashtbl.find_opt u.path_ids path with
    | Some id -> id
    | None -> error "path %s missing from the interned Paths relation" path
  in
  let root =
    build_subtree u ~doc:doc_id ~def:(Some root_def) ~path:("/" ^ root_def.Graph.name)
      ~root_label:(Ordpath.child (Ordpath.of_components [ (2 * doc_id) - 1 ]) 1)
      ~intern tree
  in
  u.roots <- u.roots @ [ root ]

let of_store store trees =
  if List.length trees <> List.length store.Loader.docs then
    error "of_store: %d trees for %d loaded documents" (List.length trees)
      (List.length store.Loader.docs);
  let u =
    {
      store;
      roots = [];
      by_id = Hashtbl.create 1024;
      path_ids = Hashtbl.create 64;
      path_refs = Hashtbl.create 64;
      next_id = 1;
      next_path_id = 1;
    }
  in
  let paths = Database.table store.Loader.db Mapping.paths_table in
  Table.iter_rows
    (fun _ row ->
      match row.(0), row.(1) with
      | Value.Int id, Value.Str p -> Hashtbl.replace u.path_ids p id
      | _ -> ())
    paths;
  u.next_path_id <- Table.row_count paths + 1;
  List.iteri
    (fun i tree ->
      let offset =
        List.fold_left
          (fun acc d -> acc + Doc.size d)
          0
          (List.filteri (fun j _ -> j < i) store.Loader.docs)
      in
      add_document u ~doc_id:(i + 1) ~offset tree)
    trees;
  let expected =
    List.fold_left (fun acc d -> acc + Doc.size d) 0 store.Loader.docs
  in
  if Hashtbl.length u.by_id <> expected then
    error "of_store: shadow has %d elements, store has %d" (Hashtbl.length u.by_id)
      expected;
  u.next_id <- expected + 1;
  u

let create schema trees =
  let store =
    List.fold_left
      (fun s tree -> Loader.load s (Doc.of_tree tree))
      (Loader.create (Mapping.of_schema schema))
      trees
  in
  of_store store trees

let extend u store' tree =
  (* [store'] is this store with one more document bulk-loaded through
     Loader.load. The loader offsets the new document's ids by the sum
     of the previous documents' sizes; ids allocated by caret inserts
     live past that offset and would collide, so bulk growth is only
     allowed while the id space is pristine. *)
  let loaded_offset =
    List.fold_left
      (fun acc d -> acc + Doc.size d)
      0
      (match List.rev store'.Loader.docs with [] -> [] | _ :: prev -> List.rev prev)
  in
  if u.next_id - 1 > loaded_offset then
    error
      "cannot bulk-load after incremental inserts (next id %d is past the \
       loader offset %d); use Insert_subtree"
      u.next_id loaded_offset;
  u.store <- store';
  let doc_id = List.length store'.Loader.docs in
  (* New paths were interned by the loader; refresh the shadow copy. *)
  let paths = Database.table store'.Loader.db Mapping.paths_table in
  Table.iter_rows
    (fun _ row ->
      match row.(0), row.(1) with
      | Value.Int id, Value.Str p ->
        if not (Hashtbl.mem u.path_ids p) then Hashtbl.replace u.path_ids p id
      | _ -> ())
    paths;
  u.next_path_id <- max u.next_path_id (Table.row_count paths + 1);
  add_document u ~doc_id ~offset:loaded_offset tree

let load u tree =
  let doc = Doc.of_tree tree in
  let store' = Database.with_write (db u) (fun () -> Loader.load u.store doc) in
  extend u store' tree

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(*                                                                     *)
(* A [shadow] is the pure, store-independent image of the forest: ids, *)
(* labels, attrs, and the text/element interleaving the relations      *)
(* cannot answer from. The durability layer persists it next to the    *)
(* database snapshot so a recovered store can keep staging mutations.  *)
(* Schema defs and paths are NOT stored — [of_shadow] re-resolves them *)
(* against the adopted store's mapping and Paths relation and fails    *)
(* loudly on any disagreement, so a snapshot can never smuggle in a    *)
(* shape the schema would have rejected.                               *)
(* ------------------------------------------------------------------ *)

type shadow_item = Sh_text of string | Sh_node of shadow_node

and shadow_node = {
  sn_id : int;
  sn_doc : int;
  sn_tag : string;
  sn_label : string;  (** raw ORDPATH bytes, {!Ordpath.to_raw} *)
  sn_path_id : int;
  sn_attrs : (string * string) list;
  sn_items : shadow_item list;
}

type shadow = {
  sh_roots : shadow_node list;  (** document order *)
  sh_next_id : int;
  sh_next_path_id : int;
}

let shadow u =
  let rec snap n =
    {
      sn_id = n.n_id;
      sn_doc = n.n_doc;
      sn_tag = tag n;
      sn_label = Ordpath.to_raw n.n_label;
      sn_path_id = n.n_path_id;
      sn_attrs = n.n_attrs;
      sn_items =
        List.map (function I_text s -> Sh_text s | I_node c -> Sh_node (snap c)) n.n_items;
    }
  in
  {
    sh_roots = List.map snap u.roots;
    sh_next_id = u.next_id;
    sh_next_path_id = u.next_path_id;
  }

let of_shadow store sh =
  let u =
    {
      store;
      roots = [];
      by_id = Hashtbl.create 1024;
      path_ids = Hashtbl.create 64;
      path_refs = Hashtbl.create 64;
      next_id = sh.sh_next_id;
      next_path_id = sh.sh_next_path_id;
    }
  in
  (match Database.table_opt store.Loader.db Mapping.paths_table with
   | Some paths ->
     Table.iter_rows
       (fun _ row ->
         match row.(0), row.(1) with
         | Value.Int id, Value.Str p -> Hashtbl.replace u.path_ids p id
         | _ -> ())
       paths
   | None -> error "of_shadow: store has no %s relation" Mapping.paths_table);
  let schema = Mapping.schema store.Loader.mapping in
  let rec rebuild def path parent sn =
    if not (String.equal def.Graph.name sn.sn_tag) then
      error "of_shadow: snapshot node %d is a %s where the schema expects %s" sn.sn_id
        sn.sn_tag def.Graph.name;
    (match Hashtbl.find_opt u.path_ids path with
     | Some pid when pid = sn.sn_path_id -> ()
     | Some pid ->
       error "of_shadow: node %d at %s carries path id %d but Paths says %d" sn.sn_id
         path sn.sn_path_id pid
     | None -> error "of_shadow: path %s of node %d is missing from Paths" path sn.sn_id);
    if sn.sn_id <= 0 || sn.sn_id >= sh.sh_next_id then
      error "of_shadow: element id %d outside the allocated id space" sn.sn_id;
    if Hashtbl.mem u.by_id sn.sn_id then
      error "of_shadow: duplicate element id %d" sn.sn_id;
    let label =
      try Ordpath.of_raw sn.sn_label
      with Ordpath.Invalid m -> error "of_shadow: node %d label: %s" sn.sn_id m
    in
    let n =
      {
        n_id = sn.sn_id;
        n_doc = sn.sn_doc;
        n_def = def;
        n_label = label;
        n_path = path;
        n_path_id = sn.sn_path_id;
        n_attrs = List.filter (fun (a, _) -> List.mem a def.Graph.attrs) sn.sn_attrs;
        n_items = [];
        n_parent = parent;
      }
    in
    n.n_items <-
      List.map
        (function
          | Sh_text s -> I_text s
          | Sh_node c ->
            let cdef =
              match child_def schema def c.sn_tag with
              | Some d -> d
              | None ->
                error "of_shadow: element %s at %s does not match the schema" c.sn_tag
                  path
            in
            I_node (rebuild cdef (path ^ "/" ^ c.sn_tag) (Some n) c))
        sn.sn_items;
    Hashtbl.replace u.by_id sn.sn_id n;
    Hashtbl.replace u.path_refs sn.sn_path_id
      (1 + Option.value ~default:0 (Hashtbl.find_opt u.path_refs sn.sn_path_id));
    n
  in
  let root_def = Graph.root schema in
  u.roots <- List.map (fun sn -> rebuild root_def ("/" ^ root_def.Graph.name) None sn) sh.sh_roots;
  (* Re-derive docs so size-based guards (extend's id-offset check) see
     the recovered forest, not the pre-crash bulk-load history. *)
  u.store <- { store with Loader.docs = List.map Doc.of_tree (current_trees u) };
  u

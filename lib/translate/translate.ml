module Ast = Ppfx_xpath.Ast
module Graph = Ppfx_schema.Graph
module Mapping = Ppfx_shred.Mapping
module Sql = Ppfx_minidb.Sql
module Value = Ppfx_minidb.Value
module Engine = Ppfx_minidb.Engine
module Rx = Regex_of_path

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun m -> raise (Unsupported m)) fmt

type options = {
  omit_path_filters : bool;
  merge_forward : bool;
  fk_child_joins : bool;
  force_per_step : bool;
}

let default_options =
  {
    omit_path_filters = true;
    merge_forward = true;
    fk_child_joins = true;
    force_per_step = false;
  }

type t = {
  mapping : Mapping.t;
  schema : Graph.t;
  options : options;
}

let create ?(options = default_options) mapping =
  { mapping; schema = Mapping.schema mapping; options }

let options_fingerprint o =
  Printf.sprintf "omit=%b;merge=%b;fk=%b;per_step=%b" o.omit_path_filters
    o.merge_forward o.fk_child_joins o.force_per_step

(* Canonical description of the schema graph: vertex ids, names, relations,
   attributes, text-capability and child edges, in definition order. Two
   translators with equal fingerprints produce identical SQL for any query,
   so the fingerprint is a sound cache key for compiled translations. *)
let fingerprint t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "root=%d;" (Graph.root t.schema).Graph.id);
  List.iter
    (fun (d : Graph.def) ->
      Buffer.add_string buf
        (Printf.sprintf "%d:%s:%s:[%s]:%b:(%s);" d.Graph.id d.Graph.name
           d.Graph.relation
           (String.concat "," d.Graph.attrs)
           d.Graph.has_text
           (String.concat ","
              (List.map
                 (fun (c : Graph.def) -> string_of_int c.Graph.id)
                 (Graph.children t.schema d)))))
    (Graph.defs t.schema);
  Buffer.add_char buf '|';
  Buffer.add_string buf (options_fingerprint t.options);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* Branches                                                            *)
(* ------------------------------------------------------------------ *)

(* SQL splitting (Section 4.4) is modelled by translating in a list monad:
   a branch is one statement under construction. *)

(* Accumulated forward chain used for regexes; [None] means the chain's
   start anchor is unknown (after backward/order fragments). An anchored
   chain always starts at the document root. *)
type chain = Rx.seg list option

type node_ctx = {
  alias : string;
  def : Graph.def;
  chain : chain;  (** segments from the root down to this node *)
  paths_alias : string option;
}

type branch = {
  from_ : (string * string) list;  (** reversed *)
  conj : Sql.expr list;  (** reversed *)
  cur : node_ctx option;  (** [None] = virtual document root *)
}

let empty_branch = { from_ = []; conj = []; cur = None }

let add_from b table alias = { b with from_ = (table, alias) :: b.from_ }

let add_conj b e = { b with conj = e :: b.conj }

(* Fresh table aliases, unique within one translation. *)
type env = {
  t : t;
  counter : (string, int) Hashtbl.t;
}

let fresh env base =
  let n = 1 + Option.value ~default:0 (Hashtbl.find_opt env.counter base) in
  Hashtbl.replace env.counter base n;
  if n = 1 then base else Printf.sprintf "%s_%d" base n

let col alias c = Sql.Col (alias, c)

let dewey alias = col alias "dewey_pos"

let dewey_upper alias = Sql.Concat (dewey alias, Sql.Const (Value.Bin "\xFF"))

let can_stack schema def =
  List.exists (fun d -> d.Graph.id = def.Graph.id) (Graph.descendants schema def)

(* ------------------------------------------------------------------ *)
(* Step normalization                                                  *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Definition-set resolution                                           *)
(* ------------------------------------------------------------------ *)

let match_test test (def : Graph.def) =
  match test with
  | Ast.Name n -> String.equal n def.Graph.name
  | Ast.Wildcard | Ast.Any_node -> true
  | Ast.Text -> false

let resolve_axis env (context : Graph.def option) axis test =
  let schema = env.t.schema in
  let all = Graph.defs schema in
  let filtered defs = List.filter (match_test test) defs in
  match context, axis with
  | None, Ast.Child -> filtered [ Graph.root schema ]
  | None, Ast.Descendant -> filtered all
  | None, _ -> []
  | Some d, Ast.Child -> filtered (Graph.children schema d)
  | Some d, Ast.Descendant -> filtered (Graph.descendants schema d)
  | Some d, Ast.Parent -> filtered (Graph.parents schema d)
  | Some d, Ast.Ancestor -> filtered (Graph.ancestors schema d)
  | Some _, (Ast.Following | Ast.Following_sibling | Ast.Preceding | Ast.Preceding_sibling)
    ->
    filtered all
  | Some _, (Ast.Self | Ast.Descendant_or_self | Ast.Ancestor_or_self | Ast.Attribute) ->
    unsupported "axis %s should have been normalized away" (Ast.axis_name axis)

(* Definition sets reached by a whole forward fragment (without adding
   relations for intermediate steps). *)
let resolve_steps env context steps =
  List.fold_left
    (fun defs (step : Ast.step) ->
      List.sort_uniq
        (fun a b -> compare a.Graph.id b.Graph.id)
        (List.concat_map
           (fun d -> resolve_axis env (Some d) step.Ast.axis step.Ast.test)
           defs))
    (match context with
     | None -> resolve_axis env None (List.hd steps).Ast.axis (List.hd steps).Ast.test
     | Some d -> [ d ])
    (match context with None -> List.tl steps | Some _ -> steps)

(* ------------------------------------------------------------------ *)
(* Path filters (Sections 4.1 and 4.5)                                 *)
(* ------------------------------------------------------------------ *)

(* Outcome of the Section 4.5 static check for one relation and regex. *)
type filter_decision =
  | Filter_skip  (** regex provably satisfied: no Paths join *)
  | Filter_join  (** join Paths and apply the regex *)
  | Filter_prune  (** regex provably unsatisfiable: empty branch *)

let decide_filter env (def : Graph.def) pattern =
  if not env.t.options.omit_path_filters then Filter_join
  else
    match Graph.classification env.t.schema def with
    | Graph.Unique_path p -> if Rx.matches pattern p then Filter_skip else Filter_prune
    | Graph.Finite_paths ps ->
      let matching = List.filter (Rx.matches pattern) ps in
      if List.length matching = List.length ps then Filter_skip
      else if matching = [] then Filter_prune
      else Filter_join
    | Graph.Infinite_paths -> Filter_join

(* Ensure [node] is joined to the Paths relation; the join itself is
   lossless so it is always safe to add. Returns the paths alias and the
   updated context. *)
let ensure_paths_join _env b (node : node_ctx) =
  match node.paths_alias with
  | Some pa -> b, node, pa
  | None ->
    let pa = node.alias ^ "_paths" in
    let b = add_from b Mapping.paths_table pa in
    let b = add_conj b (Sql.Cmp (Sql.Eq, col node.alias "path_id", col pa "id")) in
    b, { node with paths_alias = Some pa }, pa

(* Apply a path regex filter to [node] under the 4.5 policy. Returns
   [None] for a pruned branch. *)
let apply_path_filter env b (node : node_ctx) pattern =
  match decide_filter env node.def pattern with
  | Filter_skip -> Some (b, node)
  | Filter_prune -> None
  | Filter_join ->
    let b, node, pa = ensure_paths_join () b node in
    Some (add_conj b (Sql.Regexp_like (col pa "path", pattern)), node)

(* ------------------------------------------------------------------ *)
(* Structural joins (Section 4.2, Table 2)                             *)
(* ------------------------------------------------------------------ *)

(* Table 2 row 1. BETWEEN is inclusive, so a self-join of a recursive
   relation could match a row with itself; a strict lower bound restores
   Lemma 1's strict inequality in exactly that case. *)
let descendant_join ~anc ~desc =
  let between = Sql.Between (dewey desc.alias, dewey anc.alias, dewey_upper anc.alias) in
  if anc.def.Graph.id = desc.def.Graph.id then
    Sql.And (between, Sql.Cmp (Sql.Gt, dewey desc.alias, dewey anc.alias))
  else between

let fk_join env b ~child_ctx ~parent_ctx =
  let fk =
    Mapping.parent_fk env.t.mapping ~child:child_ctx.def ~parent:parent_ctx.def
  in
  add_conj b (Sql.Cmp (Sql.Eq, col child_ctx.alias fk, col parent_ctx.alias "id"))

(* Sibling join: the two relations must share a parent row. Each common
   parent definition gives one foreign-key equality; the caller branches
   per parent so every branch keeps an indexable equijoin (a NULL never
   equals NULL, so only real siblings remain). *)
let sibling_conditions env (a : node_ctx) (b : node_ctx) =
  let parents d = Graph.parents env.t.schema d in
  let common =
    List.filter
      (fun p -> List.exists (fun q -> q.Graph.id = p.Graph.id) (parents b.def))
      (parents a.def)
  in
  List.map
    (fun p ->
      let fka = Mapping.parent_fk env.t.mapping ~child:a.def ~parent:p in
      let fkb = Mapping.parent_fk env.t.mapping ~child:b.def ~parent:p in
      Sql.Cmp (Sql.Eq, col a.alias fka, col b.alias fkb))
    common

(* Exact level pinning via the binary dewey length (3 bytes per level). *)
let level_eq ~shallow ~deep k =
  Sql.Cmp
    ( Sql.Eq,
      Sql.Length (dewey deep),
      Sql.Arith (Sql.Add, Sql.Length (dewey shallow), Sql.Const (Value.Int (3 * k))) )

(* Minimum distance: [deep] is at least [k] levels below [shallow]. *)
let level_ge ~shallow ~deep k =
  Sql.Cmp
    ( Sql.Ge,
      Sql.Length (dewey deep),
      Sql.Arith (Sql.Add, Sql.Length (dewey shallow), Sql.Const (Value.Int (3 * k))) )

(* ------------------------------------------------------------------ *)
(* Fragment classification                                             *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Value expressions inside predicates                                 *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* The translator core                                                 *)
(* ------------------------------------------------------------------ *)

(* Final-step result kind (what the statement projects / compares). *)
type value_kind =
  | V_element  (** the element's string value *)
  | V_text  (** a text() result: direct text *)
  | V_attr of string

let value_expr (node : node_ctx) = function
  | V_element -> col node.alias Mapping.text_column
  | V_text -> col node.alias Mapping.dtext_column
  | V_attr a -> col node.alias (Mapping.attr_column a)

let rec translate_steps env (b : branch) (steps : Ast.step list) : branch list =
  let ppfs = Ppf.split steps in
  List.fold_left
    (fun branches ppf -> List.concat_map (fun b -> translate_ppf env b ppf) branches)
    [ b ] ppfs

and translate_ppf env (b : branch) (ppf : Ppf.t) : branch list =
  match ppf with
  | Ppf.Forward steps -> translate_forward env b steps
  | Ppf.Backward steps -> translate_backward env b steps
  | Ppf.Order step -> translate_order env b step

(* --- Forward fragments --------------------------------------------- *)

and translate_forward env (b : branch) (steps : Ast.step list) : branch list =
  let segs =
    List.map
      (fun s ->
        match Rx.seg_of_step s with
        | Some seg -> seg
        | None -> unsupported "unsupported node test in forward step")
      steps
  in
  let context = Option.map (fun c -> c.def) b.cur in
  let cur_chain = match b.cur with None -> Some [] | Some c -> c.chain in
  let holistic_ok =
    if env.t.options.force_per_step then `Per_step
    else
    match b.cur, cur_chain with
    | None, _ -> `Anchored [] (* first fragment: regex alone is exact *)
    | Some _, Some prefix when env.t.options.merge_forward ->
      if Rx.fixed_depth prefix then `Anchored prefix
      else if Rx.fixed_depth segs then `Child_exact prefix
      else if List.length segs = 1 then `Single_desc prefix
      else `Per_step
    | Some _, (Some _ | None) -> `Per_step
  in
  match holistic_ok with
  | `Per_step -> translate_per_step env b steps
  | (`Anchored prefix | `Child_exact prefix | `Single_desc prefix) as mode ->
    let full_segs = prefix @ segs in
    let prominent = resolve_steps env context steps in
    List.filter_map
      (fun (def : Graph.def) ->
        (* The regex's final segment is this concrete relation's name; pin
           it so the 4.5 static checks are accurate per branch. *)
        let full_segs =
          match List.rev full_segs with
          | last :: rev_rest ->
            List.rev ({ last with Rx.name = Some def.Graph.name } :: rev_rest)
          | [] -> assert false
        in
        let pattern = Rx.forward ~anchored:true full_segs in
        let alias = fresh env def.Graph.relation in
        let node = { alias; def; chain = Some full_segs; paths_alias = None } in
        let b = add_from b (Mapping.relation env.t.mapping def) alias in
        (* Structural join to the previous fragment. *)
        let joined =
          match b.cur with
          | None -> Some b
          | Some prev ->
            (match steps with
             | [ { Ast.axis = Ast.Child; _ } ] when env.t.options.fk_child_joins ->
               if
                 List.exists
                   (fun p -> p.Graph.id = prev.def.Graph.id)
                   (Graph.parents env.t.schema def)
               then Some (fk_join env b ~child_ctx:node ~parent_ctx:prev)
               else None
             | _ ->
               let b = add_conj b (descendant_join ~anc:prev ~desc:node) in
               let b =
                 match mode with
                 | `Child_exact _ ->
                   add_conj b
                     (level_eq ~shallow:prev.alias ~deep:node.alias (List.length segs))
                 | `Anchored _ | `Single_desc _ -> b
               in
               Some b)
        in
        match joined with
        | None -> None
        | Some b ->
          (match apply_path_filter env b node pattern with
           | None -> None
           | Some (b, node) ->
             let b = { b with cur = Some node } in
             let last_step = List.nth steps (List.length steps - 1) in
             Some
               (translate_predicates env b ~step:last_step
                  (List.concat_map (fun s -> s.Ast.predicates) steps))))
      prominent
    |> List.concat

(* Exact conventional translation: one relation per step. Used as the
   soundness fallback and by the "commercial RDBMS" baseline. *)
and translate_per_step env (b : branch) (steps : Ast.step list) : branch list =
  List.fold_left
    (fun branches (step : Ast.step) ->
      List.concat_map (fun b -> translate_single_step env b step) branches)
    [ b ] steps

and translate_single_step env (b : branch) (step : Ast.step) : branch list =
  let context = Option.map (fun c -> c.def) b.cur in
  let defs = resolve_axis env context step.Ast.axis step.Ast.test in
  List.concat_map
    (fun (def : Graph.def) ->
      let alias = fresh env def.Graph.relation in
      let node = { alias; def; chain = None; paths_alias = None } in
      let b = add_from b (Mapping.relation env.t.mapping def) alias in
      let joined =
        match b.cur, step.Ast.axis with
        | None, _ -> `One b
        | Some prev, Ast.Child ->
          if env.t.options.fk_child_joins then
            `One (fk_join env b ~child_ctx:node ~parent_ctx:prev)
          else
            `One
              (add_conj
                 (add_conj b (descendant_join ~anc:prev ~desc:node))
                 (level_eq ~shallow:prev.alias ~deep:node.alias 1))
        | Some prev, Ast.Parent ->
          if env.t.options.fk_child_joins then
            `One (fk_join env b ~child_ctx:prev ~parent_ctx:node)
          else
            `One
              (add_conj
                 (add_conj b (descendant_join ~anc:node ~desc:prev))
                 (level_eq ~shallow:node.alias ~deep:prev.alias 1))
        | Some prev, Ast.Descendant -> `One (add_conj b (descendant_join ~anc:prev ~desc:node))
        | Some prev, Ast.Ancestor -> `One (add_conj b (descendant_join ~anc:node ~desc:prev))
        | Some prev, (Ast.Following | Ast.Following_sibling | Ast.Preceding | Ast.Preceding_sibling)
          ->
          `Many (order_join env b ~prev ~node step.Ast.axis)
        | Some _, (Ast.Self | Ast.Descendant_or_self | Ast.Ancestor_or_self | Ast.Attribute)
          ->
          unsupported "axis %s should have been normalized away"
            (Ast.axis_name step.Ast.axis)
      in
      let joined_branches = match joined with `One b -> [ b ] | `Many bs -> bs in
      List.concat_map
        (fun b ->
          let b = { b with cur = Some node } in
          translate_predicates env b ~step step.Ast.predicates)
        joined_branches)
    defs

(* --- Backward fragments -------------------------------------------- *)

and translate_backward env (b : branch) (steps : Ast.step list) : branch list =
  let prev =
    match b.cur with
    | Some prev -> prev
    | None -> unsupported "backward fragment at the start of a path"
  in
  (* Holistic treatment is exact for parent*ancestor* shapes; an ancestor
     step followed by a parent step needs the per-step fallback when the
     prominent definition can stack on a root path. *)
  let axes = List.map (fun (s : Ast.step) -> s.Ast.axis) steps in
  (* Exact holistic shapes: parent* with an optional single trailing
     ancestor. Longer ancestor tails cannot pin which ancestor the Dewey
     join selects (see DESIGN.md), so they fall back to per-step joins
     unless the prominent definition is provably unique per root path. *)
  let rec parents_then_one_ancestor = function
    | Ast.Parent :: rest -> parents_then_one_ancestor rest
    | [ Ast.Ancestor ] -> true
    | _ -> false
  in
  let all_parents = List.for_all (fun a -> a = Ast.Parent) axes in
  let prominent = resolve_steps env (Some prev.def) steps in
  let holistic =
    if env.t.options.force_per_step then `Per_step
    else
    match steps with
    | [ { Ast.axis = Ast.Parent; _ } ] when env.t.options.fk_child_joins -> `Fk
    | _ when all_parents -> `Dewey_exact
    | _ when parents_then_one_ancestor axes -> `Dewey
    | _ when List.for_all (fun d -> not (can_stack env.t.schema d)) prominent -> `Dewey
    | _ -> `Per_step
  in
  match holistic with
  | `Per_step -> translate_per_step env b steps
  | (`Fk | `Dewey | `Dewey_exact) as mode ->
    let backward_steps =
      List.map
        (fun (s : Ast.step) ->
          let name =
            match s.Ast.test with
            | Ast.Name n -> Some n
            | Ast.Wildcard | Ast.Any_node -> None
            | Ast.Text -> unsupported "text() on a backward axis"
          in
          s.Ast.axis, name)
        steps
    in
    let pattern = Rx.backward ~context:(Some prev.def.Graph.name) backward_steps in
    List.filter_map
      (fun (def : Graph.def) ->
        let alias = fresh env def.Graph.relation in
        let node = { alias; def; chain = None; paths_alias = None } in
        let b = add_from b (Mapping.relation env.t.mapping def) alias in
        let joined =
          match mode with
          | `Fk ->
            if
              List.exists
                (fun p -> p.Graph.id = def.Graph.id)
                (Graph.parents env.t.schema prev.def)
            then Some (fk_join env b ~child_ctx:prev ~parent_ctx:node)
            else None
          | `Dewey ->
            Some
              (add_conj
                 (add_conj b (descendant_join ~anc:node ~desc:prev))
                 (level_ge ~shallow:node.alias ~deep:prev.alias (List.length steps)))
          | `Dewey_exact ->
            Some
              (add_conj
                 (add_conj b (descendant_join ~anc:node ~desc:prev))
                 (level_eq ~shallow:node.alias ~deep:prev.alias (List.length steps)))
        in
        match joined with
        | None -> None
        | Some b ->
          (* The regex constrains the PREVIOUS fragment's path (Algorithm
             1 lines 4-5). *)
          (match apply_path_filter env b prev pattern with
           | None -> None
           | Some (b, _prev_with_paths) ->
             let b = { b with cur = Some node } in
             Some (translate_predicates env b (List.concat_map (fun s -> s.Ast.predicates) steps))))
      prominent
    |> List.concat

(* --- Order-axis fragments (Table 2 rows 3-6) ------------------------ *)

and order_join env (b : branch) ~prev ~node axis : branch list =
  match axis with
  | Ast.Following -> [ add_conj b (Sql.Cmp (Sql.Gt, dewey node.alias, dewey_upper prev.alias)) ]
  | Ast.Preceding -> [ add_conj b (Sql.Cmp (Sql.Gt, dewey prev.alias, dewey_upper node.alias)) ]
  | Ast.Following_sibling ->
    List.map
      (fun sib ->
        add_conj (add_conj b (Sql.Cmp (Sql.Gt, dewey node.alias, dewey prev.alias))) sib)
      (sibling_conditions env node prev)
  | Ast.Preceding_sibling ->
    List.map
      (fun sib ->
        add_conj (add_conj b (Sql.Cmp (Sql.Lt, dewey node.alias, dewey prev.alias))) sib)
      (sibling_conditions env node prev)
  | Ast.Child | Ast.Descendant | Ast.Descendant_or_self | Ast.Self | Ast.Parent
  | Ast.Ancestor | Ast.Ancestor_or_self | Ast.Attribute ->
    assert false

and translate_order env (b : branch) (step : Ast.step) : branch list =
  let prev =
    match b.cur with
    | Some prev -> prev
    | None -> unsupported "order axis at the start of a path"
  in
  let defs = resolve_axis env (Some prev.def) step.Ast.axis step.Ast.test in
  List.concat_map
    (fun (def : Graph.def) ->
      let alias = fresh env def.Graph.relation in
      let node = { alias; def; chain = None; paths_alias = None } in
      let b = add_from b (Mapping.relation env.t.mapping def) alias in
      (* Algorithm 1 lines 6-7: the path must end with the name test; the
         schema-aware relation already guarantees it, so the 4.5 check
         normally skips the join. *)
      let pattern = Rx.ends_with def.Graph.name in
      match apply_path_filter env b node pattern with
      | None -> []
      | Some (b, node) ->
        List.concat_map
          (fun b ->
            let b = { b with cur = Some node } in
            translate_predicates env b step.Ast.predicates)
          (order_join env b ~prev ~node step.Ast.axis))
    defs

(* --- Predicates (Section 4.3, Tables 5-6) --------------------------- *)

(* A positional predicate usable as the FIRST predicate of a child::name
   step: position() there is exactly the stored same-tag sibling ordinal
   ([ord] column). Later predicates filter the candidate list, after
   which positions no longer align with ordinals. *)
and positional_condition (node : node_ctx) (p : Ast.expr) : Sql.expr option =
  let ord = col node.alias "ord" in
  let last = col node.alias "sibs" in
  let num f =
    if Float.is_integer f then Some (Sql.Const (Value.Int (int_of_float f)))
    else None
  in
  let sql_op = function
    | Ast.Eq -> Some Sql.Eq
    | Ast.Ne -> Some Sql.Ne
    | Ast.Lt -> Some Sql.Lt
    | Ast.Le -> Some Sql.Le
    | Ast.Gt -> Some Sql.Gt
    | Ast.Ge -> Some Sql.Ge
    | _ -> None
  in
  match p with
  | Ast.Number f ->
    (match num f with
     | Some n -> Some (Sql.Cmp (Sql.Eq, ord, n))
     | None -> Some (Sql.Bool_const false) (* position() never equals 2.5 *))
  | Ast.Fn_position -> Some (Sql.Bool_const true) (* positions are >= 1 *)
  | Ast.Binop (op, Ast.Fn_position, Ast.Number f) ->
    (match sql_op op, num f with
     | Some op, Some n -> Some (Sql.Cmp (op, ord, n))
     | _ -> None)
  | Ast.Binop (op, Ast.Number f, Ast.Fn_position) ->
    let flip = function
      | Sql.Eq -> Sql.Eq
      | Sql.Ne -> Sql.Ne
      | Sql.Lt -> Sql.Gt
      | Sql.Le -> Sql.Ge
      | Sql.Gt -> Sql.Lt
      | Sql.Ge -> Sql.Le
    in
    (match sql_op op, num f with
     | Some op, Some n -> Some (Sql.Cmp (flip op, ord, n))
     | _ -> None)
  | Ast.Fn_last ->
    (* [last()] means position() = last(). *)
    Some (Sql.Cmp (Sql.Eq, ord, last))
  | Ast.Binop (op, Ast.Fn_position, Ast.Fn_last) ->
    (match sql_op op with
     | Some op -> Some (Sql.Cmp (op, ord, last))
     | None -> None)
  | Ast.Binop (op, Ast.Fn_last, Ast.Fn_position) ->
    (match sql_op op with
     | Some op ->
       let flip = function
         | Sql.Eq -> Sql.Eq
         | Sql.Ne -> Sql.Ne
         | Sql.Lt -> Sql.Gt
         | Sql.Le -> Sql.Ge
         | Sql.Gt -> Sql.Lt
         | Sql.Ge -> Sql.Le
       in
       Some (Sql.Cmp (flip op, ord, last))
     | None -> None)
  | Ast.Binop (op, Ast.Fn_last, Ast.Number f) ->
    (match sql_op op, num f with
     | Some op, Some n -> Some (Sql.Cmp (op, last, n))
     | _ -> None)
  | _ -> None

and translate_predicates env (b : branch) ?step (predicates : Ast.expr list) :
    branch list =
  match predicates with
  | [] -> [ b ]
  | p :: rest ->
    let node =
      match b.cur with Some n -> n | None -> unsupported "predicate without a context node"
    in
    let positional =
      match step with
      | Some { Ast.axis = Ast.Child; test = Ast.Name _; _ } -> positional_condition node p
      | _ -> None
    in
    let b, cond =
      match positional with
      | Some cond -> b, cond
      | None -> translate_predicate env b node p
    in
    let b =
      match Sql.simplify cond with
      | Sql.Bool_const true -> b
      | cond -> add_conj b cond
    in
    (* Only the first predicate may be positional. *)
    translate_predicates env b rest

(* Translate one predicate expression to a SQL condition. May extend the
   branch with a (lossless) Paths join for the predicated node. *)
and translate_predicate env (b : branch) (node : node_ctx) (p : Ast.expr) :
    branch * Sql.expr =
  (* A sub-predicate may extend the branch (e.g. add the node's Paths
     join); later siblings must see the updated node context. *)
  let refresh b node =
    match b.cur with
    | Some n when String.equal n.alias node.alias -> n
    | Some _ | None -> node
  in
  match p with
  | Ast.Binop (Ast.And, x, y) ->
    let b, cx = translate_predicate env b node x in
    let b, cy = translate_predicate env b (refresh b node) y in
    b, Sql.And (cx, cy)
  | Ast.Binop (Ast.Or, x, y) ->
    let b, cx = translate_predicate env b node x in
    let b, cy = translate_predicate env b (refresh b node) y in
    b, Sql.Or (cx, cy)
  | Ast.Fn_not x ->
    let b, cx = translate_predicate env b node x in
    b, Sql.Not cx
  | Ast.Binop ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op, x, y) ->
    translate_comparison env b node op x y
  | Ast.Path path -> translate_path_predicate env b node path
  | Ast.Literal s -> b, Sql.Bool_const (String.length s > 0)
  | Ast.Number _ | Ast.Fn_position | Ast.Fn_last ->
    unsupported "positional predicates are not translatable to SQL in this scheme"
  | Ast.Fn_count _ ->
    (* A bare numeric predicate is positional in XPath 1.0:
       [count(p)] means position() = count(p). *)
    unsupported "bare count() is a positional predicate; compare it instead"
  | Ast.Union (x, y) ->
    let b, cx = translate_predicate env b node x in
    let b, cy = translate_predicate env b node y in
    b, Sql.Or (cx, cy)
  | Ast.Fn_contains (x, y) | Ast.Fn_starts_with (x, y) ->
    (* contains()/starts-with() over a single-valued operand and a
       constant pattern become REGEXP_LIKE filters. *)
    let anchored = match p with Ast.Fn_starts_with _ -> true | _ -> false in
    let empty_literal = match y with Ast.Literal "" -> true | _ -> false in
    let pattern =
      match y with
      | Ast.Literal s ->
        (if anchored then "^" else "") ^ Ppfx_regex.Regex.quote s
      | _ -> unsupported "the second argument of contains()/starts-with() must be a literal"
    in
    (* XPath: contains(x, '') is always true (string conversion), even when
       x converts from an empty node-set; a NULL SQL column would wrongly
       reject it. *)
    if empty_literal then (b, Sql.Bool_const true)
    else
    (match as_value env node x with
     | Some v -> b, Sql.Regexp_like (v, pattern)
     | None ->
       unsupported
         "contains()/starts-with() needs a single-valued operand (., @attr or text()); \
          rewrite path operands as nested predicates, e.g. p[contains(., 's')]")
  | Ast.Fn_string_length _ ->
    unsupported "string-length() is only supported inside comparisons"
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod), _, _) | Ast.Neg _ ->
    unsupported "bare arithmetic used as a predicate"

(* Existence of a relative path. *)
and translate_path_predicate env (b : branch) (node : node_ctx) (path : Ast.path) :
    branch * Sql.expr =
  if path.Ast.absolute then translate_exists env b node path []
  else begin
    let variants = Ppf.normalize_steps path.Ast.steps in
    if variants = [] then b, Sql.Bool_const false
    else begin
      (* Each normalization variant contributes a disjunct. *)
      let refresh b node =
        match b.cur with
        | Some n when String.equal n.alias node.alias -> n
        | Some _ | None -> node
      in
      let b, conds =
        List.fold_left
          (fun (b, conds) steps ->
            let b, c = translate_path_variant env b (refresh b node) steps in
            b, c :: conds)
          (b, []) variants
      in
      match List.rev conds with
      | [] -> b, Sql.Bool_const false
      | c :: cs -> b, List.fold_left (fun acc x -> Sql.Or (acc, x)) c cs
    end
  end

and translate_path_variant env (b : branch) (node : node_ctx) (steps : Ast.step list) :
    branch * Sql.expr =
  match steps with
  | [] -> b, Sql.Bool_const true (* '.' — always exists *)
  | [ { Ast.axis = Ast.Attribute; test = Ast.Name a; predicates = [] } ] ->
    if List.mem a node.def.Graph.attrs then
      b, Sql.Is_not_null (col node.alias (Mapping.attr_column a))
    else b, Sql.Bool_const false
  | [ { Ast.axis = Ast.Attribute; test = Ast.Wildcard; predicates = [] } ] ->
    (match node.def.Graph.attrs with
     | [] -> b, Sql.Bool_const false
     | attrs ->
       let conds =
         List.map (fun a -> Sql.Is_not_null (col node.alias (Mapping.attr_column a))) attrs
       in
       b, List.fold_left (fun acc c -> Sql.Or (acc, c)) (List.hd conds) (List.tl conds))
  | [ { Ast.axis = Ast.Child; test = Ast.Text; predicates = [] } ] ->
    b, Sql.Cmp (Sql.Ne, col node.alias Mapping.dtext_column, Sql.Const (Value.Str ""))
  | _ when Ppf.backward_simple steps ->
    (* Table 5 (2): a backward-simple-path predicate is pure path-id
       filtering on the predicated step itself. *)
    let backward_steps =
      List.map
        (fun (s : Ast.step) ->
          let name =
            match s.Ast.test with
            | Ast.Name n -> Some n
            | Ast.Wildcard | Ast.Any_node -> None
            | Ast.Text -> assert false
          in
          s.Ast.axis, name)
        steps
    in
    let pattern = Rx.backward ~context:(Some node.def.Graph.name) backward_steps in
    (match decide_filter env node.def pattern with
     | Filter_skip -> b, Sql.Bool_const true
     | Filter_prune -> b, Sql.Bool_const false
     | Filter_join ->
       let b, node', pa = ensure_paths_join () b node in
       let b = if b.cur = Some node then { b with cur = Some node' } else b in
       b, Sql.Regexp_like (col pa "path", pattern))
  | _ -> translate_exists env b node { Ast.absolute = false; steps } []

(* Build EXISTS sub-select(s) for a predicate path, with optional extra
   value conditions applied to the path's final node. [extra] receives
   the final node's value expression. *)
and translate_exists env (b : branch) (node : node_ctx) (path : Ast.path)
    (extra : (node_ctx -> value_kind -> Sql.expr) list) : branch * Sql.expr =
  let start : branch =
    if path.Ast.absolute then { empty_branch with cur = None }
    else
      { empty_branch with cur = Some { node with paths_alias = None } }
  in
  (* Inside the sub-select the context alias's Paths join (if any) lives
     in the outer query; predicate paths re-join as needed. *)
  let variants = Ppf.normalize_steps path.Ast.steps in
  let sub_branches =
    List.concat_map
      (fun steps ->
        let steps, final_kind = strip_final_value_step env steps in
        if steps = [] then
          (* e.g. 'text()' alone or '.': condition on the node itself *)
          [ (start, final_kind) ]
        else
          List.map (fun br -> br, final_kind) (translate_steps env start steps))
      variants
  in
  let conds =
    List.filter_map
      (fun ((sub : branch), final_kind) ->
        match sub.cur with
        | None -> None
        | Some final ->
          if sub.from_ = [] then begin
            (* The path collapsed onto the predicated node itself. *)
            let conds = List.map (fun f -> f final final_kind) extra in
            let base =
              match final_kind with
              | V_text ->
                [ Sql.Cmp (Sql.Ne, value_expr final V_text, Sql.Const (Value.Str "")) ]
              | V_attr a when not (List.mem a final.def.Graph.attrs) ->
                [ Sql.Bool_const false ]
              | V_attr a -> [ Sql.Is_not_null (col final.alias (Mapping.attr_column a)) ]
              | V_element -> []
            in
            match base @ conds with
            | [] -> Some (Sql.Bool_const true)
            | c :: cs -> Some (List.fold_left (fun a x -> Sql.And (a, x)) c cs)
          end
          else begin
            let where = List.rev sub.conj in
            let extra_conds = List.map (fun f -> f final final_kind) extra in
            let value_guard =
              match final_kind with
              | V_text ->
                [ Sql.Cmp (Sql.Ne, value_expr final V_text, Sql.Const (Value.Str "")) ]
              | V_attr a when not (List.mem a final.def.Graph.attrs) ->
                [ Sql.Bool_const false ]
              | V_attr a -> [ Sql.Is_not_null (col final.alias (Mapping.attr_column a)) ]
              | V_element -> []
            in
            let all = where @ value_guard @ extra_conds in
            let where_expr =
              match all with
              | [] -> None
              | c :: cs -> Some (List.fold_left (fun a x -> Sql.And (a, x)) c cs)
            in
            Some
              (Sql.Exists
                 {
                   Sql.distinct = false;
                   projections = [ Sql.Const Value.Null, "x" ];
                   from = List.rev sub.from_;
                   where = where_expr;
                   order_by = [];
                 })
          end)
      sub_branches
  in
  match conds with
  | [] -> b, Sql.Bool_const false
  | c :: cs -> b, List.fold_left (fun acc x -> Sql.Or (acc, x)) c cs

(* Remove a trailing text()/attribute step, remembering the value kind. *)
and strip_final_value_step env (steps : Ast.step list) : Ast.step list * value_kind =
  ignore env;
  match List.rev steps with
  | { Ast.axis = Ast.Attribute; test = Ast.Name a; predicates = [] } :: rev_rest ->
    List.rev rev_rest, V_attr a
  | { Ast.axis = Ast.Child; test = Ast.Text; predicates = [] } :: rev_rest ->
    List.rev rev_rest, V_text
  | _ -> steps, V_element

(* A predicate operand that denotes a single SQL value relative to the
   predicated node: literals, numbers, @attr, '.', text(), arithmetic. *)
and as_value env (node : node_ctx) (e : Ast.expr) : Sql.expr option =
  match e with
  | Ast.Literal s -> Some (Sql.Const (Value.Str s))
  | Ast.Number f -> Some (Sql.Const (Value.Float f))
  | Ast.Neg a ->
    Option.map (fun v -> Sql.Arith (Sql.Sub, Sql.Const (Value.Int 0), v)) (as_value env node a)
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod) as op, a, b) ->
    (match as_value env node a, as_value env node b with
     | Some va, Some vb ->
       let sop =
         match op with
         | Ast.Add -> Sql.Add
         | Ast.Sub -> Sql.Sub
         | Ast.Mul -> Sql.Mul
         | Ast.Div -> Sql.Div
         | Ast.Mod -> Sql.Mod
         | _ -> assert false
       in
       Some (Sql.Arith (sop, va, vb))
     | _ -> None)
  | Ast.Path { Ast.absolute = false; steps } ->
    (match Ppf.normalize_steps steps with
     | [ [] ] ->
       (* '.' — the node's string value. *)
       Some (col node.alias Mapping.text_column)
     | [ [ { Ast.axis = Ast.Attribute; test = Ast.Name a; predicates = [] } ] ] ->
       if List.mem a node.def.Graph.attrs then
         Some (col node.alias (Mapping.attr_column a))
       else Some (Sql.Const Value.Null)
     | [ [ { Ast.axis = Ast.Child; test = Ast.Text; predicates = [] } ] ] ->
       Some (col node.alias Mapping.dtext_column)
     | _ -> None)
  | Ast.Fn_string_length a ->
    Option.map (fun v -> Sql.Length v) (as_value env node a)
  | Ast.Fn_count (Ast.Path path) -> count_value env node path
  | Ast.Path _ | Ast.Union _ | Ast.Binop _ | Ast.Fn_not _ | Ast.Fn_count _
  | Ast.Fn_position | Ast.Fn_last | Ast.Fn_contains _ | Ast.Fn_starts_with _ ->
    None

(* count(p): one scalar COUNT sub-query per disjoint translation branch,
   summed. Branches are disjoint — SQL splitting partitions by relation
   and the or-self normalization variants partition by self/descendant. *)
and count_value env (node : node_ctx) (path : Ast.path) : Sql.expr option =
  let start : branch =
    if path.Ast.absolute then { empty_branch with cur = None }
    else { empty_branch with cur = Some { node with paths_alias = None } }
  in
  let variants = Ppf.normalize_steps path.Ast.steps in
  let counts =
    List.concat_map
      (fun steps ->
        let steps, final_kind = strip_final_value_step env steps in
        if steps = [] then
          (* count(.) = 1; count(text()) / count(@a) on the node itself *)
          [ `Const final_kind ]
        else
          List.map (fun br -> `Branch (br, final_kind)) (translate_steps env start steps))
      variants
  in
  let exprs =
    List.map
      (fun c ->
        match c with
        | `Const V_element -> Some (Sql.Const (Value.Int 1))
        | `Const V_text ->
          (* 1 when the node has a text child, else 0: not expressible as
             a constant; out of scope. *)
          None
        | `Const (V_attr _) -> None
        | `Branch ((sub : branch), final_kind) ->
          (match sub.cur with
           | None -> None
           | Some final ->
             if sub.from_ = [] then None
             else begin
               let guards =
                 match final_kind with
                 | V_element -> []
                 | V_text ->
                   [ Sql.Cmp (Sql.Ne, value_expr final V_text, Sql.Const (Value.Str "")) ]
                 | V_attr a when not (List.mem a final.def.Graph.attrs) ->
                   [ Sql.Bool_const false ]
                 | V_attr a -> [ Sql.Is_not_null (col final.alias (Mapping.attr_column a)) ]
               in
               let conjs = List.rev sub.conj @ guards in
               Some
                 (Sql.Count_subquery
                    {
                      Sql.distinct = false;
                      projections = [ Sql.Const Value.Null, "count" ];
                      from = List.rev sub.from_;
                      where =
                        (match conjs with
                         | [] -> None
                         | c :: cs ->
                           Some (List.fold_left (fun a x -> Sql.And (a, x)) c cs));
                      order_by = [];
                    })
             end))
      counts
  in
  (* Every component must be expressible or the sum would undercount. *)
  if List.exists Option.is_none exprs then None
  else
    match List.map Option.get exprs with
    | [] -> Some (Sql.Const (Value.Int 0))
    | e :: es -> Some (List.fold_left (fun acc x -> Sql.Arith (Sql.Add, acc, x)) e es)


(* Comparisons: XPath 1.0 existential semantics. *)
and translate_comparison env (b : branch) (node : node_ctx) (op : Ast.binop) (x : Ast.expr)
    (y : Ast.expr) : branch * Sql.expr =
  let sql_op =
    match op with
    | Ast.Eq -> Sql.Eq
    | Ast.Ne -> Sql.Ne
    | Ast.Lt -> Sql.Lt
    | Ast.Le -> Sql.Le
    | Ast.Gt -> Sql.Gt
    | Ast.Ge -> Sql.Ge
    | _ -> assert false
  in
  let vx = as_value env node x and vy = as_value env node y in
  match vx, vy with
  | Some ex, Some ey -> b, Sql.Cmp (sql_op, ex, ey)
  | Some ex, None ->
    (match y with
     | Ast.Path p ->
       let flipped =
         match sql_op with
         | Sql.Eq -> Sql.Eq
         | Sql.Ne -> Sql.Ne
         | Sql.Lt -> Sql.Gt
         | Sql.Le -> Sql.Ge
         | Sql.Gt -> Sql.Lt
         | Sql.Ge -> Sql.Le
       in
       translate_exists env b node p
         [ (fun final kind -> Sql.Cmp (flipped, value_expr final kind, ex)) ]
     | _ -> unsupported "unsupported comparison operand: %s" (Ast.to_string y))
  | None, Some ey ->
    (match x with
     | Ast.Path p ->
       translate_exists env b node p
         [ (fun final kind -> Sql.Cmp (sql_op, value_expr final kind, ey)) ]
     | _ -> unsupported "unsupported comparison operand: %s" (Ast.to_string x))
  | None, None ->
    (match x, y with
     | Ast.Path px, Ast.Path py ->
       (* Join predicate clause (paper footnote 1): nest the second
          EXISTS inside the first, comparing the two value columns. *)
       translate_exists env b node px
         [
           (fun final_x kind_x ->
             let _, cond =
               translate_exists env b node py
                 [
                   (fun final_y kind_y ->
                     match sql_op with
                     | Sql.Eq | Sql.Ne ->
                       Sql.Cmp (sql_op, value_expr final_x kind_x, value_expr final_y kind_y)
                     | Sql.Lt | Sql.Le | Sql.Gt | Sql.Ge ->
                       Sql.Cmp
                         ( sql_op,
                           Sql.To_number (value_expr final_x kind_x),
                           Sql.To_number (value_expr final_y kind_y) ));
                 ]
             in
             cond);
         ]
     | _ ->
       unsupported "unsupported comparison: %s vs %s" (Ast.to_string x) (Ast.to_string y))

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let finalize env (branches : branch list) (final_kind : value_kind) : Sql.statement option =
  let selects =
    List.filter_map
      (fun (b : branch) ->
        match b.cur with
        | None -> None
        | Some node ->
          let value_guard =
            match final_kind with
            | V_element -> []
            | V_text ->
              [ Sql.Cmp (Sql.Ne, value_expr node V_text, Sql.Const (Value.Str "")) ]
            | V_attr a when not (List.mem a node.def.Graph.attrs) -> [ Sql.Bool_const false ]
            | V_attr a -> [ Sql.Is_not_null (col node.alias (Mapping.attr_column a)) ]
          in
          let conjs = List.rev b.conj @ value_guard in
          if List.mem (Sql.Bool_const false) conjs then None else
          let where =
            match conjs with
            | [] -> None
            | c :: cs -> Some (List.fold_left (fun a x -> Sql.And (a, x)) c cs)
          in
          let value =
            match final_kind with
            | V_attr a when not (List.mem a node.def.Graph.attrs) ->
              Sql.Const Value.Null
            | k -> value_expr node k
          in
          Some
            {
              Sql.distinct = true;
              projections =
                [
                  col node.alias "id", "id";
                  dewey node.alias, "dewey_pos";
                  value, "value";
                ];
              from = List.rev b.from_;
              where;
              order_by = [ dewey node.alias ];
            })
      branches
  in
  ignore env;
  match selects with
  | [] -> None
  | [ s ] -> Some (Sql.Select s)
  | branches -> Some (Sql.Union (List.map (fun s -> { s with Sql.order_by = [] }) branches, [ 1 ]))

let translate_path env (path : Ast.path) : Sql.statement option =
  let variants = Ppf.normalize_steps path.Ast.steps in
  let all =
    List.concat_map
      (fun steps ->
        let steps, final_kind = strip_final_value_step env steps in
        if steps = [] then []
        else
          List.map (fun b -> b, final_kind) (translate_steps env empty_branch steps))
      variants
  in
  (* All variants share the projection arity; group by value kind is not
     needed because the projected value column adapts per branch. *)
  match all with
  | [] -> None
  | _ ->
    let kinds = List.sort_uniq compare (List.map snd all) in
    (match kinds with
     | [ kind ] -> finalize env (List.map fst all) kind
     | _ ->
       (* Mixed value kinds across or-self variants: finalize each group
          and union them. *)
       let stmts =
         List.filter_map
           (fun kind ->
             finalize env
               (List.filter_map (fun (b, k) -> if k = kind then Some b else None) all)
               kind)
           kinds
       in
       let selects =
         List.concat_map
           (function
             | Sql.Select s -> [ { s with Sql.order_by = [] } ]
             | Sql.Union (ss, _) -> ss
             | Sql.Select_count _ -> assert false (* never produced here *))
           stmts
       in
       (match selects with
        | [] -> None
        | [ s ] ->
          Some (Sql.Select { s with Sql.order_by = [ fst (List.nth s.Sql.projections 1) ] })
        | ss -> Some (Sql.Union (ss, [ 1 ]))))

let rec collect_paths (e : Ast.expr) : Ast.path list =
  match e with
  | Ast.Path p -> [ p ]
  | Ast.Union (a, b) -> collect_paths a @ collect_paths b
  | Ast.Binop _ | Ast.Neg _ | Ast.Literal _ | Ast.Number _ | Ast.Fn_not _ | Ast.Fn_count _
  | Ast.Fn_position | Ast.Fn_last | Ast.Fn_contains _ | Ast.Fn_starts_with _
  | Ast.Fn_string_length _ ->
    unsupported "top-level expression must be a path or a union of paths"

let translate t (e : Ast.expr) : Sql.statement option =
  let env = { t; counter = Hashtbl.create 16 } in
  let paths = collect_paths e in
  let stmts = List.filter_map (translate_path env) paths in
  match stmts with
  | [] -> None
  | [ s ] -> Some s
  | ss ->
    let selects =
      List.concat_map
        (function
          | Sql.Select s -> [ { s with Sql.order_by = [] } ]
          | Sql.Union (branches, _) -> branches
          | Sql.Select_count _ -> assert false (* never produced here *))
        ss
    in
    Some (Sql.Union (selects, [ 1 ]))

let result_ids (r : Engine.result) =
  List.sort_uniq Int.compare
    (List.filter_map
       (fun row ->
         match row.(0) with
         | Value.Int id -> Some id
         | _ -> None)
       r.Engine.rows)

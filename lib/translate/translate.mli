(** PPF-based XPath-to-SQL translation over the schema-aware mapping — the
    paper's primary contribution (Section 4).

    The expression's backbone and predicate paths are split into Primitive
    Path Fragments. Forward PPFs are evaluated holistically: the prominent
    relation joins the [Paths] relation under a regular-expression filter
    covering the maximal forward path (Section 4.1); consecutive PPFs
    combine through a single Dewey structural join (Section 4.2), with
    [child]/[parent] single steps using foreign-key equijoins instead.
    Predicates become [EXISTS] sub-selects, except backward-simple-path
    predicates which fold into extra regex filters on the predicated
    step's path (Table 5 (2)). Wildcard prominent steps split the
    statement into a [UNION] (Section 4.4) — predicates split into [OR]'d
    sub-selects instead (Table 6) — and the U-P/F-P/I-P schema marking
    omits provably redundant path filters (Section 4.5).

    {b Soundness refinement} (documented in DESIGN.md): the paper's
    holistic regex+join treatment can overmatch when the regular
    expression cannot pin the context node's depth (recursive names,
    descendant steps both before and inside a fragment). This
    implementation detects those cases statically and falls back to exact
    per-step joins for the affected fragment only; every benchmark query
    keeps its holistic plan. *)

module Graph = Ppfx_schema.Graph
module Sql = Ppfx_minidb.Sql

exception Unsupported of string
(** Raised for XPath constructs outside the supported subset
    (positional predicates, [count()] in predicates, attribute steps in
    mid-path). *)

type options = {
  omit_path_filters : bool;
      (** Section 4.5: skip Paths joins proven redundant by U-P/F-P
          marking (default true). *)
  merge_forward : bool;
      (** Section 4.1: merge consecutive forward PPFs into one regex
          (default true). When off, every fragment after the first is
          translated per-step. *)
  fk_child_joins : bool;
      (** Section 4.2: use foreign-key equijoins for single child/parent
          steps instead of Dewey comparisons (default true). *)
  force_per_step : bool;
      (** Translate every fragment with exact per-step joins (the
          conventional schema-aware translation, used by the commercial
          baseline; default false). *)
}

val default_options : options

type t

val create : ?options:options -> Ppfx_shred.Mapping.t -> t

val options_fingerprint : options -> string
(** Deterministic canonical rendering of the option set. *)

val fingerprint : t -> string
(** Deterministic digest of the translator's schema graph and options.
    Translation is a pure function of (fingerprint, query): two
    translators with equal fingerprints emit identical SQL for every
    query, so the fingerprint is a sound key for caching compiled
    translations across sessions (the paper's Section 4 static-translation
    argument). *)

val translate : t -> Ppfx_xpath.Ast.expr -> Sql.statement option
(** [None] when the schema proves the result empty. The statement
    projects [(id, dewey_pos, value)] of the result nodes, in document
    order. Raises {!Unsupported} on out-of-subset constructs. *)

val result_ids : Ppfx_minidb.Engine.result -> int list
(** Element ids of a translated statement's result, sorted. *)

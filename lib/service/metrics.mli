(** Serving metrics for the prepared-query service layer.

    Counters (queries served, prepares, cache hits/misses, plan
    invalidations, cache evictions) plus one latency accumulator per
    pipeline stage — parse, translate, plan, execute — each tracking
    count, total, min and max wall-clock seconds. A warm cache hit
    records only [Execute] time; the gap between a query's stage counts
    and its execute count is exactly the work the cache skipped. *)

type stage = Parse | Translate | Plan | Execute

val stage_name : stage -> string

type t

val create : unit -> t
val reset : t -> unit

(** {2 Recording} *)

val record : t -> stage -> float -> unit
(** Add one observation (seconds) to a stage accumulator. *)

val time : t -> stage -> (unit -> 'a) -> 'a
(** Run the thunk, record its wall-clock duration under the stage.
    Records even when the thunk raises. *)

val incr_queries : t -> unit
val incr_prepares : t -> unit
val incr_hits : t -> unit
val incr_misses : t -> unit
val incr_invalidations : t -> unit
val incr_evictions : t -> unit

(** {2 Reading} *)

val queries : t -> int
val prepares : t -> int
val hits : t -> int
val misses : t -> int
val invalidations : t -> int
val evictions : t -> int

val stage_count : t -> stage -> int
val stage_total : t -> stage -> float
(** Seconds accumulated in the stage; 0 when never recorded. *)

val hit_rate : t -> float
(** Hits over (hits + misses); [nan] before any lookup. *)

val dump : t -> string
(** Multi-line human-readable report. *)

val to_json : t -> string
(** One JSON object with every counter and per-stage accumulator. *)

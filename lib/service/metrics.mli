(** Serving metrics for the prepared-query service layer.

    Counters (queries served, prepares, cache hits/misses, plan
    invalidations, cache evictions, single-store fallbacks, result rows)
    plus one latency accumulator per pipeline stage — parse, translate,
    plan, queue, execute, merge — each tracking count, total, min and max
    wall-clock seconds {e and} a fixed-bucket log2 histogram from which
    p50/p95/p99 latencies are read. A warm cache hit records only
    [Execute] time; the gap between a query's stage counts and its execute
    count is exactly the work the cache skipped. The [Queue] and [Merge]
    stages are populated by the cluster scatter-gather layer: queue is the
    wait between task submission and a worker picking it up, merge is the
    Dewey k-way merge of the per-shard results. *)

type stage = Parse | Translate | Plan | Queue | Execute | Merge

val stage_name : stage -> string

type t

val create : unit -> t
val reset : t -> unit

(** {2 Recording} *)

val record : t -> stage -> float -> unit
(** Add one observation (seconds) to a stage accumulator. *)

val time : t -> stage -> (unit -> 'a) -> 'a
(** Run the thunk, record its wall-clock duration under the stage.
    Records even when the thunk raises. *)

val incr_queries : t -> unit
val incr_prepares : t -> unit
val incr_hits : t -> unit
val incr_misses : t -> unit
val incr_invalidations : t -> unit
(** A cached plan had to be rebuilt: the store changed in a way that
    overlaps the plan's footprint (or fine-grained checking is off). *)

val incr_retained : t -> unit
(** A cached plan survived a store change: the fine-grained footprint
    check ({!Ppfx_minidb.Engine.plan_compatible}) proved the commits
    since prepare disjoint from the plan's tables and pathids, so the
    plan ran without re-planning. *)

val incr_evictions : t -> unit

val incr_fallbacks : t -> unit
(** A query the cluster routed to single-store execution because its SQL
    was not shard-partitionable. *)

val add_rows : t -> int -> unit
(** Accumulate result rows produced (per shard, or overall). *)

val set_shard_rows : t -> int list -> unit
(** Record the current per-shard live row counts (a gauge, not a
    counter): the cluster layer refreshes this after loads and routed
    mutations so balance drift is visible in {!dump} and {!to_json}. *)

val add_engine : t -> Ppfx_minidb.Engine.exec_stats -> unit
(** Accumulate a batch of engine operator counters (typically the
    {!Ppfx_minidb.Engine.stats_diff} around one plan execution, or a
    freshly prepared plan's plan-time stats). *)

(** {2 Network server counters}

    Populated by the wire-protocol server ({!Ppfx_net.Server}); all
    mutators are safe to call from multiple domains concurrently. *)

val incr_accepted : t -> unit
(** A connection passed admission control and was accepted. *)

val incr_rejected : t -> unit
(** A connection or request was refused by admission control. *)

val connection_opened : t -> unit
(** Track a live connection; also updates the peak-active high-water
    mark. *)

val connection_closed : t -> unit

val add_bytes_in : t -> int -> unit
val add_bytes_out : t -> int -> unit

val note_queue_depth : t -> int -> unit
(** Observe the dispatch-queue depth; keeps the high-water mark. *)

(** {2 Durability counters}

    Populated by the write-ahead-log layer ({!Ppfx_wal.Store}). *)

val add_wal_appends : t -> count:int -> bytes:int -> unit
(** Framed records appended to the log ([bytes] on the wire, headers
    included). The WAL store batches counters until a sink is attached,
    so mutators take counts rather than incrementing by one. *)

val add_wal_fsyncs : t -> int -> unit
val add_checkpoints : t -> int -> unit

val add_recovery : t -> replayed:int -> truncated_bytes:int -> clean:bool -> unit
(** Record one store start from disk. [clean] means the manifest carried
    the clean-shutdown marker, so the WAL scan was skipped entirely
    (counted under [clean_starts]); otherwise the start counts as a
    recovery with [replayed] records applied and [truncated_bytes] of
    torn/corrupt tail cut off (0 when the log ended cleanly). *)

val incr_clean_shutdowns : t -> unit
(** A clean close wrote the shutdown marker (checkpoint + clean
    manifest). *)

(** {2 Reading} *)

val queries : t -> int
val prepares : t -> int
val hits : t -> int
val misses : t -> int
val invalidations : t -> int
val retained : t -> int
val evictions : t -> int
val fallbacks : t -> int
val rows : t -> int

val shard_rows : t -> int list
(** Last recorded per-shard row counts; empty when not clustered. *)

val shard_skew : t -> float
(** Largest shard's row count over the mean (1.0 = perfectly balanced);
    [nan] when no shard counts were recorded or all shards are empty. *)

val wal_appends : t -> int
val wal_bytes : t -> int
val wal_fsyncs : t -> int
val checkpoints : t -> int
val recoveries : t -> int
val clean_starts : t -> int
val replayed_records : t -> int
val truncated_tails : t -> int
val truncated_bytes : t -> int
val clean_shutdowns : t -> int

val accepted : t -> int
val rejected : t -> int
val active_connections : t -> int
val peak_connections : t -> int
val bytes_in : t -> int
val bytes_out : t -> int
val queue_depth_hwm : t -> int

val engine_stats : t -> Ppfx_minidb.Engine.exec_stats
(** Cumulative engine operator counters recorded via {!add_engine}:
    rows scanned/probed/emitted, regex evaluations, hash-join builds and
    semi-join reductions attributable to this metrics sink. *)

val stage_count : t -> stage -> int
val stage_total : t -> stage -> float
(** Seconds accumulated in the stage; 0 when never recorded. *)

val stage_percentile : t -> stage -> float -> float
(** [stage_percentile t stage q] is the [q]-quantile ([0..1], e.g. 0.95)
    of the stage's recorded latencies in seconds, read from a 64-bucket
    log2 histogram (bucket [i] holds durations in [2^i, 2^(i+1))
    nanoseconds); the returned value is the winning bucket's geometric
    midpoint, i.e. exact to within a factor of sqrt(2). [nan] before any
    observation. *)

val hit_rate : t -> float
(** Hits over (hits + misses); [nan] before any lookup. *)

val dump : t -> string
(** Multi-line human-readable report, including p50/p95/p99 columns. *)

val to_json : t -> string
(** One JSON object with every counter and per-stage accumulator
    (including percentiles). *)

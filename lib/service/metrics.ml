type stage = Parse | Translate | Plan | Queue | Execute | Merge

let stage_name = function
  | Parse -> "parse"
  | Translate -> "translate"
  | Plan -> "plan"
  | Queue -> "queue"
  | Execute -> "execute"
  | Merge -> "merge"

let all_stages = [ Parse; Translate; Plan; Queue; Execute; Merge ]

(* Latency histogram: bucket [i] counts observations whose duration in
   nanoseconds lies in [2^i, 2^(i+1)). 64 buckets cover every float
   duration we can meet; percentile read-out uses the geometric midpoint
   of the winning bucket, so the reported quantile is exact to within a
   factor of sqrt(2). *)
let hist_buckets = 64

let bucket_of_seconds seconds =
  let ns = seconds *. 1e9 in
  if ns < 1.0 then 0
  else
    let b = int_of_float (Float.log2 ns) in
    if b < 0 then 0 else if b > hist_buckets - 1 then hist_buckets - 1 else b

let bucket_midpoint_seconds b =
  (* geometric midpoint of [2^b, 2^(b+1)) ns *)
  (2.0 ** (float_of_int b +. 0.5)) *. 1e-9

type acc = {
  mutable count : int;
  mutable total : float;
  mutable min : float;
  mutable max : float;
  hist : int array;
}

let acc_create () =
  {
    count = 0;
    total = 0.0;
    min = infinity;
    max = neg_infinity;
    hist = Array.make hist_buckets 0;
  }

let acc_reset a =
  a.count <- 0;
  a.total <- 0.0;
  a.min <- infinity;
  a.max <- neg_infinity;
  Array.fill a.hist 0 hist_buckets 0

(* Quantile q (in [0,1]) from the log2 histogram: the midpoint of the
   bucket containing the ceil(q * count)-th observation. *)
let acc_percentile a q =
  if a.count = 0 then nan
  else begin
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int a.count)) in
      if r < 1 then 1 else if r > a.count then a.count else r
    in
    let rec go b seen =
      if b >= hist_buckets then a.max
      else
        let seen = seen + a.hist.(b) in
        if seen >= rank then bucket_midpoint_seconds b else go (b + 1) seen
    in
    go 0 0
  end

type t = {
  parse : acc;
  translate : acc;
  plan : acc;
  queue : acc;
  execute : acc;
  merge : acc;
  mutable queries : int;
  mutable prepares : int;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable retained : int;
  mutable evictions : int;
  mutable fallbacks : int;
  mutable rows : int;
  mutable shard_rows : int array;
  mutable engine : Ppfx_minidb.Engine.exec_stats;
  (* network serving counters (the socket server's sink) *)
  mutable accepted : int;
  mutable rejected : int;
  mutable active : int;
  mutable peak_active : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable queue_hwm : int;
  (* durability counters (the WAL layer's sink) *)
  mutable wal_appends : int;
  mutable wal_bytes : int;
  mutable wal_fsyncs : int;
  mutable checkpoints : int;
  mutable recoveries : int;  (** starts that scanned + replayed the log *)
  mutable clean_starts : int;  (** starts that skipped the scan (clean marker) *)
  mutable replayed_records : int;
  mutable truncated_tails : int;  (** recoveries that cut a torn/corrupt tail *)
  mutable truncated_bytes : int;
  mutable clean_shutdowns : int;
  (* The server records from several domains at once; every mutation is
     serialized here. Single-threaded users pay one uncontended lock. *)
  lock : Mutex.t;
}

let create () =
  {
    parse = acc_create ();
    translate = acc_create ();
    plan = acc_create ();
    queue = acc_create ();
    execute = acc_create ();
    merge = acc_create ();
    queries = 0;
    prepares = 0;
    hits = 0;
    misses = 0;
    invalidations = 0;
    retained = 0;
    evictions = 0;
    fallbacks = 0;
    rows = 0;
    shard_rows = [||];
    engine = Ppfx_minidb.Engine.stats_zero;
    accepted = 0;
    rejected = 0;
    active = 0;
    peak_active = 0;
    bytes_in = 0;
    bytes_out = 0;
    queue_hwm = 0;
    wal_appends = 0;
    wal_bytes = 0;
    wal_fsyncs = 0;
    checkpoints = 0;
    recoveries = 0;
    clean_starts = 0;
    replayed_records = 0;
    truncated_tails = 0;
    truncated_bytes = 0;
    clean_shutdowns = 0;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let reset t =
  locked t @@ fun () ->
  List.iter acc_reset [ t.parse; t.translate; t.plan; t.queue; t.execute; t.merge ];
  t.queries <- 0;
  t.prepares <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.invalidations <- 0;
  t.retained <- 0;
  t.evictions <- 0;
  t.fallbacks <- 0;
  t.rows <- 0;
  t.shard_rows <- [||];
  t.engine <- Ppfx_minidb.Engine.stats_zero;
  t.accepted <- 0;
  t.rejected <- 0;
  t.active <- 0;
  t.peak_active <- 0;
  t.bytes_in <- 0;
  t.bytes_out <- 0;
  t.queue_hwm <- 0;
  t.wal_appends <- 0;
  t.wal_bytes <- 0;
  t.wal_fsyncs <- 0;
  t.checkpoints <- 0;
  t.recoveries <- 0;
  t.clean_starts <- 0;
  t.replayed_records <- 0;
  t.truncated_tails <- 0;
  t.truncated_bytes <- 0;
  t.clean_shutdowns <- 0

let acc t = function
  | Parse -> t.parse
  | Translate -> t.translate
  | Plan -> t.plan
  | Queue -> t.queue
  | Execute -> t.execute
  | Merge -> t.merge

let record t stage seconds =
  locked t @@ fun () ->
  let a = acc t stage in
  a.count <- a.count + 1;
  a.total <- a.total +. seconds;
  if seconds < a.min then a.min <- seconds;
  if seconds > a.max then a.max <- seconds;
  let b = bucket_of_seconds seconds in
  a.hist.(b) <- a.hist.(b) + 1

let time t stage f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> record t stage (Unix.gettimeofday () -. t0)) f

let incr_queries t = locked t @@ fun () -> t.queries <- t.queries + 1
let incr_prepares t = locked t @@ fun () -> t.prepares <- t.prepares + 1
let incr_hits t = locked t @@ fun () -> t.hits <- t.hits + 1
let incr_misses t = locked t @@ fun () -> t.misses <- t.misses + 1
let incr_invalidations t = locked t @@ fun () -> t.invalidations <- t.invalidations + 1
let incr_retained t = locked t @@ fun () -> t.retained <- t.retained + 1
let incr_evictions t = locked t @@ fun () -> t.evictions <- t.evictions + 1
let incr_fallbacks t = locked t @@ fun () -> t.fallbacks <- t.fallbacks + 1
let add_rows t n = locked t @@ fun () -> t.rows <- t.rows + n

let set_shard_rows t counts =
  locked t @@ fun () -> t.shard_rows <- Array.of_list counts

(* Largest shard over the mean: 1.0 is perfect balance. *)
let shard_skew_of rows =
  let n = Array.length rows in
  if n = 0 then nan
  else
    let total = Array.fold_left ( + ) 0 rows in
    if total = 0 then nan
    else
      let mean = float_of_int total /. float_of_int n in
      float_of_int (Array.fold_left max 0 rows) /. mean

let add_engine t stats =
  locked t @@ fun () -> t.engine <- Ppfx_minidb.Engine.stats_add t.engine stats

let incr_accepted t = locked t @@ fun () -> t.accepted <- t.accepted + 1
let incr_rejected t = locked t @@ fun () -> t.rejected <- t.rejected + 1

let connection_opened t =
  locked t @@ fun () ->
  t.active <- t.active + 1;
  if t.active > t.peak_active then t.peak_active <- t.active

let connection_closed t = locked t @@ fun () -> t.active <- max 0 (t.active - 1)

let add_bytes_in t n = locked t @@ fun () -> t.bytes_in <- t.bytes_in + n
let add_bytes_out t n = locked t @@ fun () -> t.bytes_out <- t.bytes_out + n

let note_queue_depth t d =
  locked t @@ fun () -> if d > t.queue_hwm then t.queue_hwm <- d

let add_wal_appends t ~count ~bytes =
  locked t @@ fun () ->
  t.wal_appends <- t.wal_appends + count;
  t.wal_bytes <- t.wal_bytes + bytes

let add_wal_fsyncs t n = locked t @@ fun () -> t.wal_fsyncs <- t.wal_fsyncs + n
let add_checkpoints t n = locked t @@ fun () -> t.checkpoints <- t.checkpoints + n

let add_recovery t ~replayed ~truncated_bytes ~clean =
  locked t @@ fun () ->
  if clean then t.clean_starts <- t.clean_starts + 1
  else begin
    t.recoveries <- t.recoveries + 1;
    t.replayed_records <- t.replayed_records + replayed;
    if truncated_bytes > 0 then begin
      t.truncated_tails <- t.truncated_tails + 1;
      t.truncated_bytes <- t.truncated_bytes + truncated_bytes
    end
  end

let incr_clean_shutdowns t =
  locked t @@ fun () -> t.clean_shutdowns <- t.clean_shutdowns + 1

let queries t = t.queries
let prepares t = t.prepares
let hits t = t.hits
let misses t = t.misses
let invalidations t = t.invalidations
let retained t = t.retained
let evictions t = t.evictions
let fallbacks t = t.fallbacks
let rows t = t.rows
let shard_rows t = Array.to_list t.shard_rows
let shard_skew t = shard_skew_of t.shard_rows
let engine_stats t = t.engine

let wal_appends t = t.wal_appends
let wal_bytes t = t.wal_bytes
let wal_fsyncs t = t.wal_fsyncs
let checkpoints t = t.checkpoints
let recoveries t = t.recoveries
let clean_starts t = t.clean_starts
let replayed_records t = t.replayed_records
let truncated_tails t = t.truncated_tails
let truncated_bytes t = t.truncated_bytes
let clean_shutdowns t = t.clean_shutdowns

let accepted t = t.accepted
let rejected t = t.rejected
let active_connections t = t.active
let peak_connections t = t.peak_active
let bytes_in t = t.bytes_in
let bytes_out t = t.bytes_out
let queue_depth_hwm t = t.queue_hwm

let stage_count t stage = (acc t stage).count
let stage_total t stage = (acc t stage).total
let stage_percentile t stage q = acc_percentile (acc t stage) q

let hit_rate t =
  let lookups = t.hits + t.misses in
  if lookups = 0 then nan else float_of_int t.hits /. float_of_int lookups

let dump t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "service metrics\n";
  Buffer.add_string buf
    (Printf.sprintf "  queries %d, prepares %d, fallbacks %d, result rows %d\n"
       t.queries t.prepares t.fallbacks t.rows);
  Buffer.add_string buf
    (Printf.sprintf
       "  cache: %d hits, %d misses (hit rate %s), %d invalidations, %d retained, %d evictions\n"
       t.hits t.misses
       (let r = hit_rate t in
        if Float.is_nan r then "n/a" else Printf.sprintf "%.1f%%" (100.0 *. r))
       t.invalidations t.retained t.evictions);
  if Array.length t.shard_rows > 0 then
    Buffer.add_string buf
      (Printf.sprintf "  shards: rows [%s], skew %s\n"
         (String.concat "; " (List.map string_of_int (Array.to_list t.shard_rows)))
         (let s = shard_skew_of t.shard_rows in
          if Float.is_nan s then "n/a" else Printf.sprintf "%.2fx" s));
  Buffer.add_string buf
    (let e = t.engine in
     Printf.sprintf
       "  engine: %d rows scanned, %d probes, %d rows emitted, %d plan regex evals, %d exec regex evals, %d dfa execs, %d hash builds, %d reductions\n\
       \  engine: %d merge probes, %d merge steps, %d merge backtracks, %d partitions scanned, %d partitions pruned, %d peak bytes\n\
       \  engine: %d content probes, %d content candidates, %d content verified\n"
       e.Ppfx_minidb.Engine.rows_scanned e.Ppfx_minidb.Engine.rows_probed
       e.Ppfx_minidb.Engine.rows_emitted e.Ppfx_minidb.Engine.regex_plan_evals
       e.Ppfx_minidb.Engine.regex_exec_evals e.Ppfx_minidb.Engine.dfa_execs
       e.Ppfx_minidb.Engine.hash_builds e.Ppfx_minidb.Engine.reductions
       e.Ppfx_minidb.Engine.merge_probes e.Ppfx_minidb.Engine.merge_steps
       e.Ppfx_minidb.Engine.merge_backtracks e.Ppfx_minidb.Engine.partitions_scanned
       e.Ppfx_minidb.Engine.partitions_pruned e.Ppfx_minidb.Engine.peak_bytes
       e.Ppfx_minidb.Engine.content_probes e.Ppfx_minidb.Engine.content_candidates
       e.Ppfx_minidb.Engine.content_verified);
  if t.accepted > 0 || t.rejected > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "  net: %d accepted, %d rejected, %d active (peak %d), %d bytes in, \
          %d bytes out, queue depth hwm %d\n"
         t.accepted t.rejected t.active t.peak_active t.bytes_in t.bytes_out
         t.queue_hwm);
  if
    t.wal_appends > 0 || t.checkpoints > 0 || t.recoveries > 0 || t.clean_starts > 0
    || t.clean_shutdowns > 0
  then
    Buffer.add_string buf
      (Printf.sprintf
         "  durability: %d wal appends (%d bytes), %d fsyncs, %d checkpoints, \
          %d clean shutdowns\n\
         \  durability: %d recoveries (%d records replayed, %d torn tails, %d \
          bytes truncated), %d clean starts\n"
         t.wal_appends t.wal_bytes t.wal_fsyncs t.checkpoints t.clean_shutdowns
         t.recoveries t.replayed_records t.truncated_tails t.truncated_bytes
         t.clean_starts);
  Buffer.add_string buf
    (Printf.sprintf "  %-10s %8s %12s %12s %10s %10s %10s %10s %10s\n" "stage" "count"
       "total ms" "mean ms" "min ms" "max ms" "p50 ms" "p95 ms" "p99 ms");
  List.iter
    (fun stage ->
      let a = acc t stage in
      if a.count = 0 then
        Buffer.add_string buf
          (Printf.sprintf "  %-10s %8d %12s %12s %10s %10s %10s %10s %10s\n"
             (stage_name stage) 0 "-" "-" "-" "-" "-" "-" "-")
      else
        Buffer.add_string buf
          (Printf.sprintf
             "  %-10s %8d %12.3f %12.4f %10.4f %10.4f %10.4f %10.4f %10.4f\n"
             (stage_name stage) a.count (1e3 *. a.total)
             (1e3 *. a.total /. float_of_int a.count)
             (1e3 *. a.min) (1e3 *. a.max)
             (1e3 *. acc_percentile a 0.50)
             (1e3 *. acc_percentile a 0.95)
             (1e3 *. acc_percentile a 0.99)))
    all_stages;
  Buffer.contents buf

let to_json t =
  let stage_json stage =
    let a = acc t stage in
    let q name v =
      Printf.sprintf "\"%s\":%s" name
        (if a.count = 0 then "null" else Printf.sprintf "%.9f" v)
    in
    Printf.sprintf "\"%s\":{\"count\":%d,\"total_s\":%.9f,%s,%s,%s,%s,%s}"
      (stage_name stage) a.count a.total
      (q "min_s" a.min) (q "max_s" a.max)
      (q "p50_s" (acc_percentile a 0.50))
      (q "p95_s" (acc_percentile a 0.95))
      (q "p99_s" (acc_percentile a 0.99))
  in
  let engine_json =
    let e = t.engine in
    Printf.sprintf
      "{\"rows_scanned\":%d,\"rows_probed\":%d,\"rows_emitted\":%d,\
       \"regex_plan_evals\":%d,\"regex_exec_evals\":%d,\"dfa_execs\":%d,\
       \"hash_builds\":%d,\"reductions\":%d,\
       \"merge_probes\":%d,\"merge_steps\":%d,\"merge_backtracks\":%d,\
       \"partitions_scanned\":%d,\"partitions_pruned\":%d,\
       \"content_probes\":%d,\"content_candidates\":%d,\"content_verified\":%d,\
       \"peak_bytes\":%d}"
      e.Ppfx_minidb.Engine.rows_scanned e.Ppfx_minidb.Engine.rows_probed
      e.Ppfx_minidb.Engine.rows_emitted e.Ppfx_minidb.Engine.regex_plan_evals
      e.Ppfx_minidb.Engine.regex_exec_evals e.Ppfx_minidb.Engine.dfa_execs
      e.Ppfx_minidb.Engine.hash_builds e.Ppfx_minidb.Engine.reductions
      e.Ppfx_minidb.Engine.merge_probes e.Ppfx_minidb.Engine.merge_steps
      e.Ppfx_minidb.Engine.merge_backtracks e.Ppfx_minidb.Engine.partitions_scanned
      e.Ppfx_minidb.Engine.partitions_pruned e.Ppfx_minidb.Engine.content_probes
      e.Ppfx_minidb.Engine.content_candidates e.Ppfx_minidb.Engine.content_verified
      e.Ppfx_minidb.Engine.peak_bytes
  in
  let net_json =
    Printf.sprintf
      "{\"accepted\":%d,\"rejected\":%d,\"active\":%d,\"peak_active\":%d,\
       \"bytes_in\":%d,\"bytes_out\":%d,\"queue_depth_hwm\":%d}"
      t.accepted t.rejected t.active t.peak_active t.bytes_in t.bytes_out
      t.queue_hwm
  in
  let shards_json =
    Printf.sprintf "{\"rows\":[%s],\"skew\":%s}"
      (String.concat "," (List.map string_of_int (Array.to_list t.shard_rows)))
      (let s = shard_skew_of t.shard_rows in
       if Float.is_nan s then "null" else Printf.sprintf "%.4f" s)
  in
  let durability_json =
    Printf.sprintf
      "{\"wal_appends\":%d,\"wal_bytes\":%d,\"wal_fsyncs\":%d,\
       \"checkpoints\":%d,\"recoveries\":%d,\"clean_starts\":%d,\
       \"replayed_records\":%d,\"truncated_tails\":%d,\"truncated_bytes\":%d,\
       \"clean_shutdowns\":%d}"
      t.wal_appends t.wal_bytes t.wal_fsyncs t.checkpoints t.recoveries
      t.clean_starts t.replayed_records t.truncated_tails t.truncated_bytes
      t.clean_shutdowns
  in
  Printf.sprintf
    "{\"queries\":%d,\"prepares\":%d,\"hits\":%d,\"misses\":%d,\
     \"invalidations\":%d,\"retained\":%d,\"evictions\":%d,\"fallbacks\":%d,\
     \"rows\":%d,\"engine\":%s,\"net\":%s,\"shards\":%s,\"durability\":%s,\
     \"stages\":{%s}}"
    t.queries t.prepares t.hits t.misses t.invalidations t.retained t.evictions
    t.fallbacks t.rows engine_json net_json shards_json durability_json
    (String.concat "," (List.map stage_json all_stages))

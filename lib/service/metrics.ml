type stage = Parse | Translate | Plan | Execute

let stage_name = function
  | Parse -> "parse"
  | Translate -> "translate"
  | Plan -> "plan"
  | Execute -> "execute"

let all_stages = [ Parse; Translate; Plan; Execute ]

type acc = {
  mutable count : int;
  mutable total : float;
  mutable min : float;
  mutable max : float;
}

let acc_create () = { count = 0; total = 0.0; min = infinity; max = neg_infinity }

let acc_reset a =
  a.count <- 0;
  a.total <- 0.0;
  a.min <- infinity;
  a.max <- neg_infinity

type t = {
  parse : acc;
  translate : acc;
  plan : acc;
  execute : acc;
  mutable queries : int;
  mutable prepares : int;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable evictions : int;
}

let create () =
  {
    parse = acc_create ();
    translate = acc_create ();
    plan = acc_create ();
    execute = acc_create ();
    queries = 0;
    prepares = 0;
    hits = 0;
    misses = 0;
    invalidations = 0;
    evictions = 0;
  }

let reset t =
  List.iter acc_reset [ t.parse; t.translate; t.plan; t.execute ];
  t.queries <- 0;
  t.prepares <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.invalidations <- 0;
  t.evictions <- 0

let acc t = function
  | Parse -> t.parse
  | Translate -> t.translate
  | Plan -> t.plan
  | Execute -> t.execute

let record t stage seconds =
  let a = acc t stage in
  a.count <- a.count + 1;
  a.total <- a.total +. seconds;
  if seconds < a.min then a.min <- seconds;
  if seconds > a.max then a.max <- seconds

let time t stage f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> record t stage (Unix.gettimeofday () -. t0)) f

let incr_queries t = t.queries <- t.queries + 1
let incr_prepares t = t.prepares <- t.prepares + 1
let incr_hits t = t.hits <- t.hits + 1
let incr_misses t = t.misses <- t.misses + 1
let incr_invalidations t = t.invalidations <- t.invalidations + 1
let incr_evictions t = t.evictions <- t.evictions + 1

let queries t = t.queries
let prepares t = t.prepares
let hits t = t.hits
let misses t = t.misses
let invalidations t = t.invalidations
let evictions t = t.evictions

let stage_count t stage = (acc t stage).count
let stage_total t stage = (acc t stage).total

let hit_rate t =
  let lookups = t.hits + t.misses in
  if lookups = 0 then nan else float_of_int t.hits /. float_of_int lookups

let dump t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "service metrics\n";
  Buffer.add_string buf
    (Printf.sprintf "  queries %d, prepares %d\n" t.queries t.prepares);
  Buffer.add_string buf
    (Printf.sprintf "  cache: %d hits, %d misses (hit rate %s), %d invalidations, %d evictions\n"
       t.hits t.misses
       (let r = hit_rate t in
        if Float.is_nan r then "n/a" else Printf.sprintf "%.1f%%" (100.0 *. r))
       t.invalidations t.evictions);
  Buffer.add_string buf
    (Printf.sprintf "  %-10s %8s %12s %12s %12s %12s\n" "stage" "count" "total ms"
       "mean ms" "min ms" "max ms");
  List.iter
    (fun stage ->
      let a = acc t stage in
      if a.count = 0 then
        Buffer.add_string buf
          (Printf.sprintf "  %-10s %8d %12s %12s %12s %12s\n" (stage_name stage) 0 "-"
             "-" "-" "-")
      else
        Buffer.add_string buf
          (Printf.sprintf "  %-10s %8d %12.3f %12.4f %12.4f %12.4f\n"
             (stage_name stage) a.count (1e3 *. a.total)
             (1e3 *. a.total /. float_of_int a.count)
             (1e3 *. a.min) (1e3 *. a.max)))
    all_stages;
  Buffer.contents buf

let to_json t =
  let stage_json stage =
    let a = acc t stage in
    Printf.sprintf
      "\"%s\":{\"count\":%d,\"total_s\":%.9f,\"min_s\":%s,\"max_s\":%s}"
      (stage_name stage) a.count a.total
      (if a.count = 0 then "null" else Printf.sprintf "%.9f" a.min)
      (if a.count = 0 then "null" else Printf.sprintf "%.9f" a.max)
  in
  Printf.sprintf
    "{\"queries\":%d,\"prepares\":%d,\"hits\":%d,\"misses\":%d,\
     \"invalidations\":%d,\"evictions\":%d,\"stages\":{%s}}"
    t.queries t.prepares t.hits t.misses t.invalidations t.evictions
    (String.concat "," (List.map stage_json all_stages))

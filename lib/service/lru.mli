(** A capacity-bounded least-recently-used cache with an O(1) hit path.

    String keys map to arbitrary values through a hash table whose
    entries are threaded on an intrusive doubly-linked recency list:
    {!find} and {!add} are both O(1). When the cache is full, {!add}
    evicts the least recently used entry. Used by {!Session} to bound the
    number of live compiled translations and plans. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** Lookup; a hit promotes the entry to most-recently-used. *)

val mem : 'a t -> string -> bool
(** Membership test without promoting. *)

val add : 'a t -> string -> 'a -> string option
(** Insert or replace (either way the entry becomes most-recently-used).
    Returns the key evicted to make room, if any. *)

val remove : 'a t -> string -> unit

val clear : 'a t -> unit

val evictions : 'a t -> int
(** Total entries evicted by {!add} since creation. *)

val to_list : 'a t -> (string * 'a) list
(** Entries from most to least recently used (for tests and debugging). *)

module Doc = Ppfx_xml.Doc
module Graph = Ppfx_schema.Graph
module Loader = Ppfx_shred.Loader
module Translate = Ppfx_translate.Translate
module Engine = Ppfx_minidb.Engine
module Database = Ppfx_minidb.Database
module Sql = Ppfx_minidb.Sql
module Ast = Ppfx_xpath.Ast
module Xparser = Ppfx_xpath.Parser

(* A cached compiled query. The SQL is valid for the session's lifetime
   (translation depends only on the schema mapping and options); the plan
   is valid for one store epoch and is re-prepared lazily after the store
   changes. [plan = None] iff the translation proved the result empty. *)
type entry = {
  canonical : string;
  sql : Sql.statement option;
  mutable plan : Engine.plan option;
}

type t = {
  mutable store : Loader.t;
  translator : Translate.t;
  fingerprint : string;
  cache : entry Lru.t;
  metrics : Metrics.t;
  fine_grained : bool;
}

type prepared = entry

let create ?(cache_capacity = 256) ?(fine_grained = true) ?options store =
  let translator = Translate.create ?options store.Loader.mapping in
  {
    store;
    translator;
    fingerprint = Translate.fingerprint translator;
    cache = Lru.create ~capacity:cache_capacity;
    metrics = Metrics.create ();
    fine_grained;
  }

let of_doc ?cache_capacity ?fine_grained ?options ?schema doc =
  let schema = match schema with Some s -> s | None -> Graph.infer doc in
  create ?cache_capacity ?fine_grained ?options (Loader.shred schema doc)

let load t doc = t.store <- Loader.load t.store doc

let db t = t.store.Loader.db

let key t canonical = canonical ^ "\x00" ^ t.fingerprint

let prepare t text =
  Metrics.incr_prepares t.metrics;
  let expr = Metrics.time t.metrics Metrics.Parse (fun () -> Xparser.parse text) in
  let canonical = Ast.to_string expr in
  match Lru.find t.cache (key t canonical) with
  | Some entry ->
    Metrics.incr_hits t.metrics;
    entry
  | None ->
    Metrics.incr_misses t.metrics;
    let sql =
      Metrics.time t.metrics Metrics.Translate (fun () ->
          Translate.translate t.translator expr)
    in
    let plan =
      Option.map
        (fun stmt ->
          let plan =
            Metrics.time t.metrics Metrics.Plan (fun () -> Engine.prepare (db t) stmt)
          in
          (* Plan-time work: the semi-join reduction's regex sweep over the
             dimension table happens inside [prepare]. *)
          Metrics.add_engine t.metrics (Engine.plan_stats plan);
          plan)
        sql
    in
    let entry = { canonical; sql; plan } in
    (match Lru.add t.cache (key t canonical) entry with
     | Some _evicted -> Metrics.incr_evictions t.metrics
     | None -> ());
    entry

let empty_result = { Engine.columns = []; rows = [] }

let replan t (p : prepared) stmt =
  Metrics.incr_invalidations t.metrics;
  let plan =
    Metrics.time t.metrics Metrics.Plan (fun () -> Engine.prepare (db t) stmt)
  in
  Metrics.add_engine t.metrics (Engine.plan_stats plan);
  p.plan <- Some plan;
  plan

let execute t (p : prepared) =
  Metrics.incr_queries t.metrics;
  match p.sql with
  | None -> empty_result
  | Some stmt ->
    let plan =
      match p.plan with
      | Some plan when Engine.plan_valid plan -> plan
      | Some plan when t.fine_grained && Engine.plan_compatible plan ->
        (* The store changed, but every commit since prepare is logged and
           disjoint from this plan's table/pathid footprint: keep it. *)
        Metrics.incr_retained t.metrics;
        plan
      | Some _ | None ->
        (* The store moved in a way that overlaps (or cannot be proven
           disjoint from) this plan: the SQL is still correct, only the
           plan must be rebuilt. *)
        replan t p stmt
    in
    let run plan =
      let before = Engine.plan_stats plan in
      let result =
        Metrics.time t.metrics Metrics.Execute (fun () -> Engine.run_plan plan)
      in
      Metrics.add_engine t.metrics (Engine.stats_diff (Engine.plan_stats plan) before);
      result
    in
    (* A commit may land between the compatibility check and run_plan's
       own locked re-check; one re-plan retry absorbs that race. *)
    (try run plan with Engine.Runtime_error _ -> run (replan t p stmt))

let execute_ids t p =
  match p.sql with
  | None ->
    Metrics.incr_queries t.metrics;
    []
  | Some _ -> Translate.result_ids (execute t p)

let run t text = execute t (prepare t text)

let run_ids t text = execute_ids t (prepare t text)

let canonical (p : prepared) = p.canonical

let sql (p : prepared) = p.sql

let store t = t.store

let metrics t = t.metrics

let epoch t = Database.epoch (db t)

let fingerprint t = t.fingerprint

let cache_length t = Lru.length t.cache

let cache_capacity t = Lru.capacity t.cache

let invalidate_cache t = Lru.clear t.cache

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (** towards most-recently-used *)
  mutable next : 'a node option;  (** towards least-recently-used *)
}

type 'a t = {
  cap : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;  (** most-recently-used *)
  mutable tail : 'a node option;  (** least-recently-used *)
  mutable evicted : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be at least 1";
  { cap = capacity; table = Hashtbl.create (2 * capacity); head = None; tail = None;
    evicted = 0 }

let capacity t = t.cap

let length t = Hashtbl.length t.table

let unlink t node =
  (match node.prev with
   | Some p -> p.next <- node.next
   | None -> t.head <- node.next);
  (match node.next with
   | Some n -> n.prev <- node.prev
   | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with
   | Some h -> h.prev <- Some node
   | None -> t.tail <- Some node);
  t.head <- Some node

let find t key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some node ->
    if t.head != Some node then begin
      unlink t node;
      push_front t node
    end;
    Some node.value

let mem t key = Hashtbl.mem t.table key

let remove t key =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table key

let add t key value =
  match Hashtbl.find_opt t.table key with
  | Some node ->
    node.value <- value;
    if t.head != Some node then begin
      unlink t node;
      push_front t node
    end;
    None
  | None ->
    let victim =
      if Hashtbl.length t.table < t.cap then None
      else
        match t.tail with
        | None -> None
        | Some lru ->
          unlink t lru;
          Hashtbl.remove t.table lru.key;
          t.evicted <- t.evicted + 1;
          Some lru.key
    in
    let node = { key; value; prev = None; next = None } in
    Hashtbl.add t.table key node;
    push_front t node;
    victim

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let evictions t = t.evicted

let to_list t =
  let rec go acc = function
    | None -> List.rev acc
    | Some node -> go ((node.key, node.value) :: acc) node.next
  in
  go [] t.head

(** A long-lived serving session over one shredded store.

    The paper's Section 4 translation is a pure function of the schema
    mapping and the option set, so a server can compile each distinct
    query once and replay the compiled artifact for every later arrival.
    A session owns a schema-aware store ({!Ppfx_shred.Loader.t}) and a
    bounded {!Lru} cache mapping

    {v normalized XPath text × translation options × schema fingerprint v}

    to the translated SQL statement and its prepared minidb plan
    ({!Ppfx_minidb.Engine.plan}). {!prepare} pays parse + translate +
    plan at most once per distinct query; {!execute} replays the plan.
    Query text is normalized by parsing and reprinting the canonical
    surface form, so [//a [ b ]] and [//a[b]] share one cache entry.

    Plans are tied to the store epoch ({!Ppfx_minidb.Database.epoch}).
    Loading another document — or any other table mutation — moves the
    epoch; a subsequent {!execute} detects the stale plan, re-plans
    against the new contents (the translated SQL stays valid: it depends
    only on the schema), and counts an invalidation in {!metrics}. *)

module Doc = Ppfx_xml.Doc
module Graph = Ppfx_schema.Graph
module Loader = Ppfx_shred.Loader
module Translate = Ppfx_translate.Translate
module Engine = Ppfx_minidb.Engine
module Sql = Ppfx_minidb.Sql

type t

val create : ?cache_capacity:int -> ?fine_grained:bool ->
  ?options:Translate.options -> Loader.t -> t
(** Wrap an existing store. [cache_capacity] bounds the number of live
    compiled queries (default 256). [fine_grained] (default true) enables
    footprint-based plan retention on {!execute}: a plan whose epoch moved
    is kept — not re-planned — when
    {!Ppfx_minidb.Engine.plan_compatible} proves every commit since its
    prepare disjoint from the plan's tables and pathids. Pass [false] to
    fall back to whole-epoch invalidation (the pre-write-path behavior,
    kept for comparison benchmarks). *)

val of_doc : ?cache_capacity:int -> ?fine_grained:bool ->
  ?options:Translate.options -> ?schema:Graph.t -> Doc.t -> t
(** Shred a document (inferring the schema unless given) and open a
    session over the resulting store. *)

val load : t -> Doc.t -> unit
(** Shred one more document into the session's store. Bumps the store
    epoch, so every cached plan re-plans on its next execution. *)

(** {2 The prepared-query protocol} *)

type prepared

val prepare : t -> string -> prepared
(** Parse the query and return its compiled form: on a cache miss this
    translates to SQL and prepares the minidb plan (recording parse /
    translate / plan latencies); on a hit only the parse is paid.
    Raises {!Ppfx_xpath.Parser.Error} on malformed queries and
    {!Translate.Unsupported} on out-of-subset constructs. *)

val execute : t -> prepared -> Engine.result
(** Run the prepared plan against the current store contents. If the
    store epoch moved since the plan was prepared, the plan is kept when
    its footprint is provably disjoint from every intervening commit
    (counted in {!Metrics.retained}) and transparently re-planned
    otherwise (counted in {!Metrics.invalidations}). *)

val execute_ids : t -> prepared -> int list
(** {!execute} projected to sorted element ids (empty for provably-empty
    translations). *)

val run : t -> string -> Engine.result
(** [prepare] + [execute]. *)

val run_ids : t -> string -> int list
(** [prepare] + [execute_ids]. *)

val canonical : prepared -> string
(** The normalized query text used as the cache key. *)

val sql : prepared -> Sql.statement option
(** The translated statement; [None] when the schema proves the result
    empty. *)

(** {2 Introspection} *)

val store : t -> Loader.t
val metrics : t -> Metrics.t
val epoch : t -> int
(** Current store epoch. *)

val fingerprint : t -> string
(** The translator fingerprint (schema × options) suffixing every cache
    key; equal fingerprints mean cache entries would be exchangeable. *)

val cache_length : t -> int
val cache_capacity : t -> int
val invalidate_cache : t -> unit
(** Drop every cached translation (epoch-based invalidation is automatic;
    this is the manual override). *)

(** Serving many queries through one session (the [ppfx serve]
    subcommand and the service benchmark both drive this). *)

type outcome = {
  query : string;  (** the query text as submitted *)
  result : (int list, string) result;
      (** sorted element ids, or a one-line error (parse failure or
          out-of-subset construct) *)
  seconds : float;  (** wall-clock prepare + execute time *)
}

val parse_queries : string -> string list
(** Split raw text into query lines, dropping blank lines and [#]
    comments. *)

val read_queries : in_channel -> string list
(** {!parse_queries} over a whole channel. *)

val run : Session.t -> string list -> outcome list
(** Run each query through the session, in order. Errors are captured
    per query; one bad query does not abort the batch. *)

val run_with : (string -> int list) -> string list -> outcome list
(** {!run} over any executor with the session error contract — e.g. a
    {!Ppfx_cluster.Cluster} (which lives above this library). *)

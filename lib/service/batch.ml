type outcome = {
  query : string;
  result : (int list, string) result;
  seconds : float;
}

let parse_queries text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None else Some line)

let read_queries ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  parse_queries (Buffer.contents buf)

let run_with run_ids queries =
  List.map
    (fun query ->
      let t0 = Unix.gettimeofday () in
      let result =
        try Ok (run_ids query) with
        | Ppfx_xpath.Parser.Error { position; message } ->
          Error (Printf.sprintf "parse error at offset %d: %s" position message)
        | Session.Translate.Unsupported msg ->
          Error (Printf.sprintf "not translatable: %s" msg)
      in
      { query; result; seconds = Unix.gettimeofday () -. t0 })
    queries

let run session queries = run_with (Session.run_ids session) queries

(** Deterministic fault injection under the durability layer.

    Every durable side effect the WAL performs — frame writes, fsyncs,
    renames, unlinks, directory fsyncs — goes through an {!t} and
    advances its op counter. Arming [crash_at = k] makes op number [k]
    (0-based) raise {!Crashed} instead of completing, optionally after
    corrupting a write ({!fault}); the crash-recovery differential runs a
    workload once to count ops, then re-runs it crashing at {e every}
    [k], recovering, and comparing against the acked prefix.

    The model: completed writes are durable (data goes straight to the
    file), a crashed op performs nothing (or its declared corruption) and
    nothing after it runs. A {!Short_write} is a torn frame, a
    {!Flip_bit} is media corruption — both must be detected and cut by
    recovery's CRC scan. *)

exception Crashed of string
(** The injected crash. Production code never catches this; test
    harnesses do, then {!disarm} and recover. *)

type fault =
  | Drop  (** the op does nothing (default) *)
  | Short_write of int  (** a write persists only its first [n] bytes *)
  | Flip_bit of int  (** a write persists with bit [n mod bits] flipped *)

type t

val live : t
(** The shared production instance: never crashes. *)

val create : ?crash_at:int -> ?fault:fault -> unit -> t

val ops : t -> int
(** Durable ops performed (or crashed) so far. *)

val arm : t -> ?fault:fault -> crash_at:int -> unit -> unit
val disarm : t -> unit

(** {2 Primitives} — each counts as one op and raises {!Crashed} at the
    armed crash point. *)

val write : t -> Unix.file_descr -> string -> unit
(** Write the whole string at the descriptor's current offset. *)

val fsync : t -> Unix.file_descr -> unit
val rename : t -> string -> string -> unit
val unlink_if_exists : t -> string -> unit
(** Missing files are not an error (recovery re-runs cleanups). *)

val fsync_dir : t -> string -> unit
(** Fsync a directory (making renames/creates in it durable); platforms
    that refuse directory fsync are tolerated silently. *)

val atomic_write : t -> path:string -> string -> unit
(** [tmp] + write + fsync + rename + dir-fsync (4 ops): the file at
    [path] is either its previous content or the complete new content,
    never a torn prefix. *)

module Database = Ppfx_minidb.Database
module Codec = Ppfx_minidb.Codec
module Graph = Ppfx_schema.Graph
module Mapping = Ppfx_shred.Mapping
module Loader = Ppfx_shred.Loader
module Update = Ppfx_update.Update
module Metrics = Ppfx_service.Metrics

type durability = Off | Fsync | Batch of int

let durability_to_string = function
  | Off -> "off"
  | Fsync -> "fsync"
  | Batch n -> "batch:" ^ string_of_int n

let durability_of_string s =
  match String.lowercase_ascii s with
  | "off" -> Ok Off
  | "fsync" -> Ok Fsync
  | "batch" -> Ok (Batch 32)
  | s when String.length s > 6 && String.equal (String.sub s 0 6) "batch:" -> (
    match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
    | Some n when n > 0 -> Ok (Batch n)
    | _ -> Error "batch size must be a positive integer")
  | _ -> Error (Printf.sprintf "unknown durability %S (expected off, fsync or batch[:N])" s)

let meta_magic = "PPFXMET1"
let db_file gen = Printf.sprintf "checkpoint-%d.db" gen
let meta_file gen = Printf.sprintf "checkpoint-%d.meta" gen
let seg_file gen = Printf.sprintf "wal-%d.log" gen

type t = {
  io : Io.t;
  dir : string;
  durability : durability;
  checkpoint_bytes : int;
  checkpoint_records : int;
  mutable fd : Unix.file_descr option;
  mutable gen : int;
  mutable next_seq : int;
  mutable seg_records : int;
  mutable seg_bytes : int;
  mutable unsynced : int;
  mutable metrics : Metrics.t option;
  (* counters observed before a metrics sink is attached *)
  mutable acc_appends : int;
  mutable acc_bytes : int;
  mutable acc_fsyncs : int;
  mutable acc_checkpoints : int;
  mutable acc_recovery : (int * int * bool) option;
}

let dir t = t.dir
let next_seq t = t.next_seq
let durability t = t.durability

let rec mkdirs d =
  if not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if not (String.equal parent d) then mkdirs parent;
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let note_append t bytes =
  match t.metrics with
  | Some m -> Metrics.add_wal_appends m ~count:1 ~bytes
  | None ->
    t.acc_appends <- t.acc_appends + 1;
    t.acc_bytes <- t.acc_bytes + bytes

let note_fsync t =
  match t.metrics with
  | Some m -> Metrics.add_wal_fsyncs m 1
  | None -> t.acc_fsyncs <- t.acc_fsyncs + 1

let note_checkpoint t =
  match t.metrics with
  | Some m -> Metrics.add_checkpoints m 1
  | None -> t.acc_checkpoints <- t.acc_checkpoints + 1

let set_metrics t m =
  t.metrics <- Some m;
  if t.acc_appends > 0 then
    Metrics.add_wal_appends m ~count:t.acc_appends ~bytes:t.acc_bytes;
  if t.acc_fsyncs > 0 then Metrics.add_wal_fsyncs m t.acc_fsyncs;
  if t.acc_checkpoints > 0 then Metrics.add_checkpoints m t.acc_checkpoints;
  (match t.acc_recovery with
   | Some (replayed, truncated_bytes, clean) ->
     Metrics.add_recovery m ~replayed ~truncated_bytes ~clean
   | None -> ());
  t.acc_appends <- 0;
  t.acc_bytes <- 0;
  t.acc_fsyncs <- 0;
  t.acc_checkpoints <- 0;
  t.acc_recovery <- None

(* --- generation files ------------------------------------------------ *)

let write_generation t ~gen ~db ~meta =
  Io.atomic_write t.io
    ~path:(Filename.concat t.dir (db_file gen))
    (Codec.database_to_string db);
  Io.atomic_write t.io
    ~path:(Filename.concat t.dir (meta_file gen))
    (meta_magic ^ Log.frame (Record.encode_meta meta));
  Io.atomic_write t.io ~path:(Filename.concat t.dir (seg_file gen)) Log.magic

let read_meta path =
  match open_in_bin path with
  | exception Sys_error e -> Error ("checkpoint meta: " ^ e)
  | ic ->
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let mlen = String.length meta_magic in
    if String.length s < mlen || not (String.equal (String.sub s 0 mlen) meta_magic)
    then Error "checkpoint meta: bad magic"
    else begin
      match Log.scan_string (Log.magic ^ String.sub s mlen (String.length s - mlen)) with
      | { Log.frames = [ (payload, _) ]; valid_end; file_len } when valid_end = file_len
        -> (
        match Record.decode_meta payload with
        | m -> Ok m
        | exception Record.Corrupt e -> Error ("checkpoint meta: " ^ e))
      | _ -> Error "checkpoint meta: bad frame"
    end

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(* Drop every managed file not belonging to the current generation:
   superseded checkpoints/segments, half-written generations from a
   crashed checkpoint, stale atomic-write temporaries. Deletion is pure
   cleanup — recovery never reads a file the manifest does not name — so
   a crash in here costs disk space, not correctness. *)
let cleanup t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> ()
  | names ->
    Array.iter
      (fun name ->
        let keep =
          String.equal name Manifest.file
          || String.equal name (db_file t.gen)
          || String.equal name (meta_file t.gen)
          || String.equal name (seg_file t.gen)
        in
        let managed =
          starts_with "checkpoint-" name || starts_with "wal-" name
          || starts_with Manifest.file name
        in
        if managed && not keep then
          Io.unlink_if_exists t.io (Filename.concat t.dir name))
      names

let open_segment t =
  let fd =
    Unix.openfile
      (Filename.concat t.dir (seg_file t.gen))
      [ Unix.O_WRONLY; Unix.O_APPEND ]
      0o644
  in
  t.fd <- Some fd

let close_fd t =
  (match t.fd with
   | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
   | None -> ());
  t.fd <- None

(* --- lifecycle ------------------------------------------------------- *)

let make ~io ~durability ~checkpoint_bytes ~checkpoint_records ~dir ~gen ~next_seq =
  {
    io;
    dir;
    durability;
    checkpoint_bytes;
    checkpoint_records;
    fd = None;
    gen;
    next_seq;
    seg_records = 0;
    seg_bytes = 0;
    unsynced = 0;
    metrics = None;
    acc_appends = 0;
    acc_bytes = 0;
    acc_fsyncs = 0;
    acc_checkpoints = 0;
    acc_recovery = None;
  }

let default_checkpoint_bytes = 4 * 1024 * 1024
let default_checkpoint_records = 4096

let init ?(io = Io.live) ?(durability = Fsync)
    ?(checkpoint_bytes = default_checkpoint_bytes)
    ?(checkpoint_records = default_checkpoint_records) ~dir ~db ~meta () =
  mkdirs dir;
  let t = make ~io ~durability ~checkpoint_bytes ~checkpoint_records ~dir ~gen:0 ~next_seq:1 in
  write_generation t ~gen:0 ~db ~meta;
  Manifest.write io ~dir { Manifest.gen = 0; base_seq = 0; clean = false };
  cleanup t;
  open_segment t;
  t

let exists ~dir = Sys.file_exists (Filename.concat dir Manifest.file)

let append t ?op ?(inserts = true) ?extras cs =
  let fd =
    match t.fd with
    | Some fd -> fd
    | None -> invalid_arg "Wal.Store.append: store is closed"
  in
  let seq = t.next_seq in
  let framed =
    Log.frame
      (Record.encode { Record.r_seq = seq; r_op = op; r_inserts = inserts; r_cs = cs; r_extras = extras })
  in
  Io.write t.io fd framed;
  t.next_seq <- seq + 1;
  t.seg_records <- t.seg_records + 1;
  t.seg_bytes <- t.seg_bytes + String.length framed;
  note_append t (String.length framed);
  (match t.durability with
   | Off -> t.unsynced <- t.unsynced + 1
   | Fsync ->
     Io.fsync t.io fd;
     t.unsynced <- 0;
     note_fsync t
   | Batch n ->
     t.unsynced <- t.unsynced + 1;
     if t.unsynced >= max 1 n then begin
       Io.fsync t.io fd;
       t.unsynced <- 0;
       note_fsync t
     end);
  seq

let flush t =
  match t.fd with
  | Some fd when t.unsynced > 0 ->
    Io.fsync t.io fd;
    t.unsynced <- 0;
    note_fsync t
  | Some _ | None -> ()

let should_checkpoint t =
  t.seg_bytes >= t.checkpoint_bytes || t.seg_records >= t.checkpoint_records

let checkpoint t ~db ~meta =
  flush t;
  let gen' = t.gen + 1 in
  write_generation t ~gen:gen' ~db ~meta;
  (* The manifest rename is the commit point of the rotation: everything
     it names is already durable, and until it lands recovery uses the
     previous generation plus its (complete, never-truncated) segment. *)
  Manifest.write t.io ~dir:t.dir
    { Manifest.gen = gen'; base_seq = t.next_seq - 1; clean = false };
  close_fd t;
  t.gen <- gen';
  t.seg_records <- 0;
  t.seg_bytes <- 0;
  t.unsynced <- 0;
  note_checkpoint t;
  cleanup t;
  open_segment t

let close t =
  flush t;
  close_fd t

let close_clean t ~db ~meta =
  checkpoint t ~db ~meta;
  Manifest.write t.io ~dir:t.dir
    { Manifest.gen = t.gen; base_seq = t.next_seq - 1; clean = true };
  (match t.metrics with Some m -> Metrics.incr_clean_shutdowns m | None -> ());
  close_fd t

let dispose t = close_fd t

(* --- recovery --------------------------------------------------------- *)

type recovery = { replayed : int; truncated_bytes : int; clean : bool }

type recovered = {
  store : t;
  db : Database.t;
  meta : Record.meta;
  records : Record.t list;
  recovery : recovery;
}

let recover ?(io = Io.live) ?(durability = Fsync)
    ?(checkpoint_bytes = default_checkpoint_bytes)
    ?(checkpoint_records = default_checkpoint_records) ~dir () =
  let ( let* ) = Result.bind in
  let* man = Manifest.read ~dir in
  let* db =
    match Codec.load_result (Filename.concat dir (db_file man.Manifest.gen)) with
    | Ok db -> Ok db
    | Error e -> Error ("checkpoint snapshot: " ^ Codec.error_to_string e)
  in
  let* meta = read_meta (Filename.concat dir (meta_file man.Manifest.gen)) in
  let seg = Filename.concat dir (seg_file man.Manifest.gen) in
  let* records, valid_end, file_len =
    if man.Manifest.clean then
      (* clean shutdown: the final checkpoint rotated the log, so the
         segment is empty by construction — skip the scan entirely *)
      Ok ([], String.length Log.magic, String.length Log.magic)
    else
      match Log.scan_file seg with
      | exception Sys_error e -> Error ("wal segment: " ^ e)
      | scan ->
        (* A frame that passed its CRC but does not decode, or whose
           sequence number breaks the base_seq+1, +2, ... chain, marks
           the start of the invalid tail just like a torn frame. *)
        let rec go acc expected valid = function
          | [] -> (List.rev acc, valid)
          | (payload, frame_end) :: rest -> (
            match Record.decode payload with
            | r when r.Record.r_seq = expected ->
              go (r :: acc) (expected + 1) frame_end rest
            | _ -> (List.rev acc, valid)
            | exception Record.Corrupt _ -> (List.rev acc, valid))
        in
        let records, valid_end =
          go [] (man.Manifest.base_seq + 1) (String.length Log.magic) scan.Log.frames
        in
        Ok (records, valid_end, scan.Log.file_len)
  in
  let truncated = file_len - valid_end in
  let replayed = List.length records in
  let t =
    make ~io ~durability ~checkpoint_bytes ~checkpoint_records ~dir
      ~gen:man.Manifest.gen
      ~next_seq:(man.Manifest.base_seq + replayed + 1)
  in
  t.seg_records <- replayed;
  t.seg_bytes <- valid_end - String.length Log.magic;
  if truncated > 0 then begin
    let fd = Unix.openfile seg [ Unix.O_WRONLY ] 0o644 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        Unix.ftruncate fd valid_end;
        Unix.fsync fd)
  end;
  (* From here the segment can grow again, so the clean marker must go
     before any ack does. *)
  if man.Manifest.clean then
    Manifest.write io ~dir { man with Manifest.clean = false };
  cleanup t;
  open_segment t;
  t.acc_recovery <- Some (replayed, truncated, man.Manifest.clean);
  (match t.metrics with
   | Some m ->
     Metrics.add_recovery m ~replayed ~truncated_bytes:truncated ~clean:man.Manifest.clean
   | None -> ());
  Ok
    {
      store = t;
      db;
      meta;
      records;
      recovery = { replayed; truncated_bytes = truncated; clean = man.Manifest.clean };
    }

(* --- replay ----------------------------------------------------------- *)

let final_extras (meta : Record.meta) records =
  List.fold_left
    (fun acc (r : Record.t) ->
      match r.Record.r_extras with Some e -> Some e | None -> acc)
    meta.Record.m_extras records

let rebuild_full ~db ~(meta : Record.meta) records =
  match meta.Record.m_shadow with
  | None -> Error "checkpoint meta carries no shadow (not a full store)"
  | Some shadow -> (
    let mapping = Mapping.of_schema meta.Record.m_schema in
    match
      List.find_opt
        (fun (d : Graph.def) ->
          Option.is_none (Database.table_opt db (Mapping.relation mapping d)))
        (Graph.defs meta.Record.m_schema)
    with
    | Some d -> Error (Printf.sprintf "snapshot is missing relation %s" d.Graph.relation)
    | None -> (
      let loader = { Loader.mapping; db; docs = [] } in
      match Update.of_shadow loader shadow with
      | exception Update.Update_error e -> Error ("shadow rebuild: " ^ e)
      | u -> (
        try
          List.iter
            (fun (r : Record.t) ->
              (* re-stage the logged op to move the shadow (deterministic:
                 ORDPATH carets and id allocation depend only on prior
                 state), then commit the logged changeset — the exact
                 acked bytes — to the relations *)
              (match r.Record.r_op with
               | Some op -> ignore (Update.stage u op)
               | None -> ());
              Update.commit ~inserts:true db r.Record.r_cs)
            records;
          Ok u
        with Update.Update_error e -> Error ("replay: " ^ e))))

let rebuild_db ~db ~(meta : Record.meta) records =
  let mapping = Mapping.of_schema meta.Record.m_schema in
  List.iter
    (fun (r : Record.t) -> Update.commit ~inserts:r.Record.r_inserts db r.Record.r_cs)
    records;
  { Loader.mapping; db; docs = [] }

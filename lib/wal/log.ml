let magic = "PPFXLOG1"

let u32le n =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr (n land 0xFF));
  Bytes.set b 1 (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set b 2 (Char.chr ((n lsr 16) land 0xFF));
  Bytes.set b 3 (Char.chr ((n lsr 24) land 0xFF));
  Bytes.to_string b

let read_u32le s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

(* An oversized length field is necessarily garbage — no single commit
   changeset approaches this — and bounding it keeps a corrupt frame
   from looking like a giant half-written record. *)
let max_frame = 1 lsl 30

let frame payload =
  u32le (String.length payload) ^ u32le (Crc32.digest payload) ^ payload

type scan = {
  frames : (string * int) list;
      (** payloads in order, each with the file offset just past its frame *)
  valid_end : int;  (** offset of the end of the last whole, CRC-valid frame *)
  file_len : int;
}

let scan_string s =
  let len = String.length s in
  let mlen = String.length magic in
  if len < mlen || not (String.equal (String.sub s 0 mlen) magic) then
    { frames = []; valid_end = mlen; file_len = len }
  else begin
    let frames = ref [] in
    let pos = ref mlen in
    let stop = ref false in
    while not !stop do
      if !pos + 8 > len then stop := true
      else begin
        let flen = read_u32le s !pos in
        let crc = read_u32le s (!pos + 4) in
        if flen < 0 || flen > max_frame || !pos + 8 + flen > len then stop := true
        else if Crc32.update 0 s (!pos + 8) flen <> crc then stop := true
        else begin
          frames := (String.sub s (!pos + 8) flen, !pos + 8 + flen) :: !frames;
          pos := !pos + 8 + flen
        end
      end
    done;
    { frames = List.rev !frames; valid_end = !pos; file_len = len }
  end

let scan_file path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  scan_string s

(** Per-store durability: an atomic checkpoint manifest over
    {!Ppfx_minidb.Codec} snapshots plus an append-only, CRC-framed
    write-ahead log of {!Ppfx_update.Update} changesets.

    A store directory holds exactly one current generation [g]:
    - [checkpoint-<g>.db] — the PPFXDB3 database snapshot;
    - [checkpoint-<g>.meta] — schema graph, shadow-forest image (full
      stores), cluster extras;
    - [wal-<g>.log] — records acked since the checkpoint;
    - [MANIFEST] — names [g]; atomically replaced, the commit point of
      every rotation.

    Write discipline: a commit is staged in memory, {!append}ed (then
    fsynced per the {!durability} policy), and only then applied to the
    in-memory store and acked. Checkpoints write the next generation's
    snapshot + empty segment, then swing the manifest; a crash at any
    point leaves the previous generation complete. Recovery loads the
    manifest's snapshot and replays every whole, CRC-valid, in-sequence
    record, truncating the first torn/corrupt frame and everything after
    it.

    Not thread-safe: callers serialize (the server's update lock / the
    cluster's coordinator already do). *)

module Database = Ppfx_minidb.Database
module Loader = Ppfx_shred.Loader
module Update = Ppfx_update.Update
module Metrics = Ppfx_service.Metrics

type durability =
  | Off  (** never fsync; the OS decides (bench baseline) *)
  | Fsync  (** fsync after every append — an ack survives any crash *)
  | Batch of int
      (** group commit: fsync every [n] appends (and on {!flush}); a
          crash may lose up to the last [n-1] acked commits *)

val durability_to_string : durability -> string
val durability_of_string : string -> (durability, string) result
(** Accepts ["off"], ["fsync"], ["batch"] (= 32), ["batch:N"]. *)

type t

(** {2 Opening} *)

val init :
  ?io:Io.t ->
  ?durability:durability ->
  ?checkpoint_bytes:int ->
  ?checkpoint_records:int ->
  dir:string ->
  db:Database.t ->
  meta:Record.meta ->
  unit ->
  t
(** Create (or re-create) a store directory from a freshly shredded
    store: writes checkpoint generation 0, an empty segment, and the
    manifest, and opens the segment for append. [checkpoint_bytes] /
    [checkpoint_records] set the {!should_checkpoint} policy. *)

val exists : dir:string -> bool
(** A manifest is present — {!recover} instead of shred + {!init}. *)

type recovery = {
  replayed : int;  (** records replayed from the segment *)
  truncated_bytes : int;  (** torn/corrupt tail cut off (0 = clean end) *)
  clean : bool;  (** clean-shutdown marker found; replay scan skipped *)
}

type recovered = {
  store : t;  (** open for append, on the recovered generation *)
  db : Database.t;  (** the checkpoint snapshot — {e before} replay *)
  meta : Record.meta;
  records : Record.t list;  (** replay these (e.g. {!rebuild_full}) *)
  recovery : recovery;
}

val recover :
  ?io:Io.t ->
  ?durability:durability ->
  ?checkpoint_bytes:int ->
  ?checkpoint_records:int ->
  dir:string ->
  unit ->
  (recovered, string) result
(** Open an existing store directory: read the manifest, load its
    snapshot generation, scan the segment (skipped entirely when the
    clean marker is set), truncate any invalid tail, and reopen for
    append. The caller applies [records] to [db] — {!rebuild_full} /
    {!rebuild_db} do it. *)

(** {2 The write path} *)

val append :
  t ->
  ?op:Update.op ->
  ?inserts:bool ->
  ?extras:Record.extras ->
  Update.changeset ->
  int
(** Frame and append one commit record (assigning and returning its
    sequence number), fsyncing per the durability policy. Must happen
    {e before} the commit is applied in memory and acked. [op] is logged
    on full stores so replay can rebuild the shadow; [inserts] is the
    shard replay flag; [extras] the cluster routing state after this
    commit. *)

val flush : t -> unit
(** Fsync any unsynced appends (group-commit flush, shutdown path). *)

val should_checkpoint : t -> bool
(** The size/record-count policy says the segment has earned a rotation. *)

val checkpoint : t -> db:Database.t -> meta:Record.meta -> unit
(** Write the next generation (snapshot of the current [db]/[meta] +
    fresh empty segment), atomically swing the manifest to it, and drop
    the superseded files. Crash-safe at every step. *)

(** {2 Shutdown} *)

val close : t -> unit
(** Flush + close. The manifest keeps [clean = false]; the next open
    scans and replays the segment. *)

val close_clean : t -> db:Database.t -> meta:Record.meta -> unit
(** Drained shutdown: final {!checkpoint}, then mark the manifest clean
    so the next open skips the replay scan entirely. *)

val dispose : t -> unit
(** Close descriptors without flushing — the post-{!Io.Crashed} path in
    test harnesses. *)

(** {2 Replay helpers} *)

val rebuild_full :
  db:Database.t -> meta:Record.meta -> Record.t list -> (Update.t, string) result
(** Rebuild a full store from a recovery: re-adopt the snapshot through
    {!Update.of_shadow} (re-validating schema, paths and labels), then
    for each record re-stage its logged op (moving the shadow) and
    commit its logged changeset (the authoritative acked bytes). *)

val rebuild_db :
  db:Database.t -> meta:Record.meta -> Record.t list -> Loader.t
(** Rebuild a shard store: replay each record's changeset with its
    logged [inserts] flag. No shadow is involved. *)

val final_extras : Record.meta -> Record.t list -> Record.extras option
(** The cluster routing state as of the last acked commit: the last
    record's extras, falling back to the checkpoint's. *)

(** {2 Introspection} *)

val dir : t -> string
val next_seq : t -> int
(** The sequence number the next {!append} will assign. *)

val durability : t -> durability

val set_metrics : t -> Metrics.t -> unit
(** Attach a sink; counters observed before attachment (including the
    recovery stats) are pushed at once, later ones live. *)

let magic = "PPFXMAN1"
let file = "MANIFEST"

type t = {
  gen : int;  (** current checkpoint generation *)
  base_seq : int;  (** last commit seq included in the checkpoint *)
  clean : bool;  (** the store was closed cleanly; the segment is empty *)
}

let path ~dir = Filename.concat dir file

let encode m =
  let b = Buffer.create 32 in
  Buffer.add_string b (string_of_int m.gen);
  Buffer.add_char b ' ';
  Buffer.add_string b (string_of_int m.base_seq);
  Buffer.add_char b ' ';
  Buffer.add_string b (if m.clean then "clean" else "open");
  let payload = Buffer.contents b in
  magic ^ Log.frame payload

let write io ~dir m = Io.atomic_write io ~path:(path ~dir) (encode m)

let decode s =
  let mlen = String.length magic in
  if String.length s < mlen || not (String.equal (String.sub s 0 mlen) magic) then
    Error "manifest: bad magic"
  else
    match Log.scan_string (Log.magic ^ String.sub s mlen (String.length s - mlen)) with
    | { frames = [ (payload, _) ]; valid_end; file_len } when valid_end = file_len -> (
      match String.split_on_char ' ' payload with
      | [ gen; base_seq; state ] -> (
        match int_of_string_opt gen, int_of_string_opt base_seq, state with
        | Some gen, Some base_seq, ("clean" | "open") ->
          Ok { gen; base_seq; clean = String.equal state "clean" }
        | _ -> Error "manifest: malformed fields")
      | _ -> Error "manifest: malformed payload")
    | _ -> Error "manifest: bad frame or trailing bytes"

let read ~dir =
  let p = path ~dir in
  if not (Sys.file_exists p) then Error "manifest: missing"
  else
    let ic = open_in_bin p in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    decode s

module Tree = Ppfx_xml.Tree
module Graph = Ppfx_schema.Graph
module Value = Ppfx_minidb.Value
module Update = Ppfx_update.Update

exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun m -> raise (Corrupt m)) fmt

(* --- primitives ----------------------------------------------------- *)
(* Same zigzag-LEB128 discipline as Ppfx_minidb.Codec, over an explicit
   buffer/cursor pair so records, snapshot sidecars, and manifests all
   share one encoding. *)

type dec = { s : string; mutable pos : int }

let dec_of_string s = { s; pos = 0 }

let get_byte d =
  if d.pos >= String.length d.s then corrupt "truncated input"
  else begin
    let c = Char.code d.s.[d.pos] in
    d.pos <- d.pos + 1;
    c
  end

let get_bytes d n =
  if n < 0 || d.pos + n > String.length d.s then corrupt "truncated input"
  else begin
    let r = String.sub d.s d.pos n in
    d.pos <- d.pos + n;
    r
  end

let at_end d = d.pos >= String.length d.s

let put_varint b n =
  let n = ref ((n lsl 1) lxor (n asr (Sys.int_size - 1))) in
  let continue_ = ref true in
  while !continue_ do
    let byte = !n land 0x7F in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char b (Char.chr byte);
      continue_ := false
    end
    else Buffer.add_char b (Char.chr (byte lor 0x80))
  done

let get_varint d =
  let rec go shift acc =
    if shift > Sys.int_size then corrupt "varint too long";
    let byte = get_byte d in
    let acc = acc lor ((byte land 0x7F) lsl shift) in
    if byte land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  let z = go 0 0 in
  (z lsr 1) lxor (-(z land 1))

let put_str b s =
  put_varint b (String.length s);
  Buffer.add_string b s

let get_str d = get_bytes d (get_varint d)

let put_bool b v = Buffer.add_char b (if v then '\001' else '\000')

let get_bool d =
  match get_byte d with
  | 0 -> false
  | 1 -> true
  | c -> corrupt "bad bool byte %d" c

let put_opt f b = function
  | None -> Buffer.add_char b '\000'
  | Some v ->
    Buffer.add_char b '\001';
    f b v

let get_opt f d = if get_bool d then Some (f d) else None

let put_list f b l =
  put_varint b (List.length l);
  List.iter (f b) l

let get_list f d =
  let n = get_varint d in
  if n < 0 then corrupt "negative list length";
  List.init n (fun _ -> f d)

(* --- values (same tags as Codec) ------------------------------------ *)

let put_value b (v : Value.t) =
  match v with
  | Value.Null -> Buffer.add_char b '\000'
  | Value.Int i ->
    Buffer.add_char b '\001';
    put_varint b i
  | Value.Float f ->
    Buffer.add_char b '\002';
    let bits = Int64.bits_of_float f in
    for k = 0 to 7 do
      Buffer.add_char b
        (Char.chr (Int64.to_int (Int64.shift_right_logical bits (k * 8)) land 0xFF))
    done
  | Value.Str s ->
    Buffer.add_char b '\003';
    put_str b s
  | Value.Bin s ->
    Buffer.add_char b '\004';
    put_str b s

let get_value d : Value.t =
  match get_byte d with
  | 0 -> Value.Null
  | 1 -> Value.Int (get_varint d)
  | 2 ->
    let bits = ref 0L in
    for k = 0 to 7 do
      bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (get_byte d)) (k * 8))
    done;
    Value.Float (Int64.float_of_bits !bits)
  | 3 -> Value.Str (get_str d)
  | 4 -> Value.Bin (get_str d)
  | tag -> corrupt "unknown value tag %d" tag

(* --- XML fragments --------------------------------------------------- *)
(* Structural, not via Printer/Parser: whitespace-only text nodes and
   every attribute byte round-trip exactly. *)

let rec put_tree b = function
  | Tree.Text s ->
    Buffer.add_char b '\000';
    put_str b s
  | Tree.Element e ->
    Buffer.add_char b '\001';
    put_str b e.Tree.tag;
    put_list
      (fun b (k, v) ->
        put_str b k;
        put_str b v)
      b e.Tree.attrs;
    put_list put_tree b e.Tree.children

let rec get_tree d =
  match get_byte d with
  | 0 -> Tree.Text (get_str d)
  | 1 ->
    let tag = get_str d in
    let attrs =
      get_list
        (fun d ->
          let k = get_str d in
          let v = get_str d in
          (k, v))
        d
    in
    let children = get_list get_tree d in
    Tree.Element { Tree.tag; attrs; children }
  | tag -> corrupt "unknown tree tag %d" tag

(* --- operations ------------------------------------------------------ *)

let put_op b (op : Update.op) =
  match op with
  | Update.Insert_subtree { parent; before; fragment } ->
    Buffer.add_char b '\000';
    put_varint b parent;
    put_opt put_varint b before;
    put_tree b fragment
  | Update.Delete_subtree { target } ->
    Buffer.add_char b '\001';
    put_varint b target
  | Update.Replace_subtree { target; fragment } ->
    Buffer.add_char b '\002';
    put_varint b target;
    put_tree b fragment
  | Update.Set_attribute { target; name; value } ->
    Buffer.add_char b '\003';
    put_varint b target;
    put_str b name;
    put_opt put_str b value
  | Update.Set_text { target; text } ->
    Buffer.add_char b '\004';
    put_varint b target;
    put_str b text

let get_op d : Update.op =
  match get_byte d with
  | 0 ->
    let parent = get_varint d in
    let before = get_opt get_varint d in
    let fragment = get_tree d in
    Update.Insert_subtree { parent; before; fragment }
  | 1 -> Update.Delete_subtree { target = get_varint d }
  | 2 ->
    let target = get_varint d in
    let fragment = get_tree d in
    Update.Replace_subtree { target; fragment }
  | 3 ->
    let target = get_varint d in
    let name = get_str d in
    let value = get_opt get_str d in
    Update.Set_attribute { target; name; value }
  | 4 ->
    let target = get_varint d in
    let text = get_str d in
    Update.Set_text { target; text }
  | tag -> corrupt "unknown op tag %d" tag

(* --- changesets ------------------------------------------------------ *)

let put_row_op b (op : Update.row_op) =
  match op with
  | Update.Row_insert { table; values } ->
    Buffer.add_char b '\000';
    put_str b table;
    put_varint b (Array.length values);
    Array.iter (put_value b) values
  | Update.Row_update { table; elem; values } ->
    Buffer.add_char b '\001';
    put_str b table;
    put_varint b elem;
    put_varint b (Array.length values);
    Array.iter (put_value b) values
  | Update.Row_delete { table; elem } ->
    Buffer.add_char b '\002';
    put_str b table;
    put_varint b elem

let get_values d =
  let n = get_varint d in
  if n < 0 then corrupt "negative value count";
  Array.init n (fun _ -> get_value d)

let get_row_op d : Update.row_op =
  match get_byte d with
  | 0 ->
    let table = get_str d in
    let values = get_values d in
    Update.Row_insert { table; values }
  | 1 ->
    let table = get_str d in
    let elem = get_varint d in
    let values = get_values d in
    Update.Row_update { table; elem; values }
  | 2 ->
    let table = get_str d in
    let elem = get_varint d in
    Update.Row_delete { table; elem }
  | tag -> corrupt "unknown row-op tag %d" tag

let put_routing b (rt : Update.routing) =
  put_varint b rt.Update.rt_parent;
  put_opt put_varint b rt.Update.rt_left;
  put_opt put_varint b rt.Update.rt_right;
  put_opt
    (fun b (rel, fk) ->
      put_str b rel;
      put_str b fk)
    b rt.Update.rt_fk

let get_routing d : Update.routing =
  let rt_parent = get_varint d in
  let rt_left = get_opt get_varint d in
  let rt_right = get_opt get_varint d in
  let rt_fk =
    get_opt
      (fun d ->
        let rel = get_str d in
        let fk = get_str d in
        (rel, fk))
      d
  in
  { Update.rt_parent; rt_left; rt_right; rt_fk }

let put_changeset b (cs : Update.changeset) =
  put_list put_row_op b cs.Update.cs_ops;
  put_list
    (fun b (id, path) ->
      put_varint b id;
      put_str b path)
    b cs.Update.cs_new_paths;
  put_list put_varint b cs.Update.cs_dead_paths;
  put_list put_varint b cs.Update.cs_pathids;
  put_opt put_routing b cs.Update.cs_routing

let get_changeset d : Update.changeset =
  let cs_ops = get_list get_row_op d in
  let cs_new_paths =
    get_list
      (fun d ->
        let id = get_varint d in
        let path = get_str d in
        (id, path))
      d
  in
  let cs_dead_paths = get_list get_varint d in
  let cs_pathids = get_list get_varint d in
  let cs_routing = get_opt get_routing d in
  { Update.cs_ops; cs_new_paths; cs_dead_paths; cs_pathids; cs_routing }

(* --- cluster extras -------------------------------------------------- *)

type extras = { partition_counts : int list; boundary_fks : string list }

let put_extras b e =
  put_list put_varint b e.partition_counts;
  put_list put_str b e.boundary_fks

let get_extras d =
  let partition_counts = get_list get_varint d in
  let boundary_fks = get_list get_str d in
  { partition_counts; boundary_fks }

(* --- log records ------------------------------------------------------ *)

type t = {
  r_seq : int;  (** commit sequence number, 1-based, monotone per store *)
  r_op : Update.op option;  (** present on full stores: the staged op *)
  r_inserts : bool;  (** shard replay flag ([Update.commit ~inserts]) *)
  r_cs : Update.changeset;  (** the authoritative acked row changes *)
  r_extras : extras option;  (** cluster routing state after this commit *)
}

let encode r =
  let b = Buffer.create 256 in
  put_varint b r.r_seq;
  put_opt put_op b r.r_op;
  put_bool b r.r_inserts;
  put_changeset b r.r_cs;
  put_opt put_extras b r.r_extras;
  Buffer.contents b

let decode s =
  let d = dec_of_string s in
  let r_seq = get_varint d in
  let r_op = get_opt get_op d in
  let r_inserts = get_bool d in
  let r_cs = get_changeset d in
  let r_extras = get_opt get_extras d in
  if not (at_end d) then corrupt "trailing bytes after record";
  { r_seq; r_op; r_inserts; r_cs; r_extras }

(* --- shadow snapshots ------------------------------------------------- *)

let rec put_shadow_node b (n : Update.shadow_node) =
  put_varint b n.Update.sn_id;
  put_varint b n.Update.sn_doc;
  put_str b n.Update.sn_tag;
  put_str b n.Update.sn_label;
  put_varint b n.Update.sn_path_id;
  put_list
    (fun b (k, v) ->
      put_str b k;
      put_str b v)
    b n.Update.sn_attrs;
  put_list
    (fun b (it : Update.shadow_item) ->
      match it with
      | Update.Sh_text s ->
        Buffer.add_char b '\000';
        put_str b s
      | Update.Sh_node c ->
        Buffer.add_char b '\001';
        put_shadow_node b c)
    b n.Update.sn_items

let rec get_shadow_node d : Update.shadow_node =
  let sn_id = get_varint d in
  let sn_doc = get_varint d in
  let sn_tag = get_str d in
  let sn_label = get_str d in
  let sn_path_id = get_varint d in
  let sn_attrs =
    get_list
      (fun d ->
        let k = get_str d in
        let v = get_str d in
        (k, v))
      d
  in
  let sn_items =
    get_list
      (fun d : Update.shadow_item ->
        match get_byte d with
        | 0 -> Update.Sh_text (get_str d)
        | 1 -> Update.Sh_node (get_shadow_node d)
        | tag -> corrupt "unknown shadow item tag %d" tag)
      d
  in
  { Update.sn_id; sn_doc; sn_tag; sn_label; sn_path_id; sn_attrs; sn_items }

let put_shadow b (sh : Update.shadow) =
  put_list put_shadow_node b sh.Update.sh_roots;
  put_varint b sh.Update.sh_next_id;
  put_varint b sh.Update.sh_next_path_id

let get_shadow d : Update.shadow =
  let sh_roots = get_list get_shadow_node d in
  let sh_next_id = get_varint d in
  let sh_next_path_id = get_varint d in
  { Update.sh_roots; sh_next_id; sh_next_path_id }

(* --- schema ----------------------------------------------------------- *)
(* Defs in Graph.defs order (Builder.define reproduces ids and the
   tag/tag_2 relation naming deterministically), then nesting edges as
   (parent index, child index) pairs in parent-major, children-list
   order so child resolution order is preserved, then the root index. *)

let put_schema b g =
  let defs = Graph.defs g in
  let index_of =
    let tbl = Hashtbl.create (List.length defs) in
    List.iteri (fun i (d : Graph.def) -> Hashtbl.replace tbl d.Graph.id i) defs;
    fun (d : Graph.def) ->
      match Hashtbl.find_opt tbl d.Graph.id with
      | Some i -> i
      | None -> invalid_arg "put_schema: def outside Graph.defs"
  in
  put_list
    (fun b (d : Graph.def) ->
      put_str b d.Graph.name;
      put_list put_str b d.Graph.attrs;
      put_bool b d.Graph.has_text)
    b defs;
  put_list
    (fun b (pi, ci) ->
      put_varint b pi;
      put_varint b ci)
    b
    (List.concat_map
       (fun (p : Graph.def) ->
         List.map (fun c -> (index_of p, index_of c)) (Graph.children g p))
       defs);
  put_varint b (index_of (Graph.root g))

let get_schema d =
  let specs =
    get_list
      (fun d ->
        let name = get_str d in
        let attrs = get_list get_str d in
        let has_text = get_bool d in
        (name, attrs, has_text))
      d
  in
  let edges =
    get_list
      (fun d ->
        let pi = get_varint d in
        let ci = get_varint d in
        (pi, ci))
      d
  in
  let root_idx = get_varint d in
  let b = Graph.Builder.create () in
  let defs =
    Array.of_list
      (List.map (fun (name, attrs, text) -> Graph.Builder.define b ~attrs ~text name) specs)
  in
  let def i =
    if i < 0 || i >= Array.length defs then corrupt "schema def index %d out of range" i
    else defs.(i)
  in
  List.iter (fun (pi, ci) -> Graph.Builder.add_child b ~parent:(def pi) (def ci)) edges;
  match Graph.Builder.finish b ~root:(def root_idx) with
  | g -> g
  | exception Invalid_argument m -> corrupt "schema rebuild failed: %s" m

(* --- checkpoint sidecar ------------------------------------------------ *)

type meta = {
  m_schema : Graph.t;
  m_partitioned : bool;  (** physical layout of the snapshot's fact tables *)
  m_shadow : Update.shadow option;  (** present on full stores *)
  m_extras : extras option;
}

let encode_meta m =
  let b = Buffer.create 1024 in
  put_schema b m.m_schema;
  put_bool b m.m_partitioned;
  put_opt put_shadow b m.m_shadow;
  put_opt put_extras b m.m_extras;
  Buffer.contents b

let decode_meta s =
  let d = dec_of_string s in
  let m_schema = get_schema d in
  let m_partitioned = get_bool d in
  let m_shadow = get_opt get_shadow d in
  let m_extras = get_opt get_extras d in
  if not (at_end d) then corrupt "trailing bytes after checkpoint meta";
  { m_schema; m_partitioned; m_shadow; m_extras }

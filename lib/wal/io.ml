exception Crashed of string

type fault = Drop | Short_write of int | Flip_bit of int

type t = {
  mutable ops : int;
  mutable crash_at : int;  (* -1 = never *)
  mutable fault : fault;
}

let live = { ops = 0; crash_at = -1; fault = Drop }

let create ?(crash_at = -1) ?(fault = Drop) () = { ops = 0; crash_at; fault }

let ops io = io.ops

let arm io ?(fault = Drop) ~crash_at () =
  io.crash_at <- crash_at;
  io.fault <- fault

let disarm io = io.crash_at <- -1

let crashed fmt = Format.kasprintf (fun m -> raise (Crashed m)) fmt

(* Advance the op counter; true iff this op is the crash point. *)
let ticking io =
  let n = io.ops in
  io.ops <- n + 1;
  n = io.crash_at

let write_all fd s len =
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let flip_bit s k =
  let b = Bytes.of_string s in
  let nbits = 8 * Bytes.length b in
  if nbits > 0 then begin
    let k = ((k mod nbits) + nbits) mod nbits in
    let i = k / 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (k mod 8))))
  end;
  Bytes.to_string b

let write io fd s =
  if ticking io then begin
    (match io.fault with
     | Drop -> ()
     | Short_write k -> write_all fd s (min (max k 0) (String.length s))
     | Flip_bit k -> write_all fd (flip_bit s k) (String.length s));
    crashed "injected crash during write (%d bytes)" (String.length s)
  end
  else write_all fd s (String.length s)

let fsync io fd =
  if ticking io then crashed "injected crash before fsync" else Unix.fsync fd

let rename io src dst =
  if ticking io then crashed "injected crash before rename %s -> %s" src dst
  else Sys.rename src dst

let unlink_if_exists io path =
  if ticking io then crashed "injected crash before unlink %s" path
  else try Sys.remove path with Sys_error _ -> ()

let fsync_dir io dir =
  if ticking io then crashed "injected crash before directory fsync %s" dir
  else
    (* Some filesystems refuse fsync on a directory fd; durability of the
       rename is then up to the platform, as for every real database. *)
    match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
    | fd ->
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ()

(* tmp + fsync + rename + dir fsync: the file at [path] is either the
   old content or the complete new content, never a prefix. *)
let atomic_write io ~path contents =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      write io fd contents;
      fsync io fd);
  rename io tmp path;
  fsync_dir io (Filename.dirname path)

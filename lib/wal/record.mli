(** Serialization of the durability layer's payloads: WAL records
    (sequence number + staged op + changeset + cluster extras), shadow
    snapshots, the schema graph, and the checkpoint sidecar.

    The byte discipline is the same zigzag-LEB128 one as
    {!Ppfx_minidb.Codec}; XML fragments are encoded structurally (tag /
    attrs / interleaved children), {e not} through the printer/parser
    pair, so whitespace-only text nodes round-trip exactly. *)

module Graph = Ppfx_schema.Graph
module Update = Ppfx_update.Update

exception Corrupt of string
(** Malformed bytes. A record payload that passed its frame CRC but
    fails to decode is treated by recovery exactly like a torn frame. *)

type extras = {
  partition_counts : int list;  (** per-shard element row counts *)
  boundary_fks : string list;  (** grown boundary foreign-key columns *)
}
(** Cluster routing state; persisted with every full-store record so a
    recovery at any point sees the boundary set and shard weights of the
    last acked commit. *)

type t = {
  r_seq : int;  (** commit sequence number, 1-based, monotone per store *)
  r_op : Update.op option;
      (** the staged operation — present on full stores, where replay
          re-stages it to rebuild the shadow deterministically *)
  r_inserts : bool;  (** replay flag for {!Update.commit} [~inserts] *)
  r_cs : Update.changeset;  (** the authoritative acked row changes *)
  r_extras : extras option;
}

val encode : t -> string
val decode : string -> t
(** Raises {!Corrupt}. *)

(** {2 Checkpoint sidecar} *)

type meta = {
  m_schema : Graph.t;
  m_partitioned : bool;  (** physical layout of the snapshot's fact tables *)
  m_shadow : Update.shadow option;  (** present on full stores *)
  m_extras : extras option;
}

val encode_meta : meta -> string

val decode_meta : string -> meta
(** Raises {!Corrupt}. The schema is rebuilt through {!Graph.Builder} in
    definition order, so vertex ids and [tag]/[tag_2] relation names come
    out identical to the original. *)

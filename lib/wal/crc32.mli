(** CRC-32 (IEEE 802.3, polynomial [0xEDB88320]) over strings, the frame
    checksum of the WAL and manifest formats. Values match every standard
    implementation (e.g. [zlib]'s [crc32]). *)

val digest : string -> int
(** CRC of the whole string, in [0, 0xFFFFFFFF]. *)

val update : int -> string -> int -> int -> int
(** [update crc s pos len] extends a running CRC over a substring;
    [update 0 s 0 (String.length s) = digest s]. *)

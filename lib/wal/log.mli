(** WAL segment framing: the file starts with the magic ["PPFXLOG1"],
    followed by records framed as [u32le length][u32le crc32][payload] —
    the same length-prefix discipline as the wire protocol, with a
    checksum so a torn or bit-flipped tail is detected, not replayed. *)

val magic : string

val frame : string -> string
(** The framed bytes of one payload: 8-byte header + payload. *)

val max_frame : int
(** Upper bound a frame length field may claim; larger is corruption. *)

type scan = {
  frames : (string * int) list;
      (** payloads in order, each with the file offset just past its frame *)
  valid_end : int;  (** end of the last whole, CRC-valid frame *)
  file_len : int;  (** [file_len - valid_end] is the torn/corrupt tail *)
}

val scan_string : string -> scan
(** Scan stops (without raising) at the first incomplete frame, bad
    length, or CRC mismatch; a missing or bad magic yields no frames. *)

val scan_file : string -> scan
(** Raises [Sys_error] if the file cannot be read. *)

(** The checkpoint manifest: one small, CRC-framed, atomically-replaced
    file per store directory naming the current checkpoint generation.
    Because it is only ever replaced via temp-file + rename {e after} the
    generation's snapshot and fresh segment are durable, recovery can
    trust it unconditionally: a crash mid-checkpoint leaves the previous
    manifest (and the previous, still-complete generation) in place. *)

val file : string
(** ["MANIFEST"]. *)

type t = {
  gen : int;  (** current checkpoint generation *)
  base_seq : int;  (** last commit seq included in the checkpoint *)
  clean : bool;
      (** written on clean shutdown, after a final checkpoint rotated the
          log: the segment is empty and recovery skips the replay scan *)
}

val write : Io.t -> dir:string -> t -> unit
val read : dir:string -> (t, string) result

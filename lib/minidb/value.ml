type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bin of string

type ty = Tint | Tfloat | Tstr | Tbin

let type_of = function
  | Null -> None
  | Int _ -> Some Tint
  | Float _ -> Some Tfloat
  | Str _ -> Some Tstr
  | Bin _ -> Some Tbin

let rank = function Null -> 0 | Int _ | Float _ -> 1 | Str _ -> 2 | Bin _ -> 3

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Str s -> float_of_string_opt (String.trim s)
  | Null | Bin _ -> None

let compare_total a b =
  match a, b with
  | Null, Null -> 0
  | Int x, Int y -> Int.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Bin x, Bin y -> String.compare x y
  | (Null | Int _ | Float _ | Str _ | Bin _), _ -> Int.compare (rank a) (rank b)

let equal a b = compare_total a b = 0

let compare_sql a b =
  match a, b with
  | Null, _ | _, Null -> None
  | Int x, Int y -> Some (Int.compare x y)
  | (Int _ | Float _), (Int _ | Float _ | Str _)
  | Str _, (Int _ | Float _) ->
    (match to_float a, to_float b with
     | Some x, Some y -> Some (Float.compare x y)
     | None, _ | _, None -> None)
  | Str x, Str y -> Some (String.compare x y)
  | Bin x, (Bin y | Str y) | Str x, Bin y -> Some (String.compare x y)
  | Bin _, (Int _ | Float _) | (Int _ | Float _), Bin _ -> None

(* The one canonical numeric rendering, shared by [concat], [text] and the
   engine's REGEXP_LIKE operand coercion. Matches the XPath evaluator's
   number-to-string convention (and Oracle's TO_CHAR on integral values):
   integral floats print without a trailing dot — [string_of_float 3.0]
   would render "3.", which no regex written against TO_CHAR output
   expects to see. *)
let float_text f =
  if Float.is_nan f then "NaN"
  else if Float.is_integer f && Float.abs f < 1e15 then
    string_of_int (int_of_float f)
  else string_of_float f

let text = function
  | Null -> None
  | Int i -> Some (string_of_int i)
  | Float f -> Some (float_text f)
  | Str s | Bin s -> Some s

let concat a b =
  match a, b with
  | Null, _ | _, Null -> Null
  | (Int _ | Float _ | Str _ | Bin _), (Int _ | Float _ | Str _ | Bin _) ->
    let s = function
      | Int i -> string_of_int i
      | Float f -> float_text f
      | Str s | Bin s -> s
      | Null -> assert false
    in
    let binary = function Bin _ -> true | Null | Int _ | Float _ | Str _ -> false in
    if binary a || binary b then Bin (s a ^ s b) else Str (s a ^ s b)

let pp ppf = function
  | Null -> Format.pp_print_string ppf "NULL"
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "'%s'" (String.concat "''" (String.split_on_char '\'' s))
  | Bin b ->
    Format.pp_print_string ppf "x'";
    String.iter (fun c -> Format.fprintf ppf "%02X" (Char.code c)) b;
    Format.pp_print_string ppf "'"

let to_string v = Format.asprintf "%a" pp v

let pp_ty ppf ty =
  Format.pp_print_string ppf
    (match ty with
     | Tint -> "INTEGER"
     | Tfloat -> "FLOAT"
     | Tstr -> "VARCHAR"
     | Tbin -> "RAW")

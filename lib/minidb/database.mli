(** The database catalog: a set of named tables, plus the write-path
    machinery prepared plans revalidate against: a bounded commit log
    (per-table version deltas + changed pathids) and a store-wide
    reader/writer snapshot lock. *)

type t

type commit = {
  seq : int;
  touched : (string * int * int) list;
      (** table name, version before the commit, version after *)
  pathids : int list;
      (** query-visible pathids whose rows or values this commit changed *)
}

val create : unit -> t

val create_table :
  ?partition:Table.partition_spec -> t -> name:string -> columns:Table.column list -> Table.t
(** Raises [Invalid_argument] if the name is taken. [?partition] declares
    the table path-partitioned (see {!Table.partition_spec}). *)

val table : t -> string -> Table.t
(** Raises [Not_found]. *)

val table_opt : t -> string -> Table.t option

val tables : t -> Table.t list
(** In creation order. *)

val total_rows : t -> int

val epoch : t -> int
(** Catalog-wide modification counter: moves whenever a table is created
    or any table's contents or indexes change (see {!Table.version}).
    Prepared plans ({!Engine.prepare}) and service-layer caches record the
    epoch at compile time; an unchanged epoch is the fast path, and a
    moved epoch triggers the fine-grained {!delta_pathids} check before
    falling back to re-planning. *)

val with_read : t -> (unit -> 'a) -> 'a
(** Run [f] holding the read side of the snapshot lock: any number of
    readers, excluded from {!with_write} commits, writer-preferring so
    queries cannot starve a commit. Plan execution runs under this. *)

val with_write : t -> (unit -> 'a) -> 'a
(** Run [f] holding the write side: exclusive against readers and other
    writers. Update commits run under this, so a reader sees the store
    entirely before or entirely after a commit, never mid-commit. *)

val record_commit : t -> touched:(string * int * int) list -> pathids:int list -> int
(** Append a commit to the log (bounded; oldest entries drop off) and
    return its sequence number. [touched] must carry each mutated table's
    version as observed immediately before and after the commit's writes. *)

val commit_log : t -> commit list
(** Oldest first. For diagnostics and tests. *)

val log_capacity : int
(** Bound on {!commit_log}: when more commits than this accumulate the
    oldest drop off, and plans prepared before the log's horizon
    conservatively invalidate ({!delta_pathids} returns [None]). *)

val delta_pathids : t -> table:string -> from_version:int -> int list option
(** [delta_pathids t ~table ~from_version] explains how [table] moved
    from [from_version] to its current version using only logged commits:
    [Some pathids] is the union of changed-pathid sets along that chain
    ([Some []] when the version is unchanged); [None] means part of the
    delta is unlogged (bulk load, raw table mutation, log overflow) and
    the caller must treat the plan as invalid. *)

val pp_stats : Format.formatter -> t -> unit
(** Per-table row counts and indexes — a [\d+]-style catalog dump. *)

(** The database catalog: a set of named tables. *)

type t

val create : unit -> t

val create_table : t -> name:string -> columns:Table.column list -> Table.t
(** Raises [Invalid_argument] if the name is taken. *)

val table : t -> string -> Table.t
(** Raises [Not_found]. *)

val table_opt : t -> string -> Table.t option

val tables : t -> Table.t list
(** In creation order. *)

val total_rows : t -> int

val epoch : t -> int
(** Catalog-wide modification counter: moves whenever a table is created
    or any table's contents or indexes change (see {!Table.version}).
    Prepared plans ({!Engine.prepare}) and service-layer caches record the
    epoch at compile time and treat any later value as an invalidation
    signal. *)

val pp_stats : Format.formatter -> t -> unit
(** Per-table row counts and indexes — a [\d+]-style catalog dump. *)

type t = {
  by_name : (string, Table.t) Hashtbl.t;
  mutable ordered : Table.t list;  (** reverse creation order *)
}

let create () = { by_name = Hashtbl.create 16; ordered = [] }

let create_table t ~name ~columns =
  if Hashtbl.mem t.by_name name then
    invalid_arg (Printf.sprintf "Database.create_table: table %s already exists" name);
  let table = Table.create ~name ~columns in
  Hashtbl.add t.by_name name table;
  t.ordered <- table :: t.ordered;
  table

let table t name =
  match Hashtbl.find_opt t.by_name name with
  | Some tbl -> tbl
  | None -> raise Not_found

let table_opt t name = Hashtbl.find_opt t.by_name name

let tables t = List.rev t.ordered

let total_rows t = List.fold_left (fun acc tbl -> acc + Table.row_count tbl) 0 (tables t)

let epoch t =
  (* Table creation and every per-table modification both move the epoch,
     so any change a prepared plan could observe changes the value. *)
  List.fold_left (fun acc tbl -> acc + Table.version tbl) (List.length t.ordered) t.ordered

let pp_stats ppf t =
  List.iter
    (fun tbl ->
      Format.fprintf ppf "%-24s %8d rows" (Table.name tbl) (Table.row_count tbl);
      let idx = Table.indexes tbl in
      if idx <> [] then
        Format.fprintf ppf "  indexes: %s"
          (String.concat ", "
             (List.map (fun (cols, _) -> "(" ^ String.concat "," cols ^ ")") idx));
      Format.fprintf ppf "@.")
    (tables t)

type commit = {
  seq : int;
  touched : (string * int * int) list;
      (** table name, version before, version after *)
  pathids : int list;  (** query-visible pathids changed by this commit *)
}

type t = {
  by_name : (string, Table.t) Hashtbl.t;
  mutable ordered : Table.t list;  (** reverse creation order *)
  mutable log : commit list;  (** newest first, bounded *)
  mutable next_seq : int;
  lock : Mutex.t;
  can_read : Condition.t;
  can_write : Condition.t;
  mutable readers : int;
  mutable writer : bool;
  mutable writers_waiting : int;
}

let log_capacity = 512

let create () =
  {
    by_name = Hashtbl.create 16;
    ordered = [];
    log = [];
    next_seq = 1;
    lock = Mutex.create ();
    can_read = Condition.create ();
    can_write = Condition.create ();
    readers = 0;
    writer = false;
    writers_waiting = 0;
  }

let create_table ?partition t ~name ~columns =
  if Hashtbl.mem t.by_name name then
    invalid_arg (Printf.sprintf "Database.create_table: table %s already exists" name);
  let table = Table.create ?partition ~name ~columns () in
  Hashtbl.add t.by_name name table;
  t.ordered <- table :: t.ordered;
  table

let table t name =
  match Hashtbl.find_opt t.by_name name with
  | Some tbl -> tbl
  | None -> raise Not_found

let table_opt t name = Hashtbl.find_opt t.by_name name

let tables t = List.rev t.ordered

let total_rows t = List.fold_left (fun acc tbl -> acc + Table.row_count tbl) 0 (tables t)

let epoch t =
  (* Table creation and every per-table modification both move the epoch,
     so any change a prepared plan could observe changes the value. *)
  List.fold_left (fun acc tbl -> acc + Table.version tbl) (List.length t.ordered) t.ordered

(* ------------------------------------------------------------------ *)
(* Snapshot lock: many readers or one writer. Writers get preference   *)
(* so a stream of queries cannot starve a commit.                      *)
(* ------------------------------------------------------------------ *)

let with_read t f =
  Mutex.lock t.lock;
  while t.writer || t.writers_waiting > 0 do
    Condition.wait t.can_read t.lock
  done;
  t.readers <- t.readers + 1;
  Mutex.unlock t.lock;
  let finish () =
    Mutex.lock t.lock;
    t.readers <- t.readers - 1;
    if t.readers = 0 then Condition.signal t.can_write;
    Mutex.unlock t.lock
  in
  match f () with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

let with_write t f =
  Mutex.lock t.lock;
  t.writers_waiting <- t.writers_waiting + 1;
  while t.writer || t.readers > 0 do
    Condition.wait t.can_write t.lock
  done;
  t.writers_waiting <- t.writers_waiting - 1;
  t.writer <- true;
  Mutex.unlock t.lock;
  let finish () =
    Mutex.lock t.lock;
    t.writer <- false;
    if t.writers_waiting > 0 then Condition.signal t.can_write
    else Condition.broadcast t.can_read;
    Mutex.unlock t.lock
  in
  match f () with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

(* ------------------------------------------------------------------ *)
(* Commit log: each logged commit explains a table-version delta with  *)
(* the set of pathids it changed, so prepared plans whose pathid       *)
(* footprint is disjoint from everything that happened since compile   *)
(* can keep running. Unlogged writes (bulk loads, raw Table mutation)  *)
(* leave a gap in the version chain and fall back to conservative      *)
(* whole-plan invalidation.                                            *)
(* ------------------------------------------------------------------ *)

let record_commit t ~touched ~pathids =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let commit = { seq; touched; pathids } in
  let rec trim n = function
    | [] -> []
    | _ when n >= log_capacity - 1 -> []
    | c :: rest -> c :: trim (n + 1) rest
  in
  t.log <- commit :: trim 0 t.log;
  seq

let commit_log t = List.rev t.log

let delta_pathids t ~table ~from_version =
  let tbl =
    match table_opt t table with None -> None | Some tbl -> Some (Table.version tbl)
  in
  match tbl with
  | None -> None
  | Some current when current = from_version -> Some []
  | Some current ->
    (* Walk the log oldest-to-newest, chaining before/after versions for
       this table from [from_version]. The delta is explained iff logged
       commits connect [from_version] to the current version with no gap;
       commits that predate [from_version] are skipped, anything else that
       breaks the chain means an unlogged write happened in between. *)
    let relevant =
      List.filter_map
        (fun { touched; pathids; _ } ->
          match List.find_opt (fun (n, _, _) -> n = table) touched with
          | None -> None
          | Some (_, before, after) when before >= from_version ->
            Some (before, after, pathids)
          | Some _ -> None)
        (List.rev t.log)
    in
    let rec chain v acc = function
      | [] -> if v = current then Some acc else None
      | (before, after, pathids) :: rest ->
        if before = v then chain after (List.rev_append pathids acc) rest
        else None
    in
    chain from_version [] relevant

let pp_stats ppf t =
  List.iter
    (fun tbl ->
      Format.fprintf ppf "%-24s %8d rows" (Table.name tbl) (Table.row_count tbl);
      let idx = Table.indexes tbl in
      if idx <> [] then
        Format.fprintf ppf "  indexes: %s"
          (String.concat ", "
             (List.map (fun (cols, _) -> "(" ^ String.concat "," cols ^ ")") idx));
      Format.fprintf ppf "@.")
    (tables t)

exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun m -> raise (Corrupt m)) fmt

(* DB2 added the partition-spec bytes after the column list (PR 8); DB3
   appends the content-index spec after the btree index list. Older
   files are not readable. *)
let magic = "PPFXDB3"

(* --- byte sinks and sources ----------------------------------------- *)

(* The same encoder/decoder serves files (the shred CLI, snapshots) and
   in-memory strings (the WAL layer stages snapshot images in memory so
   its fault-injection Io owns every durable byte; the fuzz tests mangle
   images without touching disk). *)

type sink = { put_byte : int -> unit; put_string : string -> unit }

let sink_of_channel oc =
  { put_byte = output_byte oc; put_string = output_string oc }

let sink_of_buffer b =
  {
    put_byte = (fun n -> Buffer.add_char b (Char.chr (n land 0xFF)));
    put_string = Buffer.add_string b;
  }

type src = {
  get_byte : unit -> int;  (** raises [End_of_file] when exhausted *)
  get_string : int -> string;  (** exactly [n] bytes or [End_of_file] *)
}

let src_of_channel ic =
  { get_byte = (fun () -> input_byte ic); get_string = really_input_string ic }

let src_of_string s =
  let pos = ref 0 in
  let get_byte () =
    if !pos >= String.length s then raise End_of_file
    else begin
      let c = Char.code s.[!pos] in
      incr pos;
      c
    end
  in
  let get_string n =
    if n < 0 || !pos + n > String.length s then raise End_of_file
    else begin
      let r = String.sub s !pos n in
      pos := !pos + n;
      r
    end
  in
  { get_byte; get_string }

(* --- primitive writers --------------------------------------------- *)

let write_varint sk n =
  (* unsigned LEB128; negative ints are zigzag-encoded first *)
  let n = ref ((n lsl 1) lxor (n asr (Sys.int_size - 1))) in
  let continue_ = ref true in
  while !continue_ do
    let byte = !n land 0x7F in
    n := !n lsr 7;
    if !n = 0 then begin
      sk.put_byte byte;
      continue_ := false
    end
    else sk.put_byte (byte lor 0x80)
  done

let read_varint src =
  let rec go shift acc =
    if shift > Sys.int_size then corrupt "varint too long";
    let byte = src.get_byte () in
    let acc = acc lor ((byte land 0x7F) lsl shift) in
    if byte land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  let z = go 0 0 in
  (z lsr 1) lxor (-(z land 1))

let write_string sk s =
  write_varint sk (String.length s);
  sk.put_string s

let read_string src =
  let n = read_varint src in
  if n < 0 then corrupt "negative string length";
  src.get_string n

(* --- values --------------------------------------------------------- *)

let write_value sk (v : Value.t) =
  match v with
  | Value.Null -> sk.put_byte 0
  | Value.Int i ->
    sk.put_byte 1;
    write_varint sk i
  | Value.Float f ->
    sk.put_byte 2;
    let bits = Int64.bits_of_float f in
    for k = 0 to 7 do
      sk.put_byte (Int64.to_int (Int64.shift_right_logical bits (k * 8)) land 0xFF)
    done
  | Value.Str s ->
    sk.put_byte 3;
    write_string sk s
  | Value.Bin b ->
    sk.put_byte 4;
    write_string sk b

let read_value src : Value.t =
  match src.get_byte () with
  | 0 -> Value.Null
  | 1 -> Value.Int (read_varint src)
  | 2 ->
    let bits = ref 0L in
    for k = 0 to 7 do
      bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (src.get_byte ())) (k * 8))
    done;
    Value.Float (Int64.float_of_bits !bits)
  | 3 -> Value.Str (read_string src)
  | 4 -> Value.Bin (read_string src)
  | tag -> corrupt "unknown value tag %d" tag

let ty_code = function
  | Value.Tint -> 0
  | Value.Tfloat -> 1
  | Value.Tstr -> 2
  | Value.Tbin -> 3

let ty_of_code = function
  | 0 -> Value.Tint
  | 1 -> Value.Tfloat
  | 2 -> Value.Tstr
  | 3 -> Value.Tbin
  | c -> corrupt "unknown type code %d" c

(* --- tables and databases ------------------------------------------- *)

let write_table sk table =
  write_string sk (Table.name table);
  let columns = Table.columns table in
  write_varint sk (List.length columns);
  List.iter
    (fun (c : Table.column) ->
      write_string sk c.Table.name;
      sk.put_byte (ty_code c.Table.ty))
    columns;
  (match Table.partition_spec table with
   | None -> sk.put_byte 0
   | Some spec ->
     sk.put_byte 1;
     write_string sk spec.Table.part_col;
     write_string sk spec.Table.part_sort);
  write_varint sk (Table.live_count table);
  Table.iter_rows (fun _ row -> Array.iter (write_value sk) row) table;
  let indexes = Table.indexes table in
  write_varint sk (List.length indexes);
  List.iter
    (fun (cols, _) ->
      write_varint sk (List.length cols);
      List.iter (write_string sk) cols)
    indexes;
  (* Content-index spec only: postings are rebuilt from the rows on
     load, like the btrees and partition segments. *)
  let content = Table.content_indexes table in
  write_varint sk (List.length content);
  List.iter
    (fun (col, kind) ->
      write_string sk col;
      sk.put_byte (match kind with Table.Token -> 0 | Table.Trigram -> 1))
    content

let read_table db src =
  let name = read_string src in
  let ncols = read_varint src in
  if ncols <= 0 then corrupt "table %s has no columns" name;
  let columns =
    List.init ncols (fun _ ->
        let cname = read_string src in
        let ty = ty_of_code (src.get_byte ()) in
        { Table.name = cname; ty })
  in
  let has_column c = List.exists (fun (col : Table.column) -> col.Table.name = c) columns in
  let partition =
    match src.get_byte () with
    | 0 -> None
    | 1 ->
      let part_col = read_string src in
      let part_sort = read_string src in
      if not (has_column part_col) then
        corrupt "table %s: partition column %s not in the column list" name part_col;
      if not (has_column part_sort) then
        corrupt "table %s: partition sort column %s not in the column list" name
          part_sort;
      Some { Table.part_col; part_sort }
    | tag -> corrupt "table %s: unknown partition tag %d" name tag
  in
  let table = Database.create_table ?partition db ~name ~columns in
  let nrows = read_varint src in
  if nrows < 0 then corrupt "table %s has negative row count" name;
  for _ = 1 to nrows do
    let row = Array.init ncols (fun _ -> read_value src) in
    ignore (Table.insert table row)
  done;
  let nindexes = read_varint src in
  if nindexes < 0 then corrupt "table %s has negative index count" name;
  for _ = 1 to nindexes do
    let n = read_varint src in
    if n <= 0 then corrupt "table %s: index with no columns" name;
    let cols = List.init n (fun _ -> read_string src) in
    List.iter
      (fun c ->
        if not (has_column c) then
          corrupt "table %s: index on unknown column %s" name c)
      cols;
    Table.create_index table cols
  done;
  let ncontent = read_varint src in
  if ncontent < 0 then corrupt "table %s has negative content index count" name;
  for _ = 1 to ncontent do
    let col = read_string src in
    if not (has_column col) then
      corrupt "table %s: content index on unknown column %s" name col;
    let kind =
      match src.get_byte () with
      | 0 -> Table.Token
      | 1 -> Table.Trigram
      | tag -> corrupt "table %s: unknown content index kind %d" name tag
    in
    match Table.add_content_index table ~col ~kind with
    | () -> ()
    | exception Invalid_argument msg ->
      corrupt "table %s: bad content index on %s: %s" name col msg
  done

let write_database_sink sk db =
  sk.put_string magic;
  let tables = Database.tables db in
  write_varint sk (List.length tables);
  List.iter (write_table sk) tables

let read_database_src src =
  let m = try src.get_string (String.length magic) with End_of_file -> "" in
  if not (String.equal m magic) then corrupt "bad magic (not a ppfx database file)";
  let db = Database.create () in
  (try
     let ntables = read_varint src in
     if ntables < 0 then corrupt "negative table count";
     for _ = 1 to ntables do
       read_table db src
     done
   with
   | End_of_file -> corrupt "truncated database file"
   | Invalid_argument msg -> corrupt "invalid content: %s" msg
   | Not_found -> corrupt "invalid content: dangling reference");
  db

let write_database oc db = write_database_sink (sink_of_channel oc) db
let read_database ic = read_database_src (src_of_channel ic)

let database_to_string db =
  let b = Buffer.create 4096 in
  write_database_sink (sink_of_buffer b) db;
  Buffer.contents b

let database_of_string s = read_database_src (src_of_string s)

let save path db =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_database oc db)

let load path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_database ic)

(* --- typed load ----------------------------------------------------- *)

type error = Io_error of string | Corrupted of string

let error_to_string = function
  | Io_error m -> "io error: " ^ m
  | Corrupted m -> "corrupt store: " ^ m

let load_result path =
  match load path with
  | db -> Ok db
  | exception Corrupt msg -> Error (Corrupted msg)
  | exception Sys_error msg -> Error (Io_error msg)
  | exception End_of_file -> Error (Corrupted "truncated database file")

let of_string_result s =
  match database_of_string s with
  | db -> Ok db
  | exception Corrupt msg -> Error (Corrupted msg)
  | exception End_of_file -> Error (Corrupted "truncated database file")

exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun m -> raise (Corrupt m)) fmt

(* DB2 added the partition-spec bytes after the column list (PR 8); DB1
   files predate partitioned layouts and are not readable. *)
let magic = "PPFXDB2"

(* --- primitive writers --------------------------------------------- *)

let write_varint oc n =
  (* unsigned LEB128; negative ints are zigzag-encoded first *)
  let n = ref ((n lsl 1) lxor (n asr (Sys.int_size - 1))) in
  let continue_ = ref true in
  while !continue_ do
    let byte = !n land 0x7F in
    n := !n lsr 7;
    if !n = 0 then begin
      output_byte oc byte;
      continue_ := false
    end
    else output_byte oc (byte lor 0x80)
  done

let read_varint ic =
  let rec go shift acc =
    let byte = input_byte ic in
    let acc = acc lor ((byte land 0x7F) lsl shift) in
    if byte land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  let z = go 0 0 in
  (z lsr 1) lxor (-(z land 1))

let write_string oc s =
  write_varint oc (String.length s);
  output_string oc s

let read_string ic =
  let n = read_varint ic in
  if n < 0 then corrupt "negative string length";
  really_input_string ic n

(* --- values --------------------------------------------------------- *)

let write_value oc (v : Value.t) =
  match v with
  | Value.Null -> output_byte oc 0
  | Value.Int i ->
    output_byte oc 1;
    write_varint oc i
  | Value.Float f ->
    output_byte oc 2;
    let bits = Int64.bits_of_float f in
    for k = 0 to 7 do
      output_byte oc (Int64.to_int (Int64.shift_right_logical bits (k * 8)) land 0xFF)
    done
  | Value.Str s ->
    output_byte oc 3;
    write_string oc s
  | Value.Bin b ->
    output_byte oc 4;
    write_string oc b

let read_value ic : Value.t =
  match input_byte ic with
  | 0 -> Value.Null
  | 1 -> Value.Int (read_varint ic)
  | 2 ->
    let bits = ref 0L in
    for k = 0 to 7 do
      bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (input_byte ic)) (k * 8))
    done;
    Value.Float (Int64.float_of_bits !bits)
  | 3 -> Value.Str (read_string ic)
  | 4 -> Value.Bin (read_string ic)
  | tag -> corrupt "unknown value tag %d" tag

let ty_code = function
  | Value.Tint -> 0
  | Value.Tfloat -> 1
  | Value.Tstr -> 2
  | Value.Tbin -> 3

let ty_of_code = function
  | 0 -> Value.Tint
  | 1 -> Value.Tfloat
  | 2 -> Value.Tstr
  | 3 -> Value.Tbin
  | c -> corrupt "unknown type code %d" c

(* --- tables and databases ------------------------------------------- *)

let write_table oc table =
  write_string oc (Table.name table);
  let columns = Table.columns table in
  write_varint oc (List.length columns);
  List.iter
    (fun (c : Table.column) ->
      write_string oc c.Table.name;
      output_byte oc (ty_code c.Table.ty))
    columns;
  (match Table.partition_spec table with
   | None -> output_byte oc 0
   | Some spec ->
     output_byte oc 1;
     write_string oc spec.Table.part_col;
     write_string oc spec.Table.part_sort);
  write_varint oc (Table.live_count table);
  Table.iter_rows (fun _ row -> Array.iter (write_value oc) row) table;
  let indexes = Table.indexes table in
  write_varint oc (List.length indexes);
  List.iter
    (fun (cols, _) ->
      write_varint oc (List.length cols);
      List.iter (write_string oc) cols)
    indexes

let read_table db ic =
  let name = read_string ic in
  let ncols = read_varint ic in
  if ncols <= 0 then corrupt "table %s has no columns" name;
  let columns =
    List.init ncols (fun _ ->
        let cname = read_string ic in
        let ty = ty_of_code (input_byte ic) in
        { Table.name = cname; ty })
  in
  let partition =
    match input_byte ic with
    | 0 -> None
    | 1 ->
      let part_col = read_string ic in
      let part_sort = read_string ic in
      Some { Table.part_col; part_sort }
    | tag -> corrupt "table %s: unknown partition tag %d" name tag
  in
  let table = Database.create_table ?partition db ~name ~columns in
  let nrows = read_varint ic in
  if nrows < 0 then corrupt "table %s has negative row count" name;
  for _ = 1 to nrows do
    let row = Array.init ncols (fun _ -> read_value ic) in
    ignore (Table.insert table row)
  done;
  let nindexes = read_varint ic in
  for _ = 1 to nindexes do
    let n = read_varint ic in
    let cols = List.init n (fun _ -> read_string ic) in
    Table.create_index table cols
  done;
  ()

let write_database oc db =
  output_string oc magic;
  let tables = Database.tables db in
  write_varint oc (List.length tables);
  List.iter (write_table oc) tables

let read_database ic =
  let m = try really_input_string ic (String.length magic) with End_of_file -> "" in
  if not (String.equal m magic) then corrupt "bad magic (not a ppfx database file)";
  let db = Database.create () in
  (try
     let ntables = read_varint ic in
     if ntables < 0 then corrupt "negative table count";
     for _ = 1 to ntables do
       read_table db ic
     done
   with
   | End_of_file -> corrupt "truncated database file"
   | Invalid_argument msg -> corrupt "invalid content: %s" msg);
  db

let save path db =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_database oc db)

let load path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_database ic)

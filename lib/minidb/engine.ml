type result = {
  columns : string list;
  rows : Value.t array list;
}

exception Runtime_error of string

let error fmt = Format.kasprintf (fun m -> raise (Runtime_error m)) fmt

(* A binding assigns a row to every alias slot; slot order is outer-query
   slots first, then the local aliases in plan order. *)
type binding = Value.t array array

type value_fn = binding -> Value.t

type pred_fn = binding -> bool option

(* Optimizer switches. The [force_*] variants exist for differential
   testing: they make the planner pick the operator over an available
   index path, so it is exercised even on queries where an index would
   win. *)
type opts = {
  semijoin_reduction : bool;
  hash_join : bool;
  force_hash_join : bool;
  merge_join : bool;
  force_merge_join : bool;
  content_probe : bool;
}

let default_opts =
  {
    semijoin_reduction = true;
    hash_join = true;
    force_hash_join = false;
    merge_join = true;
    force_merge_join = false;
    content_probe = true;
  }

(* Operator-level counters, shared by every operator compiled under one
   ctx (including sub-query plans). Mutable on purpose: they sit in the
   innermost loops. A plan is executed by one domain at a time (the
   cluster hands each shard plan to a single worker), so plain mutation
   is safe. *)
type counters = {
  mutable c_scanned : int;
  mutable c_probed : int;
  mutable c_emitted : int;
  mutable c_regex_plan_evals : int;
  mutable c_regex_exec_evals : int;
  mutable c_dfa_execs : int;
  mutable c_hash_builds : int;
  mutable c_reductions : int;
  mutable c_merge_probes : int;
  mutable c_merge_steps : int;
  mutable c_merge_backtracks : int;
  mutable c_parts_scanned : int;
  mutable c_parts_pruned : int;
  mutable c_content_probes : int;
  mutable c_content_candidates : int;
  mutable c_content_verified : int;
  mutable c_peak_bytes : int;
}

let counters_create () =
  {
    c_scanned = 0;
    c_probed = 0;
    c_emitted = 0;
    c_regex_plan_evals = 0;
    c_regex_exec_evals = 0;
    c_dfa_execs = 0;
    c_hash_builds = 0;
    c_reductions = 0;
    c_merge_probes = 0;
    c_merge_steps = 0;
    c_merge_backtracks = 0;
    c_parts_scanned = 0;
    c_parts_pruned = 0;
    c_content_probes = 0;
    c_content_candidates = 0;
    c_content_verified = 0;
    c_peak_bytes = 0;
  }

type exec_stats = {
  rows_scanned : int;
  rows_probed : int;
  rows_emitted : int;
  regex_plan_evals : int;
  regex_exec_evals : int;
  dfa_execs : int;
  hash_builds : int;
  reductions : int;
  merge_probes : int;
  merge_steps : int;
  merge_backtracks : int;
  partitions_scanned : int;
  partitions_pruned : int;
  content_probes : int;
  content_candidates : int;
  content_verified : int;
  peak_bytes : int;
}

let stats_of c =
  {
    rows_scanned = c.c_scanned;
    rows_probed = c.c_probed;
    rows_emitted = c.c_emitted;
    regex_plan_evals = c.c_regex_plan_evals;
    regex_exec_evals = c.c_regex_exec_evals;
    dfa_execs = c.c_dfa_execs;
    hash_builds = c.c_hash_builds;
    reductions = c.c_reductions;
    merge_probes = c.c_merge_probes;
    merge_steps = c.c_merge_steps;
    merge_backtracks = c.c_merge_backtracks;
    partitions_scanned = c.c_parts_scanned;
    partitions_pruned = c.c_parts_pruned;
    content_probes = c.c_content_probes;
    content_candidates = c.c_content_candidates;
    content_verified = c.c_content_verified;
    peak_bytes = c.c_peak_bytes;
  }

let stats_zero =
  {
    rows_scanned = 0;
    rows_probed = 0;
    rows_emitted = 0;
    regex_plan_evals = 0;
    regex_exec_evals = 0;
    dfa_execs = 0;
    hash_builds = 0;
    reductions = 0;
    merge_probes = 0;
    merge_steps = 0;
    merge_backtracks = 0;
    partitions_scanned = 0;
    partitions_pruned = 0;
    content_probes = 0;
    content_candidates = 0;
    content_verified = 0;
    peak_bytes = 0;
  }

let stats_add a b =
  {
    rows_scanned = a.rows_scanned + b.rows_scanned;
    rows_probed = a.rows_probed + b.rows_probed;
    rows_emitted = a.rows_emitted + b.rows_emitted;
    regex_plan_evals = a.regex_plan_evals + b.regex_plan_evals;
    regex_exec_evals = a.regex_exec_evals + b.regex_exec_evals;
    dfa_execs = a.dfa_execs + b.dfa_execs;
    hash_builds = a.hash_builds + b.hash_builds;
    reductions = a.reductions + b.reductions;
    merge_probes = a.merge_probes + b.merge_probes;
    merge_steps = a.merge_steps + b.merge_steps;
    merge_backtracks = a.merge_backtracks + b.merge_backtracks;
    partitions_scanned = a.partitions_scanned + b.partitions_scanned;
    partitions_pruned = a.partitions_pruned + b.partitions_pruned;
    content_probes = a.content_probes + b.content_probes;
    content_candidates = a.content_candidates + b.content_candidates;
    content_verified = a.content_verified + b.content_verified;
    peak_bytes = a.peak_bytes + b.peak_bytes;
  }

let stats_diff a b =
  {
    rows_scanned = a.rows_scanned - b.rows_scanned;
    rows_probed = a.rows_probed - b.rows_probed;
    rows_emitted = a.rows_emitted - b.rows_emitted;
    regex_plan_evals = a.regex_plan_evals - b.regex_plan_evals;
    regex_exec_evals = a.regex_exec_evals - b.regex_exec_evals;
    dfa_execs = a.dfa_execs - b.dfa_execs;
    hash_builds = a.hash_builds - b.hash_builds;
    reductions = a.reductions - b.reductions;
    merge_probes = a.merge_probes - b.merge_probes;
    merge_steps = a.merge_steps - b.merge_steps;
    merge_backtracks = a.merge_backtracks - b.merge_backtracks;
    partitions_scanned = a.partitions_scanned - b.partitions_scanned;
    partitions_pruned = a.partitions_pruned - b.partitions_pruned;
    content_probes = a.content_probes - b.content_probes;
    content_candidates = a.content_candidates - b.content_candidates;
    content_verified = a.content_verified - b.content_verified;
    peak_bytes = a.peak_bytes - b.peak_bytes;
  }

(* What a compiled plan depends on, per table. [Dep_paths] means every
   access the plan makes to the table is guarded by a pathid set probe
   on the given set, so a commit that only changed rows of other pathids
   cannot alter the plan's result; anything weaker is [Dep_all]. *)
type fp_dep = Dep_all | Dep_paths of (int, unit) Hashtbl.t

type fp_entry = { mutable fe_version : int; mutable fe_dep : fp_dep }

type ctx = {
  db : Database.t;
  slots : (string * Table.t) array;
  naive : bool;
  opts : opts;
  counters : counters;
  footprint : (string, fp_entry) Hashtbl.t;
      (** accumulated across every [plan_select] under one compile *)
  verdicts : (string * string, bool) Hashtbl.t;
      (** plan-time regex verdict memo, (pattern, path string) -> matched;
          shared across every reduction sweep of one compile (all UNION
          branches, sub-selects) so no statement evaluates a pattern more
          than once per distinct path *)
}

let fp_merge a b =
  match a, b with
  | Dep_all, _ | _, Dep_all -> Dep_all
  | Dep_paths sa, Dep_paths sb ->
    let u = Hashtbl.copy sa in
    Hashtbl.iter (fun k () -> Hashtbl.replace u k ()) sb;
    Dep_paths u

let footprint_add ctx table dep =
  let name = Table.name table in
  match Hashtbl.find_opt ctx.footprint name with
  | None ->
    Hashtbl.add ctx.footprint name { fe_version = Table.version table; fe_dep = dep }
  | Some e -> e.fe_dep <- fp_merge e.fe_dep dep

let slot_of ctx alias =
  (* Search from the end: inner FROM aliases shadow outer ones. *)
  let rec go i =
    if i < 0 then error "unknown alias %s" alias
    else if String.equal (fst ctx.slots.(i)) alias then i
    else go (i - 1)
  in
  go (Array.length ctx.slots - 1)

let column_slot ctx alias col =
  let slot = slot_of ctx alias in
  let table = snd ctx.slots.(slot) in
  match Table.column_index table col with
  | Some i -> slot, i
  | None -> error "table %s (alias %s) has no column %s" (Table.name table) alias col

(* Static type of an expression, when derivable; used to gate EXISTS
   decorrelation and hash joins on hash-compatible comparison types. *)
let rec static_ty ctx = function
  | Sql.Col (alias, col) ->
    let slot = slot_of ctx alias in
    Table.column_ty (snd ctx.slots.(slot)) col
  | Sql.Const v -> Value.type_of v
  | Sql.Concat (a, _) ->
    (match static_ty ctx a with
     | Some Value.Tbin -> Some Value.Tbin
     | Some _ | None -> Some Value.Tstr)
  | Sql.To_number _ -> Some Value.Tfloat
  | Sql.Arith _ -> Some Value.Tfloat
  | Sql.Length _ | Sql.Count_subquery _ -> Some Value.Tint
  | Sql.Cmp _ | Sql.Between _ | Sql.And _ | Sql.Or _ | Sql.Not _
  | Sql.Regexp_like _ | Sql.Exists _ | Sql.Is_not_null _ | Sql.Bool_const _ ->
    None

(* Canonical hash key for a value under a kind — shared by the hash-join
   operator and EXISTS decorrelation. Complete w.r.t. {!Value.compare_sql}
   on the gated type combinations: values equal under three-valued SQL
   comparison canonicalize to the same key, so a hash lookup can never
   miss a row the join would produce. [-0.] is folded into [0.] because
   the two compare equal but print differently. *)
let canon_key kind v =
  match kind, v with
  | _, Value.Null -> None
  | `Str, (Value.Str s | Value.Bin s) -> Some s
  | `Str, (Value.Int _ | Value.Float _) -> None
  | `Num, v ->
    (match Value.to_float v with
     | Some f -> Some (if f = 0.0 then "0." else string_of_float f)
     | None -> None)

(* A hash-join access: build an in-memory hash of the step's table keyed
   on [hp_col] (once, lazily, cached on the plan — sound under the same
   epoch guard that protects memoized EXISTS state), then probe it with
   the bound key expression per outer binding. *)
type hash_probe = {
  hp_table : Table.t;
  hp_col : string;
  hp_idx : int;
  hp_kind : [ `Str | `Num ];
  hp_key : value_fn;
  hp_build : (string, int list) Hashtbl.t option ref;
}

(* A Dewey sort-merge join access. The step's table is materialized once
   (lazily, cached on the plan under the epoch guard) as an array of
   (key ^ [mj_suffix], row id) pairs sorted bytewise on the suffixed key;
   each outer binding is then served by sliding a cursor shared across
   probes. When consecutive outer bindings present nondecreasing lower
   bounds — which the planner arranges by keeping the merge's outer
   inputs in Dewey order — every probe advances the cursor forward
   (merge steps); the band-join case, where an outer row's window starts
   inside its predecessor's (a descendant range opening before the
   ancestor's range closes), slides it back over a bounded window first
   (backtracks). The operator is correct for any outer order; order only
   buys the amortized O(1) repositioning. Keys are restricted to BINARY
   columns so that skipping non-string keys and bounds is exact (see
   {!choose_access}). *)
type merge_probe = {
  mj_table : Table.t;
  mj_key_col : string;
  mj_key_idx : int;
  mj_suffix : string;
  mj_lo : (value_fn * bool) option;  (* bound, inclusive? *)
  mj_hi : (value_fn * bool) option;
  mj_items : (string * int) array option ref;
  mj_cursor : int ref;
}

(* A pruned partition scan: the step's table is physically partitioned on
   the probed fk column (see {!Table.partition_spec}), so a plan-time
   pathid set resolves to the list of matching partitions and the scan
   k-way-merges just those segments. Each segment is kept sorted on the
   sort column (Dewey bytes), so emission is globally ascending on it —
   feeding merge joins and ORDER BY elision — and the partition invariant
   (every row in partition k has key k) makes the per-row set probe
   redundant: pruning does the filtering with zero per-row work. The
   matched-key list is fixed at plan time; that is sound under the plan's
   footprint ([Dep_paths] over the full matched pathid set), which
   invalidates the plan before any commit can grow, shrink or create a
   partition the scan should have seen. *)
type partition_scan = {
  ps_table : Table.t;
  ps_keys : int array;  (* matched partition keys, ascending *)
  ps_total : int;  (* partitions present at plan time *)
  ps_rows : int;  (* live rows under the matched keys at plan time *)
  ps_sort_col : string;
  ps_sort_idx : int;
}

(* A content-index probe: the REGEXP_LIKE conjuncts on this alias yielded
   required-literal groups that the table's token/trigram indexes resolved
   at plan time to a candidate row-id superset. The access emits only the
   candidates; the regex conjuncts stay in [st_filters] as the verify
   stage (through the shared frozen DFA). The candidate list is fixed at
   plan time, which is sound only under a [Dep_all] footprint on the
   table — any committed change to it invalidates the plan. *)
type content_probe = {
  cp_table : Table.t;
  cp_col : string;
  cp_kinds : string;  (* declared index kinds on the column, for EXPLAIN *)
  cp_groups : int;  (* literal groups probed *)
  cp_ids : int array;  (* candidate row ids, ascending *)
}

type access =
  [ `Scan
  | `Index_eq of Btree.t * value_fn array
  | `Index_range of
    Btree.t * value_fn array * (value_fn * bool) option * (value_fn * bool) option
  | `Index_order of Btree.t
  | `Prefix_lookup of Btree.t * value_fn * int array Lazy.t
  | `Hash_probe of hash_probe
  | `Merge_join of merge_probe
  | `Partition_scan of partition_scan
  | `Content_probe of content_probe ]

type step = {
  st_slot : int;
  st_table : Table.t;
  st_access : access;
  st_filters : pred_fn list;
  st_probe_labels : string list;
      (* the trailing [List.length st_probe_labels] entries of
         [st_filters] are pathid set probes, not residual conjuncts *)
  st_content : bool;
      (* the step is a content probe: bindings surviving the filters are
         verified candidates, counted in [c_content_verified] *)
}

(* One applied path-filter semi-join reduction (EXPLAIN reporting). *)
type reduction = {
  rd_dim_table : string;
  rd_dim_alias : string;
  rd_pattern : string;
  rd_fact_alias : string;
  rd_fact_col : string;
  rd_matched : int;
  rd_total : int;
}

(* The materialized pathid set a reduction produces, to be probed on the
   fact alias's column. *)
type probe_src = {
  pb_alias : string;
  pb_col : string;
  pb_set : (int, unit) Hashtbl.t;
  pb_label : string;
}

type planned = {
  pl_ctx : ctx;
  pl_env : int;
  pl_pre : pred_fn list;
  pl_steps : step list;
  pl_project : (value_fn * string) list;
  pl_distinct : bool;
  pl_order_by : value_fn list;
  pl_order_preserved : bool;
      (* the pipeline provably emits rows nondecreasing on [pl_order_by],
         so the final stable sort is the identity and is skipped *)
  pl_total : int;
  pl_reductions : reduction list;
}

(* First column of the index backed by [tree] in [table], if any. *)
let index_first_col table tree =
  List.find_map
    (fun (cols, tr) ->
      if tr == tree then match cols with c0 :: _ -> Some c0 | [] -> None
      else None)
    (Table.indexes table)

(* ------------------------------------------------------------------ *)
(* Path-filter semi-join reduction                                     *)
(* ------------------------------------------------------------------ *)

(* Detect the PPF shape the translator emits — a dimension alias [p]
   whose only uses are an integer equijoin [f.fcol = p.idcol] and a
   [REGEXP_LIKE(p.pcol, pat)] — evaluate the regex once per dimension row
   at plan time, and replace both conjuncts (and the join itself) with an
   O(1) integer set probe on [f.fcol].

   Soundness requires the dimension ids to be unique non-null integers:
   then each fact row joins at most one dimension row, so dropping the
   join preserves multiplicity exactly. Uniqueness is verified by the
   plan-time scan itself (the reduction is abandoned on a duplicate), and
   the verdict stays valid for the lifetime of the plan because plans are
   epoch-guarded. A NULL id never joins and a NULL path never matches
   REGEXP_LIKE, so skipping those rows is exact, not approximate. Both
   columns must be declared INTEGER — {!Table.insert} enforces declared
   types, so at runtime the probe only ever sees [Int] or [Null] and an
   exact int lookup suffices. *)
let reduce_path_filters ctx (sel : Sql.select) local_aliases conjuncts =
  let projections_free =
    List.concat_map (fun (e, _) -> Sql.free_aliases e) sel.Sql.projections
  in
  let order_free = List.concat_map Sql.free_aliases sel.Sql.order_by in
  let try_alias ((locals, conjs, probes, reds) as acc) (p, ptable) =
    if not (List.mem_assoc p locals) then acc
    else begin
      let mentioned, others =
        List.partition (fun c -> List.mem p (Sql.free_aliases c)) conjs
      in
      let classify_eq = function
        | Sql.Cmp (Sql.Eq, Sql.Col (a, ca), Sql.Col (b, cb)) ->
          if String.equal b p && not (String.equal a p) then Some (a, ca, cb)
          else if String.equal a p && not (String.equal b p) then Some (b, cb, ca)
          else None
        | _ -> None
      in
      let classify_re = function
        | Sql.Regexp_like (Sql.Col (q, pcol), pat) when String.equal q p ->
          Some (pcol, pat)
        | _ -> None
      in
      let pair =
        match mentioned with
        | [ c1; c2 ] ->
          (match classify_eq c1, classify_re c2 with
           | Some eq, Some re -> Some (eq, re)
           | _ ->
             (match classify_eq c2, classify_re c1 with
              | Some eq, Some re -> Some (eq, re)
              | _ -> None))
        | _ -> None
      in
      match pair with
      | None -> acc
      | Some ((f, fcol, idcol), (pcol, pat)) ->
        let p_used_elsewhere =
          List.mem p projections_free || List.mem p order_free
        in
        let ftable =
          match List.assoc_opt f locals with
          | Some t -> Some t
          | None ->
            let rec go i =
              if i < 0 then None
              else if String.equal (fst ctx.slots.(i)) f then Some (snd ctx.slots.(i))
              else go (i - 1)
            in
            go (Array.length ctx.slots - 1)
        in
        (match ftable with
         | None -> acc
         | Some ft ->
           let ok_types =
             Table.column_ty ft fcol = Some Value.Tint
             && Table.column_ty ptable idcol = Some Value.Tint
           in
           (match
              (if p_used_elsewhere || not ok_types then None
               else
                 match Table.column_index ptable pcol, Table.column_index ptable idcol with
                 | Some pci, Some ici -> Some (pci, ici)
                 | _ -> None)
            with
            | None -> acc
            | Some (pci, ici) ->
              let re =
                try Ppfx_regex.Regex.compile_cached pat
                with Ppfx_regex.Regex.Parse_error msg ->
                  error "invalid regular expression %S: %s" pat msg
              in
              let set = Hashtbl.create 64 in
              let seen = Hashtbl.create 64 in
              let total = ref 0 in
              let sound = ref true in
              (try
                 Table.iter_rows
                   (fun _ row ->
                     incr total;
                     ctx.counters.c_scanned <- ctx.counters.c_scanned + 1;
                     match row.(ici) with
                     | Value.Null -> ()
                     | Value.Int id ->
                       if Hashtbl.mem seen id then begin
                         sound := false;
                         raise Exit
                       end;
                       Hashtbl.add seen id ();
                       (match Value.text row.(pci) with
                        | None -> ()
                        | Some s ->
                          let verdict =
                            match Hashtbl.find_opt ctx.verdicts (pat, s) with
                            | Some v -> v
                            | None ->
                              ctx.counters.c_regex_plan_evals <-
                                ctx.counters.c_regex_plan_evals + 1;
                              let v = Ppfx_regex.Regex.search re s in
                              Hashtbl.add ctx.verdicts (pat, s) v;
                              v
                          in
                          if verdict then Hashtbl.replace set id ())
                     | Value.Float _ | Value.Str _ | Value.Bin _ ->
                       (* declared INTEGER, so unreachable; bail rather
                          than guess at coercion semantics *)
                       sound := false;
                       raise Exit)
                   ptable
               with Exit -> ());
              if not !sound then acc
              else begin
                ctx.counters.c_reductions <- ctx.counters.c_reductions + 1;
                ctx.counters.c_peak_bytes <-
                  ctx.counters.c_peak_bytes + (32 * Hashtbl.length set) + 64;
                let matched = Hashtbl.length set in
                let label =
                  Printf.sprintf "pathid set probe (%d of %d paths)" matched !total
                in
                let pb =
                  { pb_alias = f; pb_col = fcol; pb_set = set; pb_label = label }
                in
                let rd =
                  {
                    rd_dim_table = Table.name ptable;
                    rd_dim_alias = p;
                    rd_pattern = pat;
                    rd_fact_alias = f;
                    rd_fact_col = fcol;
                    rd_matched = matched;
                    rd_total = !total;
                  }
                in
                ( List.filter (fun (a, _) -> not (String.equal a p)) locals,
                  others,
                  pb :: probes,
                  rd :: reds )
              end))
    end
  in
  List.fold_left try_alias (local_aliases, conjuncts, [], []) local_aliases

(* ------------------------------------------------------------------ *)
(* Access execution                                                    *)
(* ------------------------------------------------------------------ *)

let iter_access counters table (access : access) (bind : binding) (f : int -> unit) =
  let f id =
    counters.c_scanned <- counters.c_scanned + 1;
    f id
  in
  match access with
  | `Scan -> Table.iter_rows (fun id _ -> f id) table
  | `Content_probe cp ->
    counters.c_content_probes <- counters.c_content_probes + 1;
    counters.c_content_candidates <-
      counters.c_content_candidates + Array.length cp.cp_ids;
    Array.iter f cp.cp_ids
  | `Partition_scan ps ->
    counters.c_parts_scanned <- counters.c_parts_scanned + Array.length ps.ps_keys;
    counters.c_parts_pruned <-
      counters.c_parts_pruned + max 0 (ps.ps_total - Array.length ps.ps_keys);
    let n = Array.length ps.ps_keys in
    if n = 1 then begin
      let ids, len = Table.partition_view ps.ps_table ps.ps_keys.(0) in
      for j = 0 to len - 1 do
        f ids.(j)
      done
    end
    else if n > 1 then begin
      (* K-way merge of the matched segments on (sort bytes, id): each
         segment is already sorted, so emission is globally ascending on
         the sort column. Linear min pick — k is the matched path count,
         small in practice. *)
      let seg_ids = Array.map (fun k -> fst (Table.partition_view ps.ps_table k)) ps.ps_keys in
      let seg_len = Array.map (fun k -> snd (Table.partition_view ps.ps_table k)) ps.ps_keys in
      let cur = Array.make n 0 in
      let sort_key id = (Table.row ps.ps_table id).(ps.ps_sort_idx) in
      let continue_ = ref true in
      while !continue_ do
        let best = ref (-1) in
        let best_id = ref 0 in
        for j = 0 to n - 1 do
          if cur.(j) < seg_len.(j) then begin
            let id = seg_ids.(j).(cur.(j)) in
            if
              !best < 0
              ||
              match Value.compare_total (sort_key id) (sort_key !best_id) with
              | 0 -> id < !best_id
              | c -> c < 0
            then begin
              best := j;
              best_id := id
            end
          end
        done;
        if !best < 0 then continue_ := false
        else begin
          f !best_id;
          cur.(!best) <- cur.(!best) + 1
        end
      done
    end
  | `Index_order tree ->
    (* Full walk of an index in key order: same rows as a scan (every
       row appears in every index exactly once), different order. Used
       to feed merge joins Dewey-ordered outer rows. *)
    Btree.iter (fun _ id -> f id) tree
  | `Prefix_lookup (tree, fn, lengths) ->
    (* One equality probe per candidate prefix length. Only lengths that
       exist as first-column key lengths in the index are probed — Dewey
       keys cluster on a handful of tree depths, so this turns
       |outer key| descents per binding into a few. The length set is
       collected once per plan; soundness under the fine-grained
       invalidation protocol: a pathid-scoped footprint only admits
       writes whose rows this alias's pathid probe would reject anyway,
       and any other write invalidates the plan outright. *)
    (match fn bind with
     | Value.Bin v | Value.Str v ->
       let n = String.length v in
       Array.iter
         (fun k ->
           if k <= n then
             List.iter f (Btree.find_equal tree [| Value.Bin (String.sub v 0 k) |]))
         (Lazy.force lengths)
     | Value.Null | Value.Int _ | Value.Float _ -> ())
  | `Index_eq (tree, fns) ->
    let key = Array.map (fun fn -> fn bind) fns in
    if Array.exists (function Value.Null -> true | _ -> false) key then ()
    else List.iter f (Btree.find_equal tree key)
  | `Index_range (tree, fns, lo, hi) ->
    let prefix = Array.map (fun fn -> fn bind) fns in
    if Array.exists (function Value.Null -> true | _ -> false) prefix then ()
    else begin
      let bound side =
        match side with
        | None -> Some { Btree.key = prefix; inclusive = true }
        | Some (fn, inclusive) ->
          (match fn bind with
           | Value.Null -> None
           | v -> Some { Btree.key = Array.append prefix [| v |]; inclusive })
      in
      (* A NULL range bound means the comparison is unknown: no rows. *)
      let lo_b = bound lo and hi_b = bound hi in
      match lo, lo_b, hi, hi_b with
      | Some _, None, _, _ | _, _, Some _, None -> ()
      | _, lo_b, _, hi_b -> List.iter f (Btree.range tree ~lo:lo_b ~hi:hi_b)
    end
  | `Hash_probe hp ->
    let build =
      match !(hp.hp_build) with
      | Some t -> t
      | None ->
        counters.c_hash_builds <- counters.c_hash_builds + 1;
        let t = Hashtbl.create (max 16 (Table.live_count hp.hp_table)) in
        Table.iter_rows
          (fun id row ->
            counters.c_scanned <- counters.c_scanned + 1;
            match canon_key hp.hp_kind row.(hp.hp_idx) with
            | Some k ->
              let prev = Option.value ~default:[] (Hashtbl.find_opt t k) in
              Hashtbl.replace t k (id :: prev)
            | None -> ())
          hp.hp_table;
        (* Reverse each bucket so probes emit row ids in ascending order —
           the same order a scan-plus-filter of this table would produce. *)
        Hashtbl.filter_map_inplace (fun _ ids -> Some (List.rev ids)) t;
        let bytes =
          Hashtbl.fold
            (fun k ids acc -> acc + String.length k + 48 + (24 * List.length ids))
            t 64
        in
        counters.c_peak_bytes <- counters.c_peak_bytes + bytes;
        hp.hp_build := Some t;
        t
    in
    counters.c_probed <- counters.c_probed + 1;
    (match canon_key hp.hp_kind (hp.hp_key bind) with
     | None -> ()
     | Some k ->
       (match Hashtbl.find_opt build k with
        | Some ids -> List.iter f ids
        | None -> ()))
  | `Merge_join mj ->
    let items =
      match !(mj.mj_items) with
      | Some a -> a
      | None ->
        (* One-time build: materialize (key ^ suffix, row id) pairs and
           sort. Appending the sentinel suffix is not monotone w.r.t. raw
           key order when one key is a byte-prefix of another, so an
           explicit sort is required rather than an ordered index walk.
           A non-string key compares unknown against every string bound
           under three-valued SQL semantics, so such rows can never pass
           the residual conjunct and dropping them here is exact. *)
        let acc = ref [] in
        Table.iter_rows
          (fun id row ->
            counters.c_scanned <- counters.c_scanned + 1;
            match row.(mj.mj_key_idx) with
            | Value.Bin s | Value.Str s -> acc := (s ^ mj.mj_suffix, id) :: !acc
            | Value.Null | Value.Int _ | Value.Float _ -> ())
          mj.mj_table;
        let a = Array.of_list !acc in
        Array.sort
          (fun (ka, ia) (kb, ib) ->
            match String.compare ka kb with 0 -> Int.compare ia ib | c -> c)
          a;
        let bytes =
          Array.fold_left (fun b (k, _) -> b + 48 + String.length k) 64 a
        in
        counters.c_peak_bytes <- counters.c_peak_bytes + bytes;
        mj.mj_items := Some a;
        a
    in
    counters.c_merge_probes <- counters.c_merge_probes + 1;
    let n = Array.length items in
    let str_bound side =
      match side with
      | None -> Some None
      | Some (fn, incl) ->
        (match fn bind with
         | Value.Bin s | Value.Str s -> Some (Some (s, incl))
         | Value.Null | Value.Int _ | Value.Float _ -> None)
    in
    (match str_bound mj.mj_lo, str_bound mj.mj_hi with
     | None, _ | _, None ->
       (* A NULL (or non-string) bound makes the comparison unknown for
          every key: no rows qualify. *)
       ()
     | Some lo, Some hi ->
       let above_lo key =
         match lo with
         | None -> true
         | Some (s, incl) ->
           let c = String.compare key s in
           if incl then c >= 0 else c > 0
       in
       let below_hi key =
         match hi with
         | None -> true
         | Some (s, incl) ->
           let c = String.compare key s in
           if incl then c <= 0 else c < 0
       in
       (match lo with
        | None -> mj.mj_cursor := 0
        | Some _ ->
          (* Reposition to the first key satisfying the lower bound:
             backtrack first (band-join window), then advance. Both
             loops are amortized O(1) per probe when the outer side is
             Dewey-ordered. *)
          let pos = ref (min !(mj.mj_cursor) n) in
          while !pos > 0 && above_lo (fst items.(!pos - 1)) do
            decr pos;
            counters.c_merge_backtracks <- counters.c_merge_backtracks + 1
          done;
          while !pos < n && not (above_lo (fst items.(!pos))) do
            incr pos;
            counters.c_merge_steps <- counters.c_merge_steps + 1
          done;
          mj.mj_cursor := !pos);
       let i = ref !(mj.mj_cursor) in
       let continue = ref true in
       while !continue && !i < n do
         if below_hi (fst items.(!i)) then begin
           f (snd items.(!i));
           incr i
         end
         else continue := false
       done)

let rec exec_steps counters steps bind emit =
  match steps with
  | [] ->
    counters.c_emitted <- counters.c_emitted + 1;
    emit bind
  | st :: rest ->
    iter_access counters st.st_table st.st_access bind (fun row_id ->
        let row = Table.row st.st_table row_id in
        (* Memoized hash builds and merge arrays can outlive a retained
           plan's rows: a fine-grained commit may tombstone a row whose id
           they still hold. The commit's pathid-disjointness guarantees
           such rows could never satisfy this plan's probes, so skipping
           the tombstone is exact. *)
        if Array.length row > 0 then begin
          bind.(st.st_slot) <- row;
          if List.for_all (fun p -> p bind = Some true) st.st_filters then begin
            if st.st_content then
              counters.c_content_verified <- counters.c_content_verified + 1;
            exec_steps counters rest bind emit
          end
        end)

(* ------------------------------------------------------------------ *)
(* EXISTS shape analysis                                               *)
(* ------------------------------------------------------------------ *)

(* Classify an EXISTS sub-select against the enclosing slot table.
   [`Uncorrelated] — no conjunct references an outer alias: evaluate once,
   cache the boolean. [`Semijoin (pairs, kinds, inner_sel)] — every
   correlated conjunct is an outer-expr = inner-expr equality with
   hash-compatible types: evaluate [inner_sel] (the sub-select projecting
   the distinct inner key tuples) once and turn the EXISTS into hash-set
   membership. [`Correlated] — anything else: execute per binding.
   Shared by {!decorrelate_exists} (which compiles the result) and
   {!explain} (which recurses into the sub-plan it implies), so the
   describing and the executing path can never disagree on the shape. *)
let exists_shape ctx (sel : Sql.select) :
    [ `Uncorrelated of Sql.select
    | `Semijoin of (Sql.expr * Sql.expr) list * [ `Str | `Num ] list * Sql.select
    | `Correlated ] =
  let outer_aliases = Array.to_list (Array.map fst ctx.slots) in
  let local_names = List.map snd sel.Sql.from in
  (* A name is outer if it is not bound by the inner FROM. *)
  let is_outer a = (not (List.mem a local_names)) && List.mem a outer_aliases in
  let conjuncts = match sel.Sql.where with None -> [] | Some w -> Sql.conjuncts w in
  let correlated, uncorrelated =
    List.partition (fun c -> List.exists is_outer (Sql.free_aliases c)) conjuncts
  in
  if correlated = [] then
    `Uncorrelated
      {
        sel with
        Sql.where =
          (match conjuncts with
           | [] -> None
           | c :: cs ->
             Some (List.fold_left (fun acc x -> Sql.And (acc, x)) c cs));
      }
  else begin
    let split = function
      | Sql.Cmp (Sql.Eq, a, b) ->
        let a_outer = List.for_all is_outer (Sql.free_aliases a)
        and b_outer = List.for_all is_outer (Sql.free_aliases b) in
        let a_inner =
          List.for_all (fun x -> not (is_outer x)) (Sql.free_aliases a)
          && Sql.free_aliases a <> []
        and b_inner =
          List.for_all (fun x -> not (is_outer x)) (Sql.free_aliases b)
          && Sql.free_aliases b <> []
        in
        if a_outer && b_inner then Some (a, b)
        else if b_outer && a_inner then Some (b, a)
        else None
      | _ -> None
    in
    let pairs = List.map split correlated in
    if List.exists (fun p -> p = None) pairs then `Correlated
    else begin
      let pairs = List.filter_map Fun.id pairs in
      (* Check hash-compatible types for each pair. *)
      let key_kind (outer_e, inner_e) =
        (* Inner expression types must be derived with inner aliases in
           scope; extend the slot table the same way plan_select will. *)
        let inner_ctx =
          {
            ctx with
            slots =
              Array.append ctx.slots
                (Array.of_list
                   (List.map
                      (fun (table, alias) ->
                        match Database.table_opt ctx.db table with
                        | Some t -> alias, t
                        | None -> error "unknown table %s" table)
                      sel.Sql.from));
          }
        in
        match static_ty ctx outer_e, static_ty inner_ctx inner_e with
        | Some (Value.Tstr | Value.Tbin), Some (Value.Tstr | Value.Tbin) -> Some `Str
        | Some (Value.Tint | Value.Tfloat), Some (Value.Tint | Value.Tfloat) -> Some `Num
        | _ -> None
      in
      let kinds = List.map key_kind pairs in
      if List.exists (fun k -> k = None) kinds then `Correlated
      else begin
        let kinds = List.filter_map Fun.id kinds in
        (* Build the uncorrelated inner query projecting the inner key
           expressions. *)
        let inner_sel =
          {
            sel with
            Sql.where =
              (match uncorrelated with
               | [] -> None
               | c :: cs -> Some (List.fold_left (fun acc x -> Sql.And (acc, x)) c cs));
            Sql.projections =
              List.mapi (fun i (_, inner_e) -> inner_e, Printf.sprintf "k%d" i) pairs;
            Sql.distinct = true;
            Sql.order_by = [];
          }
        in
        (* The inner query must now be completely uncorrelated. *)
        let still_correlated =
          List.exists
            (fun (e, _) -> List.exists is_outer (Sql.free_aliases e))
            inner_sel.Sql.projections
        in
        if still_correlated then `Correlated
        else `Semijoin (pairs, kinds, inner_sel)
      end
    end
  end

let rec compile_value ctx (e : Sql.expr) : value_fn =
  match e with
  | Sql.Col (alias, col) ->
    let slot, i = column_slot ctx alias col in
    fun b -> b.(slot).(i)
  | Sql.Const v -> fun _ -> v
  | Sql.Concat (a, b) ->
    let fa = compile_value ctx a and fb = compile_value ctx b in
    fun bind -> Value.concat (fa bind) (fb bind)
  | Sql.To_number a ->
    let fa = compile_value ctx a in
    fun bind ->
      (match Value.to_float (fa bind) with
       | Some f -> Value.Float f
       | None -> Value.Null)
  | Sql.Arith (op, a, b) ->
    let fa = compile_value ctx a and fb = compile_value ctx b in
    fun bind ->
      (match Value.to_float (fa bind), Value.to_float (fb bind) with
       | Some x, Some y ->
         (match op with
          | Sql.Add -> Value.Float (x +. y)
          | Sql.Sub -> Value.Float (x -. y)
          | Sql.Mul -> Value.Float (x *. y)
          | Sql.Div -> Value.Float (x /. y)
          | Sql.Mod -> Value.Float (Float.rem x y))
       | None, _ | _, None -> Value.Null)
  | Sql.Length a ->
    let fa = compile_value ctx a in
    fun bind ->
      (match fa bind with
       | Value.Str s | Value.Bin s -> Value.Int (String.length s)
       | Value.Null -> Value.Null
       | Value.Int _ | Value.Float _ ->
         error "LENGTH applied to a numeric value")
  | Sql.Count_subquery sel ->
    (* Correlated scalar COUNT: plan once, count matching bindings per
       outer row. *)
    let p = plan_select ctx sel in
    let counters = ctx.counters in
    fun outer ->
      let bind = Array.make p.pl_total [||] in
      Array.blit outer 0 bind 0 p.pl_env;
      if not (List.for_all (fun f -> f bind = Some true) p.pl_pre) then Value.Int 0
      else begin
        let n = ref 0 in
        exec_steps counters p.pl_steps bind (fun _ -> incr n);
        Value.Int !n
      end
  | Sql.Cmp _ | Sql.Between _ | Sql.And _ | Sql.Or _ | Sql.Not _
  | Sql.Regexp_like _ | Sql.Exists _ | Sql.Is_not_null _ | Sql.Bool_const _ ->
    error "boolean expression used where a value is required: %s"
      (Format.asprintf "%a" Sql.pp_expr e)

and compile_pred ctx (e : Sql.expr) : pred_fn =
  match e with
  | Sql.Cmp (op, a, b) ->
    let fa = compile_value ctx a and fb = compile_value ctx b in
    let test c =
      match op with
      | Sql.Eq -> c = 0
      | Sql.Ne -> c <> 0
      | Sql.Lt -> c < 0
      | Sql.Le -> c <= 0
      | Sql.Gt -> c > 0
      | Sql.Ge -> c >= 0
    in
    fun bind -> Option.map test (Value.compare_sql (fa bind) (fb bind))
  | Sql.Between (e, lo, hi) ->
    let fe = compile_value ctx e
    and flo = compile_value ctx lo
    and fhi = compile_value ctx hi in
    fun bind ->
      let v = fe bind in
      (match Value.compare_sql v (flo bind), Value.compare_sql v (fhi bind) with
       | Some a, Some b -> Some (a >= 0 && b <= 0)
       | None, _ | _, None -> None)
  | Sql.And (a, b) ->
    let fa = compile_pred ctx a and fb = compile_pred ctx b in
    fun bind ->
      (* Kleene conjunction. *)
      (match fa bind, fb bind with
       | Some false, _ | _, Some false -> Some false
       | Some true, Some true -> Some true
       | None, _ | _, None -> None)
  | Sql.Or (a, b) ->
    let fa = compile_pred ctx a and fb = compile_pred ctx b in
    fun bind ->
      (match fa bind, fb bind with
       | Some true, _ | _, Some true -> Some true
       | Some false, Some false -> Some false
       | None, _ | _, None -> None)
  | Sql.Not a ->
    let fa = compile_pred ctx a in
    fun bind -> Option.map not (fa bind)
  | Sql.Regexp_like (e, pattern) ->
    let fe = compile_value ctx e in
    let counters = ctx.counters in
    let re =
      try Ppfx_regex.Regex.compile_cached pattern
      with Ppfx_regex.Regex.Parse_error msg ->
        error "invalid regular expression %S: %s" pattern msg
    in
    let frozen = Ppfx_regex.Regex.has_frozen re in
    fun bind ->
      (match Value.text (fe bind) with
       | None -> None
       | Some s ->
         if frozen then counters.c_dfa_execs <- counters.c_dfa_execs + 1
         else counters.c_regex_exec_evals <- counters.c_regex_exec_evals + 1;
         Some (Ppfx_regex.Regex.search re s))
  | Sql.Exists sel -> compile_exists ctx sel
  | Sql.Is_not_null a ->
    let fa = compile_value ctx a in
    fun bind -> Some (match fa bind with Value.Null -> false | _ -> true)
  | Sql.Bool_const b -> fun _ -> Some b
  | Sql.Col _ | Sql.Const _ | Sql.Concat _ | Sql.Arith _ | Sql.To_number _
  | Sql.Length _ | Sql.Count_subquery _ ->
    error "value expression used where a condition is required: %s"
      (Format.asprintf "%a" Sql.pp_expr e)

(* ------------------------------------------------------------------ *)
(* Planning                                                            *)
(* ------------------------------------------------------------------ *)

and plan_select ctx (sel : Sql.select) : planned =
  (* Extend the slot table with the select's own aliases. *)
  let local_aliases =
    List.map
      (fun (table, alias) ->
        match Database.table_opt ctx.db table with
        | Some t -> alias, t
        | None -> error "unknown table %s" table)
      sel.Sql.from
  in
  (* Duplicate aliases in one FROM clause would make column references
     ambiguous and break slot binding. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (alias, _) ->
      if Hashtbl.mem seen alias then error "duplicate alias %s in FROM" alias;
      Hashtbl.add seen alias ())
    local_aliases;
  let conjuncts = match sel.Sql.where with None -> [] | Some w -> Sql.conjuncts w in
  (* The semi-join reduction runs before slot assignment: it may remove
     aliases from the FROM list entirely. *)
  let local_aliases, conjuncts, probes, reductions =
    if ctx.naive || not ctx.opts.semijoin_reduction then
      local_aliases, conjuncts, [], []
    else reduce_path_filters ctx sel local_aliases conjuncts
  in
  let env_slots = Array.length ctx.slots in
  let ctx = { ctx with slots = Array.append ctx.slots (Array.of_list local_aliases) } in
  let local_names = List.map fst local_aliases in
  let is_local a = List.mem a local_names in
  (* Greedy join-order selection. *)
  let order =
    if ctx.naive then List.mapi (fun i _ -> env_slots + i) local_aliases
    else begin
      let bound = ref [] in
      let remaining = ref (List.mapi (fun i (a, t) -> i + env_slots, a, t) local_aliases) in
      let order = ref [] in
      let outer_bound a = not (is_local a) in
      let applicable alias conj =
        let free = Sql.free_aliases conj in
        List.mem alias free
        && List.for_all (fun f -> String.equal f alias || outer_bound f || List.mem f !bound) free
      in
      (* Estimated rows this alias contributes per outer binding, using
         cached per-column distinct counts for equality conjuncts and the
         materialized set sizes for pathid probes. *)
      let estimate alias table =
        let n = float_of_int (max 1 (Table.row_count table)) in
        let eq_sel col = 1.0 /. float_of_int (Table.distinct_estimate table col) in
        let sel_of conj =
          match conj with
          | Sql.Cmp (Sql.Eq, Sql.Col (a, col), _) when String.equal a alias -> eq_sel col
          | Sql.Cmp (Sql.Eq, _, Sql.Col (a, col)) when String.equal a alias -> eq_sel col
          | Sql.Cmp (Sql.Eq, _, _) -> 0.05
          | Sql.Between _ -> 0.02
          | Sql.Cmp ((Sql.Lt | Sql.Le | Sql.Gt | Sql.Ge), _, _) -> 0.25
          | Sql.Regexp_like _ -> 0.2
          | Sql.Cmp (Sql.Ne, _, _) -> 0.9
          | Sql.And _ | Sql.Or _ | Sql.Not _ | Sql.Exists _ -> 0.5
          | Sql.Is_not_null _ -> 0.9
          | Sql.Bool_const _ -> 1.0
          | Sql.Col _ | Sql.Const _ | Sql.Concat _ | Sql.Arith _ | Sql.To_number _
          | Sql.Length _ | Sql.Count_subquery _ -> 1.0
        in
        let probe_sel =
          List.fold_left
            (fun acc pb ->
              if String.equal pb.pb_alias alias then
                acc
                *. Float.min 1.0
                     (float_of_int (Hashtbl.length pb.pb_set)
                     /. float_of_int (max 1 (Table.distinct_estimate table pb.pb_col)))
              else acc)
            1.0 probes
        in
        List.fold_left
          (fun acc conj -> if applicable alias conj then acc *. sel_of conj else acc)
          (n *. probe_sel) conjuncts
      in
      let connected alias =
        List.exists
          (fun conj ->
            let free = Sql.free_aliases conj in
            List.mem alias free
            && List.exists
                 (fun f -> (not (String.equal f alias)) && (outer_bound f || List.mem f !bound))
                 free)
          conjuncts
      in
      while !remaining <> [] do
        let scored =
          List.map
            (fun (slot, alias, table) ->
              let cost = estimate alias table in
              let penalty =
                if !bound = [] && env_slots = 0 then 1.0
                else if connected alias then 1.0
                else 1e6
              in
              (cost *. penalty, slot, alias))
            !remaining
        in
        let best =
          List.fold_left
            (fun acc entry ->
              match acc with
              | None -> Some entry
              | Some (c, _, _) ->
                let c', _, _ = entry in
                if c' < c then Some entry else acc)
            None scored
        in
        (match best with
         | None -> assert false
         | Some (_, slot, alias) ->
           order := slot :: !order;
           bound := alias :: !bound;
           remaining := List.filter (fun (s, _, _) -> s <> slot) !remaining)
      done;
      List.rev !order
    end
  in
  (* Assign each conjunct to the earliest step after which it is fully
     bound, and choose access paths. *)
  let alias_of_slot slot = fst ctx.slots.(slot) in
  let bound_after i alias =
    (* aliases bound once steps 0..i (in [order]) have run *)
    (not (is_local alias))
    ||
    let rec go j = function
      | [] -> false
      | slot :: rest ->
        if j > i then false
        else if String.equal (alias_of_slot slot) alias then true
        else go (j + 1) rest
    in
    go 0 order
  in
  let step_of_conjunct conj =
    let free = Sql.free_aliases conj in
    let rec earliest i =
      if i >= List.length order then
        (* references only outer aliases: evaluate before any local step *)
        -1
      else if List.for_all (bound_after i) free then i
      else earliest (i + 1)
    in
    if List.for_all (fun a -> not (is_local a)) free then -1
    else earliest 0
  in
  let assigned = List.map (fun c -> step_of_conjunct c, c) conjuncts in
  (* Compile each pathid probe against the final slot layout. The probed
     column is declared INTEGER (checked by the reduction), and declared
     types are enforced on insert, so only [Int] and [Null] can appear;
     NULL never equals any id. *)
  let probe_preds =
    List.map
      (fun pb ->
        let slot, i = column_slot ctx pb.pb_alias pb.pb_col in
        let counters = ctx.counters in
        let set = pb.pb_set in
        let pred : pred_fn =
         fun bind ->
          counters.c_probed <- counters.c_probed + 1;
          match bind.(slot).(i) with
          | Value.Int v -> Some (Hashtbl.mem set v)
          | Value.Null | Value.Float _ | Value.Str _ | Value.Bin _ -> Some false
        in
        (pb, pred))
      probes
  in
  let pre_filters =
    List.filter_map (fun (i, c) -> if i = -1 then Some (compile_pred ctx c) else None) assigned
    @ List.filter_map
        (fun (pb, pred) -> if is_local pb.pb_alias then None else Some pred)
        probe_preds
  in
  (* Access-path selection threads the accesses already chosen for
     earlier steps into each choice: a merge join is only competitive
     when its outer inputs arrive in Dewey order, and when it wins it may
     upgrade an earlier full scan to an ordered index walk to make that
     true. *)
  let order_arr = Array.of_list order in
  let nsteps = Array.length order_arr in
  let accesses : access array = Array.make nsteps `Scan in
  if not ctx.naive then
    Array.iteri
      (fun i slot ->
        let alias = alias_of_slot slot in
        let table = snd ctx.slots.(slot) in
        let prev =
          List.init i (fun j ->
              let s = order_arr.(j) in
              alias_of_slot s, snd ctx.slots.(s), accesses.(j), j)
        in
        let access, upgrades =
          choose_access ctx ~table ~alias ~bound:(bound_after (i - 1))
            ~prev:(List.map (fun (a, t, acc, _) -> a, t, acc) prev)
            ~probes conjuncts
        in
        accesses.(i) <- access;
        List.iter
          (fun (dep_alias, dep_col) ->
            List.iter
              (fun (a, t, acc, j) ->
                match acc with
                | `Scan when String.equal a dep_alias ->
                  (match Table.index_with_prefix t [ dep_col ] with
                   | Some (tree, _) -> accesses.(j) <- `Index_order tree
                   | None -> ())
                | _ -> ())
              prev)
          upgrades)
      order_arr;
  (* Sort elision: when the final ORDER BY is a single column of the
     outermost step and that step is still a full scan, walk an index
     leading on the column instead — same rows, but emitted already in
     the requested order, so the final stable sort becomes the identity
     and is skipped ([pl_order_preserved]). *)
  if (not ctx.naive) && env_slots = 0 && nsteps > 0 then begin
    match sel.Sql.order_by with
    | [ Sql.Col (oa, oc) ] when String.equal (alias_of_slot order_arr.(0)) oa ->
      (match accesses.(0) with
       | `Scan ->
         (match Table.index_with_prefix (snd ctx.slots.(order_arr.(0))) [ oc ] with
          | Some (tree, _) -> accesses.(0) <- `Index_order tree
          | None -> ())
       | _ -> ())
    | _ -> ()
  end;
  let steps =
    List.mapi
      (fun i slot ->
        let alias = alias_of_slot slot in
        let table = snd ctx.slots.(slot) in
        let my_conjuncts = List.filter_map (fun (j, c) -> if j = i then Some c else None) assigned in
        let my_probes =
          List.filter (fun (pb, _) -> String.equal pb.pb_alias alias) probe_preds
        in
        (* A pruned partition scan subsumes every set probe on the
           partition column: the partition invariant guarantees each
           emitted row's key is one of the matched keys, which were
           intersected over exactly those probe sets — so the per-row
           probe is dropped (the point of pruning) while the sets stay in
           the plan footprint for fine-grained invalidation. The
           retained plan state shrinks from the probe hashtable to the
           matched-key list; peak-bytes accounting follows. *)
        let my_probes =
          match accesses.(i), Table.partition_spec table with
          | `Partition_scan ps, Some spec ->
            let subsumed, kept =
              List.partition
                (fun (pb, _) -> String.equal pb.pb_col spec.Table.part_col)
                my_probes
            in
            List.iter
              (fun (pb, _) ->
                ctx.counters.c_peak_bytes <-
                  ctx.counters.c_peak_bytes - ((32 * Hashtbl.length pb.pb_set) + 64))
              subsumed;
            if subsumed <> [] then
              ctx.counters.c_peak_bytes <-
                ctx.counters.c_peak_bytes + (8 * Array.length ps.ps_keys) + 48;
            kept
          | _ -> my_probes
        in
        (* The materialized candidate list is retained plan state. *)
        (match accesses.(i) with
         | `Content_probe cp ->
           ctx.counters.c_peak_bytes <-
             ctx.counters.c_peak_bytes + (8 * Array.length cp.cp_ids) + 48
         | _ -> ());
        {
          st_slot = slot;
          st_table = table;
          st_access = accesses.(i);
          st_filters = List.map (compile_pred ctx) my_conjuncts @ List.map snd my_probes;
          st_probe_labels = List.map (fun (pb, _) -> pb.pb_label) my_probes;
          st_content =
            (match accesses.(i) with `Content_probe _ -> true | _ -> false);
        })
      order
  in
  let projections =
    List.map (fun (e, name) -> compile_value ctx e, name) sel.Sql.projections
  in
  let order_by = List.map (compile_value ctx) sel.Sql.order_by in
  (* The final stable sort is the identity exactly when (a) the sort key
     is a single column of the first (outermost) step — nested-loop
     emission is then grouped by outer row, hence nondecreasing on any
     key the outer step emits in nondecreasing order — and (b) that step
     walks an index leading on the key column. Requires no outer slots:
     a correlated sub-select's emission order depends on its caller. *)
  let order_preserved =
    env_slots = 0
    && (match sel.Sql.order_by, steps with
        | [ Sql.Col (oa, oc) ], st0 :: _ ->
          String.equal (alias_of_slot st0.st_slot) oa
          && (match st0.st_access with
              | `Index_order tree | `Index_range (tree, [||], _, _) ->
                (match index_first_col st0.st_table tree with
                 | Some c0 -> String.equal c0 oc
                 | None -> false)
              | `Partition_scan ps -> String.equal ps.ps_sort_col oc
              | _ -> false)
        | _ -> false)
  in
  (* Record what this select depends on. An alias is pathid-guarded only
     when a reduction probe on its literal [path_id] column filters every
     row it binds; the reduction's dimension table was swept at plan time,
     so any change to it (new or dropped pathids) invalidates. A
     content-probed alias is always [Dep_all]: its candidate list was
     fixed by the rows' text at plan time, so even a commit confined to
     allowed pathids could edit a text value out from under it. *)
  List.iter
    (fun (alias, table) ->
      let content_probed =
        List.exists
          (fun st ->
            st.st_content && String.equal (alias_of_slot st.st_slot) alias)
          steps
      in
      let dep =
        match
          List.find_opt
            (fun pb ->
              String.equal pb.pb_alias alias && String.equal pb.pb_col "path_id")
            probes
        with
        | Some pb when not content_probed -> Dep_paths pb.pb_set
        | Some _ | None -> Dep_all
      in
      footprint_add ctx table dep)
    local_aliases;
  List.iter
    (fun rd ->
      match Database.table_opt ctx.db rd.rd_dim_table with
      | Some t -> footprint_add ctx t Dep_all
      | None -> ())
    reductions;
  {
    pl_ctx = ctx;
    pl_env = env_slots;
    pl_pre = pre_filters;
    pl_steps = steps;
    pl_project = projections;
    pl_distinct = sel.Sql.distinct;
    pl_order_by = order_by;
    pl_order_preserved = order_preserved;
    pl_total = Array.length ctx.slots;
    pl_reductions = List.rev reductions;
  }

(* Pick the best access for [table]/[alias], given that [bound] tells
   which other aliases are already available and [prev] lists the
   already-planned local steps (alias, table, chosen access) in plan
   order. Returns a strategy that computes B+tree bounds (or hash/merge
   keys) per binding, plus upgrade requests: (alias, col) pairs asking
   the planner to turn an earlier full scan into an ordered walk of the
   index leading on [col], so a chosen merge join sees Dewey-ordered
   outer rows. All conjuncts are re-checked as filters afterwards, so a
   lossy-but-superset access is sound. A hash join is used for equijoins
   with no usable index path (the fact tables index
   [(dewey_pos, path_id)] but not [path_id] alone); which side builds is
   decided by the greedy join order, i.e. by the existing cardinality
   estimates. *)
and choose_access ctx ~table ~alias ~bound ~prev ~probes conjuncts :
    access * (string * string) list =
  let bound_expr e =
    List.for_all (fun a -> (not (String.equal a alias)) && bound a) (Sql.free_aliases e)
    || Sql.free_aliases e = []
  in
  (* Ancestor-prefix candidates: [e BETWEEN col AND col || sfx] holds
     exactly when col is a byte-prefix of e, so the matching rows can be
     fetched by equality lookups on every prefix of e's value — turning a
     Dewey ancestor join into O(depth) index probes. *)
  let prefix_lookup =
    List.find_map
      (fun conj ->
        match conj with
        | Sql.Between (e, Sql.Col (a1, c1), Sql.Concat (Sql.Col (a2, c2), _))
          when String.equal a1 alias && String.equal a2 alias && String.equal c1 c2
               && bound_expr e ->
          (match Table.index_with_prefix table [ c1 ] with
           | Some (tree, _) -> Some (tree, compile_value ctx e)
           | None -> None)
        | _ -> None)
      conjuncts
  in
  (* Equality candidates: col = <bound expr>. *)
  let equalities =
    List.filter_map
      (fun conj ->
        match conj with
        | Sql.Cmp (Sql.Eq, Sql.Col (a, col), e) when String.equal a alias && bound_expr e ->
          Some (col, e)
        | Sql.Cmp (Sql.Eq, e, Sql.Col (a, col)) when String.equal a alias && bound_expr e ->
          Some (col, e)
        | _ -> None)
      conjuncts
  in
  (* Range candidates: col cmp <bound expr>, plus the sound relaxations of
     concat comparisons (col || suffix < e implies col < e). *)
  let ranges =
    List.filter_map
      (fun conj ->
        match conj with
        | Sql.Between (Sql.Col (a, col), lo, hi)
          when String.equal a alias && bound_expr lo && bound_expr hi ->
          Some (col, Some (lo, true), Some (hi, true))
        | Sql.Cmp (op, Sql.Col (a, col), e) when String.equal a alias && bound_expr e ->
          (match op with
           | Sql.Lt -> Some (col, None, Some (e, false))
           | Sql.Le -> Some (col, None, Some (e, true))
           | Sql.Gt -> Some (col, Some ((e, false) : Sql.expr * bool), None)
           | Sql.Ge -> Some (col, Some (e, true), None)
           | Sql.Eq | Sql.Ne -> None)
        | Sql.Cmp (op, e, Sql.Col (a, col)) when String.equal a alias && bound_expr e ->
          (match op with
           | Sql.Gt -> Some (col, None, Some (e, false))
           | Sql.Ge -> Some (col, None, Some (e, true))
           | Sql.Lt -> Some (col, Some (e, false), None)
           | Sql.Le -> Some (col, Some (e, true), None)
           | Sql.Eq | Sql.Ne -> None)
        | Sql.Cmp ((Sql.Lt | Sql.Le), Sql.Concat (Sql.Col (a, col), _), e)
          when String.equal a alias && bound_expr e ->
          (* col || sfx <= e implies col < e (sfx non-empty). *)
          Some (col, None, Some (e, false))
        | Sql.Cmp ((Sql.Gt | Sql.Ge), e, Sql.Concat (Sql.Col (a, col), _))
          when String.equal a alias && bound_expr e ->
          Some (col, None, Some (e, false))
        | _ -> None)
      conjuncts
  in
  (* Dewey merge-join candidates: an order-axis comparison between this
     alias's key column (optionally suffixed with the 0xFF subtree
     sentinel, as in [d > a || 0xFF]) and a bound expression referencing
     at least one other alias. Restricted to BINARY key columns: against
     those, {!Value.compare_sql} with any non-string operand is unknown
     (three-valued reject), so the operator's skipping of non-string
     keys and bounds loses no rows the residual filter would keep. *)
  let merge_cands =
    if ctx.opts.merge_join || ctx.opts.force_merge_join then begin
      let key_of = function
        | Sql.Col (a, col) when String.equal a alias -> Some (col, "")
        | Sql.Concat (Sql.Col (a, col), Sql.Const (Value.Bin sfx | Value.Str sfx))
          when String.equal a alias && sfx <> "" ->
          Some (col, sfx)
        | _ -> None
      in
      let joinish e = bound_expr e && Sql.free_aliases e <> [] in
      let cands =
        List.filter_map
          (fun conj ->
            match conj with
            | Sql.Cmp (op, k, e) when key_of k <> None && joinish e ->
              let col, sfx = Option.get (key_of k) in
              (match op with
               | Sql.Gt -> Some (col, sfx, Some (e, false), None)
               | Sql.Ge -> Some (col, sfx, Some (e, true), None)
               | Sql.Lt -> Some (col, sfx, None, Some (e, false))
               | Sql.Le -> Some (col, sfx, None, Some (e, true))
               | Sql.Eq | Sql.Ne -> None)
            | Sql.Cmp (op, e, k) when key_of k <> None && joinish e ->
              let col, sfx = Option.get (key_of k) in
              (match op with
               | Sql.Lt -> Some (col, sfx, Some (e, false), None)
               | Sql.Le -> Some (col, sfx, Some (e, true), None)
               | Sql.Gt -> Some (col, sfx, None, Some (e, false))
               | Sql.Ge -> Some (col, sfx, None, Some (e, true))
               | Sql.Eq | Sql.Ne -> None)
            | Sql.Between (k, lo, hi)
              when key_of k <> None && bound_expr lo && bound_expr hi
                   && (Sql.free_aliases lo <> [] || Sql.free_aliases hi <> []) ->
              let col, sfx = Option.get (key_of k) in
              Some (col, sfx, Some (lo, true), Some (hi, true))
            | _ -> None)
          conjuncts
      in
      (* Combine bounds targeting the same suffixed key. *)
      let rec combine acc = function
        | [] -> List.rev acc
        | (col, sfx, lo, hi) :: rest ->
          let same (c, s, _, _) = String.equal c col && String.equal s sfx in
          let lo, hi =
            List.fold_left
              (fun (lo, hi) (_, _, lo', hi') ->
                ( (match lo with None -> lo' | some -> some),
                  match hi with None -> hi' | some -> some ))
              (lo, hi)
              (List.filter same rest)
          in
          combine ((col, sfx, lo, hi) :: acc)
            (List.filter (fun c -> not (same c)) rest)
      in
      List.filter
        (fun (col, _, _, _) -> Table.column_ty table col = Some Value.Tbin)
        (combine [] cands)
    end
    else []
  in
  (* Is the outer side of a merge candidate provably Dewey-ordered? A
     bound's dependencies must be columns of already-planned steps whose
     access emits rows ascending on that column — or full scans that can
     be upgraded to one (index leading on the column exists). Outer-query
     aliases are rejected: a correlated sub-select's probe order is its
     caller's business. *)
  let dep_of_bound = function
    | Sql.Col (a, c) -> Some [ a, c ]
    | Sql.Concat (Sql.Col (a, c), Sql.Const _) -> Some [ a, c ]
    | Sql.Const _ -> Some []
    | _ -> None
  in
  let emits_ascending t access c =
    match access with
    | `Index_order tree ->
      (match index_first_col t tree with
       | Some c0 -> String.equal c0 c
       | None -> false)
    | `Index_range (tree, [||], _, _) ->
      (match index_first_col t tree with
       | Some c0 -> String.equal c0 c
       | None -> false)
    | `Merge_join mj -> String.equal mj.mj_suffix "" && String.equal mj.mj_key_col c
    | `Partition_scan ps -> String.equal ps.ps_sort_col c
    | _ -> false
  in
  let dep_status (a, c) =
    match List.find_opt (fun (pa, _, _) -> String.equal pa a) prev with
    | None -> `Unknown
    | Some (_, t, access) ->
      if emits_ascending t access c then `Ordered
      else (
        match access with
        | `Scan when Table.index_with_prefix t [ c ] <> None -> `Upgrade (a, c)
        | _ -> `Unknown)
  in
  let ordered_info (_, _, lo, hi) =
    let bounds = List.filter_map (Option.map fst) [ lo; hi ] in
    let deps = List.map dep_of_bound bounds in
    if List.exists Option.is_none deps then None
    else begin
      let statuses = List.map dep_status (List.concat_map Option.get deps) in
      if List.exists (fun s -> s = `Unknown) statuses then None
      else
        Some
          (List.filter_map
             (function `Upgrade u -> Some u | `Ordered | `Unknown -> None)
             statuses)
    end
  in
  (* Cost-based choice: estimate the rows each candidate access path
     fetches. Equality selectivity comes from cached per-column distinct
     counts; ranges use a fixed factor. Lowest estimate wins; residual
     filters re-check everything, so estimates only affect speed. *)
  let n_rows = float_of_int (max 1 (Table.row_count table)) in
  let eq_selectivity col = 1.0 /. float_of_int (Table.distinct_estimate table col) in
  let range_selectivity = 0.25 in
  let best = ref None in
  let consider cost (access : access) =
    match !best with
    | Some (c, _) when c <= cost -> ()
    | Some _ | None -> best := Some (cost, access)
  in
  List.iter
    (fun (cols, tree) ->
      let rec eq_prefix acc sel = function
        | [] -> List.rev acc, sel, []
        | col :: rest ->
          (match List.assoc_opt col equalities with
           | Some e -> eq_prefix (e :: acc) (sel *. eq_selectivity col) rest
           | None -> List.rev acc, sel, col :: rest)
      in
      let eqs, sel, rest = eq_prefix [] 1.0 cols in
      let range_next =
        match rest with
        | [] -> None
        | col :: _ ->
          List.fold_left
            (fun acc (rcol, lo, hi) ->
              if String.equal rcol col then
                match acc with
                | None -> Some (lo, hi)
                | Some (lo0, hi0) ->
                  (* Merge: keep any bound we have. *)
                  Some
                    ( (match lo0 with None -> lo | some -> some),
                      match hi0 with None -> hi | some -> some )
              else acc)
            None ranges
      in
      match eqs, range_next with
      | [], None -> ()
      | eqs, None ->
        let fns = Array.of_list (List.map (compile_value ctx) eqs) in
        consider (n_rows *. sel) (`Index_eq (tree, fns))
      | eqs, Some (lo, hi) ->
        let fns = Array.of_list (List.map (compile_value ctx) eqs) in
        let cbound = Option.map (fun (e, incl) -> compile_value ctx e, incl) in
        let rsel = if lo <> None && hi <> None then range_selectivity /. 2.0 else range_selectivity in
        consider (n_rows *. sel *. rsel) (`Index_range (tree, fns, cbound lo, cbound hi)))
    (Table.indexes table);
  (match prefix_lookup with
   | Some (tree, fn) ->
     (* One probe per prefix length present in the index: bounded by the
        tree's distinct key depths. The length set is forced on first
        execution, not at plan time, so EXPLAIN stays cheap. *)
     let lengths =
       lazy
         (let seen = Hashtbl.create 8 in
          Btree.iter
            (fun key _ ->
              match key.(0) with
              | Value.Bin s | Value.Str s ->
                Hashtbl.replace seen (String.length s) ()
              | Value.Null | Value.Int _ | Value.Float _ -> ())
            tree;
          let ls = Hashtbl.fold (fun l () acc -> l :: acc) seen [] in
          Array.of_list (List.sort compare ls))
     in
     consider 24.0 (`Prefix_lookup (tree, fn, lengths))
   | None -> ());
  (* Partition-pruning candidate: the table is physically partitioned on
     a column carrying a plan-time pathid set probe for this alias, so
     the probe set resolves to a matched-partition list and the scan cost
     is the exact matched row count — beating a full scan whenever any
     partition is pruned, and competing fairly (rows fetched per binding)
     with index paths. Emission is ascending on the partition sort
     column, which downstream merge joins and ORDER BY elision exploit. *)
  (match Table.partition_spec table with
   | None -> ()
   | Some spec ->
     let sets =
       List.filter_map
         (fun pb ->
           if
             String.equal pb.pb_alias alias
             && String.equal pb.pb_col spec.Table.part_col
           then Some pb.pb_set
           else None)
         probes
     in
     (match sets, Table.column_index table spec.Table.part_sort with
      | [], _ | _, None -> ()
      | sets, Some sort_idx ->
        let keys =
          List.filter
            (fun k -> List.for_all (fun s -> Hashtbl.mem s k) sets)
            (Table.partition_keys table)
        in
        let rows =
          List.fold_left (fun n k -> n + Table.partition_size table k) 0 keys
        in
        consider (float_of_int rows)
          (`Partition_scan
             {
               ps_table = table;
               ps_keys = Array.of_list keys;
               ps_total = Table.partition_count table;
               ps_rows = rows;
               ps_sort_col = spec.Table.part_sort;
               ps_sort_idx = sort_idx;
             })));
  (* Content-probe candidate: REGEXP_LIKE conjuncts on one of this
     alias's text columns whose patterns force literals a declared
     token/trigram index can resolve. All patterns on the same column
     contribute their groups to one conjunctive probe (Q6 intersects the
     groups of both its path filters); the candidates are materialized
     here, at plan time, so the cost is their exact count — beating a
     full scan whenever the literals are selective, and losing to an
     index probe that fetches fewer rows per binding. The regex conjuncts
     are NOT consumed: they remain residual filters, the verify stage.
     When no pattern yields usable literals, no candidate is offered and
     the planner falls back to scanning. *)
  (if ctx.opts.content_probe then begin
     let by_col = Hashtbl.create 4 in
     List.iter
       (fun conj ->
         match conj with
         | Sql.Regexp_like (Sql.Col (a, col), pat) when String.equal a alias ->
           (match Ppfx_regex.Regex.compile_cached pat with
            | re ->
              let groups = Ppfx_regex.Regex.required_literals re in
              if groups <> [] then
                Hashtbl.replace by_col col
                  (groups
                  @ Option.value ~default:[] (Hashtbl.find_opt by_col col))
            | exception Ppfx_regex.Regex.Parse_error _ ->
              (* compile_pred reports the error when filters compile *)
              ())
         | _ -> ())
       conjuncts;
     Hashtbl.iter
       (fun col groups ->
         match Table.content_candidates table ~col groups with
         | None -> ()
         | Some ids ->
           let kinds =
             List.filter_map
               (fun (c, k) ->
                 if String.equal c col then
                   Some
                     (match k with
                      | Table.Token -> "token"
                      | Table.Trigram -> "trigram")
                 else None)
               (Table.content_indexes table)
             |> List.sort_uniq compare |> String.concat "+"
           in
           consider
             (float_of_int (Array.length ids))
             (`Content_probe
                {
                  cp_table = table;
                  cp_col = col;
                  cp_kinds = kinds;
                  cp_groups = List.length groups;
                  cp_ids = ids;
                }))
       by_col
   end);
  (* Hash-join candidate: a true equijoin (the key references at least
     one already-bound alias — constant equalities are selections and
     gain nothing from a build) whose key types hash consistently (see
     {!canon_key}). Preferred only when no index path exists — the
     repeated full scans it replaces are the worst case — unless
     [force_hash_join] pins it for differential testing. *)
  let hash_candidate =
    if ctx.opts.hash_join || ctx.opts.force_hash_join then
      List.find_map
        (fun (col, e) ->
          if Sql.free_aliases e = [] then None
          else
          match Table.column_index table col, Table.column_ty table col, static_ty ctx e with
          | Some idx, Some bty, Some pty ->
            let kind =
              match bty, pty with
              | (Value.Tstr | Value.Tbin), (Value.Tstr | Value.Tbin) -> Some `Str
              | (Value.Tint | Value.Tfloat), (Value.Tint | Value.Tfloat) -> Some `Num
              | (Value.Tstr | Value.Tbin), (Value.Tint | Value.Tfloat)
              | (Value.Tint | Value.Tfloat), (Value.Tstr | Value.Tbin) ->
                None
            in
            Option.map
              (fun kind ->
                {
                  hp_table = table;
                  hp_col = col;
                  hp_idx = idx;
                  hp_kind = kind;
                  hp_key = compile_value ctx e;
                  hp_build = ref None;
                })
              kind
          | _, _, _ -> None)
        equalities
    else None
  in
  (* Merge-join candidate: competitive only when the outer side is (or
     can be upgraded to be) Dewey-ordered — the sliding cursor then
     replaces a B+tree descent and per-probe id-list allocation with
     amortized O(1) repositioning, modeled as a flat discount over the
     equivalent index range scan. [force_merge_join] pins it regardless,
     for differential testing. *)
  let upgrades = ref [] in
  let mk_merge (col, sfx, lo, hi) =
    match Table.column_index table col with
    | None -> None
    | Some idx ->
      Some
        (`Merge_join
           {
             mj_table = table;
             mj_key_col = col;
             mj_key_idx = idx;
             mj_suffix = sfx;
             mj_lo = Option.map (fun (e, incl) -> compile_value ctx e, incl) lo;
             mj_hi = Option.map (fun (e, incl) -> compile_value ctx e, incl) hi;
             mj_items = ref None;
             mj_cursor = ref 0;
           })
  in
  let merge_choice = ref None in
  List.iter
    (fun ((_, _, lo, hi) as cand) ->
      let info = ordered_info cand in
      if info <> None || ctx.opts.force_merge_join then
        match mk_merge cand with
        | None -> ()
        | Some access ->
          let rsel =
            if lo <> None && hi <> None then range_selectivity /. 2.0
            else range_selectivity
          in
          let cost = n_rows *. rsel *. 0.4 in
          (match !merge_choice with
           | Some (c, _, _) when c <= cost -> ()
           | Some _ | None ->
             merge_choice := Some (cost, access, Option.value ~default:[] info)))
    merge_cands;
  (match !merge_choice with
   | None -> ()
   | Some (cost, access, ups) ->
     let cost = if ctx.opts.force_merge_join then neg_infinity else cost in
     (match !best with
      | Some (c, _) when c <= cost -> ()
      | Some _ | None ->
        best := Some (cost, access);
        upgrades := ups));
  match hash_candidate with
  | Some hp when ctx.opts.force_hash_join -> `Hash_probe hp, []
  | Some hp when !best = None -> `Hash_probe hp, []
  | Some _ | None ->
    (match !best with
     | Some (_, (`Merge_join _ as access)) -> access, !upgrades
     | Some (_, access) -> access, []
     | None -> `Scan, [])

(* ------------------------------------------------------------------ *)
(* EXISTS                                                              *)
(* ------------------------------------------------------------------ *)

and compile_exists ctx (sel : Sql.select) : pred_fn =
  match (if ctx.naive then None else decorrelate_exists ctx sel) with
  | Some pred -> pred
  | None ->
    (* Correlated evaluation with early exit. Plan once, execute per
       binding. *)
    let p = plan_select ctx sel in
    let counters = ctx.counters in
    let exception Found in
    fun outer ->
      let bind = Array.make p.pl_total [||] in
      Array.blit outer 0 bind 0 p.pl_env;
      if not (List.for_all (fun f -> f bind = Some true) p.pl_pre) then Some false
      else
        (try
           exec_steps counters p.pl_steps bind (fun _ -> raise Found);
           Some false
         with Found -> Some true)

(* Semi-join rewrite: if every correlated conjunct of the EXISTS is an
   equality between an inner expression and an outer expression, and the
   compared types hash consistently (both string-like or both numeric),
   evaluate the inner query once, collect the distinct inner key tuples,
   and turn the EXISTS into a hash-set membership test. *)
and decorrelate_exists ctx (sel : Sql.select) : pred_fn option =
  match exists_shape ctx sel with
  | `Correlated -> None
  | `Uncorrelated merged ->
    (* Fully uncorrelated: evaluate once, cache the boolean. *)
    let p = plan_select ctx merged in
    let counters = ctx.counters in
    let cache = ref None in
    let exception Found in
    Some
      (fun outer ->
        match !cache with
        | Some b -> Some b
        | None ->
          let bind = Array.make p.pl_total [||] in
          Array.blit outer 0 bind 0 p.pl_env;
          let b =
            List.for_all (fun f -> f bind = Some true) p.pl_pre
            &&
            (try
               exec_steps counters p.pl_steps bind (fun _ -> raise Found);
               false
             with Found -> true)
          in
          cache := Some b;
          Some b)
  | `Semijoin (pairs, kinds, inner_sel) ->
    let outer_fns = List.map (fun (o, _) -> compile_value ctx o) pairs in
    let table = ref None in
    let build outer =
      match !table with
      | Some t -> t
      | None ->
        let t = Hashtbl.create 1024 in
        (* The inner query sees no outer slots it depends on; pass
           the current binding anyway (harmless). *)
        iter_select_rows ctx inner_sel outer (fun row ->
            let key =
              List.map2 (fun kind v -> canon_key kind v) kinds (Array.to_list row)
            in
            if List.for_all Option.is_some key then
              Hashtbl.replace t (List.map Option.get key) ());
        table := Some t;
        t
    in
    Some
      (fun outer ->
        let t = build outer in
        let key =
          List.map2 (fun kind fn -> canon_key kind (fn outer)) kinds outer_fns
        in
        if List.exists Option.is_none key then Some false
        else Some (Hashtbl.mem t (List.map Option.get key)))

(* Run a select and emit each projected row (no distinct/order). *)
and iter_select_rows ctx sel outer emit_row =
  let p = plan_select ctx sel in
  let bind = Array.make p.pl_total [||] in
  Array.blit outer 0 bind 0 p.pl_env;
  if List.for_all (fun f -> f bind = Some true) p.pl_pre then
    exec_steps ctx.counters p.pl_steps bind (fun b ->
        emit_row (Array.of_list (List.map (fun (fn, _) -> fn b) p.pl_project)))

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let compare_rows (a : Value.t array) (b : Value.t array) =
  let n = min (Array.length a) (Array.length b) in
  let rec go i =
    if i >= n then Int.compare (Array.length a) (Array.length b)
    else
      match Value.compare_total a.(i) b.(i) with
      | 0 -> go (i + 1)
      | c -> c
  in
  go 0

module Row_set = Set.Make (struct
  type t = Value.t array

  let compare = compare_rows
end)

(* Shared DISTINCT / ORDER BY tail for one select's emitted
   (sort keys, projected row) pairs, in emission order. DISTINCT keeps
   the first occurrence of each row. When the plan proved it emits rows
   nondecreasing on the sort keys ([pl_order_preserved]), the stable
   sort would be the identity and is skipped. *)
let finalize_select p rows =
  let rows =
    if p.pl_distinct then begin
      let seen = ref Row_set.empty in
      List.filter
        (fun (_, row) ->
          if Row_set.mem row !seen then false
          else begin
            seen := Row_set.add row !seen;
            true
          end)
        rows
    end
    else rows
  in
  if p.pl_order_by = [] || p.pl_order_preserved then rows
  else List.stable_sort (fun (ka, _) (kb, _) -> compare_rows ka kb) rows

(* Shared UNION tail: distinct over whole rows (first occurrence wins),
   then ORDER BY the given projection ordinals. *)
let finalize_union order_cols all =
  let seen = ref Row_set.empty in
  let rows =
    List.filter
      (fun row ->
        if Row_set.mem row !seen then false
        else begin
          seen := Row_set.add row !seen;
          true
        end)
      all
  in
  if order_cols = [] then rows
  else
    List.stable_sort
      (fun a b ->
        let rec go = function
          | [] -> 0
          | i :: rest ->
            (match Value.compare_total a.(i) b.(i) with 0 -> go rest | c -> c)
        in
        go order_cols)
      rows

(* Compile a select once — planning, join ordering, access-path choice,
   the semi-join reduction and predicate compilation all happen here —
   and return a closure that executes the compiled pipeline. Memoized
   state created at compile time (EXISTS caches, pathid sets, hash-join
   build tables) is shared across executions, which is sound as long as
   the database has not changed (enforced by {!run_plan}'s epoch check;
   the one-shot entry points execute immediately). *)
let compile_select ?(footprint = Hashtbl.create 8) ?(verdicts = Hashtbl.create 16)
    ~naive ~opts ~counters db (sel : Sql.select) : unit -> result =
  let ctx = { db; slots = [||]; naive; opts; counters; footprint; verdicts } in
  let p = plan_select ctx sel in
  fun () ->
    let bind = Array.make p.pl_total [||] in
    let out = ref [] in
    if List.for_all (fun f -> f bind = Some true) p.pl_pre then
      exec_steps counters p.pl_steps bind (fun b ->
          let row = Array.of_list (List.map (fun (fn, _) -> fn b) p.pl_project) in
          let keys = Array.of_list (List.map (fun fn -> fn b) p.pl_order_by) in
          out := (keys, row) :: !out);
    let rows = finalize_select p (List.rev !out) in
    { columns = List.map snd sel.Sql.projections; rows = List.map snd rows }

let compile_statement ?(footprint = Hashtbl.create 8) ~naive ~opts ~counters db =
  let verdicts = Hashtbl.create 16 in
  function
  | Sql.Select sel -> compile_select ~footprint ~verdicts ~naive ~opts ~counters db sel
  | Sql.Select_count sel ->
    let counted =
      compile_select ~footprint ~verdicts ~naive ~opts ~counters db
        {
          sel with
          Sql.distinct = false;
          projections = [ Sql.Const (Value.Int 1), "one" ];
          order_by = [];
        }
    in
    fun () ->
      { columns = [ "count" ]; rows = [ [| Value.Int (List.length (counted ()).rows) |] ] }
  | Sql.Union (branches, order_cols) ->
    (match branches with
     | [] -> fun () -> { columns = []; rows = [] }
     | first :: _ ->
       let arity = List.length first.Sql.projections in
       List.iter
         (fun b ->
           if List.length b.Sql.projections <> arity then
             error "UNION branches project different arities")
         branches;
       let compiled =
         List.map (compile_select ~footprint ~verdicts ~naive ~opts ~counters db) branches
       in
       fun () ->
         let all = List.concat_map (fun run -> (run ()).rows) compiled in
         let rows = finalize_union order_cols all in
         { columns = List.map snd first.Sql.projections; rows })

let run_statement ~naive ~opts db stmt =
  Database.with_read db (fun () ->
      compile_statement ~naive ~opts ~counters:(counters_create ()) db stmt ())

(* ------------------------------------------------------------------ *)
(* Prepared plans                                                      *)
(* ------------------------------------------------------------------ *)

type plan = {
  plan_db : Database.t;
  mutable plan_epoch : int;
  plan_exec : unit -> result;
  plan_counters : counters;
  plan_fp : (string, fp_entry) Hashtbl.t;
}

let prepare ?(opts = default_opts) db stmt =
  Database.with_read db (fun () ->
      let counters = counters_create () in
      let footprint = Hashtbl.create 8 in
      {
        plan_db = db;
        plan_epoch = Database.epoch db;
        plan_exec = compile_statement ~footprint ~naive:false ~opts ~counters db stmt;
        plan_counters = counters;
        plan_fp = footprint;
      })

let plan_epoch p = p.plan_epoch

let plan_valid p = Database.epoch p.plan_db = p.plan_epoch

let plan_stats p = stats_of p.plan_counters

let plan_footprint p =
  Hashtbl.fold
    (fun table e acc ->
      let dep =
        match e.fe_dep with
        | Dep_all -> `All
        | Dep_paths set ->
          `Paths (List.sort Int.compare (Hashtbl.fold (fun k () l -> k :: l) set []))
      in
      (table, dep) :: acc)
    p.plan_fp []
  |> List.sort compare

(* Fine-grained revalidation: the plan stays runnable after commits whose
   changed-pathid sets are disjoint from its footprint. On success the
   recorded versions (and epoch) advance so the next check is O(1) when
   nothing further changed. *)
let plan_compatible p =
  Database.epoch p.plan_db = p.plan_epoch
  || Hashtbl.fold
       (fun table e ok ->
         ok
         &&
         match Database.delta_pathids p.plan_db ~table ~from_version:e.fe_version with
         | None -> false
         | Some changed -> (
           match e.fe_dep with
           | Dep_all -> (
             (* Any touch at all invalidates a Dep_all table. *)
             match Database.table_opt p.plan_db table with
             | None -> false
             | Some tbl -> Table.version tbl = e.fe_version)
           | Dep_paths set -> not (List.exists (Hashtbl.mem set) changed)))
       p.plan_fp true
     && begin
          Hashtbl.iter
            (fun table e ->
              match Database.table_opt p.plan_db table with
              | Some tbl -> e.fe_version <- Table.version tbl
              | None -> ())
            p.plan_fp;
          p.plan_epoch <- Database.epoch p.plan_db;
          true
        end

let run_plan p =
  Database.with_read p.plan_db (fun () ->
      if not (plan_compatible p) then
        error "stale plan: database epoch moved from %d to %d since prepare"
          p.plan_epoch (Database.epoch p.plan_db);
      p.plan_exec ())

(* ------------------------------------------------------------------ *)
(* Profiled execution and EXPLAIN                                      *)
(* ------------------------------------------------------------------ *)

type step_profile = {
  table : string;
  alias : string;
  access : string;
  examined : int;
  passed : int;
  seconds : float;
}

let access_label : access -> string = function
  | `Scan -> "full scan"
  | `Index_eq _ -> "index eq lookup"
  | `Index_range _ -> "index range scan"
  | `Index_order _ -> "index order scan"
  | `Prefix_lookup _ -> "prefix lookups"
  | `Hash_probe _ -> "hash join"
  | `Merge_join _ -> "merge join (dewey)"
  | `Partition_scan _ -> "partition scan"
  | `Content_probe cp -> Printf.sprintf "content index probe (%s)" cp.cp_kinds

(* EXPLAIN-ANALYZE style execution of one select: like the compiled
   pipeline with per-step row counters and inclusive per-step wall time
   (a step's seconds include the steps nested inside its loop). *)
let run_select_profiled ~opts ~counters db (sel : Sql.select) =
  let ctx =
    {
      db;
      slots = [||];
      naive = false;
      opts;
      counters;
      footprint = Hashtbl.create 8;
      verdicts = Hashtbl.create 16;
    }
  in
  let p = plan_select ctx sel in
  let steps_arr = Array.of_list p.pl_steps in
  let nsteps = Array.length steps_arr in
  let examined = Array.make nsteps 0 in
  let passed = Array.make nsteps 0 in
  let seconds = Array.make nsteps 0.0 in
  let bind = Array.make p.pl_total [||] in
  let out = ref [] in
  let rec exec i =
    if i >= nsteps then begin
      counters.c_emitted <- counters.c_emitted + 1;
      let row = Array.of_list (List.map (fun (fn, _) -> fn bind) p.pl_project) in
      let keys = Array.of_list (List.map (fun fn -> fn bind) p.pl_order_by) in
      out := (keys, row) :: !out
    end
    else begin
      let st = steps_arr.(i) in
      let t0 = Unix.gettimeofday () in
      iter_access counters st.st_table st.st_access bind (fun row_id ->
          let row = Table.row st.st_table row_id in
          if Array.length row > 0 then begin
            examined.(i) <- examined.(i) + 1;
            bind.(st.st_slot) <- row;
            if List.for_all (fun f -> f bind = Some true) st.st_filters then begin
              passed.(i) <- passed.(i) + 1;
              if st.st_content then
                counters.c_content_verified <- counters.c_content_verified + 1;
              exec (i + 1)
            end
          end);
      seconds.(i) <- seconds.(i) +. (Unix.gettimeofday () -. t0)
    end
  in
  if List.for_all (fun f -> f bind = Some true) p.pl_pre then exec 0;
  let rows = finalize_select p (List.rev !out) in
  let profiles =
    List.mapi
      (fun i st ->
        {
          table = Table.name st.st_table;
          alias = fst p.pl_ctx.slots.(st.st_slot);
          access =
            access_label st.st_access
            ^ (match st.st_probe_labels with
               | [] -> ""
               | ls -> " + " ^ String.concat " + " ls);
          examined = examined.(i);
          passed = passed.(i);
          seconds = seconds.(i);
        })
      p.pl_steps
  in
  ( { columns = List.map snd sel.Sql.projections; rows = List.map snd rows },
    profiles )

let run_profiled ?(opts = default_opts) db stmt =
  Database.with_read db @@ fun () ->
  let counters = counters_create () in
  let result, profiles =
    match stmt with
    | Sql.Select sel -> run_select_profiled ~opts ~counters db sel
    | Sql.Select_count sel ->
      let counted, profiles =
        run_select_profiled ~opts ~counters db
          {
            sel with
            Sql.distinct = false;
            projections = [ Sql.Const (Value.Int 1), "one" ];
            order_by = [];
          }
      in
      ( { columns = [ "count" ]; rows = [ [| Value.Int (List.length counted.rows) |] ] },
        profiles )
    | Sql.Union (branches, order_cols) ->
      (match branches with
       | [] -> { columns = []; rows = [] }, []
       | first :: _ ->
         let arity = List.length first.Sql.projections in
         List.iter
           (fun b ->
             if List.length b.Sql.projections <> arity then
               error "UNION branches project different arities")
           branches;
         let results = List.map (run_select_profiled ~opts ~counters db) branches in
         let all = List.concat_map (fun (r, _) -> r.rows) results in
         let rows = finalize_union order_cols all in
         ( { columns = List.map snd first.Sql.projections; rows },
           List.concat_map snd results ))
  in
  result, profiles, stats_of counters

let run ?(opts = default_opts) db stmt = run_statement ~naive:false ~opts db stmt

let run_naive db stmt = run_statement ~naive:true ~opts:default_opts db stmt

let explain ?(opts = default_opts) db stmt =
  Database.with_read db @@ fun () ->
  let buf = Buffer.create 256 in
  let verdicts = Hashtbl.create 16 in
  (* EXISTS sub-selects anywhere in a predicate tree, outermost first. *)
  let rec exists_subs (e : Sql.expr) acc =
    match e with
    | Sql.Exists sub -> sub :: acc
    | Sql.And (a, b) | Sql.Or (a, b) -> exists_subs a (exists_subs b acc)
    | Sql.Not a -> exists_subs a acc
    | _ -> acc
  in
  let rec describe_select ?(slots = [||]) prefix (sel : Sql.select) =
    let ctx =
      {
        db;
        slots;
        naive = false;
        opts;
        counters = counters_create ();
        footprint = Hashtbl.create 8;
        verdicts;
      }
    in
    let p = plan_select ctx sel in
    List.iter
      (fun rd ->
        Buffer.add_string buf
          (Printf.sprintf
             "%ssemi-join reduction: %s(%s) REGEXP '%s' -> %d of %d path ids, probed on %s.%s\n"
             prefix rd.rd_dim_table rd.rd_dim_alias rd.rd_pattern rd.rd_matched
             rd.rd_total rd.rd_fact_alias rd.rd_fact_col))
      p.pl_reductions;
    if p.pl_pre <> [] then
      Buffer.add_string buf
        (Printf.sprintf "%sconstant filters: %d\n" prefix (List.length p.pl_pre));
    List.iter
      (fun st ->
        let alias = fst p.pl_ctx.slots.(st.st_slot) in
        let access_str =
          match st.st_access with
          | `Scan -> "full scan"
          | `Index_eq (tree, fns) ->
            Printf.sprintf "index eq lookup (%d cols, width %d)" (Array.length fns)
              (Btree.width tree)
          | `Index_range (tree, fns, lo, hi) ->
            Printf.sprintf "index range scan (eq prefix %d, lo %s, hi %s, width %d)"
              (Array.length fns)
              (if lo = None then "-inf" else "bound")
              (if hi = None then "+inf" else "bound")
              (Btree.width tree)
          | `Index_order tree ->
            Printf.sprintf "index order scan (width %d)" (Btree.width tree)
          | `Prefix_lookup (tree, _, _) ->
            Printf.sprintf "prefix lookups (width %d)" (Btree.width tree)
          | `Hash_probe hp ->
            Printf.sprintf "hash join (build %s.%s)" (Table.name hp.hp_table) hp.hp_col
          | `Merge_join mj ->
            Printf.sprintf "merge join (dewey) (sort %s.%s%s, lo %s, hi %s)"
              (Table.name mj.mj_table) mj.mj_key_col
              (if String.equal mj.mj_suffix "" then "" else " || sentinel")
              (if mj.mj_lo = None then "-inf" else "bound")
              (if mj.mj_hi = None then "+inf" else "bound")
          | `Partition_scan ps ->
            Printf.sprintf
              "partition scan (%s order), partitions: scanned %d/%d (pruned %d, %d rows)"
              ps.ps_sort_col (Array.length ps.ps_keys) ps.ps_total
              (ps.ps_total - Array.length ps.ps_keys)
              ps.ps_rows
          | `Content_probe cp ->
            Printf.sprintf
              "content index probe (%s) on %s (%d literal groups -> %d candidates)"
              cp.cp_kinds cp.cp_col cp.cp_groups (Array.length cp.cp_ids)
        in
        let probe_str =
          match st.st_probe_labels with
          | [] -> ""
          | ls -> " + " ^ String.concat " + " ls
        in
        let residual = List.length st.st_filters - List.length st.st_probe_labels in
        Buffer.add_string buf
          (Printf.sprintf "%sstep %s(%s): %s%s, %d residual filters\n" prefix
             (Table.name st.st_table) alias access_str probe_str residual))
      p.pl_steps;
    if p.pl_distinct then Buffer.add_string buf (Printf.sprintf "%sdistinct\n" prefix);
    if p.pl_order_by <> [] then
      if p.pl_order_preserved then
        Buffer.add_string buf
          (Printf.sprintf "%sorder: preserved (%d keys, sort elided)\n" prefix
             (List.length p.pl_order_by))
      else
        Buffer.add_string buf
          (Printf.sprintf "%ssort (%d keys)\n" prefix (List.length p.pl_order_by));
    (* Recurse into EXISTS sub-selects with this select's aliases in
       scope, classified exactly as decorrelate_exists will classify
       them at run time. *)
    let subs =
      match sel.Sql.where with None -> [] | Some w -> exists_subs w []
    in
    List.iter
      (fun sub ->
        match exists_shape p.pl_ctx sub with
        | `Uncorrelated merged ->
          Buffer.add_string buf
            (Printf.sprintf "%sexists subquery (uncorrelated, evaluated once):\n"
               prefix);
          describe_select ~slots:p.pl_ctx.slots (prefix ^ "  ") merged
        | `Semijoin (pairs, _, inner_sel) ->
          Buffer.add_string buf
            (Printf.sprintf
               "%sexists subquery (decorrelated semi-join, %d key%s):\n" prefix
               (List.length pairs)
               (if List.length pairs = 1 then "" else "s"));
          describe_select ~slots:p.pl_ctx.slots (prefix ^ "  ") inner_sel
        | `Correlated ->
          Buffer.add_string buf
            (Printf.sprintf "%sexists subquery (correlated, per binding):\n"
               prefix);
          describe_select ~slots:p.pl_ctx.slots (prefix ^ "  ") sub)
      subs
  in
  (match stmt with
   | Sql.Select sel | Sql.Select_count sel -> describe_select "" sel
   | Sql.Union (branches, _) ->
     List.iteri
       (fun i b ->
         Buffer.add_string buf (Printf.sprintf "union branch %d:\n" i);
         describe_select "  " b)
       branches);
  Buffer.contents buf

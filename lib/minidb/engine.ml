type result = {
  columns : string list;
  rows : Value.t array list;
}

exception Runtime_error of string

let error fmt = Format.kasprintf (fun m -> raise (Runtime_error m)) fmt

(* A binding assigns a row to every alias slot; slot order is outer-query
   slots first, then the local aliases in plan order. *)
type binding = Value.t array array

type value_fn = binding -> Value.t

type pred_fn = binding -> bool option

type ctx = {
  db : Database.t;
  slots : (string * Table.t) array;
  naive : bool;
}

let slot_of ctx alias =
  (* Search from the end: inner FROM aliases shadow outer ones. *)
  let rec go i =
    if i < 0 then error "unknown alias %s" alias
    else if String.equal (fst ctx.slots.(i)) alias then i
    else go (i - 1)
  in
  go (Array.length ctx.slots - 1)

let column_slot ctx alias col =
  let slot = slot_of ctx alias in
  let table = snd ctx.slots.(slot) in
  match Table.column_index table col with
  | Some i -> slot, i
  | None -> error "table %s (alias %s) has no column %s" (Table.name table) alias col

(* Static type of an expression, when derivable; used to gate EXISTS
   decorrelation on hash-compatible comparison types. *)
let rec static_ty ctx = function
  | Sql.Col (alias, col) ->
    let slot = slot_of ctx alias in
    Table.column_ty (snd ctx.slots.(slot)) col
  | Sql.Const v -> Value.type_of v
  | Sql.Concat (a, _) ->
    (match static_ty ctx a with
     | Some Value.Tbin -> Some Value.Tbin
     | Some _ | None -> Some Value.Tstr)
  | Sql.To_number _ -> Some Value.Tfloat
  | Sql.Arith _ -> Some Value.Tfloat
  | Sql.Length _ | Sql.Count_subquery _ -> Some Value.Tint
  | Sql.Cmp _ | Sql.Between _ | Sql.And _ | Sql.Or _ | Sql.Not _
  | Sql.Regexp_like _ | Sql.Exists _ | Sql.Is_not_null _ | Sql.Bool_const _ ->
    None

let rec compile_value ctx (e : Sql.expr) : value_fn =
  match e with
  | Sql.Col (alias, col) ->
    let slot, i = column_slot ctx alias col in
    fun b -> b.(slot).(i)
  | Sql.Const v -> fun _ -> v
  | Sql.Concat (a, b) ->
    let fa = compile_value ctx a and fb = compile_value ctx b in
    fun bind -> Value.concat (fa bind) (fb bind)
  | Sql.To_number a ->
    let fa = compile_value ctx a in
    fun bind ->
      (match Value.to_float (fa bind) with
       | Some f -> Value.Float f
       | None -> Value.Null)
  | Sql.Arith (op, a, b) ->
    let fa = compile_value ctx a and fb = compile_value ctx b in
    fun bind ->
      (match Value.to_float (fa bind), Value.to_float (fb bind) with
       | Some x, Some y ->
         (match op with
          | Sql.Add -> Value.Float (x +. y)
          | Sql.Sub -> Value.Float (x -. y)
          | Sql.Mul -> Value.Float (x *. y)
          | Sql.Div -> Value.Float (x /. y)
          | Sql.Mod -> Value.Float (Float.rem x y))
       | None, _ | _, None -> Value.Null)
  | Sql.Length a ->
    let fa = compile_value ctx a in
    fun bind ->
      (match fa bind with
       | Value.Str s | Value.Bin s -> Value.Int (String.length s)
       | Value.Null -> Value.Null
       | Value.Int _ | Value.Float _ ->
         error "LENGTH applied to a numeric value")
  | Sql.Count_subquery sel ->
    (* Correlated scalar COUNT: plan once, count matching bindings per
       outer row. *)
    let _ctx', env_slots, pre_filters, steps, _, _, _, total = plan_select ctx sel in
    fun outer ->
      let bind = Array.make total [||] in
      Array.blit outer 0 bind 0 env_slots;
      if not (List.for_all (fun p -> p bind = Some true) pre_filters) then Value.Int 0
      else begin
        let n = ref 0 in
        exec_steps steps bind (fun _ -> incr n);
        Value.Int !n
      end
  | Sql.Cmp _ | Sql.Between _ | Sql.And _ | Sql.Or _ | Sql.Not _
  | Sql.Regexp_like _ | Sql.Exists _ | Sql.Is_not_null _ | Sql.Bool_const _ ->
    error "boolean expression used where a value is required: %s"
      (Format.asprintf "%a" Sql.pp_expr e)

and compile_pred ctx (e : Sql.expr) : pred_fn =
  match e with
  | Sql.Cmp (op, a, b) ->
    let fa = compile_value ctx a and fb = compile_value ctx b in
    let test c =
      match op with
      | Sql.Eq -> c = 0
      | Sql.Ne -> c <> 0
      | Sql.Lt -> c < 0
      | Sql.Le -> c <= 0
      | Sql.Gt -> c > 0
      | Sql.Ge -> c >= 0
    in
    fun bind -> Option.map test (Value.compare_sql (fa bind) (fb bind))
  | Sql.Between (e, lo, hi) ->
    let fe = compile_value ctx e
    and flo = compile_value ctx lo
    and fhi = compile_value ctx hi in
    fun bind ->
      let v = fe bind in
      (match Value.compare_sql v (flo bind), Value.compare_sql v (fhi bind) with
       | Some a, Some b -> Some (a >= 0 && b <= 0)
       | None, _ | _, None -> None)
  | Sql.And (a, b) ->
    let fa = compile_pred ctx a and fb = compile_pred ctx b in
    fun bind ->
      (* Kleene conjunction. *)
      (match fa bind, fb bind with
       | Some false, _ | _, Some false -> Some false
       | Some true, Some true -> Some true
       | None, _ | _, None -> None)
  | Sql.Or (a, b) ->
    let fa = compile_pred ctx a and fb = compile_pred ctx b in
    fun bind ->
      (match fa bind, fb bind with
       | Some true, _ | _, Some true -> Some true
       | Some false, Some false -> Some false
       | None, _ | _, None -> None)
  | Sql.Not a ->
    let fa = compile_pred ctx a in
    fun bind -> Option.map not (fa bind)
  | Sql.Regexp_like (e, pattern) ->
    let fe = compile_value ctx e in
    let re =
      try Ppfx_regex.Regex.compile pattern
      with Ppfx_regex.Regex.Parse_error msg ->
        error "invalid regular expression %S: %s" pattern msg
    in
    fun bind ->
      (match fe bind with
       | Value.Null -> None
       | Value.Str s | Value.Bin s -> Some (Ppfx_regex.Regex.search re s)
       | Value.Int i -> Some (Ppfx_regex.Regex.search re (string_of_int i))
       | Value.Float f -> Some (Ppfx_regex.Regex.search re (string_of_float f)))
  | Sql.Exists sel -> compile_exists ctx sel
  | Sql.Is_not_null a ->
    let fa = compile_value ctx a in
    fun bind -> Some (match fa bind with Value.Null -> false | _ -> true)
  | Sql.Bool_const b -> fun _ -> Some b
  | Sql.Col _ | Sql.Const _ | Sql.Concat _ | Sql.Arith _ | Sql.To_number _
  | Sql.Length _ | Sql.Count_subquery _ ->
    error "value expression used where a condition is required: %s"
      (Format.asprintf "%a" Sql.pp_expr e)

(* ------------------------------------------------------------------ *)
(* Planning                                                            *)
(* ------------------------------------------------------------------ *)

and plan_select ctx (sel : Sql.select) =
  (* Extend the slot table with the select's own aliases. *)
  let local_aliases =
    List.map
      (fun (table, alias) ->
        match Database.table_opt ctx.db table with
        | Some t -> alias, t
        | None -> error "unknown table %s" table)
      sel.Sql.from
  in
  (* Duplicate aliases in one FROM clause would make column references
     ambiguous and break slot binding. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (alias, _) ->
      if Hashtbl.mem seen alias then error "duplicate alias %s in FROM" alias;
      Hashtbl.add seen alias ())
    local_aliases;
  let env_slots = Array.length ctx.slots in
  let ctx = { ctx with slots = Array.append ctx.slots (Array.of_list local_aliases) } in
  let conjuncts = match sel.Sql.where with None -> [] | Some w -> Sql.conjuncts w in
  let local_names = List.map fst local_aliases in
  let is_local a = List.mem a local_names in
  (* Greedy join-order selection. *)
  let order =
    if ctx.naive then List.mapi (fun i _ -> env_slots + i) local_aliases
    else begin
      let bound = ref [] in
      let remaining = ref (List.mapi (fun i (a, t) -> i + env_slots, a, t) local_aliases) in
      let order = ref [] in
      let outer_bound a = not (is_local a) in
      let applicable alias conj =
        let free = Sql.free_aliases conj in
        List.mem alias free
        && List.for_all (fun f -> String.equal f alias || outer_bound f || List.mem f !bound) free
      in
      (* Estimated rows this alias contributes per outer binding, using
         cached per-column distinct counts for equality conjuncts. *)
      let estimate alias table =
        let n = float_of_int (max 1 (Table.row_count table)) in
        let eq_sel col = 1.0 /. float_of_int (Table.distinct_estimate table col) in
        let sel_of conj =
          match conj with
          | Sql.Cmp (Sql.Eq, Sql.Col (a, col), _) when String.equal a alias -> eq_sel col
          | Sql.Cmp (Sql.Eq, _, Sql.Col (a, col)) when String.equal a alias -> eq_sel col
          | Sql.Cmp (Sql.Eq, _, _) -> 0.05
          | Sql.Between _ -> 0.02
          | Sql.Cmp ((Sql.Lt | Sql.Le | Sql.Gt | Sql.Ge), _, _) -> 0.25
          | Sql.Regexp_like _ -> 0.2
          | Sql.Cmp (Sql.Ne, _, _) -> 0.9
          | Sql.And _ | Sql.Or _ | Sql.Not _ | Sql.Exists _ -> 0.5
          | Sql.Is_not_null _ -> 0.9
          | Sql.Bool_const _ -> 1.0
          | Sql.Col _ | Sql.Const _ | Sql.Concat _ | Sql.Arith _ | Sql.To_number _
          | Sql.Length _ | Sql.Count_subquery _ -> 1.0
        in
        List.fold_left
          (fun acc conj -> if applicable alias conj then acc *. sel_of conj else acc)
          n conjuncts
      in
      let connected alias =
        List.exists
          (fun conj ->
            let free = Sql.free_aliases conj in
            List.mem alias free
            && List.exists
                 (fun f -> (not (String.equal f alias)) && (outer_bound f || List.mem f !bound))
                 free)
          conjuncts
      in
      while !remaining <> [] do
        let scored =
          List.map
            (fun (slot, alias, table) ->
              let cost = estimate alias table in
              let penalty =
                if !bound = [] && env_slots = 0 then 1.0
                else if connected alias then 1.0
                else 1e6
              in
              (cost *. penalty, slot, alias))
            !remaining
        in
        let best =
          List.fold_left
            (fun acc entry ->
              match acc with
              | None -> Some entry
              | Some (c, _, _) ->
                let c', _, _ = entry in
                if c' < c then Some entry else acc)
            None scored
        in
        (match best with
         | None -> assert false
         | Some (_, slot, alias) ->
           order := slot :: !order;
           bound := alias :: !bound;
           remaining := List.filter (fun (s, _, _) -> s <> slot) !remaining)
      done;
      List.rev !order
    end
  in
  (* Assign each conjunct to the earliest step after which it is fully
     bound, and choose access paths. *)
  let alias_of_slot slot = fst ctx.slots.(slot) in
  let bound_after i alias =
    (* aliases bound once steps 0..i (in [order]) have run *)
    (not (is_local alias))
    ||
    let rec go j = function
      | [] -> false
      | slot :: rest ->
        if j > i then false
        else if String.equal (alias_of_slot slot) alias then true
        else go (j + 1) rest
    in
    go 0 order
  in
  let step_of_conjunct conj =
    let free = Sql.free_aliases conj in
    let rec earliest i =
      if i >= List.length order then
        (* references only outer aliases: evaluate before any local step *)
        -1
      else if List.for_all (bound_after i) free then i
      else earliest (i + 1)
    in
    if List.for_all (fun a -> not (is_local a)) free then -1
    else earliest 0
  in
  let assigned = List.map (fun c -> step_of_conjunct c, c) conjuncts in
  let pre_filters =
    List.filter_map (fun (i, c) -> if i = -1 then Some (compile_pred ctx c) else None) assigned
  in
  let steps =
    List.mapi
      (fun i slot ->
        let alias = alias_of_slot slot in
        let table = snd ctx.slots.(slot) in
        let my_conjuncts = List.filter_map (fun (j, c) -> if j = i then Some c else None) assigned in
        let access =
          if ctx.naive then `Scan
          else choose_access ctx ~table ~alias ~bound:(bound_after (i - 1)) conjuncts
        in
        let filters = List.map (compile_pred ctx) my_conjuncts in
        (slot, table, access, filters))
      order
  in
  let projections =
    List.map (fun (e, name) -> compile_value ctx e, name) sel.Sql.projections
  in
  let order_by = List.map (compile_value ctx) sel.Sql.order_by in
  ( ctx,
    env_slots,
    pre_filters,
    steps,
    projections,
    sel.Sql.distinct,
    order_by,
    Array.length ctx.slots )

(* Pick the best index access for [table]/[alias], given that [bound]
   tells which other aliases are already available. Returns a strategy
   that computes B+tree bounds per binding. All conjuncts are re-checked
   as filters afterwards, so a lossy-but-superset access is sound. *)
and choose_access ctx ~table ~alias ~bound conjuncts =
  let bound_expr e =
    List.for_all (fun a -> (not (String.equal a alias)) && bound a) (Sql.free_aliases e)
    || Sql.free_aliases e = []
  in
  (* Ancestor-prefix candidates: [e BETWEEN col AND col || sfx] holds
     exactly when col is a byte-prefix of e, so the matching rows can be
     fetched by equality lookups on every prefix of e's value — turning a
     Dewey ancestor join into O(depth) index probes. *)
  let prefix_lookup =
    List.find_map
      (fun conj ->
        match conj with
        | Sql.Between (e, Sql.Col (a1, c1), Sql.Concat (Sql.Col (a2, c2), _))
          when String.equal a1 alias && String.equal a2 alias && String.equal c1 c2
               && bound_expr e ->
          (match Table.index_with_prefix table [ c1 ] with
           | Some (tree, _) -> Some (tree, compile_value ctx e)
           | None -> None)
        | _ -> None)
      conjuncts
  in
  (* Equality candidates: col = <bound expr>. *)
  let equalities =
    List.filter_map
      (fun conj ->
        match conj with
        | Sql.Cmp (Sql.Eq, Sql.Col (a, col), e) when String.equal a alias && bound_expr e ->
          Some (col, e)
        | Sql.Cmp (Sql.Eq, e, Sql.Col (a, col)) when String.equal a alias && bound_expr e ->
          Some (col, e)
        | _ -> None)
      conjuncts
  in
  (* Range candidates: col cmp <bound expr>, plus the sound relaxations of
     concat comparisons (col || suffix < e implies col < e). *)
  let ranges =
    List.filter_map
      (fun conj ->
        match conj with
        | Sql.Between (Sql.Col (a, col), lo, hi)
          when String.equal a alias && bound_expr lo && bound_expr hi ->
          Some (col, Some (lo, true), Some (hi, true))
        | Sql.Cmp (op, Sql.Col (a, col), e) when String.equal a alias && bound_expr e ->
          (match op with
           | Sql.Lt -> Some (col, None, Some (e, false))
           | Sql.Le -> Some (col, None, Some (e, true))
           | Sql.Gt -> Some (col, Some ((e, false) : Sql.expr * bool), None)
           | Sql.Ge -> Some (col, Some (e, true), None)
           | Sql.Eq | Sql.Ne -> None)
        | Sql.Cmp (op, e, Sql.Col (a, col)) when String.equal a alias && bound_expr e ->
          (match op with
           | Sql.Gt -> Some (col, None, Some (e, false))
           | Sql.Ge -> Some (col, None, Some (e, true))
           | Sql.Lt -> Some (col, Some (e, false), None)
           | Sql.Le -> Some (col, Some (e, true), None)
           | Sql.Eq | Sql.Ne -> None)
        | Sql.Cmp ((Sql.Lt | Sql.Le), Sql.Concat (Sql.Col (a, col), _), e)
          when String.equal a alias && bound_expr e ->
          (* col || sfx <= e implies col < e (sfx non-empty). *)
          Some (col, None, Some (e, false))
        | Sql.Cmp ((Sql.Gt | Sql.Ge), e, Sql.Concat (Sql.Col (a, col), _))
          when String.equal a alias && bound_expr e ->
          Some (col, None, Some (e, false))
        | _ -> None)
      conjuncts
  in
  (* Cost-based choice: estimate the rows each candidate access path
     fetches. Equality selectivity comes from cached per-column distinct
     counts; ranges use a fixed factor. Lowest estimate wins; residual
     filters re-check everything, so estimates only affect speed. *)
  let n_rows = float_of_int (max 1 (Table.row_count table)) in
  let eq_selectivity col = 1.0 /. float_of_int (Table.distinct_estimate table col) in
  let range_selectivity = 0.25 in
  let best = ref None in
  let consider cost access =
    match !best with
    | Some (c, _) when c <= cost -> ()
    | Some _ | None -> best := Some (cost, access)
  in
  List.iter
    (fun (cols, tree) ->
      let rec eq_prefix acc sel = function
        | [] -> List.rev acc, sel, []
        | col :: rest ->
          (match List.assoc_opt col equalities with
           | Some e -> eq_prefix (e :: acc) (sel *. eq_selectivity col) rest
           | None -> List.rev acc, sel, col :: rest)
      in
      let eqs, sel, rest = eq_prefix [] 1.0 cols in
      let range_next =
        match rest with
        | [] -> None
        | col :: _ ->
          List.fold_left
            (fun acc (rcol, lo, hi) ->
              if String.equal rcol col then
                match acc with
                | None -> Some (lo, hi)
                | Some (lo0, hi0) ->
                  (* Merge: keep any bound we have. *)
                  Some
                    ( (match lo0 with None -> lo | some -> some),
                      match hi0 with None -> hi | some -> some )
              else acc)
            None ranges
      in
      match eqs, range_next with
      | [], None -> ()
      | eqs, None ->
        let fns = Array.of_list (List.map (compile_value ctx) eqs) in
        consider (n_rows *. sel) (`Index_eq (tree, fns))
      | eqs, Some (lo, hi) ->
        let fns = Array.of_list (List.map (compile_value ctx) eqs) in
        let cbound = Option.map (fun (e, incl) -> compile_value ctx e, incl) in
        let rsel = if lo <> None && hi <> None then range_selectivity /. 2.0 else range_selectivity in
        consider (n_rows *. sel *. rsel) (`Index_range (tree, fns, cbound lo, cbound hi)))
    (Table.indexes table);
  (match prefix_lookup with
   | Some (tree, fn) ->
     (* One probe per prefix length: bounded by the key depth. *)
     consider 24.0 (`Prefix_lookup (tree, fn))
   | None -> ());
  match !best with
  | Some (_, access) -> access
  | None -> `Scan

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

and iter_access table access (bind : binding) (f : int -> unit) =
  match access with
  | `Scan -> Table.iter_rows (fun id _ -> f id) table
  | `Prefix_lookup (tree, fn) ->
    (match fn bind with
     | Value.Bin v | Value.Str v ->
       for k = 1 to String.length v do
         List.iter f (Btree.find_equal tree [| Value.Bin (String.sub v 0 k) |])
       done
     | Value.Null | Value.Int _ | Value.Float _ -> ())
  | `Index_eq (tree, fns) ->
    let key = Array.map (fun fn -> fn bind) fns in
    if Array.exists (function Value.Null -> true | _ -> false) key then ()
    else List.iter f (Btree.find_equal tree key)
  | `Index_range (tree, fns, lo, hi) ->
    let prefix = Array.map (fun fn -> fn bind) fns in
    if Array.exists (function Value.Null -> true | _ -> false) prefix then ()
    else begin
      let bound side =
        match side with
        | None -> Some { Btree.key = prefix; inclusive = true }
        | Some (fn, inclusive) ->
          (match fn bind with
           | Value.Null -> None
           | v -> Some { Btree.key = Array.append prefix [| v |]; inclusive })
      in
      (* A NULL range bound means the comparison is unknown: no rows. *)
      let lo_b = bound lo and hi_b = bound hi in
      match lo, lo_b, hi, hi_b with
      | Some _, None, _, _ | _, _, Some _, None -> ()
      | _, lo_b, _, hi_b -> List.iter f (Btree.range tree ~lo:lo_b ~hi:hi_b)
    end

and exec_steps steps bind emit =
  match steps with
  | [] -> emit bind
  | (slot, table, access, filters) :: rest ->
    iter_access table access bind (fun row_id ->
        bind.(slot) <- Table.row table row_id;
        if List.for_all (fun p -> p bind = Some true) filters then
          exec_steps rest bind emit)

and compile_exists ctx (sel : Sql.select) : pred_fn =
  match (if ctx.naive then None else decorrelate_exists ctx sel) with
  | Some pred -> pred
  | None ->
    (* Correlated evaluation with early exit. Plan once, execute per
       binding. *)
    let _ctx', env_slots, pre_filters, steps, _, _, _, total = plan_select ctx sel in
    let exception Found in
    fun outer ->
      let bind = Array.make total [||] in
      Array.blit outer 0 bind 0 env_slots;
      if not (List.for_all (fun p -> p bind = Some true) pre_filters) then Some false
      else
        (try
           exec_steps steps bind (fun _ -> raise Found);
           Some false
         with Found -> Some true)

(* Semi-join rewrite: if every correlated conjunct of the EXISTS is an
   equality between an inner expression and an outer expression, and the
   compared types hash consistently (both string-like or both numeric),
   evaluate the inner query once, collect the distinct inner key tuples,
   and turn the EXISTS into a hash-set membership test. *)
and decorrelate_exists ctx (sel : Sql.select) : pred_fn option =
  let outer_aliases =
    Array.to_list (Array.map fst ctx.slots)
  in
  let local_names = List.map snd sel.Sql.from in
  (* A name is outer if it is not bound by the inner FROM. *)
  let is_outer a = (not (List.mem a local_names)) && List.mem a outer_aliases in
  let conjuncts = match sel.Sql.where with None -> [] | Some w -> Sql.conjuncts w in
  let correlated, uncorrelated =
    List.partition (fun c -> List.exists is_outer (Sql.free_aliases c)) conjuncts
  in
  if correlated = [] then begin
    (* Fully uncorrelated: evaluate once, cache the boolean. *)
    let _ctx', env_slots, pre_filters, steps, _, _, _, total =
      plan_select ctx { sel with Sql.where = (match conjuncts with [] -> None | c :: cs -> List.fold_left (fun acc x -> Some (Sql.And (Option.get acc, x))) (Some c) cs) }
    in
    let cache = ref None in
    let exception Found in
    Some
      (fun outer ->
        match !cache with
        | Some b -> Some b
        | None ->
          let bind = Array.make total [||] in
          Array.blit outer 0 bind 0 env_slots;
          let b =
            List.for_all (fun p -> p bind = Some true) pre_filters
            &&
            (try
               exec_steps steps bind (fun _ -> raise Found);
               false
             with Found -> true)
          in
          cache := Some b;
          Some b)
  end
  else begin
    let split = function
      | Sql.Cmp (Sql.Eq, a, b) ->
        let a_outer = List.for_all is_outer (Sql.free_aliases a)
        and b_outer = List.for_all is_outer (Sql.free_aliases b) in
        let a_inner =
          List.for_all (fun x -> not (is_outer x)) (Sql.free_aliases a)
          && Sql.free_aliases a <> []
        and b_inner =
          List.for_all (fun x -> not (is_outer x)) (Sql.free_aliases b)
          && Sql.free_aliases b <> []
        in
        if a_outer && b_inner then Some (a, b)
        else if b_outer && a_inner then Some (b, a)
        else None
      | _ -> None
    in
    let pairs = List.map split correlated in
    if List.exists (fun p -> p = None) pairs then None
    else begin
      let pairs = List.filter_map Fun.id pairs in
      (* Check hash-compatible types for each pair. *)
      let key_kind (outer_e, inner_e) =
        (* Inner expression types must be derived with inner aliases in
           scope; extend the slot table the same way plan_select will. *)
        let inner_ctx =
          {
            ctx with
            slots =
              Array.append ctx.slots
                (Array.of_list
                   (List.map
                      (fun (table, alias) ->
                        match Database.table_opt ctx.db table with
                        | Some t -> alias, t
                        | None -> error "unknown table %s" table)
                      sel.Sql.from));
          }
        in
        match static_ty ctx outer_e, static_ty inner_ctx inner_e with
        | Some (Value.Tstr | Value.Tbin), Some (Value.Tstr | Value.Tbin) -> Some `Str
        | Some (Value.Tint | Value.Tfloat), Some (Value.Tint | Value.Tfloat) -> Some `Num
        | _ -> None
      in
      let kinds = List.map key_kind pairs in
      if List.exists (fun k -> k = None) kinds then None
      else begin
        let kinds = List.filter_map Fun.id kinds in
        (* Canonical hash key for a value under a kind. *)
        let canon kind v =
          match kind, v with
          | _, Value.Null -> None
          | `Str, (Value.Str s | Value.Bin s) -> Some s
          | `Str, (Value.Int _ | Value.Float _) -> None
          | `Num, v ->
            (match Value.to_float v with
             | Some f -> Some (string_of_float f)
             | None -> None)
        in
        (* Build the uncorrelated inner query projecting the inner key
           expressions. *)
        let inner_sel =
          {
            sel with
            Sql.where =
              (match uncorrelated with
               | [] -> None
               | c :: cs -> Some (List.fold_left (fun acc x -> Sql.And (acc, x)) c cs));
            Sql.projections =
              List.mapi (fun i (_, inner_e) -> inner_e, Printf.sprintf "k%d" i) pairs;
            Sql.distinct = true;
            Sql.order_by = [];
          }
        in
        (* The inner query must now be completely uncorrelated. *)
        let still_correlated =
          List.exists
            (fun (e, _) -> List.exists is_outer (Sql.free_aliases e))
            inner_sel.Sql.projections
        in
        if still_correlated then None
        else begin
          let outer_fns = List.map (fun (o, _) -> compile_value ctx o) pairs in
          let table = ref None in
          let build outer =
            match !table with
            | Some t -> t
            | None ->
              let t = Hashtbl.create 1024 in
              (* The inner query sees no outer slots it depends on; pass
                 the current binding anyway (harmless). *)
              iter_select_rows ctx inner_sel outer (fun row ->
                  let key =
                    List.map2 (fun kind v -> canon kind v) kinds (Array.to_list row)
                  in
                  if List.for_all Option.is_some key then
                    Hashtbl.replace t (List.map Option.get key) ());
              table := Some t;
              t
          in
          Some
            (fun outer ->
              let t = build outer in
              let key =
                List.map2 (fun kind fn -> canon kind (fn outer)) kinds outer_fns
              in
              if List.exists Option.is_none key then Some false
              else Some (Hashtbl.mem t (List.map Option.get key)))
        end
      end
    end
  end

(* Run a select and emit each projected row (no distinct/order). *)
and iter_select_rows ctx sel outer emit_row =
  let _ctx', env_slots, pre_filters, steps, projections, _, _, total =
    plan_select ctx sel
  in
  let bind = Array.make total [||] in
  Array.blit outer 0 bind 0 env_slots;
  if List.for_all (fun p -> p bind = Some true) pre_filters then
    exec_steps steps bind (fun b ->
        emit_row (Array.of_list (List.map (fun (fn, _) -> fn b) projections)))

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let compare_rows (a : Value.t array) (b : Value.t array) =
  let n = min (Array.length a) (Array.length b) in
  let rec go i =
    if i >= n then Int.compare (Array.length a) (Array.length b)
    else
      match Value.compare_total a.(i) b.(i) with
      | 0 -> go (i + 1)
      | c -> c
  in
  go 0

module Row_set = Set.Make (struct
  type t = Value.t array

  let compare = compare_rows
end)

(* Compile a select once — planning, join ordering, access-path choice and
   predicate compilation all happen here — and return a closure that
   executes the compiled pipeline. Memoized EXISTS state created at
   compile time is shared across executions, which is sound as long as
   the database has not changed (enforced by {!run_plan}'s epoch check;
   the one-shot entry points execute immediately). *)
let compile_select ~naive db (sel : Sql.select) : unit -> result =
  let ctx = { db; slots = [||]; naive } in
  let _ctx', _env, pre_filters, steps, projections, distinct, order_by, total =
    plan_select ctx sel
  in
  fun () ->
    let bind = Array.make total [||] in
    let out = ref [] in
    if List.for_all (fun p -> p bind = Some true) pre_filters then
      exec_steps steps bind (fun b ->
          let row = Array.of_list (List.map (fun (fn, _) -> fn b) projections) in
          let keys = Array.of_list (List.map (fun fn -> fn b) order_by) in
          out := (keys, row) :: !out);
    let rows = List.rev !out in
    let rows =
      if distinct then begin
        let seen = ref Row_set.empty in
        List.filter
          (fun (_, row) ->
            if Row_set.mem row !seen then false
            else begin
              seen := Row_set.add row !seen;
              true
            end)
          rows
      end
      else rows
    in
    let rows =
      if order_by = [] then rows
      else List.stable_sort (fun (ka, _) (kb, _) -> compare_rows ka kb) rows
    in
    { columns = List.map snd sel.Sql.projections; rows = List.map snd rows }

let compile_statement ~naive db = function
  | Sql.Select sel -> compile_select ~naive db sel
  | Sql.Select_count sel ->
    let counted =
      compile_select ~naive db
        {
          sel with
          Sql.distinct = false;
          projections = [ Sql.Const (Value.Int 1), "one" ];
          order_by = [];
        }
    in
    fun () ->
      { columns = [ "count" ]; rows = [ [| Value.Int (List.length (counted ()).rows) |] ] }
  | Sql.Union (branches, order_cols) ->
    (match branches with
     | [] -> fun () -> { columns = []; rows = [] }
     | first :: _ ->
       let arity = List.length first.Sql.projections in
       List.iter
         (fun b ->
           if List.length b.Sql.projections <> arity then
             error "UNION branches project different arities")
         branches;
       let compiled = List.map (compile_select ~naive db) branches in
       fun () ->
         let all = List.concat_map (fun run -> (run ()).rows) compiled in
         let seen = ref Row_set.empty in
         let rows =
           List.filter
             (fun row ->
               if Row_set.mem row !seen then false
               else begin
                 seen := Row_set.add row !seen;
                 true
               end)
             all
         in
         let rows =
           if order_cols = [] then rows
           else
             List.stable_sort
               (fun a b ->
                 let rec go = function
                   | [] -> 0
                   | i :: rest ->
                     (match Value.compare_total a.(i) b.(i) with 0 -> go rest | c -> c)
                 in
                 go order_cols)
               rows
         in
         { columns = List.map snd first.Sql.projections; rows })

let run_statement ~naive db stmt = compile_statement ~naive db stmt ()

(* ------------------------------------------------------------------ *)
(* Prepared plans                                                      *)
(* ------------------------------------------------------------------ *)

type plan = {
  plan_db : Database.t;
  plan_epoch : int;
  plan_exec : unit -> result;
}

let prepare db stmt =
  {
    plan_db = db;
    plan_epoch = Database.epoch db;
    plan_exec = compile_statement ~naive:false db stmt;
  }

let plan_epoch p = p.plan_epoch

let plan_valid p = Database.epoch p.plan_db = p.plan_epoch

let run_plan p =
  if not (plan_valid p) then
    error "stale plan: database epoch moved from %d to %d since prepare"
      p.plan_epoch (Database.epoch p.plan_db);
  p.plan_exec ()

type step_profile = {
  table : string;
  alias : string;
  access : string;
  examined : int;
  passed : int;
}

let access_label = function
  | `Scan -> "full scan"
  | `Index_eq _ -> "index eq lookup"
  | `Index_range _ -> "index range scan"
  | `Prefix_lookup _ -> "prefix lookups"

(* EXPLAIN-ANALYZE style execution of one select: like [run_select] with
   per-step row counters. *)
let run_select_profiled db (sel : Sql.select) =
  let ctx = { db; slots = [||]; naive = false } in
  let ctx', _env, pre_filters, steps, projections, distinct, order_by, total =
    plan_select ctx sel
  in
  let nsteps = List.length steps in
  let examined = Array.make nsteps 0 in
  let passed = Array.make nsteps 0 in
  let steps_arr = Array.of_list steps in
  let bind = Array.make total [||] in
  let out = ref [] in
  let rec exec i =
    if i >= nsteps then begin
      let row = Array.of_list (List.map (fun (fn, _) -> fn bind) projections) in
      let keys = Array.of_list (List.map (fun fn -> fn bind) order_by) in
      out := (keys, row) :: !out
    end
    else begin
      let slot, table, access, filters = steps_arr.(i) in
      iter_access table access bind (fun row_id ->
          examined.(i) <- examined.(i) + 1;
          bind.(slot) <- Table.row table row_id;
          if List.for_all (fun p -> p bind = Some true) filters then begin
            passed.(i) <- passed.(i) + 1;
            exec (i + 1)
          end)
    end
  in
  if List.for_all (fun p -> p bind = Some true) pre_filters then exec 0;
  let rows = List.rev !out in
  let rows =
    if distinct then begin
      let seen = ref Row_set.empty in
      List.filter
        (fun (_, row) ->
          if Row_set.mem row !seen then false
          else begin
            seen := Row_set.add row !seen;
            true
          end)
        rows
    end
    else rows
  in
  let rows =
    if order_by = [] then rows
    else List.stable_sort (fun (ka, _) (kb, _) -> compare_rows ka kb) rows
  in
  let profiles =
    List.mapi
      (fun i (slot, table, access, _) ->
        {
          table = Table.name table;
          alias = fst ctx'.slots.(slot);
          access = access_label access;
          examined = examined.(i);
          passed = passed.(i);
        })
      steps
  in
  ( { columns = List.map snd sel.Sql.projections; rows = List.map snd rows },
    profiles )

let run_profiled db = function
  | Sql.Select sel -> run_select_profiled db sel
  | Sql.Select_count sel ->
    let counted, profiles =
      run_select_profiled db
        {
          sel with
          Sql.distinct = false;
          projections = [ Sql.Const (Value.Int 1), "one" ];
          order_by = [];
        }
    in
    ( { columns = [ "count" ]; rows = [ [| Value.Int (List.length counted.rows) |] ] },
      profiles )
  | Sql.Union (branches, order_cols) ->
    let results = List.map (run_select_profiled db) branches in
    let union =
      run_statement ~naive:false db
        (Sql.Union (branches, order_cols))
    in
    union, List.concat_map snd results

let run db stmt = run_statement ~naive:false db stmt

let run_naive db stmt = run_statement ~naive:true db stmt

let explain db stmt =
  let buf = Buffer.create 256 in
  let describe_select prefix (sel : Sql.select) =
    let ctx = { db; slots = [||]; naive = false } in
    let ctx', _env, pre, steps, _, distinct, order_by, _ = plan_select ctx sel in
    if pre <> [] then
      Buffer.add_string buf (Printf.sprintf "%sconstant filters: %d\n" prefix (List.length pre));
    List.iter
      (fun (slot, table, access, filters) ->
        let alias = fst ctx'.slots.(slot) in
        let access_str =
          match access with
          | `Scan -> "full scan"
          | `Index_eq (tree, fns) ->
            Printf.sprintf "index eq lookup (%d cols, width %d)" (Array.length fns)
              (Btree.width tree)
          | `Index_range (tree, fns, lo, hi) ->
            Printf.sprintf "index range scan (eq prefix %d, lo %s, hi %s, width %d)"
              (Array.length fns)
              (if lo = None then "-inf" else "bound")
              (if hi = None then "+inf" else "bound")
              (Btree.width tree)
          | `Prefix_lookup (tree, _) ->
            Printf.sprintf "prefix lookups (width %d)" (Btree.width tree)
        in
        Buffer.add_string buf
          (Printf.sprintf "%sstep %s(%s): %s, %d residual filters\n" prefix
             (Table.name table) alias access_str (List.length filters)))
      steps;
    if distinct then Buffer.add_string buf (Printf.sprintf "%sdistinct\n" prefix);
    if order_by <> [] then
      Buffer.add_string buf (Printf.sprintf "%ssort (%d keys)\n" prefix (List.length order_by))
  in
  (match stmt with
   | Sql.Select sel | Sql.Select_count sel -> describe_select "" sel
   | Sql.Union (branches, _) ->
     List.iteri
       (fun i b ->
         Buffer.add_string buf (Printf.sprintf "union branch %d:\n" i);
         describe_select "  " b)
       branches);
  Buffer.contents buf

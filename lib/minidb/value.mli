(** SQL values and their comparison semantics.

    [Bin] carries binary strings compared bytewise — the representation of
    the [dewey_pos] column (paper Section 4.2); the other constructors
    cover the scalar column types the shredders produce. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bin of string  (** binary string, bytewise lexicographic order *)

type ty = Tint | Tfloat | Tstr | Tbin

val type_of : t -> ty option
(** [None] for [Null]. *)

val compare_total : t -> t -> int
(** Total order used for sorting, DISTINCT and index keys: Null first, then
    by type, then by value. Numeric types compare together. *)

val compare_sql : t -> t -> int option
(** Three-valued SQL comparison: [None] when either side is [Null] or the
    values are incomparable. Numbers compare numerically; a [Str] compared
    against a number is coerced through numeric parsing ([None] when
    unparsable) — matching XPath 1.0 comparison semantics, which the
    translator relies on. [Bin] compares bytewise against [Bin] or [Str]. *)

val equal : t -> t -> bool
(** Equality under {!compare_total}. *)

val to_float : t -> float option
(** Numeric interpretation: numbers directly, strings via parsing. *)

val float_text : float -> string
(** Canonical numeric rendering: integral floats print as integers
    ("3", never "3."), non-integral values via [string_of_float], NaN as
    "NaN". This is the convention of the XPath reference evaluator and of
    SQL [TO_CHAR], which the translator's path regexes assume. *)

val text : t -> string option
(** Text rendering for string coercion contexts (REGEXP_LIKE, [||]):
    [None] for [Null]; numbers via {!float_text}/[string_of_int]; strings
    and binaries verbatim. *)

val concat : t -> t -> t
(** SQL [||]: string/binary concatenation. If either side is [Bin] the
    result is [Bin]. [Null] absorbs. Numeric operands render via
    {!float_text}. *)

val pp : Format.formatter -> t -> unit
(** SQL-literal style printing; binary strings as hex. *)

val to_string : t -> string

val pp_ty : Format.formatter -> ty -> unit

type column = { name : string; ty : Value.ty }

type t = {
  name : string;
  columns : column array;
  (* rows is a grow-doubling array of value arrays *)
  mutable rows : Value.t array array;  (** grow-doubling array *)
  mutable row_count : int;
  mutable indexes : (string list * int array * Btree.t) list;
      (** (columns, column positions, tree) *)
  mutable distinct_cache : (string * (int * int)) list;
      (** column -> (row count at computation, distinct estimate) *)
  mutable version : int;
      (** bumped on every insert, delete and index creation; feeds
          {!Database.epoch} so prepared plans can detect staleness *)
}

let create ~name ~(columns : column list) =
  (match columns with
   | [] -> invalid_arg "Table.create: no columns"
   | _ -> ());
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (c : column) ->
      if Hashtbl.mem seen c.name then
        invalid_arg (Printf.sprintf "Table.create: duplicate column %s" c.name);
      Hashtbl.add seen c.name ())
    columns;
  {
    name;
    columns = Array.of_list columns;
    rows = [||];
    row_count = 0;
    indexes = [];
    distinct_cache = [];
    version = 0;
  }

let name t = t.name

let version t = t.version

let columns t = Array.to_list t.columns

let column_index t col =
  let rec go i =
    if i >= Array.length t.columns then None
    else if String.equal t.columns.(i).name col then Some i
    else go (i + 1)
  in
  go 0

let column_ty t col =
  Option.map (fun i -> t.columns.(i).ty) (column_index t col)

let type_ok ty v =
  match v, ty with
  | Value.Null, _ -> true
  | Value.Int _, Value.Tint
  | Value.Float _, Value.Tfloat
  | Value.Str _, Value.Tstr
  | Value.Bin _, Value.Tbin ->
    true
  | (Value.Int _ | Value.Float _ | Value.Str _ | Value.Bin _), _ -> false

let insert t values =
  if Array.length values <> Array.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.insert(%s): %d values for %d columns" t.name
         (Array.length values) (Array.length t.columns));
  Array.iteri
    (fun i v ->
      if not (type_ok t.columns.(i).ty v) then
        invalid_arg
          (Printf.sprintf "Table.insert(%s): value %s does not match column %s : %s"
             t.name (Value.to_string v) t.columns.(i).name
             (Format.asprintf "%a" Value.pp_ty t.columns.(i).ty)))
    values;
  if t.row_count = Array.length t.rows then begin
    let cap = max 16 (2 * Array.length t.rows) in
    let bigger = Array.make cap [||] in
    Array.blit t.rows 0 bigger 0 t.row_count;
    t.rows <- bigger
  end;
  let id = t.row_count in
  t.rows.(id) <- values;
  t.row_count <- id + 1;
  List.iter
    (fun (_, positions, tree) ->
      Btree.insert tree (Array.map (fun p -> values.(p)) positions) id)
    t.indexes;
  t.version <- t.version + 1;
  id

let delete t id =
  if id < 0 || id >= t.row_count || Array.length t.rows.(id) = 0 then false
  else begin
    let values = t.rows.(id) in
    List.iter
      (fun (_, positions, tree) ->
        ignore (Btree.delete tree (Array.map (fun p -> values.(p)) positions) id))
      t.indexes;
    t.rows.(id) <- [||];
    (* Invalidate cached statistics. *)
    t.distinct_cache <- [];
    t.version <- t.version + 1;
    true
  end

let update t id values =
  if id < 0 || id >= t.row_count || Array.length t.rows.(id) = 0 then false
  else begin
    if Array.length values <> Array.length t.columns then
      invalid_arg
        (Printf.sprintf "Table.update(%s): %d values for %d columns" t.name
           (Array.length values) (Array.length t.columns));
    Array.iteri
      (fun i v ->
        if not (type_ok t.columns.(i).ty v) then
          invalid_arg
            (Printf.sprintf "Table.update(%s): value %s does not match column %s : %s"
               t.name (Value.to_string v) t.columns.(i).name
               (Format.asprintf "%a" Value.pp_ty t.columns.(i).ty)))
      values;
    let old_values = t.rows.(id) in
    List.iter
      (fun (_, positions, tree) ->
        let old_key = Array.map (fun p -> old_values.(p)) positions in
        let new_key = Array.map (fun p -> values.(p)) positions in
        if old_key <> new_key then begin
          ignore (Btree.delete tree old_key id);
          Btree.insert tree new_key id
        end)
      t.indexes;
    t.rows.(id) <- values;
    t.distinct_cache <- [];
    t.version <- t.version + 1;
    true
  end

let row_count t = t.row_count

let live_count t =
  let n = ref 0 in
  for id = 0 to t.row_count - 1 do
    if Array.length t.rows.(id) > 0 then incr n
  done;
  !n

let row t id =
  if id < 0 || id >= t.row_count then
    invalid_arg (Printf.sprintf "Table.row(%s): id %d out of range" t.name id);
  t.rows.(id)

let iter_rows f t =
  for id = 0 to t.row_count - 1 do
    if Array.length t.rows.(id) > 0 then f id t.rows.(id)
  done

let create_index t cols =
  if List.exists (fun (existing, _, _) -> existing = cols) t.indexes then ()
  else begin
    let positions =
      Array.of_list
        (List.map
           (fun c ->
             match column_index t c with
             | Some i -> i
             | None ->
               invalid_arg
                 (Printf.sprintf "Table.create_index(%s): no column %s" t.name c))
           cols)
    in
    let tree = Btree.create ~width:(Array.length positions) () in
    iter_rows
      (fun id values -> Btree.insert tree (Array.map (fun p -> values.(p)) positions) id)
      t;
    t.indexes <- t.indexes @ [ (cols, positions, tree) ];
    t.version <- t.version + 1
  end

let index_on t cols =
  List.find_map
    (fun (existing, _, tree) -> if existing = cols then Some tree else None)
    t.indexes

let rec is_prefix prefix l =
  match prefix, l with
  | [], _ -> true
  | p :: ps, x :: xs -> String.equal p x && is_prefix ps xs
  | _ :: _, [] -> false

let index_with_prefix t cols =
  List.find_map
    (fun (existing, _, tree) ->
      if is_prefix cols existing then Some (tree, List.length existing) else None)
    t.indexes

let indexes t = List.map (fun (cols, _, tree) -> cols, tree) t.indexes

let distinct_estimate t col =
  match column_index t col with
  | None -> 1
  | Some pos ->
    (match List.assoc_opt col t.distinct_cache with
     | Some (stamp, d) when stamp = t.row_count -> d
     | Some _ | None ->
       let seen = Hashtbl.create 256 in
       for id = 0 to t.row_count - 1 do
         if Array.length t.rows.(id) > 0 then
           match t.rows.(id).(pos) with
           | Value.Null -> ()
           | v -> Hashtbl.replace seen (Value.to_string v) ()
       done;
       let d = max 1 (Hashtbl.length seen) in
       t.distinct_cache <-
         (col, (t.row_count, d)) :: List.remove_assoc col t.distinct_cache;
       d)

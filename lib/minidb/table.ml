type column = { name : string; ty : Value.ty }

type partition_spec = { part_col : string; part_sort : string }

(* One partition: live row ids sorted ascending on the sort column's value
   (ties by id). Grow-doubling like the heap. *)
type part = { mutable p_ids : int array; mutable p_len : int }

type partitioning = {
  spec : partition_spec;
  part_idx : int;  (* position of the partition (fk) column *)
  sort_idx : int;  (* position of the sort column *)
  parts : (int, part) Hashtbl.t;  (* Int partition key -> segment *)
  overflow : part;  (* rows whose partition key is Null / non-Int *)
}

type content_kind = Token | Trigram

(* One posting list: live row ids ascending, grow-doubling like the
   partition segments. *)
type posting = { mutable ids : int array; mutable len : int }

type content_index = {
  c_col : string;
  c_pos : int;  (* column position *)
  c_kind : content_kind;
  postings : (string, posting) Hashtbl.t;  (* term -> row ids *)
}

type t = {
  name : string;
  columns : column array;
  (* rows is a grow-doubling array of value arrays *)
  mutable rows : Value.t array array;  (** grow-doubling array *)
  mutable row_count : int;
  mutable indexes : (string list * int array * Btree.t) list;
      (** (columns, column positions, tree) *)
  mutable content : content_index list;
  mutable distinct_cache : (string * (int * int)) list;
      (** column -> (row count at computation, distinct estimate) *)
  mutable version : int;
      (** bumped on every insert, delete and index creation; feeds
          {!Database.epoch} so prepared plans can detect staleness *)
  partitioning : partitioning option;
}

let create ?partition ~name ~(columns : column list) () =
  (match columns with
   | [] -> invalid_arg "Table.create: no columns"
   | _ -> ());
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (c : column) ->
      if Hashtbl.mem seen c.name then
        invalid_arg (Printf.sprintf "Table.create: duplicate column %s" c.name);
      Hashtbl.add seen c.name ())
    columns;
  let find_col what c =
    let rec go i = function
      | [] ->
        invalid_arg
          (Printf.sprintf "Table.create(%s): %s column %s does not exist" name what c)
      | (col : column) :: rest -> if String.equal col.name c then i else go (i + 1) rest
    in
    go 0 columns
  in
  let partitioning =
    Option.map
      (fun spec ->
        let part_idx = find_col "partition" spec.part_col in
        (match (List.nth columns part_idx).ty with
         | Value.Tint -> ()
         | _ ->
           invalid_arg
             (Printf.sprintf "Table.create(%s): partition column %s must be int" name
                spec.part_col));
        let sort_idx = find_col "partition sort" spec.part_sort in
        { spec; part_idx; sort_idx;
          parts = Hashtbl.create 64;
          overflow = { p_ids = [||]; p_len = 0 } })
      partition
  in
  {
    name;
    columns = Array.of_list columns;
    rows = [||];
    row_count = 0;
    indexes = [];
    content = [];
    distinct_cache = [];
    version = 0;
    partitioning;
  }

(* ---- partition segment maintenance ------------------------------------ *)

(* Order within a segment: ascending on the sort column under
   {!Value.compare_total}, ties broken by row id. Bulk loads insert in
   document order, so the common case is an O(1) append; out-of-order
   inserts (ORDPATH caret labels from the write path) binary-search their
   slot and shift. *)
let seg_cmp t pn id_a id_b =
  match
    Value.compare_total t.rows.(id_a).(pn.sort_idx) t.rows.(id_b).(pn.sort_idx)
  with
  | 0 -> compare id_a id_b
  | c -> c

let seg_for pn v =
  match v with
  | Value.Int k ->
    (match Hashtbl.find_opt pn.parts k with
     | Some p -> p
     | None ->
       let p = { p_ids = [||]; p_len = 0 } in
       Hashtbl.add pn.parts k p;
       p)
  | _ -> pn.overflow

let seg_existing pn v =
  match v with
  | Value.Int k -> Hashtbl.find_opt pn.parts k
  | _ -> Some pn.overflow

let seg_add t pn p id =
  if p.p_len = Array.length p.p_ids then begin
    let cap = max 8 (2 * Array.length p.p_ids) in
    let bigger = Array.make cap 0 in
    Array.blit p.p_ids 0 bigger 0 p.p_len;
    p.p_ids <- bigger
  end;
  if p.p_len = 0 || seg_cmp t pn p.p_ids.(p.p_len - 1) id < 0 then
    p.p_ids.(p.p_len) <- id
  else begin
    (* first slot whose element sorts after the new row *)
    let lo = ref 0 and hi = ref p.p_len in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if seg_cmp t pn p.p_ids.(mid) id < 0 then lo := mid + 1 else hi := mid
    done;
    Array.blit p.p_ids !lo p.p_ids (!lo + 1) (p.p_len - !lo);
    p.p_ids.(!lo) <- id
  end;
  p.p_len <- p.p_len + 1

let seg_remove t pn p id =
  (* Binary search by the row's current sort key, then drop the slot. *)
  let lo = ref 0 and hi = ref p.p_len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if seg_cmp t pn p.p_ids.(mid) id < 0 then lo := mid + 1 else hi := mid
  done;
  let at =
    if !lo < p.p_len && p.p_ids.(!lo) = id then !lo
    else begin
      (* defensive fallback; unreachable while the sorted invariant holds *)
      let rec find i = if i >= p.p_len then -1 else if p.p_ids.(i) = id then i else find (i + 1) in
      find 0
    end
  in
  if at >= 0 then begin
    Array.blit p.p_ids (at + 1) p.p_ids at (p.p_len - at - 1);
    p.p_len <- p.p_len - 1
  end

let part_insert t id values =
  match t.partitioning with
  | None -> ()
  | Some pn -> seg_add t pn (seg_for pn values.(pn.part_idx)) id

(* Must run while [t.rows.(id)] still holds the row being removed (the
   binary search keys off the stored sort value). *)
let part_remove t id values =
  match t.partitioning with
  | None -> ()
  | Some pn ->
    (match seg_existing pn values.(pn.part_idx) with
     | Some p -> seg_remove t pn p id
     | None -> ())

(* ---- content (token / trigram) index maintenance ---------------------- *)

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

(* Distinct terms of a text value under the index kind. Token: maximal
   whitespace-free runs. Trigram: every 3-byte substring. *)
let content_terms kind s =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let add t =
    if not (Hashtbl.mem seen t) then begin
      Hashtbl.add seen t ();
      out := t :: !out
    end
  in
  let n = String.length s in
  (match kind with
   | Token ->
     let i = ref 0 in
     while !i < n do
       while !i < n && is_space s.[!i] do incr i done;
       let start = !i in
       while !i < n && not (is_space s.[!i]) do incr i done;
       if !i > start then add (String.sub s start (!i - start))
     done
   | Trigram ->
     for i = 0 to n - 3 do
       add (String.sub s i 3)
     done);
  !out

(* Posting lists mirror the partition segments: ascending row ids,
   O(1) append for the monotone bulk-load case, binary-search insert for
   out-of-order ids (updates re-filing an old row). *)
let posting_add p id =
  if p.len = Array.length p.ids then begin
    let cap = max 8 (2 * Array.length p.ids) in
    let bigger = Array.make cap 0 in
    Array.blit p.ids 0 bigger 0 p.len;
    p.ids <- bigger
  end;
  if p.len = 0 || p.ids.(p.len - 1) < id then p.ids.(p.len) <- id
  else begin
    let lo = ref 0 and hi = ref p.len in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if p.ids.(mid) < id then lo := mid + 1 else hi := mid
    done;
    if !lo < p.len && p.ids.(!lo) = id then raise Exit;
    Array.blit p.ids !lo p.ids (!lo + 1) (p.len - !lo);
    p.ids.(!lo) <- id
  end;
  p.len <- p.len + 1

let posting_remove p id =
  let lo = ref 0 and hi = ref p.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if p.ids.(mid) < id then lo := mid + 1 else hi := mid
  done;
  if !lo < p.len && p.ids.(!lo) = id then begin
    Array.blit p.ids (!lo + 1) p.ids !lo (p.len - !lo - 1);
    p.len <- p.len - 1
  end

let content_index_row ci id v =
  match v with
  | Value.Str s ->
    List.iter
      (fun term ->
        let p =
          match Hashtbl.find_opt ci.postings term with
          | Some p -> p
          | None ->
            let p = { ids = [||]; len = 0 } in
            Hashtbl.add ci.postings term p;
            p
        in
        (try posting_add p id with Exit -> ()))
      (content_terms ci.c_kind s)
  | _ -> ()

let content_unindex_row ci id v =
  match v with
  | Value.Str s ->
    List.iter
      (fun term ->
        match Hashtbl.find_opt ci.postings term with
        | Some p ->
          posting_remove p id;
          if p.len = 0 then Hashtbl.remove ci.postings term
        | None -> ())
      (content_terms ci.c_kind s)
  | _ -> ()

let content_insert t id values =
  List.iter (fun ci -> content_index_row ci id values.(ci.c_pos)) t.content

let content_remove t id values =
  List.iter (fun ci -> content_unindex_row ci id values.(ci.c_pos)) t.content

let content_update t id old_values values =
  List.iter
    (fun ci ->
      let ov = old_values.(ci.c_pos) and nv = values.(ci.c_pos) in
      if not (Value.equal ov nv) then begin
        content_unindex_row ci id ov;
        content_index_row ci id nv
      end)
    t.content

let name t = t.name

let version t = t.version

let columns t = Array.to_list t.columns

let column_index t col =
  let rec go i =
    if i >= Array.length t.columns then None
    else if String.equal t.columns.(i).name col then Some i
    else go (i + 1)
  in
  go 0

let column_ty t col =
  Option.map (fun i -> t.columns.(i).ty) (column_index t col)

let type_ok ty v =
  match v, ty with
  | Value.Null, _ -> true
  | Value.Int _, Value.Tint
  | Value.Float _, Value.Tfloat
  | Value.Str _, Value.Tstr
  | Value.Bin _, Value.Tbin ->
    true
  | (Value.Int _ | Value.Float _ | Value.Str _ | Value.Bin _), _ -> false

let insert t values =
  if Array.length values <> Array.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.insert(%s): %d values for %d columns" t.name
         (Array.length values) (Array.length t.columns));
  Array.iteri
    (fun i v ->
      if not (type_ok t.columns.(i).ty v) then
        invalid_arg
          (Printf.sprintf "Table.insert(%s): value %s does not match column %s : %s"
             t.name (Value.to_string v) t.columns.(i).name
             (Format.asprintf "%a" Value.pp_ty t.columns.(i).ty)))
    values;
  if t.row_count = Array.length t.rows then begin
    let cap = max 16 (2 * Array.length t.rows) in
    let bigger = Array.make cap [||] in
    Array.blit t.rows 0 bigger 0 t.row_count;
    t.rows <- bigger
  end;
  let id = t.row_count in
  t.rows.(id) <- values;
  t.row_count <- id + 1;
  part_insert t id values;
  List.iter
    (fun (_, positions, tree) ->
      Btree.insert tree (Array.map (fun p -> values.(p)) positions) id)
    t.indexes;
  content_insert t id values;
  t.version <- t.version + 1;
  id

let delete t id =
  if id < 0 || id >= t.row_count || Array.length t.rows.(id) = 0 then false
  else begin
    let values = t.rows.(id) in
    List.iter
      (fun (_, positions, tree) ->
        ignore (Btree.delete tree (Array.map (fun p -> values.(p)) positions) id))
      t.indexes;
    content_remove t id values;
    part_remove t id values;
    t.rows.(id) <- [||];
    (* Invalidate cached statistics. *)
    t.distinct_cache <- [];
    t.version <- t.version + 1;
    true
  end

let update t id values =
  if id < 0 || id >= t.row_count || Array.length t.rows.(id) = 0 then false
  else begin
    if Array.length values <> Array.length t.columns then
      invalid_arg
        (Printf.sprintf "Table.update(%s): %d values for %d columns" t.name
           (Array.length values) (Array.length t.columns));
    Array.iteri
      (fun i v ->
        if not (type_ok t.columns.(i).ty v) then
          invalid_arg
            (Printf.sprintf "Table.update(%s): value %s does not match column %s : %s"
               t.name (Value.to_string v) t.columns.(i).name
               (Format.asprintf "%a" Value.pp_ty t.columns.(i).ty)))
      values;
    let old_values = t.rows.(id) in
    List.iter
      (fun (_, positions, tree) ->
        let old_key = Array.map (fun p -> old_values.(p)) positions in
        let new_key = Array.map (fun p -> values.(p)) positions in
        if old_key <> new_key then begin
          ignore (Btree.delete tree old_key id);
          Btree.insert tree new_key id
        end)
      t.indexes;
    content_update t id old_values values;
    (match t.partitioning with
     | Some pn
       when not
              (Value.equal old_values.(pn.part_idx) values.(pn.part_idx)
               && Value.equal old_values.(pn.sort_idx) values.(pn.sort_idx)) ->
       part_remove t id old_values;
       t.rows.(id) <- values;
       part_insert t id values
     | Some _ | None -> t.rows.(id) <- values);
    t.distinct_cache <- [];
    t.version <- t.version + 1;
    true
  end

let row_count t = t.row_count

let live_count t =
  let n = ref 0 in
  for id = 0 to t.row_count - 1 do
    if Array.length t.rows.(id) > 0 then incr n
  done;
  !n

let row t id =
  if id < 0 || id >= t.row_count then
    invalid_arg (Printf.sprintf "Table.row(%s): id %d out of range" t.name id);
  t.rows.(id)

let iter_rows f t =
  for id = 0 to t.row_count - 1 do
    if Array.length t.rows.(id) > 0 then f id t.rows.(id)
  done

let create_index t cols =
  if List.exists (fun (existing, _, _) -> existing = cols) t.indexes then ()
  else begin
    let positions =
      Array.of_list
        (List.map
           (fun c ->
             match column_index t c with
             | Some i -> i
             | None ->
               invalid_arg
                 (Printf.sprintf "Table.create_index(%s): no column %s" t.name c))
           cols)
    in
    let tree = Btree.create ~width:(Array.length positions) () in
    iter_rows
      (fun id values -> Btree.insert tree (Array.map (fun p -> values.(p)) positions) id)
      t;
    t.indexes <- t.indexes @ [ (cols, positions, tree) ];
    t.version <- t.version + 1
  end

let index_on t cols =
  List.find_map
    (fun (existing, _, tree) -> if existing = cols then Some tree else None)
    t.indexes

let rec is_prefix prefix l =
  match prefix, l with
  | [], _ -> true
  | p :: ps, x :: xs -> String.equal p x && is_prefix ps xs
  | _ :: _, [] -> false

let index_with_prefix t cols =
  List.find_map
    (fun (existing, _, tree) ->
      if is_prefix cols existing then Some (tree, List.length existing) else None)
    t.indexes

let indexes t = List.map (fun (cols, _, tree) -> cols, tree) t.indexes

let distinct_estimate t col =
  match column_index t col with
  | None -> 1
  | Some pos ->
    (match List.assoc_opt col t.distinct_cache with
     | Some (stamp, d) when stamp = t.row_count -> d
     | Some _ | None ->
       let seen = Hashtbl.create 256 in
       for id = 0 to t.row_count - 1 do
         if Array.length t.rows.(id) > 0 then
           match t.rows.(id).(pos) with
           | Value.Null -> ()
           | v -> Hashtbl.replace seen (Value.to_string v) ()
       done;
       let d = max 1 (Hashtbl.length seen) in
       t.distinct_cache <-
         (col, (t.row_count, d)) :: List.remove_assoc col t.distinct_cache;
       d)

(* ---- partition introspection ------------------------------------------ *)

let partition_spec t = Option.map (fun pn -> pn.spec) t.partitioning

let partition_count t =
  match t.partitioning with
  | None -> 0
  | Some pn ->
    Hashtbl.fold (fun _ p n -> if p.p_len > 0 then n + 1 else n) pn.parts 0

let partition_keys t =
  match t.partitioning with
  | None -> []
  | Some pn ->
    Hashtbl.fold (fun k p acc -> if p.p_len > 0 then k :: acc else acc) pn.parts []
    |> List.sort compare

let partition_size t key =
  match t.partitioning with
  | None -> 0
  | Some pn ->
    (match Hashtbl.find_opt pn.parts key with Some p -> p.p_len | None -> 0)

let partition_view t key =
  match t.partitioning with
  | None -> [||], 0
  | Some pn ->
    (match Hashtbl.find_opt pn.parts key with
     | Some p -> p.p_ids, p.p_len
     | None -> [||], 0)

let iter_partition f t key =
  let ids, len = partition_view t key in
  for i = 0 to len - 1 do
    f ids.(i) t.rows.(ids.(i))
  done

let check_partitions t =
  match t.partitioning with
  | None -> Ok ()
  | Some pn ->
    let err fmt = Printf.ksprintf (fun s -> Error (t.name ^ ": " ^ s)) fmt in
    let seen = Hashtbl.create 256 in
    let check_seg label key_opt p =
      let rec go i =
        if i >= p.p_len then Ok ()
        else begin
          let id = p.p_ids.(i) in
          if id < 0 || id >= t.row_count || Array.length t.rows.(id) = 0 then
            err "%s holds dead row id %d" label id
          else if Hashtbl.mem seen id then err "row id %d appears in two segments" id
          else begin
            Hashtbl.add seen id ();
            let key_ok =
              match key_opt with
              | None -> (match t.rows.(id).(pn.part_idx) with Value.Int _ -> false | _ -> true)
              | Some k -> Value.equal t.rows.(id).(pn.part_idx) (Value.Int k)
            in
            if not key_ok then err "row id %d filed under wrong partition (%s)" id label
            else if i > 0 && seg_cmp t pn p.p_ids.(i - 1) id >= 0 then
              err "%s out of sort order at slot %d (row id %d)" label i id
            else go (i + 1)
          end
        end
      in
      go 0
    in
    let result =
      Hashtbl.fold
        (fun k p acc ->
          match acc with
          | Error _ -> acc
          | Ok () -> check_seg (Printf.sprintf "partition %d" k) (Some k) p)
        pn.parts (Ok ())
    in
    (match result with
     | Error _ as e -> e
     | Ok () ->
       (match check_seg "overflow segment" None pn.overflow with
        | Error _ as e -> e
        | Ok () ->
          let live = live_count t in
          if Hashtbl.length seen <> live then
            err "segments hold %d rows but table has %d live rows"
              (Hashtbl.length seen) live
          else Ok ()))

(* ---- content index API ------------------------------------------------- *)

let add_content_index t ~col ~kind =
  if
    List.exists
      (fun ci -> String.equal ci.c_col col && ci.c_kind = kind)
      t.content
  then ()
  else begin
    let pos =
      match column_index t col with
      | Some i -> i
      | None ->
        invalid_arg
          (Printf.sprintf "Table.add_content_index(%s): no column %s" t.name col)
    in
    (match t.columns.(pos).ty with
     | Value.Tstr -> ()
     | _ ->
       invalid_arg
         (Printf.sprintf "Table.add_content_index(%s): column %s is not text"
            t.name col));
    let ci = { c_col = col; c_pos = pos; c_kind = kind; postings = Hashtbl.create 256 } in
    iter_rows (fun id values -> content_index_row ci id values.(pos)) t;
    t.content <- t.content @ [ ci ];
    t.version <- t.version + 1
  end

let content_indexes t = List.map (fun ci -> (ci.c_col, ci.c_kind)) t.content

(* Sorted-array set algebra over posting lists. *)
let arr_of_posting p = Array.sub p.ids 0 p.len

let arr_intersect a b =
  let out = Array.make (min (Array.length a) (Array.length b)) 0 in
  let k = ref 0 and i = ref 0 and j = ref 0 in
  while !i < Array.length a && !j < Array.length b do
    let x = a.(!i) and y = b.(!j) in
    if x = y then begin
      out.(!k) <- x;
      incr k;
      incr i;
      incr j
    end
    else if x < y then incr i
    else incr j
  done;
  Array.sub out 0 !k

let arr_union a b =
  let out = Array.make (Array.length a + Array.length b) 0 in
  let k = ref 0 and i = ref 0 and j = ref 0 in
  let push x = out.(!k) <- x; incr k in
  while !i < Array.length a || !j < Array.length b do
    if !i >= Array.length a then begin push b.(!j); incr j end
    else if !j >= Array.length b then begin push a.(!i); incr i end
    else
      let x = a.(!i) and y = b.(!j) in
      if x = y then begin push x; incr i; incr j end
      else if x < y then begin push x; incr i end
      else begin push y; incr j end
  done;
  Array.sub out 0 !k

let posting_arr ci term =
  match Hashtbl.find_opt ci.postings term with
  | Some p -> arr_of_posting p
  | None -> [||]

(* Rows whose text can contain [lit], answered by one index; [None] when
   this index kind cannot answer for this literal. Trigram: intersect the
   posting lists of every trigram of the literal (needs >= 3 bytes).
   Token: the literal must sit inside a single token, so union the
   postings of every dictionary token containing it as a substring
   (unusable if the literal spans whitespace). *)
let contains_sub hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  m = 0 || go 0

let alt_candidates ci lit =
  match ci.c_kind with
  | Trigram ->
    if String.length lit < 3 then None
    else begin
      let acc = ref None in
      (try
         for i = 0 to String.length lit - 3 do
           let ids = posting_arr ci (String.sub lit i 3) in
           (match !acc with
            | None -> acc := Some ids
            | Some prev -> acc := Some (arr_intersect prev ids));
           if !acc = Some [||] then raise Exit
         done
       with Exit -> ());
      match !acc with Some ids -> Some ids | None -> None
    end
  | Token ->
    if lit = "" || String.exists is_space lit then None
    else
      Some
        (Hashtbl.fold
           (fun term p acc ->
             if contains_sub term lit then arr_union acc (arr_of_posting p)
             else acc)
           ci.postings [||])

let content_candidates t ~col groups =
  let cis = List.filter (fun ci -> String.equal ci.c_col col) t.content in
  if cis = [] || groups = [] then None
  else begin
    (* A group's candidates: union over its alternatives; a group is
       usable only if every alternative is answerable (a row may match
       via the unanswerable one). Dropping unusable groups is sound —
       groups are conjunctive. *)
    let group_candidates group =
      List.fold_left
        (fun acc lit ->
          match acc with
          | None -> None
          | Some ids ->
            (match List.find_map (fun ci -> alt_candidates ci lit) cis with
             | Some more -> Some (arr_union ids more)
             | None -> None))
        (Some [||]) group
    in
    let usable = List.filter_map group_candidates groups in
    match usable with
    | [] -> None
    | first :: rest -> Some (List.fold_left arr_intersect first rest)
  end

let check_content_indexes t =
  let err fmt = Printf.ksprintf (fun s -> Error (t.name ^ ": " ^ s)) fmt in
  let check_one ci =
    (* Rebuild the expected postings from the live rows and require the
       stored table to match exactly (same terms, same sorted ids). *)
    let expected = Hashtbl.create 256 in
    iter_rows
      (fun id values ->
        match values.(ci.c_pos) with
        | Value.Str s ->
          List.iter
            (fun term ->
              let l = try Hashtbl.find expected term with Not_found -> [] in
              Hashtbl.replace expected term (id :: l))
            (content_terms ci.c_kind s)
        | _ -> ())
      t;
    let kind_label = match ci.c_kind with Token -> "token" | Trigram -> "trigram" in
    if Hashtbl.length expected <> Hashtbl.length ci.postings then
      err "%s index on %s: %d stored terms, expected %d" kind_label ci.c_col
        (Hashtbl.length ci.postings) (Hashtbl.length expected)
    else
      Hashtbl.fold
        (fun term ids acc ->
          match acc with
          | Error _ -> acc
          | Ok () ->
            let want = Array.of_list (List.rev ids) in
            Array.sort compare want;
            (match Hashtbl.find_opt ci.postings term with
             | None -> err "%s index on %s: term %S missing" kind_label ci.c_col term
             | Some p ->
               if arr_of_posting p <> want then
                 err "%s index on %s: term %S holds %d ids, expected %d"
                   kind_label ci.c_col term p.len (Array.length want)
               else Ok ()))
        expected (Ok ())
  in
  List.fold_left
    (fun acc ci -> match acc with Error _ -> acc | Ok () -> check_one ci)
    (Ok ()) t.content

(** Heap tables with typed columns and attached B+tree indexes.

    A table may additionally be declared {e partitioned} by an int fk
    column (e.g. the shredder's element fact tables partitioned by
    [path_id]): alongside the heap, the table maintains one segment of
    live row ids per distinct partition-key value, each kept sorted on a
    designated sort column (e.g. [dewey_pos], whose byte order is
    document order). Segments are maintained incrementally by {!insert},
    {!delete} and {!update} — bulk loads in document order append in
    O(1); out-of-order inserts (ORDPATH caret labels from the write
    path) binary-search their slot. Row ids, indexes and {!iter_rows}
    are unaffected; the segments are a physical access path the engine
    uses for partition pruning and order-preserving scans. *)

type column = { name : string; ty : Value.ty }

type partition_spec = { part_col : string; part_sort : string }
(** Partition by [part_col] (must be an int column); keep each
    partition's rows sorted on [part_sort] (any column; compared with
    {!Value.compare_total}, ties by row id). Rows whose partition key is
    [Null] or non-int live in an overflow segment that is never matched
    by a partition scan. *)

type t

val create : ?partition:partition_spec -> name:string -> columns:column list -> unit -> t

val name : t -> string

val version : t -> int
(** Modification counter: bumped on every {!insert}, {!delete} and
    {!create_index}. {!Database.epoch} sums it across tables so prepared
    plans can detect that their compile-time assumptions are stale. *)

val columns : t -> column list
val column_index : t -> string -> int option
val column_ty : t -> string -> Value.ty option

val insert : t -> Value.t array -> int
(** Append a row; returns its row id. Values must match the column count;
    non-null values must match the column types. All indexes are
    maintained. *)

val delete : t -> int -> bool
(** Tombstone a row: it disappears from every index and from
    {!iter_rows}; its id is never reused. Returns false when the id is
    out of range or already deleted. *)

val update : t -> int -> Value.t array -> bool
(** Rewrite a live row in place, preserving its id: indexes whose keys
    changed are maintained, statistics caches are invalidated, and the
    version is bumped. Returns false when the id is out of range or
    tombstoned; raises [Invalid_argument] on a count or type mismatch. *)

val live_count : t -> int
(** Rows minus tombstones. *)

val row_count : t -> int
val row : t -> int -> Value.t array
(** Row by id. Do not mutate. *)

val iter_rows : (int -> Value.t array -> unit) -> t -> unit

val create_index : t -> string list -> unit
(** Create (and backfill) a B+tree index on the given columns. Idempotent
    for an identical column list. *)

val index_on : t -> string list -> Btree.t option
(** Exact-columns index lookup. *)

val index_with_prefix : t -> string list -> (Btree.t * int) option
(** An index whose leading columns are exactly the given list; returns the
    index and its total width. Preferred for range scans where only a
    prefix is constrained. *)

val indexes : t -> (string list * Btree.t) list

val distinct_estimate : t -> string -> int
(** Estimated number of distinct non-null values in a column (computed by
    one scan, cached until the row count changes). Used by the planner's
    selectivity model. Returns 1 for unknown columns. *)

val partition_spec : t -> partition_spec option

val partition_count : t -> int
(** Number of non-empty partitions (the overflow segment not included);
    0 for unpartitioned tables. *)

val partition_keys : t -> int list
(** Keys of non-empty partitions, ascending. *)

val partition_size : t -> int -> int
(** Live rows in the given partition (0 for absent keys). *)

val partition_view : t -> int -> int array * int
(** [(ids, len)]: the partition's live row ids in sort order occupy
    [ids.(0 .. len-1)]. The array is the table's internal segment — do
    not mutate, and do not hold across a write; valid under the owning
    database's read lock. *)

val iter_partition : (int -> Value.t array -> unit) -> t -> int -> unit
(** Iterate one partition's live rows in sort order. *)

val check_partitions : t -> (unit, string) result
(** Test hook: verify the segment invariant — every live row filed under
    exactly one segment matching its partition key, every segment sorted
    strictly ascending on (sort value, id), no dead ids. [Ok ()] for
    unpartitioned tables. *)

(** {2 Content (value) indexes}

    Inverted posting lists over a text column, maintained incrementally
    by {!insert}, {!delete} and {!update} exactly like the B+trees and
    partition segments. [Token] indexes the column's whitespace-separated
    tokens; [Trigram] indexes every 3-byte substring. The engine probes
    them with the required-literal groups extracted from a [REGEXP_LIKE]
    pattern to get a candidate-row superset, then verifies candidates
    with the compiled DFA instead of scanning every row. *)

type content_kind = Token | Trigram

val add_content_index : t -> col:string -> kind:content_kind -> unit
(** Declare (and backfill) a content index on a text column. Idempotent
    for an identical (column, kind) pair; raises [Invalid_argument] if
    the column is missing or not [Tstr]. *)

val content_indexes : t -> (string * content_kind) list
(** Declared content indexes, in declaration order (for persistence and
    EXPLAIN). *)

val content_candidates : t -> col:string -> string list list -> int array option
(** [content_candidates t ~col groups] resolves a required-literal CNF
    (groups of alternatives, as {!Ppfx_regex.Regex.required_literals}
    returns) against the column's content indexes: per group, union of
    the alternatives' posting rows; across groups, intersection. The
    result is a sorted superset of the matching live rows — callers must
    verify each candidate. [None] when no index on the column can answer
    (caller falls back to a scan); dropping unanswerable groups is sound,
    an unanswerable alternative poisons its group. *)

val check_content_indexes : t -> (unit, string) result
(** Test hook: rebuild the expected postings from the live rows and
    require every stored posting list to match exactly (same terms, same
    ascending ids). [Ok ()] when the table has no content indexes. *)

(** Heap tables with typed columns and attached B+tree indexes. *)

type column = { name : string; ty : Value.ty }

type t

val create : name:string -> columns:column list -> t

val name : t -> string

val version : t -> int
(** Modification counter: bumped on every {!insert}, {!delete} and
    {!create_index}. {!Database.epoch} sums it across tables so prepared
    plans can detect that their compile-time assumptions are stale. *)

val columns : t -> column list
val column_index : t -> string -> int option
val column_ty : t -> string -> Value.ty option

val insert : t -> Value.t array -> int
(** Append a row; returns its row id. Values must match the column count;
    non-null values must match the column types. All indexes are
    maintained. *)

val delete : t -> int -> bool
(** Tombstone a row: it disappears from every index and from
    {!iter_rows}; its id is never reused. Returns false when the id is
    out of range or already deleted. *)

val update : t -> int -> Value.t array -> bool
(** Rewrite a live row in place, preserving its id: indexes whose keys
    changed are maintained, statistics caches are invalidated, and the
    version is bumped. Returns false when the id is out of range or
    tombstoned; raises [Invalid_argument] on a count or type mismatch. *)

val live_count : t -> int
(** Rows minus tombstones. *)

val row_count : t -> int
val row : t -> int -> Value.t array
(** Row by id. Do not mutate. *)

val iter_rows : (int -> Value.t array -> unit) -> t -> unit

val create_index : t -> string list -> unit
(** Create (and backfill) a B+tree index on the given columns. Idempotent
    for an identical column list. *)

val index_on : t -> string list -> Btree.t option
(** Exact-columns index lookup. *)

val index_with_prefix : t -> string list -> (Btree.t * int) option
(** An index whose leading columns are exactly the given list; returns the
    index and its total width. Preferred for range scans where only a
    prefix is constrained. *)

val indexes : t -> (string list * Btree.t) list

val distinct_estimate : t -> string -> int
(** Estimated number of distinct non-null values in a column (computed by
    one scan, cached until the row count changes). Used by the planner's
    selectivity model. Returns 1 for unknown columns. *)

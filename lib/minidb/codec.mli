(** Binary persistence for databases.

    A compact, self-describing format (magic ["PPFXDB3"], then per table:
    name, typed column list, partition spec, row count, length-prefixed
    values, index column lists, content-index specs). Indexes — btrees
    and content postings alike — are rebuilt on load rather than
    serialized — they are derived data. Tombstoned rows are compacted
    away, so row ids are {e not} stable across a save/load cycle unless
    no deletions happened.

    Every structural reference inside an image (partition columns, index
    columns, value tags, lengths) is validated on decode: malformed
    input raises {!Corrupt} (or returns [Error] via the [_result]
    readers), never a stray [Not_found]/[End_of_file]. *)

exception Corrupt of string
(** Raised on malformed input. *)

val write_database : out_channel -> Database.t -> unit

val read_database : in_channel -> Database.t
(** Raises {!Corrupt}. *)

val database_to_string : Database.t -> string
(** The full PPFXDB3 image as a string — byte-identical to what
    {!write_database} emits. *)

val database_of_string : string -> Database.t
(** Raises {!Corrupt} on malformed input (including trailing
    truncation). *)

val save : string -> Database.t -> unit
(** Write to a file path. *)

val load : string -> Database.t
(** Raises {!Corrupt} on malformed input, [Sys_error] on IO failure. *)

(** {2 Typed (non-raising) loaders} *)

type error =
  | Io_error of string  (** the file could not be opened or read *)
  | Corrupted of string  (** the bytes are not a valid PPFXDB3 image *)

val error_to_string : error -> string

val load_result : string -> (Database.t, error) result
(** Like {!load} but never raises on bad input. *)

val of_string_result : string -> (Database.t, error) result
(** Like {!database_of_string} but never raises on bad input. *)
